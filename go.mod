module aptget

go 1.22
