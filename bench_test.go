package aptget

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, each printing the regenerated rows (DESIGN.md §4
// maps them to paper artifacts; EXPERIMENTS.md records paper-vs-measured).
// Experiments are deterministic, so one iteration regenerates the exact
// published numbers of this repository.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure experiments take seconds to minutes each; substrate
// microbenchmarks at the bottom measure the simulator itself.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"aptget/internal/cpu"
	"aptget/internal/experiments"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/peaks"
)

var printOnce sync.Map

// runExperiment executes one experiment per benchmark iteration and
// prints its table once per process.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.All()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opt := experiments.Options{Quick: testing.Short()}
	for i := 0; i < b.N; i++ {
		res, err := runner(opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", res)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (accuracy/timeliness vs distance).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig1 regenerates Figure 1 (speedup vs distance per work
// complexity).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2 (speedup vs distance per trip count).
func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig4 regenerates Figure 4 (loop latency distribution).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (memory-bound stall fractions).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (headline speedups).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (MPKI reduction).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (sweep optimum vs LBR distance).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (fixed distances vs LBR).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (inner vs outer site).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (instruction overhead).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (train/test generalization).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkDatasets regenerates Tables 3 and 4.
func BenchmarkDatasets(b *testing.B) { runExperiment(b, "datasets") }

// BenchmarkFig6x runs the extended dataset sweep (graph kernels across
// the Table 4 stand-ins, including the road-network anti-case).
func BenchmarkFig6x(b *testing.B) { runExperiment(b, "fig6x") }

// BenchmarkAblation disables the DESIGN.md §6 design choices one at a
// time.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkLBRWidth varies the branch-record depth (AMD BRS / ARM BRBE
// models).
func BenchmarkLBRWidth(b *testing.B) { runExperiment(b, "lbrwidth") }

// ---------------------------------------------------------------------
// Substrate microbenchmarks: the simulator itself.

// BenchmarkSubstrateCacheAccess measures the memory-hierarchy model's
// access throughput on a pseudo-random stream.
func BenchmarkSubstrateCacheAccess(b *testing.B) {
	h := mem.New(mem.ConfigScaled(), 1<<24)
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h.Access(uint64(i)*4, 1, int64(x%(1<<23)), mem.KindLoad)
	}
}

// BenchmarkSubstrateInterpreter measures IR interpretation speed
// (instructions per second) on an ALU-heavy loop.
func BenchmarkSubstrateInterpreter(b *testing.B) {
	bld := ir.NewBuilder("bench")
	out := bld.Alloc("out", 1, 8)
	zero := bld.Const(0)
	n := int64(100_000)
	bld.Loop("i", zero, bld.Const(n), 1, func(i ir.Value) {
		v := bld.Mul(bld.Add(i, bld.Const(3)), bld.Const(5))
		bld.StoreElem(out, zero, bld.Xor(v, i))
	})
	p := bld.Finish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(p, mem.ConfigScaled(), cpu.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(n*6), "instrs/op")
}

// BenchmarkSubstrateCWT measures the peak detector on a Figure 4-sized
// histogram.
func BenchmarkSubstrateCWT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sig := make([]float64, 400)
	for _, c := range []int{40, 115, 200, 325} {
		for i := range sig {
			d := float64(i - c)
			sig[i] += 100 * math.Exp(-d*d/32)
		}
	}
	for i := range sig {
		sig[i] += rng.Float64()
	}
	widths := peaks.DefaultWidths(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := peaks.FindPeaksCWT(sig, widths, peaks.Options{}); len(got) == 0 {
			b.Fatal("no peaks")
		}
	}
}
