package main

// The serve-path half of -bench: where BENCH_substrate.json tracks the
// simulator substrate, BENCH_serve.json tracks the analysis + serving hot
// paths this repo optimizes — CWT peak detection over large histograms,
// wire encode/decode throughput, and the end-to-end in-process serving
// latency under concurrent load. Regenerate with:
//
//	go run ./cmd/aptbench -bench -quick
//
// (drop -quick for the committed full-sweep baselines).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"aptget/internal/core"
	"aptget/internal/peaks"
	"aptget/internal/service"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

// CWTTiming is one ladder size's per-detection wall time.
type CWTTiming struct {
	Bins    int     `json:"bins"`
	Widths  int     `json:"widths"`
	MsPerOp float64 `json:"ms_per_op"`
}

// WireTiming is the profile codec's throughput on a real collected
// profile.
type WireTiming struct {
	App            string  `json:"app"`
	ProfileBytes   int     `json:"profile_bytes"`
	EncodeMBPerSec float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec float64 `json:"decode_mb_per_sec"`
}

// LoadgenTiming is the in-process serving stack under concurrent load.
type LoadgenTiming struct {
	Requests  int     `json:"requests"`
	Clients   int     `json:"clients"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// ServeBenchReport is the schema of BENCH_serve.json.
type ServeBenchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Quick       bool          `json:"quick"`
	CWT         []CWTTiming   `json:"cwt"`
	Wire        WireTiming    `json:"wire"`
	Loadgen     LoadgenTiming `json:"loadgen"`
}

// serveHistogram builds a multimodal latency-histogram lookalike: four
// gaussian populations plus a deterministic ripple, the same shape the
// peaks package benchmarks use.
func serveHistogram(n int) []float64 {
	out := make([]float64, n)
	centers := []float64{0.12, 0.35, 0.58, 0.85}
	heights := []float64{900, 1400, 700, 400}
	sigma := float64(n) / 90
	for i := range out {
		x := float64(i)
		for j, c := range centers {
			d := (x - c*float64(n)) / sigma
			out[i] += heights[j] * math.Exp(-d*d/2)
		}
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] += float64(seed%97) / 10
	}
	return out
}

// serveLadderSizes picks the histogram sizes the CWT timing sweeps.
func serveLadderSizes(quick bool) []int {
	if quick {
		return []int{400, 2048}
	}
	return []int{400, 2048, 8192}
}

// timeCWT measures one full peak detection (ladder + ridge walk) at the
// given histogram size.
func timeCWT(bins int) CWTTiming {
	sig := serveHistogram(bins)
	maxW := bins / 8
	if maxW > peaks.MaxAutoWidth {
		maxW = peaks.MaxAutoWidth
	}
	widths := peaks.DefaultWidths(maxW)
	var iters int
	start := time.Now()
	for time.Since(start) < minBenchTime {
		peaks.FindPeaksCWT(sig, widths, peaks.Options{})
		iters++
	}
	return CWTTiming{
		Bins:    bins,
		Widths:  len(widths),
		MsPerOp: time.Since(start).Seconds() * 1e3 / float64(iters),
	}
}

// timeWire measures the codec round-trip throughput on a collected
// profile of the given workload.
func timeWire(app string) (WireTiming, error) {
	e, ok := workloads.ByKey(app)
	if !ok {
		return WireTiming{}, fmt.Errorf("serve bench: unknown workload %q", app)
	}
	_, body, err := service.CollectProfile(e, core.DefaultConfig())
	if err != nil {
		return WireTiming{}, err
	}
	prof, err := wire.DecodeProfile(body)
	if err != nil {
		return WireTiming{}, fmt.Errorf("serve bench: decode %s profile: %w", app, err)
	}

	var decIters int
	start := time.Now()
	for time.Since(start) < minBenchTime {
		if _, err := wire.DecodeProfile(body); err != nil {
			return WireTiming{}, err
		}
		decIters++
	}
	decRate := float64(len(body)*decIters) / time.Since(start).Seconds() / 1e6

	var encIters int
	start = time.Now()
	for time.Since(start) < minBenchTime {
		wire.EncodeProfile(prof)
		encIters++
	}
	encRate := float64(len(body)*encIters) / time.Since(start).Seconds() / 1e6

	return WireTiming{
		App:            app,
		ProfileBytes:   len(body),
		EncodeMBPerSec: encRate,
		DecodeMBPerSec: decRate,
	}, nil
}

// runServeBench measures the serve-path hot paths and writes the report
// to outPath.
func runServeBench(quick bool, outPath string) error {
	report := ServeBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       quick,
	}

	for _, bins := range serveLadderSizes(quick) {
		t := timeCWT(bins)
		report.CWT = append(report.CWT, t)
		fmt.Printf("bench %-10s %8.2fms/op (%d bins, %d widths)\n",
			"cwt", t.MsPerOp, t.Bins, t.Widths)
	}

	wt, err := timeWire("IS")
	if err != nil {
		return err
	}
	report.Wire = wt
	fmt.Printf("bench %-10s %8.1fMB/s decode, %.1fMB/s encode (%d-byte profile)\n",
		"wire", wt.DecodeMBPerSec, wt.EncodeMBPerSec, wt.ProfileBytes)

	lgOpt := loadgenOptions{Clients: 8, Requests: 192, Corpus: []string{"IS"}}
	if quick {
		lgOpt.Requests = 96
	}
	stats, err := runLoadgen(lgOpt, io.Discard)
	if err != nil {
		return fmt.Errorf("serve bench: loadgen: %w", err)
	}
	report.Loadgen = LoadgenTiming{
		Requests:  lgOpt.Requests,
		Clients:   lgOpt.Clients,
		ReqPerSec: float64(stats.OK) / stats.Elapsed.Seconds(),
		P50Ms:     stats.Latency.P50,
		P99Ms:     stats.Latency.P99,
	}
	fmt.Printf("bench %-10s %8.1freq/s P50=%.2fms P99=%.2fms\n",
		"serve", report.Loadgen.ReqPerSec, report.Loadgen.P50Ms, report.Loadgen.P99Ms)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s\n", outPath)
	return nil
}
