package main

// The serve-path half of -bench: where BENCH_substrate.json tracks the
// simulator substrate, BENCH_serve.json tracks the analysis + serving hot
// paths this repo optimizes — CWT peak detection over large histograms,
// wire encode/decode throughput, and the end-to-end in-process serving
// latency under concurrent load. Regenerate with:
//
//	go run ./cmd/aptbench -bench -quick
//
// (drop -quick for the committed full-sweep baselines).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"aptget/internal/core"
	"aptget/internal/peaks"
	"aptget/internal/service"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

// CWTTiming is one ladder size's per-detection wall time.
type CWTTiming struct {
	Bins    int     `json:"bins"`
	Widths  int     `json:"widths"`
	MsPerOp float64 `json:"ms_per_op"`
}

// WireTiming is the profile codec's throughput on a real collected
// profile.
type WireTiming struct {
	App            string  `json:"app"`
	ProfileBytes   int     `json:"profile_bytes"`
	EncodeMBPerSec float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec float64 `json:"decode_mb_per_sec"`
}

// LoadgenTiming is the in-process serving stack under concurrent load.
type LoadgenTiming struct {
	Requests  int     `json:"requests"`
	Clients   int     `json:"clients"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// FleetTiming is the sharded serving stack under the same load: N
// peered shards behind an aptrouter, closed-loop for throughput plus an
// open-loop pass at the single-server's achieved rate for the
// drop/reject measurement. Speedup is fleet vs single req/s on this
// machine — in-process shards share one CPU, so it measures routing
// overhead and cache sharding, not N machines' worth of compute.
type FleetTiming struct {
	Shards                 int     `json:"shards"`
	Requests               int     `json:"requests"`
	Clients                int     `json:"clients"`
	ReqPerSec              float64 `json:"req_per_sec"`
	SpeedupVsSingle        float64 `json:"speedup_vs_single"`
	P50Ms                  float64 `json:"p50_ms"`
	P99Ms                  float64 `json:"p99_ms"`
	OpenLoopOfferedPerSec  float64 `json:"open_loop_offered_req_per_sec"`
	OpenLoopAchievedPerSec float64 `json:"open_loop_achieved_req_per_sec"`
	OpenLoopDropRejectRate float64 `json:"open_loop_drop_reject_rate"`
	AggregateSavedAnalyses int64   `json:"aggregate_saved_analyses"`
}

// ServeBenchReport is the schema of BENCH_serve.json.
type ServeBenchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GitCommit   string        `json:"git_commit"`
	GoVersion   string        `json:"go_version"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Quick       bool          `json:"quick"`
	CWT         []CWTTiming   `json:"cwt"`
	Wire        WireTiming    `json:"wire"`
	Loadgen     LoadgenTiming `json:"loadgen"`
	Fleet       FleetTiming   `json:"fleet"`
	// PGO is the self-PGO rebuild-and-measure cycle's before/after,
	// written by `aptbench -pgo-cycle` and preserved verbatim when the
	// serve benchmarks regenerate the rest of the report.
	PGO *PGOCycleReport `json:"pgo,omitempty"`
}

// serveHistogram builds a multimodal latency-histogram lookalike: four
// gaussian populations plus a deterministic ripple, the same shape the
// peaks package benchmarks use.
func serveHistogram(n int) []float64 {
	out := make([]float64, n)
	centers := []float64{0.12, 0.35, 0.58, 0.85}
	heights := []float64{900, 1400, 700, 400}
	sigma := float64(n) / 90
	for i := range out {
		x := float64(i)
		for j, c := range centers {
			d := (x - c*float64(n)) / sigma
			out[i] += heights[j] * math.Exp(-d*d/2)
		}
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] += float64(seed%97) / 10
	}
	return out
}

// serveLadderSizes picks the histogram sizes the CWT timing sweeps.
func serveLadderSizes(quick bool) []int {
	if quick {
		return []int{400, 2048}
	}
	return []int{400, 2048, 8192}
}

// timeCWT measures one full peak detection (ladder + ridge walk) at the
// given histogram size.
func timeCWT(bins int) CWTTiming {
	sig := serveHistogram(bins)
	maxW := bins / 8
	if maxW > peaks.MaxAutoWidth {
		maxW = peaks.MaxAutoWidth
	}
	widths := peaks.DefaultWidths(maxW)
	var iters int
	start := time.Now()
	for time.Since(start) < minBenchTime {
		peaks.FindPeaksCWT(sig, widths, peaks.Options{})
		iters++
	}
	return CWTTiming{
		Bins:    bins,
		Widths:  len(widths),
		MsPerOp: time.Since(start).Seconds() * 1e3 / float64(iters),
	}
}

// timeWire measures the codec round-trip throughput on a collected
// profile of the given workload.
func timeWire(app string) (WireTiming, error) {
	e, ok := workloads.ByKey(app)
	if !ok {
		return WireTiming{}, fmt.Errorf("serve bench: unknown workload %q", app)
	}
	_, body, err := service.CollectProfile(e, core.DefaultConfig())
	if err != nil {
		return WireTiming{}, err
	}
	prof, err := wire.DecodeProfile(body)
	if err != nil {
		return WireTiming{}, fmt.Errorf("serve bench: decode %s profile: %w", app, err)
	}

	var decIters int
	start := time.Now()
	for time.Since(start) < minBenchTime {
		if _, err := wire.DecodeProfile(body); err != nil {
			return WireTiming{}, err
		}
		decIters++
	}
	decRate := float64(len(body)*decIters) / time.Since(start).Seconds() / 1e6

	var encIters int
	start = time.Now()
	for time.Since(start) < minBenchTime {
		wire.EncodeProfile(prof)
		encIters++
	}
	encRate := float64(len(body)*encIters) / time.Since(start).Seconds() / 1e6

	return WireTiming{
		App:            app,
		ProfileBytes:   len(body),
		EncodeMBPerSec: encRate,
		DecodeMBPerSec: decRate,
	}, nil
}

// timeFleet measures the sharded serving stack: the single-server
// loadgen replayed through a 3-shard fleet behind a router (closed loop
// for throughput), then an open-loop pass at the single server's
// achieved rate to measure the drop/reject behavior at that offered
// load.
func timeFleet(single LoadgenTiming, lgOpt loadgenOptions) (FleetTiming, error) {
	const shards = 3
	fleet, err := startFleet(shards, 8, 50*time.Millisecond)
	if err != nil {
		return FleetTiming{}, err
	}
	defer fleet.Stop()

	lgOpt.Addr = fleet.RouterAddr
	stats, err := runLoadgen(lgOpt, io.Discard)
	if err != nil {
		return FleetTiming{}, err
	}
	ft := FleetTiming{
		Shards:          shards,
		Requests:        lgOpt.Requests,
		Clients:         lgOpt.Clients,
		ReqPerSec:       float64(stats.OK) / stats.Elapsed.Seconds(),
		P50Ms:           stats.Latency.P50,
		P99Ms:           stats.Latency.P99,
		SpeedupVsSingle: 0,
	}
	if single.ReqPerSec > 0 {
		ft.SpeedupVsSingle = ft.ReqPerSec / single.ReqPerSec
	}

	// Open-loop pass against the now-warm fleet: offer the single
	// server's achieved rate and record what the fleet drops or rejects.
	open := lgOpt
	open.Rate = single.ReqPerSec
	if open.Rate <= 0 {
		open.Rate = 100
	}
	open.Seed = 1
	ostats, err := runLoadgen(open, io.Discard)
	if err != nil {
		return FleetTiming{}, err
	}
	ft.OpenLoopOfferedPerSec = open.Rate
	ft.OpenLoopAchievedPerSec = float64(ostats.OK) / ostats.Elapsed.Seconds()
	ft.OpenLoopDropRejectRate = ostats.DropRejectRate()
	ft.AggregateSavedAnalyses = fleet.Counters()["aggregate_saved_analyses"]
	return ft, nil
}

// loadServeReport reads an existing serve report; a missing or
// unparseable file yields the zero report (the caller regenerates it).
func loadServeReport(path string) ServeBenchReport {
	var rep ServeBenchReport
	if data, err := os.ReadFile(path); err == nil {
		json.Unmarshal(data, &rep)
	}
	return rep
}

// writeServeReport marshals and writes a serve report.
func writeServeReport(path string, rep *ServeBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runServeBench measures the serve-path hot paths and writes the report
// to outPath. A pgo section from an earlier -pgo-cycle run carries over
// untouched — the cycle is a separate (expensive) measurement with its
// own regeneration command.
func runServeBench(quick bool, outPath string) error {
	report := ServeBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitCommit:   gitCommit(),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       quick,
		PGO:         loadServeReport(outPath).PGO,
	}

	for _, bins := range serveLadderSizes(quick) {
		t := timeCWT(bins)
		report.CWT = append(report.CWT, t)
		fmt.Printf("bench %-10s %8.2fms/op (%d bins, %d widths)\n",
			"cwt", t.MsPerOp, t.Bins, t.Widths)
	}

	wt, err := timeWire("IS")
	if err != nil {
		return err
	}
	report.Wire = wt
	fmt.Printf("bench %-10s %8.1fMB/s decode, %.1fMB/s encode (%d-byte profile)\n",
		"wire", wt.DecodeMBPerSec, wt.EncodeMBPerSec, wt.ProfileBytes)

	lgOpt := loadgenOptions{Clients: 8, Requests: 192, Corpus: []string{"IS"}}
	if quick {
		lgOpt.Requests = 96
	}
	stats, err := runLoadgen(lgOpt, io.Discard)
	if err != nil {
		return fmt.Errorf("serve bench: loadgen: %w", err)
	}
	report.Loadgen = LoadgenTiming{
		Requests:  lgOpt.Requests,
		Clients:   lgOpt.Clients,
		ReqPerSec: float64(stats.OK) / stats.Elapsed.Seconds(),
		P50Ms:     stats.Latency.P50,
		P99Ms:     stats.Latency.P99,
	}
	fmt.Printf("bench %-10s %8.1freq/s P50=%.2fms P99=%.2fms\n",
		"serve", report.Loadgen.ReqPerSec, report.Loadgen.P50Ms, report.Loadgen.P99Ms)

	ft, err := timeFleet(report.Loadgen, lgOpt)
	if err != nil {
		return fmt.Errorf("serve bench: fleet: %w", err)
	}
	report.Fleet = ft
	fmt.Printf("bench %-10s %8.1freq/s (%.2fx single) P50=%.2fms P99=%.2fms; open loop %.1f offered -> %.1f achieved, %.2f%% dropped/rejected, %d analyses saved by aggregation\n",
		"fleet", ft.ReqPerSec, ft.SpeedupVsSingle, ft.P50Ms, ft.P99Ms,
		ft.OpenLoopOfferedPerSec, ft.OpenLoopAchievedPerSec,
		100*ft.OpenLoopDropRejectRate, ft.AggregateSavedAnalyses)

	if err := writeServeReport(outPath, &report); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s\n", outPath)
	return nil
}
