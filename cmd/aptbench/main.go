// Command aptbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aptbench -exp fig6          # one experiment (see -list)
//	aptbench -exp all           # everything (several minutes)
//	aptbench -exp fig8 -quick   # representative app subset
//	aptbench -bench             # perf-regression run -> BENCH_substrate.json
//	aptbench -exp fig6 -report report.json   # machine-readable stage/plan records
//	aptbench -exp fig6 -trace                # human-readable pipeline trace
//	aptbench -loadgen -clients 32            # load-test a plan service (in-process)
//	aptbench -loadgen -addr host:7717        # ... or a live aptgetd
//	aptbench -loadgen -rate 200 -requests 1000  # open-loop Poisson arrivals
//	aptbench -pgo-cycle                      # self-PGO rebuild-and-measure cycle
//
// Experiments fan out over a GOMAXPROCS-sized worker pool; -workers pins
// the pool width (1 = serial). Output is identical at any width.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"aptget/internal/experiments"
	"aptget/internal/obs"
	"aptget/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// startProfiling starts a CPU profile and/or arranges a heap profile,
// as requested; the returned stop function finalizes both. It works in
// every mode (-exp, -bench, -loadgen) so any hot path can be inspected
// with `go tool pprof` (see EXPERIMENTS.md for a worked session).
func startProfiling(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // flush recently-freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

// run is the testable CLI body. Exit status: 0 on success (including
// -list), 1 for runtime failures, 2 for usage errors (no -exp, unknown
// experiment, bad flags).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id (or 'all')")
	quick := fs.Bool("quick", false, "restrict sweeps to a representative app subset")
	list := fs.Bool("list", false, "list experiment ids")
	workers := fs.Int("workers", 0, "worker pool width (0 = GOMAXPROCS, 1 = serial)")
	bench := fs.Bool("bench", false, "time every experiment + substrate microbenchmarks, write -benchout")
	pgoCycle := fs.Bool("pgo-cycle", false, "build aptgetd, capture its profile under load, rebuild with -pgo, measure before/after into -serveout")
	benchout := fs.String("benchout", "BENCH_substrate.json", "perf report path for -bench")
	serveout := fs.String("serveout", "BENCH_serve.json", "serve-path perf report for -bench")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (any mode)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit (any mode)")
	report := fs.String("report", "", "write per-stage/per-plan observability records to this JSON file")
	trace := fs.Bool("trace", false, "print a human-readable pipeline trace after the experiments")
	loadgen := fs.Bool("loadgen", false, "replay a profile corpus against a plan service and report throughput/latency")
	addr := fs.String("addr", "", "plan service address for -loadgen (empty = in-process server)")
	clients := fs.Int("clients", 32, "concurrent -loadgen clients")
	requests := fs.Int("requests", 256, "total -loadgen requests")
	corpus := fs.String("corpus", "IS,BFS,HJ8", "comma-separated workload keys -loadgen replays")
	rate := fs.Float64("rate", 0, "open-loop -loadgen: Poisson arrival rate in req/s (0 = closed loop)")
	seed := fs.Int64("seed", 0, "open-loop arrival RNG seed (0 = 1)")
	relocate := fs.Uint64("relocate", 0, "-loadgen: shift every profile PC by this constant after warming the cache with the originals (stale-shape matching must serve the relocated corpus with zero re-analyses)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runner.SetMaxWorkers(*workers)

	stopProf, err := startProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "aptbench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "aptbench: %v\n", err)
		}
	}()

	if *loadgen {
		_, err := runLoadgen(loadgenOptions{
			Addr:     *addr,
			Clients:  *clients,
			Requests: *requests,
			Corpus:   strings.Split(*corpus, ","),
			Quick:    *quick,
			Rate:     *rate,
			Seed:     *seed,
			Relocate: *relocate,
		}, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "aptbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *pgoCycle {
		if err := runPGOCycle(*quick, *serveout, stdout); err != nil {
			fmt.Fprintf(stderr, "aptbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *bench {
		if err := runBench(*quick, *benchout); err != nil {
			fmt.Fprintf(stderr, "aptbench: %v\n", err)
			return 1
		}
		if err := runServeBench(*quick, *serveout); err != nil {
			fmt.Fprintf(stderr, "aptbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:")
		for _, n := range experiments.Names() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "aptbench: -exp is required (use -list for experiment ids)")
		fs.Usage()
		return 2
	}

	if *report != "" || *trace {
		obs.Enable()
		obs.Reset()
	}

	all := experiments.All()
	opt := experiments.Options{Quick: *quick}
	var ids []string
	if *exp == "all" {
		for n := range all {
			ids = append(ids, n)
		}
		sort.Strings(ids)
	} else {
		if _, ok := all[*exp]; !ok {
			fmt.Fprintf(stderr, "aptbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(stderr, "aptbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(stdout, "== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), res)
	}

	if *report != "" {
		data, err := obs.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(stderr, "aptbench: marshal report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "aptbench: write report: %v\n", err)
			return 1
		}
	}
	if *trace {
		fmt.Fprint(stderr, obs.Snapshot().Text())
	}
	return 0
}
