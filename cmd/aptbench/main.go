// Command aptbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aptbench -exp fig6          # one experiment (see -list)
//	aptbench -exp all           # everything (several minutes)
//	aptbench -exp fig8 -quick   # representative app subset
//	aptbench -bench             # perf-regression run -> BENCH_substrate.json
//
// Experiments fan out over a GOMAXPROCS-sized worker pool; -workers pins
// the pool width (1 = serial). Output is identical at any width.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"aptget/internal/experiments"
	"aptget/internal/runner"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	quick := flag.Bool("quick", false, "restrict sweeps to a representative app subset")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS, 1 = serial)")
	bench := flag.Bool("bench", false, "time every experiment + substrate microbenchmarks, write -benchout")
	benchout := flag.String("benchout", "BENCH_substrate.json", "perf report path for -bench")
	flag.Parse()

	runner.SetMaxWorkers(*workers)

	if *bench {
		if err := runBench(*quick, *benchout); err != nil {
			fmt.Fprintf(os.Stderr, "aptbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := experiments.All()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %s\n", n)
		}
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{Quick: *quick}
	var ids []string
	if *exp == "all" {
		for n := range all {
			ids = append(ids, n)
		}
		sort.Strings(ids)
	} else {
		if _, ok := all[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "aptbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := all[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aptbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), res)
	}
}
