package main

// The -bench mode: a perf-regression harness for the evaluation substrate
// itself. It times every experiment (wall clock, parallel runner enabled)
// plus two substrate microbenchmarks — IR interpretation and memory-
// hierarchy access throughput — and writes the result as JSON so future
// changes have a perf trajectory to compare against:
//
//	aptbench -bench -quick            # representative subset, ~a minute
//	aptbench -bench                   # full sweep, several minutes
//	aptbench -bench -benchout my.json # alternate output path

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aptget/internal/cpu"
	"aptget/internal/experiments"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/runner"
)

// ExperimentTiming is one experiment's wall-clock time.
type ExperimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// SubstrateMetrics are the simulator's raw throughput numbers.
type SubstrateMetrics struct {
	// InterpInstrsPerSec is IR instructions interpreted per second on an
	// ALU-heavy loop (no memory stalls).
	InterpInstrsPerSec float64 `json:"interp_instrs_per_sec"`
	// HierAccessesPerSec is demand accesses absorbed per second by the
	// memory-hierarchy model on a pseudo-random address stream.
	HierAccessesPerSec float64 `json:"hier_accesses_per_sec"`
}

// BenchReport is the schema of BENCH_substrate.json.
type BenchReport struct {
	GeneratedAt  string             `json:"generated_at"`
	GitCommit    string             `json:"git_commit"`
	GoVersion    string             `json:"go_version"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	Workers      int                `json:"workers"`
	Quick        bool               `json:"quick"`
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  []ExperimentTiming `json:"experiments"`
	Substrate    SubstrateMetrics   `json:"substrate"`
}

// runBench times every experiment and the substrate microbenchmarks and
// writes the report to outPath.
func runBench(quick bool, outPath string) error {
	all := experiments.All()
	opt := experiments.Options{Quick: quick}
	report := BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitCommit:   gitCommit(),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     runner.Workers(1 << 30),
		Quick:       quick,
	}

	total := time.Now()
	for _, id := range experiments.Names() {
		start := time.Now()
		if _, err := all[id](opt); err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		secs := time.Since(start).Seconds()
		report.Experiments = append(report.Experiments, ExperimentTiming{ID: id, Seconds: secs})
		fmt.Printf("bench %-10s %8.2fs\n", id, secs)
	}

	report.Substrate.InterpInstrsPerSec = benchInterpreter()
	fmt.Printf("bench %-10s %8.2gM instrs/s\n", "interp", report.Substrate.InterpInstrsPerSec/1e6)
	report.Substrate.HierAccessesPerSec = benchHierarchy()
	fmt.Printf("bench %-10s %8.2gM accesses/s\n", "hierarchy", report.Substrate.HierAccessesPerSec/1e6)
	report.TotalSeconds = time.Since(total).Seconds()

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s (total %.1fs)\n", outPath, report.TotalSeconds)
	return nil
}

// minBenchTime is how long each substrate microbenchmark must accumulate
// before its rate is trusted.
const minBenchTime = 500 * time.Millisecond

// benchInterpreter measures IR interpretation throughput (instructions
// per second) on an ALU-heavy loop with no memory stalls.
func benchInterpreter() float64 {
	bld := ir.NewBuilder("bench-interp")
	out := bld.Alloc("out", 1, 8)
	zero := bld.Const(0)
	bld.Loop("i", zero, bld.Const(200_000), 1, func(i ir.Value) {
		v := bld.Mul(bld.Add(i, bld.Const(3)), bld.Const(5))
		bld.StoreElem(out, zero, bld.Xor(v, i))
	})
	p := bld.Finish()
	cfg := mem.ConfigScaled()

	var instrs uint64
	start := time.Now()
	for time.Since(start) < minBenchTime {
		res, err := cpu.Run(p, cfg, cpu.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench interpreter: %v", err))
		}
		instrs += res.Counters.Instructions
	}
	return float64(instrs) / time.Since(start).Seconds()
}

// benchHierarchy measures memory-hierarchy throughput (accesses per
// second) on a pseudo-random demand-load stream.
func benchHierarchy() float64 {
	h := mem.New(mem.ConfigScaled(), 1<<24)
	const batch = 1 << 20
	x := uint64(1)
	var accesses uint64
	var cycle uint64
	start := time.Now()
	for time.Since(start) < minBenchTime {
		for i := 0; i < batch; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Access(cycle, 1, int64(x%(1<<23)), mem.KindLoad)
			cycle += 4
		}
		accesses += batch
	}
	return float64(accesses) / time.Since(start).Seconds()
}
