package main

// The -pgo-cycle mode: close the self-PGO loop end to end against real
// binaries. The harness builds a blind (non-PGO) aptgetd, warms it with
// the loadgen corpus, captures a CPU profile of the daemon *while it
// serves*, fetches /v1/pprof/merged as the default.pgo candidate,
// rebuilds aptgetd with `go build -pgo=<profile>`, and replays an
// identical open-loop measurement against both binaries:
//
//	aptbench -pgo-cycle          # full cycle, writes the pgo section
//	aptbench -pgo-cycle -quick   # shorter warm/capture/measure
//
// The before/after lands in the `pgo` section of BENCH_serve.json. On a
// shared CI box the delta is noise-dominated; the section's value is
// proving the loop runs (capture → artifact → rebuild → serve), not a
// publishable speedup. See EXPERIMENTS.md for the honest caveats.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"aptget/internal/pgo"
)

// PGOVariantTiming is one binary's measured serving performance under
// the cycle's fixed open-loop load.
type PGOVariantTiming struct {
	Build          string  `json:"build"`
	PGOBuilt       bool    `json:"pgo_built"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	DropRejectRate float64 `json:"drop_reject_rate"`
}

// PGOCycleReport is the `pgo` section of BENCH_serve.json: the
// rebuild-and-measure cycle's provenance, profile, and before/after.
type PGOCycleReport struct {
	GeneratedAt    string           `json:"generated_at"`
	GitCommit      string           `json:"git_commit"`
	GoVersion      string           `json:"go_version"`
	CaptureSeconds float64          `json:"capture_seconds"`
	ProfileBytes   int              `json:"profile_bytes"`
	ProfileBuild   string           `json:"profile_build"`
	OfferedPerSec  float64          `json:"offered_req_per_sec"`
	Requests       int              `json:"requests"`
	Seed           int64            `json:"seed"`
	Baseline       PGOVariantTiming `json:"baseline"`
	PGO            PGOVariantTiming `json:"pgo"`
	// Speedup is PGO/baseline req/s on this machine at this moment —
	// read it with the CI-noise caveats in EXPERIMENTS.md.
	Speedup float64 `json:"speedup_req_per_sec"`
}

// procBuffer collects a child process's output; exec.Cmd writes from a
// copier goroutine, the harness reads while polling for the listen line.
type procBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *procBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *procBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var daemonListenRE = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// childDaemon is one aptgetd under harness control.
type childDaemon struct {
	cmd  *exec.Cmd
	out  *procBuffer
	Base string // http://host:port
}

// startDaemonBinary launches an aptgetd binary on an ephemeral port and
// waits for it to announce its address.
func startDaemonBinary(bin string, extraArgs ...string) (*childDaemon, error) {
	d := &childDaemon{out: &procBuffer{}}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)...)
	d.cmd.Stdout = d.out
	d.cmd.Stderr = d.out
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("pgo-cycle: start %s: %w", bin, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m := daemonListenRE.FindStringSubmatch(d.out.String()); m != nil {
			d.Base = "http://" + m[1]
			return d, nil
		}
		if d.cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	return nil, fmt.Errorf("pgo-cycle: daemon never announced its address:\n%s", d.out.String())
}

// Stop terminates the daemon gracefully (SIGTERM, the drain path) and
// reports a non-zero exit.
func (d *childDaemon) Stop() error {
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("pgo-cycle: daemon exit: %w\n%s", err, d.out.String())
		}
		return nil
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		<-done
		return fmt.Errorf("pgo-cycle: daemon did not drain within 30s:\n%s", d.out.String())
	}
}

// buildInfo asks a live daemon's healthz who it is.
func (d *childDaemon) buildInfo() (pgo.BinaryInfo, error) {
	resp, err := http.Get(d.Base + "/v1/healthz")
	if err != nil {
		return pgo.BinaryInfo{}, err
	}
	defer resp.Body.Close()
	var h struct {
		Build pgo.BinaryInfo `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return pgo.BinaryInfo{}, err
	}
	return h.Build, nil
}

// moduleRoot locates the repo root via the go tool.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("pgo-cycle: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("pgo-cycle: not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

// buildDaemon compiles cmd/aptgetd into outBin; pgoProfile != "" builds
// with -pgo=<profile>, "" builds with PGO explicitly off so the baseline
// never silently picks up a default.pgo.
func buildDaemon(root, outBin, pgoProfile string) error {
	pgoArg := "-pgo=off"
	if pgoProfile != "" {
		pgoArg = "-pgo=" + pgoProfile
	}
	cmd := exec.Command("go", "build", pgoArg, "-o", outBin, "./cmd/aptgetd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("pgo-cycle: go build %s: %w\n%s", pgoArg, err, out)
	}
	return nil
}

// warmAndMeasure warms a daemon closed-loop, then runs the cycle's fixed
// open-loop measurement. rate <= 0 derives the offered rate from the
// warm pass (the caller reuses the returned rate for the second binary,
// keeping both measurements identical).
func warmAndMeasure(base string, quick bool, rate float64, stdout io.Writer) (PGOVariantTiming, float64, error) {
	warm := loadgenOptions{Addr: base, Clients: 8, Requests: 192, Corpus: []string{"IS"}}
	measureReqs := 1000
	if quick {
		warm.Requests = 96
		measureReqs = 300
	}
	wstats, err := runLoadgen(warm, io.Discard)
	if err != nil {
		return PGOVariantTiming{}, 0, fmt.Errorf("pgo-cycle: warm: %w", err)
	}
	if rate <= 0 {
		// Offer ~60% of warm closed-loop throughput: high enough to
		// exercise the hot path, low enough that the open loop measures
		// latency rather than queueing collapse.
		rate = 0.6 * float64(wstats.OK) / wstats.Elapsed.Seconds()
		if rate < 10 {
			rate = 10
		}
	}
	open := loadgenOptions{
		Addr: base, Requests: measureReqs, Corpus: []string{"IS"},
		Rate: rate, Seed: 1,
	}
	stats, err := runLoadgen(open, io.Discard)
	if err != nil {
		return PGOVariantTiming{}, 0, fmt.Errorf("pgo-cycle: measure: %w", err)
	}
	vt := PGOVariantTiming{
		ReqPerSec:      float64(stats.OK) / stats.Elapsed.Seconds(),
		P50Ms:          stats.Latency.P50,
		P99Ms:          stats.Latency.P99,
		DropRejectRate: stats.DropRejectRate(),
	}
	fmt.Fprintf(stdout, "pgo-cycle: measured %.1f req/s P50=%.2fms P99=%.2fms (offered %.1f req/s)\n",
		vt.ReqPerSec, vt.P50Ms, vt.P99Ms, rate)
	return vt, rate, nil
}

// captureWhileServing keeps the daemon busy with closed-loop traffic
// while one stored capture window runs, so the profile contains serving
// work rather than an idle scheduler.
func captureWhileServing(base string, quick bool, stdout io.Writer) (float64, error) {
	secs := 3.0
	if quick {
		secs = 1.5
	}
	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		opt := loadgenOptions{Addr: base, Clients: 8, Requests: 192, Corpus: []string{"IS"}}
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			if _, err := runLoadgen(opt, io.Discard); err != nil {
				loadErr <- err
				return
			}
		}
	}()

	client := &http.Client{Timeout: time.Duration(secs*float64(time.Second)) + 30*time.Second}
	resp, err := client.Get(fmt.Sprintf("%s/v1/pprof/cpu?seconds=%g&store=1", base, secs))
	close(stop)
	if lerr := <-loadErr; lerr != nil && err == nil {
		err = lerr
	}
	if err != nil {
		return 0, fmt.Errorf("pgo-cycle: capture: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("pgo-cycle: capture status %d: %s", resp.StatusCode, body)
	}
	fmt.Fprintf(stdout, "pgo-cycle: captured %gs window under load (%d bytes, artifact %s)\n",
		secs, len(body), resp.Header.Get("X-Apt-Artifact"))
	return secs, nil
}

// fetchMerged downloads the daemon's best stored profile.
func fetchMerged(base string) (data []byte, build string, err error) {
	resp, err := http.Get(base + "/v1/pprof/merged")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("pgo-cycle: merged status %d: %s", resp.StatusCode, data)
	}
	if err := pgo.ValidateProfile(data); err != nil {
		return nil, "", fmt.Errorf("pgo-cycle: merged profile invalid: %w", err)
	}
	return data, resp.Header.Get("X-Apt-Build"), nil
}

// runPGOCycle is the whole loop: build blind, warm, capture under load,
// fetch merged, rebuild with -pgo, measure both identically, write the
// before/after into serveout's pgo section.
func runPGOCycle(quick bool, serveout string, stdout io.Writer) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "aptbench-pgo-cycle-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	report := PGOCycleReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitCommit:   gitCommit(),
		GoVersion:   runtime.Version(),
		Seed:        1,
	}

	// 1. Baseline binary, explicitly blind to any default.pgo.
	baseBin := filepath.Join(work, "aptgetd-base")
	fmt.Fprintf(stdout, "pgo-cycle: building baseline (pgo off) in %s\n", root)
	if err := buildDaemon(root, baseBin, ""); err != nil {
		return err
	}
	daemon, err := startDaemonBinary(baseBin, "-pgo-dir", filepath.Join(work, "artifacts"))
	if err != nil {
		return err
	}
	baseInfo, err := daemon.buildInfo()
	if err != nil {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: baseline healthz: %w", err)
	}
	if baseInfo.PGOBuilt {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: baseline binary claims pgo_built (build %s)", baseInfo.ID)
	}
	fmt.Fprintf(stdout, "pgo-cycle: baseline daemon up (build %s) at %s\n", baseInfo.ID, daemon.Base)

	// 2. Capture a profile of the daemon while it serves, then pull the
	// merged artifact — the default.pgo candidate.
	capSecs, err := captureWhileServing(daemon.Base, quick, stdout)
	if err != nil {
		daemon.Stop()
		return err
	}
	report.CaptureSeconds = capSecs
	profile, profBuild, err := fetchMerged(daemon.Base)
	if err != nil {
		daemon.Stop()
		return err
	}
	if profBuild != baseInfo.ID {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: merged profile is for build %s, daemon is %s", profBuild, baseInfo.ID)
	}
	report.ProfileBytes = len(profile)
	report.ProfileBuild = profBuild
	profPath := filepath.Join(work, "default.pgo")
	if err := os.WriteFile(profPath, profile, 0o644); err != nil {
		daemon.Stop()
		return err
	}
	fmt.Fprintf(stdout, "pgo-cycle: merged profile %d bytes (build %s) -> %s\n",
		len(profile), profBuild, profPath)

	// 3. Measure the baseline, deriving the fixed offered rate both
	// binaries will see.
	baseTiming, rate, err := warmAndMeasure(daemon.Base, quick, 0, stdout)
	if err != nil {
		daemon.Stop()
		return err
	}
	baseTiming.Build = baseInfo.ID
	report.Baseline = baseTiming
	report.OfferedPerSec = rate
	if quick {
		report.Requests = 300
	} else {
		report.Requests = 1000
	}
	if err := daemon.Stop(); err != nil {
		return err
	}

	// 4. Rebuild with the captured profile and measure identically.
	pgoBin := filepath.Join(work, "aptgetd-pgo")
	fmt.Fprintf(stdout, "pgo-cycle: rebuilding with -pgo=%s\n", profPath)
	if err := buildDaemon(root, pgoBin, profPath); err != nil {
		return err
	}
	daemon, err = startDaemonBinary(pgoBin)
	if err != nil {
		return err
	}
	pgoInfo, err := daemon.buildInfo()
	if err != nil {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: pgo healthz: %w", err)
	}
	if !pgoInfo.PGOBuilt {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: rebuilt binary does not report pgo_built (build %s)", pgoInfo.ID)
	}
	if pgoInfo.ID == baseInfo.ID {
		daemon.Stop()
		return fmt.Errorf("pgo-cycle: pgo binary has the baseline's build ID %s", pgoInfo.ID)
	}
	fmt.Fprintf(stdout, "pgo-cycle: pgo daemon up (build %s, pgo=%s) at %s\n",
		pgoInfo.ID, filepath.Base(pgoInfo.PGOProfile), daemon.Base)
	pgoTiming, _, err := warmAndMeasure(daemon.Base, quick, rate, stdout)
	if err != nil {
		daemon.Stop()
		return err
	}
	pgoTiming.Build = pgoInfo.ID
	pgoTiming.PGOBuilt = true
	report.PGO = pgoTiming
	if err := daemon.Stop(); err != nil {
		return err
	}
	if baseTiming.ReqPerSec > 0 {
		report.Speedup = pgoTiming.ReqPerSec / baseTiming.ReqPerSec
	}

	// 5. Land the before/after in the serve report's pgo section without
	// touching the rest of the file.
	rep := loadServeReport(serveout)
	rep.PGO = &report
	if rep.GeneratedAt == "" {
		rep.GeneratedAt = report.GeneratedAt
		rep.GitCommit = report.GitCommit
		rep.GoVersion = report.GoVersion
		rep.GoMaxProcs = runtime.GOMAXPROCS(0)
		rep.Quick = quick
	}
	if err := writeServeReport(serveout, &rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout,
		"pgo-cycle: baseline %.1f req/s -> pgo %.1f req/s (%.3fx); wrote pgo section of %s\n",
		baseTiming.ReqPerSec, pgoTiming.ReqPerSec, report.Speedup, serveout)
	return nil
}
