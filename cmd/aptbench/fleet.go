package main

// In-process fleet harness for the serve benchmark: N aptgetd shards
// (peered for warm handoff, aggregation window enabled) behind one
// aptrouter, all on loopback ports. The serve bench drives loadgen
// through the router to measure fleet-wide throughput against the
// single-server baseline.

import (
	"context"
	"fmt"
	"net"
	"time"

	"aptget/internal/router"
	"aptget/internal/service"
)

// fleetHarness is a running in-process shard fleet.
type fleetHarness struct {
	RouterAddr string
	shards     []*service.Server
	rt         *router.Router
	cancel     context.CancelFunc
	done       chan error
}

// startFleet boots n shards and a router over them. Each shard peers
// with every other (warm handoff) and aggregates same-shape bursts of
// up to aggWindow profiles per aggWait window.
func startFleet(n, aggWindow int, aggWait time.Duration) (*fleetHarness, error) {
	ctx, cancel := context.WithCancel(context.Background())
	h := &fleetHarness{cancel: cancel, done: make(chan error, n+1)}

	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cancel()
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		srv := service.New(service.Config{
			MaxInflight:     256,
			Peers:           peers,
			AggregateWindow: aggWindow,
			AggregateWait:   aggWait,
		})
		h.shards = append(h.shards, srv)
		go func(srv *service.Server, ln net.Listener) {
			h.done <- srv.Serve(ctx, ln)
		}(srv, lns[i])
	}

	rt, err := router.New(router.Config{Shards: addrs})
	if err != nil {
		cancel()
		return nil, err
	}
	h.rt = rt
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, err
	}
	h.RouterAddr = rln.Addr().String()
	go func() { h.done <- rt.Serve(ctx, rln) }()
	return h, nil
}

// Counters sums the shards' counters fleet-wide (in-process — no HTTP
// fan-out needed for the bench).
func (h *fleetHarness) Counters() map[string]int64 {
	sum := make(map[string]int64)
	for _, s := range h.shards {
		for k, v := range s.Counters() {
			sum[k] += v
		}
	}
	for k, v := range h.rt.Counters() {
		sum[k] += v
	}
	return sum
}

// Stop shuts the fleet down and waits for every listener to drain.
func (h *fleetHarness) Stop() error {
	h.cancel()
	var firstErr error
	for i := 0; i < len(h.shards)+1; i++ {
		if err := <-h.done; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet shutdown: %w", err)
		}
	}
	return firstErr
}
