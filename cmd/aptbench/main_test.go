package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aptget/internal/obs"
)

// TestBareInvocationIsUsageError covers the missing-flag case: usage on
// stderr, nothing on stdout, exit status 2.
func TestBareInvocationIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("bare aptbench exit = %d, want 2", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("bare aptbench wrote to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-exp is required") ||
		!strings.Contains(stderr.String(), "Usage") {
		t.Fatalf("bare aptbench stderr missing usage text:\n%s", stderr.String())
	}
}

// TestListIsCleanSuccess covers -list: experiment ids on stdout, exit 0.
func TestListIsCleanSuccess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, id := range []string{"fig6", "table1", "datasets"} {
		if !strings.Contains(stdout.String(), id) {
			t.Fatalf("-list output missing %q:\n%s", id, stdout.String())
		}
	}
	if stderr.Len() != 0 {
		t.Fatalf("-list wrote to stderr: %q", stderr.String())
	}
}

func TestUnknownExperimentIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

// TestReportFlagWritesParsableJSON runs the cheapest experiment (the
// dataset registry — no simulation) with -report and checks the report
// file parses back into the obs schema.
func TestReportFlagWritesParsableJSON(t *testing.T) {
	defer obs.Disable()
	path := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "datasets", "-report", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	found := false
	for _, r := range rep.Records {
		if r.Scope == "exp/datasets" && r.Stage == obs.StageExperiment {
			found = true
		}
	}
	if !found {
		t.Fatalf("report lacks the exp/datasets experiment span: %+v", rep.Records)
	}
	if !strings.Contains(stdout.String(), "== datasets") {
		t.Fatalf("experiment output missing:\n%s", stdout.String())
	}
}

// TestTraceFlagRendersToStderr checks -trace prints the human rendering
// on stderr, keeping stdout's experiment output untouched.
func TestTraceFlagRendersToStderr(t *testing.T) {
	defer obs.Disable()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "datasets", "-trace"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exp/datasets") ||
		!strings.Contains(stderr.String(), "experiment") {
		t.Fatalf("-trace stderr missing span rendering:\n%s", stderr.String())
	}
}
