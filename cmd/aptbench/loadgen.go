// aptbench -loadgen: replay a corpus of collected profiles against a
// live aptgetd and report serving throughput and latency percentiles.
// With no -addr it spins up an in-process server on a loopback port, so
// the mode doubles as the serving stack's end-to-end load test: N
// concurrent clients, each POSTing a profile and GETting the plans back,
// with every response checked for byte-level sanity.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aptget/internal/core"
	"aptget/internal/peaks"
	"aptget/internal/service"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

type loadgenOptions struct {
	Addr     string   // plan service base address; empty = in-process
	Clients  int      // concurrent clients (closed loop)
	Requests int      // total requests across all clients
	Corpus   []string // workload keys to replay
	Quick    bool     // restrict the corpus to its first key

	// Rate > 0 switches to open-loop arrivals: requests arrive as a
	// Poisson process at Rate req/s regardless of completions (each in
	// its own goroutine, up to maxOutstanding), so the run measures how
	// the service behaves at a fixed *offered* load — including the drop
	// and reject rate — instead of letting slow responses throttle the
	// generator. Clients is ignored in this mode.
	Rate float64
	// Seed makes the Poisson arrival sequence reproducible (0 → 1).
	Seed int64

	// Relocate != 0 turns the run into the stale-shape scenario: the
	// cache is warmed with each original profile, then every PC in the
	// corpus (loads and LBR endpoints) is shifted by this constant — the
	// same binary re-linked at a different base — and the shifted
	// profiles are replayed. Their fingerprints are all new, but their
	// loop shapes are not, so the measured run must be served entirely
	// from stale-shape matches: a single "miss" outcome fails the run.
	Relocate uint64
}

// maxOutstanding caps concurrently in-flight open-loop requests. An
// arrival past the cap is dropped and counted: the client gave up, the
// open-loop equivalent of a queue overflow.
const maxOutstanding = 1024

// corpusItem is one replayable profile: the canonical POST body and the
// fingerprint the plans come back under.
type corpusItem struct {
	app  string
	body []byte
	fp   wire.Fingerprint
}

// loadgenStats is the measurement a load run produces, independent of
// the printed report (the serve benchmark reuses it).
type loadgenStats struct {
	OK, Rejected, Failed int64
	Dropped              int64 // open loop: arrivals past the outstanding cap
	Offered              float64
	Elapsed              time.Duration
	Latency              peaks.Summary    // per-request POST+GET milliseconds
	Outcomes             map[string]int64 // ingest outcome -> count (ok requests)
}

// DropRejectRate is the fraction of offered requests not served OK —
// the open-loop overload measurement.
func (s *loadgenStats) DropRejectRate() float64 {
	total := s.OK + s.Rejected + s.Failed + s.Dropped
	if total == 0 {
		return 0
	}
	return float64(s.Rejected+s.Dropped) / float64(total)
}

// runLoadgen drives the load, prints the report, and returns an error
// only for hard failures (unreachable server, corrupted responses).
// Backpressure rejections are measurement, not failure — they are
// reported and left to the caller to judge.
func runLoadgen(opt loadgenOptions, stdout io.Writer) (*loadgenStats, error) {
	if opt.Clients <= 0 {
		opt.Clients = 32
	}
	if opt.Requests <= 0 {
		opt.Requests = 256
	}
	if opt.Quick && len(opt.Corpus) > 1 {
		opt.Corpus = opt.Corpus[:1]
	}

	// Collect the corpus once up front; replay dominates the measurement.
	fmt.Fprintf(stdout, "loadgen: collecting %d profile(s): %s\n",
		len(opt.Corpus), strings.Join(opt.Corpus, ", "))
	corpus := make([]corpusItem, 0, len(opt.Corpus))
	for _, key := range opt.Corpus {
		e, ok := workloads.ByKey(key)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown workload %q (use aptget -list)", key)
		}
		_, body, err := service.CollectProfile(e, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, corpusItem{
			app: key, body: body, fp: wire.FingerprintBytes(body),
		})
	}

	base := opt.Addr
	if base == "" {
		// In-process server, sized so the configured client count stays
		// below the backpressure limit (each client has one outstanding
		// request at a time).
		inflight := service.DefaultMaxInflight
		if 2*opt.Clients > inflight {
			inflight = 2 * opt.Clients
		}
		srv := service.New(service.Config{MaxInflight: inflight})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()
		defer func() {
			cancel()
			<-done
		}()
		base = ln.Addr().String()
		fmt.Fprintf(stdout, "loadgen: in-process server on %s (inflight %d)\n",
			base, inflight)
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        2 * opt.Clients,
			MaxIdleConnsPerHost: 2 * opt.Clients,
		},
		Timeout: 60 * time.Second,
	}

	if opt.Relocate != 0 {
		// Stale-shape scenario: warm the cache with the originals, then
		// replay a corpus whose every PC moved (same binary, new base).
		fmt.Fprintf(stdout, "loadgen: warming cache, then relocating corpus PCs by +%#x\n",
			opt.Relocate)
		for i := range corpus {
			if err := warmProfile(client, base, corpus[i]); err != nil {
				return nil, fmt.Errorf("loadgen: warmup %s: %w", corpus[i].app, err)
			}
			reloc, err := relocateProfile(corpus[i].body, opt.Relocate)
			if err != nil {
				return nil, fmt.Errorf("loadgen: relocating %s: %w", corpus[i].app, err)
			}
			corpus[i] = corpusItem{
				app: corpus[i].app, body: reloc, fp: wire.FingerprintBytes(reloc),
			}
		}
	}

	var (
		next      atomic.Int64 // request ticket dispenser
		ok        atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
		dropped   atomic.Int64 // open loop only
		outcomes  sync.Map // outcome string -> *atomic.Int64
		latencyMu sync.Mutex
		latencies []float64 // per-request POST+GET milliseconds
		errMu     sync.Mutex
		firstErr  error
	)
	countOutcome := func(name string) {
		v, _ := outcomes.LoadOrStore(name, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	hardFail := func(err error) {
		failed.Add(1)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	oneRequest := func(item corpusItem) {
		start := time.Now()
		resp, err := client.Post(base+"/v1/profiles", "application/octet-stream",
			bytes.NewReader(item.body))
		if err != nil {
			hardFail(err)
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected.Add(1)
			return
		}
		var ing service.IngestResponse
		err = json.NewDecoder(resp.Body).Decode(&ing)
		resp.Body.Close()
		if err != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated) {
			hardFail(fmt.Errorf("loadgen: ingest %s: status %d (%v)", item.app, resp.StatusCode, err))
			return
		}
		if ing.Fingerprint != string(item.fp) {
			hardFail(fmt.Errorf("loadgen: server fingerprinted %s as %s, client computed %s",
				item.app, ing.Fingerprint, item.fp))
			return
		}

		resp, err = client.Get(base + "/v1/plans/" + ing.Fingerprint)
		if err != nil {
			hardFail(err)
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected.Add(1)
			return
		}
		plans, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			hardFail(fmt.Errorf("loadgen: fetch plans %s: status %d (%v)", item.app, resp.StatusCode, err))
			return
		}
		if _, err := wire.DecodePlanSet(plans); err != nil {
			hardFail(fmt.Errorf("loadgen: served plans for %s are not canonical: %w", item.app, err))
			return
		}

		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		latencyMu.Lock()
		latencies = append(latencies, ms)
		latencyMu.Unlock()
		ok.Add(1)
		countOutcome(ing.Outcome)
	}

	var wg sync.WaitGroup
	var wall time.Time
	if opt.Rate > 0 {
		// Open loop: Poisson arrivals at the offered rate, each request in
		// its own goroutine. Arrivals finding maxOutstanding requests
		// already in flight are dropped, not queued — queuing would turn
		// the run back into a closed loop.
		seed := opt.Seed
		if seed == 0 {
			seed = 1
		}
		rng := rand.New(rand.NewSource(seed))
		fmt.Fprintf(stdout, "loadgen: open loop, %d arrivals at %.1f req/s (seed %d) -> %s\n",
			opt.Requests, opt.Rate, seed, base)
		sem := make(chan struct{}, maxOutstanding)
		wall = time.Now()
		arrival := wall
		for n := 0; n < opt.Requests; n++ {
			arrival = arrival.Add(time.Duration(rng.ExpFloat64() / opt.Rate * float64(time.Second)))
			if d := time.Until(arrival); d > 0 {
				time.Sleep(d)
			}
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(item corpusItem) {
					defer wg.Done()
					defer func() { <-sem }()
					oneRequest(item)
				}(corpus[n%len(corpus)])
			default:
				dropped.Add(1)
			}
		}
		wg.Wait()
	} else {
		fmt.Fprintf(stdout, "loadgen: %d requests, %d concurrent clients -> %s\n",
			opt.Requests, opt.Clients, base)
		wall = time.Now()
		for c := 0; c < opt.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := next.Add(1) - 1
					if n >= int64(opt.Requests) {
						return
					}
					oneRequest(corpus[int(n)%len(corpus)])
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(wall)

	sum := peaks.Summarize(latencies)
	fmt.Fprintf(stdout, "requests: %d ok, %d rejected (429), %d failed, %d dropped\n",
		ok.Load(), rejected.Load(), failed.Load(), dropped.Load())
	var outcomeParts []string
	for _, name := range []string{"miss", "hit", "stale_match", "handoff", "aggregated"} {
		if v, loaded := outcomes.Load(name); loaded {
			outcomeParts = append(outcomeParts,
				fmt.Sprintf("%s=%d", name, v.(*atomic.Int64).Load()))
		}
	}
	fmt.Fprintf(stdout, "outcomes: %s\n", strings.Join(outcomeParts, " "))
	fmt.Fprintf(stdout, "throughput: %.1f req/s over %.2fs\n",
		float64(ok.Load())/elapsed.Seconds(), elapsed.Seconds())
	fmt.Fprintf(stdout,
		"latency ms (POST profile + GET plans): mean=%.2f P50=%.2f P90=%.2f P99=%.2f max=%.2f (n=%d)\n",
		sum.Mean, sum.P50, sum.P90, sum.P99, sum.Max, sum.N)

	stats := &loadgenStats{
		OK:       ok.Load(),
		Rejected: rejected.Load(),
		Failed:   failed.Load(),
		Dropped:  dropped.Load(),
		Offered:  opt.Rate,
		Elapsed:  elapsed,
		Latency:  sum,
		Outcomes: map[string]int64{},
	}
	outcomes.Range(func(k, v any) bool {
		stats.Outcomes[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	if opt.Rate > 0 {
		fmt.Fprintf(stdout, "open loop: offered %.1f req/s, achieved %.1f req/s, drop/reject rate %.2f%%\n",
			opt.Rate, float64(stats.OK)/elapsed.Seconds(), 100*stats.DropRejectRate())
	}
	if firstErr != nil {
		return stats, fmt.Errorf("%d request(s) failed hard; first: %w", failed.Load(), firstErr)
	}
	if opt.Relocate != 0 {
		if n := stats.Outcomes["miss"] + stats.Outcomes["aggregated"]; n > 0 {
			return stats, fmt.Errorf(
				"loadgen: %d relocated profile(s) re-ran analysis; stale-shape matching "+
					"should have served every one from the warmed cache", n)
		}
		fmt.Fprintf(stdout, "relocate: all %d relocated requests served without re-analysis\n",
			stats.OK)
	}
	return stats, nil
}

// warmProfile ingests one original profile and waits for its plans, so
// the relocated replay has a warm same-shape entry to match.
func warmProfile(client *http.Client, base string, item corpusItem) error {
	resp, err := client.Post(base+"/v1/profiles", "application/octet-stream",
		bytes.NewReader(item.body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("ingest status %d", resp.StatusCode)
	}
	resp, err = client.Get(base + "/v1/plans/" + string(item.fp))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("plans status %d", resp.StatusCode)
	}
	return nil
}

// relocateProfile shifts every PC in a canonical profile frame — the
// delinquent loads and both ends of every LBR entry — by delta,
// re-canonicalizes, and re-encodes. The result models the same binary
// loaded at a different base: new fingerprint, identical loop shape.
func relocateProfile(body []byte, delta uint64) ([]byte, error) {
	p, err := wire.DecodeProfile(body)
	if err != nil {
		return nil, err
	}
	for i := range p.Loads {
		p.Loads[i].PC += delta
	}
	for i := range p.Samples {
		for j := range p.Samples[i].Entries {
			p.Samples[i].Entries[j].From += delta
			p.Samples[i].Entries[j].To += delta
		}
	}
	p.Canonicalize()
	return wire.EncodeProfile(p), nil
}
