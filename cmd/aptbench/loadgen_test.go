package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestLoadgenInProcess is the serving stack's end-to-end load test: 32
// concurrent clients replaying one profile against an in-process server
// must complete every request — zero backpressure rejections, zero hard
// failures — and the report must carry the throughput and percentile
// lines the EXPERIMENTS.md schema documents.
func TestLoadgenInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-loadgen", "-quick", "-corpus", "IS",
		"-clients", "32", "-requests", "64"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exit = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "requests: 64 ok, 0 rejected (429), 0 failed") {
		t.Fatalf("loadgen dropped requests below the backpressure limit:\n%s", out)
	}
	// One miss (the first ingest analyzes), the rest exact hits.
	if !strings.Contains(out, "miss=1") || !strings.Contains(out, "hit=63") {
		t.Fatalf("unexpected outcome mix:\n%s", out)
	}
	for _, want := range []string{"throughput:", "req/s", "P50=", "P99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if m := regexp.MustCompile(`\(n=(\d+)\)`).FindStringSubmatch(out); m == nil || m[1] != "64" {
		t.Fatalf("latency summary not built from all 64 requests:\n%s", out)
	}
}

func TestLoadgenUnknownCorpusKeyFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-loadgen", "-corpus", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown corpus exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}
