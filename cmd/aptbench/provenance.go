package main

// Provenance stamping for the BENCH_*.json reports: every generated
// report records which commit produced it, so a perf trajectory can be
// walked back to the exact tree it measured.

import (
	"os/exec"
	"runtime/debug"
	"strings"
	"sync"
)

var gitCommitOnce = sync.OnceValue(func() string {
	// Binaries built by `go build` carry the VCS stamp; `go run` and
	// test binaries usually do not, so fall back to asking git.
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
				len(strings.TrimSpace(string(st))) > 0 {
				rev += "+dirty"
			}
			return rev
		}
	}
	return "unknown"
})

// gitCommit identifies the commit the benchmark binary was built from
// ("+dirty" when the tree had local modifications), or "unknown" when
// neither the build stamp nor a git checkout is available.
func gitCommit() string { return gitCommitOnce() }
