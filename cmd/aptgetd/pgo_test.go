package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aptget/internal/pgo"
)

func TestPGOPeriodRequiresDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-pgo-period", "1s"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("-pgo-period without -pgo-dir exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-pgo-dir") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestPGODurationLongerThanPeriodIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-pgo-dir", t.TempDir(), "-pgo-period", "1s", "-pgo-duration", "2s",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("duration > period exit = %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

// TestStartupBuildLine: the daemon announces its build identity before
// serving, in greppable form, and this (non-PGO) test binary says
// pgo=none.
func TestStartupBuildLine(t *testing.T) {
	var stdout syncBuffer
	_, cancel, done := startDaemon(t, &stdout)
	defer cancel()

	want := "aptgetd: build " + pgo.BuildID()
	if !strings.Contains(stdout.String(), want) {
		t.Fatalf("stdout missing build line %q:\n%s", want, stdout.String())
	}
	if !strings.Contains(stdout.String(), "pgo=none") {
		t.Fatalf("stdout missing pgo=none:\n%s", stdout.String())
	}
	cancel()
	<-done
}

// TestSelfPGORoundTrip: a daemon started with an artifact store captures
// on demand, persists with store=1, and serves the artifact back via
// /v1/pprof/merged — the full harness fetch path, against the real
// binary lifecycle.
func TestSelfPGORoundTrip(t *testing.T) {
	dir := t.TempDir()
	var stdout syncBuffer
	base, cancel, done := startDaemon(t, &stdout,
		"-pgo-dir", dir, "-pgo-keep", "4")
	defer cancel()

	if !strings.Contains(stdout.String(), "self-pgo artifact store") {
		t.Fatalf("stdout missing self-pgo config line:\n%s", stdout.String())
	}

	resp, err := http.Get(base + "/v1/pprof/cpu?seconds=0.1&store=1")
	if err != nil {
		t.Fatal(err)
	}
	captured, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture = %d (%s)", resp.StatusCode, captured)
	}

	resp, err = http.Get(base + "/v1/pprof/merged")
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged = %d (%s)", resp.StatusCode, merged)
	}
	if !bytes.Equal(merged, captured) {
		t.Fatal("merged differs from the single stored capture")
	}
	if err := pgo.ValidateProfile(merged); err != nil {
		t.Fatalf("daemon served an invalid profile: %v", err)
	}

	// The artifact landed under the running build's shelf on disk.
	ents, err := os.ReadDir(filepath.Join(dir, pgo.BuildID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("artifact shelf holds %d files, want 1", len(ents))
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d\nstdout: %s", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// TestWindowedDaemonShutdownIsClean: a daemon running the windowed loop
// drains it on SIGTERM-equivalent cancellation and still exits 0.
func TestWindowedDaemonShutdownIsClean(t *testing.T) {
	var stdout syncBuffer
	_, cancel, done := startDaemon(t, &stdout,
		"-pgo-dir", t.TempDir(), "-pgo-period", "200ms", "-pgo-duration", "50ms")
	if !strings.Contains(stdout.String(), "self-pgo capturing 50ms windows every 200ms") {
		t.Fatalf("stdout missing windowed config line:\n%s", stdout.String())
	}
	time.Sleep(250 * time.Millisecond) // let at least one tick fire (idle → skipped)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d\nstdout: %s", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit")
	}
	if !strings.Contains(stdout.String(), "shut down cleanly") {
		t.Fatalf("stdout missing shutdown line:\n%s", stdout.String())
	}
}
