// Command aptgetd is the continuous-profiling plan service: a daemon
// that ingests wire-encoded profiles, derives prefetch plans with the
// paper's analytical model, and serves them from a content-addressed
// cache with single-flight deduplication and stale-profile matching.
//
// Usage:
//
//	aptgetd                          # listen on 127.0.0.1:7717
//	aptgetd -addr :8080 -inflight 128
//	aptgetd -report report.json      # write obs span report on shutdown
//
// As a fleet shard it additionally pulls warm handoffs from (and
// optionally replicates to) its siblings, and can aggregate fleet
// profile bursts into single analyses:
//
//	aptgetd -addr :7701 -peers 127.0.0.1:7702,127.0.0.1:7703 \
//	        -replicate -aggregate-window 8 -aggregate-wait 50ms
//
// With -pgo-dir the daemon profiles itself: a windowed runtime/pprof
// capture loop feeds a rotation-bounded artifact store keyed by the
// binary's build ID, and /v1/pprof/merged serves the best stored
// profile as the `go build -pgo` candidate for the next rebuild:
//
//	aptgetd -pgo-dir /var/lib/aptgetd/pgo -pgo-period 60s -pgo-duration 10s
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"aptget/internal/aggregate"
	"aptget/internal/obs"
	"aptget/internal/pgo"
	"aptget/internal/planstore"
	"aptget/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable daemon body: listen, serve until ctx is cancelled,
// optionally write the obs report. Exit status: 0 on clean shutdown,
// 1 for runtime failures, 2 for usage errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptgetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7717", "listen address (host:port, :0 picks a free port)")
	cache := fs.Int("cache", planstore.DefaultCapacity, "plan cache capacity in entries")
	inflight := fs.Int("inflight", service.DefaultMaxInflight, "max concurrently served requests before 429")
	timeout := fs.Duration("timeout", service.DefaultRequestTimeout, "per-request deadline")
	report := fs.String("report", "", "write per-stage observability records to this JSON file on shutdown")
	peers := fs.String("peers", "", "comma-separated sibling shard addresses for warm handoff (host:port,...)")
	replicate := fs.Bool("replicate", false, "push every cached plan set to all -peers (best-effort)")
	aggWindow := fs.Int("aggregate-window", 0, "merge up to N same-shape profiles into one analysis (0 disables)")
	aggWait := fs.Duration("aggregate-wait", 0, "max time the first profile of a window waits for the burst (0 selects the default)")
	peerTimeout := fs.Duration("peer-timeout", planstore.DefaultRemoteTimeout, "per-peer handoff/replication deadline")
	pgoDir := fs.String("pgo-dir", "", "root of the self-PGO profile artifact store (\"\" disables persistence)")
	pgoPeriod := fs.Duration("pgo-period", 0, "windowed self-capture cadence (0 disables the loop; requires -pgo-dir)")
	pgoDuration := fs.Duration("pgo-duration", 0, "length of one self-capture window (0 selects the default)")
	pgoKeep := fs.Int("pgo-keep", pgo.DefaultKeep, "max profile artifacts kept before oldest-first rotation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if *replicate && len(peerList) == 0 {
		fmt.Fprintln(stderr, "aptgetd: -replicate requires -peers")
		return 2
	}
	if *pgoPeriod > 0 && *pgoDir == "" {
		fmt.Fprintln(stderr, "aptgetd: -pgo-period requires -pgo-dir")
		return 2
	}

	// The obs registry accumulates one span per analysis for the process
	// lifetime, so a long-running daemon only enables it when a report
	// was asked for. The plan-cache counters on /v1/metrics are atomics
	// and work either way.
	if *report != "" {
		obs.Enable()
		obs.Reset()
	}

	capt, err := pgo.New(pgo.Config{
		Dir:      *pgoDir,
		Period:   *pgoPeriod,
		Duration: *pgoDuration,
		Keep:     *pgoKeep,
	})
	if err != nil {
		fmt.Fprintf(stderr, "aptgetd: %v\n", err)
		return 2
	}

	srv := service.New(service.Config{
		CacheCapacity:   *cache,
		MaxInflight:     *inflight,
		RequestTimeout:  *timeout,
		Peers:           peerList,
		Replicate:       *replicate,
		AggregateWindow: *aggWindow,
		AggregateWait:   *aggWait,
		PeerTimeout:     *peerTimeout,
		Capturer:        capt,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "aptgetd: %v\n", err)
		return 1
	}
	b := pgo.Binary()
	pgoTag := "none"
	if b.PGOBuilt {
		pgoTag = b.PGOProfile
	}
	fmt.Fprintf(stdout, "aptgetd: build %s %s pgo=%s\n", b.ID, b.GoVersion, pgoTag)
	fmt.Fprintf(stdout, "aptgetd: listening on %s (cache %d entries, %d in-flight, %s timeout)\n",
		ln.Addr(), *cache, *inflight, *timeout)
	if *pgoDir != "" {
		if *pgoPeriod > 0 {
			fmt.Fprintf(stdout, "aptgetd: self-pgo capturing %s windows every %s into %s (keep %d)\n",
				capt.Duration(), *pgoPeriod, *pgoDir, *pgoKeep)
		} else {
			fmt.Fprintf(stdout, "aptgetd: self-pgo artifact store %s (keep %d, on-demand captures only)\n",
				*pgoDir, *pgoKeep)
		}
	}
	if len(peerList) > 0 {
		mode := "handoff"
		if *replicate {
			mode = "handoff+replicate"
		}
		fmt.Fprintf(stdout, "aptgetd: fleet peers %s (%s)\n", strings.Join(peerList, ","), mode)
	}
	if *aggWindow >= 2 {
		wait := *aggWait
		if wait <= 0 {
			wait = aggregate.DefaultWait
		}
		fmt.Fprintf(stdout, "aptgetd: aggregating up to %d same-shape profiles per %s window\n",
			*aggWindow, wait)
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(stderr, "aptgetd: %v\n", err)
		return 1
	}

	if *report != "" {
		data, err := obs.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(stderr, "aptgetd: marshal report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "aptgetd: write report: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "aptgetd: report written to %s\n", *report)
	}
	fmt.Fprintln(stdout, "aptgetd: shut down cleanly")
	return 0
}
