package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"aptget/internal/core"
	"aptget/internal/obs"
	"aptget/internal/service"
	"aptget/internal/workloads"
)

// syncBuffer lets the test read the daemon's stdout while run() is still
// writing it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a cancel func, and the channel its exit status arrives on.
func startDaemon(t *testing.T, stdout *syncBuffer, extraArgs ...string) (string, context.CancelFunc, chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	var stderr syncBuffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(ctx, args, stdout, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], cancel, done
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	t.Fatalf("daemon never announced its address\nstdout: %s\nstderr: %s",
		stdout.String(), stderr.String())
	return "", nil, nil
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

func TestUnlistenableAddressIsRuntimeError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-addr", "256.0.0.1:1"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bad address exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "aptgetd:") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

// TestLifecycle: the daemon announces its real address, answers healthz,
// and exits 0 on context cancellation.
func TestLifecycle(t *testing.T) {
	var stdout syncBuffer
	base, cancel, done := startDaemon(t, &stdout)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d, want 0\nstdout: %s", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	if !strings.Contains(stdout.String(), "shut down cleanly") {
		t.Fatalf("stdout missing shutdown line:\n%s", stdout.String())
	}
}

// TestReportAgreesWithMetrics: with -report, one ingest shows up both in
// the /v1/metrics counters and — after shutdown — in the written obs
// report's serve span, with an analysis span proving the daemon ran the
// model exactly once.
func TestReportAgreesWithMetrics(t *testing.T) {
	e, ok := workloads.ByKey("IS")
	if !ok {
		t.Fatal("IS not in registry")
	}
	_, body, err := service.CollectProfile(e, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	defer obs.Disable() // run() enables the registry for -report
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var stdout syncBuffer
	base, cancel, done := startDaemon(t, &stdout, "-report", reportPath)

	resp, err := http.Post(base+"/v1/profiles", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest = %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m service.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Counters["plan_cache_misses"] != 1 {
		t.Fatalf("metrics counters = %v", m.Counters)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit = %d\nstdout: %s", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit")
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	var serveMisses int64 = -1
	analyses := 0
	for _, rec := range rep.Records {
		if rec.Scope == "aptgetd/service" && rec.Stage == obs.StageServe {
			serveMisses = rec.Counters["plan_cache_misses"]
		}
		if rec.Scope == "aptgetd/IS" && rec.Stage == obs.StageAnalysis {
			analyses++
		}
	}
	if serveMisses != 1 {
		t.Fatalf("report serve span plan_cache_misses = %d, want 1 (matching /v1/metrics)", serveMisses)
	}
	if analyses != 1 {
		t.Fatalf("report shows %d daemon analyses, want 1", analyses)
	}
}
