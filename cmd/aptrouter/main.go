// Command aptrouter is the fleet front door: it proxies plan-service
// requests to the aptgetd shard owning each profile fingerprint on a
// consistent-hash ring, failing over to the next ring member when a
// shard dies.
//
// Usage:
//
//	aptrouter -shards 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703
//	aptrouter -addr :7700 -shards ... -retries 2 -timeout 30s
//
// The router is stateless: routing depends only on the shard list (in
// any order) and the request content, so any number of routers in front
// of one fleet agree on every key.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"aptget/internal/ring"
	"aptget/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable router body. Exit status: 0 on clean shutdown,
// 1 for runtime failures, 2 for usage errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7700", "listen address (host:port, :0 picks a free port)")
	shards := fs.String("shards", "", "comma-separated aptgetd shard addresses (required)")
	vnodes := fs.Int("vnodes", ring.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
	retries := fs.Int("retries", 0, "max distinct shards tried per request, owner included (0 = all)")
	timeout := fs.Duration("timeout", router.DefaultTimeout, "per-upstream-attempt deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		fmt.Fprintln(stderr, "aptrouter: -shards is required")
		return 2
	}

	rt, err := router.New(router.Config{
		Shards:  shardList,
		VNodes:  *vnodes,
		Retries: *retries,
		Timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "aptrouter: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "aptrouter: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "aptrouter: listening on %s, routing to %d shards (%d vnodes each)\n",
		ln.Addr(), len(rt.Ring().Members()), *vnodes)

	if err := rt.Serve(ctx, ln); err != nil {
		fmt.Fprintf(stderr, "aptrouter: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "aptrouter: shut down cleanly")
	return 0
}
