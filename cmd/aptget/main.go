// Command aptget runs one benchmark under a chosen prefetching variant
// and prints a perf-stat-style report, the prefetch plans, and the
// headline speedup.
//
// Usage:
//
//	aptget -app BFS                  # baseline vs A&J vs APT-GET
//	aptget -app HJ8 -variant aptget  # one variant only
//	aptget -list                     # application list
package main

import (
	"flag"
	"fmt"
	"os"

	"aptget/internal/core"
	"aptget/internal/passes"
	"aptget/internal/workloads"
)

func main() {
	app := flag.String("app", "", "application key (see -list)")
	variant := flag.String("variant", "compare", "baseline | static | aptget | compare")
	staticDist := flag.Int64("static-distance", 32, "prefetch distance for the static pass")
	dump := flag.Bool("dump", false, "print the IR after APT-GET's transformation")
	list := flag.Bool("list", false, "list applications")
	flag.Parse()

	if *list || *app == "" {
		fmt.Println("applications:")
		for _, e := range workloads.Registry() {
			fmt.Printf("  %-8s %s\n", e.Key, e.Description)
		}
		if *app == "" {
			os.Exit(2)
		}
		return
	}

	entry, ok := workloads.ByKey(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "aptget: unknown application %q (use -list)\n", *app)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Static.Distance = *staticDist

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aptget: %v\n", err)
		os.Exit(1)
	}

	if *dump {
		w := entry.New()
		_, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			fail(err)
		}
		p, err := w.Build()
		if err != nil {
			fail(err)
		}
		rep, err := passes.AptGet(p, plans, cfg.Inject)
		if err != nil {
			fail(err)
		}
		fmt.Printf("; %s after APT-GET (%s)\n%s", entry.Key, rep, p.Func)
		return
	}

	switch *variant {
	case "baseline":
		r, err := core.RunBaseline(entry.New(), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s (baseline)\n%s", entry.Key, r.Counters.String())
	case "static":
		r, err := core.RunStatic(entry.New(), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s (ainsworth-jones, D=%d)\n%s", entry.Key, *staticDist, r.Counters.String())
		fmt.Printf("pass: %s\n", r.Report)
	case "aptget":
		r, err := core.RunAptGet(entry.New(), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s (apt-get)\n%s", entry.Key, r.Counters.String())
		fmt.Printf("pass: %s\n", r.Report)
		for _, p := range r.Plans {
			fmt.Printf("plan: %-18s pc=%d distance=%d site=%s trip=%.1f IC=%.0f MC=%.0f %s\n",
				p.LoadName, p.LoadPC, p.Distance, p.Site, p.AvgTrip, p.Inner.IC, p.Inner.MC, p.Fallback)
		}
	case "compare":
		cmp, err := core.Compare(entry.New(), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s\n", entry.Key)
		fmt.Printf("  baseline: %12d cycles\n", cmp.Base.Counters.Cycles)
		fmt.Printf("  A&J:      %12d cycles  %.2fx\n",
			cmp.Static.Counters.Cycles, cmp.StaticSpeedup())
		fmt.Printf("  APT-GET:  %12d cycles  %.2fx\n",
			cmp.AptGet.Counters.Cycles, cmp.AptGetSpeedup())
		for _, p := range cmp.AptGet.Plans {
			fmt.Printf("  plan: %-18s pc=%d distance=%d site=%s trip=%.1f %s\n",
				p.LoadName, p.LoadPC, p.Distance, p.Site, p.AvgTrip, p.Fallback)
		}
	default:
		fmt.Fprintf(os.Stderr, "aptget: unknown variant %q\n", *variant)
		os.Exit(2)
	}
}
