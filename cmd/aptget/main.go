// Command aptget runs one benchmark under a chosen prefetching variant
// and prints a perf-stat-style report, the prefetch plans, and the
// headline speedup. It is also the serving subsystem's offline client:
// -emit-profile writes the canonical wire profile a client would POST to
// aptgetd, and -emit-plans writes the plan set the in-process pipeline
// derives — the byte-for-byte reference the served plans are checked
// against.
//
// Usage:
//
//	aptget -app BFS                  # baseline vs A&J vs APT-GET
//	aptget -app HJ8 -variant aptget  # one variant only
//	aptget -list                     # application list
//	aptget -app IS -emit-profile is.profile -emit-plans is.plans
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aptget/internal/core"
	"aptget/internal/passes"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body. Exit status: 0 on success (including
// -list), 1 for runtime failures, 2 for usage errors (no -app, unknown
// application or variant, bad flags).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptget", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "", "application key (see -list)")
	variant := fs.String("variant", "compare", "baseline | static | aptget | compare")
	staticDist := fs.Int64("static-distance", 32, "prefetch distance for the static pass")
	dump := fs.Bool("dump", false, "print the IR after APT-GET's transformation")
	list := fs.Bool("list", false, "list applications")
	emitProfile := fs.String("emit-profile", "", "profile the app and write the canonical wire profile to this file")
	emitPlans := fs.String("emit-plans", "", "write the in-process pipeline's canonical wire plan set to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list || *app == "" {
		fmt.Fprintln(stdout, "applications:")
		for _, e := range workloads.Registry() {
			fmt.Fprintf(stdout, "  %-8s %s\n", e.Key, e.Description)
		}
		if *app == "" && !*list {
			fmt.Fprintln(stderr, "aptget: -app is required (use -list for application keys)")
			return 2
		}
		return 0
	}

	entry, ok := workloads.ByKey(*app)
	if !ok {
		fmt.Fprintf(stderr, "aptget: unknown application %q (use -list)\n", *app)
		return 2
	}
	cfg := core.DefaultConfig()
	cfg.Static.Distance = *staticDist

	fail := func(err error) int {
		fmt.Fprintf(stderr, "aptget: %v\n", err)
		return 1
	}

	if *emitProfile != "" || *emitPlans != "" {
		w := entry.New()
		prof, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			return fail(err)
		}
		if *emitProfile != "" {
			// Build is deterministic: this program is the one that was
			// profiled, loop shapes included.
			prog, err := w.Build()
			if err != nil {
				return fail(err)
			}
			wp := wire.ProfileOf(entry.Key, prog, prof)
			data := wire.EncodeProfile(wp)
			if err := os.WriteFile(*emitProfile, data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "profile %s: %d bytes, fingerprint %s, shape %s\n",
				*emitProfile, len(data), wire.FingerprintBytes(data), wp.ShapeHash())
		}
		if *emitPlans != "" {
			data := wire.EncodePlanSet(wire.PlanSetFromAnalysis(entry.Key, plans, cfg.Analysis))
			if err := os.WriteFile(*emitPlans, data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "plans %s: %d bytes, %d plans\n",
				*emitPlans, len(data), len(plans))
		}
		return 0
	}

	if *dump {
		w := entry.New()
		_, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			return fail(err)
		}
		p, err := w.Build()
		if err != nil {
			return fail(err)
		}
		rep, err := passes.AptGet(p, plans, cfg.Inject)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "; %s after APT-GET (%s)\n%s", entry.Key, rep, p.Func)
		return 0
	}

	switch *variant {
	case "baseline":
		r, err := core.RunBaseline(entry.New(), cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s (baseline)\n%s", entry.Key, r.Counters.String())
	case "static":
		r, err := core.RunStatic(entry.New(), cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s (ainsworth-jones, D=%d)\n%s", entry.Key, *staticDist, r.Counters.String())
		fmt.Fprintf(stdout, "pass: %s\n", r.Report)
	case "aptget":
		r, err := core.RunAptGet(entry.New(), cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s (apt-get)\n%s", entry.Key, r.Counters.String())
		fmt.Fprintf(stdout, "pass: %s\n", r.Report)
		for _, p := range r.Plans {
			fmt.Fprintf(stdout, "plan: %-18s pc=%d distance=%d site=%s trip=%.1f IC=%.0f MC=%.0f %s\n",
				p.LoadName, p.LoadPC, p.Distance, p.Site, p.AvgTrip, p.Inner.IC, p.Inner.MC, p.Fallback)
		}
	case "compare":
		cmp, err := core.Compare(entry.New(), cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s\n", entry.Key)
		fmt.Fprintf(stdout, "  baseline: %12d cycles\n", cmp.Base.Counters.Cycles)
		fmt.Fprintf(stdout, "  A&J:      %12d cycles  %.2fx\n",
			cmp.Static.Counters.Cycles, cmp.StaticSpeedup())
		fmt.Fprintf(stdout, "  APT-GET:  %12d cycles  %.2fx\n",
			cmp.AptGet.Counters.Cycles, cmp.AptGetSpeedup())
		for _, p := range cmp.AptGet.Plans {
			fmt.Fprintf(stdout, "  plan: %-18s pc=%d distance=%d site=%s trip=%.1f %s\n",
				p.LoadName, p.LoadPC, p.Distance, p.Site, p.AvgTrip, p.Fallback)
		}
	default:
		fmt.Fprintf(stderr, "aptget: unknown variant %q\n", *variant)
		return 2
	}
	return 0
}
