package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aptget/internal/wire"
)

// TestBareInvocationIsUsageError: no -app prints the application list
// (so the user sees what to pass) but exits 2 — scripts must not treat
// a flagless invocation as success.
func TestBareInvocationIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("bare aptget exit = %d, want 2", code)
	}
	if !strings.Contains(stdout.String(), "applications:") ||
		!strings.Contains(stdout.String(), "BFS") {
		t.Fatalf("bare aptget did not list applications:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-app is required") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestListIsCleanSuccess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, key := range []string{"BFS", "IS", "HJ8", "G500"} {
		if !strings.Contains(stdout.String(), key) {
			t.Fatalf("-list output missing %q:\n%s", key, stdout.String())
		}
	}
	if stderr.Len() != 0 {
		t.Fatalf("-list wrote to stderr: %q", stderr.String())
	}
}

func TestUnknownApplicationIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-app", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown app exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown application") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestUnknownVariantIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-app", "IS", "-variant", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown variant exit = %d, want 2", code)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

// TestEmitProfileAndPlans: both artifacts are written as canonical wire
// frames that decode back, and stdout names the profile fingerprint the
// serving workflow keys on.
func TestEmitProfileAndPlans(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "is.profile")
	plansPath := filepath.Join(dir, "is.plans")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-app", "IS",
		"-emit-profile", profPath, "-emit-plans", plansPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}

	profData, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := wire.DecodeProfile(profData)
	if err != nil {
		t.Fatalf("emitted profile does not decode: %v", err)
	}
	if wp.App != "IS" || len(wp.Samples) == 0 || len(wp.Loops) == 0 {
		t.Fatalf("emitted profile is hollow: app=%s samples=%d loops=%d",
			wp.App, len(wp.Samples), len(wp.Loops))
	}
	if !strings.Contains(stdout.String(), string(wire.FingerprintBytes(profData))) {
		t.Fatalf("stdout does not name the profile fingerprint:\n%s", stdout.String())
	}

	plansData, err := os.ReadFile(plansPath)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := wire.DecodePlanSet(plansData)
	if err != nil {
		t.Fatalf("emitted plan set does not decode: %v", err)
	}
	if ps.App != "IS" || len(ps.Plans) == 0 {
		t.Fatalf("emitted plan set is hollow: app=%s plans=%d", ps.App, len(ps.Plans))
	}
}
