// Package aptget is the public API of this APT-GET reproduction
// (EuroSys 2022: profile-guided timely software prefetching).
//
// The pipeline mirrors the paper end to end on a simulated substrate:
//
//	w := aptget.Workloads()[0].New()          // a Table 3 application
//	cmp, err := aptget.Compare(w, aptget.DefaultConfig())
//	fmt.Printf("APT-GET %.2fx vs static %.2fx\n",
//	        cmp.AptGetSpeedup(), cmp.StaticSpeedup())
//
// Compare runs the no-prefetching baseline, the Ainsworth & Jones static
// pass, and the full APT-GET pipeline (LBR+PEBS profiling → CWT latency
// peak analysis → Equation 1 prefetch distance → Equation 2 injection
// site → prefetch-slice injection) and verifies every run against a
// native Go reference implementation.
//
// Lower-level entry points (ProfileAndPlan, RunWithPlans) expose the
// intermediate artifacts: profiles, per-load prefetch plans, and pass
// reports. The experiments registry (Experiments) regenerates every
// table and figure of the paper's evaluation.
package aptget

import (
	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/experiments"
	"aptget/internal/mem"
	"aptget/internal/profile"
	"aptget/internal/workloads"
)

// Re-exported pipeline types.
type (
	// Workload is an application under optimization; implementations
	// must build deterministically and verify their results.
	Workload = core.Workload
	// Config bundles machine, profiling, analysis, and pass options.
	Config = core.Config
	// Result is one executed variant with its PMU counters.
	Result = core.Result
	// Comparison is the baseline / static / APT-GET three-way result.
	Comparison = core.Comparison
	// Plan is a per-delinquent-load prefetch decision (distance + site).
	Plan = analysis.Plan
	// Profile is the raw LBR+PEBS profiling output.
	Profile = profile.Profile
	// MachineConfig describes the simulated memory system.
	MachineConfig = mem.Config
	// WorkloadEntry is one Table 3 application constructor.
	WorkloadEntry = workloads.Entry
	// ExperimentOptions configures experiment runs.
	ExperimentOptions = experiments.Options
)

// DefaultConfig returns the evaluation configuration (scaled Table 2
// machine).
func DefaultConfig() Config { return core.DefaultConfig() }

// MachineScaled returns the scaled Table 2 machine model.
func MachineScaled() MachineConfig { return mem.ConfigScaled() }

// MachineXeon5218 returns the paper's Table 2 machine model at full size.
func MachineXeon5218() MachineConfig { return mem.ConfigXeon5218() }

// RunBaseline executes a workload without software prefetching.
func RunBaseline(w Workload, cfg Config) (*Result, error) { return core.RunBaseline(w, cfg) }

// RunStatic executes a workload under the Ainsworth & Jones static pass.
func RunStatic(w Workload, cfg Config) (*Result, error) { return core.RunStatic(w, cfg) }

// RunAptGet executes the full APT-GET pipeline on a workload.
func RunAptGet(w Workload, cfg Config) (*Result, error) { return core.RunAptGet(w, cfg) }

// RunPipeline is RunAptGet under its descriptive name: profile → analyze
// → inject → execute, with per-plan provenance on the Result.
func RunPipeline(w Workload, cfg Config) (*Result, error) { return core.RunPipeline(w, cfg) }

// ProfileAndPlan profiles a workload and returns its prefetch plans.
func ProfileAndPlan(w Workload, cfg Config) (*Profile, []Plan, error) {
	return core.ProfileAndPlan(w, cfg)
}

// RunWithPlans injects the given plans into a fresh build and runs it
// (the Figure 12 train/test mechanism).
func RunWithPlans(w Workload, plans []Plan, cfg Config) (*Result, error) {
	return core.RunWithPlans(w, plans, cfg)
}

// Compare runs baseline, static, and APT-GET variants of a workload.
func Compare(w Workload, cfg Config) (*Comparison, error) { return core.Compare(w, cfg) }

// GeoMean is the paper's average-speedup aggregation.
func GeoMean(xs []float64) float64 { return core.GeoMean(xs) }

// Workloads returns the Table 3 application registry.
func Workloads() []WorkloadEntry { return workloads.Registry() }

// WorkloadByKey looks up a Table 3 application.
func WorkloadByKey(key string) (WorkloadEntry, bool) { return workloads.ByKey(key) }

// Experiments returns the table/figure regeneration registry
// (DESIGN.md §4).
func Experiments() map[string]experiments.Runner { return experiments.All() }
