package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aptget/internal/core"
	"aptget/internal/lbr"
	"aptget/internal/obs"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

func mustEntry(t *testing.T, key string) workloads.Entry {
	t.Helper()
	e, ok := workloads.ByKey(key)
	if !ok {
		t.Fatalf("workload %s not in registry", key)
	}
	return e
}

func mustCollect(t *testing.T, key string) (*wire.Profile, []byte) {
	t.Helper()
	wp, body, err := CollectProfile(mustEntry(t, key), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return wp, body
}

func postProfile(t *testing.T, ts *httptest.Server, body []byte) (int, IngestResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ir
}

func getPlans(t *testing.T, ts *httptest.Server, fp string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/plans/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServedPlanMatchesPipeline is the acceptance criterion: the plan
// set the daemon serves for a profile is byte-identical to what the
// in-process core.RunPipeline computes for the same workload. Builds and
// the simulator are deterministic, so the two independently-collected
// profiles (and hence the two analyses) agree exactly.
func TestServedPlanMatchesPipeline(t *testing.T) {
	const app = "IS"
	cfg := core.DefaultConfig()
	res, err := core.RunPipeline(mustEntry(t, app).New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.EncodePlanSet(wire.PlanSetFromAnalysis(app, res.Plans, cfg.Analysis))

	_, body := mustCollect(t, app)
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	status, ing := postProfile(t, ts, body)
	if status != http.StatusCreated || ing.Outcome != "miss" {
		t.Fatalf("first ingest = %d %+v, want 201 miss", status, ing)
	}
	if ing.Plans == 0 {
		t.Fatal("ingest reported zero plans")
	}
	status, got := getPlans(t, ts, ing.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("GET plans = %d", status)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served plans differ from core.RunPipeline plans:\n got %d bytes\nwant %d bytes",
			len(got), len(want))
	}
	// Re-ingesting the identical profile is an exact hit.
	status, ing = postProfile(t, ts, body)
	if status != http.StatusOK || ing.Outcome != "hit" {
		t.Fatalf("repeat ingest = %d %+v, want 200 hit", status, ing)
	}
}

// TestSingleFlightConcurrentIngest: 64 concurrent POSTs of the same
// profile run the analysis exactly once — asserted both through the
// reported outcomes and by counting analysis spans in the obs registry.
func TestSingleFlightConcurrentIngest(t *testing.T) {
	const app = "IS"
	_, body := mustCollect(t, app) // collect before enabling obs

	obs.Enable()
	obs.Reset()
	defer obs.Disable()

	srv := New(Config{MaxInflight: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 64
	statuses := make([]int, n)
	outcomes := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/profiles",
				"application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var ir IngestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Error(err)
				return
			}
			statuses[i] = resp.StatusCode
			outcomes[i] = ir.Outcome
		}(i)
	}
	wg.Wait()

	miss, hit := 0, 0
	for i := range outcomes {
		switch outcomes[i] {
		case "miss":
			miss++
		case "hit":
			hit++
		default:
			t.Fatalf("request %d: status %d outcome %q", i, statuses[i], outcomes[i])
		}
	}
	if miss != 1 || hit != n-1 {
		t.Fatalf("outcomes: %d miss / %d hit, want 1 / %d", miss, hit, n-1)
	}

	analyses := 0
	for _, rec := range obs.Snapshot().Records {
		if rec.Scope == "aptgetd/"+app && rec.Stage == obs.StageAnalysis {
			analyses++
		}
	}
	if analyses != 1 {
		t.Fatalf("daemon ran %d analyses for %d concurrent identical posts, want exactly 1",
			analyses, n)
	}

	m := getMetrics(t, ts)
	if m.Counters["plan_cache_misses"] != 1 || m.Counters["plan_cache_hits"] != int64(n-1) {
		t.Fatalf("metrics counters = %v", m.Counters)
	}
	if m.Obs == nil {
		t.Fatal("metrics response missing obs report while registry enabled")
	}
}

// driftPCs deep-copies the profile and shifts every raw PC, modeling a
// recompile that moved code but kept the loop structure.
func driftPCs(p *wire.Profile, delta uint64) *wire.Profile {
	out := &wire.Profile{
		App:          p.App,
		Cycles:       p.Cycles,
		Instructions: p.Instructions,
		Loops:        append([]wire.LoopShape(nil), p.Loops...),
	}
	for _, l := range p.Loads {
		l.PC += delta
		out.Loads = append(out.Loads, l)
	}
	for _, s := range p.Samples {
		entries := make([]lbr.Entry, len(s.Entries))
		for i, e := range s.Entries {
			entries[i] = lbr.Entry{From: e.From + delta, To: e.To + delta, Cycle: e.Cycle}
		}
		out.Samples = append(out.Samples, lbr.Sample{Cycle: s.Cycle, Entries: entries})
	}
	return out
}

// TestStaleProfileMatch: a profile whose PCs drifted but whose loop
// structure matches is served the prior plans verbatim, flagged
// stale_matched, without a second analysis.
func TestStaleProfileMatch(t *testing.T) {
	const app = "IS"
	wp, body := mustCollect(t, app)

	obs.Enable()
	obs.Reset()
	defer obs.Disable()

	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	status, orig := postProfile(t, ts, body)
	if status != http.StatusCreated {
		t.Fatalf("original ingest = %d", status)
	}

	driftBody := wire.EncodeProfile(driftPCs(wp, 4096))
	if bytes.Equal(driftBody, body) {
		t.Fatal("drifted profile encoded identically; test is vacuous")
	}
	status, drifted := postProfile(t, ts, driftBody)
	if status != http.StatusOK {
		t.Fatalf("drifted ingest = %d", status)
	}
	if !drifted.StaleMatched || drifted.Outcome != "stale_match" {
		t.Fatalf("drifted ingest = %+v, want stale match", drifted)
	}
	if drifted.Fingerprint == orig.Fingerprint {
		t.Fatal("drifted profile kept the original fingerprint")
	}
	if drifted.ShapeHash != orig.ShapeHash {
		t.Fatal("PC drift changed the shape hash")
	}
	if drifted.SourceFingerprint != orig.Fingerprint {
		t.Fatalf("stale match source = %q, want %q",
			drifted.SourceFingerprint, orig.Fingerprint)
	}

	// Both fingerprints now address the same bytes.
	_, origPlans := getPlans(t, ts, orig.Fingerprint)
	s2, driftPlans := getPlans(t, ts, drifted.Fingerprint)
	if s2 != http.StatusOK || !bytes.Equal(origPlans, driftPlans) {
		t.Fatalf("stale-matched fingerprint serves different bytes (status %d)", s2)
	}

	analyses := 0
	for _, rec := range obs.Snapshot().Records {
		if rec.Scope == "aptgetd/"+app && rec.Stage == obs.StageAnalysis {
			analyses++
		}
	}
	if analyses != 1 {
		t.Fatalf("stale match ran the analysis again (%d analyses)", analyses)
	}
}

// TestBackpressure429: with MaxInflight=1 occupied by a stalled request,
// the next request is rejected immediately with 429 and counted.
func TestBackpressure429(t *testing.T) {
	srv := New(Config{MaxInflight: 1, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot: a POST that claims a body it never sends
	// holds the semaphore inside the handler's body read.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/profiles HTTP/1.1\r\nHost: t\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: 65536\r\n\r\nAPTW")

	// The stalled request needs a moment to enter the handler; retry
	// until the slot is observably held. A probe that finds the slot
	// free gets 400 (garbage frame), one that finds it held gets 429.
	deadline := time.Now().Add(5 * time.Second)
	saw429 := false
	for time.Now().Before(deadline) {
		resp, err := http.Post(ts.URL+"/v1/profiles",
			"application/octet-stream", strings.NewReader("garbage"))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if status == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
			break
		}
		if status != http.StatusBadRequest {
			t.Fatalf("probe status = %d, want 400 or 429", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw429 {
		t.Fatal("never observed backpressure rejection")
	}

	m := getMetrics(t, ts)
	if m.Counters["requests_rejected_backpressure"] < 1 {
		t.Fatalf("rejection not counted: %v", m.Counters)
	}
}

// TestRequestTimeout: a request whose processing outlives RequestTimeout
// gets 503 from the timeout wrapper. The deadline is far below even the
// frame-decode time, so any ingest trips it.
func TestRequestTimeout(t *testing.T) {
	_, body := mustCollect(t, "IS")
	srv := New(Config{RequestTimeout: time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow ingest = %d, want 503", resp.StatusCode)
	}
	payload, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(payload), "timed out") {
		t.Fatalf("timeout body = %q", payload)
	}
}

// TestServeGracefulShutdown: Serve runs until the context is cancelled
// and then returns nil after draining.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- New(Config{}).Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/v1/healthz"
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
}

// readTracker counts Reads so a test can assert a body was never
// consumed.
type readTracker struct {
	r     io.Reader
	reads int
}

func (rt *readTracker) Read(p []byte) (int, error) {
	rt.reads++
	return rt.r.Read(p)
}

func TestErrorPaths(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 1024}).Handler())
	defer ts.Close()

	// Garbage frame → 400.
	if status, _ := postProfile(t, ts, []byte("not a frame")); status != http.StatusBadRequest {
		t.Fatalf("garbage ingest = %d, want 400", status)
	}
	// Unknown application → 422.
	unknown := wire.EncodeProfile(&wire.Profile{App: "no-such-app", Cycles: 1})
	if status, _ := postProfile(t, ts, unknown); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown app ingest = %d, want 422", status)
	}
	// Oversized body → 413.
	big := bytes.Repeat([]byte("x"), 4096)
	if status, _ := postProfile(t, ts, big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", status)
	}
	// Unknown fingerprint → 404.
	if status, _ := getPlans(t, ts, "deadbeefdeadbeefdeadbeefdeadbeef"); status != http.StatusNotFound {
		t.Fatalf("missing plans = %d, want 404", status)
	}
	// Over-limit declared Content-Length → 413 before the body is read.
	// Drive the handler directly so no client transport touches the body:
	// the handler must reject on the declared length alone.
	tracked := &readTracker{r: bytes.NewReader(bytes.Repeat([]byte("x"), 4096))}
	req := httptest.NewRequest(http.MethodPost, "/v1/profiles", tracked)
	req.ContentLength = 4096
	rec := httptest.NewRecorder()
	New(Config{MaxBodyBytes: 1024}).Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("declared-oversize ingest = %d, want 413", rec.Code)
	}
	if tracked.reads != 0 {
		t.Fatalf("declared-oversize ingest read the body %d times, want 0", tracked.reads)
	}
	// Wrong method → 405 (Go 1.22 method patterns).
	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/profiles = %d, want 405", resp.StatusCode)
	}
}
