package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aptget/internal/pgo"
)

func getPprof(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestOnDemandCaptureOutlivesRequestTimeout: a capture longer than the
// service's per-request deadline must still complete — /v1/pprof/cpu
// runs under its own capture-scoped timeout, outside the TimeoutHandler
// that kills ordinary requests.
func TestOnDemandCaptureOutlivesRequestTimeout(t *testing.T) {
	srv := New(Config{RequestTimeout: 50 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Control: an ordinary endpoint under the same server does get the
	// short deadline (TimeoutHandler answers 503 on expiry); the capture
	// below taking 6x that deadline must not.
	start := time.Now()
	resp, data := getPprof(t, ts, "/v1/pprof/cpu?seconds=0.3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture = %d (%s), want 200", resp.StatusCode, data)
	}
	if el := time.Since(start); el < 300*time.Millisecond {
		t.Fatalf("capture returned after %s, before the requested window elapsed", el)
	}
	if err := pgo.ValidateProfile(data); err != nil {
		t.Fatalf("served capture does not validate: %v", err)
	}
	if got := resp.Header.Get(HeaderBuild); got != pgo.BuildID() {
		t.Fatalf("%s = %q, want %q", HeaderBuild, got, pgo.BuildID())
	}

	if m := getMetrics(t, ts); m.Counters["pgo_captures_taken"] != 1 {
		t.Fatalf("pgo_captures_taken = %d, want 1", m.Counters["pgo_captures_taken"])
	}
}

func TestOnDemandCaptureBadSeconds(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{"seconds=0", "seconds=-1", "seconds=zebra"} {
		if resp, _ := getPprof(t, ts, "/v1/pprof/cpu?"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestMergedServesStoredCapture: store=1 persists an on-demand capture,
// and /v1/pprof/merged serves those exact bytes back with the build and
// artifact identified; without an artifact store both store=1 and merged
// are refused.
func TestMergedServesStoredCapture(t *testing.T) {
	capt, err := pgo.New(pgo.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Capturer: capt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, captured := getPprof(t, ts, "/v1/pprof/cpu?seconds=0.05&store=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture+store = %d, want 200", resp.StatusCode)
	}
	artName := resp.Header.Get(HeaderArtifact)
	if artName == "" {
		t.Fatalf("stored capture carries no %s header", HeaderArtifact)
	}

	resp, merged := getPprof(t, ts, "/v1/pprof/merged")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged = %d (%s), want 200", resp.StatusCode, merged)
	}
	if string(merged) != string(captured) {
		t.Fatal("merged bytes differ from the stored capture")
	}
	if got := resp.Header.Get(HeaderArtifact); got != artName {
		t.Fatalf("merged served artifact %q, want %q", got, artName)
	}
	if got := resp.Header.Get(HeaderBuild); got != pgo.BuildID() {
		t.Fatalf("merged %s = %q, want %q", HeaderBuild, got, pgo.BuildID())
	}
	if err := pgo.ValidateProfile(merged); err != nil {
		t.Fatalf("merged profile does not validate: %v", err)
	}

	m := getMetrics(t, ts)
	if m.Counters["pgo_store_puts"] != 1 || m.Counters["pgo_merged_served"] != 1 {
		t.Fatalf("pgo counters = %v", m.Counters)
	}
}

func TestMergedWithoutStoreIs404(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := getPprof(t, ts, "/v1/pprof/merged"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("merged without store = %d, want 404", resp.StatusCode)
	}
	if resp, _ := getPprof(t, ts, "/v1/pprof/cpu?seconds=0.05&store=1"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("store=1 without store = %d, want 409", resp.StatusCode)
	}
}

func TestMergedEmptyStoreIs404(t *testing.T) {
	capt, err := pgo.New(pgo.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Capturer: capt})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, _ := getPprof(t, ts, "/v1/pprof/merged"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("merged on empty store = %d, want 404", resp.StatusCode)
	}
}

// TestHealthzReportsBuildIdentity: healthz must say which build is
// serving and that this (test) binary is not PGO-built.
func TestHealthzReportsBuildIdentity(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := getPprof(t, ts, "/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status string         `json:"status"`
		Build  pgo.BinaryInfo `json:"build"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Build.ID != pgo.BuildID() {
		t.Fatalf("healthz build id = %q, want %q", h.Build.ID, pgo.BuildID())
	}
	if h.Build.PGOBuilt {
		t.Fatal("test binary claims to be PGO-built")
	}
	if h.Build.GoVersion == "" {
		t.Fatal("healthz build carries no go version")
	}
}
