// Package service is aptgetd's HTTP layer: a small JSON-over-HTTP API
// that turns the in-process pipeline into a continuous-profiling plan
// service. Clients POST a wire-encoded profile (PEBS loads + LBR
// snapshots + loop shapes) and get back the fingerprint under which the
// derived plan set is cached; the plan bytes themselves are fetched by
// fingerprint, so a fleet of identical clients shares one analysis.
//
//	POST /v1/profiles        ingest a profile, return {fingerprint, outcome}
//	GET  /v1/plans/{fp}      fetch canonical plan-set bytes by fingerprint
//	GET  /v1/healthz         liveness + cache size + binary build identity
//	GET  /v1/metrics         plan-cache / backpressure counters (+ obs report)
//	GET  /v1/pprof/cpu       on-demand self-capture (?seconds=, &store=1)
//	GET  /v1/pprof/merged    best stored CPU profile for this build (default.pgo)
//
// The server re-derives plans itself: workload builds are deterministic
// (core.Workload contract), so the profile only has to name the
// application — the daemon rebuilds the exact program the profile's PCs
// refer to and runs the same analysis.Analyze the in-process pipeline
// uses. A served plan set is therefore byte-identical to what
// core.RunPipeline would have computed locally.
//
// Admission control is a non-blocking semaphore: past MaxInflight
// concurrent profile/plan requests the server answers 429 immediately
// (counted as requests_rejected_backpressure) instead of queueing
// unboundedly. Every request also runs under a deadline
// (http.TimeoutHandler), and Serve drains connections gracefully on
// context cancellation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"aptget/internal/aggregate"
	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/pgo"
	"aptget/internal/planstore"
	"aptget/internal/profile"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

// Defaults for zero Config fields.
const (
	DefaultMaxInflight    = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 64 << 20
)

// Config tunes the server. Zero values select defaults.
type Config struct {
	// Pipeline carries the machine model and analysis options plans are
	// computed with. A zero value selects core.DefaultConfig — the same
	// configuration the in-process pipeline uses, which is what makes
	// served plans byte-identical to core.RunPipeline's.
	Pipeline core.Config

	// CacheCapacity bounds the plan cache (≤0 → planstore.DefaultCapacity).
	CacheCapacity int

	// MaxInflight caps concurrently-served profile/plan requests; excess
	// requests are rejected with 429 rather than queued.
	MaxInflight int

	// RequestTimeout bounds one request end to end (including the
	// analysis a cache miss runs).
	RequestTimeout time.Duration

	// MaxBodyBytes caps the ingest payload.
	MaxBodyBytes int64

	// Peers lists sibling shard addresses (host:port or http URL). When
	// non-empty the plan cache becomes a Replicated backend: local misses
	// try a warm handoff from each peer before computing, and internal
	// requests from peers are answered from the local cache only.
	Peers []string

	// Replicate pushes every cached plan set to all Peers (best-effort),
	// so any single shard can die without losing the fleet's plans.
	Replicate bool

	// AggregateWindow ≥2 enables fleet-wide profile aggregation on
	// ingest: up to AggregateWindow cold same-shape profiles arriving
	// within AggregateWait are merged (sample-count weighted) and
	// analyzed once. ≤1 disables aggregation.
	AggregateWindow int

	// AggregateWait bounds how long the first profile of a window waits
	// for the rest of a fleet burst (≤0 → aggregate.DefaultWait).
	AggregateWait time.Duration

	// PeerTimeout bounds one warm-handoff lookup or replication push
	// (≤0 → planstore.DefaultRemoteTimeout).
	PeerTimeout time.Duration

	// Capturer is the self-PGO capture subsystem (windowed CPU captures
	// plus the /v1/pprof endpoints). nil constructs an ephemeral
	// store-less capturer, so on-demand /v1/pprof/cpu always works; the
	// daemon passes a configured one to get windowed capture and the
	// artifact store behind /v1/pprof/merged.
	Capturer *pgo.Capturer
}

func (c *Config) fill() {
	// Mirror core.Config.fill so the daemon's Analyze sees exactly the
	// options the in-process pipeline would.
	if c.Pipeline.Machine.Name == "" {
		c.Pipeline.Machine = mem.ConfigScaled()
	}
	if c.Pipeline.Analysis.DRAMLatency == 0 {
		c.Pipeline.Analysis.DRAMLatency = float64(c.Pipeline.Machine.DRAMLatency)
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = planstore.DefaultCapacity
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
}

// Server is one plan-service instance: the cache, the admission
// semaphore, and the HTTP handler wired over them.
type Server struct {
	cfg     Config
	store   *planstore.Store
	batcher *aggregate.Batcher // nil unless AggregateWindow ≥ 2
	capt    *pgo.Capturer
	sem     chan struct{}
	handler http.Handler

	rejected atomic.Int64
	// requests counts admitted requests; the capturer's idle detector
	// watches it to pause windowed self-capture on an unloaded daemon.
	requests atomic.Int64

	// Self-PGO endpoint counters (mirrored into the serve span).
	pgoOndemand     atomic.Int64
	pgoOndemandFail atomic.Int64
	pgoMergedServed atomic.Int64

	// sp is the long-lived serve span the cache counters mirror into
	// when the obs registry is enabled at construction (aptgetd -report).
	sp *obs.Span
}

// IngestResponse is the POST /v1/profiles reply.
type IngestResponse struct {
	App         string `json:"app"`
	Fingerprint string `json:"fingerprint"`
	ShapeHash   string `json:"shape_hash"`
	Plans       int    `json:"plans"`
	// Outcome is how the request was served: "miss" (this request ran
	// the analysis), "hit" (exact fingerprint), "stale_match",
	// "handoff" (served from a sibling shard's cache), or "aggregated"
	// (served from one analysis of a merged fleet window).
	Outcome      string `json:"outcome"`
	StaleMatched bool   `json:"stale_matched"`
	// Aggregated is the number of profiles merged into the analysis that
	// produced these plans (0 when the request did not join a window).
	Aggregated int `json:"aggregated,omitempty"`
	// SourceFingerprint names the profile the served plans were computed
	// from; differs from Fingerprint only on stale matches.
	SourceFingerprint string `json:"source_fingerprint,omitempty"`
}

// MetricsResponse is the GET /v1/metrics reply. Counters always carries
// the plan-cache and backpressure counters; Obs carries the full span
// report when the obs registry is enabled.
type MetricsResponse struct {
	Counters map[string]int64 `json:"counters"`
	Obs      *obs.Report      `json:"obs,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// New constructs a server. If the obs registry is enabled when New runs,
// the server opens one long-lived "aptgetd/service" serve span and
// mirrors its counters there, so a daemon-written report agrees with
// /v1/metrics.
func New(cfg Config) *Server {
	cfg.fill()
	var backend planstore.Backend = planstore.NewLocal(cfg.CacheCapacity)
	if len(cfg.Peers) > 0 {
		peers := make([]planstore.Peer, 0, len(cfg.Peers))
		for _, addr := range cfg.Peers {
			peers = append(peers, planstore.NewRemote(addr, cfg.PeerTimeout))
		}
		backend = planstore.NewReplicated(backend, peers, cfg.Replicate)
	}
	s := &Server{
		cfg:   cfg,
		store: planstore.NewWithBackend(backend),
		sem:   make(chan struct{}, cfg.MaxInflight),
		sp:    obs.Begin("aptgetd/service", obs.StageServe),
	}
	if cfg.AggregateWindow >= 2 {
		s.batcher = aggregate.NewBatcher(cfg.AggregateWindow, cfg.AggregateWait)
	}
	s.store.AttachObs(s.sp)

	s.capt = cfg.Capturer
	if s.capt == nil {
		// A zero pgo.Config cannot fail (no store directory to create).
		s.capt, _ = pgo.New(pgo.Config{})
	}
	s.capt.SetActivity(s.requests.Load)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles", s.handleIngest)
	mux.HandleFunc("GET /v1/plans/{fp}", s.handlePlans)
	mux.HandleFunc("PUT /v1/plans/{fp}", s.handlePlanPut)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/pprof/merged", s.handlePprofMerged)

	// /v1/pprof/cpu mounts *outside* the TimeoutHandler: a multi-second
	// CPU capture is legitimate work that must not be killed by the
	// normal per-request deadline. It runs under its own capture-scoped
	// timeout instead (see handlePprofCPU).
	root := http.NewServeMux()
	root.Handle("/", http.TimeoutHandler(mux, cfg.RequestTimeout,
		`{"error":"request timed out"}`))
	root.HandleFunc("GET /v1/pprof/cpu", s.handlePprofCPU)
	s.handler = root
	return s
}

// Handler returns the server's HTTP handler (routing + timeouts), for
// tests and embedding; Serve wraps it in a listener lifecycle.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the plan cache (aptgetd startup logging, tests).
func (s *Server) Store() *planstore.Store { return s.store }

// Counters merges the plan-cache counters with the server's own — the
// numbers /v1/metrics serves.
func (s *Server) Counters() map[string]int64 {
	c := s.store.Counters()
	c["requests_rejected_backpressure"] = s.rejected.Load()
	if s.batcher != nil {
		for k, v := range s.batcher.Counters() {
			c[k] += v
		}
	}
	for k, v := range s.capt.Counters() {
		c[k] = v
	}
	c["pgo_ondemand_captures"] = s.pgoOndemand.Load()
	c["pgo_ondemand_failures"] = s.pgoOndemandFail.Load()
	c["pgo_merged_served"] = s.pgoMergedServed.Load()
	return c
}

// Close ends the server's obs spans. Idempotent; Serve calls it on exit.
func (s *Server) Close() {
	s.sp.End()
	s.capt.Close()
}

// Capturer exposes the self-PGO capture subsystem (startup logging,
// tests).
func (s *Server) Capturer() *pgo.Capturer { return s.capt }

// Serve accepts connections on ln until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to 5s to drain). A
// windowed-capture capturer runs for the same lifetime: its loop starts
// with the listener and is drained before Serve returns, so a capture
// window in flight at shutdown is flushed to the artifact store, not
// dropped. Returns nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout also bounds body reads: a stalled upload holds an
		// admission slot that the handler-level timeout alone cannot
		// reclaim (the blocked body read pins the request).
		ReadTimeout: s.cfg.RequestTimeout,
	}
	captCtx, captCancel := context.WithCancel(ctx)
	defer captCancel()
	var captDone chan struct{}
	if s.capt.Windowed() {
		captDone = make(chan struct{})
		go func() {
			s.capt.Run(captCtx)
			close(captDone)
		}()
	}
	waitCapt := func() {
		captCancel() // also stops the loop when Serve exits on a listener error
		if captDone != nil {
			<-captDone
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc // srv.Serve has returned http.ErrServerClosed
		waitCapt()
		s.Close()
		return err
	case err := <-errc:
		waitCapt()
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// acquire is the non-blocking admission check; release undoes it.
func (s *Server) acquire() bool {
	select {
	case s.sem <- struct{}{}:
		s.requests.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() { <-s.sem }

// reject answers 429 and counts the rejection.
func (s *Server) reject(w http.ResponseWriter) {
	s.rejected.Add(1)
	s.sp.Add("requests_rejected_backpressure", 1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{Error: "server at capacity"})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.acquire() {
		s.reject(w)
		return
	}
	defer s.release()

	// Reject oversized uploads before reading a single body byte when the
	// client declares its length — the stream is never consumed.
	if r.ContentLength > s.cfg.MaxBodyBytes {
		s.sp.Add("requests_rejected_oversize", 1)
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("declared body length %d exceeds limit %d",
				r.ContentLength, s.cfg.MaxBodyBytes),
		})
		return
	}

	// Stream-decode the frame: the body is hashed and validated as it
	// arrives, so a malformed or non-canonical upload fails without ever
	// being buffered whole.
	prof, fp, err := wire.DecodeProfileFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if err := prof.Validate(); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if _, ok := workloads.ByKey(prof.App); !ok {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorResponse{Error: fmt.Sprintf("unknown application %q", prof.App)})
		return
	}

	// The decoder enforces canonical frames and hashed the body as it
	// streamed past, so fp IS the canonical content address.
	key := planstore.Key{
		Profile: fp,
		Shape:   prof.ShapeHash(),
	}

	var (
		plans      []byte
		res        planstore.Result
		aggregated int
	)
	if s.batcher != nil {
		// Aggregating ingest: cached profiles (exact or same-shape stale)
		// are served immediately with the normal accounting; only cold
		// shapes join the window, so a fleet burst of K re-profiles costs
		// one analysis of the merged evidence.
		var ok bool
		plans, res, ok = s.store.TryGet(key)
		if !ok {
			var src wire.Fingerprint
			var size int
			plans, src, size, err = s.batcher.Do(r.Context(), key.Shape, prof, s.computePlans)
			if err == nil {
				s.store.Put(key, planstore.Entry{Plans: plans, Source: src})
				res = planstore.Result{Outcome: planstore.OutcomeMiss, Source: src}
				if size > 1 {
					res.Outcome = planstore.OutcomeAggregated
					aggregated = size
				}
			}
		}
	} else {
		plans, res, err = s.store.GetOrCompute(key, func() ([]byte, error) {
			return s.computePlans(prof)
		})
	}
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}

	resp := IngestResponse{
		App:         prof.App,
		Fingerprint: string(key.Profile),
		ShapeHash:   string(key.Shape),
		Outcome:     res.Outcome.String(),
		Aggregated:  aggregated,
	}
	if ps, err := wire.DecodePlanSet(plans); err == nil {
		resp.Plans = len(ps.Plans)
	}
	status := http.StatusOK
	if res.Outcome == planstore.OutcomeMiss || res.Outcome == planstore.OutcomeAggregated {
		status = http.StatusCreated
	}
	if res.Outcome == planstore.OutcomeStaleMatch {
		resp.StaleMatched = true
	}
	if res.Source != key.Profile {
		resp.SourceFingerprint = string(res.Source)
	}
	writeJSON(w, status, resp)
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if !s.acquire() {
		s.reject(w)
		return
	}
	defer s.release()

	fp := wire.Fingerprint(r.PathValue("fp"))
	var (
		e  planstore.Entry
		ok bool
	)
	if r.Header.Get(planstore.HeaderInternal) != "" {
		// A sibling shard asking for a warm handoff: answer from the local
		// cache only, so handoffs cannot recurse around the fleet.
		e, ok = s.store.GetLocal(fp)
	} else {
		e, ok = s.store.Get(fp)
	}
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no plans for fingerprint %q", fp)})
		return
	}
	if e.Source != "" {
		w.Header().Set(planstore.HeaderSource, string(e.Source))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(e.Plans)
}

// handlePlanPut is the replication endpoint: a sibling shard pushing a
// plan set it computed. The body must decode as a canonical plan set;
// the key comes from the path fingerprint plus the X-Apt-Shape /
// X-Apt-Source headers. Stored locally only — replicas are never
// re-pushed, so push replication cannot echo around the fleet.
func (s *Server) handlePlanPut(w http.ResponseWriter, r *http.Request) {
	if !s.acquire() {
		s.reject(w)
		return
	}
	defer s.release()

	if r.ContentLength > s.cfg.MaxBodyBytes {
		s.sp.Add("requests_rejected_oversize", 1)
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("declared body length %d exceeds limit %d",
				r.ContentLength, s.cfg.MaxBodyBytes),
		})
		return
	}
	plans, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if _, err := wire.DecodePlanSet(plans); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorResponse{Error: fmt.Sprintf("body is not a canonical plan set: %v", err)})
		return
	}
	key := planstore.Key{
		Profile: wire.Fingerprint(r.PathValue("fp")),
		Shape:   wire.ShapeHash(r.Header.Get(planstore.HeaderShape)),
	}
	if key.Profile == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty fingerprint"})
		return
	}
	src := wire.Fingerprint(r.Header.Get(planstore.HeaderSource))
	if src == "" {
		src = key.Profile
	}
	s.store.PutLocal(key, planstore.Entry{Plans: plans, Source: src})
	s.sp.Add("plan_cache_replica_puts", 1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The build block lets operators (and the -pgo-cycle harness) tell a
	// profile-guided rebuild apart from a blind build of the same source.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"cache_entries": s.store.Len(),
		"build":         pgo.Binary(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	resp := MetricsResponse{Counters: s.Counters()}
	if obs.Enabled() {
		resp.Obs = obs.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// computePlans is the cache-miss path: rebuild the named workload (the
// deterministic build the profile's PCs refer to) and run the paper's
// analysis on the reconstructed profile. The analysis runs under an
// "aptgetd/<app>" span, so a report (and the single-flight tests) can
// count exactly how many analyses the daemon ran.
func (s *Server) computePlans(p *wire.Profile) ([]byte, error) {
	e, ok := workloads.ByKey(p.App)
	if !ok {
		return nil, fmt.Errorf("service: unknown application %q", p.App)
	}
	prog, err := e.New().Build()
	if err != nil {
		return nil, fmt.Errorf("service: rebuilding %s: %w", p.App, err)
	}
	sp := obs.Begin("aptgetd/"+p.App, obs.StageAnalysis)
	aopt := s.cfg.Pipeline.Analysis
	aopt.Obs = sp
	prof := p.ToProfile()
	// Re-run the shared selection gate on the decoded loads: scores are
	// derived (stall × period / kilo-instruction), not wire fields, so
	// the server recomputes them — idempotent for a client-gated profile,
	// and the only correct way to score an *aggregated* profile, whose
	// stall and instruction sums only exist after the merge.
	prof.Loads = profile.SelectLoads(prof.Loads, prof.Counters.Instructions, s.cfg.Pipeline.Profile)
	plans, err := analysis.Analyze(prog, prof, aopt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("service: analyzing %s: %w", p.App, err)
	}
	return wire.EncodePlanSet(wire.PlanSetFromAnalysis(p.App, plans, aopt)), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
