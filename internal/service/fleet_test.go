package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aptget/internal/planstore"
	"aptget/internal/wire"
)

// TestWarmHandoffAcrossShards: a shard that never saw a profile serves
// its plans from a sibling's cache instead of re-running the analysis.
func TestWarmHandoffAcrossShards(t *testing.T) {
	wp, body := mustCollect(t, "IS")
	fp := wire.FingerprintOf(wp)

	srvA := New(Config{})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	if status, ing := postProfile(t, tsA, body); status != http.StatusCreated || ing.Outcome != "miss" {
		t.Fatalf("seed ingest = %d %+v", status, ing)
	}
	_, want := getPlans(t, tsA, string(fp))

	srvB := New(Config{Peers: []string{tsA.URL}})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	// GET by fingerprint on the cold shard: warm handoff, byte-identical.
	status, got := getPlans(t, tsB, string(fp))
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("handoff GET = %d, %d bytes (want 200, %d bytes)", status, len(got), len(want))
	}
	if c := srvB.Counters(); c["plan_cache_handoffs"] != 1 || c["plan_cache_handoff_hits"] != 1 {
		t.Fatalf("handoff counters = %v", c)
	}

	// Ingest on a third cold shard: the flight's handoff preempts the
	// analysis entirely.
	srvC := New(Config{Peers: []string{tsA.URL}})
	tsC := httptest.NewServer(srvC.Handler())
	defer tsC.Close()
	if status, ing := postProfile(t, tsC, body); status != http.StatusOK || ing.Outcome != "handoff" {
		t.Fatalf("cold-shard ingest = %d %+v, want 200 handoff", status, ing)
	}
	// The handed-off entry is now local: a repeat ingest is an exact hit.
	if _, ing := postProfile(t, tsC, body); ing.Outcome != "hit" {
		t.Fatalf("repeat ingest after handoff = %+v, want hit", ing)
	}
}

// TestInternalRequestsNeverRecurse: a sibling's lookup (X-Apt-Internal)
// is answered from the local cache only — a fleet of mutually-peered
// empty shards answers 404 instead of chasing handoffs in a cycle.
func TestInternalRequestsNeverRecurse(t *testing.T) {
	wp, _ := mustCollect(t, "IS")
	fp := wire.FingerprintOf(wp)

	srvA := New(Config{})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	// A's only peer is itself: an external GET that recursed would loop.
	srvA.store = planstore.NewWithBackend(planstore.NewReplicated(
		planstore.NewLocal(4), []planstore.Peer{planstore.NewRemote(tsA.URL, time.Second)}, false))

	req, _ := http.NewRequest(http.MethodGet, tsA.URL+"/v1/plans/"+string(fp), nil)
	req.Header.Set(planstore.HeaderInternal, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("internal GET of missing plans = %d, want 404", resp.StatusCode)
	}

	// The external path also terminates: one handoff sweep (which asks A
	// itself, internally, and misses) and then 404.
	done := make(chan int, 1)
	go func() {
		st, _ := getPlans(t, tsA, string(fp))
		done <- st
	}()
	select {
	case st := <-done:
		if st != http.StatusNotFound {
			t.Fatalf("external GET = %d, want 404", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("external GET did not terminate — handoff recursion")
	}
}

// TestReplicationPushMirrorsAnalyses: with -replicate, a plan set one
// shard computes appears in its sibling's local cache without the
// sibling ever analyzing.
func TestReplicationPushMirrorsAnalyses(t *testing.T) {
	wp, body := mustCollect(t, "IS")
	fp := wire.FingerprintOf(wp)

	srvB := New(Config{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	srvA := New(Config{Peers: []string{tsB.URL}, Replicate: true})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	if status, ing := postProfile(t, tsA, body); status != http.StatusCreated || ing.Outcome != "miss" {
		t.Fatalf("ingest = %d %+v", status, ing)
	}
	e, ok := srvB.store.GetLocal(fp)
	if !ok {
		t.Fatal("replica not present in sibling's local cache")
	}
	eA, _ := srvA.store.GetLocal(fp)
	if !bytes.Equal(e.Plans, eA.Plans) {
		t.Fatal("replica differs from the computed plans")
	}
	if c := srvA.Counters(); c["plan_cache_replication_pushes"] < 1 {
		t.Fatalf("push counter = %v", c)
	}
}

// TestPlanPutEndpoint: the replication surface validates bodies and
// stores locally only.
func TestPlanPutEndpoint(t *testing.T) {
	wp, body := mustCollect(t, "IS")
	fp := wire.FingerprintOf(wp)

	srvA := New(Config{})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	if status, _ := postProfile(t, tsA, body); status != http.StatusCreated {
		t.Fatalf("seed ingest status %d", status)
	}
	_, plans := getPlans(t, tsA, string(fp))

	srvB := New(Config{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	put := func(path string, body []byte, shape string) int {
		req, _ := http.NewRequest(http.MethodPut, tsB.URL+path, bytes.NewReader(body))
		req.Header.Set(planstore.HeaderInternal, "1")
		if shape != "" {
			req.Header.Set(planstore.HeaderShape, shape)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if st := put("/v1/plans/"+string(fp), plans, string(wp.ShapeHash())); st != http.StatusNoContent {
		t.Fatalf("valid PUT = %d, want 204", st)
	}
	if st, got := getPlans(t, tsB, string(fp)); st != http.StatusOK || !bytes.Equal(got, plans) {
		t.Fatalf("GET after PUT = %d", st)
	}
	// A same-shape ingest on B now stale-matches the pushed entry.
	drifted := wire.EncodeProfile(driftPCs(wp, 0x40))
	if _, ing := postProfile(t, tsB, drifted); ing.Outcome != "stale_match" {
		t.Fatalf("ingest after replica PUT = %+v, want stale_match", ing)
	}

	if st := put("/v1/plans/deadbeef", []byte("not a plan set"), ""); st != http.StatusUnprocessableEntity {
		t.Fatalf("garbage PUT = %d, want 422", st)
	}
}

// TestDeadPeerDegradesGracefully: a shard whose sibling is gone falls
// back to computing — no error surfaces to the client.
func TestDeadPeerDegradesGracefully(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	srv := New(Config{Peers: []string{deadURL}, PeerTimeout: 500 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := mustCollect(t, "IS")
	if status, ing := postProfile(t, ts, body); status != http.StatusCreated || ing.Outcome != "miss" {
		t.Fatalf("ingest with dead peer = %d %+v, want 201 miss", status, ing)
	}
}

// TestAggregatedBurstCollapsesToOneAnalysis: K concurrent same-shape
// profiles inside the window produce one batch, every response marked
// aggregated, and plans for an identical burst stay byte-identical to
// unaggregated serving.
func TestAggregatedBurstCollapsesToOneAnalysis(t *testing.T) {
	wp, body := mustCollect(t, "IS")
	fp := wire.FingerprintOf(wp)

	// Reference plans from an unaggregated server.
	plain := httptest.NewServer(New(Config{}).Handler())
	defer plain.Close()
	if status, _ := postProfile(t, plain, body); status != http.StatusCreated {
		t.Fatal("reference ingest failed")
	}
	_, want := getPlans(t, plain, string(fp))

	const k = 4
	srv := New(Config{AggregateWindow: k, AggregateWait: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	outcomes := make([]IngestResponse, k)
	statuses := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], outcomes[i] = postProfile(t, ts, body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < k; i++ {
		if statuses[i] != http.StatusCreated || outcomes[i].Outcome != "aggregated" || outcomes[i].Aggregated != k {
			t.Fatalf("burst member %d = %d %+v, want 201 aggregated/%d",
				i, statuses[i], outcomes[i], k)
		}
	}
	c := srv.Counters()
	if c["aggregate_batches"] != 1 || c["aggregate_saved_analyses"] != k-1 {
		t.Fatalf("aggregation counters = %v", c)
	}
	// Identical burst: merge dedups to the one distinct profile, so the
	// served plans are byte-identical to the unaggregated analysis.
	if _, got := getPlans(t, ts, string(fp)); !bytes.Equal(got, want) {
		t.Fatal("aggregated plans differ from unaggregated plans for an identical burst")
	}
	// After the window, a repeat ingest is a plain cache hit.
	if _, ing := postProfile(t, ts, body); ing.Outcome != "hit" {
		t.Fatalf("post-window ingest = %+v, want hit", ing)
	}
}

// TestAggregateDistinctProfilesMerge: distinct same-shape profiles in
// one window are merged — the batch reports the merged fingerprint as
// the plans' source.
func TestAggregateDistinctProfilesMerge(t *testing.T) {
	wp, _ := mustCollect(t, "IS")

	const k = 3
	bodies := make([][]byte, k)
	fps := make([]string, k)
	for i := 0; i < k; i++ {
		p := *wp
		p.Cycles += uint64(i) * 1000 // distinct content, identical shape
		bodies[i] = wire.EncodeProfile(&p)
		fps[i] = string(wire.FingerprintOf(&p))
	}

	srv := New(Config{AggregateWindow: k, AggregateWait: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	outs := make([]IngestResponse, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i] = postProfile(t, ts, bodies[i])
		}(i)
	}
	wg.Wait()

	src := outs[0].SourceFingerprint
	if src == "" {
		t.Fatalf("merged batch must report a source fingerprint: %+v", outs[0])
	}
	for i, o := range outs {
		if o.Outcome != "aggregated" || o.SourceFingerprint != src {
			t.Fatalf("member %d = %+v, want aggregated from %s", i, o, src)
		}
		if o.SourceFingerprint == fps[i] {
			t.Fatalf("member %d source equals its own fingerprint — no merge happened", i)
		}
	}
	// Every participant's fingerprint serves the shared plans.
	ref := ""
	for _, fp := range fps {
		st, got := getPlans(t, ts, fp)
		if st != http.StatusOK {
			t.Fatalf("GET %s = %d", fp, st)
		}
		if ref == "" {
			ref = string(got)
		} else if ref != string(got) {
			t.Fatal("participants serve different plans")
		}
	}
	if c := srv.Counters(); c["aggregate_batches"] != 1 {
		t.Fatalf("batches = %v", c)
	}
}

// TestAggregateWaitServesLoneProfile: a single profile is not held for
// the full window — the wait bound fires and serves it as a plain miss.
func TestAggregateWaitServesLoneProfile(t *testing.T) {
	_, body := mustCollect(t, "IS")
	srv := New(Config{AggregateWindow: 64, AggregateWait: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, ing := postProfile(t, ts, body)
	if status != http.StatusCreated || ing.Outcome != "miss" || ing.Aggregated != 0 {
		t.Fatalf("lone ingest = %d %+v, want 201 miss", status, ing)
	}
	if c := srv.Counters(); c["aggregate_wait_fires"] != 1 {
		t.Fatalf("wait fires = %v", c)
	}
}
