package service

// The self-PGO surface of the daemon: on-demand CPU captures and the
// merged (best stored) profile for the running build — the bytes a
// rebuild harness hands to `go build -pgo`.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"aptget/internal/pgo"
)

// On-demand capture limits.
const (
	// DefaultCaptureSeconds is the /v1/pprof/cpu window when the client
	// does not pass ?seconds=.
	DefaultCaptureSeconds = 5.0
	// CaptureGrace pads the capture-scoped deadline past the requested
	// window: it covers waiting out one in-flight windowed capture plus
	// response writing.
	CaptureGrace = 15 * time.Second
)

// Artifact-related response headers.
const (
	// HeaderBuild carries the serving binary's build ID on pprof
	// responses, so the harness can detect a binary/profile mismatch.
	HeaderBuild = "X-Apt-Build"
	// HeaderArtifact names the stored artifact a response was served
	// from (merged) or stored as (cpu with store=1).
	HeaderArtifact = "X-Apt-Artifact"
)

// handlePprofCPU runs one on-demand CPU capture of the daemon itself and
// returns the pprof bytes. ?seconds= (float) sets the window length,
// clamped to pgo.MaxOnDemandDuration; &store=1 additionally persists the
// capture to the artifact store so it becomes a /v1/pprof/merged
// candidate.
//
// The handler is mounted outside the service's TimeoutHandler: a capture
// legitimately runs for multiple seconds and must not be killed by the
// normal per-request deadline. It runs under its own capture-scoped
// timeout (window + CaptureGrace) instead, and does not take a plan-
// serving admission slot — captures serialize on the process-wide
// profiling semaphore, which already bounds them to one at a time.
func (s *Server) handlePprofCPU(w http.ResponseWriter, r *http.Request) {
	secs := DefaultCaptureSeconds
	if v := r.URL.Query().Get("seconds"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("bad seconds %q", v)})
			return
		}
		secs = f
	}
	d := time.Duration(secs * float64(time.Second))
	if d > pgo.MaxOnDemandDuration {
		d = pgo.MaxOnDemandDuration
	}

	ctx, cancel := context.WithTimeout(r.Context(), d+CaptureGrace)
	defer cancel()
	data, err := s.capt.CaptureOnce(ctx, d)
	if err != nil {
		s.pgoOndemandFail.Add(1)
		s.sp.Add("pgo_ondemand_failures", 1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	s.pgoOndemand.Add(1)
	s.sp.Add("pgo_ondemand_captures", 1)

	w.Header().Set(HeaderBuild, pgo.BuildID())
	if v := r.URL.Query().Get("store"); v == "1" || v == "true" {
		art, err := s.capt.StoreArtifact(data)
		switch {
		case errors.Is(err, pgo.ErrNoStore):
			writeJSON(w, http.StatusConflict, errorResponse{
				Error: "store=1 requested but the daemon has no artifact store (-pgo-dir)"})
			return
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set(HeaderArtifact, art.Name)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handlePprofMerged serves the strongest stored CPU profile for the
// running binary's build — the `default.pgo` candidate a rebuild fetches
// (stale builds' artifacts are segregated and never served). 404 when
// the daemon has no artifact store or nothing captured yet.
func (s *Server) handlePprofMerged(w http.ResponseWriter, _ *http.Request) {
	st := s.capt.Store()
	if st == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no artifact store configured (-pgo-dir)"})
		return
	}
	art, data, err := st.Best()
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	s.pgoMergedServed.Add(1)
	s.sp.Add("pgo_merged_served", 1)
	w.Header().Set(HeaderBuild, art.Build)
	w.Header().Set(HeaderArtifact, art.Name)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
