package service

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/profile"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

// FillPipeline applies the same defaults core's pipeline applies to its
// own Config (machine model, DRAM latency), exported here so clients
// that profile locally and POST the result use the exact configuration
// the daemon analyzes under.
func FillPipeline(cfg *core.Config) {
	if cfg.Machine.Name == "" {
		cfg.Machine = mem.ConfigScaled()
	}
	if cfg.Analysis.DRAMLatency == 0 {
		cfg.Analysis.DRAMLatency = float64(cfg.Machine.DRAMLatency)
	}
}

// CollectProfile is the client half of the service: profile one registry
// workload the way core.ProfileAndPlan's first stage does and package
// the result for the wire. Returns the wire profile and its canonical
// encoding — the bytes a client POSTs to /v1/profiles. aptget
// -emit-profile, aptbench -loadgen and the smoke tests all build their
// payloads through this.
func CollectProfile(e workloads.Entry, cfg core.Config) (*wire.Profile, []byte, error) {
	FillPipeline(&cfg)
	w := e.New()
	prog, err := w.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("service: build %s: %w", e.Key, err)
	}
	sp := obs.Begin(e.Key+"/apt-get", obs.StageProfile)
	popt := cfg.Profile
	popt.Obs = sp
	prof, err := profile.Collect(prog, cfg.Machine, w.InitMem, popt)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("service: profiling %s: %w", e.Key, err)
	}
	wp := wire.ProfileOf(e.Key, prog, prof)
	return wp, wire.EncodeProfile(wp), nil
}
