package workloads

import (
	"testing"

	"aptget/internal/core"
)

// TestPhasedRegistryResolves pins the re-planning corpus into ByKey and
// proves each entry builds, runs, and verifies end to end.
func TestPhasedRegistryResolves(t *testing.T) {
	for _, want := range []string{"phaseSG", "phaseRamp", "phaseFlat"} {
		e, ok := ByKey(want)
		if !ok {
			t.Fatalf("%s not resolvable via ByKey", want)
		}
		if e.New().Name() != want {
			t.Fatalf("%s entry builds workload named %q", want, e.New().Name())
		}
	}
	e, _ := ByKey("phaseSG")
	if _, err := core.RunBaseline(e.New(), core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestPhasedDataSchedule checks the phase structure lives in the data:
// stride phases are sequential modulo their span, gather phases stay in
// bounds, and the schedule is deterministic (the stale-plan study and
// the adaptive run must see identical inputs).
func TestPhasedDataSchedule(t *testing.T) {
	p := NewPhaseSG("sg", 4, 100)
	bs := p.data()
	if int64(len(bs)) != p.Total() {
		t.Fatalf("schedule has %d entries, want %d", len(bs), p.Total())
	}
	for ph, phase := range p.Phases {
		base := int64(ph) * p.PerPhase
		for k := int64(0); k < p.PerPhase; k++ {
			v := bs[base+k]
			if v < 0 || v >= phase.Span {
				t.Fatalf("phase %d entry %d = %d outside span %d", ph, k, v, phase.Span)
			}
			if phase.Kind == PhaseStride && v != k%phase.Span {
				t.Fatalf("stride phase %d entry %d = %d, want %d", ph, k, v, k%phase.Span)
			}
		}
	}
	again := NewPhaseSG("sg", 4, 100).data()
	for i := range bs {
		if bs[i] != again[i] {
			t.Fatalf("schedule not deterministic at entry %d", i)
		}
	}
}

// TestPhasedPrefix checks the train/test split: the prefix variant keeps
// only the leading phases, renames itself, and clamps.
func TestPhasedPrefix(t *testing.T) {
	p := NewPhaseSG("sg", 4, 100)
	tr := p.Prefix(1)
	if tr.Name() != "sg-train" {
		t.Fatalf("prefix name %q", tr.Name())
	}
	if len(tr.Phases) != 1 || tr.Total() != 100 {
		t.Fatalf("prefix kept %d phases, total %d", len(tr.Phases), tr.Total())
	}
	if tr.Phases[0].Kind != PhaseStride {
		t.Fatal("phaseSG must start with a stride phase for the stale-plan study")
	}
	if clamped := p.Prefix(10); len(clamped.Phases) != 4 {
		t.Fatalf("Prefix(10) kept %d phases, want all 4", len(clamped.Phases))
	}
	// The ramp's footprint must actually ramp past the 512 KiB LLC.
	r := NewPhaseRamp("ramp", 3, 100)
	if first := r.Phases[0].Span * 8; first > 512<<10 {
		t.Fatalf("ramp starts at %d bytes, should be LLC-resident", first)
	}
	if last := r.Phases[len(r.Phases)-1].Span * 8; last <= 512<<10 {
		t.Fatalf("ramp ends at %d bytes, should exceed the LLC", last)
	}
}
