package workloads

import (
	"testing"

	"aptget/internal/core"
	"aptget/internal/graphgen"
)

// TestRegistryBaselinesVerify executes every Table 3 application
// unmodified and checks its result against the native reference.
func TestRegistryBaselinesVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry is slow in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			w := e.New()
			res, err := core.RunBaseline(w, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Instructions == 0 {
				t.Fatal("no instructions retired")
			}
			t.Logf("%s: %d instr, %d cycles, IPC %.2f, MPKI %.1f, membound %.0f%%",
				e.Key, res.Counters.Instructions, res.Counters.Cycles,
				res.Counters.IPC(), res.Counters.MPKI(),
				100*res.Counters.MemBoundFraction())
		})
	}
}

// TestRegistryAptGetPreservesSemantics runs the full APT-GET pipeline on
// every Table 3 application — the Verify step of the pipeline fails if
// injection changes any result.
func TestRegistryAptGetPreservesSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline runs are slow in -short mode")
	}
	for _, key := range []string{
		"BFS", "DFS", "PR", "BC", "SSSP", "IS", "CG", "randAcc", "HJ2", "HJ8", "G500",
	} {
		key := key
		t.Run(key, func(t *testing.T) {
			e, ok := ByKey(key)
			if !ok {
				t.Fatalf("missing registry entry %s", key)
			}
			w := e.New()
			cmp, err := core.Compare(w, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: static %.2fx, apt-get %.2fx (plans %d, injected %d)",
				key, cmp.StaticSpeedup(), cmp.AptGetSpeedup(),
				len(cmp.AptGet.Plans), cmp.AptGet.Report.Injected)
			if cmp.AptGetSpeedup() < 0.95 {
				t.Fatalf("APT-GET slowed %s down: %.2fx", key, cmp.AptGetSpeedup())
			}
		})
	}
}

func TestMicroComplexities(t *testing.T) {
	for _, c := range []Complexity{ComplexityLow, ComplexityMedium, ComplexityHigh} {
		w := NewMicro(256, c)
		res, err := core.RunBaseline(w, core.DefaultConfig())
		if err != nil {
			t.Fatalf("complexity %v: %v", c, err)
		}
		if res.Counters.Instructions == 0 {
			t.Fatal("empty run")
		}
	}
	if ComplexityLow.String() != "low" || ComplexityMedium.String() != "medium" ||
		ComplexityHigh.String() != "high" || Complexity(3).String() != "custom" {
		t.Fatal("complexity names wrong")
	}
}

func TestMicroWorkScalesCycles(t *testing.T) {
	low := NewMicro(256, ComplexityLow)
	high := NewMicro(256, ComplexityHigh)
	cfg := core.DefaultConfig()
	rl, err := core.RunBaseline(low, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := core.RunBaseline(high, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Counters.Cycles <= rl.Counters.Cycles {
		t.Fatal("higher work complexity must cost more cycles")
	}
}

func TestBFSSmallGraphExact(t *testing.T) {
	g := graphgen.Uniform("t", 500, 3, 11)
	w := NewBFS("bfs-t", g, 0)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDFSSmallGraphExact(t *testing.T) {
	g := graphgen.Uniform("t", 400, 3, 12)
	w := NewDFS("dfs-t", g, 0)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankSmallGraphExact(t *testing.T) {
	g := graphgen.PowerLaw("t", 600, 4, 13)
	w := NewPageRank("pr-t", g, 3)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestBCSmallGraphExact(t *testing.T) {
	g := graphgen.PowerLaw("t", 400, 4, 14)
	w := NewBC("bc-t", g, []int64{3, 9})
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPSmallGraphExact(t *testing.T) {
	g := graphgen.Grid("t", 12, 12, 15)
	w := NewSSSP("sssp-t", g, 0)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestISSmallExact(t *testing.T) {
	w := NewIS(2000, 512, 2)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestCGSmallExact(t *testing.T) {
	w := NewCG(800, 6, 3)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestRandAccSmallExact(t *testing.T) {
	w := NewRandAcc(12, 3000)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinSmallExact(t *testing.T) {
	for _, b := range []int64{2, 8} {
		w := NewHashJoin("hj-t", 1<<8, b, 500, 800)
		if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
			t.Fatalf("bucket size %d: %v", b, err)
		}
		if w.wantMatches == 0 {
			t.Fatal("test join should produce matches")
		}
	}
}

func TestHashJoinInjectedSmall(t *testing.T) {
	// HJ with injection on a small instance: semantics preserved even
	// when the hash table fits in cache.
	w := NewHashJoin("hj-t2", 1<<10, 2, 2000, 3000)
	if _, err := core.RunStatic(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDisconnectedVertices(t *testing.T) {
	// A graph with unreachable vertices: dist stays -1 and verification
	// still passes.
	g := graphgen.Uniform("t", 300, 1, 16)
	w := NewBFS("bfs-d", g, 5)
	if _, err := core.RunBaseline(w, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	reached := 0
	for _, d := range w.wantDist {
		if d >= 0 {
			reached++
		}
	}
	if reached == len(w.wantDist) {
		t.Skip("graph unexpectedly connected; nothing to assert")
	}
}

func TestRegistryKeysUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.Key] {
			t.Fatalf("duplicate key %s", e.Key)
		}
		seen[e.Key] = true
	}
	if len(seen) != 11 {
		t.Fatalf("want 11 applications, got %d", len(seen))
	}
	if _, ok := ByKey("BFS"); !ok {
		t.Fatal("ByKey broken")
	}
	if _, ok := ByKey("NOPE"); ok {
		t.Fatal("ByKey should miss unknown keys")
	}
}
