package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// bcScale is the fixed-point unit of the dependency accumulation.
const bcScale = int64(1) << 12

// BC is CRONO-style betweenness centrality (Brandes): for each of K
// source vertices, a forward level-synchronous phase computes shortest
// path counts (sigma), then a backward per-level sweep accumulates
// dependencies (delta) in fixed point. Both phases read per-vertex state
// through col[e] — dist, sigma and delta are all delinquent.
// Arithmetic (including any sigma overflow on hub-heavy graphs) is
// mirrored exactly by the native reference.
type BC struct {
	Label   string
	G       *graphgen.Graph
	Sources []int64

	maxLevels []int64 // per source
	wantBC    []int64

	ga                     graphArrays
	dist, sigma, delta, bc ir.Array
	fr0, fr1, meta         ir.Array
}

// NewBC builds the workload and the native reference.
func NewBC(label string, g *graphgen.Graph, sources []int64) *BC {
	w := &BC{Label: label, G: g, Sources: sources}
	w.wantBC, w.maxLevels = nativeBC(g, sources)
	return w
}

func nativeBC(g *graphgen.Graph, sources []int64) ([]int64, []int64) {
	bc := make([]int64, g.N)
	maxLevels := make([]int64, len(sources))
	dist := make([]int64, g.N)
	sigma := make([]int64, g.N)
	delta := make([]int64, g.N)
	for si, src := range sources {
		for i := int64(0); i < g.N; i++ {
			dist[i], sigma[i], delta[i] = -1, 0, 0
		}
		dist[src], sigma[src] = 0, 1
		frontier := []int64{src}
		levels := int64(0)
		for lvl := int64(0); len(frontier) > 0; lvl++ {
			levels = lvl + 1
			var next []int64
			for _, u := range frontier {
				su := sigma[u]
				for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
					v := g.Col[e]
					if dist[v] < 0 {
						dist[v] = lvl + 1
						next = append(next, v)
					}
					if dist[v] == lvl+1 {
						sigma[v] += su
					}
				}
			}
			frontier = next
		}
		maxLevels[si] = levels
		// Backward dependency accumulation, level sweeps.
		for lvl := levels - 2; lvl >= 0; lvl-- {
			for u := int64(0); u < g.N; u++ {
				if dist[u] != lvl {
					continue
				}
				su := sigma[u]
				var acc int64
				for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
					v := g.Col[e]
					if dist[v] == lvl+1 && sigma[v] != 0 {
						acc += su * (bcScale + delta[v]) / sigma[v]
					}
				}
				delta[u] += acc
				if u != src {
					bc[u] += delta[u]
				}
			}
		}
	}
	return bc, maxLevels
}

// Name implements core.Workload.
func (w *BC) Name() string { return w.Label }

// Build implements core.Workload.
func (w *BC) Build() (*ir.Program, error) {
	g := w.G
	b := ir.NewBuilder(w.Label)
	w.ga = allocGraph(b, g, false)
	w.dist = b.Alloc("dist", g.N, 8)
	w.sigma = b.Alloc("sigma", g.N, 8)
	w.delta = b.Alloc("delta", g.N, 8)
	w.bc = b.Alloc("bc", g.N, 8)
	w.fr0 = b.Alloc("fr0", g.N, 8)
	w.fr1 = b.Alloc("fr1", g.N, 8)
	w.meta = b.Alloc("meta", 2, 8)

	zero := b.Const(0)
	one := b.Const(1)
	n := b.Const(g.N)
	scale := b.Const(bcScale)
	negOne := b.Const(-1)

	forwardSweep := func(lvl ir.Value, cur ir.Array, curIdx int64, next ir.Array, nextIdx int64) {
		csize := b.LoadElem(w.meta, b.Const(curIdx))
		b.StoreElem(w.meta, b.Const(nextIdx), zero)
		b.Loop("fi", zero, csize, 1, func(fi ir.Value) {
			u := b.LoadElem(cur, fi)
			su := b.LoadElem(w.sigma, u)
			rs := b.LoadElem(w.ga.rowptr, u)
			re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
			lvl1 := b.Add(lvl, one)
			b.Loop("e", rs, re, 1, func(e ir.Value) {
				v := b.LoadElem(w.ga.col, e)
				d := b.Named(b.LoadElem(w.dist, v), "dist[col[e]]") // delinquent load
				b.If(b.Cmp(ir.PredLT, d, zero), func() {
					b.StoreElem(w.dist, v, lvl1)
					ns := b.LoadElem(w.meta, b.Const(nextIdx))
					b.StoreElem(next, ns, v)
					b.StoreElem(w.meta, b.Const(nextIdx), b.Add(ns, one))
				}, nil)
				d2 := b.LoadElem(w.dist, v)
				b.If(b.Cmp(ir.PredEQ, d2, lvl1), func() {
					sv := b.LoadElem(w.sigma, v)
					b.StoreElem(w.sigma, v, b.Add(sv, su))
				}, nil)
			})
		})
	}

	// One source = one unrolled stage (sources are few; unrolling keeps
	// every loop canonical).
	for si, src := range w.Sources {
		srcC := b.Const(src)
		// Reset per-source state.
		b.Loop(fmt.Sprintf("rst%d", si), zero, n, 1, func(u ir.Value) {
			b.StoreElem(w.dist, u, negOne)
			b.StoreElem(w.sigma, u, zero)
			b.StoreElem(w.delta, u, zero)
		})
		b.StoreElem(w.dist, srcC, zero)
		b.StoreElem(w.sigma, srcC, one)
		b.StoreElem(w.fr0, zero, srcC)
		b.StoreElem(w.meta, zero, one)
		b.StoreElem(w.meta, one, zero)

		levels := w.maxLevels[si]
		b.Loop(fmt.Sprintf("lvl%d", si), zero, b.Const(levels), 1, func(lvl ir.Value) {
			par := b.And(lvl, one)
			b.If(b.Cmp(ir.PredEQ, par, zero),
				func() { forwardSweep(lvl, w.fr0, 0, w.fr1, 1) },
				func() { forwardSweep(lvl, w.fr1, 1, w.fr0, 0) })
		})

		// Backward: lvl = levels-2 ... 0 expressed as an ascending loop.
		if levels >= 2 {
			b.Loop(fmt.Sprintf("back%d", si), zero, b.Const(levels-1), 1, func(l ir.Value) {
				lvl := b.Sub(b.Const(levels-2), l)
				lvl1 := b.Add(lvl, one)
				b.Loop("bu", zero, n, 1, func(u ir.Value) {
					du := b.LoadElem(w.dist, u)
					b.If(b.Cmp(ir.PredEQ, du, lvl), func() {
						su := b.LoadElem(w.sigma, u)
						rs := b.LoadElem(w.ga.rowptr, u)
						re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
						b.Loop("be", rs, re, 1, func(e ir.Value) {
							v := b.LoadElem(w.ga.col, e)
							dv := b.Named(b.LoadElem(w.dist, v), "dist[col[e]] (backward)") // delinquent load
							b.If(b.Cmp(ir.PredEQ, dv, lvl1), func() {
								sv := b.LoadElem(w.sigma, v)
								b.If(b.Cmp(ir.PredNE, sv, zero), func() {
									dl := b.LoadElem(w.delta, v)
									term := b.Div(b.Mul(su, b.Add(scale, dl)), sv)
									cur := b.LoadElem(w.delta, u)
									b.StoreElem(w.delta, u, b.Add(cur, term))
								}, nil)
							}, nil)
						})
						b.If(b.Cmp(ir.PredNE, u, srcC), func() {
							acc := b.LoadElem(w.bc, u)
							b.StoreElem(w.bc, u, b.Add(acc, b.LoadElem(w.delta, u)))
						}, nil)
					}, nil)
				})
			})
		}
	}
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *BC) InitMem(a *mem.Arena) {
	w.ga.initGraph(a, w.G)
	// All working arrays are (re)initialized by the program itself.
}

// Verify implements core.Workload.
func (w *BC) Verify(a *mem.Arena) error {
	if err := expect(a, w.bc, w.wantBC, w.Label+": bc"); err != nil {
		return fmt.Errorf("bc: %w", err)
	}
	return nil
}
