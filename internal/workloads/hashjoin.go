package workloads

import (
	"fmt"
	"math/rand"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// hashMul is the multiplicative hashing constant (Knuth/NPO-style).
const hashMul = 2654435761

// HashJoin is the no-partitioning (NPO) main-memory hash join of
// Balkesen et al., in the paper's two variants: HJ2 (2 elements per
// bucket) and HJ8 (8 elements per bucket). The build phase fills a
// bucketed hash table from relation R; the probe phase scans each
// bucket for relation S's keys. The delinquent load is the bucket-key
// probe HTkey[h*B+s] — indirect through the streamed probe key and the
// hash computation — inside a tiny inner loop of trip count B, the
// paper's prime outer-injection case (HJ8 reaches 1.98× in Figure 6).
type HashJoin struct {
	Label      string
	Buckets    int64 // power of two
	BucketSize int64 // B: 2 (HJ2) or 8 (HJ8)
	BuildN     int64
	ProbeN     int64
	Seed       int64

	wantMatches int64
	wantPaySum  int64

	rkey, skey                ir.Array
	htKey, htPay, htCnt, meta ir.Array // meta: [0]=matches, [1]=payload sum
}

// NewHashJoin builds an HJ2/HJ8 instance. The hash table
// (buckets×bucketSize keys + payloads) exceeds the LLC.
func NewHashJoin(label string, buckets, bucketSize, buildN, probeN int64) *HashJoin {
	w := &HashJoin{
		Label: label, Buckets: buckets, BucketSize: bucketSize,
		BuildN: buildN, ProbeN: probeN, Seed: 53,
	}
	w.wantMatches, w.wantPaySum = w.native()
	return w
}

func (w *HashJoin) data() (rkeys, skeys []int64) {
	rng := rand.New(rand.NewSource(w.Seed))
	keyRange := w.BuildN * 2 // ~50% of probes hit
	rkeys = make([]int64, w.BuildN)
	for i := range rkeys {
		rkeys[i] = rng.Int63n(keyRange)
	}
	skeys = make([]int64, w.ProbeN)
	for i := range skeys {
		skeys[i] = rng.Int63n(keyRange)
	}
	return rkeys, skeys
}

func (w *HashJoin) hash(k int64) int64 {
	return (k * hashMul) & (w.Buckets - 1)
}

// native mirrors the IR program exactly: build with overflow drop (a
// full bucket discards the tuple, as NPO's fixed-size buckets do when
// sized generously), then probe counting matches and summing payloads.
func (w *HashJoin) native() (matches, paySum int64) {
	rkeys, skeys := w.data()
	htKey := make([]int64, w.Buckets*w.BucketSize)
	htPay := make([]int64, w.Buckets*w.BucketSize)
	htCnt := make([]int64, w.Buckets)
	for i := range htKey {
		htKey[i] = -1
	}
	for i, k := range rkeys {
		h := w.hash(k)
		c := htCnt[h]
		if c < w.BucketSize {
			htKey[h*w.BucketSize+c] = k
			htPay[h*w.BucketSize+c] = int64(i)
			htCnt[h] = c + 1
		}
	}
	for _, k := range skeys {
		h := w.hash(k)
		for s := int64(0); s < w.BucketSize; s++ {
			if htKey[h*w.BucketSize+s] == k {
				matches++
				paySum += htPay[h*w.BucketSize+s]
			}
		}
	}
	return matches, paySum
}

// Name implements core.Workload.
func (w *HashJoin) Name() string { return w.Label }

// Build implements core.Workload.
func (w *HashJoin) Build() (*ir.Program, error) {
	b := ir.NewBuilder(w.Label)
	w.rkey = b.Alloc("rkey", w.BuildN, 8)
	w.skey = b.Alloc("skey", w.ProbeN, 8)
	w.htKey = b.Alloc("htkey", w.Buckets*w.BucketSize, 8)
	w.htPay = b.Alloc("htpay", w.Buckets*w.BucketSize, 8)
	w.htCnt = b.Alloc("htcnt", w.Buckets, 8)
	w.meta = b.Alloc("meta", 2, 8)

	zero := b.Const(0)
	one := b.Const(1)
	bsz := b.Const(w.BucketSize)
	mask := b.Const(w.Buckets - 1)
	mul := b.Const(hashMul)

	hash := func(k ir.Value) ir.Value { return b.And(b.Mul(k, mul), mask) }

	// Build phase.
	b.Loop("build", zero, b.Const(w.BuildN), 1, func(i ir.Value) {
		k := b.LoadElem(w.rkey, i)
		h := hash(k)
		c := b.LoadElem(w.htCnt, h) // delinquent (build side)
		b.If(b.Cmp(ir.PredLT, c, bsz), func() {
			slot := b.Add(b.Mul(h, bsz), c)
			b.StoreElem(w.htKey, slot, k)
			b.StoreElem(w.htPay, slot, i)
			b.StoreElem(w.htCnt, h, b.Add(c, one))
		}, nil)
	})

	// Probe phase: the paper's hot loop.
	b.Loop("probe", zero, b.Const(w.ProbeN), 1, func(j ir.Value) {
		k := b.LoadElem(w.skey, j)
		h := hash(k)
		bktBase := b.Mul(h, bsz)
		b.Loop("slot", zero, bsz, 1, func(s ir.Value) {
			hk := b.Named(b.LoadElem(w.htKey, b.Add(bktBase, s)), "HTkey[h*B+s]") // delinquent load
			b.If(b.Cmp(ir.PredEQ, hk, k), func() {
				m := b.LoadElem(w.meta, zero)
				b.StoreElem(w.meta, zero, b.Add(m, one))
				pay := b.LoadElem(w.htPay, b.Add(bktBase, s))
				ps := b.LoadElem(w.meta, one)
				b.StoreElem(w.meta, one, b.Add(ps, pay))
			}, nil)
		})
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *HashJoin) InitMem(a *mem.Arena) {
	rkeys, skeys := w.data()
	for i, k := range rkeys {
		a.Write(w.rkey.Addr(int64(i)), k, 8)
	}
	for i, k := range skeys {
		a.Write(w.skey.Addr(int64(i)), k, 8)
	}
	for i := int64(0); i < w.htKey.Count; i++ {
		a.Write(w.htKey.Addr(i), -1, 8)
	}
}

// Verify implements core.Workload.
func (w *HashJoin) Verify(a *mem.Arena) error {
	if err := expectScalar(a, w.meta, 0, w.wantMatches, w.Label+": matches"); err != nil {
		return fmt.Errorf("hashjoin: %w", err)
	}
	if err := expectScalar(a, w.meta, 1, w.wantPaySum, w.Label+": payload sum"); err != nil {
		return fmt.Errorf("hashjoin: %w", err)
	}
	return nil
}
