package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// ssspInf is the unreachable distance sentinel.
const ssspInf = int64(1) << 40

// SSSP is the CRONO-style Bellman-Ford single-source shortest paths:
// full edge relaxation sweeps guarded by a convergence flag. The
// delinquent load is dist[col[e]] read for the relaxation compare.
type SSSP struct {
	Label  string
	G      *graphgen.Graph
	Source int64

	rounds   int64
	wantDist []int64

	ga         graphArrays
	dist, meta ir.Array // meta[0]: changed flag
}

// NewSSSP builds the workload; the round budget comes from the native
// run (rounds to convergence + 1 idle round).
func NewSSSP(label string, g *graphgen.Graph, source int64) *SSSP {
	w := &SSSP{Label: label, G: g, Source: source}
	w.wantDist, w.rounds = nativeSSSP(g, source)
	return w
}

func nativeSSSP(g *graphgen.Graph, src int64) ([]int64, int64) {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = ssspInf
	}
	dist[src] = 0
	rounds := int64(0)
	for changed := true; changed; rounds++ {
		changed = false
		for u := int64(0); u < g.N; u++ {
			du := dist[u]
			if du >= ssspInf {
				continue
			}
			for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
				v := g.Col[e]
				if alt := du + g.Weight[e]; alt < dist[v] {
					dist[v] = alt
					changed = true
				}
			}
		}
	}
	return dist, rounds + 1
}

// Name implements core.Workload.
func (w *SSSP) Name() string { return w.Label }

// Build implements core.Workload.
func (w *SSSP) Build() (*ir.Program, error) {
	g := w.G
	b := ir.NewBuilder(w.Label)
	w.ga = allocGraph(b, g, true)
	w.dist = b.Alloc("dist", g.N, 8)
	w.meta = b.Alloc("meta", 1, 8)

	zero := b.Const(0)
	one := b.Const(1)
	inf := b.Const(ssspInf)
	n := b.Const(g.N)

	b.Loop("round", zero, b.Const(w.rounds), 1, func(r ir.Value) {
		chg := b.LoadElem(w.meta, zero)
		b.If(b.Cmp(ir.PredEQ, chg, one), func() {
			b.StoreElem(w.meta, zero, zero)
			b.Loop("u", zero, n, 1, func(u ir.Value) {
				du := b.LoadElem(w.dist, u)
				b.If(b.Cmp(ir.PredLT, du, inf), func() {
					rs := b.LoadElem(w.ga.rowptr, u)
					re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
					b.Loop("e", rs, re, 1, func(e ir.Value) {
						v := b.LoadElem(w.ga.col, e)
						wt := b.LoadElem(w.ga.weight, e)
						alt := b.Add(du, wt)
						dv := b.Named(b.LoadElem(w.dist, v), "dist[col[e]]") // delinquent load
						b.If(b.Cmp(ir.PredLT, alt, dv), func() {
							b.StoreElem(w.dist, v, alt)
							b.StoreElem(w.meta, zero, one)
						}, nil)
					})
				}, nil)
			})
		}, nil)
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *SSSP) InitMem(a *mem.Arena) {
	w.ga.initGraph(a, w.G)
	for i := int64(0); i < w.G.N; i++ {
		a.Write(w.dist.Addr(i), ssspInf, 8)
	}
	a.Write(w.dist.Addr(w.Source), 0, 8)
	a.Write(w.meta.Addr(0), 1, 8)
}

// Verify implements core.Workload.
func (w *SSSP) Verify(a *mem.Arena) error {
	if err := expect(a, w.dist, w.wantDist, w.Label+": dist"); err != nil {
		return fmt.Errorf("sssp: %w", err)
	}
	return nil
}
