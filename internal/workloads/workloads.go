// Package workloads implements the paper's Table 3 applications as IR
// programs with native Go reference implementations for verification:
// the CRONO-style graph kernels (BFS, DFS, PageRank, Betweenness
// Centrality, SSSP), NAS IS and CG, HPCC RandomAccess, the NPO hash join
// in its 2- and 8-elements-per-bucket variants, Graph500 BFS on a
// Kronecker graph, and the §2.1 microbenchmark (Listing 1).
//
// Every workload builds deterministically (identical instruction
// sequence, hence identical PCs, across Build calls) so that prefetch
// plans computed on a profiled build apply to fresh builds, and every
// workload verifies the optimized program's results against the native
// reference — prefetch injection must never change semantics.
package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// graphArrays holds the CSR arrays of a graph workload.
type graphArrays struct {
	rowptr, col ir.Array
	weight      ir.Array // only when allocated with weights
}

// allocGraph reserves the CSR arrays in the program arena.
func allocGraph(b *ir.Builder, g *graphgen.Graph, withWeights bool) graphArrays {
	ga := graphArrays{
		rowptr: b.Alloc("rowptr", g.N+1, 8),
		col:    b.Alloc("col", g.M(), 8),
	}
	if withWeights {
		ga.weight = b.Alloc("weight", g.M(), 8)
	}
	return ga
}

// initGraph writes the CSR arrays into simulated memory.
func (ga *graphArrays) initGraph(a *mem.Arena, g *graphgen.Graph) {
	for i, v := range g.RowPtr {
		a.Write(ga.rowptr.Addr(int64(i)), v, 8)
	}
	for i, v := range g.Col {
		a.Write(ga.col.Addr(int64(i)), v, 8)
	}
	if ga.weight.Count > 0 {
		for i, w := range g.Weight {
			a.Write(ga.weight.Addr(int64(i)), w, 8)
		}
	}
}

// expect compares a simulated memory array against a native slice.
func expect(a *mem.Arena, arr ir.Array, want []int64, what string) error {
	if int64(len(want)) != arr.Count {
		return fmt.Errorf("%s: length mismatch %d vs %d", what, len(want), arr.Count)
	}
	for i := int64(0); i < arr.Count; i++ {
		if got := a.Read(arr.Addr(i), 8); got != want[i] {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, want[i])
		}
	}
	return nil
}

// expectScalar compares one simulated value.
func expectScalar(a *mem.Arena, arr ir.Array, idx int64, want int64, what string) error {
	if got := a.Read(arr.Addr(idx), 8); got != want {
		return fmt.Errorf("%s = %d, want %d", what, got, want)
	}
	return nil
}
