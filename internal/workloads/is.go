package workloads

import (
	"fmt"
	"math/rand"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// IS is the NAS Integer Sort kernel: repeated bucket-sort ranking of
// random integer keys. The delinquent accesses are the count-array
// increments cnt[keys[i]] and the rank gathering — indirect through the
// sequentially-streamed key array, exactly the access pair the paper
// describes for IS (§4.2).
type IS struct {
	Label   string
	Keys    int64 // number of keys
	Buckets int64 // key range / count-array size (power of two)
	Iters   int64
	Seed    int64

	wantRank []int64

	keys, cnt, rank ir.Array
}

// NewIS builds the workload (Class-scaled: the count array exceeds the
// LLC).
func NewIS(keys, buckets, iters int64) *IS {
	w := &IS{Label: "IS", Keys: keys, Buckets: buckets, Iters: iters, Seed: 31}
	w.wantRank = w.nativeRank()
	return w
}

func (w *IS) keyData() []int64 {
	rng := rand.New(rand.NewSource(w.Seed))
	ks := make([]int64, w.Keys)
	for i := range ks {
		ks[i] = rng.Int63n(w.Buckets)
	}
	return ks
}

// nativeRank mirrors the IR program: per iteration, zero counts, count,
// prefix-sum, then assign ranks back-to-front semantics-free (each key's
// rank is the decremented running count).
func (w *IS) nativeRank() []int64 {
	keys := w.keyData()
	cnt := make([]int64, w.Buckets)
	rank := make([]int64, w.Keys)
	for it := int64(0); it < w.Iters; it++ {
		for b := range cnt {
			cnt[b] = 0
		}
		for _, k := range keys {
			cnt[k]++
		}
		for b := int64(1); b < w.Buckets; b++ {
			cnt[b] += cnt[b-1]
		}
		for i, k := range keys {
			c := cnt[k] - 1
			cnt[k] = c
			rank[i] = c
		}
	}
	return rank
}

// Name implements core.Workload.
func (w *IS) Name() string { return w.Label }

// Build implements core.Workload.
func (w *IS) Build() (*ir.Program, error) {
	b := ir.NewBuilder(w.Label)
	w.keys = b.Alloc("keys", w.Keys, 8)
	w.cnt = b.Alloc("cnt", w.Buckets, 8)
	w.rank = b.Alloc("rank", w.Keys, 8)

	zero := b.Const(0)
	one := b.Const(1)
	nk := b.Const(w.Keys)
	nb := b.Const(w.Buckets)

	b.Loop("it", zero, b.Const(w.Iters), 1, func(it ir.Value) {
		b.Loop("z", zero, nb, 1, func(i ir.Value) {
			b.StoreElem(w.cnt, i, zero)
		})
		b.Loop("count", zero, nk, 1, func(i ir.Value) {
			k := b.LoadElem(w.keys, i)
			c := b.Named(b.LoadElem(w.cnt, k), "cnt[keys[i]]") // delinquent load
			b.StoreElem(w.cnt, k, b.Add(c, one))
		})
		b.Loop("psum", b.Const(1), nb, 1, func(i ir.Value) {
			prev := b.LoadElem(w.cnt, b.Sub(i, one))
			cur := b.LoadElem(w.cnt, i)
			b.StoreElem(w.cnt, i, b.Add(cur, prev))
		})
		b.Loop("rankit", zero, nk, 1, func(i ir.Value) {
			k := b.LoadElem(w.keys, i)
			c := b.Sub(b.Named(b.LoadElem(w.cnt, k), "cnt[keys[i]] (rank)"), one) // delinquent load
			b.StoreElem(w.cnt, k, c)
			b.StoreElem(w.rank, i, c)
		})
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *IS) InitMem(a *mem.Arena) {
	for i, k := range w.keyData() {
		a.Write(w.keys.Addr(int64(i)), k, 8)
	}
}

// Verify implements core.Workload.
func (w *IS) Verify(a *mem.Arena) error {
	if err := expect(a, w.rank, w.wantRank, "IS: rank"); err != nil {
		return fmt.Errorf("is: %w", err)
	}
	return nil
}
