package workloads

import (
	"math/rand"

	"aptget/internal/core"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// PhaseKind selects how a phase's index stream walks the table.
type PhaseKind int

const (
	// PhaseStride walks the table sequentially — the hardware stride
	// prefetcher's home turf, with almost no exposed miss latency.
	PhaseStride PhaseKind = iota
	// PhaseGather draws uniform random indices from [0, Span) — the
	// dependent indirect pattern software prefetching exists for.
	PhaseGather
)

func (k PhaseKind) String() string {
	if k == PhaseStride {
		return "stride"
	}
	return "gather"
}

// Phase is one segment of a phase-changing run: an access pattern over
// the first Span table entries.
type Phase struct {
	Kind PhaseKind
	Span int64
}

// Phased is a phase-changing variant of the §2.1 microbenchmark: one
// flat loop `out += T[B[k]]` whose behaviour changes because the *data*
// in B changes region by region — sequential indices (stride phases),
// random indices over a growing footprint (gather phases, data-size
// ramps). The loop and its single delinquent load are identical across
// phases, so a prefetch plan profiled in one phase is structurally valid
// in all of them — only its profitability and Equation (1) provenance go
// stale. That is exactly the drift online re-planning targets.
type Phased struct {
	name      string
	Phases    []Phase
	PerPhase  int64 // iterations per phase
	TableSize int64
	Work      Complexity
	Seed      int64

	bArr, tArr, out ir.Array
}

// NewPhased returns a phase-changing workload with the given schedule.
func NewPhased(name string, phases []Phase, perPhase int64, work Complexity) *Phased {
	table := int64(1)
	for _, ph := range phases {
		if ph.Span > table {
			table = ph.Span
		}
	}
	return &Phased{
		name:      name,
		Phases:    phases,
		PerPhase:  perPhase,
		TableSize: table,
		Work:      work,
		Seed:      11,
	}
}

// NewPhaseSG alternates stride and gather phases over a DRAM-sized
// table, starting with stride — so a profile taken early sees a
// hardware-covered stream and plans nothing.
func NewPhaseSG(name string, phases int, perPhase int64) *Phased {
	span := int64(1 << 18) // 2 MiB of int64 ≫ 512 KiB LLC
	sched := make([]Phase, phases)
	for i := range sched {
		kind := PhaseStride
		if i%2 == 1 {
			kind = PhaseGather
		}
		sched[i] = Phase{Kind: kind, Span: span}
	}
	return NewPhased(name, sched, perPhase, ComplexityLow)
}

// NewPhaseRamp gathers from a footprint that quadruples each phase:
// LLC-resident at first — a profile taken there measures a ~40-cycle
// memory component and plans a short prefetch distance — then far
// beyond the LLC, where that distance is hopelessly late.
func NewPhaseRamp(name string, phases int, perPhase int64) *Phased {
	span := int64(1 << 15) // 256 KiB: fits the 512 KiB LLC, misses L2
	sched := make([]Phase, phases)
	for i := range sched {
		sched[i] = Phase{Kind: PhaseGather, Span: span}
		span *= 4
	}
	return NewPhased(name, sched, perPhase, ComplexityLow)
}

// NewPhaseFlat is the stationary control: one long gather phase with no
// drift, on which an adaptive controller must leave the one-shot plan
// alone.
func NewPhaseFlat(name string, perPhase int64) *Phased {
	return NewPhased(name, []Phase{{Kind: PhaseGather, Span: 1 << 18}}, perPhase, ComplexityLow)
}

// Prefix returns a variant that executes only the first n phases — the
// profile-time workload of a stale-plan (train/test) study, where the
// plan is computed before the later phases exist.
func (p *Phased) Prefix(n int) *Phased {
	if n > len(p.Phases) {
		n = len(p.Phases)
	}
	q := *p
	q.name = p.name + "-train"
	q.Phases = append([]Phase(nil), p.Phases[:n]...)
	q.bArr, q.tArr, q.out = ir.Array{}, ir.Array{}, ir.Array{}
	return &q
}

// Name implements core.Workload.
func (p *Phased) Name() string { return p.name }

// Total returns the run's iteration count.
func (p *Phased) Total() int64 { return int64(len(p.Phases)) * p.PerPhase }

// Build implements core.Workload. The program is one flat loop, so the
// phase structure lives entirely in the data: the loop body, its PCs,
// and its single indirect load are identical in every phase.
func (p *Phased) Build() (*ir.Program, error) {
	b := ir.NewBuilder(p.name)
	p.bArr = b.Alloc("B", p.Total(), 8)
	p.tArr = b.Alloc("T", p.TableSize, 8)
	p.out = b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("k", zero, b.Const(p.Total()), 1, func(k ir.Value) {
		idx := b.LoadElem(p.bArr, k)
		v := b.Named(b.LoadElem(p.tArr, idx), "T[B[k]]")
		acc := work(b, v, int(p.Work))
		old := b.LoadElem(p.out, zero)
		b.StoreElem(p.out, zero, b.Add(old, acc))
	})
	return b.Finish(), nil
}

func (p *Phased) data() []int64 {
	rng := rand.New(rand.NewSource(p.Seed))
	bs := make([]int64, p.Total())
	for ph, phase := range p.Phases {
		base := int64(ph) * p.PerPhase
		for k := int64(0); k < p.PerPhase; k++ {
			switch phase.Kind {
			case PhaseStride:
				bs[base+k] = k % phase.Span
			case PhaseGather:
				bs[base+k] = rng.Int63n(phase.Span)
			}
		}
	}
	return bs
}

func (p *Phased) tableValue(i int64) int64 { return i*13%2027 + 1 }

// InitMem implements core.Workload.
func (p *Phased) InitMem(a *mem.Arena) {
	for i, v := range p.data() {
		a.Write(p.bArr.Addr(int64(i)), v, 8)
	}
	for i := int64(0); i < p.TableSize; i++ {
		a.Write(p.tArr.Addr(i), p.tableValue(i), 8)
	}
}

// Verify implements core.Workload.
func (p *Phased) Verify(a *mem.Arena) error {
	var want int64
	for _, idx := range p.data() {
		want += workNative(p.tableValue(idx), int(p.Work))
	}
	return expectScalar(a, p.out, 0, want, p.name+": out")
}

// PhasedRegistry returns the phase-changing corpus used by the online
// re-planning study (aptbench -exp replan). It is kept separate from
// Registry so the paper's Table 3 sweeps are unchanged; ByKey resolves
// both.
func PhasedRegistry() []Entry {
	return []Entry{
		{
			Key: "phaseSG", Description: "alternating stride↔gather indirect phases", Dataset: "",
			New: func() core.Workload { return NewPhaseSG("phaseSG", 4, 12_288) },
		},
		{
			Key: "phaseRamp", Description: "random gather over a 256 KiB→4 MiB footprint ramp", Dataset: "",
			New: func() core.Workload { return NewPhaseRamp("phaseRamp", 3, 12_288) },
		},
		{
			Key: "phaseFlat", Description: "stationary random gather (re-planning control)", Dataset: "",
			New: func() core.Workload { return NewPhaseFlat("phaseFlat", 49_152) },
		},
	}
}
