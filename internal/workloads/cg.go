package workloads

import (
	"fmt"
	"math/rand"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// CG is the NAS Conjugate Gradient memory kernel: sparse
// matrix-vector products over a random CSR matrix (the delinquent load
// is the gather p[col[e]]) interleaved with the dot products and axpy
// updates of the CG recurrence. The arithmetic is integer (scaled), and
// the step size is the integer quotient of the two dot products — a
// faithful reproduction of the access pattern, with the floating-point
// convergence math simplified (documented in DESIGN.md).
type CG struct {
	Label  string
	N      int64 // rows
	PerRow int64 // nonzeros per row
	Iters  int64
	Seed   int64

	rowptr, col, val ir.Array
	p, q, x, meta    ir.Array

	nRow, nCol, nVal []int64
	wantX, wantQ     []int64
}

// NewCG builds the workload: a uniformly random sparse matrix with
// PerRow nonzeros per row.
func NewCG(n, perRow, iters int64) *CG {
	w := &CG{Label: "CG", N: n, PerRow: perRow, Iters: iters, Seed: 47}
	w.genMatrix()
	w.wantX, w.wantQ = w.native()
	return w
}

func (w *CG) genMatrix() {
	rng := rand.New(rand.NewSource(w.Seed))
	w.nRow = make([]int64, w.N+1)
	m := w.N * w.PerRow
	w.nCol = make([]int64, m)
	w.nVal = make([]int64, m)
	for i := int64(0); i < w.N; i++ {
		w.nRow[i+1] = (i + 1) * w.PerRow
		for k := int64(0); k < w.PerRow; k++ {
			w.nCol[i*w.PerRow+k] = rng.Int63n(w.N)
			w.nVal[i*w.PerRow+k] = 1 + rng.Int63n(7)
		}
	}
}

// native mirrors the IR program exactly.
func (w *CG) native() (x, q []int64) {
	n := w.N
	p := make([]int64, n)
	q = make([]int64, n)
	x = make([]int64, n)
	for i := int64(0); i < n; i++ {
		p[i] = (i % 7) + 1
	}
	for it := int64(0); it < w.Iters; it++ {
		// q = A p
		for r := int64(0); r < n; r++ {
			var sum int64
			for e := w.nRow[r]; e < w.nRow[r+1]; e++ {
				sum += w.nVal[e] * p[w.nCol[e]]
			}
			q[r] = sum
		}
		// alpha = (p·p) / max(p·q, 1)
		var pp, pq int64
		for i := int64(0); i < n; i++ {
			pp += p[i] * p[i]
			pq += p[i] * q[i]
		}
		if pq < 1 {
			pq = 1
		}
		alpha := pp / pq
		// x += alpha*p ; p = q >> 4 (re-seed direction from q, scaled down)
		for i := int64(0); i < n; i++ {
			x[i] += alpha * p[i]
			p[i] = q[i] >> 4
		}
	}
	return x, q
}

// Name implements core.Workload.
func (w *CG) Name() string { return w.Label }

// Build implements core.Workload.
func (w *CG) Build() (*ir.Program, error) {
	b := ir.NewBuilder(w.Label)
	w.rowptr = b.Alloc("rowptr", w.N+1, 8)
	w.col = b.Alloc("col", w.N*w.PerRow, 8)
	w.val = b.Alloc("val", w.N*w.PerRow, 8)
	w.p = b.Alloc("p", w.N, 8)
	w.q = b.Alloc("q", w.N, 8)
	w.x = b.Alloc("x", w.N, 8)
	w.meta = b.Alloc("meta", 2, 8) // [0]=pp, [1]=pq

	zero := b.Const(0)
	one := b.Const(1)
	n := b.Const(w.N)

	b.Loop("it", zero, b.Const(w.Iters), 1, func(it ir.Value) {
		// q = A p
		b.Loop("row", zero, n, 1, func(r ir.Value) {
			b.StoreElem(w.q, r, zero)
			rs := b.LoadElem(w.rowptr, r)
			re := b.LoadElem(w.rowptr, b.Add(r, one))
			b.Loop("e", rs, re, 1, func(e ir.Value) {
				v := b.LoadElem(w.col, e)
				pv := b.Named(b.LoadElem(w.p, v), "p[col[e]]") // delinquent load
				av := b.LoadElem(w.val, e)
				acc := b.LoadElem(w.q, r)
				b.StoreElem(w.q, r, b.Add(acc, b.Mul(av, pv)))
			})
		})
		// dot products
		b.StoreElem(w.meta, zero, zero)
		b.StoreElem(w.meta, one, zero)
		b.Loop("dot", zero, n, 1, func(i ir.Value) {
			pi := b.LoadElem(w.p, i)
			qi := b.LoadElem(w.q, i)
			pp := b.LoadElem(w.meta, zero)
			b.StoreElem(w.meta, zero, b.Add(pp, b.Mul(pi, pi)))
			pq := b.LoadElem(w.meta, one)
			b.StoreElem(w.meta, one, b.Add(pq, b.Mul(pi, qi)))
		})
		// alpha and the vector updates
		pp := b.LoadElem(w.meta, zero)
		pq := b.LoadElem(w.meta, one)
		pqc := b.Select(b.Cmp(ir.PredLT, pq, one), one, pq)
		alpha := b.Div(pp, pqc)
		b.Loop("axpy", zero, n, 1, func(i ir.Value) {
			pi := b.LoadElem(w.p, i)
			xi := b.LoadElem(w.x, i)
			b.StoreElem(w.x, i, b.Add(xi, b.Mul(alpha, pi)))
			qi := b.LoadElem(w.q, i)
			b.StoreElem(w.p, i, b.Shr(qi, b.Const(4)))
		})
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *CG) InitMem(a *mem.Arena) {
	for i, v := range w.nRow {
		a.Write(w.rowptr.Addr(int64(i)), v, 8)
	}
	for i := range w.nCol {
		a.Write(w.col.Addr(int64(i)), w.nCol[i], 8)
		a.Write(w.val.Addr(int64(i)), w.nVal[i], 8)
	}
	for i := int64(0); i < w.N; i++ {
		a.Write(w.p.Addr(i), (i%7)+1, 8)
	}
}

// Verify implements core.Workload.
func (w *CG) Verify(a *mem.Arena) error {
	if err := expect(a, w.x, w.wantX, "CG: x"); err != nil {
		return fmt.Errorf("cg: %w", err)
	}
	if err := expect(a, w.q, w.wantQ, "CG: q"); err != nil {
		return fmt.Errorf("cg: %w", err)
	}
	return nil
}
