package workloads

import (
	"testing"

	"aptget/internal/graphgen"
)

func TestTopDegreeVertices(t *testing.T) {
	g := graphgen.PowerLaw("t", 2000, 5, 9)
	top := TopDegreeVertices(g, 3)
	if len(top) != 3 {
		t.Fatalf("want 3 vertices, got %d", len(top))
	}
	if g.Degree(top[0]) < g.Degree(top[1]) || g.Degree(top[1]) < g.Degree(top[2]) {
		t.Fatal("vertices must be ordered by descending degree")
	}
	seen := map[int64]bool{}
	for _, u := range top {
		if seen[u] {
			t.Fatal("duplicate vertex")
		}
		seen[u] = true
	}
	// The top vertex must dominate the average degree on a power law.
	if float64(g.Degree(top[0])) < 2*g.AvgDegree() {
		t.Fatalf("top degree %d should far exceed avg %.1f", g.Degree(top[0]), g.AvgDegree())
	}
}

func TestRegistryDescriptionsComplete(t *testing.T) {
	for _, e := range Registry() {
		if e.Description == "" {
			t.Fatalf("%s missing description", e.Key)
		}
		if e.New == nil {
			t.Fatalf("%s missing constructor", e.Key)
		}
	}
}

func TestWorkloadNamesMatchKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("constructors build graphs; slow in -short mode")
	}
	for _, e := range Registry() {
		w := e.New()
		if w.Name() != e.Key {
			t.Fatalf("workload name %q != registry key %q", w.Name(), e.Key)
		}
	}
}
