package workloads

import (
	"testing"

	"aptget/internal/core"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/profile"
)

// TestAdversarialBaselinesVerify executes every adversarial kernel
// unmodified and checks its result against the native reference.
func TestAdversarialBaselinesVerify(t *testing.T) {
	for _, e := range AdversarialRegistry() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			if e.Description == "" {
				t.Fatal("missing description")
			}
			w := e.New()
			res, err := core.RunBaseline(w, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Instructions == 0 {
				t.Fatal("no instructions retired")
			}
			if w.Name() != e.Key {
				t.Fatalf("workload name %q != registry key %q", w.Name(), e.Key)
			}
		})
	}
}

// rawAdversarialProfile profiles one adversarial kernel with a dense
// PEBS period and the score gate disabled, so tests see every
// candidate.
func rawAdversarialProfile(t *testing.T, key string) *profile.Profile {
	t.Helper()
	e, ok := ByKey(key)
	if !ok {
		t.Fatalf("missing registry entry %s", key)
	}
	w := e.New()
	p, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := profile.Options{SamplePeriod: 20_000, PEBSPeriod: 7, MinLoadSCKPI: -1}
	prof, err := profile.Collect(p, mem.ConfigScaled(), w.InitMem, opt)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestLSMSelectionContrast is the corpus's acceptance scenario: on the
// LSM scan kernel the 1-D MPKI gate keeps the cheap-frequent scan load
// and drops the expensive-rare probe, while the default 2-D gate does
// exactly the opposite.
func TestLSMSelectionContrast(t *testing.T) {
	e, _ := ByKey("LSM")
	w := e.New().(*LSMScan)
	p, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	var scanPC, probePC uint64
	for vi := range p.Func.Instrs {
		switch p.Func.Instrs[vi].Name {
		case "scan":
			scanPC = p.Func.Instrs[vi].PC
		case "probe":
			probePC = p.Func.Instrs[vi].PC
		}
	}
	if scanPC == 0 || probePC == 0 {
		t.Fatal("could not locate the scan/probe loads")
	}

	opt := profile.Options{SamplePeriod: 20_000, PEBSPeriod: 7, MinLoadSCKPI: -1}
	prof, err := profile.Collect(p, mem.ConfigScaled(), w.InitMem, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range prof.Loads {
		t.Logf("pc=%d samples=%d meanStall=%.1f score=%.1f", l.PC, l.Samples, l.MeanStall, l.Score)
	}
	run := func(o profile.Options) map[uint64]bool {
		cand := append([]pebs.Load(nil), prof.Loads...)
		got := map[uint64]bool{}
		for _, l := range profile.SelectLoads(cand, prof.Counters.Instructions, o) {
			got[l.PC] = true
		}
		return got
	}

	// Default 2-D gate: keep the expensive probe, drop the cheap scan.
	twoD := run(profile.Options{PEBSPeriod: 7})
	if !twoD[probePC] {
		t.Fatal("2-D gate dropped the expensive probe load")
	}
	if twoD[scanPC] {
		t.Fatal("2-D gate kept the cheap-frequent scan load")
	}

	// 1-D ablation: keep the frequent scan, drop the rare probe.
	oneD := run(profile.Options{PEBSPeriod: 7, MPKIOnly: true})
	if !oneD[scanPC] {
		t.Fatal("MPKI-only gate dropped the frequent scan load")
	}
	if oneD[probePC] {
		t.Fatal("MPKI-only gate kept the rare probe load")
	}
}

// TestBTreeKeptByBothGates pins the corpus's control: the pointer chase
// is frequent AND expensive, so neither gate may drop it.
func TestBTreeKeptByBothGates(t *testing.T) {
	prof := rawAdversarialProfile(t, "BTree")
	for _, o := range []profile.Options{{PEBSPeriod: 7}, {PEBSPeriod: 7, MPKIOnly: true}} {
		cand := append([]pebs.Load(nil), prof.Loads...)
		sel := profile.SelectLoads(cand, prof.Counters.Instructions, o)
		if len(sel) != 1 {
			t.Fatalf("MPKIOnly=%v: want the walk load kept, got %d loads", o.MPKIOnly, len(sel))
		}
	}
}

// TestInterleaveSeparatesTenants checks that a multi-tenant profile
// carries delinquent loads from more than one tenant (the combinator
// actually interleaves, rather than letting one tenant swamp the share
// gate) and that the cheap scan stream still scores far below the
// expensive walks inside the combined profile.
func TestInterleaveSeparatesTenants(t *testing.T) {
	prof := rawAdversarialProfile(t, "MTI")
	e, _ := ByKey("MTI")
	p, err := e.New().Build()
	if err != nil {
		t.Fatal(err)
	}
	name := func(pc uint64) string {
		for vi := range p.Func.Instrs {
			if p.Func.Instrs[vi].PC == pc {
				return p.Func.Instrs[vi].Name
			}
		}
		return ""
	}
	var maxScan, minWalk float64
	minWalk = 1e18
	tenants := map[string]bool{}
	for _, l := range prof.Loads {
		n := name(l.PC)
		tenants[n] = true
		switch n {
		case "scan":
			if l.Score > maxScan {
				maxScan = l.Score
			}
		case "walk":
			if l.Score < minWalk {
				minWalk = l.Score
			}
		}
	}
	if !tenants["T[B[i]]"] || !tenants["walk"] || !tenants["scan"] {
		t.Fatalf("expected delinquent loads from all three tenants, got %v", tenants)
	}
	if maxScan >= minWalk {
		t.Fatalf("cheap scan (%.1f) must score below expensive walk (%.1f) in the "+
			"combined profile", maxScan, minWalk)
	}
}

// legacyMicroBuild reproduces the pre-Kernel Micro emission verbatim:
// one two-level nest built directly against a fresh builder.
func legacyMicroBuild(m *Micro) *ir.Program {
	b := ir.NewBuilder(m.Name())
	bArr := b.Alloc("B", m.Outer*m.Inner, 8)
	tArr := b.Alloc("T", m.TableSize, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(m.Outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(m.Inner))
		b.Loop("j", zero, b.Const(m.Inner), 1, func(j ir.Value) {
			idx := b.LoadElem(bArr, b.Add(base, j))
			v := b.Named(b.LoadElem(tArr, idx), "T[B[i]]")
			acc := work(b, v, int(m.Work))
			old := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(old, acc))
		})
	})
	return b.Finish()
}

// TestMicroKernelRefactorIRIdentical pins the Micro Build refactor: the
// standalone program (AllocIn + one round) must emit the same
// instruction sequence the pre-Kernel builder produced, so existing
// profiles and plans keep matching by PC.
func TestMicroKernelRefactorIRIdentical(t *testing.T) {
	m := NewMicro(8, ComplexityMedium)
	got, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := legacyMicroBuild(NewMicro(8, ComplexityMedium))
	if len(got.Func.Instrs) != len(want.Func.Instrs) {
		t.Fatalf("instruction count differs: %d vs %d",
			len(got.Func.Instrs), len(want.Func.Instrs))
	}
	for i := range got.Func.Instrs {
		g, w := got.Func.Instrs[i], want.Func.Instrs[i]
		if g.Op != w.Op || g.PC != w.PC || g.Imm != w.Imm || g.Name != w.Name {
			t.Fatalf("instr %d differs: %+v vs %+v", i, g, w)
		}
	}
}
