package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// DFS is the CRONO-style iterative depth-first traversal with an
// explicit stack. The worklist loop is condition-controlled (no counted
// induction variable), so only the inner edge loop can host prefetches —
// matching the paper's Figure 10, where DFS is the one application that
// profits from inner-loop injection.
type DFS struct {
	Label  string
	G      *graphgen.Graph
	Source int64

	wantVisited []int64
	wantOrder   []int64

	ga                        graphArrays
	visited, stack, ord, meta ir.Array // meta: [0] top, [1] visit counter
}

// NewDFS builds the workload and its native reference.
func NewDFS(label string, g *graphgen.Graph, source int64) *DFS {
	w := &DFS{Label: label, G: g, Source: source}
	w.wantVisited, w.wantOrder = nativeDFS(g, source)
	return w
}

// nativeDFS mirrors the IR program exactly: pop u, record its visit
// order, push unvisited neighbours in adjacency order (marking them
// visited at push time).
func nativeDFS(g *graphgen.Graph, src int64) (visited, order []int64) {
	visited = make([]int64, g.N)
	order = make([]int64, g.N)
	for i := range order {
		order[i] = -1
	}
	stack := []int64{src}
	visited[src] = 1
	cnt := int64(0)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order[u] = cnt
		cnt++
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			v := g.Col[e]
			if visited[v] == 0 {
				visited[v] = 1
				stack = append(stack, v)
			}
		}
	}
	return visited, order
}

// Name implements core.Workload.
func (w *DFS) Name() string { return w.Label }

// Build implements core.Workload.
func (w *DFS) Build() (*ir.Program, error) {
	g := w.G
	b := ir.NewBuilder(w.Label)
	w.ga = allocGraph(b, g, false)
	w.visited = b.Alloc("visited", g.N, 8)
	w.stack = b.Alloc("stack", g.N, 8)
	w.ord = b.Alloc("order", g.N, 8)
	w.meta = b.Alloc("meta", 2, 8)

	zero := b.Const(0)
	one := b.Const(1)

	b.While("dfs",
		func() ir.Value {
			top := b.LoadElem(w.meta, zero)
			return b.Cmp(ir.PredGT, top, zero)
		},
		func() {
			top := b.LoadElem(w.meta, zero)
			top1 := b.Sub(top, one)
			u := b.LoadElem(w.stack, top1)
			b.StoreElem(w.meta, zero, top1)
			cnt := b.LoadElem(w.meta, one)
			b.StoreElem(w.ord, u, cnt)
			b.StoreElem(w.meta, one, b.Add(cnt, one))

			rs := b.LoadElem(w.ga.rowptr, u)
			re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
			b.Loop("e", rs, re, 1, func(e ir.Value) {
				v := b.LoadElem(w.ga.col, e)
				vis := b.Named(b.LoadElem(w.visited, v), "visited[col[e]]") // delinquent load
				b.If(b.Cmp(ir.PredEQ, vis, zero), func() {
					b.StoreElem(w.visited, v, one)
					t := b.LoadElem(w.meta, zero)
					b.StoreElem(w.stack, t, v)
					b.StoreElem(w.meta, zero, b.Add(t, one))
				}, nil)
			})
		})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *DFS) InitMem(a *mem.Arena) {
	w.ga.initGraph(a, w.G)
	for i := int64(0); i < w.G.N; i++ {
		a.Write(w.ord.Addr(i), -1, 8)
	}
	a.Write(w.visited.Addr(w.Source), 1, 8)
	a.Write(w.stack.Addr(0), w.Source, 8)
	a.Write(w.meta.Addr(0), 1, 8)
	a.Write(w.meta.Addr(1), 0, 8)
}

// Verify implements core.Workload.
func (w *DFS) Verify(a *mem.Arena) error {
	if err := expect(a, w.visited, w.wantVisited, w.Label+": visited"); err != nil {
		return fmt.Errorf("dfs: %w", err)
	}
	if err := expect(a, w.ord, w.wantOrder, w.Label+": order"); err != nil {
		return fmt.Errorf("dfs: %w", err)
	}
	return nil
}
