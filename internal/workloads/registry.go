package workloads

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/graphgen"
)

// Entry describes one benchmark of the paper's Table 3.
type Entry struct {
	Key         string // figure x-axis key
	Description string // Table 3 description
	Dataset     string // dataset label (graph workloads)
	New         func() core.Workload
}

// Registry returns the paper's application list (Table 3): the five
// CRONO graph kernels, NAS IS and CG, HPCC RandomAccess, the two hash
// join variants, and Graph500. Dataset sizes follow graphgen's scaled
// Table 4 stand-ins; the heavier kernels (SSSP, BC) run on smaller
// instances of the same graph classes to keep full experiment sweeps
// fast (DESIGN.md §2).
func Registry() []Entry {
	return []Entry{
		{
			Key: "BFS", Description: "breadth-first search (CRONO)", Dataset: "WG",
			New: func() core.Workload {
				g := mustDataset("WG")
				return NewBFS("BFS", g, TopDegreeVertices(g, 1)[0])
			},
		},
		{
			Key: "DFS", Description: "depth-first traversal (CRONO)", Dataset: "P2P",
			New: func() core.Workload {
				g := mustDataset("P2P")
				return NewDFS("DFS", g, TopDegreeVertices(g, 1)[0])
			},
		},
		{
			Key: "PR", Description: "PageRank (CRONO)", Dataset: "WN",
			New: func() core.Workload {
				return NewPageRank("PR", mustDataset("WN"), 2)
			},
		},
		{
			Key: "BC", Description: "betweenness centrality (CRONO)", Dataset: "LBE",
			New: func() core.Workload {
				g := mustDataset("LBE")
				return NewBC("BC", g, TopDegreeVertices(g, 1))
			},
		},
		{
			Key: "SSSP", Description: "single-source shortest paths (CRONO)", Dataset: "P2P-s",
			New: func() core.Workload {
				g := graphgen.Uniform("P2P-s", 32_000, 2, 1102)
				return NewSSSP("SSSP", g, TopDegreeVertices(g, 1)[0])
			},
		},
		{
			Key: "IS", Description: "integer (bucket) sort (NAS)", Dataset: "",
			New: func() core.Workload {
				return NewIS(200_000, 1<<17, 2)
			},
		},
		{
			Key: "CG", Description: "conjugate gradient / SpMV (NAS)", Dataset: "",
			New: func() core.Workload {
				return NewCG(48_000, 8, 2)
			},
		},
		{
			Key: "randAcc", Description: "RandomAccess / GUPS (HPCC)", Dataset: "",
			New: func() core.Workload {
				return NewRandAcc(20, 300_000)
			},
		},
		{
			Key: "HJ2", Description: "NPO hash join, 2 elems/bucket", Dataset: "",
			New: func() core.Workload {
				return NewHashJoin("HJ2", 1<<18, 2, 200_000, 300_000)
			},
		},
		{
			Key: "HJ8", Description: "NPO hash join, 8 elems/bucket", Dataset: "",
			New: func() core.Workload {
				return NewHashJoin("HJ8", 1<<16, 8, 200_000, 150_000)
			},
		},
		{
			Key: "G500", Description: "Graph500 BFS (Kronecker)", Dataset: "KRON",
			New: func() core.Workload {
				g := mustDataset("KRON")
				return NewBFS("G500", g, TopDegreeVertices(g, 1)[0])
			},
		},
	}
}

// ByKey returns the registry entry with the given key, searching the
// Table 3 corpus, the phase-changing corpus (PhasedRegistry), and the
// selection-adversarial corpus (AdversarialRegistry).
func ByKey(key string) (Entry, bool) {
	for _, e := range Registry() {
		if e.Key == key {
			return e, true
		}
	}
	for _, e := range PhasedRegistry() {
		if e.Key == key {
			return e, true
		}
	}
	for _, e := range AdversarialRegistry() {
		if e.Key == key {
			return e, true
		}
	}
	return Entry{}, false
}

// TopDegreeVertices returns the k vertices with the highest out-degree —
// well-connected BFS/BC sources on power-law graphs.
func TopDegreeVertices(g *graphgen.Graph, k int) []int64 {
	out := make([]int64, 0, k)
	used := make(map[int64]bool, k)
	for len(out) < k {
		best, bestDeg := int64(-1), int64(-1)
		for u := int64(0); u < g.N; u++ {
			if !used[u] && g.Degree(u) > bestDeg {
				best, bestDeg = u, g.Degree(u)
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

func mustDataset(name string) *graphgen.Graph {
	d, ok := graphgen.ByName(name)
	if !ok {
		panic(fmt.Sprintf("workloads: unknown dataset %s", name))
	}
	return d.Make()
}
