package workloads

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// This file is the adversarial scenario corpus for delinquent-load
// selection: kernels built so that miss *frequency* and miss *cost*
// disagree. A 1-D MPKI gate picks the wrong loads on them; the 2-D
// score (miss rate × exposed latency) picks the right ones.
//
//   - LSMScan: an LSM/columnar scan with hot-but-cheap misses (the scan
//     stream, covered by an in-kernel next-line software prefetch, so
//     each miss exposes only a residual few cycles) and cold-but-
//     expensive misses (rare filter probes that each eat a full DRAM
//     round trip) in one loop nest.
//   - BTreeProbe: a dependent pointer chase through out-of-cache nodes —
//     frequent AND expensive, kept by both gates (a control).
//   - Interleave: a multi-tenant combinator that round-robins the
//     kernels of several workloads in one program, so their miss
//     streams share the caches and the selection gate must separate
//     them inside a single profile.

// Kernel is a workload whose loop nests can be embedded into a shared
// program. AllocIn reserves the kernel's arrays in a shared builder;
// EmitRound emits one round-robin chunk of its work. Rounds partition
// the kernel's iteration space, so emitting rounds 0..R-1 (in order,
// possibly interleaved with other tenants) performs exactly the
// standalone kernel's work. A standalone Build is AllocIn + one round.
type Kernel interface {
	core.Workload
	AllocIn(b *ir.Builder)
	EmitRound(b *ir.Builder, round, rounds int64)
}

// chunk splits [0, n) into `rounds` contiguous pieces and returns the
// half-open bounds of piece `round`.
func chunk(n, round, rounds int64) (lo, hi int64) {
	return n * round / rounds, n * (round + 1) / rounds
}

// lsmHashC disperses probe cursors across the filter (Knuth's
// multiplicative constant; arithmetic wraps identically in the IR
// interpreter and the native int64 mirror).
const lsmHashC = 2654435761

// LSMScan models an LSM-tree / columnar segment scan. The scan stream
// reads 8-element (one cache line) blocks of the keys array and does
// per-value work; the kernel software-prefetches the next line late
// enough that the line is still in flight when the scan reaches it —
// every block boundary is an LLC miss, but one exposing only the
// residual fill wait (tens of cycles). Every ProbeEvery-th block the
// scan consults a bloom-filter-like table at a pseudo-random cursor:
// rare, but each probe is a blocking DRAM miss. The scan's in-line
// access order is permuted (j XOR 5) so the hardware stride prefetcher
// never locks onto the stream and the software prefetch stays the
// fill's initiator — as in real scan kernels, whose manual prefetches
// are precisely what the streamer cannot cover.
type LSMScan struct {
	Label      string
	Blocks     int64 // cache-line blocks scanned (8 int64 each)
	ProbeEvery int64 // filter probe every Nth block (power of two)
	FilterLg   int64 // filter table has 2^FilterLg elements
	InnerWork  int   // ALU chain per scanned element
	PostWork   int   // ALU chain between the prefetch and the next block
	Seed       int64

	keys, filter, out, meta ir.Array
}

// NewLSMScan sizes the scan: the filter (2^19 × 8 B = 4 MiB) dwarfs the
// LLC so probes always miss; PostWork is tuned so the scan's residual
// exposure stays a small, positive slice of the DRAM latency.
func NewLSMScan(blocks int64) *LSMScan {
	return &LSMScan{
		Label:      "LSM",
		Blocks:     blocks,
		ProbeEvery: 8,
		FilterLg:   19,
		InnerWork:  6,
		PostWork:   92,
		Seed:       0x2545F4914F6CDD1D,
	}
}

func (w *LSMScan) filterSize() int64 { return int64(1) << w.FilterLg }
func (w *LSMScan) filterMask() int64 { return w.filterSize() - 1 }

// keyVal and filterVal are the deterministic array contents, shared by
// InitMem and the native mirror.
func (w *LSMScan) keyVal(i int64) int64    { return (i*7 + 3) % 1013 }
func (w *LSMScan) filterVal(i int64) int64 { return (i*13 + 5) % 2027 }

// Name implements core.Workload.
func (w *LSMScan) Name() string { return w.Label }

// Build implements core.Workload.
func (w *LSMScan) Build() (*ir.Program, error) {
	b := ir.NewBuilder(w.Label)
	w.AllocIn(b)
	w.EmitRound(b, 0, 1)
	return b.Finish(), nil
}

// AllocIn implements Kernel.
func (w *LSMScan) AllocIn(b *ir.Builder) {
	w.keys = b.Alloc("keys", w.Blocks*8, 8)
	w.filter = b.Alloc("filter", w.filterSize(), 8)
	w.out = b.Alloc("out", 3, 8)  // [0]=scan acc, [1]=probe acc, [2]=delay acc
	w.meta = b.Alloc("meta", 1, 8) // [0]=probe cursor state
}

// EmitRound implements Kernel.
func (w *LSMScan) EmitRound(b *ir.Builder, round, rounds int64) {
	lo, hi := chunk(w.Blocks, round, rounds)
	zero := b.Const(0)
	one := b.Const(1)
	two := b.Const(2)
	mask := b.Const(w.filterMask())
	b.Loop("blk", b.Const(lo), b.Const(hi), 1, func(k ir.Value) {
		base := b.Mul(k, b.Const(8))
		// Scan the block in a permuted order (5,4,7,6,1,0,3,2): same
		// elements, but no two consecutive accesses share a stride, so
		// the IP-stride prefetcher never reaches confidence.
		b.Loop("j", zero, b.Const(8), 1, func(j ir.Value) {
			idx := b.Add(base, b.Xor(j, b.Const(5)))
			v := b.Named(b.LoadElem(w.keys, idx), "scan")
			acc := work(b, v, w.InnerWork)
			old := b.LoadElem(w.out, zero)
			b.StoreElem(w.out, zero, b.Add(old, acc))
		})
		// Rare filter probe: xorshift cursor (random walk defeats the
		// stride prefetcher), blocking DRAM miss.
		probeHit := b.Cmp(ir.PredEQ, b.And(k, b.Const(w.ProbeEvery-1)), zero)
		b.If(probeHit, func() {
			s := b.LoadElem(w.meta, zero)
			x := b.Xor(s, b.Shl(s, b.Const(13)))
			x = b.Xor(x, b.Shr(x, b.Const(17)))
			x = b.Xor(x, b.Shl(x, b.Const(5)))
			s = b.And(x, mask)
			b.StoreElem(w.meta, zero, s)
			f := b.Named(b.LoadElem(w.filter, s), "probe")
			old := b.LoadElem(w.out, one)
			b.StoreElem(w.out, one, b.Add(old, f))
		}, nil)
		// Cover the next block's line, then delay just long enough that
		// the fill is *almost* — but not quite — complete when the next
		// block's first load arrives.
		b.PrefetchElem(w.keys, b.Add(base, b.Const(8)))
		d := work(b, k, w.PostWork)
		old := b.LoadElem(w.out, two)
		b.StoreElem(w.out, two, b.Add(old, d))
	})
}

// InitMem implements core.Workload.
func (w *LSMScan) InitMem(a *mem.Arena) {
	for i := int64(0); i < w.Blocks*8; i++ {
		a.Write(w.keys.Addr(i), w.keyVal(i), 8)
	}
	for i := int64(0); i < w.filterSize(); i++ {
		a.Write(w.filter.Addr(i), w.filterVal(i), 8)
	}
	a.Write(w.meta.Addr(0), w.Seed&w.filterMask(), 8)
}

// Verify implements core.Workload.
func (w *LSMScan) Verify(a *mem.Arena) error {
	var scanAcc, probeAcc, delayAcc int64
	s := w.Seed & w.filterMask()
	for k := int64(0); k < w.Blocks; k++ {
		for j := int64(0); j < 8; j++ {
			scanAcc += workNative(w.keyVal(k*8+(j^5)), w.InnerWork)
		}
		if k&(w.ProbeEvery-1) == 0 {
			s = stepNative(s, w.filterMask())
			probeAcc += w.filterVal(s)
		}
		delayAcc += workNative(k, w.PostWork)
	}
	if err := expectScalar(a, w.out, 0, scanAcc, w.Label+": scan acc"); err != nil {
		return err
	}
	if err := expectScalar(a, w.out, 1, probeAcc, w.Label+": probe acc"); err != nil {
		return err
	}
	return expectScalar(a, w.out, 2, delayAcc, w.Label+": delay acc")
}

// btreeNodeC mixes node contents so the chase wanders the whole table
// (wrapping int64 multiply, identical in IR and native).
const btreeNodeC = -0x61c8864680b583eb // 0x9E3779B97F4A7C15 as int64

// BTreeProbe is a B-tree-style point-lookup storm: each query walks
// Depth dependent node reads through a nodes table far larger than the
// LLC. Every hop is a blocking DRAM miss whose address depends on the
// previous hop's value — frequent AND expensive, so both the 1-D and
// 2-D gates keep it (the corpus's control case).
type BTreeProbe struct {
	Label   string
	NodesLg int64 // nodes table has 2^NodesLg elements
	Queries int64
	Depth   int64

	nodes, out ir.Array
}

// NewBTreeProbe sizes the tree: 2^19 × 8 B = 4 MiB of nodes, depth-8
// walks (a ~256-way B-tree over ~10^19 keys would be this deep).
func NewBTreeProbe(queries int64) *BTreeProbe {
	return &BTreeProbe{Label: "BTree", NodesLg: 19, Queries: queries, Depth: 8}
}

func (w *BTreeProbe) mask() int64 { return (int64(1) << w.NodesLg) - 1 }

func (w *BTreeProbe) nodeVal(i int64) int64 { return i * btreeNodeC }

// Name implements core.Workload.
func (w *BTreeProbe) Name() string { return w.Label }

// Build implements core.Workload.
func (w *BTreeProbe) Build() (*ir.Program, error) {
	b := ir.NewBuilder(w.Label)
	w.AllocIn(b)
	w.EmitRound(b, 0, 1)
	return b.Finish(), nil
}

// AllocIn implements Kernel.
func (w *BTreeProbe) AllocIn(b *ir.Builder) {
	w.nodes = b.Alloc("nodes", int64(1)<<w.NodesLg, 8)
	w.out = b.Alloc("btout", 2, 8) // [0]=sum, [1]=walk cursor
}

// EmitRound implements Kernel.
func (w *BTreeProbe) EmitRound(b *ir.Builder, round, rounds int64) {
	lo, hi := chunk(w.Queries, round, rounds)
	zero := b.Const(0)
	one := b.Const(1)
	mask := b.Const(w.mask())
	b.Loop("q", b.Const(lo), b.Const(hi), 1, func(q ir.Value) {
		salt := b.Mul(q, b.Const(lsmHashC))
		b.Loop("d", zero, b.Const(w.Depth), 1, func(d ir.Value) {
			v := b.LoadElem(w.out, one)
			idx := b.And(b.Xor(v, b.Add(salt, d)), mask)
			n := b.Named(b.LoadElem(w.nodes, idx), "walk")
			b.StoreElem(w.out, one, n)
		})
		sum := b.LoadElem(w.out, zero)
		v := b.LoadElem(w.out, one)
		b.StoreElem(w.out, zero, b.Add(sum, v))
	})
}

// InitMem implements core.Workload.
func (w *BTreeProbe) InitMem(a *mem.Arena) {
	n := int64(1) << w.NodesLg
	for i := int64(0); i < n; i++ {
		a.Write(w.nodes.Addr(i), w.nodeVal(i), 8)
	}
}

// Verify implements core.Workload.
func (w *BTreeProbe) Verify(a *mem.Arena) error {
	var sum, v int64
	for q := int64(0); q < w.Queries; q++ {
		salt := q * lsmHashC
		for d := int64(0); d < w.Depth; d++ {
			v = w.nodeVal((v ^ (salt + d)) & w.mask())
		}
		sum += v
	}
	return expectScalar(a, w.out, 0, sum, w.Label+": sum")
}

// Interleave round-robins the kernels of several tenant workloads in
// one program: round r emits each tenant's r-th chunk in turn. The
// tenants' working sets evict each other between rounds, and the
// combined profile carries every tenant's delinquent loads — the
// selection gate has to separate cheap from expensive across tenant
// boundaries, not just within one kernel.
type Interleave struct {
	Label   string
	Rounds  int64
	Tenants []Kernel
}

// NewInterleave builds the combinator; rounds must be ≥ 1.
func NewInterleave(label string, rounds int64, tenants ...Kernel) *Interleave {
	if rounds < 1 {
		rounds = 1
	}
	return &Interleave{Label: label, Rounds: rounds, Tenants: tenants}
}

// Name implements core.Workload.
func (v *Interleave) Name() string { return v.Label }

// Build implements core.Workload.
func (v *Interleave) Build() (*ir.Program, error) {
	if len(v.Tenants) == 0 {
		return nil, fmt.Errorf("interleave %s: no tenants", v.Label)
	}
	b := ir.NewBuilder(v.Label)
	for _, t := range v.Tenants {
		t.AllocIn(b)
	}
	for r := int64(0); r < v.Rounds; r++ {
		for _, t := range v.Tenants {
			t.EmitRound(b, r, v.Rounds)
		}
	}
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (v *Interleave) InitMem(a *mem.Arena) {
	for _, t := range v.Tenants {
		t.InitMem(a)
	}
}

// Verify implements core.Workload.
func (v *Interleave) Verify(a *mem.Arena) error {
	for _, t := range v.Tenants {
		if err := t.Verify(a); err != nil {
			return fmt.Errorf("interleave %s: tenant %s: %w", v.Label, t.Name(), err)
		}
	}
	return nil
}

// AdversarialRegistry returns the selection-adversarial corpus. It is
// deliberately not part of Registry(): the Table 3 corpus drives the
// paper's headline experiments and its plan set is pinned by golden
// tests, while these kernels exist to stress the selection gate (the
// aptbench -exp selection sweep and the selection-smoke CI job).
func AdversarialRegistry() []Entry {
	return []Entry{
		{
			Key: "LSM", Description: "LSM/columnar scan: hot covered scan + cold filter probes",
			New: func() core.Workload { return NewLSMScan(4096) },
		},
		{
			Key: "BTree", Description: "B-tree point lookups: dependent out-of-cache node walks",
			New: func() core.Workload { return NewBTreeProbe(480) },
		},
		{
			Key: "MTI", Description: "multi-tenant interleave: micro + LSM + BTree round-robin",
			New: func() core.Workload {
				micro := &Micro{Outer: 512, Inner: 8, TableSize: 1 << 18,
					Work: ComplexityMedium, Seed: 7}
				lsm := NewLSMScan(2048)
				lsm.ProbeEvery = 2 // keep the probe above the share gate
				return NewInterleave("MTI", 4, micro, lsm, NewBTreeProbe(480))
			},
		},
	}
}
