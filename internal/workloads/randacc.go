package workloads

import (
	"fmt"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// RandAcc is the HPC Challenge RandomAccess (GUPS) kernel: read-modify-
// write updates of a large table at pseudo-random indices produced by a
// xorshift recurrence. The address recurrence is a loop-carried phi with
// a non-affine update — the §3.5 non-canonical induction case, which the
// prefetch pass handles by replicating the update chain (and which costs
// the instruction overhead the paper reports for randAcc in Figure 11).
type RandAcc struct {
	Label   string
	TableLg int64 // table size = 2^TableLg
	Updates int64
	Seed    int64

	wantChecksum int64

	table, meta ir.Array // meta[0]=iteration counter
}

// NewRandAcc builds the workload; the table (2^lg × 8 bytes) must exceed
// the LLC.
func NewRandAcc(tableLg, updates int64) *RandAcc {
	w := &RandAcc{Label: "randAcc", TableLg: tableLg, Updates: updates, Seed: 0x2545F4914F6CDD1D}
	w.wantChecksum = w.native()
	return w
}

// step is the xorshift64 recurrence, masked to the table size, shared
// verbatim between the IR builder and the native mirror.
func stepNative(s, mask int64) int64 {
	// Go's >> on int64 is arithmetic, exactly like the IR's OpShr; the
	// masked state stays non-negative, so the shifts agree bit-for-bit.
	x := s ^ (s << 13)
	x ^= x >> 17
	x ^= x << 5
	return x & mask
}

func (w *RandAcc) mask() int64 { return (int64(1) << w.TableLg) - 1 }

func (w *RandAcc) native() int64 {
	mask := w.mask()
	n := int64(1) << w.TableLg
	table := make([]int64, n)
	for i := range table {
		table[i] = int64(i)
	}
	s := w.Seed & mask
	for i := int64(0); i < w.Updates; i++ {
		table[s] ^= s
		s = stepNative(s, mask)
	}
	var sum int64
	for _, v := range table {
		sum += v
	}
	return sum
}

// Name implements core.Workload.
func (w *RandAcc) Name() string { return w.Label }

// Build implements core.Workload.
func (w *RandAcc) Build() (*ir.Program, error) {
	n := int64(1) << w.TableLg
	b := ir.NewBuilder(w.Label)
	w.table = b.Alloc("T", n, 8)
	w.meta = b.Alloc("meta", 2, 8) // [0]=counter, [1]=checksum

	zero := b.Const(0)
	one := b.Const(1)
	mask := b.Const(w.mask())

	update := func(s ir.Value) ir.Value {
		x := b.Xor(s, b.Shl(s, b.Const(13)))
		x = b.Xor(x, b.Shr(x, b.Const(17)))
		x = b.Xor(x, b.Shl(x, b.Const(5)))
		return b.And(x, mask)
	}

	b.LoopCustom("s", b.Const(w.Seed&w.mask()),
		update,
		func(next ir.Value) ir.Value {
			c := b.LoadElem(w.meta, zero)
			c1 := b.Add(c, one)
			b.StoreElem(w.meta, zero, c1)
			return b.Cmp(ir.PredLT, c1, b.Const(w.Updates))
		},
		nil,
		func(s ir.Value) {
			v := b.Named(b.LoadElem(w.table, s), "T[ran]") // delinquent load
			b.StoreElem(w.table, s, b.Xor(v, s))
		})

	// Checksum pass (sequential, hardware-prefetched).
	b.Loop("ck", zero, b.Const(n), 1, func(i ir.Value) {
		v := b.LoadElem(w.table, i)
		acc := b.LoadElem(w.meta, one)
		b.StoreElem(w.meta, one, b.Add(acc, v))
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *RandAcc) InitMem(a *mem.Arena) {
	n := int64(1) << w.TableLg
	for i := int64(0); i < n; i++ {
		a.Write(w.table.Addr(i), i, 8)
	}
}

// Verify implements core.Workload.
func (w *RandAcc) Verify(a *mem.Arena) error {
	if err := expectScalar(a, w.meta, 1, w.wantChecksum, "randAcc: checksum"); err != nil {
		return fmt.Errorf("randacc: %w", err)
	}
	return nil
}
