package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// PageRank parameters: fixed-point scale and damping (85/100 ≈ 870/1024).
const (
	prScale     = 4096 // Q: rank fixed-point unit
	prDampNum   = 870
	prDampShift = 10
)

// PageRank is the CRONO-style power-iteration PageRank in Q-fixed-point
// integer arithmetic (the IR is integer-only; the native reference
// mirrors the exact same arithmetic, so verification is bit-exact). The
// delinquent load is contrib[col[e]] in the rank-accumulation loop.
type PageRank struct {
	Label string
	G     *graphgen.Graph
	Iters int64

	wantRank []int64

	ga           graphArrays
	rank0, rank1 ir.Array
	contrib      ir.Array
}

// NewPageRank builds the workload and the native reference ranks.
func NewPageRank(label string, g *graphgen.Graph, iters int64) *PageRank {
	w := &PageRank{Label: label, G: g, Iters: iters}
	w.wantRank = nativePageRank(g, iters)
	return w
}

func nativePageRank(g *graphgen.Graph, iters int64) []int64 {
	cur := make([]int64, g.N)
	next := make([]int64, g.N)
	contrib := make([]int64, g.N)
	for i := range cur {
		cur[i] = prScale
	}
	base := int64(prScale) * (1024 - prDampNum) >> prDampShift
	for it := int64(0); it < iters; it++ {
		for u := int64(0); u < g.N; u++ {
			d := g.RowPtr[u+1] - g.RowPtr[u]
			if d <= 0 {
				d = 1
			}
			contrib[u] = cur[u] / d
		}
		for u := int64(0); u < g.N; u++ {
			var sum int64
			for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
				sum += contrib[g.Col[e]]
			}
			next[u] = base + (sum*prDampNum)>>prDampShift
		}
		cur, next = next, cur
	}
	return cur
}

// Name implements core.Workload.
func (w *PageRank) Name() string { return w.Label }

// Build implements core.Workload.
func (w *PageRank) Build() (*ir.Program, error) {
	g := w.G
	b := ir.NewBuilder(w.Label)
	w.ga = allocGraph(b, g, false)
	w.rank0 = b.Alloc("rank0", g.N, 8)
	w.rank1 = b.Alloc("rank1", g.N, 8)
	w.contrib = b.Alloc("contrib", g.N, 8)

	zero := b.Const(0)
	one := b.Const(1)
	n := b.Const(g.N)
	base := b.Const(int64(prScale) * (1024 - prDampNum) >> prDampShift)
	damp := b.Const(prDampNum)
	shift := b.Const(prDampShift)

	iteration := func(src, dst ir.Array) {
		// contrib[u] = src[u] / max(deg(u), 1)
		b.Loop("cu", zero, n, 1, func(u ir.Value) {
			r := b.LoadElem(src, u)
			rs := b.LoadElem(w.ga.rowptr, u)
			re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
			d := b.Sub(re, rs)
			dd := b.Select(b.Cmp(ir.PredGT, d, zero), d, one)
			b.StoreElem(w.contrib, u, b.Div(r, dd))
		})
		// dst[u] = base + damp * Σ contrib[col[e]]
		b.Loop("ru", zero, n, 1, func(u ir.Value) {
			b.StoreElem(dst, u, zero)
			rs := b.LoadElem(w.ga.rowptr, u)
			re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
			b.Loop("e", rs, re, 1, func(e ir.Value) {
				v := b.LoadElem(w.ga.col, e)
				c := b.Named(b.LoadElem(w.contrib, v), "contrib[col[e]]") // delinquent load
				acc := b.LoadElem(dst, u)
				b.StoreElem(dst, u, b.Add(acc, c))
			})
			sum := b.LoadElem(dst, u)
			b.StoreElem(dst, u, b.Add(base, b.Shr(b.Mul(sum, damp), shift)))
		})
	}

	b.Loop("it", zero, b.Const(w.Iters), 1, func(it ir.Value) {
		par := b.And(it, one)
		b.If(b.Cmp(ir.PredEQ, par, zero),
			func() { iteration(w.rank0, w.rank1) },
			func() { iteration(w.rank1, w.rank0) })
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *PageRank) InitMem(a *mem.Arena) {
	w.ga.initGraph(a, w.G)
	for i := int64(0); i < w.G.N; i++ {
		a.Write(w.rank0.Addr(i), prScale, 8)
	}
}

// Verify implements core.Workload.
func (w *PageRank) Verify(a *mem.Arena) error {
	final := w.rank0
	if w.Iters%2 == 1 {
		final = w.rank1
	}
	if err := expect(a, final, w.wantRank, w.Label+": rank"); err != nil {
		return fmt.Errorf("pagerank: %w", err)
	}
	return nil
}
