package workloads

import (
	"math/rand"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// Complexity selects the §2.1 microbenchmark's work function.
type Complexity int

// Work-function complexities (Figure 1's low/medium/high).
const (
	ComplexityLow    Complexity = 0
	ComplexityMedium Complexity = 12
	ComplexityHigh   Complexity = 56
)

func (c Complexity) String() string {
	switch c {
	case ComplexityLow:
		return "low"
	case ComplexityMedium:
		return "medium"
	case ComplexityHigh:
		return "high"
	}
	return "custom"
}

// Micro is the paper's Listing 1 microbenchmark: a two-nested loop with
// an indirect access T[B[i]] followed by a work function of configurable
// complexity. INNER is the inner trip count, Complexity the chain length
// of the dependent ALU work.
type Micro struct {
	Outer, Inner int64
	TableSize    int64
	Work         Complexity
	Seed         int64

	bArr, tArr, out ir.Array
}

// NewMicro returns the microbenchmark with the given inner trip count and
// work complexity, sized so T far exceeds the LLC.
func NewMicro(inner int64, work Complexity) *Micro {
	total := int64(32768) // total inner iterations across the run
	outer := total / inner
	if outer < 1 {
		outer = 1
	}
	return &Micro{
		Outer: outer, Inner: inner,
		TableSize: 1 << 18, // 2 MiB of int64 ≫ 512 KiB LLC
		Work:      work,
		Seed:      7,
	}
}

// Name implements core.Workload.
func (m *Micro) Name() string {
	return "micro"
}

// Build implements core.Workload. A standalone build is exactly one
// round of the embeddable kernel, so the IR (and hence every PC) is
// identical to the pre-Kernel single-nest emission.
func (m *Micro) Build() (*ir.Program, error) {
	b := ir.NewBuilder(m.Name())
	m.AllocIn(b)
	m.EmitRound(b, 0, 1)
	return b.Finish(), nil
}

// AllocIn implements Kernel: reserve the arrays in a shared builder.
func (m *Micro) AllocIn(b *ir.Builder) {
	m.bArr = b.Alloc("B", m.Outer*m.Inner, 8)
	m.tArr = b.Alloc("T", m.TableSize, 8)
	m.out = b.Alloc("out", 1, 8)
}

// EmitRound implements Kernel: emit the outer iterations of one
// round-robin chunk. Rounds partition [0, Outer), so concatenating all
// rounds reproduces the standalone kernel's work exactly.
func (m *Micro) EmitRound(b *ir.Builder, round, rounds int64) {
	lo, hi := chunk(m.Outer, round, rounds)
	zero := b.Const(0)
	b.Loop("i", b.Const(lo), b.Const(hi), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(m.Inner))
		b.Loop("j", zero, b.Const(m.Inner), 1, func(j ir.Value) {
			idx := b.LoadElem(m.bArr, b.Add(base, j))
			v := b.Named(b.LoadElem(m.tArr, idx), "T[B[i]]")
			acc := work(b, v, int(m.Work))
			old := b.LoadElem(m.out, zero)
			b.StoreElem(m.out, zero, b.Add(old, acc))
		})
	})
}

// work emits the dependent ALU chain of the work function; the native
// mirror is workNative.
func work(b *ir.Builder, v ir.Value, n int) ir.Value {
	acc := v
	for k := 0; k < n; k++ {
		acc = b.Xor(b.Add(acc, b.Const(int64(k)+1)), v)
	}
	return acc
}

func workNative(v int64, n int) int64 {
	acc := v
	for k := 0; k < n; k++ {
		acc = (acc + int64(k) + 1) ^ v
	}
	return acc
}

func (m *Micro) data() []int64 {
	rng := rand.New(rand.NewSource(m.Seed))
	bs := make([]int64, m.Outer*m.Inner)
	for i := range bs {
		bs[i] = rng.Int63n(m.TableSize)
	}
	return bs
}

func (m *Micro) tableValue(i int64) int64 { return i * 7 % 1009 }

// InitMem implements core.Workload.
func (m *Micro) InitMem(a *mem.Arena) {
	for i, v := range m.data() {
		a.Write(m.bArr.Addr(int64(i)), v, 8)
	}
	for i := int64(0); i < m.TableSize; i++ {
		a.Write(m.tArr.Addr(i), m.tableValue(i), 8)
	}
}

// Verify implements core.Workload.
func (m *Micro) Verify(a *mem.Arena) error {
	var want int64
	for _, idx := range m.data() {
		want += workNative(m.tableValue(idx), int(m.Work))
	}
	return expectScalar(a, m.out, 0, want, "micro: out")
}
