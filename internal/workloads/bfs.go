package workloads

import (
	"fmt"

	"aptget/internal/graphgen"
	"aptget/internal/ir"
	"aptget/internal/mem"
)

// BFS is the CRONO-style level-synchronous breadth-first search: two
// frontier arrays swapped by level parity, with the classic delinquent
// load dist[col[e]] inside a low-trip-count edge loop — the paper's
// flagship outer-injection case (§2.4, Figure 10). Graph500's kernel is
// the same program on a Kronecker graph (see registry.go).
type BFS struct {
	Label  string
	G      *graphgen.Graph
	Source int64

	maxLevels int64
	wantDist  []int64

	ga             graphArrays
	dist, fr0, fr1 ir.Array
	meta           ir.Array // [0] size of fr0, [1] size of fr1
}

// NewBFS builds the workload; the level budget and reference distances
// come from a native BFS run.
func NewBFS(label string, g *graphgen.Graph, source int64) *BFS {
	w := &BFS{Label: label, G: g, Source: source}
	w.wantDist, w.maxLevels = nativeBFS(g, source)
	return w
}

// nativeBFS computes reference distances and the number of levels.
func nativeBFS(g *graphgen.Graph, src int64) ([]int64, int64) {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int64{src}
	levels := int64(0)
	for lvl := int64(0); len(frontier) > 0; lvl++ {
		levels = lvl + 1
		var next []int64
		for _, u := range frontier {
			for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
				v := g.Col[e]
				if dist[v] < 0 {
					dist[v] = lvl + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, levels
}

// Name implements core.Workload.
func (w *BFS) Name() string { return w.Label }

// Build implements core.Workload.
func (w *BFS) Build() (*ir.Program, error) {
	g := w.G
	b := ir.NewBuilder(w.Label)
	w.ga = allocGraph(b, g, false)
	w.dist = b.Alloc("dist", g.N, 8)
	w.fr0 = b.Alloc("fr0", g.N, 8)
	w.fr1 = b.Alloc("fr1", g.N, 8)
	w.meta = b.Alloc("meta", 2, 8)

	zero := b.Const(0)
	one := b.Const(1)

	sweep := func(lvl ir.Value, cur ir.Array, curIdx int64, next ir.Array, nextIdx int64) {
		csize := b.LoadElem(w.meta, b.Const(curIdx))
		b.StoreElem(w.meta, b.Const(nextIdx), zero)
		b.Loop("fi", zero, csize, 1, func(fi ir.Value) {
			u := b.LoadElem(cur, fi)
			rs := b.LoadElem(w.ga.rowptr, u)
			re := b.LoadElem(w.ga.rowptr, b.Add(u, one))
			b.Loop("e", rs, re, 1, func(e ir.Value) {
				v := b.LoadElem(w.ga.col, e)
				d := b.Named(b.LoadElem(w.dist, v), "dist[col[e]]") // delinquent load
				b.If(b.Cmp(ir.PredLT, d, zero), func() {
					b.StoreElem(w.dist, v, b.Add(lvl, one))
					ns := b.LoadElem(w.meta, b.Const(nextIdx))
					b.StoreElem(next, ns, v)
					b.StoreElem(w.meta, b.Const(nextIdx), b.Add(ns, one))
				}, nil)
			})
		})
	}

	b.Loop("lvl", zero, b.Const(w.maxLevels), 1, func(lvl ir.Value) {
		par := b.And(lvl, one)
		b.If(b.Cmp(ir.PredEQ, par, zero),
			func() { sweep(lvl, w.fr0, 0, w.fr1, 1) },
			func() { sweep(lvl, w.fr1, 1, w.fr0, 0) })
	})
	return b.Finish(), nil
}

// InitMem implements core.Workload.
func (w *BFS) InitMem(a *mem.Arena) {
	w.ga.initGraph(a, w.G)
	for i := int64(0); i < w.G.N; i++ {
		a.Write(w.dist.Addr(i), -1, 8)
	}
	a.Write(w.dist.Addr(w.Source), 0, 8)
	a.Write(w.fr0.Addr(0), w.Source, 8)
	a.Write(w.meta.Addr(0), 1, 8)
	a.Write(w.meta.Addr(1), 0, 8)
}

// Verify implements core.Workload.
func (w *BFS) Verify(a *mem.Arena) error {
	if err := expect(a, w.dist, w.wantDist, w.Label+": dist"); err != nil {
		return fmt.Errorf("bfs: %w", err)
	}
	return nil
}
