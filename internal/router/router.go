// Package router is the fleet front door: an HTTP proxy that routes
// plan-service requests to the shard owning each profile fingerprint on
// a consistent-hash ring.
//
// Routing is content-addressed: an ingest body is fingerprinted as it
// arrives (the same truncated SHA-256 the shards use as a cache key), so
// one profile always lands on one shard and the fleet's cache capacity
// adds instead of duplicating. Plan fetches route by the fingerprint in
// the path, which by construction agrees with where the ingest went.
//
// On a shard failure (transport error or 5xx) the router retries the
// next distinct member in the key's ring order. Combined with the
// shards' own warm handoff, a killed shard degrades to slightly slower
// responses — not errors — as its keyspace neighbors take over.
//
//	POST /v1/profiles   → owner shard (failover along the ring)
//	GET  /v1/plans/{fp} → owner shard (failover along the ring)
//	GET  /v1/metrics    → fan out to all shards; fleet-wide sums + per-shard
//	GET  /v1/healthz    → fleet liveness (200 while ≥1 shard answers)
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aptget/internal/ring"
	"aptget/internal/wire"
)

// Defaults for zero Config fields.
const (
	DefaultTimeout      = 30 * time.Second
	DefaultMaxBodyBytes = 64 << 20
)

// HeaderShard names the shard that served a proxied request, for
// debugging and the fleet smoke test.
const HeaderShard = "X-Apt-Shard"

// Config tunes the router. Zero values select defaults.
type Config struct {
	// Shards lists the fleet members (host:port or http URL). Required.
	Shards []string
	// VNodes is the virtual-node count per shard on the ring
	// (≤0 → ring.DefaultVirtualNodes).
	VNodes int
	// Retries caps how many distinct shards one request tries, owner
	// included (≤0 → all shards).
	Retries int
	// Timeout bounds one upstream attempt.
	Timeout time.Duration
	// MaxBodyBytes caps the ingest payload the router will buffer for
	// fingerprinting and replay across retries.
	MaxBodyBytes int64
}

// Router proxies the plan-service API across a shard fleet.
type Router struct {
	cfg     Config
	ring    *ring.Ring
	bases   map[string]string // shard address → normalized base URL
	client  *http.Client
	handler http.Handler

	proxied, failovers, failed atomic.Int64
}

// MetricsResponse is the router's GET /v1/metrics reply: the shard
// counters summed fleet-wide, the router's own counters, and each
// shard's raw counters (shards that did not answer are null).
type MetricsResponse struct {
	Fleet    map[string]int64            `json:"fleet"`
	Router   map[string]int64            `json:"router"`
	PerShard map[string]map[string]int64 `json:"per_shard"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// New builds a router over cfg.Shards.
func New(cfg Config) (*Router, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	rg, err := ring.New(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	rt := &Router{
		cfg:    cfg,
		ring:   rg,
		bases:  make(map[string]string, len(cfg.Shards)),
		client: &http.Client{Timeout: cfg.Timeout},
	}
	for _, s := range rg.Members() {
		base := s
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		rt.bases[s] = strings.TrimRight(base, "/")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles", rt.handleIngest)
	mux.HandleFunc("GET /v1/plans/{fp}", rt.handlePlans)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	rt.handler = mux
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Ring exposes the routing ring (startup logging, tests).
func (rt *Router) Ring() *ring.Ring { return rt.ring }

// Counters exports the router's own counters.
func (rt *Router) Counters() map[string]int64 {
	return map[string]int64{
		"router_requests_proxied": rt.proxied.Load(),
		"router_failovers":        rt.failovers.Load(),
		"router_requests_failed":  rt.failed.Load(),
	}
}

// Serve accepts connections on ln until ctx is cancelled, then shuts
// down gracefully. Returns nil on a clean shutdown.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           rt.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// forward tries the shards in key's ring order, replaying the request
// until one answers. A shard "answers" with any complete response below
// 500 — 4xx is the shard's verdict on the request, not a shard failure.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, path string, body []byte) {
	rt.proxied.Add(1)
	shards := rt.ring.Successors(key, rt.cfg.Retries)
	var lastErr error
	for i, shard := range shards {
		if i > 0 {
			rt.failovers.Add(1)
		}
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, rt.bases[shard]+path, rdr)
		if err != nil {
			lastErr = err
			continue
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s: %s", shard, resp.Status)
			continue
		}
		h := w.Header()
		for _, k := range []string{"Content-Type", "Retry-After", "X-Apt-Source"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		h.Set(HeaderShard, shard)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	rt.failed.Add(1)
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("all %d shards failed for key %s: %v", len(shards), key, lastErr),
	})
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > rt.cfg.MaxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("declared body length %d exceeds limit %d",
				r.ContentLength, rt.cfg.MaxBodyBytes),
		})
		return
	}
	// The body must be buffered anyway to replay across failover; its
	// fingerprint (the same content address the shards key their caches
	// by) is the routing key, so ingest and the follow-up plan fetch land
	// on the same shard.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	key := string(wire.FingerprintBytes(body))
	rt.forward(w, r, key, "/v1/profiles", body)
}

func (rt *Router) handlePlans(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	rt.forward(w, r, fp, "/v1/plans/"+fp, nil)
}

// fanout GETs path on every shard concurrently, returning each shard's
// decoded JSON body (nil for shards that failed).
func (rt *Router) fanout(ctx context.Context, path string) map[string]json.RawMessage {
	members := rt.ring.Members()
	out := make(map[string]json.RawMessage, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, shard := range members {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.bases[shard]+path, nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return
			}
			mu.Lock()
			out[shard] = data
			mu.Unlock()
		}(shard)
	}
	wg.Wait()
	return out
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	raw := rt.fanout(r.Context(), "/v1/metrics")
	resp := MetricsResponse{
		Fleet:    make(map[string]int64),
		Router:   rt.Counters(),
		PerShard: make(map[string]map[string]int64, len(rt.ring.Members())),
	}
	for _, shard := range rt.ring.Members() {
		data, ok := raw[shard]
		if !ok {
			resp.PerShard[shard] = nil
			continue
		}
		var m struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(data, &m); err != nil {
			resp.PerShard[shard] = nil
			continue
		}
		resp.PerShard[shard] = m.Counters
		for k, v := range m.Counters {
			resp.Fleet[k] += v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	raw := rt.fanout(r.Context(), "/v1/healthz")
	alive := make([]string, 0, len(raw))
	for shard := range raw {
		alive = append(alive, shard)
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case len(alive) == 0:
		status, code = "down", http.StatusServiceUnavailable
	case len(alive) < len(rt.ring.Members()):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":       status,
		"shards":       len(rt.ring.Members()),
		"shards_alive": len(alive),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
