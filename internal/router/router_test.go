package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"aptget/internal/core"
	"aptget/internal/service"
	"aptget/internal/wire"
	"aptget/internal/workloads"
)

// fleet spins up n in-process shards and a router over them.
func fleet(t *testing.T, n int, shardCfg service.Config) (*Router, []*httptest.Server) {
	t.Helper()
	shards := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := range shards {
		shards[i] = httptest.NewServer(service.New(shardCfg).Handler())
		t.Cleanup(shards[i].Close)
		addrs[i] = shards[i].URL
	}
	rt, err := New(Config{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	return rt, shards
}

func collectBody(t *testing.T, app string) []byte {
	t.Helper()
	e, ok := workloads.ByKey(app)
	if !ok {
		t.Fatalf("workload %s not registered", app)
	}
	_, body, err := service.CollectProfile(e, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRoutedIngestAndFetchAgree: an ingest through the router and the
// follow-up plan fetch land on the same shard, and the plans come back
// byte-identical to asking that shard directly.
func TestRoutedIngestAndFetchAgree(t *testing.T) {
	rt, _ := fleet(t, 3, service.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	body := collectBody(t, "IS")
	fp := string(wire.FingerprintBytes(body))

	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ingShard := resp.Header.Get(HeaderShard)
	var ing service.IngestResponse
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ing.Outcome != "miss" {
		t.Fatalf("routed ingest = %d %+v", resp.StatusCode, ing)
	}
	if ing.Fingerprint != fp {
		t.Fatalf("router keyed on %s but shard computed %s", fp, ing.Fingerprint)
	}
	if want := rt.Ring().Owner(fp); ingShard != want {
		t.Fatalf("ingest served by %s, ring owner is %s", ingShard, want)
	}

	get, err := http.Get(ts.URL + "/v1/plans/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	plans, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK || get.Header.Get(HeaderShard) != ingShard {
		t.Fatalf("routed GET = %d via %s, want 200 via %s",
			get.StatusCode, get.Header.Get(HeaderShard), ingShard)
	}

	direct, err := http.Get(ingShard + "/v1/plans/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	directPlans, _ := io.ReadAll(direct.Body)
	direct.Body.Close()
	if !bytes.Equal(plans, directPlans) {
		t.Fatal("routed plans differ from the owning shard's")
	}
}

// TestFailoverToNextRingMember: killing the owner mid-run degrades to
// the next shard answering — the client sees 404/2xx, never a 502.
func TestFailoverToNextRingMember(t *testing.T) {
	rt, shards := fleet(t, 3, service.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	body := collectBody(t, "IS")
	fp := string(wire.FingerprintBytes(body))
	owner := rt.Ring().Owner(fp)
	for _, s := range shards {
		if s.URL == owner {
			s.Close()
		}
	}

	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest with dead owner = %d, want 201 from a successor", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderShard); got != rt.Ring().Successors(fp, 2)[1] {
		t.Fatalf("served by %s, want the owner's first successor", got)
	}
	if rt.Counters()["router_failovers"] == 0 {
		t.Fatal("failover not counted")
	}
}

// TestAllShardsDown502: with no shard answering, the router reports the
// failure instead of hanging.
func TestAllShardsDown502(t *testing.T) {
	rt, shards := fleet(t, 2, service.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	for _, s := range shards {
		s.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/plans/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("GET with fleet down = %d, want 502", resp.StatusCode)
	}
}

// TestShardVerdictsAreNotFailures: a 404 from the owner is the answer,
// not a reason to try other shards.
func TestShardVerdictsAreNotFailures(t *testing.T) {
	rt, _ := fleet(t, 3, service.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/plans/0000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing plans through router = %d, want 404", resp.StatusCode)
	}
	if rt.Counters()["router_failovers"] != 0 {
		t.Fatal("a 404 verdict must not trigger failover")
	}
}

// TestFleetMetricsAndHealth: /v1/metrics sums shard counters fleet-wide
// and /v1/healthz degrades (but stays 200) while ≥1 shard lives.
func TestFleetMetricsAndHealth(t *testing.T) {
	rt, shards := fleet(t, 3, service.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	body := collectBody(t, "IS")
	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var m MetricsResponse
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if m.Fleet["plan_cache_misses"] != 1 {
		t.Fatalf("fleet-wide misses = %d, want 1: %v", m.Fleet["plan_cache_misses"], m.Fleet)
	}
	if m.Router["router_requests_proxied"] != 1 {
		t.Fatalf("router counters = %v", m.Router)
	}
	if len(m.PerShard) != 3 {
		t.Fatalf("per-shard counters for %d shards, want 3", len(m.PerShard))
	}

	var h struct {
		Status      string `json:"status"`
		ShardsAlive int    `json:"shards_alive"`
	}
	hc := func() (int, string, int) {
		hresp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		json.NewDecoder(hresp.Body).Decode(&h)
		return hresp.StatusCode, h.Status, h.ShardsAlive
	}
	if code, status, alive := hc(); code != 200 || status != "ok" || alive != 3 {
		t.Fatalf("healthy fleet = %d %s %d", code, status, alive)
	}
	shards[0].Close()
	if code, status, alive := hc(); code != 200 || status != "degraded" || alive != 2 {
		t.Fatalf("degraded fleet = %d %s %d, want 200 degraded 2", code, status, alive)
	}
	shards[1].Close()
	shards[2].Close()
	if code, status, _ := hc(); code != http.StatusServiceUnavailable || status != "down" {
		t.Fatalf("dead fleet = %d %s, want 503 down", code, status)
	}
}
