package analysis

import (
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/profile"
)

func TestDistanceFromTimingEquation1(t *testing.T) {
	opt := Options{}
	opt.fill()
	cases := []struct {
		ic, mc float64
		want   int64
	}{
		{10, 220, 22},
		{10, 225, 23}, // ceil
		{50, 220, 5},
		{220, 220, 1},
		{10, 0, 1},      // clamp low
		{1, 10000, 256}, // clamp high
		{0, 100, 1},     // degenerate IC
	}
	for _, c := range cases {
		got := distanceFromTiming(LoopTiming{IC: c.ic, MC: c.mc}, opt)
		if got != c.want {
			t.Fatalf("distance(IC=%v, MC=%v) = %d, want %d", c.ic, c.mc, got, c.want)
		}
	}
}

// mkSample builds an LBR sample from (from, cycle) pairs.
func mkSample(pairs ...[2]uint64) lbr.Sample {
	s := lbr.Sample{}
	for _, p := range pairs {
		s.Entries = append(s.Entries, lbr.Entry{From: p[0], To: 0, Cycle: p[1]})
	}
	if n := len(s.Entries); n > 0 {
		s.Cycle = s.Entries[n-1].Cycle
	}
	return s
}

func TestMeasureLoopDeltas(t *testing.T) {
	opt := Options{}
	opt.fill()
	const latch = 100
	s := mkSample([2]uint64{latch, 10}, [2]uint64{latch, 30}, [2]uint64{latch, 55})
	lt := measureLoop([]uint64{latch}, nil, []lbr.Sample{s}, opt)
	if len(lt.Latencies) != 2 || lt.Latencies[0] != 20 || lt.Latencies[1] != 25 {
		t.Fatalf("latencies = %v, want [20 25]", lt.Latencies)
	}
}

func TestMeasureLoopBreakerFiltersOuterSpans(t *testing.T) {
	opt := Options{}
	opt.fill()
	const inner, outer = 100, 200
	// Two inner iterations, outer latch, two more inner iterations. The
	// delta across the outer latch (1000→2000) must be discarded.
	s := mkSample(
		[2]uint64{inner, 10}, [2]uint64{inner, 30},
		[2]uint64{outer, 1000},
		[2]uint64{inner, 2000}, [2]uint64{inner, 2020},
	)
	lt := measureLoop([]uint64{inner}, []uint64{outer}, []lbr.Sample{s}, opt)
	if len(lt.Latencies) != 2 {
		t.Fatalf("latencies = %v, want 2 deltas", lt.Latencies)
	}
	for _, l := range lt.Latencies {
		if l != 20 {
			t.Fatalf("outer-span delta leaked in: %v", lt.Latencies)
		}
	}
}

func TestTripRunsAndAvgTrip(t *testing.T) {
	const inner, outer = 100, 200
	// outer; 3 inner back-edges; outer; 2 inner; outer → runs [3, 2]
	// → trips [4, 3] → avg 3.5.
	s := mkSample(
		[2]uint64{outer, 5},
		[2]uint64{inner, 10}, [2]uint64{inner, 20}, [2]uint64{inner, 30},
		[2]uint64{outer, 40},
		[2]uint64{inner, 50}, [2]uint64{inner, 60},
		[2]uint64{outer, 70},
	)
	runs := tripRuns([]uint64{inner}, []uint64{outer}, 0, []lbr.Sample{s})
	if len(runs) != 2 || runs[0] != 3 || runs[1] != 2 {
		t.Fatalf("runs = %v, want [3 2]", runs)
	}
	if got := avgTrip(runs); got != 3.5 {
		t.Fatalf("avgTrip = %v, want 3.5", got)
	}
	if got := avgTrip(nil); got != 0 {
		t.Fatalf("avgTrip(nil) = %v, want 0", got)
	}
}

func TestTripRunsIgnoreLeadingPartialWindow(t *testing.T) {
	const inner, outer = 100, 200
	// Entries before the first outer latch form a partial window and
	// must not produce a run.
	s := mkSample(
		[2]uint64{inner, 1}, [2]uint64{inner, 2},
		[2]uint64{outer, 10},
		[2]uint64{inner, 20},
		[2]uint64{outer, 30},
	)
	runs := tripRuns([]uint64{inner}, []uint64{outer}, 0, []lbr.Sample{s})
	if len(runs) != 1 || runs[0] != 1 {
		t.Fatalf("runs = %v, want [1]", runs)
	}
}

// buildIndirectNested returns the microbenchmark skeleton:
//
//	for i in [0, outer): for j in [0, inner): sum += T[B[i*inner+j]]
//
// plus the arrays for initialization.
func buildIndirectNested(outer, inner, table int64, work int) (*ir.Program, ir.Array, ir.Array) {
	b := ir.NewBuilder("microbench")
	bArr := b.Alloc("B", outer*inner, 8)
	tArr := b.Alloc("T", table, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(inner))
		b.Loop("j", zero, b.Const(inner), 1, func(j ir.Value) {
			idx := b.LoadElem(bArr, b.Add(base, j))
			v := b.LoadElem(tArr, idx)
			// Work function: a dependent ALU chain.
			acc := v
			for w := 0; w < work; w++ {
				acc = b.Xor(b.Add(acc, b.Const(int64(w+1))), acc)
			}
			old := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(old, acc))
		})
	})
	return b.Finish(), bArr, tArr
}

func initArrays(bArr, tArr ir.Array) func(*mem.Arena) {
	return func(a *mem.Arena) {
		rng := rand.New(rand.NewSource(42))
		for i := int64(0); i < bArr.Count; i++ {
			a.Write(bArr.Addr(i), rng.Int63n(tArr.Count), 8)
		}
	}
}

func collect(t *testing.T, p *ir.Program, bArr, tArr ir.Array) *profile.Profile {
	t.Helper()
	prof, err := profile.Collect(p, mem.ConfigScaled(), initArrays(bArr, tArr), profile.Options{
		SamplePeriod: 20_000,
		PEBSPeriod:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestAnalyzeLBROverflowKeepsInnerSite(t *testing.T) {
	// INNER=256 ≫ LBR width: the 32-entry ring never spans a full inner
	// loop, so the trip count is unmeasurable. Per §3.6 this is harmless:
	// the distance still comes from Equation (1) and the site stays
	// inner.
	p, bArr, tArr := buildIndirectNested(64, 256, 1<<18, 0)
	prof := collect(t, p, bArr, tArr)
	if len(prof.Loads) == 0 {
		t.Fatal("no delinquent loads found")
	}
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	plan := plans[0]
	if plan.Site != SiteInner {
		t.Fatalf("LBR overflow must keep inner site, got %v", plan.Site)
	}
	if plan.AvgTrip != 0 {
		t.Fatalf("trip should be unmeasurable, got %.1f", plan.AvgTrip)
	}
	// Equation 1 sanity: with DRAM ≈ 220+ cycles and a tight loop the
	// distance must be substantial but bounded.
	if plan.Distance < 4 || plan.Distance > 128 {
		t.Fatalf("distance = %d out of plausible band (IC=%.0f MC=%.0f peaks=%v)",
			plan.Distance, plan.Inner.IC, plan.Inner.MC, plan.Inner.Peaks)
	}
	if len(plan.Inner.Peaks) < 2 {
		t.Fatalf("expected ≥2 latency peaks, got %v", plan.Inner.Peaks)
	}
}

func TestAnalyzeMeasurableTripKeepsInnerSite(t *testing.T) {
	// A heavy work function makes IC large and the distance small, so a
	// trip count of 24 (measurable inside 32 LBR entries) satisfies
	// Equation (2) for the inner site.
	p, bArr, tArr := buildIndirectNested(1024, 24, 1<<18, 64)
	prof := collect(t, p, bArr, tArr)
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	plan := plans[0]
	if plan.Fallback != "" {
		t.Fatalf("unexpected fallback: %s", plan.Fallback)
	}
	if plan.AvgTrip < 20 || plan.AvgTrip > 28 {
		t.Fatalf("avg trip = %.1f, want ≈24", plan.AvgTrip)
	}
	if plan.Site != SiteInner {
		t.Fatalf("trip %.1f with distance %d should keep inner site",
			plan.AvgTrip, plan.InnerDistance)
	}
	if plan.InnerDistance > 6 {
		t.Fatalf("heavy work should shrink the distance, got %d", plan.InnerDistance)
	}
}

func TestAnalyzeEndToEndSmallTripPrefersOuter(t *testing.T) {
	// INNER=4 ≪ K×distance: outer-loop injection expected.
	p, bArr, tArr := buildIndirectNested(4096, 4, 1<<18, 0)
	prof := collect(t, p, bArr, tArr)
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	plan := plans[0]
	if plan.AvgTrip < 3 || plan.AvgTrip > 5 {
		t.Fatalf("avg trip = %.1f, want ≈4", plan.AvgTrip)
	}
	if plan.Site != SiteOuter {
		t.Fatalf("small trip count should select outer site (trip %.1f, inner dist %d, fallback %q)",
			plan.AvgTrip, plan.InnerDistance, plan.Fallback)
	}
	if plan.OuterDistance < 1 {
		t.Fatalf("outer distance = %d", plan.OuterDistance)
	}
	if plan.Outer == nil || len(plan.Outer.Latencies) == 0 {
		t.Fatal("outer loop timing missing")
	}
}

func TestAnalyzeDisableOuterAblation(t *testing.T) {
	p, bArr, tArr := buildIndirectNested(4096, 4, 1<<18, 0)
	prof := collect(t, p, bArr, tArr)
	plans, err := Analyze(p, prof, Options{DisableOuter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	if plans[0].Site != SiteInner {
		t.Fatal("DisableOuter must force inner site")
	}
}

func TestAnalyzeHigherWorkLowersDistance(t *testing.T) {
	// The paper's Figure 1 insight: heavier work functions need smaller
	// distances (IC_latency grows, MC_latency fixed).
	pLow, b1, t1 := buildIndirectNested(32, 256, 1<<18, 0)
	pHigh, b2, t2 := buildIndirectNested(32, 256, 1<<18, 24)
	profLow := collect(t, pLow, b1, t1)
	profHigh := collect(t, pHigh, b2, t2)
	plansLow, err := Analyze(pLow, profLow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plansHigh, err := Analyze(pHigh, profHigh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plansLow) == 0 || len(plansHigh) == 0 {
		t.Fatal("missing plans")
	}
	dl, dh := plansLow[0].InnerDistance, plansHigh[0].InnerDistance
	if dh >= dl {
		t.Fatalf("high-work distance %d should be below low-work distance %d", dh, dl)
	}
}

func TestAnalyzeSyntheticFallbackUnimodal(t *testing.T) {
	// Fabricate a profile whose loop latencies are unimodal: the plan
	// must fall back to distance 1.
	p, bArr, _ := buildIndirectNested(4, 4, 64, 0)
	f := p.Func
	// Find the T load (the delinquent one): the load whose address chain
	// contains another load.
	var loadPC uint64
	for vi := range f.Instrs {
		ins := &f.Instrs[vi]
		if ins.Op != ir.OpLoad {
			continue
		}
		addr := f.Instr(ins.Args[0])
		if addr.Op == ir.OpAdd {
			for _, a := range addr.Args {
				if f.Instr(a).Op == ir.OpShl &&
					f.Instr(f.Instr(a).Args[0]).Op == ir.OpLoad {
					loadPC = ins.PC
				}
			}
		}
	}
	if loadPC == 0 {
		t.Fatal("could not locate indirect load")
	}
	_ = bArr
	loop := ir.AnalyzeLoops(f).InnermostFor(f.BlockOf(loadPC).ID)
	latch := latchPCs(f, loop)[0]

	var samples []lbr.Sample
	cyc := uint64(0)
	for s := 0; s < 8; s++ {
		var pairs [][2]uint64
		for i := 0; i < 24; i++ {
			cyc += 20 // constant iteration time → unimodal
			pairs = append(pairs, [2]uint64{latch, cyc})
		}
		samples = append(samples, mkSample(pairs...))
	}
	sampler := pebs.NewSampler(1)
	for i := 0; i < 100; i++ {
		sampler.ObserveMiss(loadPC, 220)
	}
	prof := &profile.Profile{Samples: samples, Loads: sampler.Delinquent(0)}
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("want 1 plan, got %d", len(plans))
	}
	if plans[0].Fallback == "" || plans[0].Distance != 1 {
		t.Fatalf("unimodal profile should fall back to distance 1: %+v", plans[0])
	}
}

func TestAnalyzeSyntheticFallbackNoSamples(t *testing.T) {
	p, _, _ := buildIndirectNested(4, 4, 64, 0)
	f := p.Func
	var loadPC uint64
	for vi := range f.Instrs {
		if f.Instrs[vi].Op == ir.OpLoad {
			loadPC = f.Instrs[vi].PC // any load in a loop
		}
	}
	sampler := pebs.NewSampler(1)
	sampler.ObserveMiss(loadPC, 220)
	prof := &profile.Profile{Loads: sampler.Delinquent(0)} // no LBR samples
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Distance != 1 || plans[0].Fallback == "" {
		t.Fatalf("no-sample profile should default to distance 1: %+v", plans)
	}
}

func TestAnalyzeRejectsNonLoadPC(t *testing.T) {
	p, _, _ := buildIndirectNested(4, 4, 64, 0)
	sampler := pebs.NewSampler(1)
	sampler.ObserveMiss(0, 220) // PC 0 is a const in the entry block
	prof := &profile.Profile{Loads: sampler.Delinquent(0)}
	if _, err := Analyze(p, prof, Options{}); err == nil {
		t.Fatal("expected error for non-load delinquent PC")
	}
}

func TestSiteString(t *testing.T) {
	if SiteInner.String() != "inner" || SiteOuter.String() != "outer" {
		t.Fatal("site names wrong")
	}
}
