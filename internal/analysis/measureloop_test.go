package analysis

import (
	"testing"

	"aptget/internal/lbr"
)

// entries builds one LBR snapshot from (from-PC, cycle) pairs.
func entries(pairs ...[2]uint64) lbr.Sample {
	s := lbr.Sample{}
	for _, p := range pairs {
		s.Entries = append(s.Entries, lbr.Entry{From: p[0], Cycle: p[1]})
	}
	if n := len(s.Entries); n > 0 {
		s.Cycle = s.Entries[n-1].Cycle
	}
	return s
}

// TestMeasureLoopDeltaExtraction pins the raw delta-extraction rules of
// measureLoop before any histogram/peak processing: which consecutive
// latch pairs become latencies, which are discarded, and why.
func TestMeasureLoopDeltaExtraction(t *testing.T) {
	const latch, breaker, other = 7, 9, 3
	opt := Options{}
	opt.fill()

	cases := []struct {
		name        string
		breakers    []uint64
		samples     []lbr.Sample
		wantLat     []float64
		wantBreaker int
		wantNonMono int
	}{
		{
			name: "plain_deltas",
			samples: []lbr.Sample{entries(
				[2]uint64{latch, 100}, [2]uint64{latch, 120}, [2]uint64{latch, 150},
			)},
			wantLat: []float64{20, 30},
		},
		{
			name:     "breaker_discards_spanning_delta",
			breakers: []uint64{breaker},
			samples: []lbr.Sample{entries(
				[2]uint64{latch, 100}, [2]uint64{latch, 120},
				[2]uint64{breaker, 130}, // outer-loop latch: next delta spans outer overhead
				[2]uint64{latch, 400}, [2]uint64{latch, 420},
			)},
			wantLat:     []float64{20, 20},
			wantBreaker: 1,
		},
		{
			name: "non_monotonic_cycle_skipped_and_reanchored",
			samples: []lbr.Sample{entries(
				[2]uint64{latch, 100}, [2]uint64{latch, 120},
				[2]uint64{latch, 90}, // wrapped/out-of-order stamp: 90-120 would underflow
				[2]uint64{latch, 110},
			)},
			wantLat:     []float64{20, 20},
			wantNonMono: 1,
		},
		{
			name: "single_latch_snapshots_yield_no_deltas",
			samples: []lbr.Sample{
				entries([2]uint64{latch, 100}),
				entries([2]uint64{latch, 500}),
				entries([2]uint64{latch, 900}),
			},
			wantLat: nil,
		},
		{
			name: "non_latch_entries_ignored",
			samples: []lbr.Sample{entries(
				[2]uint64{latch, 100}, [2]uint64{other, 110},
				[2]uint64{other, 115}, [2]uint64{latch, 140},
			)},
			wantLat: []float64{40},
		},
		{
			name:     "state_resets_between_snapshots",
			breakers: []uint64{breaker},
			samples: []lbr.Sample{
				// Snapshot 1 ends right after a breaker...
				entries([2]uint64{latch, 100}, [2]uint64{breaker, 110}),
				// ...which must not taint snapshot 2's first delta, and the
				// anchor must not carry over (5000-100 is not a latency).
				entries([2]uint64{latch, 5000}, [2]uint64{latch, 5025}),
			},
			wantLat: []float64{25},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lt := measureLoop([]uint64{latch}, c.breakers, c.samples, opt)
			if len(lt.Latencies) != len(c.wantLat) {
				t.Fatalf("latencies = %v, want %v", lt.Latencies, c.wantLat)
			}
			for i := range c.wantLat {
				if lt.Latencies[i] != c.wantLat[i] {
					t.Fatalf("latency[%d] = %v, want %v (all %v)", i, lt.Latencies[i], c.wantLat[i], lt.Latencies)
				}
			}
			if lt.DroppedBreaker != c.wantBreaker {
				t.Fatalf("DroppedBreaker = %d, want %d", lt.DroppedBreaker, c.wantBreaker)
			}
			if lt.DroppedNonMonotonic != c.wantNonMono {
				t.Fatalf("DroppedNonMonotonic = %d, want %d", lt.DroppedNonMonotonic, c.wantNonMono)
			}
		})
	}
}

// TestMeasureLoopNoUnderflowLatencies feeds many snapshots with an
// out-of-order stamp each; on the pre-fix code the unsigned delta
// underflowed to ~1.8e19 "cycles", poisoning the histogram.
func TestMeasureLoopNoUnderflowLatencies(t *testing.T) {
	const latch = 7
	opt := Options{}
	opt.fill()
	var samples []lbr.Sample
	for i := 0; i < 50; i++ {
		base := uint64(1000 * (i + 1))
		samples = append(samples, entries(
			[2]uint64{latch, base}, [2]uint64{latch, base + 20},
			[2]uint64{latch, base - 5}, [2]uint64{latch, base + 15},
		))
	}
	lt := measureLoop([]uint64{latch}, nil, samples, opt)
	for _, l := range lt.Latencies {
		if l > 1e9 {
			t.Fatalf("underflowed latency %v in %v", l, lt.Latencies)
		}
	}
	if lt.DroppedNonMonotonic != 50 {
		t.Fatalf("DroppedNonMonotonic = %d, want 50", lt.DroppedNonMonotonic)
	}
}
