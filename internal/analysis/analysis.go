// Package analysis implements APT-GET's analytical model (§3.2–§3.3):
// from LBR samples and a delinquent load PC it derives
//
//   - the loop-iteration latency distribution of the loop containing the
//     load, whose CWT peaks separate the instruction component (lowest
//     peak, IC_latency) from the memory component (highest peak − lowest
//     peak, MC_latency);
//   - the optimal prefetch distance from Equation (1):
//     IC_latency × distance = MC_latency;
//   - the average inner-loop trip count, and from Equation (2) the
//     prefetch injection site (inner vs. outer loop).
//
// Loop branch PCs are resolved through the IR (the paper resolves PCs via
// AutoFDO debug info); all *timing* comes exclusively from the LBR
// samples, never from the simulator's internals.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/obs"
	"aptget/internal/peaks"
	"aptget/internal/pebs"
	"aptget/internal/profile"
)

// Site selects where the prefetch slice is injected.
type Site uint8

// Injection sites.
const (
	SiteInner Site = iota
	SiteOuter
)

func (s Site) String() string {
	if s == SiteOuter {
		return "outer"
	}
	return "inner"
}

// Options tunes the analysis. Zero values select defaults.
type Options struct {
	BinWidth    float64 // latency histogram bin width in cycles (default 2)
	K           int64   // Equation (2) coverage factor (default 5 → 80% coverage)
	MaxDistance int64   // distance clamp (default 256)
	MinSamples  int     // minimum latency observations to trust peaks (default 16)
	// DRAMLatency is the machine's main-memory latency in cycles
	// (default 220, mem.ConfigScaled). §3.2 step 5 requires *predicting*
	// the iteration latency when the load is served near the core; when
	// the profiled distribution has no all-hit population (every
	// iteration misses somewhere), the lowest peak still contains a
	// cache latency, and the instruction component is recovered as
	// highest_peak − DRAMLatency instead.
	DRAMLatency  float64
	PeakOpts     peaks.Options
	DisableOuter bool // force inner-loop injection (ablation)
	// RawIC disables the §3.2 step-5 instruction-component recovery and
	// uses the lowest latency peak as IC verbatim (ablation).
	RawIC bool
	// Obs, when non-nil, receives the stage's counters and per-plan
	// provenance records (aptbench -report / -trace).
	Obs *obs.Span
}

func (o *Options) fill() {
	if o.BinWidth == 0 {
		o.BinWidth = 2
	}
	if o.K == 0 {
		o.K = 5
	}
	if o.MaxDistance == 0 {
		o.MaxDistance = 256
	}
	if o.MinSamples == 0 {
		o.MinSamples = 16
	}
	if o.DRAMLatency == 0 {
		o.DRAMLatency = 220
	}
}

// LoopTiming is the measured dynamic behaviour of one loop.
type LoopTiming struct {
	LatchPCs  []uint64  // back-edge branch PCs identifying the loop in LBR entries
	Latencies []float64 // per-iteration execution times (cycles)
	Peaks     []float64 // CWT peaks of the latency distribution
	IC        float64   // instruction-component latency (lowest peak)
	MC        float64   // memory-component latency (highest − lowest peak)

	// DroppedNonMonotonic counts consecutive-latch cycle deltas that were
	// discarded because the later entry's cycle stamp was below the
	// earlier one (wrapped or out-of-order snapshot): without the guard a
	// single such pair would yield a ~1.8e19-cycle "latency" from the
	// unsigned subtraction and poison the histogram.
	DroppedNonMonotonic int
	// DroppedBreaker counts deltas discarded because an enclosing loop's
	// latch fired between the two latch occurrences (outer-loop overhead,
	// not an iteration).
	DroppedBreaker int

	// HistClampedOutliers and HistDroppedNonFinite surface the latency
	// histogram's robustness counters: samples clamped into the top bin
	// by the MaxBins range cap, and NaN/±Inf samples dropped outright.
	HistClampedOutliers  int
	HistDroppedNonFinite int
	// DegenerateSpan is true when the latency range hit the histogram
	// bin cap. Peaks of such a histogram carry no signal, so the timing
	// stays empty and the caller takes the §3.6 distance-1 fallback.
	DegenerateSpan bool
}

// Plan is the per-delinquent-load output consumed by the injection pass.
type Plan struct {
	LoadPC   uint64
	LoadName string   // debug label of the load (AutoFDO-style source mapping)
	Load     ir.Value // resolved load instruction in the profiled program
	Distance int64    // Equation (1) prefetch distance (for the chosen site)
	Site     Site

	InnerDistance int64 // Equation (1) on the inner loop
	OuterDistance int64 // Equation (1) on the outer loop (0 if unavailable)

	AvgTrip float64 // average inner-loop trip count from LBR runs

	// SelectionScore and MeanStall carry the 2-D delinquent-load
	// selection provenance: the stall-cycles-per-kilo-instruction score
	// the load was admitted with and its mean exposed latency per
	// sampled miss (zero when the profile predates latency sampling).
	SelectionScore float64
	MeanStall      float64

	Inner LoopTiming
	Outer *LoopTiming // nil when the load's loop has no parent

	Fallback string // non-empty when a §3.6 fallback was applied
}

// Record exports the plan's provenance: the Equation (1) and (2) inputs
// next to the decisions they produced, in the obs report schema. opt
// must be the Options the plan was computed with (for K).
func (p *Plan) Record(opt Options) obs.PlanRecord {
	opt.fill()
	rec := obs.PlanRecord{
		LoadPC:              p.LoadPC,
		Load:                p.LoadName,
		Site:                p.Site.String(),
		Distance:            p.Distance,
		IC:                  p.Inner.IC,
		MC:                  p.Inner.MC,
		AvgTrip:             p.AvgTrip,
		Score:               p.SelectionScore,
		MeanStall:           p.MeanStall,
		K:                   opt.K,
		InnerDistance:       p.InnerDistance,
		OuterDistance:       p.OuterDistance,
		PeaksInner:          append([]float64(nil), p.Inner.Peaks...),
		LatencySamples:      len(p.Inner.Latencies),
		DroppedNonMonotonic: p.Inner.DroppedNonMonotonic,
		Fallback:            p.Fallback,

		HistClampedOutliers:  p.Inner.HistClampedOutliers,
		HistDroppedNonFinite: p.Inner.HistDroppedNonFinite,
		HistDegenerateSpan:   p.Inner.DegenerateSpan,
	}
	if p.Outer != nil {
		rec.PeaksOuter = append([]float64(nil), p.Outer.Peaks...)
		// An outer-site distance is derived from the outer distribution
		// (or predicted as trip × IC_inner); surface the measured outer
		// components when the site decision used them.
		if p.Site == SiteOuter && p.Outer.IC > 0 {
			rec.IC, rec.MC = p.Outer.IC, p.Outer.MC
		}
	}
	return rec
}

// Analyze produces one Plan per delinquent load in the profile.
// The program must be the same build that was profiled (identical PCs).
func Analyze(prog *ir.Program, prof *profile.Profile, opt Options) ([]Plan, error) {
	opt.fill()
	sp := opt.Obs
	f := prog.Func
	forest := ir.AnalyzeLoops(f)

	var plans []Plan
	for _, dl := range prof.Loads {
		v := f.FindByPC(dl.PC)
		if v == ir.NoValue || f.Instr(v).Op != ir.OpLoad {
			return nil, fmt.Errorf("analysis: delinquent PC %d is not a load", dl.PC)
		}
		loop := forest.InnermostFor(f.Instr(v).Block)
		if loop == nil {
			// Loads outside loops cannot be prefetched ahead; skip.
			sp.Add("loads_outside_loops", 1)
			continue
		}
		plan := planForLoad(f, forest, prof.Samples, dl, v, loop, opt)
		plans = append(plans, plan)
	}
	sp.Set("delinquent_loads", int64(len(prof.Loads)))
	sp.Set("lbr_samples", int64(len(prof.Samples)))
	sp.Set("plans", int64(len(plans)))
	for i := range plans {
		p := &plans[i]
		sp.Add("latency_samples", int64(len(p.Inner.Latencies)))
		sp.Add("peaks_found", int64(len(p.Inner.Peaks)))
		sp.Add("dropped_non_monotonic", int64(p.Inner.DroppedNonMonotonic))
		sp.Add("dropped_breaker", int64(p.Inner.DroppedBreaker))
		sp.Add("histogram_clamped_outliers", int64(p.Inner.HistClampedOutliers))
		sp.Add("histogram_dropped_nonfinite", int64(p.Inner.HistDroppedNonFinite))
		if p.Inner.DegenerateSpan {
			sp.Add("histogram_degenerate_span", 1)
		}
		if p.Fallback != "" {
			sp.Add("fallbacks", 1)
		}
		sp.AddPlan(p.Record(opt))
	}
	return plans, nil
}

func planForLoad(f *ir.Func, forest *ir.LoopForest, samples []lbr.Sample,
	dl pebs.Load, v ir.Value, loop *ir.Loop, opt Options) Plan {

	plan := Plan{
		LoadPC: dl.PC, LoadName: f.Instr(v).Name, Load: v,
		Site: SiteInner, Distance: 1, InnerDistance: 1,
		SelectionScore: dl.Score, MeanStall: dl.MeanStall,
	}

	innerPCs := latchPCs(f, loop)
	var outerPCs, grandPCs []uint64
	if loop.Parent != nil {
		outerPCs = latchPCs(f, loop.Parent)
		// When the parent loop is itself nested, its own iteration deltas
		// must not span the *grandparent's* latch — the same breaker rule
		// the inner measurement applies one level down.
		if loop.Parent.Parent != nil {
			grandPCs = latchPCs(f, loop.Parent.Parent)
		}
	}

	plan.Inner = measureLoop(innerPCs, outerPCs, samples, opt)
	headerPC := f.Instrs[f.Blocks[loop.Header].Instrs[0]].PC
	runs := tripRuns(innerPCs, outerPCs, headerPC, samples)
	plan.AvgTrip = avgTrip(runs)

	innerMeasurable := len(plan.Inner.Latencies) >= opt.MinSamples &&
		plan.Inner.IC > 0 && plan.Inner.MC > 0
	if !innerMeasurable {
		// The inner distribution carries no memory component. Two cases:
		// either timing was impossible (§3.6: too many branches, too few
		// samples), or the delinquent load misses once per *outer*
		// iteration (e.g. a bucket scan whose whole bucket shares one
		// cache line) so the stall surfaces only in the outer loop's
		// latency distribution. In the latter case Equation 1 applies to
		// the outer loop directly (§3.3).
		if !opt.DisableOuter && loop.Parent != nil &&
			loop.Parent.InductionPhi(f) != ir.NoValue {
			outer := measureLoop(outerPCs, grandPCs, samples, opt)
			if len(outer.Latencies) >= opt.MinSamples && len(outer.Peaks) >= 2 {
				plan.Outer = &outer
				plan.OuterDistance = distanceFromTiming(outer, opt)
				plan.Site = SiteOuter
				plan.Distance = plan.OuterDistance
				plan.Fallback = "inner latency unimodal; distance from outer loop distribution"
				return plan
			}
		}
		if len(plan.Inner.Latencies) < opt.MinSamples || len(plan.Inner.Peaks) == 0 {
			plan.Fallback = "inner loop latency unmeasurable; default distance 1"
		} else {
			plan.Fallback = "latency distribution unimodal; default distance 1"
		}
		return plan
	}

	plan.InnerDistance = distanceFromTiming(plan.Inner, opt)
	if phi := loop.InductionPhi(f); phi != ir.NoValue && !affinePhi(f, loop, phi) {
		// Non-affine recurrence (§3.5, e.g. RandomAccess's xorshift
		// state): advancing the prefetch address by D iterations costs
		// an unrolled update chain of ~c cycles per step, so the
		// effective per-iteration time grows with D. Solving
		// D × (IC + c·D) = MC instead of Equation 1's D × IC = MC keeps
		// the overhead from eating the gain — the paper's §4.8 "future
		// research opportunity" of overhead-conscious injection.
		const c = 4.0
		ic, mc := plan.Inner.IC, plan.Inner.MC
		d := int64(math.Ceil((-ic + math.Sqrt(ic*ic+4*c*mc)) / (2 * c)))
		if d >= 1 && d < plan.InnerDistance {
			plan.InnerDistance = d
		}
	}
	plan.Distance = plan.InnerDistance

	// Equation (2): coverage check. The prologue/epilogue argument of
	// §3.3: an inner loop of trip_count iterations wastes `distance`
	// iterations of coverage, so inner injection covers enough only when
	// trip_count ≥ K × distance.
	if opt.DisableOuter || loop.Parent == nil {
		return plan
	}
	if plan.AvgTrip <= 0 {
		// §3.6: the inner loop overflows the 32-entry LBR, so the outer
		// latency cannot be measured — keep prefetching in the inner
		// loop, which is fine precisely because the trip count is high.
		plan.Fallback = "trip count unmeasurable (LBR overflow); inner site kept"
		return plan
	}
	if plan.AvgTrip >= float64(opt.K)*float64(plan.InnerDistance) {
		return plan // inner coverage is sufficient
	}
	if loop.Parent.InductionPhi(f) == ir.NoValue {
		// Worklist-style outer loops (e.g. DFS's stack loop) have no
		// induction variable to advance: outer injection is structurally
		// impossible, keep the inner site.
		plan.Fallback = "outer loop has no induction variable; inner site kept"
		return plan
	}

	// Outer site selected. The outer latency distribution is recorded
	// for reporting; the distance itself predicts the *post-prefetch*
	// outer iteration time as trip × IC_inner (a baseline outer
	// iteration contains the very stalls prefetching removes, so Eq. 1
	// applied mechanically to the baseline peaks would over-prefetch).
	outer := measureLoop(outerPCs, grandPCs, samples, opt)
	plan.Outer = &outer
	outerIC := plan.AvgTrip * plan.Inner.IC
	if outerIC < 1 {
		outerIC = 1
	}
	od := int64(math.Ceil(plan.Inner.MC / outerIC))
	if od < 1 {
		od = 1
	}
	if od > opt.MaxDistance {
		od = opt.MaxDistance
	}
	plan.OuterDistance = od
	plan.Site = SiteOuter
	plan.Distance = plan.OuterDistance
	return plan
}

// affinePhi reports whether the loop phi advances by a constant step
// (back edge = phi + C) — mirrors the pass's canonical-IV recognition.
func affinePhi(f *ir.Func, loop *ir.Loop, phi ir.Value) bool {
	ins := f.Instr(phi)
	for i, pred := range ins.PhiPreds {
		if !loop.Blocks[pred] {
			continue
		}
		next := f.Instr(ins.Args[i])
		if next.Op != ir.OpAdd {
			return false
		}
		a, b := next.Args[0], next.Args[1]
		return (a == phi && f.Instr(b).Op == ir.OpConst) ||
			(b == phi && f.Instr(a).Op == ir.OpConst)
	}
	return false
}

// latchPCs returns the PCs of the loop's back-edge terminators.
func latchPCs(f *ir.Func, l *ir.Loop) []uint64 {
	var out []uint64
	for _, latch := range l.Latches {
		b := f.Blocks[latch]
		if t := b.Terminator(f); t != ir.NoValue {
			out = append(out, f.Instrs[t].PC)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(pcs []uint64, pc uint64) bool {
	for _, p := range pcs {
		if p == pc {
			return true
		}
	}
	return false
}

// measureLoop extracts per-iteration latencies for a loop identified by
// its latch PCs: the cycle delta between consecutive occurrences of a
// latch branch within one LBR snapshot (§3.2 step 4). Deltas spanning an
// occurrence of a breaker PC (the enclosing loop's latch) are discarded —
// they include outer-loop overhead, not a loop iteration.
func measureLoop(latch, breakers []uint64, samples []lbr.Sample, opt Options) LoopTiming {
	lt := LoopTiming{LatchPCs: latch}
	for _, s := range samples {
		haveLast := false
		var lastCycle uint64
		brokeSince := false
		for _, e := range s.Entries {
			if contains(breakers, e.From) {
				brokeSince = true
				continue
			}
			if !contains(latch, e.From) {
				continue
			}
			switch {
			case !haveLast:
			case brokeSince:
				lt.DroppedBreaker++
			case e.Cycle < lastCycle:
				// Cycle stamps must be non-decreasing within a snapshot;
				// a wrapped or out-of-order entry would underflow the
				// unsigned delta. Skip the delta and re-anchor on the new
				// stamp.
				lt.DroppedNonMonotonic++
			default:
				lt.Latencies = append(lt.Latencies, float64(e.Cycle-lastCycle))
			}
			haveLast = true
			lastCycle = e.Cycle
			brokeSince = false
		}
	}
	if len(lt.Latencies) == 0 {
		return lt
	}
	h := peaks.NewHistogram(lt.Latencies, opt.BinWidth)
	defer h.Release()
	lt.HistClampedOutliers = h.ClampedOutliers
	lt.HistDroppedNonFinite = h.DroppedNonFinite
	if len(h.Counts) >= peaks.MaxBins {
		lt.DegenerateSpan = true
		return lt
	}
	popt := opt.PeakOpts
	popt.Obs = opt.Obs
	lt.Peaks = h.Peaks(0, popt)
	switch {
	case len(lt.Peaks) >= 2:
		highest := lt.Peaks[len(lt.Peaks)-1]
		lt.IC = lt.Peaks[0]
		// §3.2 step 5: if even the fastest iterations were served by a
		// far cache (no all-hit population), the true instruction
		// component is the DRAM-served iteration time minus the DRAM
		// latency. Take whichever estimate is smaller — for loads with
		// an all-hit population both coincide.
		if cand := highest - opt.DRAMLatency; !opt.RawIC && cand >= 1 && cand < lt.IC {
			lt.IC = cand
		}
		lt.MC = highest - lt.IC
	case len(lt.Peaks) == 1 && !opt.RawIC:
		// A unimodal distribution *above* the DRAM latency means every
		// iteration misses (RandomAccess-style streams): the instruction
		// component is the residue over the DRAM latency and Equation 1
		// still applies. A unimodal distribution below it carries no
		// memory component at all (IC/MC stay zero and the caller falls
		// back).
		if cand := lt.Peaks[0] - opt.DRAMLatency; cand >= 1 {
			lt.IC = cand
			lt.MC = lt.Peaks[0] - cand
		}
	}
	return lt
}

// distanceFromTiming applies Equation (1): distance = ceil(MC / IC),
// clamped to [1, MaxDistance].
func distanceFromTiming(t LoopTiming, opt Options) int64 {
	if t.IC <= 0 {
		return 1
	}
	d := int64(math.Ceil(t.MC / t.IC))
	if d < 1 {
		d = 1
	}
	if d > opt.MaxDistance {
		d = opt.MaxDistance
	}
	return d
}

// tripRuns counts, per §3.1, how many inner-latch branches occur between
// two occurrences of the outer latch in each LBR snapshot. Each complete
// run of n back-edges corresponds to n+1 inner iterations.
//
// headerPC is the inner header's first-instruction PC (the LBR target of
// the loop's entry edge). A window with zero back-edges is ambiguous: a
// single-trip invocation (the bottom-tested latch falls through, so no
// entry is pushed) and a *skipped* invocation (ragged inputs — a CSR row
// with no nonzeros never enters the loop) look identical by latch count
// alone. Only windows whose invocation actually ran — a back-edge, or an
// entry edge into headerPC from outside the loop — produce a run; skipped
// windows produce none, so they cannot deflate the average trip count.
// headerPC 0 disables entry detection (every window counts, the
// pre-disambiguation behavior for callers without IR access).
func tripRuns(inner, outer []uint64, headerPC uint64, samples []lbr.Sample) []int {
	if len(outer) == 0 {
		return nil
	}
	var runs []int
	for _, s := range samples {
		run := 0
		inWindow := false // have we seen an outer latch yet?
		entered := false  // did this window's invocation enter the loop?
		for _, e := range s.Entries {
			switch {
			case contains(outer, e.From):
				if inWindow && (run > 0 || entered || headerPC == 0) {
					runs = append(runs, run)
				}
				run = 0
				entered = false
				inWindow = true
			case contains(inner, e.From):
				if inWindow {
					run++
				}
			case headerPC != 0 && e.To == headerPC:
				// Entry edge: a taken branch into the inner header from
				// outside the loop (back-edges were consumed by the case
				// above). The invocation ran even if its only iteration
				// took no back-edge.
				entered = true
			}
		}
	}
	return runs
}

// avgTrip converts back-edge run lengths into the mean trip count.
func avgTrip(runs []int) float64 {
	if len(runs) == 0 {
		return 0
	}
	sum := 0
	for _, r := range runs {
		sum += r
	}
	return float64(sum)/float64(len(runs)) + 1
}
