package analysis

import (
	"testing"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/profile"
)

// synthSamples builds LBR samples whose latch deltas follow the given
// per-iteration latencies, repeated per snapshot.
func synthSamples(latch uint64, latencies []uint64, snapshots int) []lbr.Sample {
	var out []lbr.Sample
	cyc := uint64(0)
	for s := 0; s < snapshots; s++ {
		var entries []lbr.Entry
		for i := 0; i < 30; i++ {
			cyc += latencies[i%len(latencies)]
			entries = append(entries, lbr.Entry{From: latch, Cycle: cyc})
		}
		out = append(out, lbr.Sample{Cycle: cyc, Entries: entries})
	}
	return out
}

func TestMeasureLoopBimodalICMC(t *testing.T) {
	opt := Options{}
	opt.fill()
	// Alternate fast (20) and slow (240) iterations: peaks at both.
	lt := measureLoop([]uint64{7}, nil, synthSamples(7, []uint64{20, 20, 20, 240}, 20), opt)
	if len(lt.Peaks) < 2 {
		t.Fatalf("expected bimodal peaks, got %v", lt.Peaks)
	}
	if lt.IC < 15 || lt.IC > 25 {
		t.Fatalf("IC = %.0f, want ≈20", lt.IC)
	}
	if lt.MC < 200 || lt.MC > 240 {
		t.Fatalf("MC = %.0f, want ≈220", lt.MC)
	}
}

func TestMeasureLoopICRecoveryWithoutHitPopulation(t *testing.T) {
	opt := Options{}
	opt.fill() // DRAMLatency 220
	// Fast population at 70 (LLC-served: IC 28 + 42) and slow at 248
	// (DRAM-served: IC 28 + 220). The lowest peak (70) is NOT the IC;
	// the recovery yields 248-220 = 28.
	lt := measureLoop([]uint64{7}, nil, synthSamples(7, []uint64{70, 70, 248, 248}, 20), opt)
	if len(lt.Peaks) < 2 {
		t.Fatalf("expected bimodal, got %v", lt.Peaks)
	}
	if lt.IC < 24 || lt.IC > 32 {
		t.Fatalf("recovered IC = %.0f, want ≈28", lt.IC)
	}
}

func TestMeasureLoopRawICAblation(t *testing.T) {
	opt := Options{RawIC: true}
	opt.fill()
	lt := measureLoop([]uint64{7}, nil, synthSamples(7, []uint64{70, 70, 248, 248}, 20), opt)
	if lt.IC < 65 || lt.IC > 75 {
		t.Fatalf("raw IC should be the lowest peak ≈70, got %.0f", lt.IC)
	}
}

func TestMeasureLoopAllMissSinglePeak(t *testing.T) {
	opt := Options{}
	opt.fill()
	// Every iteration misses: one peak at 240 > DRAMLatency → IC = 20.
	lt := measureLoop([]uint64{7}, nil, synthSamples(7, []uint64{240}, 20), opt)
	if len(lt.Peaks) != 1 {
		t.Fatalf("expected unimodal, got %v", lt.Peaks)
	}
	if lt.IC < 16 || lt.IC > 24 {
		t.Fatalf("all-miss IC = %.0f, want ≈20", lt.IC)
	}
	if lt.MC < 200 {
		t.Fatalf("all-miss MC = %.0f, want ≈220", lt.MC)
	}
	d := distanceFromTiming(lt, opt)
	if d < 9 || d > 14 {
		t.Fatalf("all-miss distance = %d, want ≈11", d)
	}
}

func TestMeasureLoopUnimodalBelowDRAMHasNoMC(t *testing.T) {
	opt := Options{}
	opt.fill()
	// All iterations fast: no memory component (HJ2 bucket-scan shape).
	lt := measureLoop([]uint64{7}, nil, synthSamples(7, []uint64{12}, 20), opt)
	if lt.MC != 0 || lt.IC != 0 {
		t.Fatalf("fast unimodal loop must yield no IC/MC, got %v/%v", lt.IC, lt.MC)
	}
}

func TestRecurrenceDistanceIsOverheadAware(t *testing.T) {
	// A RandomAccess-style kernel: the induction variable is a xorshift
	// recurrence, so each unit of prefetch distance costs an unrolled
	// update chain. The chosen distance must stay below the naive
	// Equation 1 value ceil(MC/IC).
	b := ir.NewBuilder("recur")
	table := b.Alloc("T", 1<<18, 8)
	cnt := b.Alloc("cnt", 1, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	one := b.Const(1)
	mask := b.Const((1 << 18) - 1)
	b.LoopCustom("s", b.Const(99991),
		func(s ir.Value) ir.Value {
			x := b.Xor(s, b.Shl(s, b.Const(13)))
			x = b.Xor(x, b.Shr(x, b.Const(17)))
			x = b.Xor(x, b.Shl(x, b.Const(5)))
			return b.And(x, mask)
		},
		func(next ir.Value) ir.Value {
			c := b.LoadElem(cnt, zero)
			c1 := b.Add(c, one)
			b.StoreElem(cnt, zero, c1)
			return b.Cmp(ir.PredLT, c1, b.Const(60000))
		},
		nil,
		func(s ir.Value) {
			v := b.LoadElem(table, s)
			acc := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(acc, v))
		})
	p := b.Finish()
	prof, err := profile.Collect(p, mem.ConfigScaled(), nil, profile.Options{
		SamplePeriod: 20_000, PEBSPeriod: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	plan := plans[0]
	if plan.Inner.IC <= 0 || plan.Inner.MC <= 0 {
		t.Fatalf("all-miss recurrence loop should be measurable: IC=%.0f MC=%.0f (fallback %q)",
			plan.Inner.IC, plan.Inner.MC, plan.Fallback)
	}
	naive := int64(plan.Inner.MC/plan.Inner.IC) + 1
	if plan.InnerDistance >= naive {
		t.Fatalf("recurrence distance %d should undercut naive %d", plan.InnerDistance, naive)
	}
	if plan.InnerDistance < 2 || plan.InnerDistance > 8 {
		t.Fatalf("recurrence distance %d out of expected band", plan.InnerDistance)
	}
}
