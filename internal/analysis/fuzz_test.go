package analysis

import (
	"testing"

	"aptget/internal/testkit"
)

// FuzzMeasureLoop feeds adversarial LBR streams (wrapped stamps,
// truncated snapshots, interleaved latches and breakers) through the
// §3.2 latency extraction. Invariants: no panic, extracted latencies are
// finite and non-negative (the unsigned-delta guard), IC/MC are
// non-negative, and the Equation (1) distance stays in [1, MaxDistance].
func FuzzMeasureLoop(f *testing.F) {
	f.Add(uint64(3), uint(50))
	f.Add(uint64(0), uint(0))
	f.Add(uint64(1<<40), uint(299))
	f.Fuzz(func(t *testing.T, seed uint64, n uint) {
		r := testkit.NewRNG(seed)
		latch := []uint64{100, 200}
		breakers := []uint64{300}
		samples := testkit.Samples(r, latch, breakers, int(n%300))

		opt := Options{}
		opt.fill()
		var lt LoopTiming
		if err := testkit.NoPanic(func() { lt = measureLoop(latch, breakers, samples, opt) }); err != nil {
			t.Fatal(err)
		}
		if err := testkit.CheckFinite(lt.Latencies); err != nil {
			t.Fatal(err)
		}
		if lt.IC < 0 || lt.MC < 0 {
			t.Fatalf("negative timing components: IC=%g MC=%g", lt.IC, lt.MC)
		}
		if err := testkit.CheckDistance(distanceFromTiming(lt, opt), opt.MaxDistance); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMeasureLoopMonotoneNoDrops: cleanly monotone snapshots must never
// be charged to the non-monotonic drop counter — the guard may only fire
// on genuinely wrapped or out-of-order stamps.
func TestMeasureLoopMonotoneNoDrops(t *testing.T) {
	r := testkit.NewRNG(11)
	latch := []uint64{100}
	samples := testkit.Samples(r, latch, nil, 100)
	for si := range samples {
		var c uint64
		for i := range samples[si].Entries {
			c += 1 + uint64(r.Intn(100))
			samples[si].Entries[i].Cycle = c
		}
	}
	opt := Options{}
	opt.fill()
	lt := measureLoop(latch, nil, samples, opt)
	if lt.DroppedNonMonotonic != 0 {
		t.Fatalf("monotone samples charged %d non-monotonic drops", lt.DroppedNonMonotonic)
	}
	if err := testkit.CheckFinite(lt.Latencies); err != nil {
		t.Fatal(err)
	}
}
