package analysis

import (
	"testing"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/pebs"
	"aptget/internal/profile"
)

// buildTripleNested builds a 3-deep nest:
//
//	for k in [0, outer): for i in [0, mid): for j in [0, inner): sum += T[B[i*inner+j]]
//
// The delinquent load is named "T" so tests can locate it without
// pattern-matching the address chain.
func buildTripleNested(outer, mid, inner, table int64) (*ir.Program, uint64) {
	b := ir.NewBuilder("triple")
	bArr := b.Alloc("B", mid*inner, 8)
	tArr := b.Alloc("T", table, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("k", zero, b.Const(outer), 1, func(k ir.Value) {
		b.Loop("i", zero, b.Const(mid), 1, func(i ir.Value) {
			base := b.Mul(i, b.Const(inner))
			b.Loop("j", zero, b.Const(inner), 1, func(j ir.Value) {
				idx := b.LoadElem(bArr, b.Add(base, j))
				v := b.Named(b.LoadElem(tArr, idx), "T")
				old := b.LoadElem(out, zero)
				b.StoreElem(out, zero, b.Add(old, v))
			})
		})
	})
	p := b.Finish()
	var loadPC uint64
	f := p.Func
	for vi := range f.Instrs {
		if f.Instrs[vi].Op == ir.OpLoad && f.Instrs[vi].Name == "T" {
			loadPC = f.Instrs[vi].PC
		}
	}
	return p, loadPC
}

// TestOuterMeasureUsesGrandparentBreakers is the regression test for the
// outer-loop measurement at planForLoad's inner-unimodal path: when the
// delinquent load's *parent* loop is timed, deltas spanning the
// *grandparent's* latch include grandparent-loop overhead and must be
// discarded — exactly what measureLoop's breakers are for, and exactly
// what passing nil breakers fails to do. Pre-fix, the 500-cycle
// contaminated deltas leak into the parent-loop histogram (DroppedBreaker
// stays 0 and the distance can be skewed); post-fix they are dropped.
func TestOuterMeasureUsesGrandparentBreakers(t *testing.T) {
	p, loadPC := buildTripleNested(8, 8, 8, 1<<16)
	f := p.Func
	if loadPC == 0 {
		t.Fatal("could not locate load T")
	}
	forest := ir.AnalyzeLoops(f)
	loop := forest.InnermostFor(f.BlockOf(loadPC).ID)
	if loop == nil || loop.Parent == nil || loop.Parent.Parent == nil {
		t.Fatal("expected a 3-deep nest")
	}
	midLatch := latchPCs(f, loop.Parent)[0]
	gpLatch := latchPCs(f, loop.Parent.Parent)[0]

	// Samples contain only parent (mid) and grandparent latches — the
	// inner loop's latency is deliberately unmeasurable so planForLoad
	// takes the "distance from outer loop distribution" path. Mid-loop
	// iterations alternate 40 (all-hit) and 260 (DRAM) cycles; after
	// every 8th mid latch the grandparent latch fires and the next mid
	// latch lands 500 cycles after the previous one.
	var samples []lbr.Sample
	for sn := 0; sn < 8; sn++ {
		var pairs [][2]uint64
		cyc := uint64(1000)
		add := func(from, delta uint64) {
			cyc += delta
			pairs = append(pairs, [2]uint64{from, cyc})
		}
		for g := 0; g < 2; g++ {
			for it := 0; it < 4; it++ {
				add(midLatch, 40)
				add(midLatch, 260)
			}
			add(gpLatch, 30)
			add(midLatch, 470) // 500 cycles since the last mid latch
		}
		for it := 0; it < 4; it++ {
			add(midLatch, 40)
			add(midLatch, 260)
		}
		samples = append(samples, mkSample(pairs...))
	}

	sampler := pebs.NewSampler(1)
	for i := 0; i < 100; i++ {
		sampler.ObserveMiss(loadPC, 220)
	}
	prof := &profile.Profile{Samples: samples, Loads: sampler.Delinquent(0)}
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("want 1 plan, got %d", len(plans))
	}
	plan := plans[0]
	if plan.Site != SiteOuter || plan.Outer == nil {
		t.Fatalf("expected outer-distribution path, got site=%v fallback=%q",
			plan.Site, plan.Fallback)
	}
	// Each sample has two grandparent-spanning deltas; all must be dropped.
	if plan.Outer.DroppedBreaker != 16 {
		t.Fatalf("grandparent-spanning deltas leaked into the parent-loop "+
			"timing: DroppedBreaker = %d, want 16", plan.Outer.DroppedBreaker)
	}
	// IC 40, MC 220 → Equation (1) distance 6. The contaminated 500-cycle
	// mode would stretch MC to 460 and double the distance.
	if plan.OuterDistance != 6 {
		t.Fatalf("outer distance = %d, want 6 (IC=%.0f MC=%.0f peaks=%v)",
			plan.OuterDistance, plan.Outer.IC, plan.Outer.MC, plan.Outer.Peaks)
	}
}

// TestAvgTripSkippedInnerInvocations is the regression test for ragged
// trip counts (CSR rows with zero nonzeros): an outer iteration that
// *skips* the inner loop entirely must not be counted as a 1-trip
// invocation. The samples alternate entered invocations (7 back-edges →
// trip 8, with the guard's entry edge into the inner header) and skipped
// invocations (no entry edge, no back-edges). True mean trip over
// entered invocations is 8; counting skips as trip 1 deflates it to 4.5.
func TestAvgTripSkippedInnerInvocations(t *testing.T) {
	p, loadPC := buildTripleNested(1, 16, 8, 1<<16)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	loop := forest.InnermostFor(f.BlockOf(loadPC).ID)
	innerLatch := latchPCs(f, loop)[0]
	outerLatch := latchPCs(f, loop.Parent)[0]
	headerPC := f.Instrs[f.Blocks[loop.Header].Instrs[0]].PC
	const guardPC = 9999 // entry-edge source: the guard branch outside the loop

	var samples []lbr.Sample
	for sn := 0; sn < 4; sn++ {
		var entries []lbr.Entry
		cyc := uint64(100)
		add := func(from, to, delta uint64) {
			cyc += delta
			entries = append(entries, lbr.Entry{From: from, To: to, Cycle: cyc})
		}
		add(outerLatch, 0, 10) // opens the first window
		for w := 0; w < 4; w++ {
			// Entered invocation: guard → header, then 7 back-edges.
			add(guardPC, headerPC, 5)
			for it := 0; it < 7; it++ {
				add(innerLatch, headerPC, 20)
			}
			add(outerLatch, 0, 10)
			// Skipped invocation: the guard falls through (not taken →
			// no LBR entry); the outer latch fires again directly.
			add(outerLatch, 0, 10)
		}
		samples = append(samples, lbr.Sample{Cycle: cyc, Entries: entries})
	}

	sampler := pebs.NewSampler(1)
	for i := 0; i < 100; i++ {
		sampler.ObserveMiss(loadPC, 220)
	}
	prof := &profile.Profile{Samples: samples, Loads: sampler.Delinquent(0)}
	plans, err := Analyze(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("want 1 plan, got %d", len(plans))
	}
	if got := plans[0].AvgTrip; got != 8 {
		t.Fatalf("AvgTrip = %v, want 8 (skipped inner invocations must not "+
			"count as trip 1)", got)
	}
}
