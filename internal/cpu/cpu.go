// Package cpu executes IR programs under a timing model, playing the role
// of the evaluation machine (Table 2). The core is in-order: ALU
// operations retire with fixed costs, demand misses block, and software
// prefetches are issued in one cycle and complete asynchronously in the
// memory hierarchy. This is the mechanism the paper's Equation (1)
// formalizes: a prefetch is timely when the instruction work of
// `prefetch_distance` iterations covers the memory component latency.
//
// The core also houses the profiling hardware: a Last Branch Record ring
// that captures every taken branch with its cycle stamp, periodic LBR
// snapshots, and PEBS sampling of LLC-miss loads.
//
// A run is a resumable machine (State): New prepares it, Resume executes
// it in one or more slices that pause at basic-block boundaries, and
// SwapPlan replaces the injected prefetch code mid-run for online
// re-planning. Run is the single-shot convenience wrapper.
package cpu

import (
	"errors"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
)

// Options controls a run.
type Options struct {
	// SamplePeriod, when non-zero, snapshots the LBR ring every
	// SamplePeriod cycles (the perf-record analog of the paper's 1 ms
	// default, §3.2). Snapshots re-arm on fixed period boundaries: an
	// instruction whose latency overshoots a boundary samples late, but
	// the next boundary stays on the grid.
	SamplePeriod uint64
	// PEBSPeriod, when non-zero, samples every PEBSPeriod-th LLC-miss
	// load PC.
	PEBSPeriod uint64
	// LBRWidth overrides the branch-record ring depth (0 = the default
	// 32-entry Intel LBR; other widths model AMD BRS / ARM BRBE).
	LBRWidth int
	// MaxInstructions aborts runaway programs. 0 means the default guard.
	MaxInstructions uint64
	// InitMem is called with the arena before execution so workloads can
	// place their data.
	InitMem func(*mem.Arena)
}

const defaultMaxInstructions = 4 << 30

// Result is the outcome of a run.
type Result struct {
	Counters   pmu.Counters
	LBRSamples []lbr.Sample
	PEBS       *pebs.Sampler
	Hier       *mem.Hierarchy // post-run memory system (arena holds results)
}

// ErrInstructionLimit is returned when a program exceeds its instruction
// budget (almost always a non-terminating loop in a workload builder).
var ErrInstructionLimit = errors.New("cpu: instruction limit exceeded")

// Run executes the program to completion on a fresh memory hierarchy.
// On an execution error the returned Result is still non-nil and carries
// the Hierarchy, so the caller can release its arena; only a program
// that fails validation returns a nil Result.
func Run(p *ir.Program, cfg mem.Config, opts Options) (*Result, error) {
	s, err := New(p, cfg, opts)
	if err != nil {
		return nil, err
	}
	if _, err := s.Resume(0); err != nil {
		return s.res, err
	}
	return s.res, nil
}
