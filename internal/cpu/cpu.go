// Package cpu executes IR programs under a timing model, playing the role
// of the evaluation machine (Table 2). The core is in-order: ALU
// operations retire with fixed costs, demand misses block, and software
// prefetches are issued in one cycle and complete asynchronously in the
// memory hierarchy. This is the mechanism the paper's Equation (1)
// formalizes: a prefetch is timely when the instruction work of
// `prefetch_distance` iterations covers the memory component latency.
//
// The core also houses the profiling hardware: a Last Branch Record ring
// that captures every taken branch with its cycle stamp, periodic LBR
// snapshots, and PEBS sampling of LLC-miss loads.
package cpu

import (
	"errors"
	"fmt"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
)

// Options controls a run.
type Options struct {
	// SamplePeriod, when non-zero, snapshots the LBR ring every
	// SamplePeriod cycles (the perf-record analog of the paper's 1 ms
	// default, §3.2).
	SamplePeriod uint64
	// PEBSPeriod, when non-zero, samples every PEBSPeriod-th LLC-miss
	// load PC.
	PEBSPeriod uint64
	// LBRWidth overrides the branch-record ring depth (0 = the default
	// 32-entry Intel LBR; other widths model AMD BRS / ARM BRBE).
	LBRWidth int
	// MaxInstructions aborts runaway programs. 0 means the default guard.
	MaxInstructions uint64
	// InitMem is called with the arena before execution so workloads can
	// place their data.
	InitMem func(*mem.Arena)
}

const defaultMaxInstructions = 4 << 30

// Result is the outcome of a run.
type Result struct {
	Counters   pmu.Counters
	LBRSamples []lbr.Sample
	PEBS       *pebs.Sampler
	Hier       *mem.Hierarchy // post-run memory system (arena holds results)
}

// ErrInstructionLimit is returned when a program exceeds its instruction
// budget (almost always a non-terminating loop in a workload builder).
var ErrInstructionLimit = errors.New("cpu: instruction limit exceeded")

// Run executes the program to completion on a fresh memory hierarchy.
func Run(p *ir.Program, cfg mem.Config, opts Options) (*Result, error) {
	f := p.Func
	if err := f.Validate(); err != nil {
		return nil, err
	}
	f.AssignPCs()

	h := mem.New(cfg, p.MemSize)
	if opts.InitMem != nil {
		opts.InitMem(h.Arena)
	}

	maxInstr := opts.MaxInstructions
	if maxInstr == 0 {
		maxInstr = defaultMaxInstructions
	}

	res := &Result{Hier: h}
	ring := lbr.New(opts.LBRWidth)
	if opts.PEBSPeriod > 0 {
		res.PEBS = pebs.NewSampler(opts.PEBSPeriod)
	}

	regs := make([]int64, len(f.Instrs))
	ctr := &res.Counters

	// Hot-loop locals: the instruction table and the retired-instruction
	// count live in locals (flushed to the counters on return), and the
	// per-instruction sampling check is hoisted to a single bool.
	fIns := f.Instrs
	sampling := opts.SamplePeriod > 0
	var icount uint64

	// Pre-resolve the first two operands of every instruction into flat
	// arrays: the dispatch loop indexes regs directly instead of chasing
	// each instruction's Args slice header. (OpSelect's third operand and
	// phi inputs stay on the slice — they're off the hot path.)
	arg0 := make([]ir.Value, len(fIns))
	arg1 := make([]ir.Value, len(fIns))
	for i := range fIns {
		if a := fIns[i].Args; len(a) > 1 {
			arg0[i], arg1[i] = a[0], a[1]
		} else if len(a) == 1 {
			arg0[i] = a[0]
		}
	}

	var cycle uint64
	nextSample := opts.SamplePeriod

	// Per-block first-PC table for LBR targets.
	firstPC := make([]uint64, len(f.Blocks))
	for _, b := range f.Blocks {
		if len(b.Instrs) > 0 {
			firstPC[b.ID] = fIns[b.Instrs[0]].PC
		}
	}

	// Scratch for two-phase phi resolution.
	var phiVals []int64

	cur := f.Blocks[f.Entry]
	prev := ir.NoBlock

	for {
		instrs := cur.Instrs

		// Phase 1: phi resolution on block entry.
		nPhi := 0
		for _, v := range instrs {
			if fIns[v].Op != ir.OpPhi {
				break
			}
			nPhi++
		}
		if nPhi > 0 {
			phiVals = phiVals[:0]
			for i := 0; i < nPhi; i++ {
				ins := &fIns[instrs[i]]
				found := false
				for j, pb := range ins.PhiPreds {
					if pb == prev {
						phiVals = append(phiVals, regs[ins.Args[j]])
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("cpu: %s: phi v%d has no incoming for pred b%d",
						f.Name, instrs[i], prev)
				}
			}
			for i := 0; i < nPhi; i++ {
				regs[instrs[i]] = phiVals[i]
			}
		}

		var nextBlock ir.BlockID = ir.NoBlock

		for idx := nPhi; idx < len(instrs); idx++ {
			v := instrs[idx]
			ins := &fIns[v]
			switch ins.Op {
			case ir.OpConst:
				regs[v] = ins.Imm
				cycle++

			case ir.OpAdd:
				regs[v] = regs[arg0[v]] + regs[arg1[v]]
				cycle++
			case ir.OpSub:
				regs[v] = regs[arg0[v]] - regs[arg1[v]]
				cycle++
			case ir.OpMul:
				regs[v] = regs[arg0[v]] * regs[arg1[v]]
				cycle += 3
			case ir.OpDiv:
				d := regs[arg1[v]]
				if d == 0 {
					regs[v] = 0
				} else {
					regs[v] = regs[arg0[v]] / d
				}
				cycle += 20
			case ir.OpRem:
				d := regs[arg1[v]]
				if d == 0 {
					regs[v] = 0
				} else {
					regs[v] = regs[arg0[v]] % d
				}
				cycle += 20
			case ir.OpAnd:
				regs[v] = regs[arg0[v]] & regs[arg1[v]]
				cycle++
			case ir.OpOr:
				regs[v] = regs[arg0[v]] | regs[arg1[v]]
				cycle++
			case ir.OpXor:
				regs[v] = regs[arg0[v]] ^ regs[arg1[v]]
				cycle++
			case ir.OpShl:
				regs[v] = regs[arg0[v]] << uint64(regs[arg1[v]]&63)
				cycle++
			case ir.OpShr:
				regs[v] = regs[arg0[v]] >> uint64(regs[arg1[v]]&63)
				cycle++

			case ir.OpCmp:
				if ins.Pred.Eval(regs[arg0[v]], regs[arg1[v]]) {
					regs[v] = 1
				} else {
					regs[v] = 0
				}
				cycle++
			case ir.OpSelect:
				if regs[arg0[v]] != 0 {
					regs[v] = regs[arg1[v]]
				} else {
					regs[v] = regs[ins.Args[2]]
				}
				cycle++

			case ir.OpLoad:
				addr := regs[arg0[v]]
				r := h.Access(cycle, ins.PC, addr, mem.KindLoad)
				cycle += r.Latency
				regs[v] = h.Arena.Read(addr, ins.Size)
				ctr.Loads++
				if res.PEBS != nil && r.Served == mem.LevelDRAM {
					res.PEBS.ObserveMiss(ins.PC)
				}

			case ir.OpStore:
				addr := regs[arg0[v]]
				r := h.Access(cycle, ins.PC, addr, mem.KindStore)
				cycle += r.Latency
				h.Arena.Write(addr, regs[arg1[v]], ins.Size)
				ctr.Stores++

			case ir.OpPrefetch:
				addr := regs[arg0[v]]
				if addr >= 0 && addr < h.Arena.Size() {
					r := h.Access(cycle, ins.PC, addr, mem.KindSWPrefetch)
					cycle += r.Latency
				} else {
					// Out-of-bounds prefetch: real hardware drops it
					// without faulting; it still costs the issue slot.
					cycle++
				}
				ctr.SWPrefetches++

			case ir.OpBr:
				ctr.Branches++
				cycle++
				if regs[arg0[v]] != 0 {
					nextBlock = cur.Succs[0]
					ctr.TakenBranches++
					ring.Push(ins.PC, firstPC[nextBlock], cycle)
				} else {
					nextBlock = cur.Succs[1]
				}

			case ir.OpJmp:
				ctr.Branches++
				ctr.TakenBranches++
				cycle++
				nextBlock = cur.Succs[0]
				ring.Push(ins.PC, firstPC[nextBlock], cycle)

			case ir.OpRet:
				cycle++
				ctr.Instructions = icount + 1
				ctr.Cycles = cycle
				ctr.Mem = h.Stats
				return res, nil

			default:
				return nil, fmt.Errorf("cpu: %s: unexecutable op %s at pc %d",
					f.Name, ins.Op, ins.PC)
			}

			icount++
			if icount > maxInstr {
				return nil, fmt.Errorf("%w: %s after %d instructions",
					ErrInstructionLimit, f.Name, maxInstr)
			}
			if sampling && cycle >= nextSample {
				res.LBRSamples = append(res.LBRSamples, lbr.Sample{
					Cycle:   cycle,
					Entries: ring.Snapshot(),
				})
				nextSample = cycle + opts.SamplePeriod
			}
		}

		if nextBlock == ir.NoBlock {
			return nil, fmt.Errorf("cpu: %s: block b%d fell through", f.Name, cur.ID)
		}
		prev = cur.ID
		cur = f.Blocks[nextBlock]
	}
}
