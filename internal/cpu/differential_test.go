package cpu

import (
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// TestDifferentialRandomALUPrograms builds random arithmetic expression
// programs, evaluates them both through the interpreter and through a
// native Go evaluator, and requires bit-identical results. This is the
// broad correctness net under every workload's arithmetic.
func TestDifferentialRandomALUPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := ir.NewBuilder("rand")
		out := b.Alloc("out", 1, 8)

		// Pool of live (Value, native) pairs.
		type pair struct {
			v ir.Value
			n int64
		}
		pool := []pair{}
		for i := 0; i < 4; i++ {
			c := rng.Int63n(1000) - 500
			pool = append(pool, pair{b.Const(c), c})
		}

		steps := 30 + rng.Intn(50)
		for i := 0; i < steps; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			var v ir.Value
			var n int64
			switch rng.Intn(10) {
			case 0:
				v, n = b.Add(x.v, y.v), x.n+y.n
			case 1:
				v, n = b.Sub(x.v, y.v), x.n-y.n
			case 2:
				v, n = b.Mul(x.v, y.v), x.n*y.n
			case 3:
				v = b.Div(x.v, y.v)
				if y.n == 0 {
					n = 0
				} else {
					n = x.n / y.n
				}
			case 4:
				v = b.Rem(x.v, y.v)
				if y.n == 0 {
					n = 0
				} else {
					n = x.n % y.n
				}
			case 5:
				v, n = b.And(x.v, y.v), x.n&y.n
			case 6:
				v, n = b.Or(x.v, y.v), x.n|y.n
			case 7:
				v, n = b.Xor(x.v, y.v), x.n^y.n
			case 8:
				sh := rng.Int63n(8)
				shv := b.Const(sh)
				if rng.Intn(2) == 0 {
					v, n = b.Shl(x.v, shv), x.n<<uint(sh)
				} else {
					v, n = b.Shr(x.v, shv), x.n>>uint(sh)
				}
			default:
				pred := ir.Pred(rng.Intn(6))
				v = b.Cmp(pred, x.v, y.v)
				if pred.Eval(x.n, y.n) {
					n = 1
				} else {
					n = 0
				}
			}
			pool = append(pool, pair{v, n})
		}
		last := pool[len(pool)-1]
		b.StoreElem(out, b.Const(0), last.v)
		p := b.Finish()

		res, err := Run(p, mem.ConfigTiny(), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Hier.Arena.Read(out.Addr(0), 8); got != last.n {
			t.Fatalf("seed %d: interpreter %d, native %d", seed, got, last.n)
		}
	}
}

// TestDifferentialRandomLoopPrograms exercises loops with random bounds
// and random body arithmetic against a native mirror.
func TestDifferentialRandomLoopPrograms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 1 + rng.Int63n(60)
		mulC := 1 + rng.Int63n(7)
		addC := rng.Int63n(100)

		b := ir.NewBuilder("randloop")
		arr := b.Alloc("arr", n, 8)
		acc := b.Alloc("acc", 1, 8)
		zero := b.Const(0)
		b.Loop("i", zero, b.Const(n), 1, func(i ir.Value) {
			v := b.Add(b.Mul(i, b.Const(mulC)), b.Const(addC))
			b.StoreElem(arr, i, v)
			old := b.LoadElem(acc, zero)
			b.StoreElem(acc, zero, b.Xor(old, v))
		})
		p := b.Finish()
		res, err := Run(p, mem.ConfigScaled(), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var want int64
		for i := int64(0); i < n; i++ {
			v := i*mulC + addC
			if got := res.Hier.Arena.Read(arr.Addr(i), 8); got != v {
				t.Fatalf("seed %d: arr[%d] = %d, want %d", seed, i, got, v)
			}
			want ^= v
		}
		if got := res.Hier.Arena.Read(acc.Addr(0), 8); got != want {
			t.Fatalf("seed %d: acc = %d, want %d", seed, got, want)
		}
	}
}

// TestLBRWidthChangesSampleDepth verifies the variable-width ring is
// honoured end to end.
func TestLBRWidthChangesSampleDepth(t *testing.T) {
	build := func() *ir.Program {
		b := ir.NewBuilder("w")
		arr := b.Alloc("a", 4096, 8)
		zero := b.Const(0)
		b.Loop("i", zero, b.Const(4096), 1, func(i ir.Value) {
			b.StoreElem(arr, i, i)
		})
		return b.Finish()
	}
	deep, err := Run(build(), mem.ConfigScaled(), Options{SamplePeriod: 5000, LBRWidth: 64})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Run(build(), mem.ConfigScaled(), Options{SamplePeriod: 5000, LBRWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	maxLen := func(r *Result) int {
		m := 0
		for _, s := range r.LBRSamples {
			if len(s.Entries) > m {
				m = len(s.Entries)
			}
		}
		return m
	}
	if got := maxLen(shallow); got > 8 {
		t.Fatalf("width-8 ring produced %d entries", got)
	}
	if got := maxLen(deep); got <= 8 || got > 64 {
		t.Fatalf("width-64 ring produced %d entries", got)
	}
}
