package cpu

import (
	"testing"

	"aptget/internal/mem"
)

// TestLBRSamplePeriodNoDrift locks the fixed-grid re-arm of the LBR
// snapshot timer. The sampler models a timer-driven perf record: the
// k-th snapshot belongs to the grid point (k+1)*P and fires at the
// first retirement at or past it. Re-arming relative to the *retirement*
// cycle instead (the old `nextSample = cycle + period`) adds the
// overshoot of every long-latency miss to all later samples, so a
// miss-heavy loop — overshoot up to DRAM latency per sample — drifts by
// a full period every ~10 samples and under-samples exactly the phases
// profiling cares about most.
//
// With P well above the worst single-instruction latency, every grid
// point must be sampled within one period (before the fix this fails at
// roughly the 20th sample) and the sample count must match the grid.
func TestLBRSamplePeriodNoDrift(t *testing.T) {
	const (
		n      = 4096
		table  = 1 << 18 // 2 MiB of int64: random gathers mostly miss to DRAM
		period = 2048    // ≫ max single-access latency (~250 cycles)
	)
	p, bArr, tArr, _ := indirectProgram(n, table, 0)
	res, err := Run(p, mem.ConfigScaled(), Options{
		SamplePeriod: period,
		InitMem:      initIndirect(bArr, tArr, n, table),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LBRSamples) < 50 {
		t.Fatalf("only %d samples; the workload is supposed to be miss-heavy enough for hundreds", len(res.LBRSamples))
	}

	for k, s := range res.LBRSamples {
		grid := uint64(k+1) * period
		if s.Cycle < grid {
			t.Fatalf("sample %d at cycle %d fired before its grid point %d", k, s.Cycle, grid)
		}
		if s.Cycle >= grid+period {
			t.Fatalf("sample %d at cycle %d drifted past its grid point %d by a full period (drift bug)",
				k, s.Cycle, grid)
		}
	}

	// Every grid point before retirement is crossed by some instruction,
	// so the count must match the grid (the final partial period and a
	// boundary crossed by the ret itself are not sampled).
	want := res.Counters.Cycles / period
	got := uint64(len(res.LBRSamples))
	if got != want && got != want-1 {
		t.Fatalf("%d samples over %d cycles at period %d; want %d (±1): sampling drifted off the grid",
			got, res.Counters.Cycles, period, want)
	}
}
