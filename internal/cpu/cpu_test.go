package cpu

import (
	"errors"
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// sumProgram builds: out[0] = sum of data[0..n).
func sumProgram(n int64) (*ir.Program, ir.Array, ir.Array) {
	b := ir.NewBuilder("sum")
	data := b.Alloc("data", n, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.StoreElem(out, zero, zero)
	b.Loop("i", zero, b.Const(n), 1, func(i ir.Value) {
		v := b.LoadElem(data, i)
		acc := b.LoadElem(out, zero)
		b.StoreElem(out, zero, b.Add(acc, v))
	})
	return b.Finish(), data, out
}

func TestRunComputesSum(t *testing.T) {
	p, data, out := sumProgram(100)
	res, err := Run(p, mem.ConfigScaled(), Options{
		InitMem: func(a *mem.Arena) {
			for i := int64(0); i < 100; i++ {
				a.Write(data.Addr(i), i, 8)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hier.Arena.Read(out.Addr(0), 8); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	if res.Counters.Cycles == 0 || res.Counters.Instructions == 0 {
		t.Fatal("counters not populated")
	}
	if res.Counters.Loads != 200 { // data + accumulator per iteration
		t.Fatalf("loads = %d, want 200", res.Counters.Loads)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() uint64 {
		p, data, _ := sumProgram(256)
		res, err := Run(p, mem.ConfigScaled(), Options{
			InitMem: func(a *mem.Arena) {
				rng := rand.New(rand.NewSource(7))
				for i := int64(0); i < 256; i++ {
					a.Write(data.Addr(i), rng.Int63n(1000), 8)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestPhiLoopSemantics(t *testing.T) {
	// acc kept in a register via LoopCustom-style accumulation is not
	// expressible without a second phi; validate multi-phi headers by
	// building one manually through nested use of Loop with memory state
	// covered elsewhere. Here: factorial via non-canonical loop.
	b := ir.NewBuilder("fact")
	out := b.Alloc("out", 1, 8)
	one := b.Const(1)
	b.StoreElem(out, b.Const(0), one)
	b.LoopCustom("i", one,
		func(iv ir.Value) ir.Value { return b.Add(iv, one) },
		func(next ir.Value) ir.Value { return b.Cmp(ir.PredLE, next, b.Const(10)) },
		nil,
		func(iv ir.Value) {
			acc := b.LoadElem(out, b.Const(0))
			b.StoreElem(out, b.Const(0), b.Mul(acc, iv))
		})
	p := b.Finish()
	res, err := Run(p, mem.ConfigScaled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hier.Arena.Read(out.Addr(0), 8); got != 3628800 {
		t.Fatalf("10! = %d, want 3628800", got)
	}
}

func TestDivRemByZero(t *testing.T) {
	b := ir.NewBuilder("div0")
	out := b.Alloc("out", 2, 8)
	z := b.Const(0)
	b.StoreElem(out, z, b.Div(b.Const(42), z))
	b.StoreElem(out, b.Const(1), b.Rem(b.Const(42), z))
	p := b.Finish()
	res, err := Run(p, mem.ConfigScaled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hier.Arena.Read(out.Addr(0), 8) != 0 || res.Hier.Arena.Read(out.Addr(1), 8) != 0 {
		t.Fatal("div/rem by zero should yield 0")
	}
}

func TestInstructionLimit(t *testing.T) {
	// while (mem[0] == 0) {} never terminates.
	b := ir.NewBuilder("spin")
	st := b.Alloc("st", 1, 8)
	b.While("w",
		func() ir.Value { return b.Cmp(ir.PredEQ, b.LoadElem(st, b.Const(0)), b.Const(0)) },
		func() {})
	p := b.Finish()
	_, err := Run(p, mem.ConfigScaled(), Options{MaxInstructions: 10_000})
	if !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("want instruction-limit error, got %v", err)
	}
}

func TestLBRRecordsLoopBackEdges(t *testing.T) {
	const n = 10
	b := ir.NewBuilder("lbr")
	arr := b.Alloc("a", n, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(n), 1, func(i ir.Value) {
		b.StoreElem(arr, i, i)
	})
	p := b.Finish()
	// Sample every cycle so the final snapshot holds everything.
	res, err := Run(p, mem.ConfigScaled(), Options{SamplePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LBRSamples) == 0 {
		t.Fatal("no LBR samples collected")
	}
	last := res.LBRSamples[len(res.LBRSamples)-1]
	// The loop has n iterations → n-1 back edges, all with the same From
	// PC. Count the dominant branch PC.
	byFrom := map[uint64]int{}
	for _, e := range last.Entries {
		byFrom[e.From]++
	}
	max := 0
	for _, c := range byFrom {
		if c > max {
			max = c
		}
	}
	if max < n-1 {
		t.Fatalf("back-edge branch seen %d times, want ≥ %d", max, n-1)
	}
	// Cycle stamps must be strictly increasing.
	for i := 1; i < len(last.Entries); i++ {
		if last.Entries[i].Cycle <= last.Entries[i-1].Cycle {
			t.Fatal("LBR cycle stamps not increasing")
		}
	}
}

// indirectProgram builds the inner pattern T[B[i]] over n iterations with
// an optional hand-placed prefetch at the given distance.
func indirectProgram(n, tableSize int64, dist int64) (*ir.Program, ir.Array, ir.Array, ir.Array) {
	b := ir.NewBuilder("indirect")
	bArr := b.Alloc("B", n, 8)
	tArr := b.Alloc("T", tableSize, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(n), 1, func(i ir.Value) {
		if dist > 0 {
			pi := b.Min(b.Add(i, b.Const(dist)), b.Const(n-1))
			pidx := b.LoadElem(bArr, pi)
			b.PrefetchElem(tArr, pidx)
		}
		idx := b.LoadElem(bArr, i)
		v := b.LoadElem(tArr, idx)
		acc := b.LoadElem(out, zero)
		b.StoreElem(out, zero, b.Add(acc, v))
	})
	return b.Finish(), bArr, tArr, out
}

func initIndirect(bArr, tArr ir.Array, n, tableSize int64) func(*mem.Arena) {
	return func(a *mem.Arena) {
		rng := rand.New(rand.NewSource(99))
		for i := int64(0); i < n; i++ {
			a.Write(bArr.Addr(i), rng.Int63n(tableSize), 8)
		}
		for i := int64(0); i < tableSize; i++ {
			a.Write(tArr.Addr(i), i%7, 8)
		}
	}
}

func TestPEBSIdentifiesDelinquentLoad(t *testing.T) {
	const n, table = 4096, 1 << 18 // 2 MiB table ≫ caches? 2MiB == LLC; use 1<<18*8 = 2MiB
	p, bArr, tArr, _ := indirectProgram(n, table, 0)
	res, err := Run(p, mem.ConfigScaled(), Options{
		PEBSPeriod: 1,
		InitMem:    initIndirect(bArr, tArr, n, table),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PEBS == nil || res.PEBS.Samples() == 0 {
		t.Fatal("PEBS collected nothing")
	}
	del := res.PEBS.Delinquent(0.5)
	if len(del) != 1 {
		t.Fatalf("want exactly one dominant delinquent load, got %d", len(del))
	}
	// It must be the T load: verify it is an OpLoad whose address operand
	// chain includes another load (indirect pattern).
	v := p.Func.FindByPC(del[0].PC)
	if v == ir.NoValue || p.Func.Instr(v).Op != ir.OpLoad {
		t.Fatalf("delinquent PC %d does not map to a load", del[0].PC)
	}
}

func TestPrefetchingReducesCycles(t *testing.T) {
	const n, table = 8192, 1 << 18
	base, bArr, tArr, outA := indirectProgram(n, table, 0)
	resBase, err := Run(base, mem.ConfigScaled(), Options{
		InitMem: initIndirect(bArr, tArr, n, table),
	})
	if err != nil {
		t.Fatal(err)
	}

	pf, bArr2, tArr2, outB := indirectProgram(n, table, 16)
	resPF, err := Run(pf, mem.ConfigScaled(), Options{
		InitMem: initIndirect(bArr2, tArr2, n, table),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same answer.
	sumA := resBase.Hier.Arena.Read(outA.Addr(0), 8)
	sumB := resPF.Hier.Arena.Read(outB.Addr(0), 8)
	if sumA != sumB {
		t.Fatalf("prefetching changed the result: %d vs %d", sumA, sumB)
	}

	speedup := float64(resBase.Counters.Cycles) / float64(resPF.Counters.Cycles)
	if speedup < 1.5 {
		t.Fatalf("distance-16 prefetch should speed up the indirect loop, got %.2fx", speedup)
	}
	if resPF.Counters.SWPrefetches == 0 {
		t.Fatal("prefetches not executed")
	}
	if resPF.Counters.MPKI() >= resBase.Counters.MPKI() {
		t.Fatalf("MPKI should fall: %.2f -> %.2f",
			resBase.Counters.MPKI(), resPF.Counters.MPKI())
	}
}

func TestLatePrefetchAtDistanceOne(t *testing.T) {
	const n, table = 4096, 1 << 18
	p, bArr, tArr, _ := indirectProgram(n, table, 1)
	res, err := Run(p, mem.ConfigScaled(), Options{
		InitMem: initIndirect(bArr, tArr, n, table),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.LatePrefetchRatio() < 0.5 {
		t.Fatalf("distance-1 prefetches should be mostly late, ratio %.2f",
			res.Counters.LatePrefetchRatio())
	}
}

func TestOutOfBoundsPrefetchIsDropped(t *testing.T) {
	b := ir.NewBuilder("oobpf")
	arr := b.Alloc("a", 1, 8)
	huge := b.Const(1 << 40)
	b.Prefetch(huge)
	b.StoreElem(arr, b.Const(0), b.Const(1))
	p := b.Finish()
	res, err := Run(p, mem.ConfigScaled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SWPrefetches != 1 {
		t.Fatal("prefetch should retire")
	}
	if res.Counters.Mem.SWPrefetchIssued != 0 {
		t.Fatal("out-of-bounds prefetch must not reach the hierarchy")
	}
}

func TestSamplePeriodControlsSampleCount(t *testing.T) {
	p, data, _ := sumProgram(2048)
	init := func(a *mem.Arena) {
		for i := int64(0); i < 2048; i++ {
			a.Write(data.Addr(i), 1, 8)
		}
	}
	few, err := Run(p, mem.ConfigScaled(), Options{SamplePeriod: 50_000, InitMem: init})
	if err != nil {
		t.Fatal(err)
	}
	p2, data2, _ := sumProgram(2048)
	_ = data2
	many, err := Run(p2, mem.ConfigScaled(), Options{SamplePeriod: 1_000, InitMem: func(a *mem.Arena) {
		for i := int64(0); i < 2048; i++ {
			a.Write(data2.Addr(i), 1, 8)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(many.LBRSamples) <= len(few.LBRSamples) {
		t.Fatalf("shorter period should yield more samples: %d vs %d",
			len(many.LBRSamples), len(few.LBRSamples))
	}
}

func TestCountersConsistency(t *testing.T) {
	p, data, _ := sumProgram(128)
	res, err := Run(p, mem.ConfigScaled(), Options{InitMem: func(a *mem.Arena) {
		for i := int64(0); i < 128; i++ {
			a.Write(data.Addr(i), 1, 8)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := &res.Counters
	if c.TakenBranches > c.Branches {
		t.Fatal("taken > total branches")
	}
	if c.IPC() <= 0 || c.IPC() > 1.01 {
		t.Fatalf("in-order IPC out of range: %v", c.IPC())
	}
	if c.Mem.DemandAccesses != c.Loads+c.Stores {
		t.Fatalf("hierarchy demand accesses %d != loads+stores %d",
			c.Mem.DemandAccesses, c.Loads+c.Stores)
	}
}
