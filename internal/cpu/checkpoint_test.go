// Checkpoint/resume determinism properties. These live in an external
// test package so they can drive the real workload corpus (workloads →
// core → cpu would otherwise be an import cycle).
package cpu_test

import (
	"reflect"
	"sort"
	"testing"

	"aptget/internal/cpu"
	"aptget/internal/mem"
	"aptget/internal/pmu"
	"aptget/internal/testkit"
	"aptget/internal/workloads"
)

// TestCheckpointSplitDeterminism is the contract the online re-planner
// stands on: a run split at any K checkpoint boundaries is
// counter-identical to the unsplit run — same PMU counters, same LBR
// snapshots (cycle stamps and ring contents), same PEBS attribution.
// Split points are drawn seed-stably so a failure reproduces as-is.
func TestCheckpointSplitDeterminism(t *testing.T) {
	// A registry cross-section (graph traversal, hash join, SpMV, GUPS)
	// plus the phase-changing corpus the re-planner targets. The full
	// registry would push this test past a minute; these cover every
	// distinct control shape.
	keys := []string{"DFS", "CG", "randAcc", "HJ2", "phaseSG", "phaseRamp", "phaseFlat"}
	rng := testkit.NewRNG(0x5EED_CB07)
	const splits = 3

	for _, key := range keys {
		e, ok := workloads.ByKey(key)
		if !ok {
			t.Fatalf("workload %q not in registry", key)
		}
		t.Run(key, func(t *testing.T) {
			opts := cpu.Options{SamplePeriod: 25_000, PEBSPeriod: 7}

			unsplit := runResumable(t, e, opts, nil)
			defer unsplit.Hier.Release()

			total := unsplit.Counters.Cycles
			stops := make([]uint64, 0, splits)
			for len(stops) < splits {
				c := 1 + uint64(rng.Int63n(int64(total)))
				stops = append(stops, c)
			}
			sort.Slice(stops, func(i, j int) bool { return stops[i] < stops[j] })

			split := runResumable(t, e, opts, stops)
			defer split.Hier.Release()

			if !reflect.DeepEqual(unsplit.Counters, split.Counters) {
				t.Errorf("counters diverge after splitting at %v:\nunsplit: %+v\nsplit:   %+v",
					stops, unsplit.Counters, split.Counters)
			}
			if !reflect.DeepEqual(unsplit.LBRSamples, split.LBRSamples) {
				t.Errorf("LBR samples diverge after splitting at %v: %d vs %d samples",
					stops, len(unsplit.LBRSamples), len(split.LBRSamples))
			}
			if !reflect.DeepEqual(unsplit.PEBS.Counts(), split.PEBS.Counts()) {
				t.Errorf("PEBS attribution diverges after splitting at %v", stops)
			}
		})
	}
}

// runResumable builds a fresh instance of the workload and runs it via
// the resumable machine, pausing at each of the given stop cycles. A nil
// stops slice runs to completion in one Resume.
func runResumable(t *testing.T, e workloads.Entry, opts cpu.Options, stops []uint64) *cpu.Result {
	t.Helper()
	w := e.New()
	p, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts.InitMem = w.InitMem
	st, err := cpu.New(p, mem.ConfigScaled(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for _, stop := range stops {
		done, err := st.Resume(stop)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		cp := st.Checkpoint()
		if cp.Cycle < stop {
			t.Fatalf("paused at cycle %d, before the requested stop %d", cp.Cycle, stop)
		}
		if cp.Cycle < prev {
			t.Fatalf("checkpoint cycle went backwards: %d after %d", cp.Cycle, prev)
		}
		prev = cp.Cycle
	}
	done, err := st.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Resume(0) returned without finishing")
	}
	if err := w.Verify(st.Result().Hier.Arena); err != nil {
		t.Fatalf("workload verification failed on resumable run: %v", err)
	}
	return st.Result()
}

// TestCheckpointCountersMatchFinal locks Checkpoint's snapshot shape:
// after the run retires, the checkpoint view and the final Result agree.
func TestCheckpointCountersMatchFinal(t *testing.T) {
	e, ok := workloads.ByKey("phaseFlat")
	if !ok {
		t.Fatal("phaseFlat not registered")
	}
	res := runResumable(t, e, cpu.Options{SamplePeriod: 25_000}, []uint64{100_000})
	defer res.Hier.Release()
	var zero pmu.Counters
	if res.Counters == zero {
		t.Fatal("final counters are zero")
	}
}
