package cpu

import (
	"errors"
	"fmt"

	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
)

// State is a resumable execution of one program on one memory hierarchy:
// the register file, cycle and instruction counts, block cursor, LBR
// ring, samplers, and hierarchy of a run in flight. A State created by
// New and driven by Resume in any number of slices produces counters and
// LBR samples identical to a single uninterrupted run — pausing is
// invisible to the simulated machine. That is what makes checkpoint
// boundaries safe points for observation (Checkpoint) and for online
// re-planning (SwapPlan).
type State struct {
	prog *ir.Program
	f    *ir.Func
	opts Options

	h    *mem.Hierarchy
	ring *lbr.Record
	res  *Result

	regs       []int64
	arg0, arg1 []ir.Value // pre-resolved first two operands per value
	firstPC    []uint64   // per-block first-instruction PC (LBR targets)
	phiVals    []int64    // scratch for two-phase phi resolution

	icount     uint64
	cycle      uint64
	nextSample uint64
	maxInstr   uint64
	sampling   bool

	cur  ir.BlockID
	prev ir.BlockID

	swapLo, swapHi ir.Value // value range the last SwapPlan injected
	swaps          int

	done bool
	err  error
}

// New prepares a resumable run: validates the program, assigns PCs,
// builds a fresh hierarchy, and seeds memory. No instruction executes
// until Resume.
func New(p *ir.Program, cfg mem.Config, opts Options) (*State, error) {
	f := p.Func
	if err := f.Validate(); err != nil {
		return nil, err
	}
	f.AssignPCs()

	h := mem.New(cfg, p.MemSize)
	if opts.InitMem != nil {
		opts.InitMem(h.Arena)
	}

	maxInstr := opts.MaxInstructions
	if maxInstr == 0 {
		maxInstr = defaultMaxInstructions
	}

	s := &State{
		prog:     p,
		f:        f,
		opts:     opts,
		h:        h,
		ring:     lbr.New(opts.LBRWidth),
		res:      &Result{Hier: h},
		maxInstr: maxInstr,
		sampling: opts.SamplePeriod > 0,
		cur:      f.Entry,
		prev:     ir.NoBlock,
	}
	s.nextSample = opts.SamplePeriod
	if opts.PEBSPeriod > 0 {
		s.res.PEBS = pebs.NewSampler(opts.PEBSPeriod)
	}
	s.regs = make([]int64, len(f.Instrs))
	s.growOperands(0)
	s.rebuildFirstPC()
	return s, nil
}

// growOperands extends the register file and the flat operand caches to
// cover values [from, len(f.Instrs)).
func (s *State) growOperands(from int) {
	fIns := s.f.Instrs
	for len(s.regs) < len(fIns) {
		s.regs = append(s.regs, 0)
	}
	for len(s.arg0) < len(fIns) {
		s.arg0 = append(s.arg0, 0)
		s.arg1 = append(s.arg1, 0)
	}
	for i := from; i < len(fIns); i++ {
		s.arg0[i], s.arg1[i] = 0, 0
		if a := fIns[i].Args; len(a) > 1 {
			s.arg0[i], s.arg1[i] = a[0], a[1]
		} else if len(a) == 1 {
			s.arg0[i] = a[0]
		}
	}
}

func (s *State) rebuildFirstPC() {
	if s.firstPC == nil {
		s.firstPC = make([]uint64, len(s.f.Blocks))
	}
	for _, b := range s.f.Blocks {
		if len(b.Instrs) > 0 {
			s.firstPC[b.ID] = s.f.Instrs[b.Instrs[0]].PC
		}
	}
}

// Checkpoint is the live architectural state observable at a block
// boundary: the cycle, retired instructions, and a snapshot of the PMU
// counters (including the memory-system stats) as they stand mid-run.
type Checkpoint struct {
	Cycle        uint64
	Instructions uint64
	Block        ir.BlockID // next block to execute
	Counters     pmu.Counters
	LBRSamples   int // snapshots taken so far
	Swaps        int // SwapPlan calls so far
}

// Checkpoint snapshots the run's observable state. Valid between Resume
// calls (at a block boundary) and after completion.
func (s *State) Checkpoint() Checkpoint {
	ctr := s.res.Counters
	ctr.Instructions = s.icount
	ctr.Cycles = s.cycle
	ctr.Mem = s.h.Stats
	return Checkpoint{
		Cycle:        s.cycle,
		Instructions: s.icount,
		Block:        s.cur,
		Counters:     ctr,
		LBRSamples:   len(s.res.LBRSamples),
		Swaps:        s.swaps,
	}
}

// Done reports whether the run retired (or failed terminally).
func (s *State) Done() bool { return s.done }

// Err returns the terminal error, if the run failed.
func (s *State) Err() error { return s.err }

// Cycle returns the current cycle count.
func (s *State) Cycle() uint64 { return s.cycle }

// Swaps returns how many SwapPlan calls have been applied.
func (s *State) Swaps() int { return s.swaps }

// Program returns the program under execution. SwapPlan mutates it in
// place, so the returned pointer observes swaps.
func (s *State) Program() *ir.Program { return s.prog }

// Result returns the run's result. Counters are final only once Done;
// use Checkpoint for a mid-run snapshot. LBRSamples and PEBS accumulate
// live and may be read between Resume calls. The Hierarchy is owned by
// the caller once the run finishes (release it via Result.Hier.Release).
func (s *State) Result() *Result { return s.res }

// MarkSwappable records that values [lo, hi) of the program are injected
// prefetch code that a later SwapPlan may remove and replace. Callers
// that inject an initial plan before New (the usual flow: build, inject,
// New) pass the instruction-count watermarks around the injection pass.
func (s *State) MarkSwappable(lo, hi int) {
	s.swapLo, s.swapHi = ir.Value(lo), ir.Value(hi)
}

// ErrFinished is returned by SwapPlan on a completed run.
var ErrFinished = errors.New("cpu: run already finished")

// SwapPlan hot-swaps the injected prefetch code at a checkpoint
// boundary. It removes the previously injected value range from the
// block layout (the values stay in the function body as unreferenced
// orphans — by construction prefetch slices are self-contained, nothing
// else consumes them), then calls inject to add the new slices, which
// must only append instructions (the passes.AptGet pass with KeepPCs
// set). New instructions get fresh PCs above every existing PC, so the
// PCs of original code — and with them live LBR/PEBS samples and plan
// provenance — stay stable across swaps.
//
// Two already-executed-code rules keep the swap deterministic: new
// constants are materialized into the register file immediately (the
// pass hoists them into the entry block, which has already run), and
// inject must place non-constant instructions only in blocks that still
// execute (loop bodies), which the injection pass does by construction.
func (s *State) SwapPlan(inject func(*ir.Func) error) error {
	if s.done {
		return ErrFinished
	}
	f := s.f

	// Drop the previous plan's instructions from the block layout.
	if s.swapHi > s.swapLo {
		lo, hi := s.swapLo, s.swapHi
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, v := range b.Instrs {
				if v < lo || v >= hi {
					kept = append(kept, v)
				}
			}
			b.Instrs = kept
		}
	}

	n0 := len(f.Instrs)
	var maxPC uint64
	for i := range f.Instrs {
		if f.Instrs[i].PC > maxPC {
			maxPC = f.Instrs[i].PC
		}
	}

	if err := inject(f); err != nil {
		// Roll back: nothing outside [n0, len) can reference the new
		// values, so trimming the layout and the body restores the
		// pre-swap program.
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, v := range b.Instrs {
				if int(v) < n0 {
					kept = append(kept, v)
				}
			}
			b.Instrs = kept
		}
		f.Instrs = f.Instrs[:n0]
		s.rebuildFirstPC()
		return err
	}

	// Fresh PCs for the new instructions, above every existing PC.
	for v := n0; v < len(f.Instrs); v++ {
		f.Instrs[v].PC = maxPC + 1 + uint64(v-n0)
	}

	s.growOperands(n0)

	// Materialize new constants: the pass hoists them into the entry
	// block, which already executed, so they would otherwise read as 0.
	for v := n0; v < len(f.Instrs); v++ {
		if f.Instrs[v].Op == ir.OpConst {
			s.regs[v] = f.Instrs[v].Imm
		}
	}

	s.rebuildFirstPC()
	s.swapLo, s.swapHi = ir.Value(n0), ir.Value(len(f.Instrs))
	s.swaps++
	return nil
}

// fail flushes what retired before the error and marks the run terminal.
func (s *State) fail(icount, cycle, nextSample uint64, prev, cur ir.BlockID, err error) (bool, error) {
	s.icount, s.cycle, s.nextSample = icount, cycle, nextSample
	s.prev, s.cur = prev, cur
	s.res.Counters.Instructions = icount
	s.res.Counters.Cycles = cycle
	s.res.Counters.Mem = s.h.Stats
	s.done, s.err = true, err
	return true, err
}

// Resume executes from the saved block cursor until the program retires
// (returns true) or, when stop is non-zero, until the cycle count
// reaches stop — pausing at the next basic-block boundary (returns
// false). A paused State resumes exactly where it left off; splitting a
// run across any number of Resume calls is counter-identical to one
// uninterrupted call.
func (s *State) Resume(stop uint64) (bool, error) {
	if s.done {
		return true, s.err
	}

	f := s.f
	h := s.h
	res := s.res
	ring := s.ring
	ctr := &res.Counters

	// Hot-loop locals, reloaded each Resume: the instruction table and
	// operand caches may have been regrown by SwapPlan, and the counts
	// live in locals (flushed on pause/retire) exactly as in a
	// single-shot run.
	fIns := f.Instrs
	regs := s.regs
	arg0, arg1 := s.arg0, s.arg1
	firstPC := s.firstPC
	sampling := s.sampling
	period := s.opts.SamplePeriod
	maxInstr := s.maxInstr
	icount := s.icount
	cycle := s.cycle
	nextSample := s.nextSample
	phiVals := s.phiVals

	prev := s.prev
	cur := f.Blocks[s.cur]

	for {
		// Checkpoint boundary: pause before entering the next block.
		if stop != 0 && cycle >= stop {
			s.icount, s.cycle, s.nextSample = icount, cycle, nextSample
			s.prev, s.cur = prev, cur.ID
			s.phiVals = phiVals
			return false, nil
		}

		instrs := cur.Instrs

		// Phase 1: phi resolution on block entry.
		nPhi := 0
		for _, v := range instrs {
			if fIns[v].Op != ir.OpPhi {
				break
			}
			nPhi++
		}
		if nPhi > 0 {
			phiVals = phiVals[:0]
			for i := 0; i < nPhi; i++ {
				ins := &fIns[instrs[i]]
				found := false
				for j, pb := range ins.PhiPreds {
					if pb == prev {
						phiVals = append(phiVals, regs[ins.Args[j]])
						found = true
						break
					}
				}
				if !found {
					return s.fail(icount, cycle, nextSample, prev, cur.ID,
						fmt.Errorf("cpu: %s: phi v%d has no incoming for pred b%d",
							f.Name, instrs[i], prev))
				}
			}
			for i := 0; i < nPhi; i++ {
				regs[instrs[i]] = phiVals[i]
			}
		}

		var nextBlock ir.BlockID = ir.NoBlock

		for idx := nPhi; idx < len(instrs); idx++ {
			v := instrs[idx]
			ins := &fIns[v]
			switch ins.Op {
			case ir.OpConst:
				regs[v] = ins.Imm
				cycle++

			case ir.OpAdd:
				regs[v] = regs[arg0[v]] + regs[arg1[v]]
				cycle++
			case ir.OpSub:
				regs[v] = regs[arg0[v]] - regs[arg1[v]]
				cycle++
			case ir.OpMul:
				regs[v] = regs[arg0[v]] * regs[arg1[v]]
				cycle += 3
			case ir.OpDiv:
				d := regs[arg1[v]]
				if d == 0 {
					regs[v] = 0
				} else {
					regs[v] = regs[arg0[v]] / d
				}
				cycle += 20
			case ir.OpRem:
				d := regs[arg1[v]]
				if d == 0 {
					regs[v] = 0
				} else {
					regs[v] = regs[arg0[v]] % d
				}
				cycle += 20
			case ir.OpAnd:
				regs[v] = regs[arg0[v]] & regs[arg1[v]]
				cycle++
			case ir.OpOr:
				regs[v] = regs[arg0[v]] | regs[arg1[v]]
				cycle++
			case ir.OpXor:
				regs[v] = regs[arg0[v]] ^ regs[arg1[v]]
				cycle++
			case ir.OpShl:
				regs[v] = regs[arg0[v]] << uint64(regs[arg1[v]]&63)
				cycle++
			case ir.OpShr:
				regs[v] = regs[arg0[v]] >> uint64(regs[arg1[v]]&63)
				cycle++

			case ir.OpCmp:
				if ins.Pred.Eval(regs[arg0[v]], regs[arg1[v]]) {
					regs[v] = 1
				} else {
					regs[v] = 0
				}
				cycle++
			case ir.OpSelect:
				if regs[arg0[v]] != 0 {
					regs[v] = regs[arg1[v]]
				} else {
					regs[v] = regs[ins.Args[2]]
				}
				cycle++

			case ir.OpLoad:
				addr := regs[arg0[v]]
				r := h.Access(cycle, ins.PC, addr, mem.KindLoad)
				cycle += r.Latency
				regs[v] = h.Arena.Read(addr, ins.Size)
				ctr.Loads++
				if res.PEBS != nil && r.LLCMiss {
					// Retired LLC-miss load: attribute the PC and the
					// *exposed* stall — the full memory latency for a
					// blocking miss, only the residual wait when the fill
					// was already in flight (the PEBS latency field).
					res.PEBS.ObserveMiss(ins.PC, r.Latency)
				}

			case ir.OpStore:
				addr := regs[arg0[v]]
				r := h.Access(cycle, ins.PC, addr, mem.KindStore)
				cycle += r.Latency
				h.Arena.Write(addr, regs[arg1[v]], ins.Size)
				ctr.Stores++

			case ir.OpPrefetch:
				addr := regs[arg0[v]]
				if addr >= 0 && addr < h.Arena.Size() {
					r := h.Access(cycle, ins.PC, addr, mem.KindSWPrefetch)
					cycle += r.Latency
				} else {
					// Out-of-bounds prefetch: real hardware drops it
					// without faulting; it still costs the issue slot.
					cycle++
				}
				ctr.SWPrefetches++

			case ir.OpBr:
				ctr.Branches++
				cycle++
				if regs[arg0[v]] != 0 {
					nextBlock = cur.Succs[0]
					ctr.TakenBranches++
					ring.Push(ins.PC, firstPC[nextBlock], cycle)
				} else {
					nextBlock = cur.Succs[1]
				}

			case ir.OpJmp:
				ctr.Branches++
				ctr.TakenBranches++
				cycle++
				nextBlock = cur.Succs[0]
				ring.Push(ins.PC, firstPC[nextBlock], cycle)

			case ir.OpRet:
				cycle++
				ctr.Instructions = icount + 1
				ctr.Cycles = cycle
				ctr.Mem = h.Stats
				s.icount, s.cycle, s.nextSample = icount+1, cycle, nextSample
				s.prev, s.cur = cur.ID, cur.ID
				s.phiVals = phiVals
				s.done = true
				return true, nil

			default:
				return s.fail(icount, cycle, nextSample, prev, cur.ID,
					fmt.Errorf("cpu: %s: unexecutable op %s at pc %d",
						f.Name, ins.Op, ins.PC))
			}

			icount++
			if icount > maxInstr {
				return s.fail(icount, cycle, nextSample, prev, cur.ID,
					fmt.Errorf("%w: %s after %d instructions",
						ErrInstructionLimit, f.Name, maxInstr))
			}
			if sampling && cycle >= nextSample {
				res.LBRSamples = append(res.LBRSamples, lbr.Sample{
					Cycle:   cycle,
					Entries: ring.Snapshot(),
				})
				// Re-arm on the fixed period grid, like the timer-driven
				// perf record this models: a long-latency miss that
				// overshoots the boundary must not push every later
				// sample, or miss-heavy phases get under-sampled.
				for nextSample <= cycle {
					nextSample += period
				}
			}
		}

		if nextBlock == ir.NoBlock {
			return s.fail(icount, cycle, nextSample, prev, cur.ID,
				fmt.Errorf("cpu: %s: block b%d fell through", f.Name, cur.ID))
		}
		prev = cur.ID
		cur = f.Blocks[nextBlock]
	}
}
