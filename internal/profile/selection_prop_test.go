package profile_test

import (
	"testing"

	"aptget/internal/pebs"
	"aptget/internal/profile"
	"aptget/internal/testkit"
)

// genCandidates builds a seed-deterministic share-gated candidate set:
// unique PCs, skewed sample counts, stall sums ranging from zero (an
// always-in-flight load) to fully exposed misses. Roughly one set in
// eight carries no stall data at all, exercising the legacy 1-D
// fallback.
func genCandidates(r *testkit.RNG) []pebs.Load {
	n := 1 + r.Intn(40)
	loads := make([]pebs.Load, n)
	legacy := r.Intn(8) == 0
	for i := range loads {
		samples := uint64(1 + r.Intn(1000))
		var stall uint64
		if !legacy && r.Intn(5) > 0 {
			stall = samples * uint64(r.Intn(300))
		}
		loads[i] = pebs.Load{
			PC:          uint64(4 + 4*i),
			Samples:     samples,
			StallCycles: stall,
		}
	}
	return loads
}

// shuffle permutes loads in place with the test's own RNG.
func shuffle(r *testkit.RNG, loads []pebs.Load) {
	for i := len(loads) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		loads[i], loads[j] = loads[j], loads[i]
	}
}

func keptPCs(loads []pebs.Load) map[uint64]bool {
	m := make(map[uint64]bool, len(loads))
	for _, l := range loads {
		m[l.PC] = true
	}
	return m
}

// TestSelectLoadsOrderIndependent: the gate plus SortByScore's total
// tie-break order make SelectLoads a pure function of the candidate
// *set* — any input permutation yields the identical ranked sequence.
func TestSelectLoadsOrderIndependent(t *testing.T) {
	r := testkit.NewRNG(0x5e1ec7)
	for trial := 0; trial < 200; trial++ {
		cand := genCandidates(r)
		instr := uint64(r.Intn(10_000_000))
		opt := profile.Options{PEBSPeriod: 7, MPKIOnly: r.Bool()}
		if r.Bool() {
			opt.MinLoadSCKPI = float64(r.Intn(200))
		}

		// A set with no stall data takes the legacy 1-D fallback even
		// when MPKIOnly is off; that path, like the explicit ablation,
		// preserves input order by design (ranked upstream by
		// Delinquent), so it is checked as a set rather than a sequence.
		oneD := opt.MPKIOnly
		if !oneD {
			oneD = true
			for _, l := range cand {
				if l.StallCycles > 0 {
					oneD = false
					break
				}
			}
		}

		ref := profile.SelectLoads(append([]pebs.Load(nil), cand...), instr, opt)
		for p := 0; p < 4; p++ {
			perm := append([]pebs.Load(nil), cand...)
			shuffle(r, perm)
			got := profile.SelectLoads(perm, instr, opt)
			if oneD {
				if len(got) != len(ref) {
					t.Fatalf("trial %d perm %d: kept %d loads, want %d",
						trial, p, len(got), len(ref))
				}
				want := keptPCs(ref)
				for _, l := range got {
					if !want[l.PC] {
						t.Fatalf("trial %d perm %d: pc %d kept under one order only",
							trial, p, l.PC)
					}
				}
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("trial %d perm %d: kept %d loads, want %d",
					trial, p, len(got), len(ref))
			}
			for i := range got {
				if got[i].PC != ref[i].PC {
					t.Fatalf("trial %d perm %d: rank %d is pc %d, want pc %d",
						trial, p, i, got[i].PC, ref[i].PC)
				}
				if got[i].Score != ref[i].Score {
					t.Fatalf("trial %d perm %d: pc %d scored %v vs %v",
						trial, p, got[i].PC, got[i].Score, ref[i].Score)
				}
			}
		}
	}
}

// TestSelectLoadsThresholdMonotone: raising the score gate never admits
// a load — the kept set at a higher MinLoadSCKPI is a subset of the
// kept set at any lower one. This is what makes the selection frontier
// (aptbench -exp selection) a genuine frontier rather than a scatter.
func TestSelectLoadsThresholdMonotone(t *testing.T) {
	r := testkit.NewRNG(0xf40)
	thresholds := []float64{-1, 1, 10, 25, 50, 100, 200, 1000}
	for trial := 0; trial < 200; trial++ {
		cand := genCandidates(r)
		instr := uint64(1 + r.Intn(10_000_000))
		prev := map[uint64]bool(nil) // kept set at the previous (lower) threshold
		for i, th := range thresholds {
			kept := keptPCs(profile.SelectLoads(
				append([]pebs.Load(nil), cand...), instr,
				profile.Options{PEBSPeriod: 7, MinLoadSCKPI: th}))
			if i > 0 {
				for pc := range kept {
					if !prev[pc] {
						t.Fatalf("trial %d: pc %d kept at gate %.0f but dropped at %.0f",
							trial, pc, th, thresholds[i-1])
					}
				}
			}
			prev = kept
		}
	}
}
