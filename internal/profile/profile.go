// Package profile orchestrates APT-GET's single profiling run (§3.4): it
// executes a program with LBR sampling and PEBS LLC-miss sampling enabled
// (the perf-record analog) and packages the raw samples for the analysis
// stage. The profiled binary is the *baseline* build — no software
// prefetches — exactly as in the paper's automated methodology.
package profile

import (
	"fmt"

	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
)

// Options controls profile collection.
type Options struct {
	// SamplePeriod is the LBR snapshot interval in cycles. The default
	// (100k cycles) stands in for perf record's 1 ms default on the
	// paper's 3 GHz-class machine, scaled to our shorter simulations.
	SamplePeriod uint64
	// PEBSPeriod samples every Nth LLC-miss load. A prime default avoids
	// aliasing with loop structure.
	PEBSPeriod uint64
	// DelinquentShare is the minimum fraction of LLC-miss samples a load
	// PC must account for to be optimized.
	DelinquentShare float64
	// MinLoadMPKI is the minimum estimated misses-per-kilo-instruction a
	// load must cause to be optimized. Applications (or inputs, e.g.
	// road networks with high spatial locality) that are not memory
	// bound produce loads below this gate, and injecting prefetches for
	// them is pure instruction overhead — the regression the paper's
	// profile-guided selection avoids. Default 0.5.
	MinLoadMPKI float64
	// LBRWidth overrides the branch-record depth (0 = 32, Intel LBR).
	LBRWidth int
	// Obs, when non-nil, receives the profiling stage's counters —
	// snapshots taken, PEBS samples, and how many delinquent-load
	// candidates the MPKI gate kept or dropped (aptbench -report).
	Obs *obs.Span
}

func (o *Options) fill() {
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 100_000
	}
	if o.PEBSPeriod == 0 {
		o.PEBSPeriod = 97
	}
	if o.DelinquentShare == 0 {
		o.DelinquentShare = 0.02
	}
	if o.MinLoadMPKI == 0 {
		o.MinLoadMPKI = 0.5
	}
}

// Profile is the result of a profiling run.
type Profile struct {
	Samples  []lbr.Sample
	Loads    []pebs.Load // delinquent loads, most-delinquent first
	Counters pmu.Counters
}

// Collect runs the program once with profiling hardware enabled.
// initMem seeds the simulated memory before execution.
func Collect(p *ir.Program, cfg mem.Config, initMem func(*mem.Arena), opt Options) (*Profile, error) {
	opt.fill()
	res, err := cpu.Run(p, cfg, cpu.Options{
		SamplePeriod: opt.SamplePeriod,
		PEBSPeriod:   opt.PEBSPeriod,
		LBRWidth:     opt.LBRWidth,
		InitMem:      initMem,
	})
	if err != nil {
		if res != nil {
			res.Hier.Release()
		}
		return nil, fmt.Errorf("profile: %w", err)
	}
	// The profiling run's memory is only needed while the program executes;
	// the samples and counters below are plain values. Recycle the arena.
	res.Hier.Release()
	loads := res.PEBS.Delinquent(opt.DelinquentShare)
	candidates := len(loads)
	// Gate on the absolute miss rate: each PEBS sample stands for
	// PEBSPeriod misses.
	if res.Counters.Instructions > 0 && opt.MinLoadMPKI > 0 {
		kept := loads[:0]
		kilo := float64(res.Counters.Instructions) / 1000
		for _, l := range loads {
			mpki := float64(l.Samples) * float64(opt.PEBSPeriod) / kilo
			if mpki >= opt.MinLoadMPKI {
				kept = append(kept, l)
			}
		}
		loads = kept
	}
	if sp := opt.Obs; sp != nil {
		sp.Set("cycles", int64(res.Counters.Cycles))
		sp.Set("instructions", int64(res.Counters.Instructions))
		sp.Set("lbr_samples", int64(len(res.LBRSamples)))
		var entries int64
		for _, s := range res.LBRSamples {
			entries += int64(len(s.Entries))
		}
		sp.Set("lbr_entries", entries)
		sp.Set("pebs_samples", int64(res.PEBS.Samples()))
		sp.Set("loads_candidates", int64(candidates))
		sp.Set("loads_kept", int64(len(loads)))
		sp.Set("loads_dropped_mpki", int64(candidates-len(loads)))
	}
	return &Profile{
		Samples:  res.LBRSamples,
		Loads:    loads,
		Counters: res.Counters,
	}, nil
}
