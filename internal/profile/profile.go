// Package profile orchestrates APT-GET's single profiling run (§3.4): it
// executes a program with LBR sampling and PEBS LLC-miss sampling enabled
// (the perf-record analog) and packages the raw samples for the analysis
// stage. The profiled binary is the *baseline* build — no software
// prefetches — exactly as in the paper's automated methodology.
package profile

import (
	"fmt"

	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
)

// Options controls profile collection.
type Options struct {
	// SamplePeriod is the LBR snapshot interval in cycles. The default
	// (100k cycles) stands in for perf record's 1 ms default on the
	// paper's 3 GHz-class machine, scaled to our shorter simulations.
	SamplePeriod uint64
	// PEBSPeriod samples every Nth LLC-miss load. A prime default avoids
	// aliasing with loop structure.
	PEBSPeriod uint64
	// DelinquentShare is the minimum fraction of LLC-miss samples a load
	// PC must account for to be optimized.
	DelinquentShare float64
	// MinLoadSCKPI is the default (2-D) selection gate: the minimum
	// estimated stall cycles per kilo-instruction a load must cost to be
	// optimized. The score is miss_rate × mean_exposed_latency — a load
	// whose misses are frequent but almost fully hidden by in-flight
	// fills scores low, while a rare load whose every miss exposes the
	// full DRAM latency scores high. The default (50) keeps loads that
	// burn ≥5% of a CPI-1 baseline's cycles in exposed stalls; negative
	// disables the gate (rank only).
	MinLoadSCKPI float64
	// MPKIOnly reverts to the 1-D ablation path: gate on MinLoadMPKI
	// alone and rank by sample count, ignoring exposed latency — the
	// pre-2-D behavior, kept for the selection frontier experiment.
	MPKIOnly bool
	// MinLoadMPKI is the 1-D gate's minimum estimated
	// misses-per-kilo-instruction (used when MPKIOnly is set).
	// Applications (or inputs, e.g. road networks with high spatial
	// locality) that are not memory bound produce loads below this gate,
	// and injecting prefetches for them is pure instruction overhead —
	// the regression the paper's profile-guided selection avoids.
	// Default 0.5.
	MinLoadMPKI float64
	// LBRWidth overrides the branch-record depth (0 = 32, Intel LBR).
	LBRWidth int
	// Obs, when non-nil, receives the profiling stage's counters —
	// snapshots taken, PEBS samples, and how many delinquent-load
	// candidates the selection gate kept or dropped (aptbench -report).
	Obs *obs.Span
}

func (o *Options) fill() {
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 100_000
	}
	if o.PEBSPeriod == 0 {
		o.PEBSPeriod = 97
	}
	if o.DelinquentShare == 0 {
		o.DelinquentShare = 0.02
	}
	if o.MinLoadSCKPI == 0 {
		o.MinLoadSCKPI = 50
	}
	if o.MinLoadMPKI == 0 {
		o.MinLoadMPKI = 0.5
	}
}

// Profile is the result of a profiling run.
type Profile struct {
	Samples  []lbr.Sample
	Loads    []pebs.Load // delinquent loads, highest selection score first
	Counters pmu.Counters
}

// SelectLoads applies the delinquent-load selection gate to share-gated
// candidates: it fills each load's Score (estimated stall cycles per
// kilo-instruction), drops loads below the configured gate, and returns
// the survivors ranked for the analysis stage. Both the offline
// profiling stage and the online re-planning controller run their
// candidates through this one function, so the two paths cannot drift.
//
// The candidates slice is mutated (scores filled, survivors compacted
// in place).
func SelectLoads(candidates []pebs.Load, instructions uint64, opt Options) []pebs.Load {
	opt.fill()
	kilo := float64(instructions) / 1000
	for i := range candidates {
		l := &candidates[i]
		if kilo > 0 {
			// samples × period / kilo-instructions = estimated MPKI;
			// × mean exposed latency = estimated stall cycles per
			// kilo-instruction. The two factors fold into one exact
			// expression over the stall sum.
			l.Score = float64(l.StallCycles) * float64(opt.PEBSPeriod) / kilo
		}
	}
	// A profile whose candidates carry no stall data predates latency
	// sampling (a legacy wire frame): every 2-D score would be zero and
	// the gate would drop the whole profile. Fall back to the 1-D path.
	legacy := len(candidates) > 0
	for i := range candidates {
		if candidates[i].StallCycles > 0 {
			legacy = false
			break
		}
	}
	if opt.MPKIOnly || legacy {
		// 1-D ablation: the pre-2-D MPKI floor, ranked by sample count
		// (the order Delinquent already returns).
		if instructions == 0 || opt.MinLoadMPKI <= 0 {
			return candidates
		}
		kept := candidates[:0]
		for _, l := range candidates {
			mpki := float64(l.Samples) * float64(opt.PEBSPeriod) / kilo
			if mpki >= opt.MinLoadMPKI {
				kept = append(kept, l)
			}
		}
		return kept
	}
	kept := candidates
	if instructions > 0 && opt.MinLoadSCKPI > 0 {
		kept = candidates[:0]
		for _, l := range candidates {
			if l.Score >= opt.MinLoadSCKPI {
				kept = append(kept, l)
			}
		}
	}
	pebs.SortByScore(kept)
	return kept
}

// Collect runs the program once with profiling hardware enabled.
// initMem seeds the simulated memory before execution.
func Collect(p *ir.Program, cfg mem.Config, initMem func(*mem.Arena), opt Options) (*Profile, error) {
	opt.fill()
	res, err := cpu.Run(p, cfg, cpu.Options{
		SamplePeriod: opt.SamplePeriod,
		PEBSPeriod:   opt.PEBSPeriod,
		LBRWidth:     opt.LBRWidth,
		InitMem:      initMem,
	})
	if err != nil {
		if res != nil {
			res.Hier.Release()
		}
		return nil, fmt.Errorf("profile: %w", err)
	}
	// The profiling run's memory is only needed while the program executes;
	// the samples and counters below are plain values. Recycle the arena.
	res.Hier.Release()
	loads := res.PEBS.Delinquent(opt.DelinquentShare)
	candidates := len(loads)
	loads = SelectLoads(loads, res.Counters.Instructions, opt)
	if sp := opt.Obs; sp != nil {
		sp.Set("cycles", int64(res.Counters.Cycles))
		sp.Set("instructions", int64(res.Counters.Instructions))
		sp.Set("lbr_samples", int64(len(res.LBRSamples)))
		var entries int64
		for _, s := range res.LBRSamples {
			entries += int64(len(s.Entries))
		}
		sp.Set("lbr_entries", entries)
		sp.Set("pebs_samples", int64(res.PEBS.Samples()))
		sp.Set("loads_candidates", int64(candidates))
		sp.Set("loads_kept", int64(len(loads)))
		if opt.MPKIOnly {
			sp.Set("selection_mpki_only", 1)
			sp.Set("loads_dropped_mpki", int64(candidates-len(loads)))
		} else {
			sp.Set("selection_2d", 1)
			sp.Set("loads_dropped_score", int64(candidates-len(loads)))
		}
	}
	return &Profile{
		Samples:  res.LBRSamples,
		Loads:    loads,
		Counters: res.Counters,
	}, nil
}
