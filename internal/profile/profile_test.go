package profile

import (
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// buildIndirect returns a single-loop indirect kernel out += T[B[i]].
func buildIndirect(n, table int64) (*ir.Program, ir.Array, ir.Array) {
	b := ir.NewBuilder("prof")
	bArr := b.Alloc("B", n, 8)
	tArr := b.Alloc("T", table, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(n), 1, func(i ir.Value) {
		idx := b.LoadElem(bArr, i)
		v := b.LoadElem(tArr, idx)
		acc := b.LoadElem(out, zero)
		b.StoreElem(out, zero, b.Add(acc, v))
	})
	return b.Finish(), bArr, tArr
}

func initMem(bArr, tArr ir.Array) func(*mem.Arena) {
	return func(a *mem.Arena) {
		rng := rand.New(rand.NewSource(3))
		for i := int64(0); i < bArr.Count; i++ {
			a.Write(bArr.Addr(i), rng.Int63n(tArr.Count), 8)
		}
	}
}

func TestCollectGathersSamplesAndLoads(t *testing.T) {
	p, bArr, tArr := buildIndirect(16384, 1<<17)
	prof, err := Collect(p, mem.ConfigScaled(), initMem(bArr, tArr), Options{
		SamplePeriod: 20_000,
		PEBSPeriod:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) < 10 {
		t.Fatalf("too few LBR samples: %d", len(prof.Samples))
	}
	if len(prof.Loads) == 0 {
		t.Fatal("no delinquent loads")
	}
	// The top load must dominate the miss profile (only T[B[i]] misses).
	if prof.Loads[0].Share < 0.5 {
		t.Fatalf("top load share %.2f, want > 0.5", prof.Loads[0].Share)
	}
	if prof.Counters.Cycles == 0 {
		t.Fatal("counters missing")
	}
}

func TestCollectDefaultsApplied(t *testing.T) {
	var o Options
	o.fill()
	if o.SamplePeriod == 0 || o.PEBSPeriod == 0 || o.DelinquentShare == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestCollectHonoursDelinquentShare(t *testing.T) {
	p, bArr, tArr := buildIndirect(16384, 1<<17)
	strict, err := Collect(p, mem.ConfigScaled(), initMem(bArr, tArr), Options{
		SamplePeriod:    20_000,
		PEBSPeriod:      11,
		DelinquentShare: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, bArr2, tArr2 := buildIndirect(16384, 1<<17)
	loose, err := Collect(p2, mem.ConfigScaled(), initMem(bArr2, tArr2), Options{
		SamplePeriod:    20_000,
		PEBSPeriod:      11,
		DelinquentShare: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Loads) > len(loose.Loads) {
		t.Fatalf("stricter share produced more loads: %d vs %d",
			len(strict.Loads), len(loose.Loads))
	}
}

func TestCollectPropagatesBuildErrors(t *testing.T) {
	// An invalid program must surface an error, not a panic.
	f := ir.NewFunc("bad")
	bb := f.NewBlock("entry")
	f.Entry = bb.ID
	f.AddInstr(bb, ir.Instr{Op: ir.OpConst, Imm: 1}) // unterminated
	p := ir.NewProgram(f)
	if _, err := Collect(p, mem.ConfigScaled(), nil, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}
