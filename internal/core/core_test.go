package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// microWorkload is a minimal Workload: the nested indirect kernel with a
// native Go reference.
type microWorkload struct {
	outer, inner, table int64
	seed                int64

	bArr, tArr, out ir.Array
}

func (m *microWorkload) Name() string { return "micro" }

func (m *microWorkload) Build() (*ir.Program, error) {
	b := ir.NewBuilder("micro")
	m.bArr = b.Alloc("B", m.outer*m.inner, 8)
	m.tArr = b.Alloc("T", m.table, 8)
	m.out = b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(m.outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(m.inner))
		b.Loop("j", zero, b.Const(m.inner), 1, func(j ir.Value) {
			idx := b.LoadElem(m.bArr, b.Add(base, j))
			v := b.LoadElem(m.tArr, idx)
			acc := b.LoadElem(m.out, zero)
			b.StoreElem(m.out, zero, b.Add(acc, v))
		})
	})
	return b.Finish(), nil
}

func (m *microWorkload) data() ([]int64, []int64) {
	rng := rand.New(rand.NewSource(m.seed))
	bs := make([]int64, m.outer*m.inner)
	ts := make([]int64, m.table)
	for i := range bs {
		bs[i] = rng.Int63n(m.table)
	}
	for i := range ts {
		ts[i] = int64(i % 17)
	}
	return bs, ts
}

func (m *microWorkload) InitMem(a *mem.Arena) {
	bs, ts := m.data()
	for i, v := range bs {
		a.Write(m.bArr.Addr(int64(i)), v, 8)
	}
	for i, v := range ts {
		a.Write(m.tArr.Addr(int64(i)), v, 8)
	}
}

func (m *microWorkload) Verify(a *mem.Arena) error {
	bs, ts := m.data()
	var want int64
	for _, idx := range bs {
		want += ts[idx]
	}
	if got := a.Read(m.out.Addr(0), 8); got != want {
		return fmt.Errorf("sum = %d, want %d", got, want)
	}
	return nil
}

func newMicro(outer, inner int64) *microWorkload {
	return &microWorkload{outer: outer, inner: inner, table: 1 << 18, seed: 21}
}

func TestCompareThreeWay(t *testing.T) {
	w := newMicro(4096, 4)
	cmp, err := Compare(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Base.Variant != "baseline" || cmp.Static.Variant != "ainsworth-jones" ||
		cmp.AptGet.Variant != "apt-get" {
		t.Fatal("variant labels wrong")
	}
	// The paper's headline shape: APT-GET ≥ static on a small-trip
	// nested kernel (static is stuck in the inner loop with distance 32).
	sApt, sStatic := cmp.AptGetSpeedup(), cmp.StaticSpeedup()
	if sApt < 1.2 {
		t.Fatalf("APT-GET speedup %.2fx too small", sApt)
	}
	if sApt <= sStatic {
		t.Fatalf("APT-GET (%.2fx) should beat static (%.2fx) on trip-4 loops", sApt, sStatic)
	}
	if cmp.AptGet.Report == nil || cmp.AptGet.Report.Injected == 0 {
		t.Fatal("apt-get should have injected slices")
	}
	if len(cmp.AptGet.Plans) == 0 {
		t.Fatal("plans missing from result")
	}
}

func TestVerificationCatchesBadResults(t *testing.T) {
	w := newMicro(8, 8)
	w.table = 1 << 10
	bad := &brokenWorkload{w}
	if _, err := RunBaseline(bad, DefaultConfig()); err == nil {
		t.Fatal("verification should fail for the broken workload")
	}
}

// brokenWorkload corrupts Verify to prove the pipeline checks results.
type brokenWorkload struct{ *microWorkload }

func (b *brokenWorkload) Verify(*mem.Arena) error {
	return fmt.Errorf("intentionally broken")
}

func TestRunWithPlansCrossInput(t *testing.T) {
	// Figure 12's mechanism: plans from a train input applied to a test
	// input of the same program structure.
	train := newMicro(4096, 4)
	test := newMicro(4096, 4)
	test.seed = 99 // different data

	cfg := DefaultConfig()
	_, plans, err := ProfileAndPlan(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	baseTest, err := RunBaseline(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optTest, err := RunWithPlans(test, plans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp := optTest.Speedup(baseTest); sp < 1.2 {
		t.Fatalf("train-plans should transfer to test input, got %.2fx", sp)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := GeoMean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("geomean(3) = %v", g)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.Machine.Name == "" {
		t.Fatal("machine default missing")
	}
	if cfg.Analysis.DRAMLatency != float64(cfg.Machine.DRAMLatency) {
		t.Fatal("analysis DRAM latency should track the machine config")
	}
}

func TestBaselineDeterministicAcrossCalls(t *testing.T) {
	w := newMicro(64, 16)
	cfg := DefaultConfig()
	r1, err := RunBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters.Cycles != r2.Counters.Cycles ||
		r1.Counters.Instructions != r2.Counters.Instructions {
		t.Fatal("pipeline runs must be deterministic")
	}
}
