package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/obs"
)

// microWorkload is a minimal Workload: the nested indirect kernel with a
// native Go reference.
type microWorkload struct {
	outer, inner, table int64
	seed                int64

	bArr, tArr, out ir.Array
}

func (m *microWorkload) Name() string { return "micro" }

func (m *microWorkload) Build() (*ir.Program, error) {
	b := ir.NewBuilder("micro")
	m.bArr = b.Alloc("B", m.outer*m.inner, 8)
	m.tArr = b.Alloc("T", m.table, 8)
	m.out = b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(m.outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(m.inner))
		b.Loop("j", zero, b.Const(m.inner), 1, func(j ir.Value) {
			idx := b.LoadElem(m.bArr, b.Add(base, j))
			v := b.LoadElem(m.tArr, idx)
			acc := b.LoadElem(m.out, zero)
			b.StoreElem(m.out, zero, b.Add(acc, v))
		})
	})
	return b.Finish(), nil
}

func (m *microWorkload) data() ([]int64, []int64) {
	rng := rand.New(rand.NewSource(m.seed))
	bs := make([]int64, m.outer*m.inner)
	ts := make([]int64, m.table)
	for i := range bs {
		bs[i] = rng.Int63n(m.table)
	}
	for i := range ts {
		ts[i] = int64(i % 17)
	}
	return bs, ts
}

func (m *microWorkload) InitMem(a *mem.Arena) {
	bs, ts := m.data()
	for i, v := range bs {
		a.Write(m.bArr.Addr(int64(i)), v, 8)
	}
	for i, v := range ts {
		a.Write(m.tArr.Addr(int64(i)), v, 8)
	}
}

func (m *microWorkload) Verify(a *mem.Arena) error {
	bs, ts := m.data()
	var want int64
	for _, idx := range bs {
		want += ts[idx]
	}
	if got := a.Read(m.out.Addr(0), 8); got != want {
		return fmt.Errorf("sum = %d, want %d", got, want)
	}
	return nil
}

func newMicro(outer, inner int64) *microWorkload {
	return &microWorkload{outer: outer, inner: inner, table: 1 << 18, seed: 21}
}

func TestCompareThreeWay(t *testing.T) {
	w := newMicro(4096, 4)
	cmp, err := Compare(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Base.Variant != "baseline" || cmp.Static.Variant != "ainsworth-jones" ||
		cmp.AptGet.Variant != "apt-get" {
		t.Fatal("variant labels wrong")
	}
	// The paper's headline shape: APT-GET ≥ static on a small-trip
	// nested kernel (static is stuck in the inner loop with distance 32).
	sApt, sStatic := cmp.AptGetSpeedup(), cmp.StaticSpeedup()
	if sApt < 1.2 {
		t.Fatalf("APT-GET speedup %.2fx too small", sApt)
	}
	if sApt <= sStatic {
		t.Fatalf("APT-GET (%.2fx) should beat static (%.2fx) on trip-4 loops", sApt, sStatic)
	}
	if cmp.AptGet.Report == nil || cmp.AptGet.Report.Injected == 0 {
		t.Fatal("apt-get should have injected slices")
	}
	if len(cmp.AptGet.Plans) == 0 {
		t.Fatal("plans missing from result")
	}
}

func TestVerificationCatchesBadResults(t *testing.T) {
	w := newMicro(8, 8)
	w.table = 1 << 10
	bad := &brokenWorkload{w}
	if _, err := RunBaseline(bad, DefaultConfig()); err == nil {
		t.Fatal("verification should fail for the broken workload")
	}
}

// brokenWorkload corrupts Verify to prove the pipeline checks results.
type brokenWorkload struct{ *microWorkload }

func (b *brokenWorkload) Verify(*mem.Arena) error {
	return fmt.Errorf("intentionally broken")
}

func TestRunWithPlansCrossInput(t *testing.T) {
	// Figure 12's mechanism: plans from a train input applied to a test
	// input of the same program structure.
	train := newMicro(4096, 4)
	test := newMicro(4096, 4)
	test.seed = 99 // different data

	cfg := DefaultConfig()
	_, plans, err := ProfileAndPlan(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	baseTest, err := RunBaseline(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optTest, err := RunWithPlans(test, plans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp := optTest.Speedup(baseTest); sp < 1.2 {
		t.Fatalf("train-plans should transfer to test input, got %.2fx", sp)
	}
}

// TestPipelineProvenanceExplainsDecisions checks that RunPipeline
// attaches one provenance record per plan carrying the Equation (1)/(2)
// inputs, and that the recorded decision is re-derivable from them.
func TestPipelineProvenanceExplainsDecisions(t *testing.T) {
	w := newMicro(4096, 4)
	res, err := RunPipeline(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("no plans")
	}
	if len(res.Provenance) != len(res.Plans) {
		t.Fatalf("provenance records = %d, want one per plan (%d)",
			len(res.Provenance), len(res.Plans))
	}
	for i, rec := range res.Provenance {
		if rec.LoadPC != res.Plans[i].LoadPC {
			t.Fatalf("record %d is for PC %d, plan has %d", i, rec.LoadPC, res.Plans[i].LoadPC)
		}
		if rec.Distance < 1 {
			t.Fatalf("record %d: distance %d < 1", i, rec.Distance)
		}
		if rec.Site != "inner" && rec.Site != "outer" {
			t.Fatalf("record %d: bad site %q", i, rec.Site)
		}
		if rec.K <= 0 {
			t.Fatalf("record %d: Equation (2) factor K missing", i)
		}
		if rec.Fallback != "" {
			continue // fallback plans legitimately lack model inputs
		}
		if rec.LatencySamples == 0 || len(rec.PeaksInner) == 0 {
			t.Fatalf("record %d: model inputs missing without a fallback: %+v", i, rec)
		}
		if rec.IC <= 0 || rec.MC <= 0 {
			t.Fatalf("record %d: IC/MC not recorded: %+v", i, rec)
		}
		switch rec.Site {
		case "inner":
			// Equation (1): distance = ceil(MC/IC), modulo the
			// [1, MaxDistance] clamp and the non-affine overhead solve.
			want := int64(math.Ceil(rec.MC / rec.IC))
			if want < 1 {
				want = 1
			}
			if rec.Distance > want {
				t.Fatalf("record %d: inner distance %d exceeds ceil(%.0f/%.0f)=%d",
					i, rec.Distance, rec.MC, rec.IC, want)
			}
		case "outer":
			// Equation (2): outer injection is chosen precisely when the
			// trip count cannot cover K × inner distance.
			if rec.AvgTrip >= float64(rec.K)*float64(rec.InnerDistance) {
				t.Fatalf("record %d: outer site but trip %.1f covers K(%d)×innerD(%d)",
					i, rec.AvgTrip, rec.K, rec.InnerDistance)
			}
			if rec.Distance != rec.OuterDistance {
				t.Fatalf("record %d: outer site distance %d ≠ recorded outer distance %d",
					i, rec.Distance, rec.OuterDistance)
			}
		}
	}
}

// TestPipelineSpansRecorded runs the full pipeline with the obs registry
// enabled and checks one span per stage lands in the snapshot, in
// pipeline order, carrying the stage's headline counters.
func TestPipelineSpansRecorded(t *testing.T) {
	obs.Enable()
	obs.Reset()
	defer obs.Disable()

	w := newMicro(256, 4)
	res, err := RunPipeline(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	rep := obs.Snapshot()
	byStage := map[string]obs.Record{}
	var order []string
	for _, r := range rep.Records {
		if r.Scope == "micro/apt-get" {
			byStage[r.Stage] = r
			order = append(order, r.Stage)
		}
	}
	wantOrder := []string{obs.StageProfile, obs.StageAnalysis, obs.StageInject, obs.StageExecute}
	if len(order) != len(wantOrder) {
		t.Fatalf("stages recorded for micro/apt-get: %v, want %v", order, wantOrder)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("stage order %v, want %v", order, wantOrder)
		}
	}
	if byStage[obs.StageProfile].Counters["lbr_samples"] == 0 {
		t.Fatalf("profile span missing lbr_samples: %+v", byStage[obs.StageProfile])
	}
	an := byStage[obs.StageAnalysis]
	if an.Counters["plans"] != int64(len(res.Plans)) {
		t.Fatalf("analysis span plans = %d, result has %d", an.Counters["plans"], len(res.Plans))
	}
	if len(an.Plans) != len(res.Plans) {
		t.Fatalf("analysis span carries %d plan records, want %d", len(an.Plans), len(res.Plans))
	}
	ex := byStage[obs.StageExecute]
	if ex.Counters["cycles"] == 0 || ex.Counters["instructions"] == 0 {
		t.Fatalf("execute span missing PMU counters: %+v", ex.Counters)
	}
	if ex.Metrics["ipc"] <= 0 {
		t.Fatalf("execute span missing ipc metric: %+v", ex.Metrics)
	}
}

// TestPipelineProvenanceWithoutObs checks provenance is filled even when
// the registry is disabled (the default for experiment runs).
func TestPipelineProvenanceWithoutObs(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("registry unexpectedly enabled")
	}
	res, err := RunPipeline(newMicro(256, 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Provenance) == 0 || len(res.Provenance) != len(res.Plans) {
		t.Fatalf("provenance should not depend on the obs registry: %d records, %d plans",
			len(res.Provenance), len(res.Plans))
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := GeoMean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("geomean(3) = %v", g)
	}
	// A sweep-sized slice of large ratios: the naive product overflows
	// float64 after ~51 elements of 1e6 and reports +Inf.
	big := make([]float64, 400)
	for i := range big {
		big[i] = 1e6
	}
	if g := GeoMean(big); math.IsInf(g, 1) || math.Abs(g-1e6) > 1e-3 {
		t.Fatalf("geomean of 400 x 1e6 = %v, want 1e6", g)
	}
	// And the mirror case: many small ratios underflow the product to 0.
	small := make([]float64, 400)
	for i := range small {
		small[i] = 1e-6
	}
	if g := GeoMean(small); g == 0 || math.Abs(g-1e-6) > 1e-15 {
		t.Fatalf("geomean of 400 x 1e-6 = %v, want 1e-6", g)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.Machine.Name == "" {
		t.Fatal("machine default missing")
	}
	if cfg.Analysis.DRAMLatency != float64(cfg.Machine.DRAMLatency) {
		t.Fatal("analysis DRAM latency should track the machine config")
	}
}

func TestBaselineDeterministicAcrossCalls(t *testing.T) {
	w := newMicro(64, 16)
	cfg := DefaultConfig()
	r1, err := RunBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBaseline(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters.Cycles != r2.Counters.Cycles ||
		r1.Counters.Instructions != r2.Counters.Instructions {
		t.Fatal("pipeline runs must be deterministic")
	}
}
