// Package core is the paper's primary contribution assembled into a
// pipeline: profile an application once with LBR+PEBS sampling (§3.1,
// §3.4), derive per-delinquent-load prefetch distances and injection
// sites from the analytical model (§3.2–§3.3), inject prefetch slices
// with the compiler pass (§3.5), and run the optimized build. The static
// Ainsworth & Jones pass and the no-prefetching baseline are provided as
// the paper's comparison points (§4.1).
package core

import (
	"fmt"
	"math"

	"aptget/internal/analysis"
	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/passes"
	"aptget/internal/pmu"
	"aptget/internal/profile"
	"aptget/internal/runner"
)

// Workload is an application under optimization. Build must be
// deterministic: repeated calls produce structurally identical programs
// (same instruction order, hence same PCs), so plans computed on one
// build apply to another. InitMem seeds the data; Verify checks the
// computation's result against a native Go reference implementation.
type Workload interface {
	Name() string
	Build() (*ir.Program, error)
	InitMem(*mem.Arena)
	Verify(*mem.Arena) error
}

// Config bundles the knobs of the whole pipeline.
type Config struct {
	Machine  mem.Config
	Profile  profile.Options
	Analysis analysis.Options
	Inject   passes.AptGetOptions
	Static   passes.StaticOptions

	// SkipVerify disables result verification (benchmark sweeps where
	// the same workload is verified once already).
	SkipVerify bool

	// MaxInstructions bounds each execution (0 = the cpu default guard).
	MaxInstructions uint64
}

// DefaultConfig returns the configuration used throughout the evaluation:
// the scaled Table 2 machine with default profiling and analysis options.
func DefaultConfig() Config {
	return Config{Machine: mem.ConfigScaled()}
}

func (c *Config) fill() {
	if c.Machine.Name == "" {
		c.Machine = mem.ConfigScaled()
	}
	if c.Analysis.DRAMLatency == 0 {
		c.Analysis.DRAMLatency = float64(c.Machine.DRAMLatency)
	}
}

// Result is the outcome of running one build of a workload.
type Result struct {
	Variant  string // "baseline", "ainsworth-jones", "apt-get", ...
	Counters pmu.Counters
	Report   *passes.Report  // injection report; nil for the baseline
	Plans    []analysis.Plan // apt-get only

	// Provenance carries one record per plan explaining *why* each
	// distance and injection site was chosen — the Equation (1)/(2)
	// inputs (peaks, IC, MC, trip count, K) and any fallback reason.
	// Filled for apt-get results regardless of whether the obs registry
	// is enabled, so experiments can assert on decisions directly.
	Provenance []obs.PlanRecord
}

// Speedup returns base.Cycles / r.Cycles.
func (r *Result) Speedup(base *Result) float64 {
	return r.Counters.Speedup(&base.Counters)
}

// RunBaseline executes the unmodified program.
func RunBaseline(w Workload, cfg Config) (*Result, error) {
	cfg.fill()
	p, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", w.Name(), err)
	}
	return execute(w, p, cfg, "baseline", nil, nil)
}

// RunStatic applies the Ainsworth & Jones static pass and executes the
// result.
func RunStatic(w Workload, cfg Config) (*Result, error) {
	cfg.fill()
	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	sp := obs.Begin(w.Name()+"/ainsworth-jones", obs.StageInject)
	sopt := cfg.Static
	sopt.Obs = sp
	rep, err := passes.AinsworthJones(p, sopt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: static pass on %s: %w", w.Name(), err)
	}
	return execute(w, p, cfg, "ainsworth-jones", rep, nil)
}

// ProfileAndPlan runs the profiling build and the analytical model,
// returning the prefetch plans (and the raw profile for inspection).
func ProfileAndPlan(w Workload, cfg Config) (*profile.Profile, []analysis.Plan, error) {
	cfg.fill()
	scope := w.Name() + "/apt-get"
	p, err := w.Build()
	if err != nil {
		return nil, nil, err
	}
	sp := obs.Begin(scope, obs.StageProfile)
	popt := cfg.Profile
	popt.Obs = sp
	prof, err := profile.Collect(p, cfg.Machine, w.InitMem, popt)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: profiling %s: %w", w.Name(), err)
	}
	sp = obs.Begin(scope, obs.StageAnalysis)
	aopt := cfg.Analysis
	aopt.Obs = sp
	plans, err := analysis.Analyze(p, prof, aopt)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: analyzing %s: %w", w.Name(), err)
	}
	return prof, plans, nil
}

// RunAptGet runs the full APT-GET pipeline: profile, analyze, inject,
// execute. It is RunPipeline under the evaluation's historical name.
func RunAptGet(w Workload, cfg Config) (*Result, error) {
	return RunPipeline(w, cfg)
}

// RunPipeline is the paper's end-to-end flow: profile once, derive
// plans from the analytical model, inject the prefetch slices, and run
// the optimized build. Each stage opens an obs span scoped to the
// workload, and the returned Result carries per-plan provenance so a
// caller can audit why each distance and site was chosen.
func RunPipeline(w Workload, cfg Config) (*Result, error) {
	cfg.fill()
	_, plans, err := ProfileAndPlan(w, cfg)
	if err != nil {
		return nil, err
	}
	return RunWithPlans(w, plans, cfg)
}

// RunWithPlans injects the given plans into a fresh build of w and
// executes it. Used directly for the paper's train/test input study
// (Figure 12): plans computed on the training input are applied to a
// workload with a different dataset.
func RunWithPlans(w Workload, plans []analysis.Plan, cfg Config) (*Result, error) {
	cfg.fill()
	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	sp := obs.Begin(w.Name()+"/apt-get", obs.StageInject)
	iopt := cfg.Inject
	iopt.Obs = sp
	rep, err := passes.AptGet(p, plans, iopt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: apt-get pass on %s: %w", w.Name(), err)
	}
	res, err := execute(w, p, cfg, "apt-get", rep, plans)
	if err != nil {
		return nil, err
	}
	res.Provenance = make([]obs.PlanRecord, len(plans))
	for i := range plans {
		res.Provenance[i] = plans[i].Record(cfg.Analysis)
	}
	return res, nil
}

func execute(w Workload, p *ir.Program, cfg Config, variant string,
	rep *passes.Report, plans []analysis.Plan) (*Result, error) {

	sp := obs.Begin(w.Name()+"/"+variant, obs.StageExecute)
	res, err := cpu.Run(p, cfg.Machine, cpu.Options{
		InitMem:         w.InitMem,
		MaxInstructions: cfg.MaxInstructions,
	})
	if err != nil {
		sp.End()
		// An execution error still returns the hierarchy; recycle its
		// arena so failed runs don't bleed the pool dry.
		if res != nil {
			res.Hier.Release()
		}
		return nil, fmt.Errorf("core: running %s (%s): %w", w.Name(), variant, err)
	}
	if sp != nil {
		sp.SetAll(res.Counters.Export())
		for k, v := range res.Counters.ExportMetrics() {
			sp.SetMetric(k, v)
		}
	}
	sp.End()
	if !cfg.SkipVerify {
		if err := w.Verify(res.Hier.Arena); err != nil {
			res.Hier.Release()
			return nil, fmt.Errorf("core: %s (%s) computed a wrong result: %w",
				w.Name(), variant, err)
		}
	}
	// Verification was the last reader of the simulated memory: recycle
	// the arena for the next run of this workload size.
	res.Hier.Release()
	return &Result{
		Variant:  variant,
		Counters: res.Counters,
		Report:   rep,
		Plans:    plans,
	}, nil
}

// Comparison is the three-way result the paper's headline figures use.
type Comparison struct {
	Workload string
	Base     *Result
	Static   *Result
	AptGet   *Result
}

// StaticSpeedup returns the Ainsworth & Jones speedup over baseline.
func (c *Comparison) StaticSpeedup() float64 { return c.Static.Speedup(c.Base) }

// AptGetSpeedup returns the APT-GET speedup over baseline.
func (c *Comparison) AptGetSpeedup() float64 { return c.AptGet.Speedup(c.Base) }

// Compare runs baseline, Ainsworth & Jones, and APT-GET on the workload.
func Compare(w Workload, cfg Config) (*Comparison, error) {
	base, err := RunBaseline(w, cfg)
	if err != nil {
		return nil, err
	}
	static, err := RunStatic(w, cfg)
	if err != nil {
		return nil, err
	}
	apt, err := RunAptGet(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Comparison{Workload: w.Name(), Base: base, Static: static, AptGet: apt}, nil
}

// CompareFrom runs the three Compare variants concurrently. Build mutates
// workload state (array handles, scratch), so each variant gets its own
// instance from newW; Build is deterministic, making the instances
// interchangeable and the result identical to Compare on one of them.
func CompareFrom(newW func() Workload, cfg Config) (*Comparison, error) {
	variants := []func(Workload, Config) (*Result, error){
		RunBaseline, RunStatic, RunAptGet,
	}
	var name string
	results, err := runner.Map(len(variants), func(i int) (*Result, error) {
		w := newW()
		if i == 0 {
			name = w.Name()
		}
		return variants[i](w, cfg)
	})
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Workload: name,
		Base:     results[0],
		Static:   results[1],
		AptGet:   results[2],
	}, nil
}

// GeoMean computes the geometric mean of a slice of ratios — the paper's
// average-speedup aggregation (§4.3). It averages in log space: a
// running product overflows to +Inf (or underflows to 0) for long
// slices of large (small) ratios long before the mean itself leaves
// float range.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
