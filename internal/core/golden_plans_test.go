package core_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"aptget/internal/core"
	"aptget/internal/workloads"
)

// goldenPlanLines renders every default-config plan for the full
// registry (Table 3 apps plus the phased workloads) in a stable
// one-line-per-plan format.
func goldenPlanLines(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	entries := append([]workloads.Entry{}, workloads.Registry()...)
	entries = append(entries, workloads.PhasedRegistry()...)
	for _, e := range entries {
		_, plans, err := core.ProfileAndPlan(e.New(), core.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", e.Key, err)
		}
		for _, p := range plans {
			fmt.Fprintf(&sb, "%s load=%s site=%s dist=%d inner=%d outer=%d trip=%.2f fb=%q\n",
				e.Key, p.LoadName, p.Site, p.Distance, p.InnerDistance, p.OuterDistance,
				p.AvgTrip, p.Fallback)
		}
		if len(plans) == 0 {
			fmt.Fprintf(&sb, "%s (no plans)\n", e.Key)
		}
	}
	return sb.String()
}

// TestGoldenPlansDefaultConfig pins the plans the default pipeline
// emits for every registered workload. The pipeline is deterministic,
// so any drift here is a real behavior change: either a bug, or an
// intentional shift that must be re-pinned with UPDATE_GOLDEN=1 and
// documented in EXPERIMENTS.md (see the "Plan shifts" note there for
// the selection-gate PR's re-pin).
func TestGoldenPlansDefaultConfig(t *testing.T) {
	const path = "testdata/golden_plans.txt"
	got := goldenPlanLines(t)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d:\n  got  %s\n  want %s", i+1, g, w)
		}
	}
	t.Fatalf("default-config plans drifted from %s (UPDATE_GOLDEN=1 re-pins after review)", path)
}
