package core

import (
	"errors"
	"testing"

	"aptget/internal/cpu"
	"aptget/internal/mem"
)

// TestFailedRunsRecycleArena locks the error-path arena recycling in
// execute: a run that dies mid-execution (instruction limit) or fails
// verification must still return its arena to the pool. Before the fix
// both paths dropped the hierarchy on the floor, so a study with a few
// failing variants bled the pool dry and every subsequent run paid a
// fresh multi-megabyte allocation.
//
// The workload sizes are chosen so p.MemSize lands in a pool bucket no
// other test uses; the bucket's length is then a precise leak counter.
func TestFailedRunsRecycleArena(t *testing.T) {
	const oddTable = 7321
	sizer := newMicro(9, 7)
	sizer.table = oddTable
	p, err := sizer.Build()
	if err != nil {
		t.Fatal(err)
	}
	size := p.MemSize
	if n := mem.PoolLen(size); n != 0 {
		t.Fatalf("pool bucket for size %d already holds %d arenas; pick a more unusual size", size, n)
	}

	// Path 1: verification failure after a clean run.
	w := newMicro(9, 7)
	w.table = oddTable
	if _, err := RunBaseline(&brokenWorkload{w}, DefaultConfig()); err == nil {
		t.Fatal("verification should fail for the broken workload")
	}
	if n := mem.PoolLen(size); n != 1 {
		t.Fatalf("verify-failure path leaked the arena: pool holds %d, want 1", n)
	}

	// Path 2: execution error (instruction limit). NewArena pops the
	// recycled arena, so a correct release brings the bucket back to 1.
	w = newMicro(9, 7)
	w.table = oddTable
	cfg := DefaultConfig()
	cfg.MaxInstructions = 50
	_, err = RunBaseline(w, cfg)
	if !errors.Is(err, cpu.ErrInstructionLimit) {
		t.Fatalf("want ErrInstructionLimit, got %v", err)
	}
	if n := mem.PoolLen(size); n != 1 {
		t.Fatalf("cpu-error path leaked the arena: pool holds %d, want 1", n)
	}
}
