// Package obs is the pipeline's observability layer: named counters,
// wall/cycle timers and per-stage span tracing behind a process-global
// registry. Every stage of the APT-GET pipeline (profile → analysis →
// inject → execute) opens a span scoped to the application/variant it is
// working on and records what it saw — samples kept and dropped, peaks
// found, Equation 1/2 inputs, prefetches injected, PMU counters — so a
// distance or injection-site decision can be audited back to the measured
// LBR evidence that produced it.
//
// The registry is disabled by default and costs one atomic load per
// Begin when off (Begin returns a nil *Span and every Span method is
// nil-safe), so the instrumented hot paths pay nothing in normal runs.
// When enabled (aptbench -report / -trace, aptgetd -report), spans are
// appended under a mutex: internal/runner fans pipeline runs out over a
// worker pool, and concurrent Begin/End from pool goroutines is safe.
// Each span additionally guards its own counters, so the serving layer
// can mutate one long-lived span from concurrent request handlers while
// Snapshot reads it. Snapshot orders
// records deterministically by (scope, stage rank, begin sequence), so
// the exported report does not depend on worker interleaving.
//
// The package is intentionally dependency-free (stdlib only): every
// other pipeline package may import it without cycles.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stage names used by the core pipeline. Spans are not
// restricted to these, but Snapshot sorts them in this canonical order
// (unknown stages sort after, alphabetically).
const (
	StageProfile    = "profile"
	StageAnalysis   = "analysis"
	StageInject     = "inject"
	StageExecute    = "execute"
	StageExperiment = "experiment"
	// StageServe scopes the aptgetd serving layer: plan-cache hit/miss/
	// stale-match counters and backpressure rejections live on one
	// long-lived span per server, mutated concurrently by handlers.
	StageServe = "serve"

	// StageReplan scopes the online re-planning controller: windows
	// observed, degradation triggers, re-profiles and hot-swaps.
	StageReplan = "replan"

	// StagePGO scopes the daemon's self-profiling subsystem: CPU capture
	// windows taken/skipped/flushed and profile artifact-store traffic,
	// on one long-lived span per capturer.
	StagePGO = "pgo"
)

// stageRank orders the canonical stages in pipeline order for reports.
func stageRank(stage string) int {
	switch stage {
	case StageProfile:
		return 0
	case StageAnalysis:
		return 1
	case StageInject:
		return 2
	case StageExecute:
		return 3
	case StageExperiment:
		return 4
	case StageServe:
		return 5
	case StagePGO:
		return 6
	}
	return 7
}

// PlanRecord is the per-plan provenance attached to analysis spans and
// to core pipeline results: every input of Equation (1) and Equation (2)
// alongside the decision they produced, so a consumer can re-derive (and
// assert on) *why* a distance or site was chosen.
type PlanRecord struct {
	LoadPC   uint64 `json:"load_pc"`
	Load     string `json:"load"` // debug label of the load
	Site     string `json:"site"` // "inner" | "outer"
	Distance int64  `json:"distance"`

	// Equation (1) inputs: distance = ceil(MC / IC).
	IC float64 `json:"ic_latency"`
	MC float64 `json:"mc_latency"`

	// Equation (2) inputs: inner injection covers enough only when
	// avg_trip ≥ K × inner_distance.
	AvgTrip float64 `json:"avg_trip"`
	K       int64   `json:"k"`

	// 2-D selection provenance: the stall-cycles-per-kilo-instruction
	// score the load was admitted with and its mean exposed latency per
	// sampled miss (zero for profiles without latency sampling).
	Score     float64 `json:"selection_score,omitempty"`
	MeanStall float64 `json:"mean_stall,omitempty"`

	InnerDistance int64 `json:"inner_distance"`
	OuterDistance int64 `json:"outer_distance,omitempty"`

	// Peak evidence: CWT peak positions (cycles) of the measured
	// latency distributions.
	PeaksInner []float64 `json:"peaks_inner,omitempty"`
	PeaksOuter []float64 `json:"peaks_outer,omitempty"`

	// LatencySamples is how many per-iteration latencies the inner
	// distribution was built from; DroppedNonMonotonic counts LBR cycle
	// deltas discarded because the snapshot was out of order or wrapped.
	LatencySamples      int `json:"latency_samples"`
	DroppedNonMonotonic int `json:"dropped_non_monotonic,omitempty"`

	// Histogram robustness counters: outliers clamped into the top bin
	// by the bin-count cap, NaN/±Inf samples dropped, and whether the
	// latency span hit the cap outright (degenerate distribution — the
	// plan fell back to distance 1).
	HistClampedOutliers  int  `json:"histogram_clamped_outliers,omitempty"`
	HistDroppedNonFinite int  `json:"histogram_dropped_nonfinite,omitempty"`
	HistDegenerateSpan   bool `json:"histogram_degenerate_span,omitempty"`

	// Fallback is the §3.6 fallback reason, empty when the analytical
	// model applied cleanly.
	Fallback string `json:"fallback,omitempty"`
}

// Span is one traced stage execution. A nil *Span is a valid no-op
// receiver for every method, which is what Begin returns while the
// registry is disabled.
type Span struct {
	Scope string // "<app>/<variant>" for pipeline stages, "exp/<id>" for experiments
	Stage string

	seq   uint64
	begin time.Time

	// mu guards the mutable fields: pipeline stages use a span from one
	// goroutine, but the serving layer mutates one long-lived span from
	// concurrent request handlers, and Snapshot may run while they do.
	mu       sync.Mutex
	wallNS   int64
	counters map[string]int64
	metrics  map[string]float64
	plans    []PlanRecord
	done     bool
}

// registry is the process-global span store.
var registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	spans   []*Span
	seq     uint64
}

// Enable turns span collection on (aptbench -report / -trace).
func Enable() { registry.enabled.Store(true) }

// Disable turns span collection off; already-recorded spans are kept
// until Reset.
func Disable() { registry.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func Enabled() bool { return registry.enabled.Load() }

// Reset discards all recorded spans (tests, repeated CLI runs).
func Reset() {
	registry.mu.Lock()
	registry.spans = nil
	registry.seq = 0
	registry.mu.Unlock()
}

// Begin opens a span for one stage execution and registers it. Returns
// nil (a no-op span) when the registry is disabled. Safe to call
// concurrently from runner pool workers.
func Begin(scope, stage string) *Span {
	if !registry.enabled.Load() {
		return nil
	}
	s := &Span{Scope: scope, Stage: stage, begin: time.Now()}
	registry.mu.Lock()
	registry.seq++
	s.seq = registry.seq
	registry.spans = append(registry.spans, s)
	registry.mu.Unlock()
	return s
}

// End closes the span, recording its wall time. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.wallNS = time.Since(s.begin).Nanoseconds()
		s.done = true
	}
	s.mu.Unlock()
}

// Add increments a named counter by delta.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// Set assigns a named counter.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] = v
	s.mu.Unlock()
}

// SetAll copies every entry of m into the span's counters.
func (s *Span) SetAll(m map[string]int64) {
	if s == nil {
		return
	}
	for k, v := range m {
		s.Set(k, v)
	}
}

// SetMetric assigns a named derived metric (a float, e.g. IPC or MPKI).
func (s *Span) SetMetric(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.metrics == nil {
		s.metrics = make(map[string]float64)
	}
	s.metrics[name] = v
	s.mu.Unlock()
}

// AddPlan attaches one plan's provenance record to the span.
func (s *Span) AddPlan(p PlanRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.plans = append(s.plans, p)
	s.mu.Unlock()
}

// Timer starts a named wall-clock sub-timer; the returned stop function
// records the elapsed time as the counter "<name>_ns".
func (s *Span) Timer(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.Set(name+"_ns", time.Since(start).Nanoseconds()) }
}

// Counters returns a copy of the span's counters — the serving layer's
// /v1/metrics endpoint reads a live span through this.
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}
