package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestDisabledRegistryIsNoOp(t *testing.T) {
	Disable()
	Reset()
	sp := Begin("BFS/apt-get", StageProfile)
	if sp != nil {
		t.Fatalf("Begin while disabled = %v, want nil", sp)
	}
	// Every method must be safe on the nil span.
	sp.Add("x", 1)
	sp.Set("y", 2)
	sp.SetAll(map[string]int64{"z": 3})
	sp.SetMetric("ipc", 1.5)
	sp.AddPlan(PlanRecord{})
	sp.Timer("t")()
	sp.End()
	if got := Snapshot(); len(got.Records) != 0 {
		t.Fatalf("disabled registry recorded %d spans", len(got.Records))
	}
}

func TestSpanRecording(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	sp := Begin("BFS/apt-get", StageAnalysis)
	sp.Add("plans", 2)
	sp.Add("plans", 1)
	sp.Set("dropped", 4)
	sp.SetMetric("ipc", 0.5)
	sp.AddPlan(PlanRecord{LoadPC: 7, Load: "visited[v]", Site: "inner",
		Distance: 22, IC: 10, MC: 220, AvgTrip: 100, K: 5, InnerDistance: 22,
		PeaksInner: []float64{11, 231}, LatencySamples: 512})
	sp.End()

	rep := Snapshot()
	if len(rep.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(rep.Records))
	}
	rec := rep.Records[0]
	if rec.Scope != "BFS/apt-get" || rec.Stage != StageAnalysis {
		t.Fatalf("record identity = %s/%s", rec.Scope, rec.Stage)
	}
	if rec.Counters["plans"] != 3 || rec.Counters["dropped"] != 4 {
		t.Fatalf("counters = %v", rec.Counters)
	}
	if rec.Metrics["ipc"] != 0.5 {
		t.Fatalf("metrics = %v", rec.Metrics)
	}
	if len(rec.Plans) != 1 || rec.Plans[0].Distance != 22 {
		t.Fatalf("plans = %+v", rec.Plans)
	}
}

// TestSnapshotOrdering checks the deterministic (scope, stage-rank, seq)
// report order regardless of span creation interleaving.
func TestSnapshotOrdering(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	Begin("Z/apt-get", StageExecute).End()
	Begin("A/apt-get", StageInject).End()
	Begin("A/apt-get", StageProfile).End()
	Begin("exp/fig6", StageExperiment).End()
	Begin("A/apt-get", StageAnalysis).End()

	rep := Snapshot()
	var got []string
	for _, r := range rep.Records {
		got = append(got, r.Scope+":"+r.Stage)
	}
	want := []string{
		"A/apt-get:profile", "A/apt-get:analysis", "A/apt-get:inject",
		"Z/apt-get:execute", "exp/fig6:experiment",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestConcurrentSpans exercises the registry from many goroutines, the
// way runner's worker pool drives it (run with -race).
func TestConcurrentSpans(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sp := Begin("app/apt-get", StageExecute)
			for j := 0; j < 100; j++ {
				sp.Add("cycles", 1)
			}
			sp.End()
		}(i)
	}
	wg.Wait()

	rep := Snapshot()
	if len(rep.Records) != n {
		t.Fatalf("got %d records, want %d", len(rep.Records), n)
	}
	for _, r := range rep.Records {
		if r.Counters["cycles"] != 100 {
			t.Fatalf("lost counter updates: %v", r.Counters)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	sp := Begin("IS/apt-get", StageProfile)
	sp.Set("lbr_samples", 12)
	sp.End()

	data, err := Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Records) != 1 || back.Records[0].Counters["lbr_samples"] != 12 {
		t.Fatalf("round-tripped report = %+v", back)
	}
}

func TestTextRendering(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	sp := Begin("BFS/apt-get", StageAnalysis)
	sp.Set("plans", 1)
	sp.AddPlan(PlanRecord{Load: "ids[col[e]]", LoadPC: 9, Site: "outer",
		Distance: 3, IC: 12, MC: 230, AvgTrip: 4.5, K: 5,
		Fallback: "outer loop has no induction variable; inner site kept"})
	sp.End()

	text := Snapshot().Text()
	for _, want := range []string{
		"BFS/apt-get", "analysis", "plans=1",
		"IC=12 MC=230", "site=outer distance=3", "fallback:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, text)
		}
	}
}

// TestSharedSpanConcurrentMutation: the serving layer mutates one
// long-lived span from many request handlers while Snapshot and
// Counters read it. Run under -race this is the regression test for the
// per-span lock.
func TestSharedSpanConcurrentMutation(t *testing.T) {
	Enable()
	Reset()
	defer Disable()
	sp := Begin("aptgetd/service", StageServe)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp.Add("plan_cache_hits", 1)
				sp.SetMetric("inflight", float64(i))
				_ = Snapshot()
				_ = sp.Counters()
			}
		}()
	}
	wg.Wait()
	sp.End()
	if got := sp.Counters()["plan_cache_hits"]; got != 8*200 {
		t.Fatalf("plan_cache_hits = %d, want %d", got, 8*200)
	}
	rep := Snapshot()
	if len(rep.Records) != 1 || rep.Records[0].Stage != StageServe {
		t.Fatalf("serve span missing from snapshot: %+v", rep.Records)
	}
}
