package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Record is the exported form of one span: one record per stage per
// scope (app/variant). Counters and Metrics marshal with sorted keys
// (encoding/json map ordering), so a report's field order is stable.
type Record struct {
	Scope    string             `json:"scope"`
	Stage    string             `json:"stage"`
	WallNS   int64              `json:"wall_ns"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Plans    []PlanRecord       `json:"plans,omitempty"`
}

// Report is the machine-readable aptbench -report payload.
type Report struct {
	Records []Record `json:"records"`
}

// Snapshot exports every recorded span, ordered by (scope, pipeline
// stage rank, begin sequence). Open spans are included with the wall
// time they have accumulated so far being zero; callers normally End
// every span before snapshotting.
func Snapshot() *Report {
	registry.mu.Lock()
	spans := make([]*Span, len(registry.spans))
	copy(spans, registry.spans)
	registry.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		ra, rb := stageRank(a.Stage), stageRank(b.Stage)
		if ra != rb {
			return ra < rb
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.seq < b.seq
	})

	rep := &Report{Records: make([]Record, 0, len(spans))}
	for _, s := range spans {
		s.mu.Lock() // live serving spans mutate concurrently with Snapshot
		rec := Record{
			Scope:  s.Scope,
			Stage:  s.Stage,
			WallNS: s.wallNS,
			Plans:  append([]PlanRecord(nil), s.plans...),
		}
		if len(s.counters) > 0 {
			rec.Counters = make(map[string]int64, len(s.counters))
			for k, v := range s.counters {
				rec.Counters[k] = v
			}
		}
		if len(s.metrics) > 0 {
			rec.Metrics = make(map[string]float64, len(s.metrics))
			for k, v := range s.metrics {
				rec.Metrics[k] = v
			}
		}
		s.mu.Unlock()
		rep.Records = append(rep.Records, rec)
	}
	return rep
}

// JSON marshals the report, indented, with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Text renders the report for humans (aptbench -trace): spans grouped
// by scope in pipeline order, with counters, metrics and per-plan
// provenance lines.
func (r *Report) Text() string {
	var sb strings.Builder
	prevScope := ""
	for _, rec := range r.Records {
		if rec.Scope != prevScope {
			fmt.Fprintf(&sb, "%s\n", rec.Scope)
			prevScope = rec.Scope
		}
		fmt.Fprintf(&sb, "  %-10s %9.2fms", rec.Stage, float64(rec.WallNS)/1e6)
		for _, k := range sortedKeys(rec.Counters) {
			fmt.Fprintf(&sb, "  %s=%d", k, rec.Counters[k])
		}
		for _, k := range sortedKeys(rec.Metrics) {
			fmt.Fprintf(&sb, "  %s=%.4g", k, rec.Metrics[k])
		}
		sb.WriteByte('\n')
		for _, p := range rec.Plans {
			fmt.Fprintf(&sb,
				"    plan load=%s pc=%d: peaks=%v IC=%.0f MC=%.0f (Eq.1) "+
					"trip=%.1f K=%d (Eq.2) -> site=%s distance=%d",
				p.Load, p.LoadPC, p.PeaksInner, p.IC, p.MC,
				p.AvgTrip, p.K, p.Site, p.Distance)
			if p.Fallback != "" {
				fmt.Fprintf(&sb, " [fallback: %s]", p.Fallback)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
