package peaks

import (
	"math"
	"testing"

	"aptget/internal/testkit"
)

// FuzzFindPeaksCWT drives histogram construction and CWT peak detection
// with adversarial latency populations (outliers, NaN/Inf, constants)
// and raw bit-pattern signals. Invariants: no panic, the bin cap holds,
// and peak indices are strictly ascending within the signal range.
func FuzzFindPeaksCWT(f *testing.F) {
	f.Add(uint64(1), uint(500), uint(4), 2.0)
	f.Add(uint64(99), uint(0), uint(0), 0.0)
	f.Add(uint64(7), uint(1500), uint(31), 1e-9)
	f.Add(uint64(13), uint(64), uint(3), math.Inf(1))
	f.Fuzz(func(t *testing.T, seed uint64, count, maxWidth uint, binWidth float64) {
		r := testkit.NewRNG(seed)
		lats := testkit.Latencies(r, int(count%2000), true)
		widths := DefaultWidths(int(maxWidth % 32))

		var h *Histogram
		if err := testkit.NoPanic(func() { h = NewHistogram(lats, binWidth) }); err != nil {
			t.Fatal(err)
		}
		if len(h.Counts) > MaxBins {
			t.Fatalf("bin cap violated: %d bins", len(h.Counts))
		}
		var idx []int
		if err := testkit.NoPanic(func() { idx = FindPeaksCWT(h.Counts, widths, Options{}) }); err != nil {
			t.Fatal(err)
		}
		if err := testkit.CheckSortedUnique(idx, len(h.Counts)); err != nil {
			t.Fatal(err)
		}

		// Raw bit-pattern signal — NaN/Inf bins straight into the CWT.
		sig := make([]float64, count%512)
		for i := range sig {
			sig[i] = math.Float64frombits(r.Uint64())
		}
		if err := testkit.NoPanic(func() { idx = FindPeaksCWT(sig, widths, Options{}) }); err != nil {
			t.Fatal(err)
		}
		if err := testkit.CheckSortedUnique(idx, len(sig)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPeakStabilityUnderBinJitter: the positions of well-separated,
// well-populated latency modes must not move by more than a few cycles
// when the histogram bin width jitters — the analysis must not owe its
// IC/MC split to a lucky binning.
func TestPeakStabilityUnderBinJitter(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := testkit.NewRNG(seed)
		lats := make([]float64, 0, 4000)
		for i := 0; i < 4000; i++ {
			c := 60.0
			if i%2 == 1 {
				c = 280.0
			}
			v := c + r.Norm()*4
			if v < 0 {
				v = 0
			}
			lats = append(lats, v)
		}
		var ref []float64
		for _, bw := range []float64{1.0, 1.25, 1.5, 2.0} {
			h := NewHistogram(lats, bw)
			ps := h.Peaks(0, Options{})
			if len(ps) != 2 {
				t.Fatalf("seed %d bw %g: got %d peaks %v, want 2", seed, bw, len(ps), ps)
			}
			if ref == nil {
				ref = ps
				continue
			}
			for i := range ps {
				if math.Abs(ps[i]-ref[i]) > 6 {
					t.Fatalf("seed %d bw %g: peak %d moved %g -> %g under bin jitter",
						seed, bw, i, ref[i], ps[i])
				}
			}
		}
	}
}
