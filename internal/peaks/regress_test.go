package peaks

import (
	"math"
	"testing"
)

// TestHistogramOutlierCap: a single wrapped-LBR outlier (~1e18 cycles)
// must not drive the bin count — pre-fix it turned into an exabyte
// allocation (or, at 1e300, overflowed the float→int conversion into a
// negative make size). The outlier is clamped into the top bin and
// counted; no sample is lost.
func TestHistogramOutlierCap(t *testing.T) {
	samples := make([]float64, 0, 1001)
	for i := 0; i < 1000; i++ {
		samples = append(samples, 100+float64(i%37))
	}
	samples = append(samples, 1e18)

	h := NewHistogram(samples, 1.0)
	if len(h.Counts) > MaxBins {
		t.Fatalf("bin count %d exceeds MaxBins %d", len(h.Counts), MaxBins)
	}
	if h.ClampedOutliers != 1 {
		t.Fatalf("ClampedOutliers = %d, want 1", h.ClampedOutliers)
	}
	if got := h.Total(); got != float64(len(samples)) {
		t.Fatalf("Total() = %g, want %d (clamping must not drop samples)", got, len(samples))
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("top bin holds %g samples, want the 1 clamped outlier", h.Counts[len(h.Counts)-1])
	}

	// 1e300 span: pre-fix the float→int conversion was undefined and
	// produced a negative make size.
	h = NewHistogram([]float64{0, 1e300}, 1.0)
	if len(h.Counts) != MaxBins || h.ClampedOutliers != 1 {
		t.Fatalf("1e300 span: bins=%d clamped=%d, want %d and 1", len(h.Counts), h.ClampedOutliers, MaxBins)
	}
}

// TestHistogramNonFinite: NaN/±Inf samples have no bin and would poison
// the derived range; they are dropped and counted.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram([]float64{10, math.NaN(), 12, math.Inf(1), 11, math.Inf(-1)}, 1.0)
	if h.DroppedNonFinite != 3 {
		t.Fatalf("DroppedNonFinite = %d, want 3", h.DroppedNonFinite)
	}
	if got := h.Total(); got != 3 {
		t.Fatalf("Total() = %g, want 3 finite samples", got)
	}
	if h.Min != 10 {
		t.Fatalf("Min = %g, want 10 (non-finite must not perturb the range)", h.Min)
	}

	// All-degenerate inputs yield an empty histogram, not a crash.
	for _, bad := range [][]float64{nil, {math.NaN()}, {math.Inf(1), math.Inf(-1)}} {
		if h := NewHistogram(bad, 1.0); len(h.Counts) != 0 {
			t.Fatalf("degenerate input %v produced %d bins", bad, len(h.Counts))
		}
	}
	if h := NewHistogram([]float64{1, 2}, math.NaN()); len(h.Counts) != 0 {
		t.Fatal("NaN bin width produced bins")
	}
}

// TestSummarizeEvenLength: quantiles must interpolate between the
// closest ranks — truncating to a single element reports P50 of [1,2]
// as 1.
func TestSummarizeEvenLength(t *testing.T) {
	if got := Summarize([]float64{1, 2}).P50; got != 1.5 {
		t.Fatalf("P50 of [1,2] = %g, want 1.5", got)
	}
	s := Summarize([]float64{1, 2, 3, 4})
	if s.P50 != 2.5 {
		t.Fatalf("P50 of [1,2,3,4] = %g, want 2.5", s.P50)
	}
	if s.P90 != 3.7 {
		t.Fatalf("P90 of [1,2,3,4] = %g, want 3.7", s.P90)
	}
	// Odd lengths hit an exact rank and must be unchanged by the fix.
	if got := Summarize([]float64{1, 2, 3}).P50; got != 2 {
		t.Fatalf("P50 of [1,2,3] = %g, want 2", got)
	}
}

// TestNoiseWindowInclusive: the SNR noise window must be symmetric and
// inclusive, [pos-W, pos+W], like scipy's. The pre-fix slice row0[lo :
// pos+W] excluded the right endpoint, so a noise feature sitting exactly
// at pos+W was invisible to the noise floor and the peak's SNR was
// overestimated.
//
// The test self-calibrates: it computes the noise floor (NoisePerc=100 →
// window max) with and without the right endpoint, verifies the crafted
// signal makes them differ, and picks a MinSNR strictly between the two
// resulting SNRs. The fixed code must then reject the peak; the pre-fix
// code accepted it.
func TestNoiseWindowInclusive(t *testing.T) {
	const n, pos, w = 64, 40, 6
	sig := make([]float64, n)
	for i := range sig {
		x := float64(i - pos)
		sig[i] = 50 * math.Exp(-x*x/(2*9))
	}
	sig[pos+w] += 40 // sharp feature exactly at the window's right edge

	widths := DefaultWidths(4)
	cwt := CWT(sig, widths)
	row0 := make([]float64, n)
	for i, v := range cwt[0] {
		row0[i] = math.Abs(v)
	}
	maxIn := func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			if row0[i] > m {
				m = row0[i]
			}
		}
		return m
	}
	noiseExcl := maxIn(pos-w, pos+w)   // pre-fix window
	noiseIncl := maxIn(pos-w, pos+w+1) // fixed window
	if noiseIncl <= noiseExcl {
		t.Fatalf("signal not discriminating: incl %g <= excl %g", noiseIncl, noiseExcl)
	}
	// The ridge origin for this single smooth peak is the coarse-scale
	// response at pos.
	strength := cwt[len(widths)-1][pos]
	snr := (strength/noiseExcl + strength/noiseIncl) / 2

	got := FindPeaksCWT(sig, widths, Options{
		WindowSize: w, NoisePerc: 100, MinSNR: snr, MinRelStrength: -1,
	})
	for _, p := range got {
		if p >= pos-2 && p <= pos+2 {
			t.Fatalf("peak at %d passed SNR %g: the right window endpoint (row0[pos+W]=%g) was not counted as noise",
				p, snr, row0[pos+w])
		}
	}
}
