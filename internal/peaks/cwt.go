// Package peaks implements continuous-wavelet-transform peak detection —
// a pure-Go counterpart of scipy.signal.find_peaks_cwt, which the paper
// uses (§3.4) to locate the peaks of a loop's execution-time distribution.
// Each peak corresponds to the loop latency when the delinquent load is
// served by one level of the memory hierarchy; the gap between the lowest
// and highest peaks separates the instruction component from the memory
// component (Equation 1).
//
// The algorithm follows Du, Kibbe & Lin (Bioinformatics 2006): convolve
// the signal with Ricker ("Mexican hat") wavelets over a range of widths,
// link local maxima across scales into ridge lines, and keep ridges that
// are long and loud enough.
package peaks

import (
	"math"
	"sort"

	"aptget/internal/obs"
)

// Ricker returns the Ricker wavelet with the given width parameter a,
// sampled at `points` positions centred on zero — the same construction
// as scipy.signal.ricker.
func Ricker(points int, a float64) []float64 {
	out := make([]float64, points)
	amp := 2 / (math.Sqrt(3*a) * math.Pow(math.Pi, 0.25))
	for i := 0; i < points; i++ {
		x := float64(i) - float64(points-1)/2
		xsq := (x * x) / (a * a)
		out[i] = amp * (1 - xsq) * math.Exp(-xsq/2)
	}
	return out
}

// convolveSame convolves signal with kernel and returns the centre
// (len(signal)) samples — numpy.convolve(..., mode="same").
func convolveSame(signal, kernel []float64) []float64 {
	out := make([]float64, len(signal))
	convolveSameInto(out, signal, kernel)
	return out
}

// convolveSameInto is convolveSame writing into caller-owned storage
// (len(out) == len(signal)).
func convolveSameInto(out, signal, kernel []float64) {
	n, m := len(signal), len(kernel)
	// full convolution index f = s + k; "same" keeps f in
	// [m/2, m/2 + n). numpy centres an even-length kernel on the
	// *right* of the two middle taps (off = m/2), which only differs
	// from the odd-kernel (m-1)/2 when CWT clips the wavelet to an even
	// len(signal); using (m-1)/2 there shifts every response — and so
	// every detected peak — one bin low.
	off := m / 2
	for i := 0; i < n; i++ {
		f := i + off
		var sum float64
		kLo := f - (n - 1)
		if kLo < 0 {
			kLo = 0
		}
		kHi := f
		if kHi > m-1 {
			kHi = m - 1
		}
		for k := kLo; k <= kHi; k++ {
			sum += kernel[k] * signal[f-k]
		}
		out[i] = sum
	}
}

// CWT computes the continuous wavelet transform matrix: one row per
// width, each row the signal convolved with a Ricker wavelet of that
// width. scipy convolves with the reversed wavelet; Ricker is symmetric
// so plain convolution is identical. Large signals take the FFT path
// (see fft.go); the returned rows are freshly allocated either way.
func CWT(signal []float64, widths []int) [][]float64 {
	st := cwtScratchPool.Get().(*cwtScratch)
	rows := st.cwtMatrix(signal, widths, convModeAuto, nil)
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = make([]float64, len(r))
		copy(out[i], r)
	}
	cwtScratchPool.Put(st)
	return out
}

// relativeMaxima returns the indices i where row[i] is strictly greater
// than every neighbour within `order` positions (scipy.signal.argrelmax
// with clipped boundaries).
func relativeMaxima(row []float64, order int) []int {
	if order < 1 {
		order = 1
	}
	var out []int
	for i := range row {
		isMax := row[i] > 0
		for d := 1; d <= order && isMax; d++ {
			if j := i - d; j >= 0 && row[j] >= row[i] {
				isMax = false
			}
			if j := i + d; j < len(row) && row[j] >= row[i] {
				isMax = false
			}
		}
		if isMax {
			out = append(out, i)
		}
	}
	return out
}

// ridgeLine is a chain of maxima linked across scales.
type ridgeLine struct {
	rows []int // width indices, descending
	cols []int // positions
	gap  int   // consecutive rows without a matching maximum
}

// identifyRidgeLines links maxima from the largest width down to the
// smallest, tolerating gapThresh missed rows, with per-row matching
// window maxDistances[row].
func identifyRidgeLines(cwt [][]float64, maxDistances []int, gapThresh int) []ridgeLine {
	nRows := len(cwt)
	if nRows == 0 {
		return nil
	}
	var active []*ridgeLine
	var finished []ridgeLine

	for row := nRows - 1; row >= 0; row-- {
		order := maxDistances[row]
		cols := relativeMaxima(cwt[row], order)
		used := make([]bool, len(cols))

		for _, line := range active {
			line.gap++
			prev := line.cols[len(line.cols)-1]
			best, bestDist := -1, math.MaxInt
			for ci, c := range cols {
				if used[ci] {
					continue
				}
				d := abs(c - prev)
				if d <= maxDistances[row] && d < bestDist {
					best, bestDist = ci, d
				}
			}
			if best >= 0 {
				line.rows = append(line.rows, row)
				line.cols = append(line.cols, cols[best])
				line.gap = 0
				used[best] = true
			}
		}

		// Retire lines that exceeded the gap threshold.
		kept := active[:0]
		for _, line := range active {
			if line.gap > gapThresh {
				finished = append(finished, *line)
			} else {
				kept = append(kept, line)
			}
		}
		active = kept

		// Unmatched maxima start new lines.
		for ci, c := range cols {
			if !used[ci] {
				active = append(active, &ridgeLine{rows: []int{row}, cols: []int{c}})
			}
		}
	}
	for _, line := range active {
		finished = append(finished, *line)
	}
	return finished
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Options tunes FindPeaksCWT. Zero values select the scipy defaults,
// except MinRelStrength which is an extra guard this implementation adds:
// peaks whose coarse-scale response is a tiny fraction of the strongest
// ridge are discarded (latency histograms have a handful of comparable
// peaks, so this only removes noise).
type Options struct {
	GapThresh      int     // allowed missed rows when linking (default 2)
	MinLength      int     // minimum ridge length (default ceil(len(widths)/4), ≥3)
	MinSNR         float64 // minimum signal-to-noise ratio (default 1.0)
	NoisePerc      float64 // percentile of |cwt[0]| used as noise floor (default 10)
	WindowSize     int     // noise estimation window (default len(signal)/20)
	MinRelStrength float64 // min origin response relative to strongest ridge (default 0.02; <0 disables)

	// Obs, when non-nil, receives the ladder's backend and memoization
	// counters (ricker_cache_hits, kernel_spectrum_hits, cwt_fft_rows, …).
	Obs *obs.Span
}

// FindPeaksCWT returns the indices of peaks in signal, smallest first.
func FindPeaksCWT(signal []float64, widths []int, opt Options) []int {
	return findPeaksCWTMode(signal, widths, opt, convModeAuto)
}

// findPeaksCWTMode is FindPeaksCWT with an explicit convolution backend;
// the forced modes back the direct-vs-FFT bin-identity tests.
func findPeaksCWTMode(signal []float64, widths []int, opt Options, mode convMode) []int {
	if len(signal) == 0 || len(widths) == 0 {
		return nil
	}
	if opt.GapThresh == 0 {
		opt.GapThresh = 2
	}
	if opt.MinLength == 0 {
		opt.MinLength = (len(widths) + 3) / 4
	}
	if opt.MinLength < 3 {
		opt.MinLength = 3
	}
	if opt.MinSNR == 0 {
		opt.MinSNR = 1.0
	}
	if opt.NoisePerc == 0 {
		opt.NoisePerc = 10
	}
	if opt.WindowSize == 0 {
		opt.WindowSize = len(signal) / 20
	}
	if opt.WindowSize < 3 {
		opt.WindowSize = 3
	}
	if opt.MinRelStrength == 0 {
		opt.MinRelStrength = 0.02
	}

	var counters cwtCounters
	st := cwtScratchPool.Get().(*cwtScratch)
	defer cwtScratchPool.Put(st)
	cwt := st.cwtMatrix(signal, widths, mode, &counters)
	maxDistances := make([]int, len(widths))
	for i, w := range widths {
		d := w / 4
		if d < 1 {
			d = 1
		}
		maxDistances[i] = d
	}
	lines := identifyRidgeLines(cwt, maxDistances, opt.GapThresh)

	// Noise floor per position from the smallest-scale row.
	if cap(st.row0) < len(cwt[0]) {
		st.row0 = make([]float64, len(cwt[0]))
	}
	row0 := st.row0[:len(cwt[0])]
	for i, v := range cwt[0] {
		row0[i] = math.Abs(v)
	}

	type candidate struct {
		pos      int
		strength float64
	}
	var cands []candidate
	maxStrength := 0.0
	for _, line := range lines {
		if len(line.rows) < opt.MinLength {
			continue
		}
		// Position: the column at the smallest scale on the ridge (Du et
		// al. use the fine end for spatial accuracy; scipy reports the
		// coarse end — for symmetric latency peaks they coincide).
		pos := line.cols[len(line.cols)-1]
		// Ridge strength: the response at the ridge's origin (largest
		// linked scale). A genuine peak has a strong *positive* response
		// there; the negative side lobes of neighbouring peaks and noise
		// wiggles do not.
		strength := cwt[line.rows[0]][line.cols[0]]
		if strength <= 0 {
			continue
		}
		// Symmetric window [pos-W, pos+W], inclusive on both sides like
		// scipy's — slicing to pos+W would include pos-W on the left but
		// exclude pos+W on the right, skewing the noise floor of peaks
		// near the right edge.
		lo := pos - opt.WindowSize
		if lo < 0 {
			lo = 0
		}
		hi := pos + opt.WindowSize + 1
		if hi > len(row0) {
			hi = len(row0)
		}
		noise := percentileScratch(&st.noise, row0[lo:hi], opt.NoisePerc)
		if noise <= 0 {
			noise = 1e-12
		}
		if strength/noise < opt.MinSNR {
			continue
		}
		cands = append(cands, candidate{pos: pos, strength: strength})
		if strength > maxStrength {
			maxStrength = strength
		}
	}

	var peaks []int
	for _, c := range cands {
		if opt.MinRelStrength > 0 && c.strength < opt.MinRelStrength*maxStrength {
			continue
		}
		peaks = append(peaks, c.pos)
	}

	// Sort and merge peaks closer than the smallest width.
	sortInts(peaks)
	minSep := widths[0]
	var out []int
	for _, p := range peaks {
		if len(out) > 0 && p-out[len(out)-1] < minSep {
			continue
		}
		out = append(out, p)
	}

	if sp := opt.Obs; sp != nil {
		sp.Add("ricker_cache_hits", counters.waveletHits)
		sp.Add("ricker_cache_misses", counters.waveletMisses)
		sp.Add("kernel_spectrum_hits", counters.spectrumHits)
		sp.Add("kernel_spectrum_misses", counters.spectrumMisses)
		sp.Add("cwt_fft_rows", counters.fftRows)
		sp.Add("cwt_direct_rows", counters.directRows)
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// percentile returns the p-th percentile (0–100) of values (copied, not
// mutated).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	cp := append([]float64(nil), values...)
	sortFloats(cp)
	return sortedPercentile(cp, p)
}

// percentileScratch is percentile with a caller-owned copy buffer, so
// the per-candidate noise windows of a ladder reuse one allocation.
func percentileScratch(buf *[]float64, values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	*buf = append((*buf)[:0], values...)
	cp := *buf
	if len(cp) > 64 {
		// Large serve-path windows: O(n log n) sort. The sorted order —
		// and hence the percentile — is identical to sortFloats'.
		sort.Float64s(cp)
	} else {
		sortFloats(cp)
	}
	return sortedPercentile(cp, p)
}

// sortedPercentile returns the p-th percentile (0–100) of an
// already-sorted, non-empty slice by linear interpolation between the
// closest ranks.
func sortedPercentile(cp []float64, p float64) float64 {
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

func sortFloats(a []float64) {
	// Insertion sort: noise windows are small.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// DefaultWidths returns the width ladder 1..max used by the analysis.
func DefaultWidths(max int) []int {
	if max < 2 {
		max = 2
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}
