package peaks

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference: X[k] = Σ x[j]·e^{-2πijk/n}.
func naiveDFT(x []float64, n int) []complex128 {
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j, v := range x {
			sum += complex(v, 0) * cmplx.Exp(complex(0, -2*math.Pi*float64(j)*float64(k)/float64(n)))
		}
		out[k] = sum
	}
	return out
}

func TestRFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 8, 16, 64, 256, 1024} {
		for _, fill := range []int{n, n - 1, n / 2, 3} {
			x := make([]float64, fill)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			p := planFor(n)
			z := make([]complex128, p.half)
			spec := make([]complex128, p.half+1)
			p.rfft(x, z, spec)
			want := naiveDFT(x, n)
			scale := 0.0
			for _, w := range want {
				if a := cmplx.Abs(w); a > scale {
					scale = a
				}
			}
			if scale == 0 {
				scale = 1
			}
			for k := 0; k <= p.half; k++ {
				if d := cmplx.Abs(spec[k] - want[k]); d > 1e-9*scale {
					t.Fatalf("n=%d fill=%d: spec[%d] = %v, want %v (err %g)",
						n, fill, k, spec[k], want[k], d)
				}
			}
		}
	}
}

func TestIRFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 8, 32, 128, 2048} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		p := planFor(n)
		z := make([]complex128, p.half)
		spec := make([]complex128, p.half+1)
		p.rfft(x, z, spec)
		got := make([]float64, n)
		p.irfft(spec, z, got)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d: irfft(rfft(x))[%d] = %g, want %g", n, i, got[i], x[i])
			}
		}
		// Partial output windows must agree with the full transform.
		short := make([]float64, n/2+1)
		p.irfft(spec, z, short)
		for i := range short {
			if math.Abs(short[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d: short irfft[%d] = %g, want %g", n, i, short[i], x[i])
			}
		}
	}
}

// TestConvolveSameFFTMatchesDirect: the FFT path must agree with the
// direct numpy mode="same" convolution to near machine precision for
// every (signal length, kernel length) parity combination, including
// kernels clipped to the signal length.
func TestConvolveSameFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{5, 16, 30, 31, 400, 1023} {
		for _, w := range []int{1, 2, 3, 7, 20, 40} {
			points := 10*w + 1
			if points > n {
				points = n
			}
			if points < 3 {
				points = 3
			}
			sig := make([]float64, n)
			for i := range sig {
				sig[i] = rng.NormFloat64() * 50
			}
			wav, _ := rickerCached(points, w)
			want := convolveSame(sig, wav)

			p := planFor(nextPow2(n + points - 1))
			st := cwtScratchPool.Get().(*cwtScratch)
			st.prepare(p, sig)
			got := make([]float64, n)
			st.convolveSameFFT(points, w, n, got, nil)
			cwtScratchPool.Put(st)

			scale := 0.0
			for _, v := range want {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
			if scale == 0 {
				scale = 1
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*scale {
					t.Fatalf("n=%d w=%d: fft conv[%d] = %g, direct %g", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCWTRowAllocsPerRun locks the zero-alloc claim for the row
// convolution: with a warmed kernel-spectrum cache and pooled scratch,
// one FFT row costs no heap allocations at all.
func TestCWTRowAllocsPerRun(t *testing.T) {
	sig := make([]float64, 4096)
	for i := range sig {
		sig[i] = math.Sin(float64(i) / 7)
	}
	const width = 32
	points := kernelPoints(len(sig), width)
	p := planFor(nextPow2(len(sig) + points - 1))
	st := cwtScratchPool.Get().(*cwtScratch)
	defer cwtScratchPool.Put(st)
	st.prepare(p, sig)
	out := make([]float64, len(sig))
	st.convolveSameFFT(points, width, len(sig), out, nil) // warm caches + tmp
	if got := testing.AllocsPerRun(50, func() {
		st.convolveSameFFT(points, width, len(sig), out, nil)
	}); got > 0 {
		t.Errorf("warm FFT row: %.1f allocs/op, want 0", got)
	}

	// The direct row path with a memoized wavelet is equally clean.
	wav, _ := rickerCached(points, width)
	if got := testing.AllocsPerRun(50, func() {
		convolveSameInto(out, sig, wav)
	}); got > 0 {
		t.Errorf("direct row: %.1f allocs/op, want 0", got)
	}
}

// TestFindPeaksCWTFFTBinIdentical asserts the tentpole contract: across
// the scipy-style fixtures and a corpus of generated histograms spanning
// both sides of the FFT cutover, the FFT-backed detector returns
// bin-identical peak indices to the direct convolution path.
func TestFindPeaksCWTFFTBinIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type tc struct {
		name string
		sig  []float64
	}
	var cases []tc
	// The Figure 4 scipy-style fixture shape at several scales.
	for _, n := range []int{400, 1024, 4096, 16384} {
		sig := make([]float64, n)
		for _, cf := range []float64{0.1, 0.29, 0.5, 0.81} {
			c := cf * float64(n)
			sigma := float64(n) / 100
			for i := range sig {
				d := float64(i) - c
				sig[i] += 100 * math.Exp(-d*d/(2*sigma*sigma))
			}
		}
		for i := range sig {
			sig[i] += rng.Float64()
		}
		cases = append(cases, tc{fmt.Sprintf("fig4-%d", n), sig})
	}
	// Degenerate shapes: spikes, plateaus, heavy noise.
	for _, n := range []int{512, 2048, 8192} {
		spiky := make([]float64, n)
		for i := 0; i < 12; i++ {
			spiky[rng.Intn(n)] = float64(100 + rng.Intn(1000))
		}
		cases = append(cases, tc{fmt.Sprintf("spiky-%d", n), spiky})
		noisy := make([]float64, n)
		for i := range noisy {
			noisy[i] = rng.Float64() * 10
		}
		cases = append(cases, tc{fmt.Sprintf("noise-%d", n), noisy})
	}
	for _, c := range cases {
		widths := ladderWidths(len(c.sig))
		direct := findPeaksCWTMode(c.sig, widths, Options{}, convModeDirect)
		fft := findPeaksCWTMode(c.sig, widths, Options{}, convModeFFT)
		if len(direct) != len(fft) {
			t.Fatalf("%s: direct found %v, fft found %v", c.name, direct, fft)
		}
		for i := range direct {
			if direct[i] != fft[i] {
				t.Fatalf("%s: peak %d differs: direct %d, fft %d (direct %v, fft %v)",
					c.name, i, direct[i], fft[i], direct, fft)
			}
		}
	}
}
