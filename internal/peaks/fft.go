// FFT-based convolution for the CWT hot path. The direct O(n·m)
// convolution in convolveSame is fine for the small histograms the
// paper's figures use, but the serve path feeds the width ladder with
// histograms of thousands of bins, where the ladder cost grows as
// bins² × widths. This file provides the O(n log n) alternative: a
// pure-Go iterative radix-2 real-input FFT (the half-size complex-FFT
// packing), per-(points,width) kernel spectrum caching so repeated
// FindPeaksCWT calls on same-shaped histograms skip the kernel
// transforms entirely, and pooled scratch reused across the width
// ladder. convolveSameAuto picks FFT or direct per row by operation
// count; both produce numpy mode="same" semantics.
package peaks

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// fftPlan carries the precomputed tables for one real transform size n
// (a power of two ≥ 4): the bit-reversal permutation and twiddles of the
// half-size complex FFT, plus the untangling twiddles of the real
// packing. Plans are immutable after construction and shared.
type fftPlan struct {
	n    int // real transform size
	half int // n/2, the complex FFT size
	rev  []int32
	// w[j] = e^{-2πi·j/half}, j < half/2 — stage twiddles of the
	// half-size FFT (a stage of length L indexes w[j·half/L]).
	w []complex128
	// unt[k] = e^{-2πi·k/n}, k ≤ half — untangle twiddles.
	unt []complex128
}

var fftPlans sync.Map // int (real size) -> *fftPlan

func planFor(n int) *fftPlan {
	if p, ok := fftPlans.Load(n); ok {
		return p.(*fftPlan)
	}
	half := n / 2
	p := &fftPlan{n: n, half: half}
	p.rev = make([]int32, half)
	shift := 64 - uint(bits.TrailingZeros(uint(half)))
	for i := range p.rev {
		p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	p.w = make([]complex128, half/2)
	for j := range p.w {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(half))
		p.w[j] = complex(c, s)
	}
	p.unt = make([]complex128, half+1)
	for k := range p.unt {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.unt[k] = complex(c, s)
	}
	actual, _ := fftPlans.LoadOrStore(n, p)
	return actual.(*fftPlan)
}

// nextPow2 returns the smallest power of two ≥ v (and ≥ 4).
func nextPow2(v int) int {
	n := 4
	for n < v {
		n <<= 1
	}
	return n
}

// fftInPlace runs the iterative radix-2 decimation-in-time FFT of size
// p.half over z (already in bit-reversed order is NOT assumed — the
// caller passes natural order and this permutes first).
func (p *fftPlan) fftInPlace(z []complex128) {
	for i, r := range p.rev {
		if i < int(r) {
			z[i], z[r] = z[r], z[i]
		}
	}
	half := p.half
	for l := 2; l <= half; l <<= 1 {
		step := half / l
		hl := l / 2
		for base := 0; base < half; base += l {
			tw := 0
			for j := base; j < base+hl; j++ {
				t := p.w[tw] * z[j+hl]
				z[j+hl] = z[j] - t
				z[j] = z[j] + t
				tw += step
			}
		}
	}
}

// ifftInPlace computes the unnormalized inverse FFT via the conjugation
// identity; the caller folds the 1/half factor into its own scaling.
func (p *fftPlan) ifftInPlace(z []complex128) {
	for i := range z {
		z[i] = complex(real(z[i]), -imag(z[i]))
	}
	p.fftInPlace(z)
	for i := range z {
		z[i] = complex(real(z[i]), -imag(z[i]))
	}
}

// rfft transforms the real input x (length ≤ p.n; virtually zero-padded
// to p.n) into its spectrum X[0..half] (half+1 bins), using z (length
// half) as work space. spec must have length half+1.
func (p *fftPlan) rfft(x []float64, z, spec []complex128) {
	half := p.half
	// Pack pairs of reals into the half-size complex input.
	np := len(x) / 2
	for k := 0; k < np; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	if 2*np < len(x) { // odd tail element
		z[np] = complex(x[2*np], 0)
		np++
	}
	for k := np; k < half; k++ {
		z[k] = 0
	}
	p.fftInPlace(z)
	// Untangle: X[k] = Fe[k] + e^{-2πik/n}·Fo[k] with
	// Fe = (Z[k]+conj(Z[half-k]))/2, Fo = -i(Z[k]-conj(Z[half-k]))/2.
	spec[0] = complex(real(z[0])+imag(z[0]), 0)
	spec[half] = complex(real(z[0])-imag(z[0]), 0)
	for k := 1; k <= half/2; k++ {
		zk := z[k]
		zc := z[half-k]
		fe := complex((real(zk)+real(zc))/2, (imag(zk)-imag(zc))/2)
		fo := complex((imag(zk)+imag(zc))/2, (real(zc)-real(zk))/2)
		spec[k] = fe + p.unt[k]*fo
		if k != half-k {
			// Mirror bin from conjugate symmetry of the even/odd parts:
			// Fe[half-k] = conj(Fe[k]), Fo[half-k] = conj(Fo[k]).
			feM := complex(real(fe), -imag(fe))
			foM := complex(real(fo), -imag(fo))
			spec[half-k] = feM + p.unt[half-k]*foM
		}
	}
}

// irfft transforms spec (half+1 bins) back into p.n real samples written
// to out (length ≥ p.n is not required: only the first len(out) samples
// are stored). z is work space of length half. spec is not modified.
func (p *fftPlan) irfft(spec []complex128, z []complex128, out []float64) {
	half := p.half
	// Re-tangle: Z[k] = Fe[k] + i·e^{+2πik/n}·Fo[k] with
	// Fe = (X[k]+conj(X[half-k]))/2, Fo = (X[k]-conj(X[half-k]))/2·e^{+2πik/n}.
	for k := 0; k <= half/2; k++ {
		xk := spec[k]
		xc := spec[half-k]
		fe := complex((real(xk)+real(xc))/2, (imag(xk)-imag(xc))/2)
		fo := complex((real(xk)-real(xc))/2, (imag(xk)+imag(xc))/2)
		// e^{+2πik/n} = conj(unt[k]); multiply fo then by i.
		u := p.unt[k]
		fr := real(fo)*real(u) + imag(fo)*imag(u)
		fi := imag(fo)*real(u) - real(fo)*imag(u)
		z[k] = complex(real(fe)-fi, imag(fe)+fr)
		if k != 0 && k != half-k {
			// Mirror entry from conjugate symmetry: Fe[half-k] = conj(Fe[k])
			// and Fo[half-k] = conj(Fo[k]) = conj(fo)·u (fo holds u·Fo[k]).
			feM := complex(real(fe), -imag(fe))
			foM := complex(real(fo), -imag(fo))
			frM := real(foM)*real(u) - imag(foM)*imag(u)
			fiM := real(foM)*imag(u) + imag(foM)*real(u)
			z[half-k] = complex(real(feM)-fiM, imag(feM)+frM)
		}
	}
	p.ifftInPlace(z)
	scale := 1 / float64(half)
	for i := 0; i < len(out); i++ {
		c := z[i/2]
		if i&1 == 0 {
			out[i] = real(c) * scale
		} else {
			out[i] = imag(c) * scale
		}
	}
}

// ---------------------------------------------------------------------
// Wavelet and kernel-spectrum caches.

type wavKey struct{ points, width int }

type specKey struct {
	points, width int
	n             int // FFT real size the spectrum was computed at
}

// CacheStats are the package's memoization counters, surfaced through
// the analysis obs span (ricker_cache_hits etc.).
type cacheStats struct {
	waveletHits, waveletMisses   atomic.Int64
	spectrumHits, spectrumMisses atomic.Int64
	spectrumEvictions            atomic.Int64
}

var cwtCacheStats cacheStats

// spectrumCacheBudget bounds the kernel-spectrum cache in float64-
// equivalents (complex128 counts as two). 1<<21 ≈ 16 MiB. When a store
// would exceed it, the cache is cleared wholesale: the steady-state
// serve path re-warms one ladder's worth immediately, and wholesale
// clearing keeps the policy deterministic.
const spectrumCacheBudget = 1 << 21

var waveletCache struct {
	sync.RWMutex
	m map[wavKey][]float64
}

var spectrumCache struct {
	sync.RWMutex
	m    map[specKey][]complex128
	cost int
}

// rickerCached returns the memoized Ricker wavelet for integer widths —
// the per-(points,width) construction FindPeaksCWT otherwise re-derives
// on every call of the width ladder — and whether it was a cache hit.
// The returned slice is shared and must not be mutated.
func rickerCached(points, width int) ([]float64, bool) {
	k := wavKey{points, width}
	waveletCache.RLock()
	wav, ok := waveletCache.m[k]
	waveletCache.RUnlock()
	if ok {
		cwtCacheStats.waveletHits.Add(1)
		return wav, true
	}
	cwtCacheStats.waveletMisses.Add(1)
	wav = Ricker(points, float64(width))
	waveletCache.Lock()
	if waveletCache.m == nil {
		waveletCache.m = make(map[wavKey][]float64)
	}
	// A racing fill computed the identical slice; either wins.
	waveletCache.m[k] = wav
	waveletCache.Unlock()
	return wav, false
}

// kernelSpectrum returns the cached rfft of the (points,width) Ricker
// wavelet at FFT size p.n, computing and caching it on miss, and whether
// it was a cache hit. z is caller scratch (length p.half). The returned
// slice is shared and must not be mutated.
func kernelSpectrum(p *fftPlan, points, width int, z []complex128) ([]complex128, bool) {
	k := specKey{points: points, width: width, n: p.n}
	spectrumCache.RLock()
	spec, ok := spectrumCache.m[k]
	spectrumCache.RUnlock()
	if ok {
		cwtCacheStats.spectrumHits.Add(1)
		return spec, true
	}
	cwtCacheStats.spectrumMisses.Add(1)
	wav, _ := rickerCached(points, width)
	spec = make([]complex128, p.half+1)
	p.rfft(wav, z, spec)
	spectrumCache.Lock()
	if spectrumCache.m == nil {
		spectrumCache.m = make(map[specKey][]complex128)
	}
	cost := 2 * (p.half + 1)
	if spectrumCache.cost+cost > spectrumCacheBudget {
		spectrumCache.m = make(map[specKey][]complex128)
		spectrumCache.cost = 0
		cwtCacheStats.spectrumEvictions.Add(1)
	}
	spectrumCache.m[k] = spec
	spectrumCache.cost += cost
	spectrumCache.Unlock()
	return spec, false
}

// ---------------------------------------------------------------------
// Ladder scratch.

// cwtScratch is the reusable state of one width-ladder computation: the
// FFT work buffers and the signal spectrum, valid for one (signal, FFT
// size) pairing at a time. Pooled across FindPeaksCWT calls.
type cwtScratch struct {
	plan    *fftPlan
	z       []complex128 // half-size FFT work
	spec    []complex128 // pointwise product buffer (half+1)
	sigSpec []complex128 // signal spectrum (half+1)
	tmp     []float64    // irfft output window (off+n samples)
	rows    []float64    // flat CWT matrix backing (len(widths)·n)
	views   [][]float64  // per-width row views into rows
	row0    []float64    // |cwt[0]| noise row
	noise   []float64    // percentile window copy
}

var cwtScratchPool = sync.Pool{New: func() any { return new(cwtScratch) }}

// prepare sizes the scratch for FFT size n and computes the signal
// spectrum once for the whole ladder.
func (st *cwtScratch) prepare(p *fftPlan, signal []float64) {
	st.plan = p
	if cap(st.z) < p.half {
		st.z = make([]complex128, p.half)
	}
	st.z = st.z[:p.half]
	if cap(st.spec) < p.half+1 {
		st.spec = make([]complex128, p.half+1)
	}
	st.spec = st.spec[:p.half+1]
	if cap(st.sigSpec) < p.half+1 {
		st.sigSpec = make([]complex128, p.half+1)
	}
	st.sigSpec = st.sigSpec[:p.half+1]
	p.rfft(signal, st.z, st.sigSpec)
}

// convolveSameFFT computes numpy mode="same" convolution of the signal
// prepared in st with the (points,width) Ricker kernel, writing the n
// centre samples into out. The cyclic convolution is exact (no
// wraparound) because the plan size satisfies p.n ≥ n+m-1.
func (st *cwtScratch) convolveSameFFT(points, width, n int, out []float64, c *cwtCounters) {
	p := st.plan
	kspec, hit := kernelSpectrum(p, points, width, st.z)
	if c != nil {
		if hit {
			c.spectrumHits++
		} else {
			c.spectrumMisses++
		}
	}
	for i := range st.spec {
		st.spec[i] = st.sigSpec[i] * kspec[i]
	}
	// numpy "same" keeps full-convolution indices [m/2, m/2+n): inverse-
	// transform the first off+n samples and copy out the window.
	off := points / 2
	if cap(st.tmp) < off+n {
		st.tmp = make([]float64, off+n)
	}
	tmp := st.tmp[:off+n]
	p.irfft(st.spec, st.z, tmp)
	copy(out, tmp[off:])
}

// ---------------------------------------------------------------------
// Ladder construction and the direct/FFT cutover.

// convMode selects the convolution backend for a ladder. Auto picks per
// row by operation count; the forced modes exist for the bin-identity
// tests that assert the two backends detect identical peaks.
type convMode int

const (
	convModeAuto convMode = iota
	convModeDirect
	convModeFFT
)

// fftMinSignal is the size cutover: signals shorter than this always use
// direct convolution. The paper-scale goldens (hundreds of bins) stay on
// the exact direct path; the FFT pays off on the serve path's large
// degenerate histograms.
const fftMinSignal = 1024

// cwtCounters accumulates one ladder's cache and backend statistics so
// FindPeaksCWT can attribute them to its caller's obs span without
// cross-span bleed.
type cwtCounters struct {
	waveletHits, waveletMisses   int64
	spectrumHits, spectrumMisses int64
	fftRows, directRows          int64
}

// kernelPoints is the wavelet support CWT uses for a width: 10w+1,
// clipped to the signal length, floored at 3.
func kernelPoints(n, w int) int {
	points := 10*w + 1
	if points > n {
		points = n
	}
	if points < 3 {
		points = 3
	}
	return points
}

// fftRowCost approximates the per-row cost of the FFT path (pointwise
// product + inverse transform; the signal spectrum is amortized over the
// ladder) in direct-convolution multiply-add equivalents.
func fftRowCost(N int) int {
	return 6 * N * bits.Len(uint(N-1))
}

// cwtMatrix fills the scratch-backed CWT matrix: one row per width, each
// the signal convolved with that width's Ricker wavelet under numpy
// mode="same" semantics. Returned rows alias st and are valid until the
// scratch is reused.
func (st *cwtScratch) cwtMatrix(signal []float64, widths []int, mode convMode, c *cwtCounters) [][]float64 {
	n := len(signal)
	if cap(st.rows) < len(widths)*n {
		st.rows = make([]float64, len(widths)*n)
	}
	st.rows = st.rows[:len(widths)*n]
	if cap(st.views) < len(widths) {
		st.views = make([][]float64, len(widths))
	}
	st.views = st.views[:len(widths)]

	mMax := 0
	for _, w := range widths {
		if p := kernelPoints(n, w); p > mMax {
			mMax = p
		}
	}
	N := nextPow2(n + mMax - 1)
	prepared := false
	for i, w := range widths {
		points := kernelPoints(n, w)
		row := st.rows[i*n : (i+1)*n : (i+1)*n]
		useFFT := mode == convModeFFT ||
			(mode == convModeAuto && n >= fftMinSignal && n*points > fftRowCost(N))
		if useFFT {
			if !prepared {
				// One plan and one signal transform serve the whole ladder.
				st.prepare(planFor(N), signal)
				prepared = true
			}
			st.convolveSameFFT(points, w, n, row, c)
			if c != nil {
				c.fftRows++
			}
		} else {
			wav, hit := rickerCached(points, w)
			convolveSameInto(row, signal, wav)
			if c != nil {
				c.directRows++
				if hit {
					c.waveletHits++
				} else {
					c.waveletMisses++
				}
			}
		}
		st.views[i] = row
	}
	return st.views
}
