package peaks

import (
	"fmt"
	"math"
	"testing"
)

// benchHistogram builds a histogram-like signal of n bins with four
// latency populations (the Figure 4 shape scaled to n), plus a little
// deterministic ripple so no two bins tie exactly.
func benchHistogram(n int) []float64 {
	sig := make([]float64, n)
	for _, cf := range []float64{0.10, 0.29, 0.50, 0.81} {
		c := cf * float64(n)
		sigma := float64(n) / 100
		for i := range sig {
			d := float64(i) - c
			sig[i] += 100 * math.Exp(-d*d/(2*sigma*sigma))
		}
	}
	x := uint64(0x9E3779B97F4A7C15)
	for i := range sig {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		sig[i] += float64(x%1000) / 1000
	}
	return sig
}

// ladderWidths mirrors Histogram.Peaks' automatic width ladder: bins/8
// capped at MaxAutoWidth.
func ladderWidths(n int) []int {
	maxWidth := n / 8
	if maxWidth > MaxAutoWidth {
		maxWidth = MaxAutoWidth
	}
	if maxWidth < 2 {
		maxWidth = 2
	}
	return DefaultWidths(maxWidth)
}

// BenchmarkHotCWTLadder is the analysis hot path end to end: the full
// width-ladder CWT peak detection on histograms from Figure 4 size up to
// the large degenerate-profile sizes the serve path sees under load.
// Tracked by the CI bench gate.
func BenchmarkHotCWTLadder(b *testing.B) {
	for _, n := range []int{400, 2048, 8192, 32768} {
		sig := benchHistogram(n)
		widths := ladderWidths(n)
		b.Run(fmt.Sprintf("bins=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := FindPeaksCWT(sig, widths, Options{}); len(got) == 0 {
					b.Fatal("no peaks")
				}
			}
		})
	}
}

// BenchmarkHotCWTRow times one CWT row (signal ⊛ widest Ricker wavelet
// of the ladder) — the unit the FFT cutover decides on.
func BenchmarkHotCWTRow(b *testing.B) {
	for _, n := range []int{400, 8192, 32768} {
		sig := benchHistogram(n)
		widths := ladderWidths(n)
		w := widths[len(widths)-1]
		b.Run(fmt.Sprintf("bins=%d/width=%d", n, w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := CWT(sig, []int{w})
				if len(rows[0]) != n {
					b.Fatal("bad row")
				}
			}
		})
	}
}
