package peaks

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// MaxBins caps the bin count of a histogram. Latency distributions of
// real loops span at most thousands of cycles, so the cap is far above
// anything a healthy profile produces — but a single wrapped-LBR outlier
// (a ~1e18-cycle "latency") would otherwise turn the derived bin count
// into a multi-gigabyte allocation, or overflow the int conversion into
// a negative make size. Samples beyond the capped range are clamped into
// the top bin and counted, the §3.6 graceful-degradation contract.
const MaxBins = 1 << 16

// MaxAutoWidth caps the wavelet width ladder Peaks derives from the bin
// count (the CWT's cost is roughly bins × widths²).
const MaxAutoWidth = 128

// Histogram bins scalar observations (loop latencies in cycles).
type Histogram struct {
	BinWidth float64
	Min      float64
	Counts   []float64

	// ClampedOutliers counts samples beyond the MaxBins range cap that
	// were clamped into the top bin instead of growing the histogram.
	ClampedOutliers int
	// DroppedNonFinite counts NaN/±Inf samples dropped outright: they
	// have no bin, and one NaN would otherwise poison the range.
	DroppedNonFinite int
}

// countsPool recycles Counts buffers between histograms. The analysis
// stage builds one histogram per inner loop per profile, each up to
// MaxBins bins; pooling keeps the steady-state allocation rate flat.
var countsPool = sync.Pool{New: func() any { return new([]float64) }}

// getCounts returns a zeroed float64 slice of length n, reusing pooled
// capacity when possible.
func getCounts(n int) []float64 {
	bp := countsPool.Get().(*[]float64)
	if cap(*bp) >= n {
		s := (*bp)[:n]
		*bp = nil
		countsPool.Put(bp)
		clear(s)
		return s
	}
	countsPool.Put(bp)
	return make([]float64, n)
}

// Release returns the histogram's Counts buffer to the pool. Callers that
// have finished with the histogram (including any peak detection — the
// returned peak positions do not alias Counts) may call it to recycle the
// buffer; the histogram must not be used afterwards.
func (h *Histogram) Release() {
	if h == nil || h.Counts == nil {
		return
	}
	buf := h.Counts
	h.Counts = nil
	bp := countsPool.Get().(*[]float64)
	*bp = buf[:0]
	countsPool.Put(bp)
}

// NewHistogram bins the samples with the given bin width. The range is
// derived from the finite samples, capped at MaxBins bins.
func NewHistogram(samples []float64, binWidth float64) *Histogram {
	h := &Histogram{BinWidth: binWidth}
	if binWidth <= 0 || math.IsNaN(binWidth) {
		return h
	}
	var lo, hi float64
	first := true
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			h.DroppedNonFinite++
			continue
		}
		if first {
			lo, hi = s, s
			first = false
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if first {
		return h
	}
	h.Min = lo
	n := MaxBins
	if span := (hi - lo) / binWidth; span < float64(MaxBins-1) {
		n = int(span) + 1
	}
	h.Counts = getCounts(n)
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		// Compare in float space before converting: int() of an
		// out-of-range float (a 1e300 offset) is undefined and lands
		// negative on amd64, which would clamp the outlier into bin 0
		// uncounted.
		idx := 0
		if off := (s - lo) / binWidth; off >= float64(n) {
			idx = n - 1
			h.ClampedOutliers++
		} else if off > 0 {
			idx = int(off)
		}
		h.Counts[idx]++
	}
	return h
}

// BinCenter returns the value at the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth
}

// Total returns the number of binned observations.
func (h *Histogram) Total() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Peaks runs CWT peak detection over the histogram and returns the peak
// positions in sample units (e.g. cycles), ascending.
func (h *Histogram) Peaks(maxWidth int, opt Options) []float64 {
	if len(h.Counts) == 0 {
		return nil
	}
	if len(h.Counts) < 5 {
		// Too narrow for wavelet analysis (e.g. a constant-latency loop
		// lands in one bin): report the modal bins directly. Bins below
		// 5% of the mode are noise.
		max := 0.0
		for _, c := range h.Counts {
			if c > max {
				max = c
			}
		}
		var out []float64
		for i, c := range h.Counts {
			if c >= 0.05*max && c > 0 {
				out = append(out, h.BinCenter(i))
			}
		}
		return out
	}
	if maxWidth <= 0 {
		maxWidth = len(h.Counts) / 8
		// Healthy loop-latency histograms span a few hundred bins, so
		// the derived ladder stays well under this cap. An
		// outlier-stretched histogram near MaxBins would otherwise
		// derive thousands of widths and turn the CWT quadratic —
		// minutes of work for a distribution that carries no signal.
		if maxWidth > MaxAutoWidth {
			maxWidth = MaxAutoWidth
		}
	}
	if maxWidth < 2 {
		maxWidth = 2
	}
	idx := FindPeaksCWT(h.Counts, DefaultWidths(maxWidth), opt)
	out := make([]float64, len(idx))
	for i, p := range idx {
		out[i] = h.BinCenter(p)
	}
	return out
}

// String renders a compact ASCII sketch (used by the fig4 experiment and
// the CLI).
func (h *Histogram) String() string {
	var sb strings.Builder
	max := 0.0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty histogram)\n"
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(c / max * 50))
		fmt.Fprintf(&sb, "%8.0f | %-50s %.0f\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Summary holds basic order statistics of a sample set.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// Summarize computes summary statistics.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	var sum float64
	for _, v := range cp {
		sum += v
	}
	// Linear interpolation between the closest ranks — truncating to
	// cp[int(p*(len-1))] would report P50 of [1,2] as 1.
	return Summary{
		N:    len(cp),
		Mean: sum / float64(len(cp)),
		Min:  cp[0],
		Max:  cp[len(cp)-1],
		P50:  sortedPercentile(cp, 50),
		P90:  sortedPercentile(cp, 90),
		P99:  sortedPercentile(cp, 99),
	}
}
