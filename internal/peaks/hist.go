package peaks

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram bins scalar observations (loop latencies in cycles).
type Histogram struct {
	BinWidth float64
	Min      float64
	Counts   []float64
}

// NewHistogram bins the samples with the given bin width. The range is
// derived from the data.
func NewHistogram(samples []float64, binWidth float64) *Histogram {
	if len(samples) == 0 || binWidth <= 0 {
		return &Histogram{BinWidth: binWidth}
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	n := int((hi-lo)/binWidth) + 1
	h := &Histogram{BinWidth: binWidth, Min: lo, Counts: make([]float64, n)}
	for _, s := range samples {
		h.Counts[int((s-lo)/binWidth)]++
	}
	return h
}

// BinCenter returns the value at the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth
}

// Total returns the number of binned observations.
func (h *Histogram) Total() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Peaks runs CWT peak detection over the histogram and returns the peak
// positions in sample units (e.g. cycles), ascending.
func (h *Histogram) Peaks(maxWidth int, opt Options) []float64 {
	if len(h.Counts) == 0 {
		return nil
	}
	if len(h.Counts) < 5 {
		// Too narrow for wavelet analysis (e.g. a constant-latency loop
		// lands in one bin): report the modal bins directly. Bins below
		// 5% of the mode are noise.
		max := 0.0
		for _, c := range h.Counts {
			if c > max {
				max = c
			}
		}
		var out []float64
		for i, c := range h.Counts {
			if c >= 0.05*max && c > 0 {
				out = append(out, h.BinCenter(i))
			}
		}
		return out
	}
	if maxWidth <= 0 {
		maxWidth = len(h.Counts) / 8
	}
	if maxWidth < 2 {
		maxWidth = 2
	}
	idx := FindPeaksCWT(h.Counts, DefaultWidths(maxWidth), opt)
	out := make([]float64, len(idx))
	for i, p := range idx {
		out[i] = h.BinCenter(p)
	}
	return out
}

// String renders a compact ASCII sketch (used by the fig4 experiment and
// the CLI).
func (h *Histogram) String() string {
	var sb strings.Builder
	max := 0.0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty histogram)\n"
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(c / max * 50))
		fmt.Fprintf(&sb, "%8.0f | %-50s %.0f\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Summary holds basic order statistics of a sample set.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// Summarize computes summary statistics.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	var sum float64
	for _, v := range cp {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(cp)-1))
		return cp[i]
	}
	return Summary{
		N:    len(cp),
		Mean: sum / float64(len(cp)),
		Min:  cp[0],
		Max:  cp[len(cp)-1],
		P50:  q(0.5),
		P90:  q(0.9),
		P99:  q(0.99),
	}
}
