package peaks

import (
	"testing"
)

// TestGoldenBimodalLatencyHistogram is a golden fixture mirroring
// scipy.signal.find_peaks_cwt on the paper's canonical analysis input: a
// bimodal loop-latency histogram whose low mode is the in-cache (IC)
// latency and whose high mode is the memory (MC) latency. The 128-bin
// signal is even-length and the width ladder reaches 16, so the coarse
// scales clip the Ricker wavelet to an even kernel — the exact path the
// convolveSame centering fix covers. Peak bins are asserted exactly: a
// one-bin shift here becomes a wrong Equation-1 distance downstream.
func TestGoldenBimodalLatencyHistogram(t *testing.T) {
	// IC population: tall, tight bump at bin 20 (~40 cycles at 2
	// cycles/bin). MC population: broader bump at bin 90 (~180 cycles).
	sig := gaussians(128, []int{20}, 3, 500, 0, 0)
	for i, v := range gaussians(128, []int{90}, 5, 200, 0, 0) {
		sig[i] += v
	}

	got := FindPeaksCWT(sig, DefaultWidths(16), Options{})
	want := []int{20, 90}
	if len(got) != len(want) {
		t.Fatalf("peaks = %v, want exactly %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peak %d at bin %d, want exactly bin %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestGoldenBimodalThroughHistogram drives the same fixture through the
// Histogram wrapper the analysis stage actually calls, checking the
// bin-centre → cycle conversion end to end.
func TestGoldenBimodalThroughHistogram(t *testing.T) {
	var samples []float64
	// 500 IC iterations at exactly 40 cycles, 200 MC at 180 cycles, with
	// deterministic symmetric spread so each mode stays on its centre bin.
	for _, m := range []struct {
		n      int
		cycles float64
		spread float64
	}{{500, 40, 2}, {200, 180, 4}} {
		for i := 0; i < m.n; i++ {
			off := float64(i%5-2) / 2 * m.spread
			samples = append(samples, m.cycles+off)
		}
	}
	h := NewHistogram(samples, 2)
	got := h.Peaks(0, Options{})
	if len(got) != 2 {
		t.Fatalf("want 2 latency peaks, got %v", got)
	}
	// Samples span [38, 184], so bin centres sit at Min+(i+0.5)*2: the
	// 40-cycle mode lands in bin 1 (centre 41) and the 180-cycle mode in
	// bin 70 (centre 179).
	if got[0] != 41 || got[1] != 179 {
		t.Fatalf("latency peaks = %v, want exactly [41 179]", got)
	}
}
