package peaks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussians builds a signal of gaussian bumps at the given centres.
func gaussians(n int, centres []int, sigma, amp float64, noise float64, seed int64) []float64 {
	out := make([]float64, n)
	for _, c := range centres {
		for i := range out {
			d := float64(i - c)
			out[i] += amp * math.Exp(-d*d/(2*sigma*sigma))
		}
	}
	if noise > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := range out {
			out[i] += noise * rng.Float64()
		}
	}
	return out
}

func matchPeaks(t *testing.T, got []int, want []int, tol int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("found %d peaks %v, want %d at %v", len(got), got, len(want), want)
	}
	for i := range want {
		if abs(got[i]-want[i]) > tol {
			t.Fatalf("peak %d at %d, want %d±%d (all: %v)", i, got[i], want[i], tol, got)
		}
	}
}

func TestRickerShape(t *testing.T) {
	w := Ricker(101, 4)
	// Maximum at centre, symmetric, negative side lobes.
	mid := 50
	for i := range w {
		if w[i] > w[mid] {
			t.Fatalf("ricker max not at centre: w[%d]=%v > w[mid]=%v", i, w[i], w[mid])
		}
	}
	for i := 0; i < len(w)/2; i++ {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
			t.Fatalf("ricker not symmetric at %d", i)
		}
	}
	if w[mid-8] >= 0 || w[mid+8] >= 0 {
		t.Fatal("ricker should have negative side lobes")
	}
}

func TestConvolveSameMatchesNaive(t *testing.T) {
	sig := []float64{1, 2, 3, 4, 5}
	ker := []float64{0.5, 1, 0.5}
	got := convolveSame(sig, ker)
	want := []float64{2, 4, 6, 8, 7} // manual full conv, centre 5
	// full: [0.5, 2, 4, 6, 8, 7, 2.5]; same keeps idx 1..5: [2,4,6,8,7]
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("convolve[%d] = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

// TestConvolveSameEvenKernel pins the numpy mode="same" centering for
// even-length kernels: the output window starts at full-convolution
// index m/2, one bin later than the (m-1)/2 an odd kernel uses.
// Expected rows are hand-computed full convolutions sliced at m/2.
func TestConvolveSameEvenKernel(t *testing.T) {
	cases := []struct {
		name   string
		signal []float64
		kernel []float64
		want   []float64
	}{
		{
			name:   "boxcar2",
			signal: []float64{1, 2, 3, 4},
			kernel: []float64{1, 1},
			// full = [1 3 5 7 4]; numpy same = full[1:5].
			want: []float64{3, 5, 7, 4},
		},
		{
			name:   "asymmetric4",
			signal: []float64{1, 2, 3, 4, 5, 6},
			kernel: []float64{1, 2, 1, 1},
			// full = [1 4 8 13 18 23 21 11 6]; numpy same = full[2:8].
			want: []float64{8, 13, 18, 23, 21, 11},
		},
		{
			name:   "kernel_longer_even",
			signal: []float64{1, 2, 3},
			kernel: []float64{1, 1, 1, 1},
			// full = [1 3 6 6 5 3]; numpy same = full[2:5].
			want: []float64{6, 6, 5},
		},
	}
	for _, c := range cases {
		got := convolveSame(c.signal, c.kernel)
		if len(got) != len(c.want) {
			t.Fatalf("%s: len = %d, want %d", c.name, len(got), len(c.want))
		}
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Fatalf("%s: convolve[%d] = %v, want %v (all %v)",
					c.name, i, got[i], c.want[i], got)
			}
		}
	}
}

// TestCWTClippedEvenWaveletCentered covers the path that produced the
// bug: an even len(signal) shorter than 10w+1 clips the Ricker wavelet
// to an even length. Convolving an impulse must reproduce the wavelet
// itself under numpy centering — out[i] = wavelet[i] — not a one-bin
// shift of it.
func TestCWTClippedEvenWaveletCentered(t *testing.T) {
	const n, w = 30, 3 // 10w+1 = 31 > 30 -> wavelet clipped to 30 taps (even)
	signal := make([]float64, n)
	signal[n/2] = 1
	rows := CWT(signal, []int{w})
	wav := Ricker(n, w)
	for i := range rows[0] {
		if math.Abs(rows[0][i]-wav[i]) > 1e-12 {
			t.Fatalf("clipped-wavelet response shifted: out[%d] = %v, want wavelet[%d] = %v",
				i, rows[0][i], i, wav[i])
		}
	}
}

func TestSinglePeakDetected(t *testing.T) {
	sig := gaussians(200, []int{80}, 5, 100, 0, 1)
	got := FindPeaksCWT(sig, DefaultWidths(12), Options{})
	matchPeaks(t, got, []int{80}, 3)
}

func TestFourPeaksLikeFigure4(t *testing.T) {
	// The paper's Figure 4: peaks at ~80, 230, 400, 650 cycles. Scale to
	// bins of 2 cycles: positions 40, 115, 200, 325.
	sig := gaussians(400, []int{40, 115, 200, 325}, 4, 100, 2, 2)
	got := FindPeaksCWT(sig, DefaultWidths(10), Options{})
	matchPeaks(t, got, []int{40, 115, 200, 325}, 4)
}

func TestUnequalAmplitudes(t *testing.T) {
	sig := gaussians(300, []int{50}, 4, 1000, 0, 3)
	for i := range sig {
		d := float64(i - 220)
		sig[i] += 80 * math.Exp(-d*d/(2*16))
	}
	got := FindPeaksCWT(sig, DefaultWidths(10), Options{})
	matchPeaks(t, got, []int{50, 220}, 4)
}

func TestFlatSignalNoPeaks(t *testing.T) {
	sig := make([]float64, 128)
	if got := FindPeaksCWT(sig, DefaultWidths(8), Options{}); len(got) != 0 {
		t.Fatalf("flat signal yielded peaks: %v", got)
	}
}

func TestNoiseOnlyFindsFewSpuriousPeaks(t *testing.T) {
	// Pure noise has no structure; like scipy's find_peaks_cwt, the
	// detector will still surface some wiggles, but (a) far fewer than
	// the raw local-maxima count and (b) with a strict relative-strength
	// filter almost none survive. The APT-GET analysis layer additionally
	// requires peaks to carry real probability mass.
	rng := rand.New(rand.NewSource(9))
	sig := make([]float64, 256)
	for i := range sig {
		sig[i] = rng.Float64()
	}
	raw := len(relativeMaxima(sig, 1))
	def := FindPeaksCWT(sig, DefaultWidths(10), Options{MinSNR: 2})
	if len(def) >= raw/2 {
		t.Fatalf("CWT should prune most noise maxima: %d of %d raw", len(def), raw)
	}
	strict := FindPeaksCWT(sig, DefaultWidths(10), Options{MinSNR: 2, MinRelStrength: 0.5})
	if len(strict) > 8 {
		t.Fatalf("strict relative filter should leave almost nothing: %v", strict)
	}
}

func TestEmptyInputs(t *testing.T) {
	if FindPeaksCWT(nil, DefaultWidths(4), Options{}) != nil {
		t.Fatal("nil signal should return nil")
	}
	if FindPeaksCWT([]float64{1, 2, 1}, nil, Options{}) != nil {
		t.Fatal("nil widths should return nil")
	}
}

func TestPeaksSortedAndSeparated(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		centres := []int{30 + rng.Intn(20), 120 + rng.Intn(20), 220 + rng.Intn(20)}
		sig := gaussians(300, centres, 5, 50+rng.Float64()*50, 1, seed)
		got := FindPeaksCWT(sig, DefaultWidths(10), Options{})
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeMaxima(t *testing.T) {
	row := []float64{0, 1, 3, 1, 0, 2, 5, 2, 0}
	got := relativeMaxima(row, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("relativeMaxima = %v, want [2 6]", got)
	}
	// Larger order suppresses the smaller bump.
	got = relativeMaxima(row, 4)
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("order-4 maxima = %v, want [6]", got)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := percentile(vals, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(vals, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile(vals, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("percentile mutated input")
	}
}

func TestHistogramBinningAndPeaks(t *testing.T) {
	// Loop latencies: 5000 at ~20 cycles, 1000 at ~240 cycles.
	rng := rand.New(rand.NewSource(4))
	var samples []float64
	for i := 0; i < 5000; i++ {
		samples = append(samples, 20+rng.NormFloat64()*2)
	}
	for i := 0; i < 1000; i++ {
		samples = append(samples, 240+rng.NormFloat64()*4)
	}
	h := NewHistogram(samples, 2)
	if h.Total() != 6000 {
		t.Fatalf("total = %v", h.Total())
	}
	got := h.Peaks(0, Options{})
	if len(got) != 2 {
		t.Fatalf("want 2 latency peaks, got %v", got)
	}
	if math.Abs(got[0]-20) > 6 || math.Abs(got[1]-240) > 8 {
		t.Fatalf("peak positions off: %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 2)
	if h.Total() != 0 || len(h.Peaks(4, Options{})) != 0 {
		t.Fatal("empty histogram should have no peaks")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 || s.Mean != 5.5 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.P50 < 5 || s.P50 > 6 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 1, 5, 5}, 1)
	if s := h.String(); len(s) == 0 {
		t.Fatal("histogram sketch empty")
	}
}
