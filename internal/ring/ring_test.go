package ring

import (
	"fmt"
	"testing"
)

func mustNew(t *testing.T, members []string, vnodes int) *Ring {
	t.Helper()
	r, err := New(members, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fp-%06d", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty membership must error")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member address must error")
	}
	r := mustNew(t, []string{"b", "a", "b"}, 8) // dedup + sort
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members = %v", got)
	}
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := mustNew(t, []string{"s1", "s2", "s3"}, 64)
	b := mustNew(t, []string{"s3", "s1", "s2"}, 64)
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s depends on configuration order: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3"}
	r := mustNew(t, members, DefaultVirtualNodes)
	counts := map[string]int{}
	const n = 30000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	want := n / len(members)
	for _, m := range members {
		got := counts[m]
		// Virtual nodes keep the split within a loose 2x band of even;
		// in practice it is much tighter.
		if got < want/2 || got > want*2 {
			t.Fatalf("member %s owns %d of %d keys (want near %d): %v", m, got, n, want, counts)
		}
	}
}

func TestSuccessorsDistinctAndStable(t *testing.T) {
	r := mustNew(t, []string{"s1", "s2", "s3", "s4"}, 32)
	for _, k := range keys(200) {
		succ := r.Successors(k, 0)
		if len(succ) != 4 {
			t.Fatalf("Successors(%s) = %v, want all 4 members", k, succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("failover order must start at the owner: %v vs %s", succ, r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member in failover order: %v", succ)
			}
			seen[m] = true
		}
		// A prefix request agrees with the full order.
		if two := r.Successors(k, 2); two[0] != succ[0] || two[1] != succ[1] {
			t.Fatalf("Successors(%s, 2) = %v, full = %v", k, two, succ)
		}
	}
}

// TestMinimalRemapping: removing one member must only move the keys it
// owned; every other key keeps its owner. Adding a member must move
// roughly 1/N of the keyspace to it and nothing between survivors.
func TestMinimalRemapping(t *testing.T) {
	full := mustNew(t, []string{"s1", "s2", "s3"}, DefaultVirtualNodes)
	reduced := mustNew(t, []string{"s1", "s2"}, DefaultVirtualNodes)

	moved := 0
	for _, k := range keys(10000) {
		was, is := full.Owner(k), reduced.Owner(k)
		if was != "s3" && was != is {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, was, is)
		}
		if was == "s3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("s3 owned nothing — balance is broken")
	}

	grown := mustNew(t, []string{"s1", "s2", "s3", "s4"}, DefaultVirtualNodes)
	gained := 0
	for _, k := range keys(10000) {
		was, is := full.Owner(k), grown.Owner(k)
		if is == "s4" {
			gained++
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though neither is the new member", k, was, is)
		}
	}
	// Expect ~1/4 of keys on the new member; allow a wide band.
	if gained < 10000/8 || gained > 10000/2 {
		t.Fatalf("new member gained %d of 10000 keys, want ~2500", gained)
	}
}

func TestSingleMemberOwnsEverything(t *testing.T) {
	r := mustNew(t, []string{"only"}, 16)
	for _, k := range keys(50) {
		if r.Owner(k) != "only" {
			t.Fatal("single member must own every key")
		}
		if succ := r.Successors(k, 5); len(succ) != 1 || succ[0] != "only" {
			t.Fatalf("Successors = %v", succ)
		}
	}
}
