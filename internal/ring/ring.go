// Package ring is the fleet's consistent-hash ring: a deterministic
// mapping from profile fingerprints to shard addresses that moves only
// ~1/N of the keyspace when a shard joins or leaves.
//
// Each member is placed at many points on a 64-bit hash circle (virtual
// nodes), which evens out the keyspace split far beyond what one point
// per member gives. A key is owned by the first point clockwise of its
// hash; the failover order for a key is the sequence of *distinct*
// members encountered continuing clockwise, so every key has a stable,
// member-diverse successor list the router can retry along.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member point count when New is given a
// non-positive value. 128 points per member keeps the max/min keyspace
// share within ~1.3x for small fleets.
const DefaultVirtualNodes = 128

// point is one virtual node on the circle.
type point struct {
	hash   uint64
	member int32 // index into members
}

// Ring is an immutable consistent-hash ring. Build a new one to change
// membership; Owner and Successors are safe for concurrent use.
type Ring struct {
	members []string
	points  []point
}

// hashKey maps an arbitrary string onto the circle. SHA-256 (truncated)
// rather than a cheap mixer: fingerprints are themselves hex strings of
// a truncated SHA-256, and re-hashing keeps vnode placement and key
// placement identically distributed regardless of key shape.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over the given member addresses with vnodes points
// per member (≤0 selects DefaultVirtualNodes). Members are deduplicated;
// order does not affect placement (placement depends only on the member
// string), so two routers configured with the same shard set in any
// order agree on every key.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	var distinct []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			distinct = append(distinct, m)
		}
	}
	if len(distinct) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	sort.Strings(distinct)

	r := &Ring{
		members: distinct,
		points:  make([]point, 0, len(distinct)*vnodes),
	}
	for mi, m := range distinct {
		for v := 0; v < vnodes; v++ {
			h := hashKey(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member so placement stays
		// total-ordered and configuration-independent.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the distinct member addresses in sorted order.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// start returns the index of the first point clockwise of key's hash.
func (r *Ring) start(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return i
}

// Owner returns the member that owns key.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.start(key)].member]
}

// Successors returns up to n distinct members in key's failover order:
// the owner first, then each new member met walking clockwise. n ≤ 0 or
// beyond the membership returns all members in failover order.
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, visited := r.start(key), 0; visited < len(r.points) && len(out) < n; visited++ {
		p := r.points[(i+visited)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
