package planstore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"aptget/internal/obs"
	"aptget/internal/wire"
)

// entry is one cached plan set.
type entry struct {
	key    Key
	plans  []byte // canonical wire plan-set bytes
	source wire.Fingerprint
}

// Local is the in-memory Backend: a bounded LRU of plan sets with three
// indexes — exact key, fingerprint (the GET path), and loop-shape hash
// (most recent entry per structure, the stale-match path).
//
// Invariant: at most one entry per fingerprint. A Put whose fingerprint
// is already stored refreshes the surviving element in place and
// repoints every index at it, rather than inserting a duplicate. (The
// pre-fix code returned early from an identical insert without
// repointing byFP/byShape, so after churn the secondary indexes could
// keep serving an entry the LRU had already replaced.)
type Local struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List                         // front = most recently used; values are *entry
	byKey    map[Key]*list.Element              // exact lookup
	byFP     map[wire.Fingerprint]*list.Element // GET /v1/plans/{fp} lookup
	byShape  map[wire.ShapeHash]*list.Element   // most recent entry per loop structure

	evictions atomic.Int64

	sp atomic.Pointer[obs.Span]
}

// NewLocal returns an LRU backend holding at most capacity plan sets
// (≤0 selects DefaultCapacity).
func NewLocal(capacity int) *Local {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Local{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element),
		byFP:     make(map[wire.Fingerprint]*list.Element),
		byShape:  make(map[wire.ShapeHash]*list.Element),
	}
}

// AttachObs mirrors the eviction counter onto an obs span.
func (b *Local) AttachObs(sp *obs.Span) { b.sp.Store(sp) }

// Len returns the number of cached plan sets.
func (b *Local) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ll.Len()
}

// Counters exports the backend's counters.
func (b *Local) Counters() map[string]int64 {
	return map[string]int64{
		"plan_cache_evictions": b.evictions.Load(),
	}
}

// Lookup finds plans by exact profile fingerprint.
func (b *Local) Lookup(fp wire.Fingerprint) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.byFP[fp]
	if !ok {
		return Entry{}, false
	}
	b.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return Entry{Plans: e.plans, Source: e.source}, true
}

// LookupKey finds plans by exact key.
func (b *Local) LookupKey(key Key) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.byKey[key]
	if !ok {
		return Entry{}, false
	}
	b.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return Entry{Plans: e.plans, Source: e.source}, true
}

// LookupShape finds the most recently stored same-shape entry.
func (b *Local) LookupShape(shape wire.ShapeHash) (Entry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if shape == "" {
		return Entry{}, false
	}
	el, ok := b.byShape[shape]
	if !ok {
		return Entry{}, false
	}
	b.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return Entry{Plans: e.plans, Source: e.source}, true
}

// Put stores plans under key at the LRU front, evicting past capacity.
// An insert whose fingerprint is already cached — a racing identical
// insert, a replication push, or a shape upgrade of a fingerprint-only
// handoff alias — refreshes the surviving element in place and repoints
// the fingerprint and shape indexes at it.
func (b *Local) Put(key Key, e Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()

	if el, ok := b.byFP[key.Profile]; ok {
		en := el.Value.(*entry)
		en.plans, en.source = e.Plans, e.Source
		if key.Shape != "" && en.key != key {
			// Re-index under the richer key (a handoff alias learning its
			// shape, or a pathological shape change): drop the old key and
			// its shape index if this element owned it.
			delete(b.byKey, en.key)
			if en.key.Shape != "" && en.key.Shape != key.Shape && b.byShape[en.key.Shape] == el {
				delete(b.byShape, en.key.Shape)
			}
			en.key = key
			b.byKey[key] = el
		}
		if en.key.Shape != "" {
			b.byShape[en.key.Shape] = el // repoint: this element is now the freshest of its shape
		}
		b.ll.MoveToFront(el)
		return
	}

	el := b.ll.PushFront(&entry{key: key, plans: e.Plans, source: e.Source})
	b.byKey[key] = el
	b.byFP[key.Profile] = el
	if key.Shape != "" {
		b.byShape[key.Shape] = el
	}
	for b.ll.Len() > b.capacity {
		back := b.ll.Back()
		old := back.Value.(*entry)
		b.ll.Remove(back)
		delete(b.byKey, old.key)
		delete(b.byFP, old.key.Profile) // one entry per fingerprint, so this index is ours
		if old.key.Shape != "" && b.byShape[old.key.Shape] == back {
			delete(b.byShape, old.key.Shape)
		}
		b.evictions.Add(1)
		b.sp.Load().Add("plan_cache_evictions", 1)
	}
}
