package planstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"aptget/internal/wire"
)

// Fleet-internal HTTP headers. HeaderInternal marks a request as coming
// from a sibling shard (or a backend acting for one): the serving
// daemon answers from its local backend only, so warm handoffs cannot
// recurse around the fleet. HeaderShape and HeaderSource carry the key
// metadata plan bytes alone do not encode.
const (
	HeaderInternal = "X-Apt-Internal"
	HeaderShape    = "X-Apt-Shape"
	HeaderSource   = "X-Apt-Source"
)

// Remote is an HTTP-backed Backend: a client for another daemon's
// /v1/plans surface, so a diskless front can serve from a remote cache,
// and the Replicated backend can treat sibling shards as peers.
//
// LookupShape is unsupported (the HTTP surface is fingerprint-addressed)
// and always misses; stale-shape matching stays a local-policy concern.
type Remote struct {
	base   string
	client *http.Client

	gets, puts, errors atomic.Int64
}

// DefaultRemoteTimeout bounds one remote lookup or replication push.
const DefaultRemoteTimeout = 5 * time.Second

// NewRemote returns a backend over the daemon at base (host:port or
// http URL). timeout ≤0 selects DefaultRemoteTimeout.
func NewRemote(base string, timeout time.Duration) *Remote {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	return &Remote{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: timeout},
	}
}

// Base returns the remote's base URL.
func (r *Remote) Base() string { return r.base }

// Lookup fetches plans by fingerprint from the remote daemon.
func (r *Remote) Lookup(fp wire.Fingerprint) (Entry, bool) {
	r.gets.Add(1)
	req, err := http.NewRequest(http.MethodGet, r.base+"/v1/plans/"+string(fp), nil)
	if err != nil {
		r.errors.Add(1)
		return Entry{}, false
	}
	req.Header.Set(HeaderInternal, "1")
	resp, err := r.client.Do(req)
	if err != nil {
		r.errors.Add(1)
		return Entry{}, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			r.errors.Add(1)
		}
		return Entry{}, false
	}
	plans, err := io.ReadAll(resp.Body)
	if err != nil {
		r.errors.Add(1)
		return Entry{}, false
	}
	src := wire.Fingerprint(resp.Header.Get(HeaderSource))
	if src == "" {
		src = fp
	}
	return Entry{Plans: plans, Source: src}, true
}

// LookupKey approximates exact-key lookup by fingerprint (the remote
// surface is fingerprint-addressed; fingerprints are content addresses,
// so the shape cannot disagree for canonical profiles).
func (r *Remote) LookupKey(key Key) (Entry, bool) { return r.Lookup(key.Profile) }

// LookupShape always misses: stale-shape matching is local policy.
func (r *Remote) LookupShape(wire.ShapeHash) (Entry, bool) { return Entry{}, false }

// Put pushes plans to the remote daemon's replication endpoint
// (PUT /v1/plans/{fp}). Best-effort: failures are counted, not raised.
func (r *Remote) Put(key Key, e Entry) {
	r.puts.Add(1)
	req, err := http.NewRequest(http.MethodPut,
		r.base+"/v1/plans/"+string(key.Profile), bytes.NewReader(e.Plans))
	if err != nil {
		r.errors.Add(1)
		return
	}
	req.Header.Set(HeaderInternal, "1")
	req.Header.Set("Content-Type", "application/octet-stream")
	if key.Shape != "" {
		req.Header.Set(HeaderShape, string(key.Shape))
	}
	if e.Source != "" {
		req.Header.Set(HeaderSource, string(e.Source))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.errors.Add(1)
	}
}

// Len asks the remote daemon's healthz for its cache size (0 when
// unreachable).
func (r *Remote) Len() int {
	resp, err := r.client.Get(r.base + "/v1/healthz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var h struct {
		CacheEntries int `json:"cache_entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0
	}
	return h.CacheEntries
}

// Counters exports the remote client's counters, qualified by base so a
// replicated store's peers stay distinguishable.
func (r *Remote) Counters() map[string]int64 {
	c := map[string]int64{
		"remote_plan_gets": r.gets.Load(),
		"remote_plan_puts": r.puts.Load(),
	}
	if n := r.errors.Load(); n > 0 {
		c["remote_plan_errors"] = n
	}
	return c
}

// String names the remote for logs.
func (r *Remote) String() string { return fmt.Sprintf("remote(%s)", r.base) }
