package planstore

import (
	"sync/atomic"

	"aptget/internal/wire"
)

// Peer is a sibling shard the replicated store can pull warm handoffs
// from and push replicas to. *Remote implements it; tests fake it.
type Peer interface {
	Lookup(fp wire.Fingerprint) (Entry, bool)
	Put(key Key, e Entry)
}

// Replicated is a Local (or any Backend) joined to its sibling shards:
//
//   - Warm handoff (pull): a miss asks each sibling for the plans by
//     fingerprint before the caller falls back to computing, so a ring
//     resize or shard restart re-serves cached analyses instead of
//     re-running them.
//   - Replication (push, optional): every Put is forwarded best-effort
//     to the siblings, so any single shard can die without losing the
//     fleet's plans.
//
// The embedded Backend serves all local operations; only Handoff, Put,
// and Counters are layered.
type Replicated struct {
	Backend
	peers []Peer
	push  bool

	handoffHits, handoffMisses, pushes atomic.Int64
}

// NewReplicated joins local to its peers. push enables synchronous
// best-effort replication of every Put to every peer.
func NewReplicated(local Backend, peers []Peer, push bool) *Replicated {
	return &Replicated{Backend: local, peers: peers, push: push}
}

// Handoff sweeps the siblings for plans by fingerprint, first hit wins.
func (r *Replicated) Handoff(fp wire.Fingerprint) (Entry, bool) {
	for _, p := range r.peers {
		if e, ok := p.Lookup(fp); ok {
			r.handoffHits.Add(1)
			return e, true
		}
	}
	r.handoffMisses.Add(1)
	return Entry{}, false
}

// Put stores locally, then (when push replication is on) forwards to
// every sibling. Peer failures are the peer's to count.
func (r *Replicated) Put(key Key, e Entry) {
	r.Backend.Put(key, e)
	if !r.push {
		return
	}
	for _, p := range r.peers {
		r.pushes.Add(1)
		p.Put(key, e)
	}
}

// PutLocal stores into the local layer only, never pushing to peers —
// the path for plans that already came *from* a peer (replication
// receipts, warm handoffs), so pushes cannot echo around the fleet.
func (r *Replicated) PutLocal(key Key, e Entry) { r.Backend.Put(key, e) }

// Counters merges the local backend's counters with the handoff and
// replication traffic, plus any countable peers.
func (r *Replicated) Counters() map[string]int64 {
	c := r.Backend.Counters()
	c["plan_cache_handoff_hits"] = r.handoffHits.Load()
	c["plan_cache_handoff_misses"] = r.handoffMisses.Load()
	if r.push {
		c["plan_cache_replication_pushes"] = r.pushes.Load()
	}
	for _, p := range r.peers {
		if pc, ok := p.(interface{ Counters() map[string]int64 }); ok {
			for k, v := range pc.Counters() {
				c[k] += v
			}
		}
	}
	return c
}
