// Package planstore is aptgetd's content-addressed plan cache: a
// bounded LRU of encoded plan sets keyed by (profile fingerprint,
// program shape hash), with two policies layered on the plain cache:
//
//   - Single-flight deduplication: N concurrent requests for the same
//     profile trigger exactly one analysis; the rest wait on the first
//     computation and share its result. Analysis is the expensive step
//     (CWT over every delinquent load's latency distribution), and a
//     fleet pushing the same binary re-profiles in bursts.
//   - Stale-profile matching (after Ayupov et al.): when an exact
//     fingerprint misses, an entry whose *loop structure* matches — same
//     nesting, latch and block shape, raw PCs ignored — is served
//     instead, flagged stale. Plans survive binary drift: a recompile
//     that moved code but kept the loop nest reuses the prior analysis
//     instead of re-running it.
//
// The store is safe for concurrent use and never blocks readers on a
// running computation for a *different* key.
package planstore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"aptget/internal/obs"
	"aptget/internal/wire"
)

// Key addresses one profile's plans.
type Key struct {
	Profile wire.Fingerprint
	Shape   wire.ShapeHash
}

// Outcome says how a request was served.
type Outcome int

// Serving outcomes.
const (
	// OutcomeMiss: no usable entry; this request ran the analysis.
	OutcomeMiss Outcome = iota
	// OutcomeHit: exact fingerprint hit (including requests that waited
	// on an in-flight computation of the same key).
	OutcomeHit
	// OutcomeStaleMatch: exact fingerprint missed, but an entry with the
	// same loop-structure hash was served without re-running analysis.
	OutcomeStaleMatch
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeStaleMatch:
		return "stale_match"
	}
	return "miss"
}

// Result describes how a GetOrCompute call was served.
type Result struct {
	Outcome Outcome
	// Source is the fingerprint of the profile the served plans were
	// computed from. Equal to the request's fingerprint except on stale
	// matches, where it names the matched prior profile.
	Source wire.Fingerprint
}

// entry is one cached plan set.
type entry struct {
	key    Key
	plans  []byte // canonical wire plan-set bytes
	source wire.Fingerprint
}

// call is one in-flight computation other requests can wait on.
type call struct {
	done  chan struct{}
	plans []byte
	src   wire.Fingerprint
	err   error
}

// Store is the bounded LRU plan cache.
type Store struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List                         // front = most recently used; values are *entry
	byKey    map[Key]*list.Element              // exact lookup
	byFP     map[wire.Fingerprint]*list.Element // GET /v1/plans/{fp} lookup
	byShape  map[wire.ShapeHash]*list.Element   // most recent entry per loop structure
	inflight map[Key]*call

	hits, staleMatches, misses, evictions atomic.Int64

	sp *obs.Span // optional mirror of the counters into the obs registry
}

// DefaultCapacity bounds the cache when New is given a non-positive
// capacity.
const DefaultCapacity = 512

// New returns a store holding at most capacity plan sets (≤0 selects
// DefaultCapacity).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element),
		byFP:     make(map[wire.Fingerprint]*list.Element),
		byShape:  make(map[wire.ShapeHash]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// AttachObs mirrors the store's counters onto an obs span (aptgetd
// -report): every hit/stale-match/miss/eviction is Add()ed there too, so
// a report written by the daemon agrees with /v1/metrics.
func (s *Store) AttachObs(sp *obs.Span) {
	s.mu.Lock()
	s.sp = sp
	s.mu.Unlock()
}

// Len returns the number of cached plan sets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Counters exports the store's counters under the names the obs layer
// and /v1/metrics share.
func (s *Store) Counters() map[string]int64 {
	return map[string]int64{
		"plan_cache_hits":          s.hits.Load(),
		"plan_cache_stale_matches": s.staleMatches.Load(),
		"plan_cache_misses":        s.misses.Load(),
		"plan_cache_evictions":     s.evictions.Load(),
	}
}

// Get looks up plans by exact profile fingerprint (the GET /v1/plans
// path, where no shape hash is available). It does not count as a cache
// hit or miss — ingestion owns the hit/miss accounting.
func (s *Store) Get(fp wire.Fingerprint) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byFP[fp]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*entry).plans, true
}

// GetOrCompute serves key from the cache, from a same-shape stale entry,
// from an in-flight computation of the same key, or — exactly once per
// key — by running compute. compute runs without the store lock held.
func (s *Store) GetOrCompute(key Key, compute func() ([]byte, error)) ([]byte, Result, error) {
	s.mu.Lock()

	// 1. Exact hit.
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*entry)
		s.count(&s.hits, "plan_cache_hits")
		s.mu.Unlock()
		return e.plans, Result{Outcome: OutcomeHit, Source: e.source}, nil
	}

	// 2. Same key already being computed: wait for it rather than
	// serving stale — the exact answer is moments away.
	if c, ok := s.inflight[key]; ok {
		s.count(&s.hits, "plan_cache_hits")
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, Result{}, c.err
		}
		return c.plans, Result{Outcome: OutcomeHit, Source: c.src}, nil
	}

	// 3. Stale match: an entry computed from a different profile of the
	// same loop structure. Serve its plans verbatim, no analysis, and
	// alias them under the new fingerprint so the follow-up GET (and
	// repeat ingests of this exact profile) hit exactly.
	if el, ok := s.byShape[key.Shape]; ok {
		prior := el.Value.(*entry)
		s.count(&s.staleMatches, "plan_cache_stale_matches")
		res := Result{Outcome: OutcomeStaleMatch, Source: prior.source}
		plans := prior.plans
		s.insertLocked(&entry{key: key, plans: plans, source: prior.source})
		s.mu.Unlock()
		return plans, res, nil
	}

	// 4. Miss: this request runs the analysis; register the flight so
	// concurrent requests for the same key wait instead of recomputing.
	c := &call{done: make(chan struct{}), src: key.Profile}
	s.inflight[key] = c
	s.count(&s.misses, "plan_cache_misses")
	s.mu.Unlock()

	c.plans, c.err = compute()

	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil {
		s.insertLocked(&entry{key: key, plans: c.plans, source: key.Profile})
	}
	s.mu.Unlock()
	close(c.done)

	if c.err != nil {
		return nil, Result{}, c.err
	}
	return c.plans, Result{Outcome: OutcomeMiss, Source: key.Profile}, nil
}

// insertLocked adds an entry at the LRU front and evicts past capacity.
// Caller holds s.mu.
func (s *Store) insertLocked(e *entry) {
	if el, ok := s.byKey[e.key]; ok { // lost a race with an identical insert
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(e)
	s.byKey[e.key] = el
	s.byFP[e.key.Profile] = el
	s.byShape[e.key.Shape] = el
	for s.ll.Len() > s.capacity {
		back := s.ll.Back()
		old := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.byKey, old.key)
		if s.byFP[old.key.Profile] == back {
			delete(s.byFP, old.key.Profile)
		}
		if s.byShape[old.key.Shape] == back {
			delete(s.byShape, old.key.Shape)
		}
		s.count(&s.evictions, "plan_cache_evictions")
	}
}

// count bumps an atomic and mirrors it into the obs span when attached.
// Caller holds s.mu (for s.sp); the span has its own lock.
func (s *Store) count(a *atomic.Int64, name string) {
	a.Add(1)
	s.sp.Add(name, 1)
}
