// Package planstore is aptgetd's content-addressed plan cache, split
// into two layers so one policy engine serves many deployment shapes:
//
//   - A Backend is the storage half: a container of encoded plan sets
//     addressed by exact key, fingerprint, and loop-shape hash. Local
//     (bounded in-memory LRU), Replicated (a Local plus sibling shards:
//     warm handoff on miss, optional push replication), and Remote (an
//     HTTP client for another daemon's plan surface) are interchangeable
//     behind it.
//   - The Store is the policy half, layered over any backend:
//     single-flight deduplication (N concurrent requests for one profile
//     trigger exactly one analysis) and stale-profile matching (after
//     Ayupov et al.: an exact-fingerprint miss is served from an entry
//     whose loop structure matches, raw PCs ignored, so plans survive
//     binary drift without re-analysis).
//
// The store is safe for concurrent use and never blocks readers on a
// running computation for a *different* key.
package planstore

import (
	"sync"
	"sync/atomic"

	"aptget/internal/obs"
	"aptget/internal/wire"
)

// Key addresses one profile's plans.
type Key struct {
	Profile wire.Fingerprint
	Shape   wire.ShapeHash
}

// Entry is one stored plan set: the canonical wire plan-set bytes and
// the fingerprint of the profile they were computed from.
type Entry struct {
	Plans  []byte
	Source wire.Fingerprint
}

// Backend is the storage layer under the Store's policies. Lookups do
// not count hits or misses — the policy layer owns that accounting.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Lookup finds plans by exact profile fingerprint (the GET
	// /v1/plans/{fp} path, where no shape hash is available).
	Lookup(fp wire.Fingerprint) (Entry, bool)
	// LookupKey finds plans by exact key.
	LookupKey(key Key) (Entry, bool)
	// LookupShape finds the most recently stored entry with the given
	// loop-structure hash (the stale-match path).
	LookupShape(shape wire.ShapeHash) (Entry, bool)
	// Put stores plans under key, replacing any entry with the same
	// fingerprint.
	Put(key Key, e Entry)
	// Len is the number of stored plan sets.
	Len() int
	// Counters exports backend-level counters (evictions, handoffs, ...)
	// under the names /v1/metrics serves.
	Counters() map[string]int64
}

// HandoffBackend is a Backend that can serve a miss from sibling shards
// before the caller falls back to computing (plan-cache warm handoff).
type HandoffBackend interface {
	Backend
	// Handoff asks the siblings for plans by fingerprint. It is called
	// outside the store's locks and may do network I/O.
	Handoff(fp wire.Fingerprint) (Entry, bool)
}

// obsAttacher lets backends mirror their counters into an obs span.
type obsAttacher interface{ AttachObs(*obs.Span) }

// Outcome says how a request was served.
type Outcome int

// Serving outcomes.
const (
	// OutcomeMiss: no usable entry; this request ran the analysis.
	OutcomeMiss Outcome = iota
	// OutcomeHit: exact fingerprint hit (including requests that waited
	// on an in-flight computation of the same key).
	OutcomeHit
	// OutcomeStaleMatch: exact fingerprint missed, but an entry with the
	// same loop-structure hash was served without re-running analysis.
	OutcomeStaleMatch
	// OutcomeHandoff: exact fingerprint missed locally, but a sibling
	// shard had the plans and handed them off without re-analysis.
	OutcomeHandoff
	// OutcomeAggregated: the request joined an aggregation window and was
	// served from one analysis of the merged fleet profile.
	OutcomeAggregated
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeStaleMatch:
		return "stale_match"
	case OutcomeHandoff:
		return "handoff"
	case OutcomeAggregated:
		return "aggregated"
	}
	return "miss"
}

// Result describes how a GetOrCompute call was served.
type Result struct {
	Outcome Outcome
	// Source is the fingerprint of the profile the served plans were
	// computed from. Equal to the request's fingerprint except on stale
	// matches and handoffs, where it names the matched prior profile.
	Source wire.Fingerprint
}

// call is one in-flight computation other requests can wait on.
type call struct {
	done  chan struct{}
	plans []byte
	src   wire.Fingerprint
	err   error
}

// Store layers single-flight and stale-shape matching over a Backend.
type Store struct {
	mu       sync.Mutex // serializes the lookup→flight decision
	backend  Backend
	inflight map[Key]*call

	hits, staleMatches, misses, handoffs atomic.Int64

	// optional mirror of the counters into the obs registry; atomic
	// because count runs both under and outside s.mu.
	sp atomic.Pointer[obs.Span]
}

// DefaultCapacity bounds the cache when New is given a non-positive
// capacity.
const DefaultCapacity = 512

// New returns a store over a Local backend holding at most capacity
// plan sets (≤0 selects DefaultCapacity).
func New(capacity int) *Store { return NewWithBackend(NewLocal(capacity)) }

// NewWithBackend returns a store layering the caching policies over b.
func NewWithBackend(b Backend) *Store {
	return &Store{
		backend:  b,
		inflight: make(map[Key]*call),
	}
}

// Backend exposes the storage layer (daemon startup logging, tests).
func (s *Store) Backend() Backend { return s.backend }

// AttachObs mirrors the store's counters onto an obs span (aptgetd
// -report): every hit/stale-match/miss/eviction is Add()ed there too, so
// a report written by the daemon agrees with /v1/metrics.
func (s *Store) AttachObs(sp *obs.Span) {
	s.sp.Store(sp)
	if a, ok := s.backend.(obsAttacher); ok {
		a.AttachObs(sp)
	}
}

// Len returns the number of cached plan sets.
func (s *Store) Len() int { return s.backend.Len() }

// Counters exports the policy counters merged with the backend's, under
// the names the obs layer and /v1/metrics share.
func (s *Store) Counters() map[string]int64 {
	c := map[string]int64{
		"plan_cache_hits":          s.hits.Load(),
		"plan_cache_stale_matches": s.staleMatches.Load(),
		"plan_cache_misses":        s.misses.Load(),
	}
	if s.handoffs.Load() > 0 {
		c["plan_cache_handoffs"] = s.handoffs.Load()
	}
	for k, v := range s.backend.Counters() {
		c[k] += v
	}
	return c
}

// Get looks up plans by exact profile fingerprint (the GET /v1/plans
// path). On a local miss a handoff-capable backend asks its sibling
// shards — a router failing over to the next ring member still serves
// the plans the dead owner computed. Does not count hits or misses;
// ingestion owns that accounting.
func (s *Store) Get(fp wire.Fingerprint) (Entry, bool) {
	if e, ok := s.backend.Lookup(fp); ok {
		return e, true
	}
	h, ok := s.backend.(HandoffBackend)
	if !ok {
		return Entry{}, false
	}
	e, ok := h.Handoff(fp)
	if !ok {
		return Entry{}, false
	}
	s.count(&s.handoffs, "plan_cache_handoffs")
	// Cache the handed-off plans under a fingerprint-only key; a later
	// ingest of the same profile upgrades the entry with its shape. Local
	// only — the plans just came from a peer.
	s.PutLocal(Key{Profile: fp}, e)
	return e, true
}

// GetLocal is Get restricted to the local backend — the serving path
// for fleet-internal requests (siblings asking for a warm handoff must
// not recurse into another round of handoffs).
func (s *Store) GetLocal(fp wire.Fingerprint) (Entry, bool) {
	return s.backend.Lookup(fp)
}

// Put stores externally computed plans (aggregated analyses) under key,
// counting nothing. Replicating backends push to peers.
func (s *Store) Put(key Key, e Entry) { s.backend.Put(key, e) }

// localPutter is a backend (Replicated) that can store without pushing.
type localPutter interface{ PutLocal(key Key, e Entry) }

// PutLocal stores under key without replicating — the path for plans
// that already came from a peer, so pushes cannot echo around the fleet.
func (s *Store) PutLocal(key Key, e Entry) {
	if lp, ok := s.backend.(localPutter); ok {
		lp.PutLocal(key, e)
		return
	}
	s.backend.Put(key, e)
}

// TryGet serves key from the cache or a same-shape stale entry without
// ever computing: the aggregation ingest path uses it to give cached
// profiles the normal hit/stale accounting before joining a window.
func (s *Store) TryGet(key Key) ([]byte, Result, bool) {
	s.mu.Lock()
	if e, ok := s.backend.LookupKey(key); ok {
		s.count(&s.hits, "plan_cache_hits")
		s.mu.Unlock()
		return e.Plans, Result{Outcome: OutcomeHit, Source: e.Source}, true
	}
	if e, ok := s.backend.LookupShape(key.Shape); ok {
		s.count(&s.staleMatches, "plan_cache_stale_matches")
		s.mu.Unlock()
		// Alias outside the lock: Put may push to peers (network I/O), and
		// a racing duplicate alias is idempotent.
		s.backend.Put(key, Entry{Plans: e.Plans, Source: e.Source})
		return e.Plans, Result{Outcome: OutcomeStaleMatch, Source: e.Source}, true
	}
	s.mu.Unlock()
	return nil, Result{}, false
}

// GetOrCompute serves key from the cache, from a same-shape stale entry,
// from an in-flight computation of the same key, from a sibling shard's
// cache (handoff-capable backends), or — exactly once per key — by
// running compute. compute runs without the store lock held.
func (s *Store) GetOrCompute(key Key, compute func() ([]byte, error)) ([]byte, Result, error) {
	s.mu.Lock()

	// 1. Exact hit.
	if e, ok := s.backend.LookupKey(key); ok {
		s.count(&s.hits, "plan_cache_hits")
		s.mu.Unlock()
		return e.Plans, Result{Outcome: OutcomeHit, Source: e.Source}, nil
	}

	// 2. Same key already being computed: wait for it rather than
	// serving stale — the exact answer is moments away.
	if c, ok := s.inflight[key]; ok {
		s.count(&s.hits, "plan_cache_hits")
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, Result{}, c.err
		}
		return c.plans, Result{Outcome: OutcomeHit, Source: c.src}, nil
	}

	// 3. Stale match: an entry computed from a different profile of the
	// same loop structure. Serve its plans verbatim, no analysis, and
	// alias them under the new fingerprint so the follow-up GET (and
	// repeat ingests of this exact profile) hit exactly.
	if e, ok := s.backend.LookupShape(key.Shape); ok {
		s.count(&s.staleMatches, "plan_cache_stale_matches")
		res := Result{Outcome: OutcomeStaleMatch, Source: e.Source}
		s.mu.Unlock()
		// Alias outside the lock: Put may push to peers (network I/O).
		s.backend.Put(key, Entry{Plans: e.Plans, Source: e.Source})
		return e.Plans, res, nil
	}

	// 4. Local miss: this request owns the flight; concurrent requests
	// for the same key wait on it instead of duplicating the work.
	c := &call{done: make(chan struct{}), src: key.Profile}
	s.inflight[key] = c
	s.mu.Unlock()

	// 4a. Warm handoff: ask sibling shards before computing. Runs inside
	// the flight, so a burst for one key costs at most one sibling sweep.
	outcome := OutcomeMiss
	if h, ok := s.backend.(HandoffBackend); ok {
		if e, ok := h.Handoff(key.Profile); ok {
			s.count(&s.handoffs, "plan_cache_handoffs")
			c.plans, c.src = e.Plans, e.Source
			outcome = OutcomeHandoff
		}
	}

	// 4b. True miss: run the analysis.
	if outcome == OutcomeMiss {
		s.count(&s.misses, "plan_cache_misses")
		c.plans, c.err = compute()
	}

	// Publish to the backend before dropping the flight, so a request
	// arriving between the two sees the cached entry rather than opening
	// a second flight. The Put stays outside s.mu — it may push to peers.
	// Handed-off plans store locally only: they just came from a peer.
	if c.err == nil {
		if outcome == OutcomeHandoff {
			s.PutLocal(key, Entry{Plans: c.plans, Source: c.src})
		} else {
			s.backend.Put(key, Entry{Plans: c.plans, Source: c.src})
		}
	}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)

	if c.err != nil {
		return nil, Result{}, c.err
	}
	return c.plans, Result{Outcome: outcome, Source: c.src}, nil
}

// count bumps an atomic and mirrors it into the obs span when attached.
// The span is nil-safe and has its own lock.
func (s *Store) count(a *atomic.Int64, name string) {
	a.Add(1)
	s.sp.Load().Add(name, 1)
}
