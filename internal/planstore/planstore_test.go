package planstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aptget/internal/wire"
)

func key(i int, shape string) Key {
	return Key{
		Profile: wire.Fingerprint(fmt.Sprintf("fp-%03d", i)),
		Shape:   wire.ShapeHash(shape),
	}
}

func plans(i int) []byte { return []byte(fmt.Sprintf("plans-%03d", i)) }

func mustCompute(t *testing.T, s *Store, k Key, i int) Result {
	t.Helper()
	got, res, err := s.GetOrCompute(k, func() ([]byte, error) { return plans(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeMiss && !bytes.Equal(got, plans(i)) {
		t.Fatalf("computed plans corrupted: %q", got)
	}
	return res
}

func TestExactHitAfterMiss(t *testing.T) {
	s := New(4)
	k := key(1, "shape-A")
	if res := mustCompute(t, s, k, 1); res.Outcome != OutcomeMiss {
		t.Fatalf("first request outcome = %v, want miss", res.Outcome)
	}
	res := mustCompute(t, s, k, 99) // compute must NOT run again
	if res.Outcome != OutcomeHit || res.Source != k.Profile {
		t.Fatalf("second request = %+v, want exact hit", res)
	}
	got, ok := s.Get(k.Profile)
	if !ok || !bytes.Equal(got, plans(1)) {
		t.Fatalf("Get by fingerprint = %q/%v", got, ok)
	}
	c := s.Counters()
	if c["plan_cache_hits"] != 1 || c["plan_cache_misses"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestStaleMatchServesPriorPlansWithoutRecompute(t *testing.T) {
	s := New(4)
	orig := key(1, "shape-A")
	mustCompute(t, s, orig, 1)

	// Same loop structure, drifted fingerprint.
	drifted := key(2, "shape-A")
	computed := false
	got, res, err := s.GetOrCompute(drifted, func() ([]byte, error) {
		computed = true
		return plans(2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("stale match must not re-run analysis")
	}
	if res.Outcome != OutcomeStaleMatch || res.Source != orig.Profile {
		t.Fatalf("result = %+v, want stale match from %s", res, orig.Profile)
	}
	if !bytes.Equal(got, plans(1)) {
		t.Fatalf("stale match served %q, want the prior plans", got)
	}
	// The alias makes the drifted fingerprint exactly addressable.
	if aliased, ok := s.Get(drifted.Profile); !ok || !bytes.Equal(aliased, plans(1)) {
		t.Fatalf("drifted fingerprint not aliased: %q/%v", aliased, ok)
	}
	// A different shape must compute.
	other := key(3, "shape-B")
	if res := mustCompute(t, s, other, 3); res.Outcome != OutcomeMiss {
		t.Fatalf("different shape outcome = %v, want miss", res.Outcome)
	}
	c := s.Counters()
	if c["plan_cache_stale_matches"] != 1 || c["plan_cache_misses"] != 2 {
		t.Fatalf("counters = %v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	a, b, c := key(1, "sA"), key(2, "sB"), key(3, "sC")
	mustCompute(t, s, a, 1)
	mustCompute(t, s, b, 2)
	mustCompute(t, s, a, 1) // touch a; b becomes LRU
	mustCompute(t, s, c, 3) // evicts b
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if _, ok := s.Get(b.Profile); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := s.Get(a.Profile); !ok {
		t.Fatal("a (recently used) should survive")
	}
	// The evicted shape no longer stale-matches.
	if res := mustCompute(t, s, key(4, "sB"), 4); res.Outcome != OutcomeMiss {
		t.Fatalf("evicted shape outcome = %v, want miss", res.Outcome)
	}
	if got := s.Counters()["plan_cache_evictions"]; got < 1 {
		t.Fatalf("evictions = %d, want >= 1", got)
	}
}

// TestEvictionKeepsFresherShapeIndex: evicting an old entry must not
// drop the shape index when a fresher entry with the same shape exists.
func TestEvictionKeepsFresherShapeIndex(t *testing.T) {
	s := New(2)
	old := key(1, "sA")
	mustCompute(t, s, old, 1)
	fresh := key(2, "sA") // stale-aliases old, byShape now points here
	mustCompute(t, s, fresh, 2)
	mustCompute(t, s, key(3, "sB"), 3) // evicts `old` (LRU back)
	// sA must still stale-match through the fresher alias.
	res := mustCompute(t, s, key(4, "sA"), 4)
	if res.Outcome != OutcomeStaleMatch {
		t.Fatalf("outcome = %v, want stale match via surviving alias", res.Outcome)
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	s := New(8)
	k := key(1, "sA")
	var computes atomic.Int64
	release := make(chan struct{})
	const n = 32

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, res, err := s.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				<-release // hold every other goroutine in the waiting path
				return plans(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = res.Outcome
		}(i)
	}
	// Let the flight start, then release it. A racing goroutine that
	// arrives after completion still hits the cache; either way compute
	// runs once.
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	miss := 0
	for _, o := range outcomes {
		if o == OutcomeMiss {
			miss++
		}
	}
	if miss != 1 {
		t.Fatalf("%d requests reported miss, want 1", miss)
	}
	c := s.Counters()
	if c["plan_cache_misses"] != 1 || c["plan_cache_hits"] != n-1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestComputeErrorIsNotCached(t *testing.T) {
	s := New(4)
	k := key(1, "sA")
	boom := errors.New("analysis exploded")
	if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
	// Next request retries.
	if res := mustCompute(t, s, k, 1); res.Outcome != OutcomeMiss {
		t.Fatalf("retry outcome = %v, want miss", res.Outcome)
	}
}
