package planstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aptget/internal/wire"
)

func key(i int, shape string) Key {
	return Key{
		Profile: wire.Fingerprint(fmt.Sprintf("fp-%03d", i)),
		Shape:   wire.ShapeHash(shape),
	}
}

func plans(i int) []byte { return []byte(fmt.Sprintf("plans-%03d", i)) }

func mustCompute(t *testing.T, s *Store, k Key, i int) Result {
	t.Helper()
	got, res, err := s.GetOrCompute(k, func() ([]byte, error) { return plans(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeMiss && !bytes.Equal(got, plans(i)) {
		t.Fatalf("computed plans corrupted: %q", got)
	}
	return res
}

func TestExactHitAfterMiss(t *testing.T) {
	s := New(4)
	k := key(1, "shape-A")
	if res := mustCompute(t, s, k, 1); res.Outcome != OutcomeMiss {
		t.Fatalf("first request outcome = %v, want miss", res.Outcome)
	}
	res := mustCompute(t, s, k, 99) // compute must NOT run again
	if res.Outcome != OutcomeHit || res.Source != k.Profile {
		t.Fatalf("second request = %+v, want exact hit", res)
	}
	got, ok := s.Get(k.Profile)
	if !ok || !bytes.Equal(got.Plans, plans(1)) {
		t.Fatalf("Get by fingerprint = %q/%v", got.Plans, ok)
	}
	c := s.Counters()
	if c["plan_cache_hits"] != 1 || c["plan_cache_misses"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestStaleMatchServesPriorPlansWithoutRecompute(t *testing.T) {
	s := New(4)
	orig := key(1, "shape-A")
	mustCompute(t, s, orig, 1)

	// Same loop structure, drifted fingerprint.
	drifted := key(2, "shape-A")
	computed := false
	got, res, err := s.GetOrCompute(drifted, func() ([]byte, error) {
		computed = true
		return plans(2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("stale match must not re-run analysis")
	}
	if res.Outcome != OutcomeStaleMatch || res.Source != orig.Profile {
		t.Fatalf("result = %+v, want stale match from %s", res, orig.Profile)
	}
	if !bytes.Equal(got, plans(1)) {
		t.Fatalf("stale match served %q, want the prior plans", got)
	}
	// The alias makes the drifted fingerprint exactly addressable.
	if aliased, ok := s.Get(drifted.Profile); !ok || !bytes.Equal(aliased.Plans, plans(1)) {
		t.Fatalf("drifted fingerprint not aliased: %q/%v", aliased.Plans, ok)
	}
	// A different shape must compute.
	other := key(3, "shape-B")
	if res := mustCompute(t, s, other, 3); res.Outcome != OutcomeMiss {
		t.Fatalf("different shape outcome = %v, want miss", res.Outcome)
	}
	c := s.Counters()
	if c["plan_cache_stale_matches"] != 1 || c["plan_cache_misses"] != 2 {
		t.Fatalf("counters = %v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	a, b, c := key(1, "sA"), key(2, "sB"), key(3, "sC")
	mustCompute(t, s, a, 1)
	mustCompute(t, s, b, 2)
	mustCompute(t, s, a, 1) // touch a; b becomes LRU
	mustCompute(t, s, c, 3) // evicts b
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if _, ok := s.Get(b.Profile); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := s.Get(a.Profile); !ok {
		t.Fatal("a (recently used) should survive")
	}
	// The evicted shape no longer stale-matches.
	if res := mustCompute(t, s, key(4, "sB"), 4); res.Outcome != OutcomeMiss {
		t.Fatalf("evicted shape outcome = %v, want miss", res.Outcome)
	}
	if got := s.Counters()["plan_cache_evictions"]; got < 1 {
		t.Fatalf("evictions = %d, want >= 1", got)
	}
}

// TestEvictionKeepsFresherShapeIndex: evicting an old entry must not
// drop the shape index when a fresher entry with the same shape exists.
func TestEvictionKeepsFresherShapeIndex(t *testing.T) {
	s := New(2)
	old := key(1, "sA")
	mustCompute(t, s, old, 1)
	fresh := key(2, "sA") // stale-aliases old, byShape now points here
	mustCompute(t, s, fresh, 2)
	mustCompute(t, s, key(3, "sB"), 3) // evicts `old` (LRU back)
	// sA must still stale-match through the fresher alias.
	res := mustCompute(t, s, key(4, "sA"), 4)
	if res.Outcome != OutcomeStaleMatch {
		t.Fatalf("outcome = %v, want stale match via surviving alias", res.Outcome)
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	s := New(8)
	k := key(1, "sA")
	var computes atomic.Int64
	release := make(chan struct{})
	const n = 32

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, res, err := s.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				<-release // hold every other goroutine in the waiting path
				return plans(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = res.Outcome
		}(i)
	}
	// Let the flight start, then release it. A racing goroutine that
	// arrives after completion still hits the cache; either way compute
	// runs once.
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	miss := 0
	for _, o := range outcomes {
		if o == OutcomeMiss {
			miss++
		}
	}
	if miss != 1 {
		t.Fatalf("%d requests reported miss, want 1", miss)
	}
	c := s.Counters()
	if c["plan_cache_misses"] != 1 || c["plan_cache_hits"] != n-1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestComputeErrorIsNotCached(t *testing.T) {
	s := New(4)
	k := key(1, "sA")
	boom := errors.New("analysis exploded")
	if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
	// Next request retries.
	if res := mustCompute(t, s, k, 1); res.Outcome != OutcomeMiss {
		t.Fatalf("retry outcome = %v, want miss", res.Outcome)
	}
}

// checkConsistent verifies the Local backend's structural invariants:
// every index entry points at a live list element, the exact-key and
// fingerprint indexes are exactly one per element, and Len agrees with
// all of them.
func checkConsistent(t *testing.T, b *Local) {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	live := make(map[*entry]bool, b.ll.Len())
	for el := b.ll.Front(); el != nil; el = el.Next() {
		live[el.Value.(*entry)] = true
	}
	if len(live) != b.ll.Len() {
		t.Fatalf("list holds %d elements but %d distinct entries", b.ll.Len(), len(live))
	}
	if len(b.byKey) != b.ll.Len() || len(b.byFP) != b.ll.Len() {
		t.Fatalf("Len=%d but byKey=%d byFP=%d (indexes leaked or lost entries)",
			b.ll.Len(), len(b.byKey), len(b.byFP))
	}
	if len(b.byShape) > b.ll.Len() {
		t.Fatalf("byShape=%d exceeds Len=%d", len(b.byShape), b.ll.Len())
	}
	for k, el := range b.byKey {
		e := el.Value.(*entry)
		if !live[e] {
			t.Fatalf("byKey[%v] references an evicted element", k)
		}
		if e.key != k {
			t.Fatalf("byKey[%v] points at entry keyed %v", k, e.key)
		}
	}
	for fp, el := range b.byFP {
		e := el.Value.(*entry)
		if !live[e] {
			t.Fatalf("byFP[%s] references an evicted element", fp)
		}
		if e.key.Profile != fp {
			t.Fatalf("byFP[%s] points at entry keyed %v", fp, e.key)
		}
	}
	for sh, el := range b.byShape {
		e := el.Value.(*entry)
		if !live[e] {
			t.Fatalf("byShape[%s] references an evicted element", sh)
		}
		if e.key.Shape != sh {
			t.Fatalf("byShape[%s] points at entry keyed %v", sh, e.key)
		}
	}
}

// TestPutRefreshesExistingEntry is the regression test for the
// identical-insert race: a Put whose key (or fingerprint) is already
// cached must refresh the surviving element's bytes and repoint the
// fingerprint and shape indexes at it. The pre-fix insert returned
// early after an LRU touch, so the refreshed bytes were dropped and the
// shape index kept serving the older alias.
func TestPutRefreshesExistingEntry(t *testing.T) {
	b := NewLocal(4)
	kA := key(1, "sA")
	kB := key(2, "sA") // same shape, different fingerprint (a stale alias)

	b.Put(kA, Entry{Plans: plans(1), Source: kA.Profile})
	b.Put(kB, Entry{Plans: plans(2), Source: kA.Profile})

	// Re-insert kA with fresh bytes — the losing side of a racing
	// identical insert, or a replication push of a recomputed analysis.
	b.Put(kA, Entry{Plans: plans(3), Source: kA.Profile})

	got, ok := b.Lookup(kA.Profile)
	if !ok || !bytes.Equal(got.Plans, plans(3)) {
		t.Fatalf("Lookup(fpA) = %q/%v, want refreshed plans-003 (pre-fix bug: stale bytes)", got.Plans, ok)
	}
	if got, ok := b.LookupKey(kA); !ok || !bytes.Equal(got.Plans, plans(3)) {
		t.Fatalf("LookupKey(kA) = %q/%v, want refreshed plans-003", got.Plans, ok)
	}
	// The refresh made kA the freshest entry of its shape, so the shape
	// index must serve its bytes, not the older alias's.
	if got, ok := b.LookupShape("sA"); !ok || !bytes.Equal(got.Plans, plans(3)) {
		t.Fatalf("LookupShape(sA) = %q/%v, want repointed plans-003 (pre-fix bug: alias bytes)", got.Plans, ok)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (refresh must not duplicate)", b.Len())
	}
	checkConsistent(t, b)
}

// TestPutUpgradesFingerprintOnlyAlias: a warm handoff caches plans under
// a fingerprint-only key; the later full ingest of the same profile must
// upgrade that entry with its shape instead of inserting a second entry
// for the fingerprint.
func TestPutUpgradesFingerprintOnlyAlias(t *testing.T) {
	b := NewLocal(4)
	fp := wire.Fingerprint("fp-001")
	b.Put(Key{Profile: fp}, Entry{Plans: plans(1), Source: fp})
	if _, ok := b.LookupShape("sA"); ok {
		t.Fatal("fingerprint-only entry must not be shape-addressable")
	}

	full := Key{Profile: fp, Shape: "sA"}
	b.Put(full, Entry{Plans: plans(1), Source: fp})
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (upgrade, not duplicate)", b.Len())
	}
	if got, ok := b.LookupShape("sA"); !ok || !bytes.Equal(got.Plans, plans(1)) {
		t.Fatalf("LookupShape after upgrade = %q/%v", got.Plans, ok)
	}
	if got, ok := b.LookupKey(full); !ok || !bytes.Equal(got.Plans, plans(1)) {
		t.Fatalf("LookupKey after upgrade = %q/%v", got.Plans, ok)
	}
	// A handoff refresh arriving after the upgrade must not strip the
	// learned shape.
	b.Put(Key{Profile: fp}, Entry{Plans: plans(2), Source: fp})
	if got, ok := b.LookupShape("sA"); !ok || !bytes.Equal(got.Plans, plans(2)) {
		t.Fatalf("shape lost after fingerprint-only refresh: %q/%v", got.Plans, ok)
	}
	checkConsistent(t, b)
}

// TestEvictionChurnKeepsMapsConsistent drives a small cache through
// heavy churn with stale-match aliasing (many fingerprints per shape)
// and checks after every operation that no index leaks, no index
// references an evicted element, and Len agrees with the map sizes.
func TestEvictionChurnKeepsMapsConsistent(t *testing.T) {
	s := New(8)
	b := s.Backend().(*Local)
	shapes := []string{"sA", "sB", "sC"}
	for i := 0; i < 200; i++ {
		k := key(i, shapes[i%len(shapes)])
		mustCompute(t, s, k, i)
		if i%7 == 0 { // sprinkle direct Puts (replication path) into the churn
			b.Put(key(i/2, shapes[(i/2)%len(shapes)]), Entry{Plans: plans(i), Source: k.Profile})
		}
		if i%13 == 0 {
			s.Get(key(i/3, "").Profile) // fingerprint lookups touch LRU order
		}
		checkConsistent(t, b)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8 after churn", s.Len())
	}
	// Every surviving fingerprint must serve exactly its own bytes.
	b.mu.Lock()
	entries := make(map[wire.Fingerprint][]byte)
	for el := b.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		entries[e.key.Profile] = e.plans
	}
	b.mu.Unlock()
	for fp, want := range entries {
		got, ok := s.Get(fp)
		if !ok || !bytes.Equal(got.Plans, want) {
			t.Fatalf("Get(%s) = %q/%v, want %q", fp, got.Plans, ok, want)
		}
	}
}

// fakePeer is an in-memory Peer for handoff and replication tests.
type fakePeer struct {
	mu      sync.Mutex
	entries map[wire.Fingerprint]Entry
	gets    atomic.Int64
	puts    atomic.Int64
}

func newFakePeer() *fakePeer {
	return &fakePeer{entries: make(map[wire.Fingerprint]Entry)}
}

func (p *fakePeer) Lookup(fp wire.Fingerprint) (Entry, bool) {
	p.gets.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[fp]
	return e, ok
}

func (p *fakePeer) Put(k Key, e Entry) {
	p.puts.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[k.Profile] = e
}

func TestWarmHandoffServesSiblingPlans(t *testing.T) {
	peer := newFakePeer()
	k := key(1, "sA")
	peer.entries[k.Profile] = Entry{Plans: plans(1), Source: k.Profile}
	s := NewWithBackend(NewReplicated(NewLocal(4), []Peer{newFakePeer(), peer}, false))

	computed := false
	got, res, err := s.GetOrCompute(k, func() ([]byte, error) {
		computed = true
		return plans(99), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("handoff must not run the analysis")
	}
	if res.Outcome != OutcomeHandoff || !bytes.Equal(got, plans(1)) {
		t.Fatalf("result = %+v %q, want handoff of sibling plans", res, got)
	}
	// The handed-off plans are now local: a repeat is an exact hit with
	// no further sibling traffic.
	before := peer.gets.Load()
	if res := mustCompute(t, s, k, 99); res.Outcome != OutcomeHit {
		t.Fatalf("repeat outcome = %v, want hit", res.Outcome)
	}
	if peer.gets.Load() != before {
		t.Fatal("repeat request went back to the sibling")
	}
	c := s.Counters()
	if c["plan_cache_handoffs"] != 1 || c["plan_cache_misses"] != 0 {
		t.Fatalf("counters = %v", c)
	}

	// A fingerprint nobody holds falls through to compute.
	k2 := key(2, "sB")
	if res := mustCompute(t, s, k2, 2); res.Outcome != OutcomeMiss {
		t.Fatalf("unheld fingerprint outcome = %v, want miss", res.Outcome)
	}
}

func TestHandoffOnGetByFingerprint(t *testing.T) {
	peer := newFakePeer()
	fp := wire.Fingerprint("fp-001")
	peer.entries[fp] = Entry{Plans: plans(1), Source: fp}
	s := NewWithBackend(NewReplicated(NewLocal(4), []Peer{peer}, false))

	got, ok := s.Get(fp)
	if !ok || !bytes.Equal(got.Plans, plans(1)) {
		t.Fatalf("Get via handoff = %q/%v", got.Plans, ok)
	}
	// Cached locally now; GetLocal (the sibling-serving path) sees it
	// without recursing.
	if _, ok := s.GetLocal(fp); !ok {
		t.Fatal("handed-off entry not cached locally")
	}
}

func TestReplicationPushMirrorsPuts(t *testing.T) {
	peer := newFakePeer()
	s := NewWithBackend(NewReplicated(NewLocal(4), []Peer{peer}, true))
	k := key(1, "sA")
	mustCompute(t, s, k, 1)
	if e, ok := peer.entries[k.Profile]; !ok || !bytes.Equal(e.Plans, plans(1)) {
		t.Fatalf("peer did not receive the replica: %+v/%v", e, ok)
	}
	if got := s.Counters()["plan_cache_replication_pushes"]; got != 1 {
		t.Fatalf("replication pushes = %d, want 1", got)
	}
}
