package replan

import (
	"net/http/httptest"
	"testing"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/service"
	"aptget/internal/workloads"
)

// trainStale computes the stale one-shot plan: profile and analyze only
// the workload's first phase — the train/test split of Figure 12, where
// the plan ships before the later phases exist — then run the full
// workload with it.
func trainStale(t *testing.T, e workloads.Entry, cfg core.Config) ([]analysis.Plan, *core.Result) {
	t.Helper()
	train := e.New().(*workloads.Phased).Prefix(1)
	_, plans, err := core.ProfileAndPlan(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunWithPlans(e.New(), plans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return plans, res
}

func entry(t *testing.T, key string) workloads.Entry {
	t.Helper()
	e, ok := workloads.ByKey(key)
	if !ok {
		t.Fatalf("workload %q not registered", key)
	}
	return e
}

// TestAdaptiveBeatsStaleOnPhaseChange is the headline property: on the
// stride→gather workload the first-phase profile sees a hardware-covered
// stream and plans nothing, so the stale run eats every gather miss. The
// controller must detect the phase change, re-profile, hot-swap a plan,
// and land well under the stale cycle count. Run verifies the
// architectural result after the mid-run swap.
func TestAdaptiveBeatsStaleOnPhaseChange(t *testing.T) {
	e := entry(t, "phaseSG")
	cfg := core.DefaultConfig()

	plans, stale := trainStale(t, e, cfg)
	ad, err := Run(e.New(), plans, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if ad.Swaps < 1 {
		t.Fatalf("no hot-swap on a phase-changing workload; decisions: %+v", ad.Decisions)
	}
	if len(ad.SwapCycles) != ad.Swaps {
		t.Fatalf("Swaps=%d but %d swap cycles recorded", ad.Swaps, len(ad.SwapCycles))
	}
	if ad.Counters.Cycles >= stale.Counters.Cycles*4/5 {
		t.Fatalf("adaptive %d cycles vs stale %d: want at least a 1.25x win",
			ad.Counters.Cycles, stale.Counters.Cycles)
	}
	if len(ad.Plans) == 0 {
		t.Fatal("no active plans after a swap")
	}
}

// TestNoFalseTriggers pins the controller's specificity: on a stationary
// gather and on a footprint ramp whose first-phase plan stays timely,
// the one-shot plan must be left alone — and because LBR/PEBS sampling
// costs no simulated cycles, the adaptive run must then be
// cycle-identical to the stale run, not merely close.
func TestNoFalseTriggers(t *testing.T) {
	for _, key := range []string{"phaseFlat", "phaseRamp"} {
		t.Run(key, func(t *testing.T) {
			e := entry(t, key)
			cfg := core.DefaultConfig()

			plans, stale := trainStale(t, e, cfg)
			ad, err := Run(e.New(), plans, cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ad.Swaps != 0 {
				t.Fatalf("%d spurious swap(s) at cycles %v; decisions: %+v",
					ad.Swaps, ad.SwapCycles, ad.Decisions)
			}
			if ad.Counters.Cycles != stale.Counters.Cycles {
				t.Fatalf("swap-free adaptive run took %d cycles, stale %d: monitoring must be free",
					ad.Counters.Cycles, stale.Counters.Cycles)
			}
		})
	}
}

// TestServicePlannerEndToEnd swaps the in-process analysis for a real
// aptgetd round trip: the window profile is POSTed to a live server,
// the served plan set is mapped back by load name, and the swap still
// lands. This is the fleet deployment shape — one daemon re-planning
// for many running instances.
func TestServicePlannerEndToEnd(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ts.Close()

	e := entry(t, "phaseSG")
	cfg := core.DefaultConfig()
	plans, stale := trainStale(t, e, cfg)

	ad, err := Run(e.New(), plans, cfg, Options{
		Planner: &ServicePlanner{App: "phaseSG", BaseURL: ts.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Swaps < 1 {
		t.Fatalf("no hot-swap via the plan service; decisions: %+v", ad.Decisions)
	}
	if ad.Counters.Cycles >= stale.Counters.Cycles {
		t.Fatalf("service-planned adaptive run (%d cycles) did not beat stale (%d)",
			ad.Counters.Cycles, stale.Counters.Cycles)
	}
}

// TestDecisionLogShape checks the controller's observability contract:
// one decision per window, monotone cycles, and triggered windows carry
// a reason.
func TestDecisionLogShape(t *testing.T) {
	e := entry(t, "phaseSG")
	cfg := core.DefaultConfig()
	plans, _ := trainStale(t, e, cfg)
	ad, err := Run(e.New(), plans, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	var prev uint64
	for i, d := range ad.Decisions {
		if d.Window != i+1 {
			t.Fatalf("decision %d has window index %d, want %d (windows are 1-based)", i, d.Window, i+1)
		}
		if d.Cycle < prev {
			t.Fatalf("decision cycles went backwards: %d after %d", d.Cycle, prev)
		}
		prev = d.Cycle
		if d.Triggered && d.Reason == "" {
			t.Fatalf("window %d triggered without a reason", i)
		}
		if d.Swapped && !d.Triggered {
			t.Fatalf("window %d swapped without triggering", i)
		}
	}
}
