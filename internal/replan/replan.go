// Package replan closes the loop the paper leaves open: APT-GET's plan
// is computed once, from one profile, and Equation (1) only holds while
// the profiled phase does. The controller here drives a resumable run
// (cpu.State) in fixed cycle windows, watches the live PMU counters at
// every checkpoint boundary, and when the exposed miss latency degrades
// against the best the current plan has delivered — or the observed
// memory-component latency drifts past the plan's Equation (1)
// provenance — it re-profiles from the run's own recent LBR/PEBS
// window, re-analyzes (in process or via an aptgetd re-ingest), and
// hot-swaps the prefetch slices into the remaining execution.
package replan

import (
	"fmt"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/obs"
	"aptget/internal/passes"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
	"aptget/internal/profile"
)

// Planner turns a window profile of the live program into fresh plans.
// The program is the one under execution (stable PCs across swaps), so
// an in-process analysis can resolve loads directly.
type Planner interface {
	Plan(p *ir.Program, prof *profile.Profile) ([]analysis.Plan, error)
}

// Options tunes the feedback controller.
type Options struct {
	// Window is the checkpoint interval in cycles (default 100k — the
	// same order as the profiling stage's LBR snapshot period).
	Window uint64
	// MinWindows is the warm-up: no trigger until this many windows have
	// been observed since the start or the last swap (default 2).
	MinWindows int
	// Cooldown is how many windows after a swap the trigger stays
	// disarmed, so a swap's own transient can't cause the next (default 3).
	Cooldown int
	// DegradeFactor fires the trigger when a window's exposed-latency
	// share exceeds the best post-warm-up window since the last swap by
	// this factor (default 1.6). The same factor guards the Equation (1)
	// provenance check: an active plan whose observed memory-component
	// latency exceeds its planned MC by the factor is stale.
	DegradeFactor float64
	// MinExposedShare is the absolute floor: windows whose exposed miss
	// latency is below this share of the window's cycles never trigger,
	// however the relative picture looks (default 0.15).
	MinExposedShare float64
	// ProfileWindows is how many trailing windows feed a re-profile
	// (default 2).
	ProfileWindows int
	// MaxSwaps bounds the number of hot-swaps (default 4).
	MaxSwaps int
	// SamplePeriod is the live run's LBR snapshot interval (default 20k
	// cycles — denser than offline profiling, a window must contain
	// enough snapshots to re-measure the loop).
	SamplePeriod uint64
	// PEBSPeriod samples every Nth LLC-miss load in the live run
	// (default 43).
	PEBSPeriod uint64
	// MinWindowMisses is the minimum number of demand misses a window
	// must expose before its per-miss latency (MCObserved) is trusted
	// for the Equation (1) provenance check — a window with a handful
	// of misses divides a fill-buffer stall tail by almost nothing and
	// reads as an absurd latency (default 32).
	MinWindowMisses uint64

	// Planner computes fresh plans from a window profile; nil uses the
	// in-process analysis.
	Planner Planner

	// Obs, when non-nil, receives the controller's counters: windows,
	// triggers, swaps, and the final plan count.
	Obs *obs.Span
}

func (o *Options) fill() {
	if o.Window == 0 {
		o.Window = 100_000
	}
	if o.MinWindows == 0 {
		o.MinWindows = 2
	}
	if o.Cooldown == 0 {
		o.Cooldown = 3
	}
	if o.DegradeFactor == 0 {
		o.DegradeFactor = 1.6
	}
	if o.MinExposedShare == 0 {
		o.MinExposedShare = 0.15
	}
	if o.ProfileWindows == 0 {
		o.ProfileWindows = 2
	}
	if o.MaxSwaps == 0 {
		o.MaxSwaps = 4
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 20_000
	}
	if o.PEBSPeriod == 0 {
		o.PEBSPeriod = 43
	}
	if o.MinWindowMisses == 0 {
		o.MinWindowMisses = 32
	}
}

// Decision records what the controller saw and did at one checkpoint.
type Decision struct {
	Window       int
	Cycle        uint64
	ExposedShare float64 // DRAM+FB stall share of the window's cycles
	MPKI         float64 // window LLC misses per kilo-instruction
	HitShare     float64 // fill-buffer hits on SW-prefetched lines / demand misses
	MCObserved   float64 // average exposed DRAM latency per miss in the window
	Triggered    bool
	Swapped      bool
	Plans        int    // plans injected by the swap (when Swapped)
	Reason       string // why the trigger fired or the swap was skipped
}

// Result is the outcome of an adaptive run.
type Result struct {
	Counters   pmu.Counters
	Swaps      int
	SwapCycles []uint64
	Decisions  []Decision
	Plans      []analysis.Plan // the plans active when the run retired
}

// windowSnap is the counter state at one checkpoint boundary.
type windowSnap struct {
	cycle   uint64
	instr   uint64
	misses  uint64
	stall   uint64
	fbHitSW uint64
	samples int
	pebs    map[uint64]uint64
	stalls  map[uint64]uint64
}

func snap(cp cpu.Checkpoint, sampler *pebs.Sampler) windowSnap {
	return windowSnap{
		cycle:   cp.Cycle,
		instr:   cp.Instructions,
		misses:  cp.Counters.Mem.OffcoreDemand,
		stall:   cp.Counters.Mem.StallCycles[mem.LevelDRAM] + cp.Counters.Mem.StallCycles[mem.LevelFB],
		fbHitSW: cp.Counters.Mem.FBHitSWPrefetch,
		samples: cp.LBRSamples,
		pebs:    sampler.Counts(),
		stalls:  sampler.Stalls(),
	}
}

// inProcessPlanner runs the paper's analysis on the live program.
type inProcessPlanner struct {
	opt analysis.Options
}

func (ip inProcessPlanner) Plan(p *ir.Program, prof *profile.Profile) ([]analysis.Plan, error) {
	return analysis.Analyze(p, prof, ip.opt)
}

// Run executes the workload adaptively: inject the initial plans (the
// possibly stale one-shot plan; empty is fine), then run in Window-sized
// slices under the feedback controller. The final memory state is
// verified like any other run — a hot-swapped program must still compute
// the right answer.
func Run(w core.Workload, initial []analysis.Plan, cfg core.Config, opt Options) (*Result, error) {
	opt.fill()
	if cfg.Machine.Name == "" {
		cfg.Machine = mem.ConfigScaled()
	}
	if cfg.Analysis.DRAMLatency == 0 {
		cfg.Analysis.DRAMLatency = float64(cfg.Machine.DRAMLatency)
	}
	planner := opt.Planner
	if planner == nil {
		planner = inProcessPlanner{opt: cfg.Analysis}
	}

	p, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("replan: build %s: %w", w.Name(), err)
	}
	n0 := len(p.Func.Instrs)
	if len(initial) > 0 {
		if _, err := passes.AptGet(p, initial, cfg.Inject); err != nil {
			return nil, fmt.Errorf("replan: initial inject on %s: %w", w.Name(), err)
		}
	}
	n1 := len(p.Func.Instrs)

	st, err := cpu.New(p, cfg.Machine, cpu.Options{
		SamplePeriod:    opt.SamplePeriod,
		PEBSPeriod:      opt.PEBSPeriod,
		InitMem:         w.InitMem,
		MaxInstructions: cfg.MaxInstructions,
	})
	if err != nil {
		return nil, fmt.Errorf("replan: %s: %w", w.Name(), err)
	}
	st.MarkSwappable(n0, n1)

	out := &Result{Plans: initial}
	active := initial
	// planMC is the Equation (1) memory-component latency the active
	// plan was computed for; 0 when no plan (provenance check disarmed).
	planMC := plansMC(active)

	history := []windowSnap{snap(st.Checkpoint(), st.Result().PEBS)}
	best := -1.0   // best exposed share since last swap (post-warm-up)
	sinceSwap := 0 // windows since start or last swap
	cooldown := 0
	window := 0

	for {
		done, err := st.Resume(st.Cycle() + opt.Window)
		if err != nil {
			st.Result().Hier.Release()
			return nil, fmt.Errorf("replan: running %s: %w", w.Name(), err)
		}
		cp := st.Checkpoint()
		cur := snap(cp, st.Result().PEBS)
		prev := history[len(history)-1]
		history = append(history, cur)
		window++
		sinceSwap++
		if cooldown > 0 {
			cooldown--
		}

		dCycles := cur.cycle - prev.cycle
		d := Decision{Window: window, Cycle: cur.cycle}
		if dCycles > 0 {
			d.ExposedShare = float64(cur.stall-prev.stall) / float64(dCycles)
		}
		if di := cur.instr - prev.instr; di > 0 {
			d.MPKI = float64(cur.misses-prev.misses) / (float64(di) / 1000)
		}
		if dm := cur.misses - prev.misses; dm > 0 {
			d.HitShare = float64(cur.fbHitSW-prev.fbHitSW) / float64(dm)
			d.MCObserved = float64(cur.stall-prev.stall) / float64(dm)
		}

		if done {
			out.Decisions = append(out.Decisions, d)
			break
		}

		warm := sinceSwap > opt.MinWindows
		if warm && (best < 0 || d.ExposedShare < best) {
			best = d.ExposedShare
		}

		trigger := false
		if warm && cooldown == 0 && out.Swaps < opt.MaxSwaps && d.ExposedShare > opt.MinExposedShare {
			if best >= 0 && d.ExposedShare > best*opt.DegradeFactor {
				trigger = true
				d.Reason = fmt.Sprintf("exposed %.2f > %.2f x best %.2f",
					d.ExposedShare, opt.DegradeFactor, best)
			} else if planMC > 0 && cur.misses-prev.misses >= opt.MinWindowMisses &&
				d.MCObserved > planMC*opt.DegradeFactor {
				// Equation (1) provenance check: the plan's distance was
				// sized for MC cycles of memory latency; the phase now
				// exposes far more per miss, so the plan is stale.
				trigger = true
				d.Reason = fmt.Sprintf("observed MC %.0f > %.2f x planned %.0f",
					d.MCObserved, opt.DegradeFactor, planMC)
			}
		}
		d.Triggered = trigger

		if trigger {
			base := history[maxInt(0, len(history)-1-opt.ProfileWindows)]
			prof := windowProfile(st, base, cur, cfg.Profile, opt)
			plans, perr := planner.Plan(st.Program(), prof)
			switch {
			case perr != nil:
				d.Reason += "; plan failed: " + perr.Error()
			case len(plans) == 0:
				d.Reason += "; no plans for this phase"
				cooldown = opt.Cooldown
			default:
				iopt := cfg.Inject
				iopt.KeepPCs = true
				serr := st.SwapPlan(func(*ir.Func) error {
					_, err := passes.AptGet(st.Program(), plans, iopt)
					return err
				})
				if serr != nil {
					d.Reason += "; swap failed: " + serr.Error()
				} else {
					d.Swapped = true
					d.Plans = len(plans)
					active = plans
					planMC = plansMC(active)
					out.Swaps++
					out.SwapCycles = append(out.SwapCycles, cur.cycle)
					best = -1
					sinceSwap = 0
					cooldown = opt.Cooldown
				}
			}
		}
		out.Decisions = append(out.Decisions, d)
	}

	res := st.Result()
	if !cfg.SkipVerify {
		if err := w.Verify(res.Hier.Arena); err != nil {
			res.Hier.Release()
			return nil, fmt.Errorf("replan: %s computed a wrong result after %d swaps: %w",
				w.Name(), out.Swaps, err)
		}
	}
	res.Hier.Release()
	out.Counters = res.Counters
	out.Plans = active

	if sp := opt.Obs; sp != nil {
		sp.Set("windows", int64(window))
		sp.Set("swaps", int64(out.Swaps))
		var triggers int64
		for _, d := range out.Decisions {
			if d.Triggered {
				triggers++
			}
		}
		sp.Set("triggers", triggers)
		sp.Set("plans_active", int64(len(active)))
		sp.Set("cycles", int64(out.Counters.Cycles))
	}
	return out, nil
}

// windowProfile packages the trailing windows' live samples as a
// profile: LBR snapshots taken since the base checkpoint, PEBS miss and
// stall attribution as count deltas, and then the *same* selection gate
// the offline profiling stage applies — share floor here, score (or
// MPKI-ablation) gate via profile.SelectLoads, so online re-planning
// cannot drift from the offline selection policy.
func windowProfile(st *cpu.State, base, cur windowSnap, popt profile.Options, opt Options) *profile.Profile {
	all := st.Result().LBRSamples
	var samples []lbr.Sample
	if base.samples < len(all) {
		samples = all[base.samples:]
	}

	delta := make(map[uint64]uint64)
	var total uint64
	for pc, n := range cur.pebs {
		if dn := n - base.pebs[pc]; dn > 0 {
			delta[pc] = dn
			total += dn
		}
	}

	minShare := popt.DelinquentShare
	if minShare == 0 {
		minShare = 0.02
	}
	dInstr := cur.instr - base.instr

	var loads []pebs.Load
	for pc, n := range delta {
		share := float64(n) / float64(total)
		if share < minShare {
			continue
		}
		stall := cur.stalls[pc] - base.stalls[pc]
		loads = append(loads, pebs.Load{
			PC: pc, Samples: n, Share: share,
			StallCycles: stall,
			MeanStall:   float64(stall) / float64(n),
		})
	}
	// The live sampler's period, not the offline default, scales the
	// per-window estimates.
	popt.PEBSPeriod = opt.PEBSPeriod
	loads = profile.SelectLoads(loads, dInstr, popt)

	ctr := pmu.Counters{
		Instructions: dInstr,
		Cycles:       cur.cycle - base.cycle,
	}
	return &profile.Profile{Samples: samples, Loads: loads, Counters: ctr}
}

// plansMC returns the largest planned memory-component latency among the
// active plans (0 when no plan carries one).
func plansMC(plans []analysis.Plan) float64 {
	var mc float64
	for i := range plans {
		if plans[i].Inner.MC > mc {
			mc = plans[i].Inner.MC
		}
	}
	return mc
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
