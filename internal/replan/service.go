package replan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"aptget/internal/analysis"
	"aptget/internal/ir"
	"aptget/internal/profile"
	"aptget/internal/wire"
)

// ServicePlanner re-analyzes via an aptgetd re-ingest: the window
// profile is encoded to the canonical wire form and POSTed to
// /v1/profiles, and the served plan set is mapped back onto the live
// program. The daemon analyzes against its own registry build of App,
// so served plans are resolved here by load name first (the AutoFDO
// mapping both builds share) and PC second. Best used on runs whose
// original code region the daemon's build matches — i.e. profiles of
// unmodified phases; the delinquent-share gate keeps injected slice
// loads out of the upload.
type ServicePlanner struct {
	// App is the registry key the daemon rebuilds for analysis.
	App string
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7717".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Plan implements Planner.
func (s *ServicePlanner) Plan(p *ir.Program, prof *profile.Profile) ([]analysis.Plan, error) {
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}

	wp := wire.ProfileOf(s.App, p, prof)
	body := wire.EncodeProfile(wp)

	resp, err := client.Post(s.BaseURL+"/v1/profiles", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("replan: ingest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replan: ingest: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var ing struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		return nil, fmt.Errorf("replan: ingest response: %w", err)
	}

	pr, err := client.Get(s.BaseURL + "/v1/plans/" + ing.Fingerprint)
	if err != nil {
		return nil, fmt.Errorf("replan: fetch plans: %w", err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replan: fetch plans: %s", pr.Status)
	}
	data, err := io.ReadAll(pr.Body)
	if err != nil {
		return nil, fmt.Errorf("replan: fetch plans: %w", err)
	}
	ps, err := wire.DecodePlanSet(data)
	if err != nil {
		return nil, fmt.Errorf("replan: decode plans: %w", err)
	}
	return PlansFromWire(p.Func, ps)
}

// PlansFromWire maps a served plan set onto the live function: each
// plan's load is resolved by debug name first, then by PC, and the
// distances, site, and Equation (1)/(2) provenance are carried over.
func PlansFromWire(f *ir.Func, ps *wire.PlanSet) ([]analysis.Plan, error) {
	var plans []analysis.Plan
	for _, wp := range ps.Plans {
		v := findLoadByName(f, wp.LoadName)
		if v == ir.NoValue {
			v = f.FindByPC(wp.LoadPC)
		}
		if v == ir.NoValue || f.Instr(v).Op != ir.OpLoad {
			return nil, fmt.Errorf("replan: served plan %q (pc %d) has no load in the live program",
				wp.LoadName, wp.LoadPC)
		}
		site := analysis.SiteInner
		if wp.Site == analysis.SiteOuter.String() {
			site = analysis.SiteOuter
		}
		plan := analysis.Plan{
			LoadPC:        f.Instr(v).PC,
			LoadName:      wp.LoadName,
			Load:          v,
			Distance:      wp.Distance,
			Site:          site,
			InnerDistance: wp.InnerDistance,
			OuterDistance: wp.OuterDistance,
			AvgTrip:       wp.AvgTrip,
			Fallback:      wp.Fallback,
		}
		plan.Inner.IC = wp.IC
		plan.Inner.MC = wp.MC
		plan.Inner.Peaks = wp.PeaksInner
		plans = append(plans, plan)
	}
	return plans, nil
}

func findLoadByName(f *ir.Func, name string) ir.Value {
	if name == "" {
		return ir.NoValue
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if f.Instrs[v].Op == ir.OpLoad && f.Instrs[v].Name == name {
				return v
			}
		}
	}
	return ir.NoValue
}
