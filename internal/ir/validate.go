package ir

import "fmt"

// Validate checks structural well-formedness: every block is terminated
// exactly once, successor counts match terminators, operand references are
// in range, phi nodes open their blocks and have matching pred edges, and
// non-phi operands are defined before use on every path (approximated by
// dominance of the defining block).
func (f *Func) Validate() error {
	if f.Entry == NoBlock || int(f.Entry) >= len(f.Blocks) {
		return fmt.Errorf("ir: %s: invalid entry block", f.Name)
	}
	idom := Dominators(f)

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			if idom[b.ID] == NoBlock && b.ID != f.Entry {
				continue // unreachable empty block: tolerated
			}
			return fmt.Errorf("ir: %s: block b%d (%s) is empty", f.Name, b.ID, b.Name)
		}
		term := b.Instrs[len(b.Instrs)-1]
		top := f.Instrs[term].Op
		if !top.IsTerminator() {
			return fmt.Errorf("ir: %s: block b%d (%s) not terminated", f.Name, b.ID, b.Name)
		}
		switch top {
		case OpBr:
			if len(b.Succs) != 2 {
				return fmt.Errorf("ir: %s: b%d: br needs 2 successors, has %d", f.Name, b.ID, len(b.Succs))
			}
		case OpJmp:
			if len(b.Succs) != 1 {
				return fmt.Errorf("ir: %s: b%d: jmp needs 1 successor, has %d", f.Name, b.ID, len(b.Succs))
			}
		case OpRet:
			if len(b.Succs) != 0 {
				return fmt.Errorf("ir: %s: b%d: ret must have no successors", f.Name, b.ID)
			}
		}
		for i, v := range b.Instrs {
			ins := &f.Instrs[v]
			if ins.Block != b.ID {
				return fmt.Errorf("ir: %s: v%d owned by b%d but listed in b%d", f.Name, v, ins.Block, b.ID)
			}
			if ins.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("ir: %s: b%d: terminator v%d not last", f.Name, b.ID, v)
			}
			if ins.Op == OpPhi {
				if len(ins.Args) != len(ins.PhiPreds) {
					return fmt.Errorf("ir: %s: v%d: phi args/preds mismatch", f.Name, v)
				}
				// Phis must be a prefix of the block.
				for j := 0; j < i; j++ {
					if f.Instrs[b.Instrs[j]].Op != OpPhi {
						return fmt.Errorf("ir: %s: b%d: phi v%d after non-phi", f.Name, b.ID, v)
					}
				}
			}
			for _, a := range ins.Args {
				if a == NoValue && ins.Op == OpPhi {
					return fmt.Errorf("ir: %s: v%d: unfinished phi incoming", f.Name, v)
				}
				if a < 0 || int(a) >= len(f.Instrs) {
					return fmt.Errorf("ir: %s: v%d: operand v%d out of range", f.Name, v, a)
				}
				if !f.Instrs[a].Op.HasResult() {
					return fmt.Errorf("ir: %s: v%d: operand v%d has no result (%s)", f.Name, v, a, f.Instrs[a].Op)
				}
			}
		}
	}

	// Phi pred edges must be actual predecessors.
	for _, b := range f.Blocks {
		preds := f.Preds(b.ID)
		predSet := make(map[BlockID]bool, len(preds))
		for _, p := range preds {
			predSet[p] = true
		}
		for _, v := range b.Instrs {
			ins := &f.Instrs[v]
			if ins.Op != OpPhi {
				continue
			}
			for _, p := range ins.PhiPreds {
				if !predSet[p] {
					return fmt.Errorf("ir: %s: v%d: phi pred b%d is not a predecessor of b%d", f.Name, v, p, b.ID)
				}
			}
		}
	}

	// SSA dominance: defs must dominate non-phi uses.
	defBlock := make([]BlockID, len(f.Instrs))
	defPos := make([]int, len(f.Instrs))
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			defBlock[v] = b.ID
			defPos[v] = i
		}
	}
	for _, b := range f.Blocks {
		if idom[b.ID] == NoBlock && b.ID != f.Entry {
			continue
		}
		for i, v := range b.Instrs {
			ins := &f.Instrs[v]
			if ins.Op == OpPhi {
				continue
			}
			for _, a := range ins.Args {
				db := defBlock[a]
				if db == b.ID {
					if defPos[a] >= i {
						return fmt.Errorf("ir: %s: v%d uses v%d before definition in b%d", f.Name, v, a, b.ID)
					}
				} else if !dominates(idom, db, b.ID) {
					return fmt.Errorf("ir: %s: v%d (b%d) uses v%d defined in non-dominating b%d", f.Name, v, b.ID, a, db)
				}
			}
		}
	}
	return nil
}
