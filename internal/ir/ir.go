// Package ir defines a small SSA-style loop intermediate representation.
//
// The IR plays the role LLVM IR plays in the paper: workloads are built as
// IR programs, the profiling CPU (internal/cpu) executes them with a timing
// model, and the prefetch-injection passes (internal/passes) transform them.
// Induction variables are represented as phi nodes in loop headers, exactly
// the structure the paper's load-slice search (Algorithm 2) walks.
//
// Every instruction carries a program counter (PC) assigned in layout order
// so that hardware-profile abstractions (LBR branch records, PEBS load
// samples) can refer to code locations the way real hardware does: a basic
// block is the half-open PC interval [first instruction, terminating
// branch], and a load PC can be matched against that interval (§3.2 of the
// paper).
package ir

import "fmt"

// Value identifies an SSA value: an index into Func.Instrs.
type Value int32

// NoValue is the absent-value sentinel.
const NoValue Value = -1

// BlockID identifies a basic block: an index into Func.Blocks.
type BlockID int32

// NoBlock is the absent-block sentinel.
const NoBlock BlockID = -1

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes. Arithmetic is 64-bit signed integer arithmetic;
// memory operations address a flat byte-addressable arena.
const (
	OpInvalid Op = iota

	OpConst // Imm -> dst

	OpAdd // Args[0] + Args[1]
	OpSub // Args[0] - Args[1]
	OpMul // Args[0] * Args[1]
	OpDiv // Args[0] / Args[1] (0 if divisor is 0)
	OpRem // Args[0] % Args[1] (0 if divisor is 0)
	OpAnd // Args[0] & Args[1]
	OpOr  // Args[0] | Args[1]
	OpXor // Args[0] ^ Args[1]
	OpShl // Args[0] << Args[1]
	OpShr // Args[0] >> Args[1] (arithmetic)

	OpCmp    // compare Args[0], Args[1] with Pred -> 0/1
	OpSelect // Args[0] != 0 ? Args[1] : Args[2]

	OpLoad     // load Size bytes at address Args[0]
	OpStore    // store Size bytes of Args[1] at address Args[0]
	OpPrefetch // software prefetch of the line containing address Args[0]

	OpPhi // phi; Args parallel to PhiPreds

	OpBr  // conditional branch on Args[0]; successors Block.Succs[0] (taken if != 0) and [1]
	OpJmp // unconditional branch to Block.Succs[0]
	OpRet // end of program
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpCmp: "cmp", OpSelect: "select",
	OpLoad: "load", OpStore: "store", OpPrefetch: "prefetch",
	OpPhi: "phi", OpBr: "br", OpJmp: "jmp", OpRet: "ret",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpJmp || op == OpRet }

// IsBinary reports whether the opcode is a two-operand ALU operation.
func (op Op) IsBinary() bool { return op >= OpAdd && op <= OpShr }

// HasResult reports whether the instruction produces an SSA value.
func (op Op) HasResult() bool {
	switch op {
	case OpStore, OpPrefetch, OpBr, OpJmp, OpRet, OpInvalid:
		return false
	}
	return true
}

// Pred is a comparison predicate for OpCmp.
type Pred uint8

// Comparison predicates (signed).
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

var predNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the mnemonic for the predicate.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Eval applies the predicate to two signed operands.
func (p Pred) Eval(a, b int64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	case PredGE:
		return a >= b
	}
	return false
}

// Instr is a single instruction. Instructions live in Func.Instrs and are
// referenced by Value; blocks hold ordered lists of Values.
type Instr struct {
	Op   Op
	Args []Value // operands; for OpPhi, parallel to PhiPreds

	Imm  int64 // OpConst: the constant
	Pred Pred  // OpCmp: predicate
	Size uint8 // OpLoad/OpStore/OpPrefetch: access size in bytes (1,2,4,8)

	PhiPreds []BlockID // OpPhi: predecessor block per incoming Arg

	Block BlockID // owning block
	PC    uint64  // program counter, assigned by AssignPCs
	Name  string  // optional debug name (induction variables, etc.)
}

// Block is a basic block: an ordered instruction list ending in a
// terminator, plus successor edges.
type Block struct {
	ID     ID
	Name   string
	Instrs []Value
	Succs  []BlockID
}

// ID aliases BlockID for struct-field readability.
type ID = BlockID

// Terminator returns the block's terminating instruction value, or NoValue
// if the block is empty or unterminated.
func (b *Block) Terminator(f *Func) Value {
	if len(b.Instrs) == 0 {
		return NoValue
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !f.Instrs[last].Op.IsTerminator() {
		return NoValue
	}
	return last
}

// Func is a single function: the unit of execution and transformation.
// Programs in this repository are single-function.
type Func struct {
	Name   string
	Blocks []*Block
	Instrs []Instr
	Entry  BlockID
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func {
	return &Func{Name: name, Entry: NoBlock}
}

// NewBlock appends a new empty block and returns it.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: BlockID(len(f.Blocks)), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddInstr appends an instruction to the arena and to block bb, returning
// its Value. Terminators set the block's successor list separately.
func (f *Func) AddInstr(bb *Block, ins Instr) Value {
	ins.Block = bb.ID
	v := Value(len(f.Instrs))
	f.Instrs = append(f.Instrs, ins)
	bb.Instrs = append(bb.Instrs, v)
	return v
}

// InsertBefore inserts an instruction into block bb immediately before the
// instruction at position pos in bb.Instrs, returning its Value. Passes use
// this to place prefetch slices ahead of the original load.
func (f *Func) InsertBefore(bb *Block, pos int, ins Instr) Value {
	ins.Block = bb.ID
	v := Value(len(f.Instrs))
	f.Instrs = append(f.Instrs, ins)
	bb.Instrs = append(bb.Instrs, NoValue)
	copy(bb.Instrs[pos+1:], bb.Instrs[pos:])
	bb.Instrs[pos] = v
	return v
}

// Instr returns the instruction for a value.
func (f *Func) Instr(v Value) *Instr { return &f.Instrs[v] }

// Preds returns the predecessors of block id (computed, not cached).
func (f *Func) Preds(id BlockID) []BlockID {
	var preds []BlockID
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s == id {
				preds = append(preds, b.ID)
			}
		}
	}
	return preds
}

// AssignPCs numbers every instruction in block-layout order. Each
// instruction occupies one PC slot. Returns the total number of PCs.
// Must be re-run after any transformation before execution or profiling.
func (f *Func) AssignPCs() uint64 {
	var pc uint64
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			f.Instrs[v].PC = pc
			pc++
		}
	}
	return pc
}

// InstrCount returns the number of (live) instructions across all blocks.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// FindByPC returns the value whose instruction has the given PC, or
// NoValue. PCs must have been assigned.
func (f *Func) FindByPC(pc uint64) Value {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if f.Instrs[v].PC == pc {
				return v
			}
		}
	}
	return NoValue
}

// BlockOf returns the block that holds the instruction's PC interval, or
// nil if pc is out of range.
func (f *Func) BlockOf(pc uint64) *Block {
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		first := f.Instrs[b.Instrs[0]].PC
		last := f.Instrs[b.Instrs[len(b.Instrs)-1]].PC
		if pc >= first && pc <= last {
			return b
		}
	}
	return nil
}

// Array describes a named region of simulated memory.
type Array struct {
	Name     string
	Base     int64 // byte address of the first element
	Count    int64 // number of elements
	ElemSize int64 // bytes per element
}

// Bytes returns the total size of the array in bytes.
func (a Array) Bytes() int64 { return a.Count * a.ElemSize }

// Addr returns the byte address of element i.
func (a Array) Addr(i int64) int64 { return a.Base + i*a.ElemSize }

// Program couples a function with its memory layout.
type Program struct {
	Func    *Func
	Arrays  []Array
	MemSize int64 // total arena bytes required
}

const (
	arenaBase = 4096 // leave page zero unmapped, as a real process would
	lineSize  = 64
)

// NewProgram returns a program with an empty memory layout.
func NewProgram(f *Func) *Program {
	return &Program{Func: f, MemSize: arenaBase}
}

// Alloc reserves a cache-line-aligned array in the program's arena.
func (p *Program) Alloc(name string, count, elemSize int64) Array {
	base := (p.MemSize + lineSize - 1) &^ (lineSize - 1)
	a := Array{Name: name, Base: base, Count: count, ElemSize: elemSize}
	p.Arrays = append(p.Arrays, a)
	p.MemSize = base + a.Bytes()
	return a
}

// ArrayByName returns the named array, or false.
func (p *Program) ArrayByName(name string) (Array, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return Array{}, false
}
