package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildNested returns a two-nested counted loop program resembling the
// paper's microbenchmark skeleton.
func buildNested(t *testing.T, outer, inner int64) (*Program, *Builder) {
	t.Helper()
	b := NewBuilder("nested")
	arr := b.Alloc("data", outer*inner, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(outer), 1, func(i Value) {
		b.Loop("j", zero, b.Const(inner), 1, func(j Value) {
			idx := b.Add(b.Mul(i, b.Const(inner)), j)
			v := b.LoadElem(arr, idx)
			b.StoreElem(arr, idx, b.Add(v, b.Const(1)))
		})
	})
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p, b
}

func TestBuilderNestedLoopValidates(t *testing.T) {
	buildNested(t, 4, 8)
}

func TestAssignPCsAreDenseAndOrdered(t *testing.T) {
	p, _ := buildNested(t, 2, 2)
	f := p.Func
	n := f.AssignPCs()
	seen := make(map[uint64]bool)
	var prev uint64
	first := true
	for _, blk := range f.Blocks {
		for _, v := range blk.Instrs {
			pc := f.Instrs[v].PC
			if seen[pc] {
				t.Fatalf("duplicate pc %d", pc)
			}
			seen[pc] = true
			if !first && pc != prev+1 {
				t.Fatalf("pcs not dense: %d after %d", pc, prev)
			}
			prev, first = pc, false
		}
	}
	if uint64(len(seen)) != n {
		t.Fatalf("AssignPCs returned %d, saw %d", n, len(seen))
	}
}

func TestFindByPCAndBlockOf(t *testing.T) {
	p, _ := buildNested(t, 2, 2)
	f := p.Func
	for _, blk := range f.Blocks {
		for _, v := range blk.Instrs {
			pc := f.Instrs[v].PC
			if got := f.FindByPC(pc); got != v {
				t.Fatalf("FindByPC(%d) = v%d, want v%d", pc, got, v)
			}
			if got := f.BlockOf(pc); got == nil || got.ID != blk.ID {
				t.Fatalf("BlockOf(%d) wrong block", pc)
			}
		}
	}
	if f.FindByPC(1<<40) != NoValue {
		t.Fatal("FindByPC out of range should be NoValue")
	}
	if f.BlockOf(1<<40) != nil {
		t.Fatal("BlockOf out of range should be nil")
	}
}

func TestLoopAnalysisNesting(t *testing.T) {
	p, _ := buildNested(t, 4, 8)
	lf := AnalyzeLoops(p.Func)
	if len(lf.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(lf.Loops))
	}
	var outer, inner *Loop
	for _, l := range lf.Loops {
		switch l.Depth {
		case 1:
			outer = l
		case 2:
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("missing depth-1/depth-2 loops")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop parent should be outer loop")
	}
	if !outer.Blocks[inner.Header] {
		t.Fatal("outer loop should contain inner header")
	}
	if len(outer.Phis) == 0 || len(inner.Phis) == 0 {
		t.Fatal("loops should have header phis")
	}
	ivO := outer.InductionPhi(p.Func)
	ivI := inner.InductionPhi(p.Func)
	if ivO == NoValue || ivI == NoValue {
		t.Fatal("induction phis not found")
	}
	if p.Func.Instr(ivO).Name != "i" || p.Func.Instr(ivI).Name != "j" {
		t.Fatalf("unexpected induction names %q %q",
			p.Func.Instr(ivO).Name, p.Func.Instr(ivI).Name)
	}
}

func TestNonCanonicalLoopInduction(t *testing.T) {
	b := NewBuilder("noncanon")
	one := b.Const(1)
	lim := b.Const(1024)
	// i = 1; do { ... } while ((i *= 2) < 1024)
	b.LoopCustom("i", one,
		func(iv Value) Value { return b.Mul(iv, b.Const(2)) },
		func(next Value) Value { return b.Cmp(PredLT, next, lim) },
		nil,
		func(iv Value) { _ = b.Add(iv, one) })
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	lf := AnalyzeLoops(p.Func)
	if len(lf.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(lf.Loops))
	}
	if lf.Loops[0].InductionPhi(p.Func) == NoValue {
		t.Fatal("non-canonical induction phi (i*=2) not recognized")
	}
}

func TestIfEmitsBothArms(t *testing.T) {
	b := NewBuilder("branchy")
	arr := b.Alloc("a", 8, 8)
	c := b.Cmp(PredLT, b.Const(1), b.Const(2))
	b.If(c,
		func() { b.StoreElem(arr, b.Const(0), b.Const(10)) },
		func() { b.StoreElem(arr, b.Const(1), b.Const(20)) })
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	lf := AnalyzeLoops(p.Func)
	if len(lf.Loops) != 0 {
		t.Fatalf("if/else should produce no loops, got %d", len(lf.Loops))
	}
}

func TestWhileLoopValidatesAndIsALoop(t *testing.T) {
	b := NewBuilder("while")
	state := b.Alloc("state", 1, 8)
	b.While("w",
		func() Value {
			v := b.LoadElem(state, b.Const(0))
			return b.Cmp(PredGT, v, b.Const(0))
		},
		func() {
			v := b.LoadElem(state, b.Const(0))
			b.StoreElem(state, b.Const(0), b.Sub(v, b.Const(1)))
		})
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	lf := AnalyzeLoops(p.Func)
	if len(lf.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(lf.Loops))
	}
}

func TestAllocAlignmentAndLayout(t *testing.T) {
	b := NewBuilder("alloc")
	a1 := b.Alloc("a1", 3, 8) // 24 bytes
	a2 := b.Alloc("a2", 5, 4) // 20 bytes
	a3 := b.Alloc("a3", 1, 1)
	for _, a := range []Array{a1, a2, a3} {
		if a.Base%64 != 0 {
			t.Fatalf("array %s base %d not line-aligned", a.Name, a.Base)
		}
	}
	if a2.Base < a1.Base+a1.Bytes() || a3.Base < a2.Base+a2.Bytes() {
		t.Fatal("arrays overlap")
	}
	p := b.Finish()
	if got, ok := p.ArrayByName("a2"); !ok || got.Base != a2.Base {
		t.Fatal("ArrayByName failed")
	}
	if _, ok := p.ArrayByName("nope"); ok {
		t.Fatal("ArrayByName should miss")
	}
	if a1.Addr(2) != a1.Base+16 {
		t.Fatal("Addr arithmetic wrong")
	}
}

func TestValidateCatchesUnterminatedBlock(t *testing.T) {
	f := NewFunc("bad")
	bb := f.NewBlock("entry")
	f.Entry = bb.ID
	f.AddInstr(bb, Instr{Op: OpConst, Imm: 1})
	if err := f.Validate(); err == nil {
		t.Fatal("expected validation error for unterminated block")
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	f := NewFunc("bad")
	bb := f.NewBlock("entry")
	f.Entry = bb.ID
	// v0 = add v1, v1 where v1 is defined after v0.
	f.AddInstr(bb, Instr{Op: OpAdd, Args: []Value{1, 1}})
	f.AddInstr(bb, Instr{Op: OpConst, Imm: 3})
	f.AddInstr(bb, Instr{Op: OpRet})
	if err := f.Validate(); err == nil {
		t.Fatal("expected use-before-def validation error")
	}
}

func TestValidateCatchesBadSuccCount(t *testing.T) {
	f := NewFunc("bad")
	bb := f.NewBlock("entry")
	f.Entry = bb.ID
	c := f.AddInstr(bb, Instr{Op: OpConst, Imm: 1})
	f.AddInstr(bb, Instr{Op: OpBr, Args: []Value{c}})
	bb.Succs = []BlockID{bb.ID} // br with one successor: invalid
	if err := f.Validate(); err == nil {
		t.Fatal("expected successor-count validation error")
	}
}

func TestInsertBefore(t *testing.T) {
	f := NewFunc("ins")
	bb := f.NewBlock("entry")
	f.Entry = bb.ID
	c1 := f.AddInstr(bb, Instr{Op: OpConst, Imm: 1})
	f.AddInstr(bb, Instr{Op: OpRet})
	v := f.InsertBefore(bb, 1, Instr{Op: OpAdd, Args: []Value{c1, c1}})
	if bb.Instrs[1] != v {
		t.Fatalf("InsertBefore misplaced: %v", bb.Instrs)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("validate after insert: %v", err)
	}
	if f.Instrs[v].Block != bb.ID {
		t.Fatal("inserted instr block not set")
	}
}

func TestPredEvalMatchesGo(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		return PredEQ.Eval(a, b) == (a == b) &&
			PredNE.Eval(a, b) == (a != b) &&
			PredLT.Eval(a, b) == (a < b) &&
			PredLE.Eval(a, b) == (a <= b) &&
			PredGT.Eval(a, b) == (a > b) &&
			PredGE.Eval(a, b) == (a >= b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpClassification(t *testing.T) {
	for _, op := range []Op{OpBr, OpJmp, OpRet} {
		if !op.IsTerminator() {
			t.Fatalf("%s should be terminator", op)
		}
		if op.HasResult() {
			t.Fatalf("%s should not produce a result", op)
		}
	}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr} {
		if !op.IsBinary() {
			t.Fatalf("%s should be binary", op)
		}
		if !op.HasResult() {
			t.Fatalf("%s should produce a result", op)
		}
	}
	if OpStore.HasResult() || OpPrefetch.HasResult() {
		t.Fatal("store/prefetch must not produce results")
	}
}

func TestPrintSmoke(t *testing.T) {
	p, _ := buildNested(t, 2, 2)
	s := p.Func.String()
	for _, want := range []string{"func nested", "phi", "load.8", "store.8", "br", "ret"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump missing %q:\n%s", want, s)
		}
	}
}

func TestConstDeduplicatedInEntry(t *testing.T) {
	b := NewBuilder("c")
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(10), 1, func(iv Value) {
		// Const(7) inside the body must land in the entry block.
		_ = b.Add(iv, b.Const(7))
		_ = b.Add(iv, b.Const(7))
	})
	p := b.Finish()
	f := p.Func
	count := 0
	entry := f.Blocks[f.Entry]
	for _, v := range entry.Instrs {
		if f.Instrs[v].Op == OpConst && f.Instrs[v].Imm == 7 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("const 7 should appear once in entry, got %d", count)
	}
	for _, blk := range f.Blocks {
		if blk.ID == f.Entry {
			continue
		}
		for _, v := range blk.Instrs {
			if f.Instrs[v].Op == OpConst {
				t.Fatalf("const leaked into block %s", blk.Name)
			}
		}
	}
}

func TestDominatorsEntrySelf(t *testing.T) {
	p, _ := buildNested(t, 2, 2)
	idom := Dominators(p.Func)
	if idom[p.Func.Entry] != p.Func.Entry {
		t.Fatal("entry must be its own idom")
	}
	// Every reachable block's idom chain terminates at entry.
	for _, blk := range p.Func.Blocks {
		if idom[blk.ID] == NoBlock {
			continue
		}
		seen := 0
		for id := blk.ID; id != p.Func.Entry; id = idom[id] {
			seen++
			if seen > len(p.Func.Blocks) {
				t.Fatalf("idom chain cycle at b%d", blk.ID)
			}
		}
	}
}
