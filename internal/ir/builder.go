package ir

import "fmt"

// Builder constructs well-formed programs using structured control flow.
// It produces the canonical loop shape the paper's compiler pass expects:
// each counted loop has a header block opened by a phi node (the induction
// variable) with one incoming value from the preheader and one from the
// latch, and a single back-edge branch whose PC identifies the loop in LBR
// records.
type Builder struct {
	prog *Program
	f    *Func
	cur  *Block

	consts map[int64]Value // constants are hoisted into the entry block
	done   bool
}

// NewBuilder starts a program with an entry block.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	entry := f.NewBlock("entry")
	f.Entry = entry.ID
	return &Builder{
		prog:   NewProgram(f),
		f:      f,
		cur:    entry,
		consts: make(map[int64]Value),
	}
}

// Func exposes the function under construction (for tests).
func (b *Builder) Func() *Func { return b.f }

// Alloc reserves a named array in the program arena.
func (b *Builder) Alloc(name string, count, elemSize int64) Array {
	return b.prog.Alloc(name, count, elemSize)
}

// Finish terminates the program with OpRet, assigns PCs, and returns it.
// The builder must not be used afterwards.
func (b *Builder) Finish() *Program {
	if b.done {
		panic("ir: Finish called twice")
	}
	b.emit(Instr{Op: OpRet})
	b.done = true
	b.f.AssignPCs()
	return b.prog
}

func (b *Builder) emit(ins Instr) Value {
	if b.done {
		panic("ir: emit after Finish")
	}
	return b.f.AddInstr(b.cur, ins)
}

// emitEntry places an instruction in the entry block, before its
// terminator if one exists (it never does during building: entry is only
// terminated when a loop/branch moves the builder off it).
func (b *Builder) emitEntry(ins Instr) Value {
	entry := b.f.Blocks[b.f.Entry]
	if b.cur == entry {
		return b.emit(ins)
	}
	// Entry is already closed; insert before its terminator.
	pos := len(entry.Instrs)
	if t := entry.Terminator(b.f); t != NoValue {
		pos--
	}
	ins.Block = entry.ID
	return b.f.InsertBefore(entry, pos, ins)
}

// Const returns an SSA value holding the constant c. Constants are
// de-duplicated and hoisted to the entry block so loop bodies stay tight.
func (b *Builder) Const(c int64) Value {
	if v, ok := b.consts[c]; ok {
		return v
	}
	v := b.emitEntry(Instr{Op: OpConst, Imm: c})
	b.consts[c] = v
	return v
}

func (b *Builder) bin(op Op, x, y Value) Value {
	return b.emit(Instr{Op: op, Args: []Value{x, y}})
}

// Add emits x + y.
func (b *Builder) Add(x, y Value) Value { return b.bin(OpAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y Value) Value { return b.bin(OpSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y Value) Value { return b.bin(OpMul, x, y) }

// Div emits x / y (yielding 0 when y is 0).
func (b *Builder) Div(x, y Value) Value { return b.bin(OpDiv, x, y) }

// Rem emits x % y (yielding 0 when y is 0).
func (b *Builder) Rem(x, y Value) Value { return b.bin(OpRem, x, y) }

// And emits x & y.
func (b *Builder) And(x, y Value) Value { return b.bin(OpAnd, x, y) }

// Or emits x | y.
func (b *Builder) Or(x, y Value) Value { return b.bin(OpOr, x, y) }

// Xor emits x ^ y.
func (b *Builder) Xor(x, y Value) Value { return b.bin(OpXor, x, y) }

// Shl emits x << y.
func (b *Builder) Shl(x, y Value) Value { return b.bin(OpShl, x, y) }

// Shr emits x >> y (arithmetic).
func (b *Builder) Shr(x, y Value) Value { return b.bin(OpShr, x, y) }

// Cmp emits the comparison (x pred y) producing 0 or 1.
func (b *Builder) Cmp(p Pred, x, y Value) Value {
	return b.emit(Instr{Op: OpCmp, Pred: p, Args: []Value{x, y}})
}

// Select emits cond != 0 ? x : y.
func (b *Builder) Select(cond, x, y Value) Value {
	return b.emit(Instr{Op: OpSelect, Args: []Value{cond, x, y}})
}

// Min emits min(x, y) as a cmp+select pair (the clamp idiom of Listing 4).
func (b *Builder) Min(x, y Value) Value {
	c := b.Cmp(PredLT, x, y)
	return b.Select(c, x, y)
}

// Load emits a load of size bytes from addr.
func (b *Builder) Load(addr Value, size uint8) Value {
	return b.emit(Instr{Op: OpLoad, Args: []Value{addr}, Size: size})
}

// Named attaches a debug label to a value (the AutoFDO-style source
// mapping: delinquent-load plans report it). Returns v for chaining.
func (b *Builder) Named(v Value, name string) Value {
	b.f.Instr(v).Name = name
	return v
}

// Store emits a store of size bytes of val to addr.
func (b *Builder) Store(addr, val Value, size uint8) {
	b.emit(Instr{Op: OpStore, Args: []Value{addr, val}, Size: size})
}

// Prefetch emits a software prefetch of the line containing addr.
func (b *Builder) Prefetch(addr Value) {
	b.emit(Instr{Op: OpPrefetch, Args: []Value{addr}, Size: 8})
}

// Index emits the address of element idx of arr: base + idx*elemSize.
// Power-of-two element sizes use a shift, matching getelementptr lowering.
func (b *Builder) Index(arr Array, idx Value) Value {
	base := b.Const(arr.Base)
	switch arr.ElemSize {
	case 1:
		return b.Add(base, idx)
	case 2, 4, 8:
		sh := b.Const(log2(arr.ElemSize))
		return b.Add(base, b.Shl(idx, sh))
	default:
		return b.Add(base, b.Mul(idx, b.Const(arr.ElemSize)))
	}
}

func log2(x int64) int64 {
	n := int64(0)
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// LoadElem emits a load of element idx of arr.
func (b *Builder) LoadElem(arr Array, idx Value) Value {
	return b.Load(b.Index(arr, idx), uint8(arr.ElemSize))
}

// StoreElem emits a store of val into element idx of arr.
func (b *Builder) StoreElem(arr Array, idx Value, val Value) {
	b.Store(b.Index(arr, idx), val, uint8(arr.ElemSize))
}

// PrefetchElem emits a software prefetch of element idx of arr.
func (b *Builder) PrefetchElem(arr Array, idx Value) {
	b.Prefetch(b.Index(arr, idx))
}

// branchTo terminates the current block with a jump and returns.
func (b *Builder) jmp(to *Block) {
	b.emit(Instr{Op: OpJmp})
	b.cur.Succs = []BlockID{to.ID}
}

// brIf terminates the current block with a conditional branch:
// taken → t, fallthrough → f.
func (b *Builder) brIf(cond Value, t, f *Block) {
	b.emit(Instr{Op: OpBr, Args: []Value{cond}})
	b.cur.Succs = []BlockID{t.ID, f.ID}
}

// Loop emits a canonical counted loop over [from, to) with the given
// positive constant step, calling body with the induction variable. The
// loop is guarded (zero-trip-safe) and bottom-tested, so the back-edge
// branch executes once per iteration — the property LBR-based trip-count
// extraction relies on.
func (b *Builder) Loop(name string, from, to Value, step int64, body func(iv Value)) {
	b.LoopCustom(name, from,
		func(iv Value) Value { return b.Add(iv, b.Const(step)) },
		func(next Value) Value { return b.Cmp(PredLT, next, to) },
		func(iv Value) Value { return b.Cmp(PredLT, iv, to) },
		body)
}

// LoopCustom emits a guarded bottom-tested loop with an arbitrary
// induction update (e.g. iv *= 2, the paper's non-canonical case §3.5).
//   - next(iv) computes the next induction value (emitted in the latch)
//   - cont(next) decides whether to take the back edge
//   - guard(init) decides whether to enter at all (may be nil: always enter)
func (b *Builder) LoopCustom(name string, init Value,
	next func(iv Value) Value,
	cont func(next Value) Value,
	guard func(iv Value) Value,
	body func(iv Value)) {

	header := b.f.NewBlock(name + ".header")
	exit := b.f.NewBlock(name + ".exit")

	pre := b.cur
	if guard != nil {
		g := guard(init)
		pre = b.cur // guard may not split blocks, but stay safe
		b.brIf(g, header, exit)
	} else {
		b.jmp(header)
	}

	// Header opens with the induction phi. The latch incoming is patched
	// below once the body has been emitted.
	b.cur = header
	iv := b.emit(Instr{
		Op:       OpPhi,
		Args:     []Value{init, NoValue},
		PhiPreds: []BlockID{pre.ID, NoBlock},
		Name:     name,
	})

	body(iv)

	// Latch: compute next iv, test, and branch back.
	nv := next(iv)
	cv := cont(nv)
	latch := b.cur
	b.brIf(cv, header, exit)

	phi := b.f.Instr(iv)
	phi.Args[1] = nv
	phi.PhiPreds[1] = latch.ID

	b.cur = exit
}

// While emits a top-tested loop: cond is (re)evaluated in the header each
// iteration; the body runs while it is non-zero. Loop-carried state must
// live in memory (this matches worklist-style kernels such as BFS).
func (b *Builder) While(name string, cond func() Value, body func()) {
	header := b.f.NewBlock(name + ".header")
	bodyBlk := b.f.NewBlock(name + ".body")
	exit := b.f.NewBlock(name + ".exit")

	b.jmp(header)
	b.cur = header
	c := cond()
	b.brIf(c, bodyBlk, exit)

	b.cur = bodyBlk
	body()
	b.jmp(header)

	b.cur = exit
}

// If emits structured if/else. Either arm may be nil.
func (b *Builder) If(cond Value, then func(), els func()) {
	thenBlk := b.f.NewBlock("if.then")
	exit := b.f.NewBlock("if.exit")
	elseBlk := exit
	if els != nil {
		elseBlk = b.f.NewBlock("if.else")
	}

	b.brIf(cond, thenBlk, elseBlk)

	b.cur = thenBlk
	if then != nil {
		then()
	}
	b.jmp(exit)

	if els != nil {
		b.cur = elseBlk
		els()
		b.jmp(exit)
	}

	b.cur = exit
}

// Break support is intentionally structured: BreakIf emits a conditional
// early exit from the innermost LoopCustom/Loop by branching to a fresh
// continuation inside the loop body. Complex exit conditions
// (for(i:K){if(cond(i)) break;}, §3.5) are built with If + a flag in
// memory; see workloads for usage.
func (b *Builder) String() string { return fmt.Sprintf("builder(%s)", b.f.Name) }
