package ir

import "sort"

// Loop describes a natural loop discovered from the CFG.
type Loop struct {
	Header  BlockID
	Latches []BlockID // blocks with a back edge to Header
	Blocks  map[BlockID]bool
	Parent  *Loop   // immediately enclosing loop, or nil
	Phis    []Value // phi nodes in the header (candidate induction variables)
	Depth   int     // 1 for outermost
}

// Contains reports whether block id belongs to the loop.
func (l *Loop) Contains(id BlockID) bool { return l.Blocks[id] }

// LoopForest holds the loops of a function and block→innermost-loop map.
type LoopForest struct {
	Loops  []*Loop
	ByHead map[BlockID]*Loop
	Inner  map[BlockID]*Loop // innermost loop containing each block
}

// InnermostFor returns the innermost loop containing block id, or nil.
func (lf *LoopForest) InnermostFor(id BlockID) *Loop { return lf.Inner[id] }

// Dominators computes the immediate dominator of every reachable block
// using the iterative algorithm of Cooper, Harvey & Kennedy. idom[entry]
// is entry itself; unreachable blocks map to NoBlock.
func Dominators(f *Func) []BlockID {
	n := len(f.Blocks)
	// Reverse postorder of the CFG.
	post := make([]BlockID, 0, n)
	seen := make([]bool, n)
	var dfs func(BlockID)
	dfs = func(id BlockID) {
		seen[id] = true
		for _, s := range f.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(f.Entry)

	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	rpo := make([]BlockID, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpoNum[post[i]] = len(rpo)
		rpo = append(rpo, post[i])
	}

	preds := make([][]BlockID, n)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}

	idom := make([]BlockID, n)
	for i := range idom {
		idom[i] = NoBlock
	}
	idom[f.Entry] = f.Entry

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom BlockID = NoBlock
			for _, p := range preds[b] {
				if idom[p] == NoBlock {
					continue
				}
				if newIdom == NoBlock {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != NoBlock && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether a dominates b under the idom tree.
func dominates(idom []BlockID, a, b BlockID) bool {
	for {
		if a == b {
			return true
		}
		if b == NoBlock || idom[b] == b {
			return a == b
		}
		b = idom[b]
	}
}

// AnalyzeLoops finds all natural loops (back edges t→h where h dominates
// t) and arranges them into a nesting forest. Loops sharing a header are
// merged. Phi nodes in each header are recorded as candidate induction
// variables.
func AnalyzeLoops(f *Func) *LoopForest {
	idom := Dominators(f)
	byHead := make(map[BlockID]*Loop)

	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if idom[b.ID] == NoBlock {
				continue // unreachable
			}
			if dominates(idom, s, b.ID) {
				// Back edge b → s.
				l := byHead[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[BlockID]bool{s: true}}
					byHead[s] = l
				}
				l.Latches = append(l.Latches, b.ID)
				collectLoopBody(f, l, b.ID)
			}
		}
	}

	var loops []*Loop
	for _, l := range byHead {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })

	// Parent linkage: the parent is the smallest strictly-enclosing loop.
	for _, l := range loops {
		for _, m := range loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}

	// Header phis.
	for _, l := range loops {
		hb := f.Blocks[l.Header]
		for _, v := range hb.Instrs {
			if f.Instrs[v].Op == OpPhi {
				l.Phis = append(l.Phis, v)
			}
		}
	}

	inner := make(map[BlockID]*Loop)
	for _, l := range loops {
		for id := range l.Blocks {
			if cur, ok := inner[id]; !ok || l.Depth > cur.Depth {
				inner[id] = l
			}
		}
	}

	return &LoopForest{Loops: loops, ByHead: byHead, Inner: inner}
}

// collectLoopBody adds to l all blocks that reach the latch without
// passing through the header (the standard natural-loop body walk).
func collectLoopBody(f *Func, l *Loop, latch BlockID) {
	preds := make(map[BlockID][]BlockID)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}
	stack := []BlockID{latch}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Blocks[id] {
			continue
		}
		l.Blocks[id] = true
		for _, p := range preds[id] {
			if !l.Blocks[p] {
				stack = append(stack, p)
			}
		}
	}
}

// InductionPhi returns the "primary" induction phi of the loop: the first
// header phi that is updated through an arithmetic chain within the loop.
// Returns NoValue if none qualifies.
func (l *Loop) InductionPhi(f *Func) Value {
	for _, v := range l.Phis {
		phi := f.Instr(v)
		for i, arg := range phi.Args {
			if phi.PhiPreds[i] == NoBlock || arg == NoValue {
				continue
			}
			if !l.Blocks[phi.PhiPreds[i]] {
				continue // entry edge
			}
			// Back-edge incoming: require it to depend on the phi itself
			// through pure arithmetic (canonical i+step or non-canonical
			// i*2 etc.).
			if dependsOnThroughALU(f, arg, v, 8) {
				return v
			}
		}
	}
	return NoValue
}

// dependsOnThroughALU reports whether value a transitively reaches target
// through ALU operations only, within the given depth.
func dependsOnThroughALU(f *Func, a, target Value, depth int) bool {
	if a == target {
		return true
	}
	if depth == 0 || a == NoValue {
		return false
	}
	ins := f.Instr(a)
	if !(ins.Op.IsBinary() || ins.Op == OpSelect || ins.Op == OpCmp) {
		return false
	}
	for _, arg := range ins.Args {
		if dependsOnThroughALU(f, arg, target, depth-1) {
			return true
		}
	}
	return false
}
