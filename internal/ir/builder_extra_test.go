package ir

import (
	"strings"
	"testing"
)

func TestMinEmitsClampIdiom(t *testing.T) {
	b := NewBuilder("min")
	out := b.Alloc("out", 1, 8)
	m := b.Min(b.Const(9), b.Const(5))
	b.StoreElem(out, b.Const(0), m)
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must contain a cmp and a select.
	var hasCmp, hasSel bool
	for _, ins := range p.Func.Instrs {
		switch ins.Op {
		case OpCmp:
			hasCmp = true
		case OpSelect:
			hasSel = true
		}
	}
	if !hasCmp || !hasSel {
		t.Fatal("Min should lower to cmp+select")
	}
}

func TestIfWithoutElse(t *testing.T) {
	b := NewBuilder("ifonly")
	arr := b.Alloc("a", 4, 8)
	b.If(b.Cmp(PredLT, b.Const(1), b.Const(2)),
		func() { b.StoreElem(arr, b.Const(0), b.Const(7)) }, nil)
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopCustomGuardSkipsZeroTrip(t *testing.T) {
	// Loop over [5, 5): guard must skip the body entirely; validation
	// and loop analysis must still hold.
	b := NewBuilder("zerotrip")
	arr := b.Alloc("a", 8, 8)
	five := b.Const(5)
	b.Loop("i", five, five, 1, func(iv Value) {
		b.StoreElem(arr, iv, iv)
	})
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(AnalyzeLoops(p.Func).Loops); got != 1 {
		t.Fatalf("loops = %d, want 1", got)
	}
}

func TestInstrCountAndPreds(t *testing.T) {
	b := NewBuilder("meta")
	arr := b.Alloc("a", 4, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(4), 1, func(iv Value) {
		b.StoreElem(arr, iv, iv)
	})
	p := b.Finish()
	f := p.Func
	if f.InstrCount() != len(f.Instrs) {
		t.Fatalf("InstrCount %d != arena %d (no dead instrs expected)",
			f.InstrCount(), len(f.Instrs))
	}
	lf := AnalyzeLoops(f)
	header := lf.Loops[0].Header
	preds := f.Preds(header)
	if len(preds) != 2 {
		t.Fatalf("loop header should have 2 preds (entry+latch), got %d", len(preds))
	}
}

func TestIndexNonPowerOfTwoElemSize(t *testing.T) {
	b := NewBuilder("idx")
	arr := b.Alloc("a", 4, 24) // struct-like 24-byte elements
	addr := b.Index(arr, b.Const(2))
	out := b.Alloc("out", 1, 8)
	b.Store(addr, b.Const(1), 8)
	b.StoreElem(out, b.Const(0), b.Const(1))
	p := b.Finish()
	if err := p.Func.Validate(); err != nil {
		t.Fatal(err)
	}
	// The emitted address chain must use a Mul (not Shl) for size 24.
	var hasMul bool
	for _, ins := range p.Func.Instrs {
		if ins.Op == OpMul {
			hasMul = true
		}
	}
	if !hasMul {
		t.Fatal("24-byte element indexing should use multiplication")
	}
}

func TestBuilderPanicsOnDoubleFinish(t *testing.T) {
	b := NewBuilder("fin")
	b.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish must panic")
		}
	}()
	b.Finish()
}

func TestBuilderStringer(t *testing.T) {
	b := NewBuilder("name")
	if !strings.Contains(b.String(), "name") {
		t.Fatal("builder stringer should carry the function name")
	}
	_ = b.Finish()
}

func TestOpStringCoverage(t *testing.T) {
	for op := OpInvalid; op <= OpRet; op++ {
		if op.String() == "" {
			t.Fatalf("op %d has empty name", op)
		}
	}
	if Op(200).String() == "" {
		t.Fatal("out-of-range op should still render")
	}
	if Pred(200).String() == "" {
		t.Fatal("out-of-range pred should still render")
	}
}
