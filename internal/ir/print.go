package ir

import (
	"fmt"
	"strings"
)

// String renders the function in a readable assembly-like form, used by
// tests and the CLI's -dump flag.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s (b%d):", b.Name, b.ID)
		if len(b.Succs) > 0 {
			fmt.Fprintf(&sb, " -> %v", b.Succs)
		}
		sb.WriteByte('\n')
		for _, v := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", f.InstrString(v))
		}
	}
	return sb.String()
}

// InstrString renders one instruction.
func (f *Func) InstrString(v Value) string {
	ins := &f.Instrs[v]
	name := ""
	if ins.Name != "" {
		name = " ; " + ins.Name
	}
	pc := fmt.Sprintf("[pc=%d]", ins.PC)
	switch ins.Op {
	case OpConst:
		return fmt.Sprintf("%s v%d = const %d%s", pc, v, ins.Imm, name)
	case OpCmp:
		return fmt.Sprintf("%s v%d = cmp.%s v%d, v%d%s", pc, v, ins.Pred, ins.Args[0], ins.Args[1], name)
	case OpLoad:
		return fmt.Sprintf("%s v%d = load.%d [v%d]%s", pc, v, ins.Size, ins.Args[0], name)
	case OpStore:
		return fmt.Sprintf("%s store.%d [v%d] = v%d%s", pc, ins.Size, ins.Args[0], ins.Args[1], name)
	case OpPrefetch:
		return fmt.Sprintf("%s prefetch [v%d]%s", pc, ins.Args[0], name)
	case OpPhi:
		parts := make([]string, len(ins.Args))
		for i := range ins.Args {
			parts[i] = fmt.Sprintf("[v%d, b%d]", ins.Args[i], ins.PhiPreds[i])
		}
		return fmt.Sprintf("%s v%d = phi %s%s", pc, v, strings.Join(parts, " "), name)
	case OpBr:
		return fmt.Sprintf("%s br v%d%s", pc, ins.Args[0], name)
	case OpJmp:
		return fmt.Sprintf("%s jmp%s", pc, name)
	case OpRet:
		return fmt.Sprintf("%s ret%s", pc, name)
	default:
		args := make([]string, len(ins.Args))
		for i, a := range ins.Args {
			args[i] = fmt.Sprintf("v%d", a)
		}
		return fmt.Sprintf("%s v%d = %s %s%s", pc, v, ins.Op, strings.Join(args, ", "), name)
	}
}
