package experiments

import (
	"testing"

	"aptget/internal/runner"
)

// TestSerialParallelByteIdentical asserts the core guarantee of the
// parallel run engine: experiment output is byte-identical at any worker
// pool width. fig1 exercises the micro distance sweeps (nested
// series/distance fan-out); fig9 exercises the per-app jobs with the
// baseline+profile pair and forced-distance runs inside each.
func TestSerialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("double (serial + parallel) experiment run is slow in -short mode")
	}
	for _, id := range []string{"fig1", "fig9"} {
		t.Run(id, func(t *testing.T) {
			run := func(width int) string {
				prev := runner.SetMaxWorkers(width)
				defer runner.SetMaxWorkers(prev)
				res, err := All()[id](Options{Quick: true})
				if err != nil {
					t.Fatalf("width %d: %v", width, err)
				}
				return res.String()
			}
			serial, parallel := run(1), run(4)
			if serial != parallel {
				t.Fatalf("output differs between serial and parallel runs:\n"+
					"--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}
