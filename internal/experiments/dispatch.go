package experiments

import (
	"fmt"
	"sort"
	"sync"

	"aptget/internal/graphgen"
	"aptget/internal/obs"
	"aptget/internal/workloads"
)

// Runner executes one experiment and returns its printable result.
type Runner func(Options) (fmt.Stringer, error)

func wrap[T fmt.Stringer](f func(Options) (T, error)) Runner {
	return func(o Options) (fmt.Stringer, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

var (
	allOnce    sync.Once
	allRunners map[string]Runner
)

// All maps experiment IDs (DESIGN.md §4) to runners. The map is built
// once and shared: callers must not mutate it.
func All() map[string]Runner {
	allOnce.Do(func() { allRunners = buildAll() })
	return allRunners
}

func buildAll() map[string]Runner {
	return map[string]Runner{
		"table1":   wrap(Table1),
		"fig1":     wrap(Fig1),
		"fig2":     wrap(Fig2),
		"fig4":     wrap(Fig4),
		"fig5":     wrap(Fig5),
		"fig6":     wrap(Fig6),
		"fig7":     wrap(Fig7),
		"fig8":     wrap(Fig8),
		"fig9":     wrap(Fig9),
		"fig10":    wrap(Fig10),
		"fig11":    wrap(Fig11),
		"fig12":    wrap(Fig12),
		"datasets": wrap(Datasets),
		"fig6x":    wrap(Fig6x),
		"ablation":  wrap(Ablation),
		"lbrwidth":  wrap(LBRWidth),
		"replan":    wrap(Replan),
		"selection": wrap(Selection),
	}
}

// Run executes one experiment by ID under an observability span, so
// aptbench -report/-trace records per-experiment wall times alongside
// the pipeline-stage spans the experiment's runs open.
func Run(id string, o Options) (fmt.Stringer, error) {
	r, ok := All()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	sp := obs.Begin("exp/"+id, obs.StageExperiment)
	defer sp.End()
	return r(o)
}

// Names returns the experiment IDs in stable order.
func Names() []string {
	m := All()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DatasetsResult reproduces Tables 3 and 4: the application list and the
// synthetic stand-ins for the paper's datasets.
type DatasetsResult struct {
	Apps     []workloads.Entry
	Datasets []graphgen.Dataset
}

// Datasets collects the registries (no simulation).
func Datasets(o Options) (*DatasetsResult, error) {
	return &DatasetsResult{
		Apps:     workloads.Registry(),
		Datasets: graphgen.Datasets(),
	}, nil
}

// String renders both tables.
func (d *DatasetsResult) String() string {
	var appRows [][]string
	for _, e := range d.Apps {
		appRows = append(appRows, []string{e.Key, e.Description, e.Dataset})
	}
	var dsRows [][]string
	for _, ds := range d.Datasets {
		g := ds.Make()
		dsRows = append(dsRows, []string{
			ds.Name, ds.Original, ds.Class,
			fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%.1f", g.AvgDegree()),
		})
	}
	return "Table 3: applications\n" +
		table([]string{"app", "description", "dataset"}, appRows) +
		"\nTable 4: dataset stand-ins (scaled; see DESIGN.md)\n" +
		table([]string{"name", "models", "class", "vertices", "edges", "avg deg"}, dsRows)
}
