package experiments

import (
	"fmt"

	"aptget/internal/core"
)

// Fig8Row compares the LBR-derived distance against an exhaustive static
// sweep for one application.
type Fig8Row struct {
	Key           string
	BestDistance  int64   // best distance from the sweep D={1..128}
	BestSpeedup   float64 // speedup at that distance
	AptGetSpeedup float64 // speedup with the LBR-computed distance
	LBRDistance   int64   // distance the analysis picked (first plan)
}

// Fig8Result reproduces Figure 8: the LBR sampling technique finds a
// near-optimal prefetch distance. The sweep pins every plan's distance
// (keeping APT-GET's injection sites) to isolate the distance decision.
type Fig8Result struct {
	Rows                       []Fig8Row
	BestGeoMean, AptGetGeoMean float64
}

// fig8Distances is the paper's sweep set D = {1,2,4,8,16,32,64,128}.
var fig8Distances = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// Fig8 runs the experiment.
func Fig8(o Options) (*Fig8Result, error) {
	cfg := o.config()
	res := &Fig8Result{}
	var bests, apts []float64
	for _, e := range apps(o) {
		w := e.New()
		base, err := core.RunBaseline(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", e.Key, err)
		}
		_, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", e.Key, err)
		}
		row := Fig8Row{Key: e.Key}
		if len(plans) > 0 {
			row.LBRDistance = plans[0].Distance
		}
		for _, d := range fig8Distances {
			r, err := core.RunWithPlans(w, forceDistance(plans, d), cfg)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s dist %d: %w", e.Key, d, err)
			}
			if sp := r.Speedup(base); sp > row.BestSpeedup {
				row.BestSpeedup = sp
				row.BestDistance = d
			}
		}
		apt, err := core.RunWithPlans(w, plans, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s apt: %w", e.Key, err)
		}
		row.AptGetSpeedup = apt.Speedup(base)
		res.Rows = append(res.Rows, row)
		bests = append(bests, row.BestSpeedup)
		apts = append(apts, row.AptGetSpeedup)
	}
	res.BestGeoMean = core.GeoMean(bests)
	res.AptGetGeoMean = core.GeoMean(apts)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig8Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%d", r.BestDistance),
			fmt.Sprintf("%.2fx", r.BestSpeedup),
			fmt.Sprintf("%d", r.LBRDistance),
			fmt.Sprintf("%.2fx", r.AptGetSpeedup),
		})
	}
	rows = append(rows, []string{"geomean", "",
		fmt.Sprintf("%.2fx", f.BestGeoMean), "",
		fmt.Sprintf("%.2fx", f.AptGetGeoMean)})
	return "Figure 8: exhaustive-sweep optimum vs. LBR-derived distance\n" +
		table([]string{"app", "best D", "best speedup", "LBR D", "APT-GET"}, rows)
}

// Fig9Row compares fixed global distances against the LBR distance.
type Fig9Row struct {
	Key    string
	Dist4  float64
	Dist16 float64
	Dist64 float64
	LBR    float64
}

// Fig9Result reproduces Figure 9: static distances 4/16/64 vs. the
// LBR-computed distance (all at APT-GET's injection sites).
type Fig9Result struct {
	Rows                       []Fig9Row
	Geo4, Geo16, Geo64, GeoLBR float64
}

// Fig9 runs the experiment.
func Fig9(o Options) (*Fig9Result, error) {
	cfg := o.config()
	res := &Fig9Result{}
	var g4, g16, g64, gl []float64
	for _, e := range apps(o) {
		w := e.New()
		base, err := core.RunBaseline(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", e.Key, err)
		}
		_, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", e.Key, err)
		}
		row := Fig9Row{Key: e.Key}
		speedupAt := func(d int64) (float64, error) {
			r, err := core.RunWithPlans(w, forceDistance(plans, d), cfg)
			if err != nil {
				return 0, err
			}
			return r.Speedup(base), nil
		}
		if row.Dist4, err = speedupAt(4); err != nil {
			return nil, err
		}
		if row.Dist16, err = speedupAt(16); err != nil {
			return nil, err
		}
		if row.Dist64, err = speedupAt(64); err != nil {
			return nil, err
		}
		apt, err := core.RunWithPlans(w, plans, cfg)
		if err != nil {
			return nil, err
		}
		row.LBR = apt.Speedup(base)
		res.Rows = append(res.Rows, row)
		g4 = append(g4, row.Dist4)
		g16 = append(g16, row.Dist16)
		g64 = append(g64, row.Dist64)
		gl = append(gl, row.LBR)
	}
	res.Geo4, res.Geo16, res.Geo64, res.GeoLBR =
		core.GeoMean(g4), core.GeoMean(g16), core.GeoMean(g64), core.GeoMean(gl)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig9Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.Dist4),
			fmt.Sprintf("%.2fx", r.Dist16),
			fmt.Sprintf("%.2fx", r.Dist64),
			fmt.Sprintf("%.2fx", r.LBR),
		})
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.2fx", f.Geo4),
		fmt.Sprintf("%.2fx", f.Geo16),
		fmt.Sprintf("%.2fx", f.Geo64),
		fmt.Sprintf("%.2fx", f.GeoLBR)})
	return "Figure 9: fixed distances vs. LBR-computed distance\n" +
		table([]string{"app", "D=4", "D=16", "D=64", "LBR"}, rows)
}
