package experiments

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/runner"
)

// Fig8Row compares the LBR-derived distance against an exhaustive static
// sweep for one application.
type Fig8Row struct {
	Key           string
	BestDistance  int64   // best distance from the sweep D={1..128}
	BestSpeedup   float64 // speedup at that distance
	AptGetSpeedup float64 // speedup with the LBR-computed distance
	LBRDistance   int64   // distance the analysis picked (first plan)
}

// Fig8Result reproduces Figure 8: the LBR sampling technique finds a
// near-optimal prefetch distance. The sweep pins every plan's distance
// (keeping APT-GET's injection sites) to isolate the distance decision.
type Fig8Result struct {
	Rows                       []Fig8Row
	BestGeoMean, AptGetGeoMean float64
}

// fig8Distances is the paper's sweep set D = {1,2,4,8,16,32,64,128}.
var fig8Distances = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// Fig8 runs the experiment: one job per app, and within each app one job
// per sweep distance (plus the LBR-distance run). The best distance is
// reduced in sweep order, so ties break exactly as the serial loop did.
func Fig8(o Options) (*Fig8Result, error) {
	cfg := o.config()
	entries := apps(o)
	rows, err := runner.Map(len(entries), func(i int) (Fig8Row, error) {
		e := entries[i]
		base, plans, err := baseAndPlans(e.New, cfg)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("fig8 %s: %w", e.Key, err)
		}
		row := Fig8Row{Key: e.Key}
		if len(plans) > 0 {
			row.LBRDistance = plans[0].Distance
		}
		runs, err := runner.Map(len(fig8Distances)+1, func(j int) (*core.Result, error) {
			if j == len(fig8Distances) {
				r, err := core.RunWithPlans(e.New(), plans, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s apt: %w", e.Key, err)
				}
				return r, nil
			}
			d := fig8Distances[j]
			r, err := core.RunWithPlans(e.New(), forceDistance(plans, d), cfg)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s dist %d: %w", e.Key, d, err)
			}
			return r, nil
		})
		if err != nil {
			return Fig8Row{}, err
		}
		for j, d := range fig8Distances {
			if sp := runs[j].Speedup(base); sp > row.BestSpeedup {
				row.BestSpeedup = sp
				row.BestDistance = d
			}
		}
		row.AptGetSpeedup = runs[len(fig8Distances)].Speedup(base)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Rows: rows}
	var bests, apts []float64
	for _, row := range rows {
		bests = append(bests, row.BestSpeedup)
		apts = append(apts, row.AptGetSpeedup)
	}
	res.BestGeoMean = core.GeoMean(bests)
	res.AptGetGeoMean = core.GeoMean(apts)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig8Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%d", r.BestDistance),
			fmt.Sprintf("%.2fx", r.BestSpeedup),
			fmt.Sprintf("%d", r.LBRDistance),
			fmt.Sprintf("%.2fx", r.AptGetSpeedup),
		})
	}
	rows = append(rows, []string{"geomean", "",
		fmt.Sprintf("%.2fx", f.BestGeoMean), "",
		fmt.Sprintf("%.2fx", f.AptGetGeoMean)})
	return "Figure 8: exhaustive-sweep optimum vs. LBR-derived distance\n" +
		table([]string{"app", "best D", "best speedup", "LBR D", "APT-GET"}, rows)
}

// Fig9Row compares fixed global distances against the LBR distance.
type Fig9Row struct {
	Key    string
	Dist4  float64
	Dist16 float64
	Dist64 float64
	LBR    float64
}

// Fig9Result reproduces Figure 9: static distances 4/16/64 vs. the
// LBR-computed distance (all at APT-GET's injection sites).
type Fig9Result struct {
	Rows                       []Fig9Row
	Geo4, Geo16, Geo64, GeoLBR float64
}

// Fig9 runs the experiment: one job per app; the three fixed distances
// and the LBR-distance run fan out within each.
func Fig9(o Options) (*Fig9Result, error) {
	cfg := o.config()
	fixed := []int64{4, 16, 64}
	entries := apps(o)
	rows, err := runner.Map(len(entries), func(i int) (Fig9Row, error) {
		e := entries[i]
		base, plans, err := baseAndPlans(e.New, cfg)
		if err != nil {
			return Fig9Row{}, fmt.Errorf("fig9 %s: %w", e.Key, err)
		}
		sps, err := runner.Map(len(fixed)+1, func(j int) (float64, error) {
			p := plans
			if j < len(fixed) {
				p = forceDistance(plans, fixed[j])
			}
			r, err := core.RunWithPlans(e.New(), p, cfg)
			if err != nil {
				return 0, fmt.Errorf("fig9 %s: %w", e.Key, err)
			}
			return r.Speedup(base), nil
		})
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			Key: e.Key, Dist4: sps[0], Dist16: sps[1], Dist64: sps[2], LBR: sps[3],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Rows: rows}
	var g4, g16, g64, gl []float64
	for _, row := range rows {
		g4 = append(g4, row.Dist4)
		g16 = append(g16, row.Dist16)
		g64 = append(g64, row.Dist64)
		gl = append(gl, row.LBR)
	}
	res.Geo4, res.Geo16, res.Geo64, res.GeoLBR =
		core.GeoMean(g4), core.GeoMean(g16), core.GeoMean(g64), core.GeoMean(gl)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig9Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.Dist4),
			fmt.Sprintf("%.2fx", r.Dist16),
			fmt.Sprintf("%.2fx", r.Dist64),
			fmt.Sprintf("%.2fx", r.LBR),
		})
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.2fx", f.Geo4),
		fmt.Sprintf("%.2fx", f.Geo16),
		fmt.Sprintf("%.2fx", f.Geo64),
		fmt.Sprintf("%.2fx", f.GeoLBR)})
	return "Figure 9: fixed distances vs. LBR-computed distance\n" +
		table([]string{"app", "D=4", "D=16", "D=64", "LBR"}, rows)
}
