package experiments

import (
	"strings"
	"testing"
)

// TestSelectionQuickShapes runs the quick selection sweep and asserts
// the corpus's acceptance properties: the frontier is monotone per app
// (a stricter gate never adds plans), the gate-off column plans every
// candidate, and the LSM head-to-head contrast holds — the 2-D gate
// keeps the expensive-rare probe and drops the cheap-frequent scan
// while the MPKI-only ablation does the reverse. CI's selection-smoke
// job runs exactly this test under -race.
func TestSelectionQuickShapes(t *testing.T) {
	res, err := Selection(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !res.LSMContrastHolds() {
		t.Fatalf("LSM gate contrast does not hold: %+v", res.Gates)
	}

	plans := map[string][]int{} // app -> plans per threshold, sweep order
	for _, c := range res.Cells {
		plans[c.App] = append(plans[c.App], c.Plans)
	}
	for _, app := range res.Apps {
		p := plans[app]
		if len(p) != len(res.Thresholds) {
			t.Fatalf("%s: %d cells for %d thresholds", app, len(p), len(res.Thresholds))
		}
		for i := 1; i < len(p); i++ {
			if p[i] > p[i-1] {
				t.Fatalf("%s: raising the gate from %.0f to %.0f added plans (%d -> %d)",
					app, res.Thresholds[i-1], res.Thresholds[i], p[i-1], p[i])
			}
		}
	}
	// The sweep must actually exercise the gate: LSM loses its cheap
	// scan plan somewhere between gate-off and the strictest setting.
	lsm := plans["LSM"]
	if lsm[0] <= lsm[len(lsm)-1] {
		t.Fatalf("LSM plan count should strictly drop across the sweep, got %v", lsm)
	}

	// The rendered report is what the smoke job greps; pin its verdict
	// line.
	if !strings.Contains(res.String(), "contrast holds (2-D keeps probe/drops scan; MPKI-only reversed): true") {
		t.Fatalf("report does not state the contrast verdict:\n%s", res.String())
	}
}
