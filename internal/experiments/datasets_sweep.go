package experiments

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/graphgen"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// Fig6xRow is one application×dataset cell.
type Fig6xRow struct {
	App, Dataset  string
	StaticSpeedup float64
	AptGetSpeedup float64
}

// Fig6xResult extends Figure 6 the way the paper's x-axis does: the
// graph kernels evaluated across several Table 4 datasets (web crawls,
// p2p, road networks, social), showing how input structure shifts the
// win between the static pass and APT-GET.
type Fig6xResult struct {
	Rows                      []Fig6xRow
	StaticGeoMean, AptGeoMean float64
}

func fig6xCells(o Options) []struct {
	app, ds string
	mk      func() core.Workload
} {
	bfs := func(ds string) func() core.Workload {
		return func() core.Workload {
			d, _ := graphgen.ByName(ds)
			g := d.Make()
			return workloads.NewBFS("BFS-"+ds, g, workloads.TopDegreeVertices(g, 1)[0])
		}
	}
	pr := func(ds string) func() core.Workload {
		return func() core.Workload {
			d, _ := graphgen.ByName(ds)
			return workloads.NewPageRank("PR-"+ds, d.Make(), 2)
		}
	}
	dfs := func(ds string) func() core.Workload {
		return func() core.Workload {
			d, _ := graphgen.ByName(ds)
			g := d.Make()
			return workloads.NewDFS("DFS-"+ds, g, workloads.TopDegreeVertices(g, 1)[0])
		}
	}
	cells := []struct {
		app, ds string
		mk      func() core.Workload
	}{
		{"BFS", "WG", bfs("WG")},
		{"BFS", "LBE", bfs("LBE")},
		{"BFS", "WB", bfs("WB")},
		{"BFS", "CA", bfs("CA")},
		{"BFS", "PA", bfs("PA")},
		{"PR", "WN", pr("WN")},
		{"PR", "WS", pr("WS")},
		{"DFS", "P2P", dfs("P2P")},
		{"DFS", "WN", dfs("WN")},
	}
	if o.Quick {
		return cells[:3]
	}
	return cells
}

// Fig6x runs the dataset sweep: one job per app×dataset cell.
func Fig6x(o Options) (*Fig6xResult, error) {
	cfg := o.config()
	cells := fig6xCells(o)
	rows, err := runner.Map(len(cells), func(i int) (Fig6xRow, error) {
		c := cells[i]
		cmp, err := core.CompareFrom(c.mk, cfg)
		if err != nil {
			return Fig6xRow{}, fmt.Errorf("fig6x %s/%s: %w", c.app, c.ds, err)
		}
		return Fig6xRow{
			App: c.app, Dataset: c.ds,
			StaticSpeedup: cmp.StaticSpeedup(),
			AptGetSpeedup: cmp.AptGetSpeedup(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6xResult{Rows: rows}
	var ss, as []float64
	for _, row := range rows {
		ss = append(ss, row.StaticSpeedup)
		as = append(as, row.AptGetSpeedup)
	}
	res.StaticGeoMean = core.GeoMean(ss)
	res.AptGeoMean = core.GeoMean(as)
	return res, nil
}

// String renders the sweep as a table.
func (f *Fig6xResult) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.App, r.Dataset,
			fmt.Sprintf("%.2fx", r.StaticSpeedup),
			fmt.Sprintf("%.2fx", r.AptGetSpeedup),
		})
	}
	rows = append(rows, []string{"geomean", "",
		fmt.Sprintf("%.2fx", f.StaticGeoMean),
		fmt.Sprintf("%.2fx", f.AptGeoMean)})
	return "Figure 6 (extended): graph kernels across Table 4 datasets\n" +
		table([]string{"app", "dataset", "A&J", "APT-GET"}, rows)
}
