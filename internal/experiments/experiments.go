// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §4). Each experiment returns a result struct whose
// String method prints the same rows/series the paper reports; the
// aptbench CLI and the root bench_test.go expose them individually.
// DESIGN.md §4 maps experiment IDs to paper artifacts.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/mem"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// Level aliases used by the figure projections.
const (
	memLLC  = mem.LevelLLC
	memDRAM = mem.LevelDRAM
	memFB   = mem.LevelFB
)

// Options configures an experiment run.
type Options struct {
	// Quick restricts app sweeps to a representative subset (used by
	// -short test runs).
	Quick bool
	// Config overrides the pipeline configuration (zero = default).
	Config core.Config
}

func (o Options) config() core.Config {
	cfg := o.Config
	if cfg.Machine.Name == "" {
		cfg = core.DefaultConfig()
	}
	// Sweeps verify each workload once via the baseline; transformed
	// runs are verified too (cheap relative to simulation), so keep
	// verification on everywhere.
	return cfg
}

// apps returns the benchmark set for a run.
func apps(o Options) []workloads.Entry {
	all := workloads.Registry()
	if !o.Quick {
		return all
	}
	var out []workloads.Entry
	for _, e := range all {
		switch e.Key {
		case "BFS", "SSSP", "IS", "HJ8":
			out = append(out, e)
		}
	}
	return out
}

// table renders rows with a header through a tabwriter.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

// ---------------------------------------------------------------------
// Shared three-way comparison (baseline / A&J / APT-GET) per app.
// Figures 5, 6, 7 and 11 are different projections of the same runs, so
// they share one cached sweep.

// AppComparison holds one application's three-way run.
type AppComparison struct {
	Key string
	Cmp *core.Comparison
}

var cmpCache sync.Map // string cache key -> []AppComparison

func comparisonCacheKey(o Options) string {
	return fmt.Sprintf("quick=%v/machine=%s", o.Quick, o.config().Machine.Name)
}

// FullComparisons runs (or returns cached) baseline/static/apt-get runs
// for every application. The apps are independent jobs fanned out over
// the runner pool; results come back in registry order.
func FullComparisons(o Options) ([]AppComparison, error) {
	key := comparisonCacheKey(o)
	if v, ok := cmpCache.Load(key); ok {
		return v.([]AppComparison), nil
	}
	cfg := o.config()
	entries := apps(o)
	out, err := runner.Map(len(entries), func(i int) (AppComparison, error) {
		e := entries[i]
		cmp, err := core.CompareFrom(e.New, cfg)
		if err != nil {
			return AppComparison{}, fmt.Errorf("experiments: %s: %w", e.Key, err)
		}
		return AppComparison{Key: e.Key, Cmp: cmp}, nil
	})
	if err != nil {
		return nil, err
	}
	cmpCache.Store(key, out)
	return out, nil
}

// baseAndPlans runs the no-prefetching baseline and the profile/analysis
// pipeline concurrently, each on its own workload instance (Build mutates
// workload state, so concurrent variants must not share one).
func baseAndPlans(newW func() core.Workload, cfg core.Config) (*core.Result, []analysis.Plan, error) {
	var base *core.Result
	var plans []analysis.Plan
	err := runner.Run(2, func(i int) error {
		if i == 0 {
			r, err := core.RunBaseline(newW(), cfg)
			base = r
			return err
		}
		_, p, err := core.ProfileAndPlan(newW(), cfg)
		plans = p
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return base, plans, nil
}

// forceDistance returns a copy of the plans with every distance pinned
// to d (both sites), isolating the distance decision — the mechanism
// behind Figures 8 and 9.
func forceDistance(plans []analysis.Plan, d int64) []analysis.Plan {
	out := append([]analysis.Plan(nil), plans...)
	for i := range out {
		out[i].Distance = d
		if out[i].Site == analysis.SiteOuter {
			out[i].OuterDistance = d
		} else {
			out[i].InnerDistance = d
		}
	}
	return out
}

// forceSite returns a copy of the plans with every plan pinned to the
// given injection site, keeping the site-appropriate measured distance —
// the Figure 10 ablation.
func forceSite(plans []analysis.Plan, site analysis.Site) []analysis.Plan {
	out := append([]analysis.Plan(nil), plans...)
	for i := range out {
		p := &out[i]
		p.Site = site
		switch site {
		case analysis.SiteInner:
			if p.InnerDistance < 1 {
				p.InnerDistance = 1
			}
			p.Distance = p.InnerDistance
		case analysis.SiteOuter:
			if p.OuterDistance < 1 {
				// The analysis never measured an outer distance (it chose
				// inner); derive one from the same model: the outer
				// iteration is ~trip inner iterations long.
				trip := int64(p.AvgTrip)
				if trip < 1 {
					trip = 1
				}
				p.OuterDistance = p.InnerDistance / trip
				if p.OuterDistance < 1 {
					p.OuterDistance = 1
				}
			}
			p.Distance = p.OuterDistance
		}
	}
	return out
}
