package experiments

import (
	"fmt"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/graphgen"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// Fig12Row is one application's train/test generalization result.
type Fig12Row struct {
	Key          string
	TrainSpeedup float64 // profiled and evaluated on the same input
	TestSpeedup  float64 // profiled on train input, evaluated on test input
}

// Fig12Result reproduces Figure 12: APT-GET generalizes across inputs —
// plans derived from a training dataset transfer to a different dataset
// of the same application with nearly the same speedup.
type Fig12Result struct {
	Rows                      []Fig12Row
	TrainGeoMean, TestGeoMean float64
}

// fig12Pair is a workload with train and test input variants. The two
// builds are structurally identical (same instruction sequence), so
// plans carry over — the same property AutoFDO relies on with stale
// profiles (§3.6).
type fig12Pair struct {
	key   string
	train func() core.Workload
	test  func() core.Workload
}

func fig12Pairs(o Options) []fig12Pair {
	mk := func(name string) *graphgen.Graph {
		d, _ := graphgen.ByName(name)
		return d.Make()
	}
	mkBFS := func(name string) core.Workload {
		g := mk(name)
		return workloads.NewBFS("BFS", g, workloads.TopDegreeVertices(g, 1)[0])
	}
	mkDFS := func(g *graphgen.Graph) core.Workload {
		return workloads.NewDFS("DFS", g, workloads.TopDegreeVertices(g, 1)[0])
	}
	pairs := []fig12Pair{
		{
			key:   "BFS",
			train: func() core.Workload { return mkBFS("WG") },
			test:  func() core.Workload { return mkBFS("WB") },
		},
		{
			key:   "DFS",
			train: func() core.Workload { return mkDFS(mk("P2P")) },
			test:  func() core.Workload { return mkDFS(graphgen.Uniform("P2P-t", 80_000, 2, 2102)) },
		},
		{
			key:   "PR",
			train: func() core.Workload { return workloads.NewPageRank("PR", mk("WN"), 2) },
			test:  func() core.Workload { return workloads.NewPageRank("PR", mk("WS"), 2) },
		},
		{
			key:   "SSSP",
			train: func() core.Workload { return workloads.NewSSSP("SSSP", graphgen.Uniform("P2P-s", 32_000, 2, 1102), 1) },
			test:  func() core.Workload { return workloads.NewSSSP("SSSP", graphgen.Uniform("P2P-s2", 32_000, 2, 2202), 1) },
		},
	}
	if o.Quick {
		return pairs[:2]
	}
	return pairs
}

// Fig12 runs the experiment: one job per pair. Within a pair the two
// profiling runs and the baseline are independent (each on its own
// workload instance), then the same-input and cross-input evaluations fan
// out once the plans exist.
func Fig12(o Options) (*Fig12Result, error) {
	cfg := o.config()
	pairs := fig12Pairs(o)
	rows, err := runner.Map(len(pairs), func(i int) (Fig12Row, error) {
		p := pairs[i]
		var trainPlans, testPlans []analysis.Plan
		var base *core.Result
		err := runner.Run(3, func(j int) error {
			switch j {
			case 0:
				_, plans, err := core.ProfileAndPlan(p.train(), cfg)
				if err != nil {
					return fmt.Errorf("fig12 %s train profile: %w", p.key, err)
				}
				trainPlans = plans
			case 1:
				_, plans, err := core.ProfileAndPlan(p.test(), cfg)
				if err != nil {
					return fmt.Errorf("fig12 %s test profile: %w", p.key, err)
				}
				testPlans = plans
			case 2:
				r, err := core.RunBaseline(p.test(), cfg)
				if err != nil {
					return err
				}
				base = r
			}
			return nil
		})
		if err != nil {
			return Fig12Row{}, err
		}
		// "TRAIN-DATA": profile and evaluation on the same (test) input;
		// "TEST-DATA": plans from the train input applied to the test input.
		sps, err := runner.Map(2, func(j int) (float64, error) {
			plans, label := testPlans, "same"
			if j == 1 {
				plans, label = trainPlans, "cross"
			}
			r, err := core.RunWithPlans(p.test(), plans, cfg)
			if err != nil {
				return 0, fmt.Errorf("fig12 %s %s-input: %w", p.key, label, err)
			}
			return r.Speedup(base), nil
		})
		if err != nil {
			return Fig12Row{}, err
		}
		return Fig12Row{Key: p.key, TrainSpeedup: sps[0], TestSpeedup: sps[1]}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Rows: rows}
	var trains, tests []float64
	for _, row := range rows {
		trains = append(trains, row.TrainSpeedup)
		tests = append(tests, row.TestSpeedup)
	}
	res.TrainGeoMean = core.GeoMean(trains)
	res.TestGeoMean = core.GeoMean(tests)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig12Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.TrainSpeedup),
			fmt.Sprintf("%.2fx", r.TestSpeedup),
		})
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.2fx", f.TrainGeoMean),
		fmt.Sprintf("%.2fx", f.TestGeoMean)})
	return "Figure 12: train-input vs. test-input plans (speedup on the test input)\n" +
		table([]string{"app", "same-input plans", "cross-input plans"}, rows)
}
