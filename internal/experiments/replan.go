package experiments

import (
	"fmt"
	"strings"

	"aptget/internal/core"
	"aptget/internal/replan"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// ReplanRow is one workload's stale-vs-adaptive comparison.
type ReplanRow struct {
	App             string
	Base            uint64 // baseline cycles, no prefetching
	Stale           uint64 // cycles under the first-phase one-shot plan
	Adaptive        uint64 // cycles under the feedback controller
	StaleSpeedup    float64
	AdaptiveSpeedup float64
	Swaps           int
	SwapCycles      []uint64
	Plans           int // plans active at the end of the adaptive run
}

// ReplanResult is the online re-planning study: plans are trained on
// each workload's first phase only (the Figure 12 train/test split), the
// full phase schedule then runs once with that stale plan frozen and
// once under the feedback controller, which may re-profile and hot-swap
// mid-run. The phase-changing workloads must show the adaptive run
// winning; the stationary control must show zero swaps and identical
// cycles (monitoring is free in simulated time).
type ReplanResult struct {
	Rows []ReplanRow
}

// Replan runs the study over the phased corpus.
func Replan(o Options) (*ReplanResult, error) {
	keys := []string{"phaseSG", "phaseRamp", "phaseFlat"}
	if o.Quick {
		keys = []string{"phaseSG", "phaseFlat"}
	}
	cfg := o.config()

	rows, err := runner.Map(len(keys), func(i int) (*ReplanRow, error) {
		e, ok := workloads.ByKey(keys[i])
		if !ok {
			return nil, fmt.Errorf("replan: unknown app %s", keys[i])
		}
		base, err := core.RunBaseline(e.New(), cfg)
		if err != nil {
			return nil, fmt.Errorf("replan %s: %w", keys[i], err)
		}
		train := e.New().(*workloads.Phased).Prefix(1)
		_, plans, err := core.ProfileAndPlan(train, cfg)
		if err != nil {
			return nil, fmt.Errorf("replan %s: train: %w", keys[i], err)
		}
		stale, err := core.RunWithPlans(e.New(), plans, cfg)
		if err != nil {
			return nil, fmt.Errorf("replan %s: stale: %w", keys[i], err)
		}
		ad, err := replan.Run(e.New(), plans, cfg, replan.Options{})
		if err != nil {
			return nil, fmt.Errorf("replan %s: adaptive: %w", keys[i], err)
		}
		return &ReplanRow{
			App:             keys[i],
			Base:            base.Counters.Cycles,
			Stale:           stale.Counters.Cycles,
			Adaptive:        ad.Counters.Cycles,
			StaleSpeedup:    float64(base.Counters.Cycles) / float64(stale.Counters.Cycles),
			AdaptiveSpeedup: float64(base.Counters.Cycles) / float64(ad.Counters.Cycles),
			Swaps:           ad.Swaps,
			SwapCycles:      ad.SwapCycles,
			Plans:           len(ad.Plans),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ReplanResult{}
	for _, r := range rows {
		res.Rows = append(res.Rows, *r)
	}
	return res, nil
}

// String renders the study, one greppable summary line per app (the CI
// smoke job asserts on the swaps=N fields).
func (r *ReplanResult) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App,
			fmt.Sprintf("%d", row.Base),
			fmt.Sprintf("%d", row.Stale),
			fmt.Sprintf("%d", row.Adaptive),
			fmt.Sprintf("%.2fx", row.StaleSpeedup),
			fmt.Sprintf("%.2fx", row.AdaptiveSpeedup),
			fmt.Sprintf("%d", row.Swaps),
		})
	}
	var b strings.Builder
	b.WriteString("Online re-planning: first-phase plan frozen (stale) vs hot-swapped (adaptive)\n")
	b.WriteString(table([]string{"app", "base cyc", "stale cyc", "adaptive cyc",
		"stale", "adaptive", "swaps"}, rows))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "replan %s: swaps=%d", row.App, row.Swaps)
		if len(row.SwapCycles) > 0 {
			fmt.Fprintf(&b, " at cycles %v", row.SwapCycles)
		}
		fmt.Fprintf(&b, ", %d plan(s) active\n", row.Plans)
	}
	return b.String()
}
