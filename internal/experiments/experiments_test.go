package experiments

import (
	"strings"
	"testing"

	"aptget/internal/analysis"
)

// The experiment tests assert the *shapes* the paper reports, not
// absolute numbers (see EXPERIMENTS.md). Quick mode restricts the app
// sweeps; the cached FullComparisons are shared across tests.

func quickOpt() Options { return Options{Quick: true} }

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	none, d1, d64, d1024 := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	if none.PrefetchAccuracy != 0 || none.LatePrefetch != 0 {
		t.Fatal("no-prefetch row must have zero prefetch metrics")
	}
	// §2.3 observations: moderate distances are accurate; distance 1 is
	// mostly late; a distance beyond the trip count collapses accuracy.
	if d1.PrefetchAccuracy < 0.5 || d64.PrefetchAccuracy < 0.5 {
		t.Fatalf("distances 1/64 should be accurate: %+v %+v", d1, d64)
	}
	if d1024.PrefetchAccuracy > 0.2 {
		t.Fatalf("distance 1024 accuracy should collapse: %+v", d1024)
	}
	if d1.LatePrefetch < 0.3 {
		t.Fatalf("distance 1 should be mostly late: %+v", d1)
	}
	if d64.LatePrefetch > 0.1 {
		t.Fatalf("distance 64 should be timely: %+v", d64)
	}
	if d64.IPC <= none.IPC {
		t.Fatal("timely prefetching must raise IPC")
	}
	if !strings.Contains(res.String(), "Dist-64") {
		t.Fatal("render missing rows")
	}
}

func TestFig1Shapes(t *testing.T) {
	res, err := Fig1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("want 3 complexity series, got %d", len(res.Series))
	}
	low, med, high := res.Series[0], res.Series[1], res.Series[2]
	// The optimal distance shrinks as the work function grows (Figure 1's core insight: IC_latency up → distance down).
	if !(low.Best >= med.Best && med.Best >= high.Best) {
		t.Fatalf("optimal distances should decrease with complexity: %d/%d/%d",
			low.Best, med.Best, high.Best)
	}
	if low.Best == high.Best {
		t.Fatalf("low and high complexity should differ: %d == %d", low.Best, high.Best)
	}
	// Substantial gains at the optimum; regression at distance 1024.
	for _, s := range res.Series {
		if best := maxOf(s.Speedups); best < 1.5 {
			t.Fatalf("%s: peak speedup too small: %v", s.Label, best)
		}
		if last := s.Speedups[len(s.Speedups)-1]; last > 1.1 {
			t.Fatalf("%s: distance 1024 should not help: %v", s.Label, last)
		}
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestFig2Shapes(t *testing.T) {
	res, err := Fig2(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("want 3 trip-count series, got %d", len(res.Series))
	}
	trip4, trip64 := res.Series[0], res.Series[2]
	// §2.4: low trip counts profit far less from inner-loop injection
	// and need smaller distances.
	if maxOf(trip4.Speedups) >= maxOf(trip64.Speedups) {
		t.Fatalf("trip 4 (%.2f) should profit less than trip 64 (%.2f)",
			maxOf(trip4.Speedups), maxOf(trip64.Speedups))
	}
	if trip4.Best > 8 {
		t.Fatalf("trip 4 optimum should be a small distance, got %d", trip4.Best)
	}
}

func TestFig4Shapes(t *testing.T) {
	res, err := Fig4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) < 2 {
		t.Fatalf("latency distribution should be multi-modal, peaks=%v", res.Peaks)
	}
	if res.MC < 100 {
		t.Fatalf("memory component should be DRAM-sized, got %.0f", res.MC)
	}
	if res.IC <= 0 || res.IC >= res.MC {
		t.Fatalf("instruction component implausible: IC=%.0f MC=%.0f", res.IC, res.MC)
	}
	if res.Distance < 2 {
		t.Fatalf("derived distance too small: %d", res.Distance)
	}
	if res.NumLatencies < 100 {
		t.Fatalf("too few latency observations: %d", res.NumLatencies)
	}
}

func TestFig5Through11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison sweep is slow in -short mode")
	}
	o := quickOpt()

	f5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Average < 0.4 {
		t.Fatalf("selected apps should be memory bound, avg %.2f", f5.Average)
	}

	f6, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if f6.AptGetGeoMean <= 1.0 {
		t.Fatalf("APT-GET should speed up on average: %.2f", f6.AptGetGeoMean)
	}
	if f6.AptGetGeoMean <= f6.StaticGeoMean {
		t.Fatalf("APT-GET geomean (%.2f) should beat static (%.2f)",
			f6.AptGetGeoMean, f6.StaticGeoMean)
	}
	for _, r := range f6.Rows {
		if r.AptGetSpeedup < 0.95 {
			t.Fatalf("APT-GET must not regress %s: %.2f", r.Key, r.AptGetSpeedup)
		}
	}

	f7, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if f7.AptReduction <= 0 {
		t.Fatalf("APT-GET should cut misses, reduction %.2f", f7.AptReduction)
	}

	f11, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f11.Rows {
		if r.AptOverhead < 1.0 {
			t.Fatalf("%s: injected code cannot shrink instruction count: %.2f",
				r.Key, r.AptOverhead)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("site sweep is slow in -short mode")
	}
	res, err := Fig10(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig10Row{}
	for _, r := range res.Rows {
		byKey[r.Key] = r
	}
	hj8, ok := byKey["HJ8"]
	if !ok {
		t.Fatal("HJ8 missing from fig10")
	}
	// The paper's flagship site result: the bucketed hash join profits
	// from outer-loop injection far more than from inner-loop injection.
	if hj8.OuterSpeedup <= hj8.InnerSpeedup {
		t.Fatalf("HJ8 outer (%.2f) should beat inner (%.2f)",
			hj8.OuterSpeedup, hj8.InnerSpeedup)
	}
	dfs, ok := byKey["DFS"]
	if !ok {
		t.Fatal("DFS missing from fig10")
	}
	if dfs.ChosenSite != "inner" {
		t.Fatalf("DFS has no outer induction variable; site should be inner, got %s",
			dfs.ChosenSite)
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("input sweep is slow in -short mode")
	}
	res, err := Fig12(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Cross-input plans should deliver nearly the same speedup as
	// same-input plans (§4.9: no significant difference).
	for _, r := range res.Rows {
		if r.TestSpeedup < 0.85*r.TrainSpeedup {
			t.Fatalf("%s: cross-input plans lost too much: %.2f vs %.2f",
				r.Key, r.TestSpeedup, r.TrainSpeedup)
		}
	}
}

func TestDatasetsRender(t *testing.T) {
	res, err := Datasets(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"BFS", "HJ8", "web-Google", "kronecker"} {
		if !strings.Contains(s, want) {
			t.Fatalf("datasets output missing %q", want)
		}
	}
}

func TestForceDistanceAndSiteHelpers(t *testing.T) {
	plans := []analysis.Plan{
		{Site: analysis.SiteOuter, Distance: 9, InnerDistance: 16, OuterDistance: 9, AvgTrip: 3},
		{Site: analysis.SiteInner, Distance: 16, InnerDistance: 16},
	}
	fd := forceDistance(plans, 4)
	if fd[0].Distance != 4 || fd[0].OuterDistance != 4 || fd[1].InnerDistance != 4 {
		t.Fatalf("forceDistance wrong: %+v", fd)
	}
	if plans[0].Distance != 9 {
		t.Fatal("forceDistance must not mutate input")
	}
	fi := forceSite(plans, analysis.SiteInner)
	if fi[0].Site != analysis.SiteInner || fi[0].Distance != 16 {
		t.Fatalf("forceSite inner wrong: %+v", fi[0])
	}
	fo := forceSite(plans, analysis.SiteOuter)
	if fo[1].Site != analysis.SiteOuter || fo[1].Distance < 1 {
		t.Fatalf("forceSite outer wrong: %+v", fo[1])
	}
}

func TestRunnersRegistered(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("want 18 experiments, got %d: %v", len(names), names)
	}
	for _, id := range []string{"table1", "fig1", "fig6", "fig10", "fig12", "datasets", "replan"} {
		if _, ok := All()[id]; !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestSiteSummary(t *testing.T) {
	if got := siteSummary(nil); got != "none" {
		t.Fatalf("empty = %q", got)
	}
	inner := analysis.Plan{Site: analysis.SiteInner}
	outer := analysis.Plan{Site: analysis.SiteOuter}
	if got := siteSummary([]analysis.Plan{inner, inner}); got != "inner" {
		t.Fatalf("all-inner = %q", got)
	}
	if got := siteSummary([]analysis.Plan{outer}); got != "outer" {
		t.Fatalf("all-outer = %q", got)
	}
	if got := siteSummary([]analysis.Plan{outer, inner}); got != "outer×1 inner×1" {
		t.Fatalf("mixed = %q", got)
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow in -short mode")
	}
	res, err := Ablation(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 variants, got %d", len(res.Rows))
	}
	full := res.Rows[0]
	if full.Variant != "full APT-GET" {
		t.Fatalf("first row should be the full pipeline, got %s", full.Variant)
	}
	if full.Speedup <= 1.0 {
		t.Fatalf("full pipeline should speed up: %.2f", full.Speedup)
	}
	var innerOnly *AblationRow
	for i := range res.Rows {
		if res.Rows[i].Variant == "inner-loop only" {
			innerOnly = &res.Rows[i]
		}
	}
	if innerOnly == nil {
		t.Fatal("inner-only variant missing")
	}
	// The quick subset (HJ8, randAcc) depends on outer injection.
	if innerOnly.Speedup >= full.Speedup {
		t.Fatalf("inner-only (%.2f) should trail the full pipeline (%.2f) on HJ8",
			innerOnly.Speedup, full.Speedup)
	}
}

func TestLBRWidthShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("width sweep is slow in -short mode")
	}
	res, err := LBRWidth(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick mode should test 2 widths, got %d", len(res.Rows))
	}
	shallow, deep := res.Rows[0], res.Rows[1]
	if shallow.Width >= deep.Width {
		t.Fatal("rows should be ordered by width")
	}
	// A deeper ring sees more of each inner loop: measured trip counts
	// must not shrink.
	if deep.AvgTrip < shallow.AvgTrip {
		t.Fatalf("deeper LBR should not measure smaller trips: %.1f vs %.1f",
			deep.AvgTrip, shallow.AvgTrip)
	}
	if shallow.Speedup <= 0.9 || deep.Speedup <= 0.9 {
		t.Fatalf("plans should not regress at any width: %.2f / %.2f",
			shallow.Speedup, deep.Speedup)
	}
}

func TestFig6xShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset sweep is slow in -short mode")
	}
	res, err := Fig6x(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("quick sweep should have 3 cells, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.AptGetSpeedup < 0.95 {
			t.Fatalf("%s/%s: APT-GET must not regress: %.2f", r.App, r.Dataset, r.AptGetSpeedup)
		}
	}
	if res.AptGeoMean <= 1.0 {
		t.Fatalf("sweep geomean should exceed 1.0: %.2f", res.AptGeoMean)
	}
}
