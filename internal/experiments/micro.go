package experiments

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Label            string
	IPC              float64
	PrefetchAccuracy float64 // offcore share of prefetch-flavoured reads
	LatePrefetch     float64 // LOAD_HIT_PRE.SW_PF / prefetches issued
}

// Table1Result reproduces Table 1: prefetch accuracy and timeliness of
// the static pass on the microbenchmark (INNER=256, low complexity) at
// distances {none, 1, 64, 1024}.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the experiment. The baseline and the three distances are
// four independent jobs on the runner pool.
func Table1(o Options) (*Table1Result, error) {
	cfg := o.config()
	distances := []int64{1, 64, 1024}

	rows, err := runner.Map(1+len(distances), func(i int) (Table1Row, error) {
		w := workloads.NewMicro(256, workloads.ComplexityLow)
		if i == 0 {
			base, err := core.RunBaseline(w, cfg)
			if err != nil {
				return Table1Row{}, err
			}
			return Table1Row{Label: "None", IPC: base.Counters.IPC()}, nil
		}
		d := distances[i-1]
		c := cfg
		c.Static.Distance = d
		r, err := core.RunStatic(w, c)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 dist %d: %w", d, err)
		}
		return Table1Row{
			Label:            fmt.Sprintf("Dist-%d", d),
			IPC:              r.Counters.IPC(),
			PrefetchAccuracy: r.Counters.PrefetchAccuracy(),
			LatePrefetch:     r.Counters.LatePrefetchRatio(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows}, nil
}

// String renders the table.
func (t *Table1Result) String() string {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{
			r.Label,
			fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.0f%%", 100*r.PrefetchAccuracy),
			fmt.Sprintf("%.0f%%", 100*r.LatePrefetch),
		}
	}
	return "Table 1: prefetch accuracy and timeliness vs. distance (micro, INNER=256, low)\n" +
		table([]string{"Prefetch", "IPC", "Accuracy", "Late"}, rows)
}

// DistanceSweepSeries is one speedup-vs-distance curve.
type DistanceSweepSeries struct {
	Label     string
	Distances []int64
	Speedups  []float64
	Best      int64 // distance with the highest speedup
}

// Fig1Result reproduces Figure 1: speedup vs. prefetch distance for the
// three work-function complexities (INNER=256).
type Fig1Result struct {
	Series []DistanceSweepSeries
}

// Fig1 runs the experiment: three complexity series, each a distance
// sweep, all fanned out on the runner pool.
func Fig1(o Options) (*Fig1Result, error) {
	distances := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
	cs := []workloads.Complexity{
		workloads.ComplexityLow, workloads.ComplexityMedium, workloads.ComplexityHigh,
	}
	series, err := runner.Map(len(cs), func(i int) (DistanceSweepSeries, error) {
		return microSweep(o, 256, cs[i], distances)
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Series: series}, nil
}

// Fig2Result reproduces Figure 2: speedup vs. distance for low
// complexity and inner trip counts {4, 16, 64}.
type Fig2Result struct {
	Series []DistanceSweepSeries
}

// Fig2 runs the experiment.
func Fig2(o Options) (*Fig2Result, error) {
	distances := []int64{1, 2, 4, 8, 16, 32, 64}
	inners := []int64{4, 16, 64}
	series, err := runner.Map(len(inners), func(i int) (DistanceSweepSeries, error) {
		s, err := microSweep(o, inners[i], workloads.ComplexityLow, distances)
		if err != nil {
			return s, err
		}
		s.Label = fmt.Sprintf("INNER=%d", inners[i])
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Series: series}, nil
}

// microSweep enumerates the baseline plus one job per distance, runs them
// on the pool, and reduces the speedup curve in distance order (so the
// reported optimum ties break exactly as the serial loop did).
func microSweep(o Options, inner int64, c workloads.Complexity, distances []int64) (DistanceSweepSeries, error) {
	cfg := o.config()
	s := DistanceSweepSeries{
		Label:     c.String(),
		Distances: distances,
	}
	runs, err := runner.Map(1+len(distances), func(i int) (*core.Result, error) {
		if i == 0 {
			return core.RunBaseline(workloads.NewMicro(inner, c), cfg)
		}
		d := distances[i-1]
		cc := cfg
		cc.Static.Distance = d
		r, err := core.RunStatic(workloads.NewMicro(inner, c), cc)
		if err != nil {
			return nil, fmt.Errorf("micro sweep inner=%d dist=%d: %w", inner, d, err)
		}
		return r, nil
	})
	if err != nil {
		return s, err
	}
	base := runs[0]
	best := 0.0
	for i, d := range distances {
		sp := runs[1+i].Speedup(base)
		s.Speedups = append(s.Speedups, sp)
		if sp > best {
			best = sp
			s.Best = d
		}
	}
	return s, nil
}

func sweepString(title string, series []DistanceSweepSeries) string {
	if len(series) == 0 {
		return title + "\n(no data)\n"
	}
	header := []string{"distance"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	var rows [][]string
	for i, d := range series[0].Distances {
		row := []string{fmt.Sprintf("%d", d)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2fx", s.Speedups[i]))
		}
		rows = append(rows, row)
	}
	bests := []string{"best"}
	for _, s := range series {
		bests = append(bests, fmt.Sprintf("@%d", s.Best))
	}
	rows = append(rows, bests)
	return title + "\n" + table(header, rows)
}

// String renders the figure as a table.
func (f *Fig1Result) String() string {
	return sweepString("Figure 1: speedup vs. prefetch distance (INNER=256, work complexity)", f.Series)
}

// String renders the figure as a table.
func (f *Fig2Result) String() string {
	return sweepString("Figure 2: speedup vs. prefetch distance (low complexity, inner trip count)", f.Series)
}
