package experiments

import (
	"fmt"
	"sort"
	"strings"

	"aptget/internal/core"
	"aptget/internal/mem"
	"aptget/internal/pebs"
	"aptget/internal/profile"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// selectionPEBSPeriod is the sampling density used by the selection
// study. The default period (97) is fine for ranking hot loads but
// leaves the adversarial kernels' rare-expensive loads with a handful
// of samples; a denser prime keeps the frontier's score estimates
// stable without changing their expectation.
const selectionPEBSPeriod = 13

// SelectionCell is one (app, threshold) point of the frontier sweep.
type SelectionCell struct {
	App           string
	Threshold     float64 // MinLoadSCKPI; negative = gate off (rank only)
	Plans         int
	Speedup       float64
	InstrOverhead float64
}

// SelectionGate summarizes which LSM loads one gate kept.
type SelectionGate struct {
	Name    string
	Kept    []string
	Dropped []string
}

// SelectionResult is the 2-D selection study: a threshold frontier
// (plans kept / speedup / instruction overhead per app as the score
// gate sweeps from permissive to strict) plus the head-to-head gate
// comparison on the adversarial LSM scan kernel.
type SelectionResult struct {
	Apps       []string
	Thresholds []float64
	Cells      []SelectionCell // app-major, threshold order within app
	Gates      []SelectionGate // LSM: "2-D score" then "MPKI-only"
}

// LSMContrastHolds reports the corpus's acceptance property as computed
// by the study: the 2-D gate kept the expensive probe and dropped the
// cheap scan, while the MPKI-only gate did the reverse.
func (s *SelectionResult) LSMContrastHolds() bool {
	find := func(name string) *SelectionGate {
		for i := range s.Gates {
			if s.Gates[i].Name == name {
				return &s.Gates[i]
			}
		}
		return nil
	}
	has := func(l []string, n string) bool {
		for _, x := range l {
			if x == n {
				return true
			}
		}
		return false
	}
	twoD, oneD := find("2-D score"), find("MPKI-only")
	if twoD == nil || oneD == nil {
		return false
	}
	return has(twoD.Kept, "probe") && has(twoD.Dropped, "scan") &&
		has(oneD.Kept, "scan") && has(oneD.Dropped, "probe")
}

// Selection runs the delinquent-load selection study over the
// adversarial corpus plus representative Table 3 applications.
func Selection(o Options) (*SelectionResult, error) {
	keys := []string{"LSM", "BTree", "MTI", "BFS", "CG", "HJ8"}
	thresholds := []float64{-1, 10, 25, 50, 100, 200}
	if o.Quick {
		keys = []string{"LSM", "BTree"}
		thresholds = []float64{-1, 50, 200}
	}
	res := &SelectionResult{Apps: keys, Thresholds: thresholds}

	entries := make([]workloads.Entry, len(keys))
	for i, k := range keys {
		e, ok := workloads.ByKey(k)
		if !ok {
			return nil, fmt.Errorf("selection: unknown app %s", k)
		}
		entries[i] = e
	}
	cfg0 := o.config()
	cfg0.Profile.PEBSPeriod = selectionPEBSPeriod
	bases, err := runner.Map(len(entries), func(i int) (*core.Result, error) {
		base, err := core.RunBaseline(entries[i].New(), cfg0)
		if err != nil {
			return nil, fmt.Errorf("selection %s: %w", keys[i], err)
		}
		return base, nil
	})
	if err != nil {
		return nil, err
	}

	cells, err := runner.Map(len(entries)*len(thresholds), func(j int) (SelectionCell, error) {
		e, th := entries[j/len(thresholds)], thresholds[j%len(thresholds)]
		cfg := cfg0
		cfg.Profile.MinLoadSCKPI = th
		r, err := core.RunAptGet(e.New(), cfg)
		if err != nil {
			return SelectionCell{}, fmt.Errorf("selection %s@%.0f: %w", e.Key, th, err)
		}
		base := bases[j/len(thresholds)]
		return SelectionCell{
			App:           e.Key,
			Threshold:     th,
			Plans:         len(r.Plans),
			Speedup:       r.Speedup(base),
			InstrOverhead: r.Counters.InstructionOverhead(&base.Counters),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells

	gates, err := lsmGateContrast(cfg0)
	if err != nil {
		return nil, err
	}
	res.Gates = gates
	return res, nil
}

// lsmGateContrast profiles the LSM kernel once (gate disabled) and runs
// both gates over the same candidates, reporting kept/dropped loads by
// source name.
func lsmGateContrast(cfg core.Config) ([]SelectionGate, error) {
	e, ok := workloads.ByKey("LSM")
	if !ok {
		return nil, fmt.Errorf("selection: LSM kernel missing")
	}
	w := e.New()
	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	popt := cfg.Profile
	popt.PEBSPeriod = selectionPEBSPeriod
	popt.MinLoadSCKPI = -1 // collect every candidate; gates applied below
	machine := cfg.Machine
	if machine.Name == "" {
		machine = mem.ConfigScaled()
	}
	prof, err := profile.Collect(p, machine, w.InitMem, popt)
	if err != nil {
		return nil, fmt.Errorf("selection: profiling LSM: %w", err)
	}
	name := func(pc uint64) string {
		for vi := range p.Func.Instrs {
			if p.Func.Instrs[vi].PC == pc {
				return p.Func.Instrs[vi].Name
			}
		}
		return fmt.Sprintf("pc%d", pc)
	}
	variants := []struct {
		label string
		opt   profile.Options
	}{
		{"2-D score", profile.Options{PEBSPeriod: selectionPEBSPeriod}},
		{"MPKI-only", profile.Options{PEBSPeriod: selectionPEBSPeriod, MPKIOnly: true}},
	}
	var gates []SelectionGate
	for _, v := range variants {
		cand := append([]pebs.Load(nil), prof.Loads...)
		kept := profile.SelectLoads(cand, prof.Counters.Instructions, v.opt)
		in := map[uint64]bool{}
		g := SelectionGate{Name: v.label}
		for _, l := range kept {
			in[l.PC] = true
			g.Kept = append(g.Kept, name(l.PC))
		}
		for _, l := range prof.Loads {
			if !in[l.PC] {
				g.Dropped = append(g.Dropped, name(l.PC))
			}
		}
		sort.Strings(g.Kept)
		sort.Strings(g.Dropped)
		gates = append(gates, g)
	}
	return gates, nil
}

// String renders the frontier (one row per app×threshold) and the gate
// contrast.
func (s *SelectionResult) String() string {
	var rows [][]string
	for _, c := range s.Cells {
		th := fmt.Sprintf("%.0f", c.Threshold)
		if c.Threshold < 0 {
			th = "off"
		}
		rows = append(rows, []string{
			c.App, th,
			fmt.Sprintf("%d", c.Plans),
			fmt.Sprintf("%.2fx", c.Speedup),
			fmt.Sprintf("%.3fx", c.InstrOverhead),
		})
	}
	var sb strings.Builder
	sb.WriteString("2-D selection frontier: score gate (stall cycles per kilo-instruction) sweep\n")
	sb.WriteString(table([]string{"app", "gate", "plans", "speedup", "instr overhead"}, rows))
	sb.WriteString("\nLSM gate contrast (cheap-frequent scan vs expensive-rare probe):\n")
	for _, g := range s.Gates {
		fmt.Fprintf(&sb, "  %-10s kept=%v dropped=%v\n", g.Name, g.Kept, g.Dropped)
	}
	fmt.Fprintf(&sb, "  contrast holds (2-D keeps probe/drops scan; MPKI-only reversed): %v\n",
		s.LSMContrastHolds())
	return sb.String()
}
