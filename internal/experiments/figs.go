package experiments

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/peaks"
	"aptget/internal/workloads"
)

// Fig4Result reproduces Figure 4: the latency distribution of the loop
// containing a delinquent load, measured from LBR samples, with its CWT
// peaks.
type Fig4Result struct {
	App          string
	LoadPC       uint64
	Hist         *peaks.Histogram
	Peaks        []float64
	IC, MC       float64
	Distance     int64
	NumLatencies int
}

// Fig4 profiles the BFS workload and returns the loop-latency
// distribution of its hottest delinquent load.
func Fig4(o Options) (*Fig4Result, error) {
	cfg := o.config()
	e, _ := workloads.ByKey("BFS")
	w := e.New()
	_, plans, err := core.ProfileAndPlan(w, cfg)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("fig4: no delinquent loads in BFS profile")
	}
	p := plans[0]
	h := peaks.NewHistogram(p.Inner.Latencies, 2)
	return &Fig4Result{
		App:          "BFS",
		LoadPC:       p.LoadPC,
		Hist:         h,
		Peaks:        p.Inner.Peaks,
		IC:           p.Inner.IC,
		MC:           p.Inner.MC,
		Distance:     p.Distance,
		NumLatencies: len(p.Inner.Latencies),
	}, nil
}

// String renders the histogram sketch and derived quantities.
func (f *Fig4Result) String() string {
	return fmt.Sprintf(
		"Figure 4: loop latency distribution (%s, load pc=%d, %d samples)\n%s"+
			"peaks=%v  IC=%.0f cycles  MC=%.0f cycles  -> distance=%d\n",
		f.App, f.LoadPC, f.NumLatencies, f.Hist, f.Peaks, f.IC, f.MC, f.Distance)
}

// Fig5Row is one application's memory-boundedness.
type Fig5Row struct {
	Key                        string
	LLCBound, DRAMBound, Total float64
}

// Fig5Result reproduces Figure 5: the fraction of cycles the baseline
// stalls on L3/DRAM per application.
type Fig5Result struct {
	Rows    []Fig5Row
	Average float64
}

// Fig5 runs the experiment (shares runs with Figures 6/7/11).
func Fig5(o Options) (*Fig5Result, error) {
	cmps, err := FullComparisons(o)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	sum := 0.0
	for _, c := range cmps {
		ctr := &c.Cmp.Base.Counters
		llc := ctr.StallFraction(memLLC)
		dram := ctr.StallFraction(memDRAM) + ctr.StallFraction(memFB)
		res.Rows = append(res.Rows, Fig5Row{
			Key: c.Key, LLCBound: llc, DRAMBound: dram, Total: llc + dram,
		})
		sum += llc + dram
	}
	if len(res.Rows) > 0 {
		res.Average = sum / float64(len(res.Rows))
	}
	return res, nil
}

// String renders the figure as a table.
func (f *Fig5Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.1f%%", 100*r.LLCBound),
			fmt.Sprintf("%.1f%%", 100*r.DRAMBound),
			fmt.Sprintf("%.1f%%", 100*r.Total),
		})
	}
	rows = append(rows, []string{"average", "", "", fmt.Sprintf("%.1f%%", 100*f.Average)})
	return "Figure 5: baseline cycles stalled on the memory system\n" +
		table([]string{"app", "L3", "DRAM", "total"}, rows)
}

// Fig6Row is one application's headline speedups.
type Fig6Row struct {
	Key           string
	StaticSpeedup float64
	AptGetSpeedup float64
}

// Fig6Result reproduces Figure 6: execution-time speedup of Ainsworth &
// Jones and APT-GET over the no-prefetching baseline.
type Fig6Result struct {
	Rows          []Fig6Row
	StaticGeoMean float64
	AptGetGeoMean float64
}

// Fig6 runs the experiment.
func Fig6(o Options) (*Fig6Result, error) {
	cmps, err := FullComparisons(o)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	var ss, as []float64
	for _, c := range cmps {
		row := Fig6Row{
			Key:           c.Key,
			StaticSpeedup: c.Cmp.StaticSpeedup(),
			AptGetSpeedup: c.Cmp.AptGetSpeedup(),
		}
		res.Rows = append(res.Rows, row)
		ss = append(ss, row.StaticSpeedup)
		as = append(as, row.AptGetSpeedup)
	}
	res.StaticGeoMean = core.GeoMean(ss)
	res.AptGetGeoMean = core.GeoMean(as)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig6Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.StaticSpeedup),
			fmt.Sprintf("%.2fx", r.AptGetSpeedup),
		})
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.2fx", f.StaticGeoMean),
		fmt.Sprintf("%.2fx", f.AptGetGeoMean)})
	return "Figure 6: speedup over no-prefetching baseline\n" +
		table([]string{"app", "Ainsworth&Jones", "APT-GET"}, rows)
}

// Fig7Row is one application's MPKI line.
type Fig7Row struct {
	Key                           string
	BaseMPKI, StaticMPKI, AptMPKI float64
}

// Fig7Result reproduces Figure 7: LLC misses per kilo-instruction.
type Fig7Result struct {
	Rows []Fig7Row
	// Average miss reduction relative to baseline.
	StaticReduction, AptReduction float64
}

// Fig7 runs the experiment.
func Fig7(o Options) (*Fig7Result, error) {
	cmps, err := FullComparisons(o)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	var sr, ar float64
	for _, c := range cmps {
		row := Fig7Row{
			Key:        c.Key,
			BaseMPKI:   c.Cmp.Base.Counters.MPKI(),
			StaticMPKI: c.Cmp.Static.Counters.MPKI(),
			AptMPKI:    c.Cmp.AptGet.Counters.MPKI(),
		}
		res.Rows = append(res.Rows, row)
		if row.BaseMPKI > 0 {
			// Reduction in absolute demand misses (the paper's metric),
			// approximated by the MPKI reduction adjusted for the small
			// instruction-count change.
			sr += 1 - row.StaticMPKI/row.BaseMPKI
			ar += 1 - row.AptMPKI/row.BaseMPKI
		}
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.StaticReduction = sr / n
		res.AptReduction = ar / n
	}
	return res, nil
}

// String renders the figure as a table.
func (f *Fig7Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.1f", r.BaseMPKI),
			fmt.Sprintf("%.1f", r.StaticMPKI),
			fmt.Sprintf("%.1f", r.AptMPKI),
		})
	}
	rows = append(rows, []string{"avg reduction",
		"",
		fmt.Sprintf("%.1f%%", 100*f.StaticReduction),
		fmt.Sprintf("%.1f%%", 100*f.AptReduction)})
	return "Figure 7: demand MPKI (lower is better)\n" +
		table([]string{"app", "baseline", "A&J", "APT-GET"}, rows)
}

// Fig11Row is one application's instruction overhead.
type Fig11Row struct {
	Key                         string
	StaticOverhead, AptOverhead float64
}

// Fig11Result reproduces Figure 11: instructions executed relative to
// the baseline.
type Fig11Result struct {
	Rows                []Fig11Row
	StaticMean, AptMean float64
}

// Fig11 runs the experiment.
func Fig11(o Options) (*Fig11Result, error) {
	cmps, err := FullComparisons(o)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	var ss, as []float64
	for _, c := range cmps {
		row := Fig11Row{
			Key:            c.Key,
			StaticOverhead: c.Cmp.Static.Counters.InstructionOverhead(&c.Cmp.Base.Counters),
			AptOverhead:    c.Cmp.AptGet.Counters.InstructionOverhead(&c.Cmp.Base.Counters),
		}
		res.Rows = append(res.Rows, row)
		ss = append(ss, row.StaticOverhead)
		as = append(as, row.AptOverhead)
	}
	res.StaticMean = core.GeoMean(ss)
	res.AptMean = core.GeoMean(as)
	return res, nil
}

// String renders the figure as a table.
func (f *Fig11Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.StaticOverhead),
			fmt.Sprintf("%.2fx", r.AptOverhead),
		})
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.2fx", f.StaticMean),
		fmt.Sprintf("%.2fx", f.AptMean)})
	return "Figure 11: instruction overhead over baseline\n" +
		table([]string{"app", "A&J", "APT-GET"}, rows)
}
