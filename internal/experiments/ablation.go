package experiments

import (
	"fmt"

	"aptget/internal/core"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// AblationRow is one APT-GET variant's aggregate result.
type AblationRow struct {
	Variant       string
	Speedup       float64 // geomean over the app set
	InstrOverhead float64 // geomean instruction overhead
}

// AblationResult evaluates the design choices DESIGN.md §6 calls out by
// disabling them one at a time: staged prefetching, line-granular
// sweeps, the instruction-component recovery, and outer-loop injection.
type AblationResult struct {
	Apps []string
	Rows []AblationRow
}

// ablationVariants lists the configurations under test.
func ablationVariants() []struct {
	name string
	mut  func(*core.Config)
} {
	return []struct {
		name string
		mut  func(*core.Config)
	}{
		{"full APT-GET", func(c *core.Config) {}},
		{"no staged prefetching", func(c *core.Config) { c.Inject.Inject.DisableStaging = true }},
		{"per-element sweeps", func(c *core.Config) { c.Inject.Inject.DisableLineStride = true }},
		{"raw lowest-peak IC", func(c *core.Config) { c.Analysis.RawIC = true }},
		{"inner-loop only", func(c *core.Config) { c.Analysis.DisableOuter = true }},
	}
}

// Ablation runs the variants over a diverse app subset. The per-app
// baselines and the variant×app grid are both flattened into independent
// jobs on the runner pool and reduced in variant-major order.
func Ablation(o Options) (*AblationResult, error) {
	keys := []string{"BFS", "HJ2", "HJ8", "CG", "randAcc"}
	if o.Quick {
		keys = []string{"HJ8", "randAcc"}
	}
	res := &AblationResult{Apps: keys}

	entries := make([]workloads.Entry, len(keys))
	for i, k := range keys {
		e, ok := workloads.ByKey(k)
		if !ok {
			return nil, fmt.Errorf("ablation: unknown app %s", k)
		}
		entries[i] = e
	}
	cfg0 := o.config()
	bases, err := runner.Map(len(entries), func(i int) (*core.Result, error) {
		base, err := core.RunBaseline(entries[i].New(), cfg0)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", keys[i], err)
		}
		return base, nil
	})
	if err != nil {
		return nil, err
	}

	variants := ablationVariants()
	runs, err := runner.Map(len(variants)*len(entries), func(j int) (*core.Result, error) {
		v, e := variants[j/len(entries)], entries[j%len(entries)]
		cfg := o.config()
		v.mut(&cfg)
		r, err := core.RunAptGet(e.New(), cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s/%s: %w", v.name, e.Key, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var sps, ovs []float64
		for ai := range entries {
			r, base := runs[vi*len(entries)+ai], bases[ai]
			sps = append(sps, r.Speedup(base))
			ovs = append(ovs, r.Counters.InstructionOverhead(&base.Counters))
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:       v.name,
			Speedup:       core.GeoMean(sps),
			InstrOverhead: core.GeoMean(ovs),
		})
	}
	return res, nil
}

// String renders the ablation as a table.
func (a *AblationResult) String() string {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Variant,
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2fx", r.InstrOverhead),
		})
	}
	return fmt.Sprintf("Ablation over %v: disable one design choice at a time\n", a.Apps) +
		table([]string{"variant", "geomean speedup", "instr overhead"}, rows)
}

// LBRWidthRow is one record-depth's analysis quality.
type LBRWidthRow struct {
	Width    int
	AvgTrip  float64 // measured trip count (first plan)
	Distance int64   // chosen distance (first plan)
	Speedup  float64
}

// LBRWidthResult measures how the branch-record depth affects the
// analysis: Intel's LBR holds 32 entries; AMD BRS and ARM BRBE differ.
// Shallow rings lose trip-count visibility (§3.6) and latency samples.
type LBRWidthResult struct {
	App  string
	Rows []LBRWidthRow
}

// LBRWidth runs the sensitivity study on BFS: the baseline plus one job
// per ring depth, each profiling and re-running its own BFS instance.
func LBRWidth(o Options) (*LBRWidthResult, error) {
	cfg := o.config()
	e, _ := workloads.ByKey("BFS")
	base, err := core.RunBaseline(e.New(), cfg)
	if err != nil {
		return nil, err
	}
	widths := []int{4, 8, 16, 32, 64}
	if o.Quick {
		widths = []int{8, 32}
	}
	rows, err := runner.Map(len(widths), func(i int) (LBRWidthRow, error) {
		width := widths[i]
		c := cfg
		c.Profile.LBRWidth = width
		_, plans, err := core.ProfileAndPlan(e.New(), c)
		if err != nil {
			return LBRWidthRow{}, fmt.Errorf("lbrwidth %d: %w", width, err)
		}
		row := LBRWidthRow{Width: width}
		if len(plans) > 0 {
			row.AvgTrip = plans[0].AvgTrip
			row.Distance = plans[0].Distance
		}
		r, err := core.RunWithPlans(e.New(), plans, c)
		if err != nil {
			return LBRWidthRow{}, fmt.Errorf("lbrwidth %d run: %w", width, err)
		}
		row.Speedup = r.Speedup(base)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &LBRWidthResult{App: e.Key, Rows: rows}, nil
}

// String renders the study as a table.
func (l *LBRWidthResult) String() string {
	var rows [][]string
	for _, r := range l.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Width),
			fmt.Sprintf("%.1f", r.AvgTrip),
			fmt.Sprintf("%d", r.Distance),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return fmt.Sprintf("LBR record depth sensitivity (%s): Intel LBR=32; AMD BRS / ARM BRBE differ\n", l.App) +
		table([]string{"width", "measured trip", "distance", "speedup"}, rows)
}
