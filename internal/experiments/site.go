package experiments

import (
	"fmt"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/graphgen"
	"aptget/internal/runner"
	"aptget/internal/workloads"
)

// Fig10Row compares forced-inner against forced-outer injection.
type Fig10Row struct {
	Key          string
	InnerSpeedup float64
	OuterSpeedup float64
	ChosenSite   string // site APT-GET actually picks
}

// Fig10Result reproduces Figure 10: the effect of the prefetch injection
// site for nested-loop applications across inputs with different degree
// distributions.
type Fig10Result struct {
	Rows []Fig10Row
}

// fig10Apps returns the nested-loop workloads the paper studies,
// including BFS on inputs with different average degrees (loc-Brightkite
// degree ≈3 vs. a synthetic 80k-vertex degree-8 graph).
func fig10Apps(o Options) []workloads.Entry {
	entries := []workloads.Entry{
		{Key: "BFS-LBE", New: func() core.Workload {
			d, _ := graphgen.ByName("LBE")
			g := d.Make()
			return workloads.NewBFS("BFS-LBE", g, workloads.TopDegreeVertices(g, 1)[0])
		}},
		{Key: "BFS-80k-d8", New: func() core.Workload {
			g := graphgen.Uniform("80k-d8", 80_000, 8, 2021)
			return workloads.NewBFS("BFS-80k-d8", g, workloads.TopDegreeVertices(g, 1)[0])
		}},
	}
	keys := []string{"DFS", "SSSP", "HJ2", "HJ8", "G500"}
	if o.Quick {
		entries = entries[:1]
		keys = []string{"DFS", "HJ8"}
	}
	for _, k := range keys {
		if e, ok := workloads.ByKey(k); ok {
			entries = append(entries, e)
		}
	}
	return entries
}

// Fig10 runs the experiment: one job per app, with the forced-inner and
// forced-outer runs fanned out within each.
func Fig10(o Options) (*Fig10Result, error) {
	cfg := o.config()
	entries := fig10Apps(o)
	rows, err := runner.Map(len(entries), func(i int) (Fig10Row, error) {
		e := entries[i]
		base, plans, err := baseAndPlans(e.New, cfg)
		if err != nil {
			return Fig10Row{}, fmt.Errorf("fig10 %s: %w", e.Key, err)
		}
		row := Fig10Row{Key: e.Key, ChosenSite: siteSummary(plans)}
		sites := []analysis.Site{analysis.SiteInner, analysis.SiteOuter}
		sps, err := runner.Map(len(sites), func(j int) (float64, error) {
			r, err := core.RunWithPlans(e.New(), forceSite(plans, sites[j]), cfg)
			if err != nil {
				return 0, fmt.Errorf("fig10 %s %v: %w", e.Key, sites[j], err)
			}
			return r.Speedup(base), nil
		})
		if err != nil {
			return Fig10Row{}, err
		}
		row.InnerSpeedup, row.OuterSpeedup = sps[0], sps[1]
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// siteSummary counts the sites chosen across a workload's plans.
func siteSummary(plans []analysis.Plan) string {
	if len(plans) == 0 {
		return "none"
	}
	inner, outer := 0, 0
	for _, p := range plans {
		if p.Site == analysis.SiteOuter {
			outer++
		} else {
			inner++
		}
	}
	switch {
	case outer == 0:
		return "inner"
	case inner == 0:
		return "outer"
	default:
		return fmt.Sprintf("outer×%d inner×%d", outer, inner)
	}
}

// String renders the figure as a table.
func (f *Fig10Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.InnerSpeedup),
			fmt.Sprintf("%.2fx", r.OuterSpeedup),
			r.ChosenSite,
		})
	}
	return "Figure 10: inner- vs. outer-loop injection (forced sites)\n" +
		table([]string{"app", "inner", "outer", "APT-GET picks"}, rows)
}
