package experiments

import (
	"fmt"

	"aptget/internal/analysis"
	"aptget/internal/core"
	"aptget/internal/graphgen"
	"aptget/internal/workloads"
)

// Fig10Row compares forced-inner against forced-outer injection.
type Fig10Row struct {
	Key          string
	InnerSpeedup float64
	OuterSpeedup float64
	ChosenSite   string // site APT-GET actually picks
}

// Fig10Result reproduces Figure 10: the effect of the prefetch injection
// site for nested-loop applications across inputs with different degree
// distributions.
type Fig10Result struct {
	Rows []Fig10Row
}

// fig10Apps returns the nested-loop workloads the paper studies,
// including BFS on inputs with different average degrees (loc-Brightkite
// degree ≈3 vs. a synthetic 80k-vertex degree-8 graph).
func fig10Apps(o Options) []workloads.Entry {
	entries := []workloads.Entry{
		{Key: "BFS-LBE", New: func() core.Workload {
			d, _ := graphgen.ByName("LBE")
			g := d.Make()
			return workloads.NewBFS("BFS-LBE", g, workloads.TopDegreeVertices(g, 1)[0])
		}},
		{Key: "BFS-80k-d8", New: func() core.Workload {
			g := graphgen.Uniform("80k-d8", 80_000, 8, 2021)
			return workloads.NewBFS("BFS-80k-d8", g, workloads.TopDegreeVertices(g, 1)[0])
		}},
	}
	keys := []string{"DFS", "SSSP", "HJ2", "HJ8", "G500"}
	if o.Quick {
		entries = entries[:1]
		keys = []string{"DFS", "HJ8"}
	}
	for _, k := range keys {
		if e, ok := workloads.ByKey(k); ok {
			entries = append(entries, e)
		}
	}
	return entries
}

// Fig10 runs the experiment.
func Fig10(o Options) (*Fig10Result, error) {
	cfg := o.config()
	res := &Fig10Result{}
	for _, e := range fig10Apps(o) {
		w := e.New()
		base, err := core.RunBaseline(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", e.Key, err)
		}
		_, plans, err := core.ProfileAndPlan(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", e.Key, err)
		}
		row := Fig10Row{Key: e.Key, ChosenSite: siteSummary(plans)}
		inner, err := core.RunWithPlans(w, forceSite(plans, analysis.SiteInner), cfg)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s inner: %w", e.Key, err)
		}
		outer, err := core.RunWithPlans(w, forceSite(plans, analysis.SiteOuter), cfg)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s outer: %w", e.Key, err)
		}
		row.InnerSpeedup = inner.Speedup(base)
		row.OuterSpeedup = outer.Speedup(base)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// siteSummary counts the sites chosen across a workload's plans.
func siteSummary(plans []analysis.Plan) string {
	if len(plans) == 0 {
		return "none"
	}
	inner, outer := 0, 0
	for _, p := range plans {
		if p.Site == analysis.SiteOuter {
			outer++
		} else {
			inner++
		}
	}
	switch {
	case outer == 0:
		return "inner"
	case inner == 0:
		return "outer"
	default:
		return fmt.Sprintf("outer×%d inner×%d", outer, inner)
	}
}

// String renders the figure as a table.
func (f *Fig10Result) String() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Key,
			fmt.Sprintf("%.2fx", r.InnerSpeedup),
			fmt.Sprintf("%.2fx", r.OuterSpeedup),
			r.ChosenSite,
		})
	}
	return "Figure 10: inner- vs. outer-loop injection (forced sites)\n" +
		table([]string{"app", "inner", "outer", "APT-GET picks"}, rows)
}
