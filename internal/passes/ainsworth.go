package passes

import (
	"fmt"

	"aptget/internal/ir"
	"aptget/internal/obs"
)

// StaticOptions configures the Ainsworth & Jones baseline pass.
type StaticOptions struct {
	// Distance is the compile-time prefetch distance, the paper's
	// -DFETCHDIST flag. Default 32.
	Distance int64
	// Obs, when non-nil, receives the pass's counters (aptbench -report).
	Obs *obs.Span
}

// LoadReport records what the pass did to one candidate load.
type LoadReport struct {
	PC          uint64 // load PC before the pass ran
	Name        string // debug label of the load
	SliceInstrs int    // dependence-slice size (0 when extraction failed)
	Distance    int64  // prefetch distance used (0 when skipped)
	Site        string // "inner" | "outer" ("" when skipped)
	InstrsAdded int    // instructions the injection inserted
	Skipped     string // non-empty reason when no prefetch was emitted
}

// Report summarizes what a pass did to a program.
type Report struct {
	Candidates  int // loads considered
	Injected    int // prefetch slices emitted
	Skipped     int // candidates whose slice could not be injected
	InstrsAdded int // instructions inserted

	Loads []LoadReport // per-candidate detail, candidate order
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("candidates=%d injected=%d skipped=%d instrs+=%d",
		r.Candidates, r.Injected, r.Skipped, r.InstrsAdded)
}

// observe copies the report's aggregate counters onto a span.
func (r *Report) observe(sp *obs.Span) {
	sp.Set("candidates", int64(r.Candidates))
	sp.Set("injected", int64(r.Injected))
	sp.Set("skipped", int64(r.Skipped))
	sp.Set("instrs_added", int64(r.InstrsAdded))
	for _, l := range r.Loads {
		sp.Add("slice_instrs", int64(l.SliceInstrs))
	}
}

// AinsworthJones applies the static software-prefetching pass of
// Ainsworth & Jones [CGO'17]: find every irregular (indirect or
// recurrence-addressed) load in a loop by static analysis, extract its
// load slice, and inject a prefetch slice *in the inner loop* with one
// global compile-time prefetch distance. No profile information is used —
// which is precisely the limitation APT-GET addresses.
func AinsworthJones(p *ir.Program, opt StaticOptions) (*Report, error) {
	if opt.Distance == 0 {
		opt.Distance = 32
	}
	if opt.Distance < 1 {
		return nil, fmt.Errorf("passes: invalid static distance %d", opt.Distance)
	}
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	rep := &Report{}
	for _, load := range Candidates(f, forest) {
		rep.Candidates++
		lr := LoadReport{PC: f.Instr(load).PC, Name: f.Instr(load).Name}
		s, ok := ExtractSlice(f, forest, load)
		if !ok {
			rep.Skipped++
			lr.Skipped = "slice extraction failed"
			rep.Loads = append(rep.Loads, lr)
			continue
		}
		lr.SliceInstrs = len(s.Instrs)
		n, err := InjectInner(f, forest, s, opt.Distance)
		rep.InstrsAdded += n
		lr.InstrsAdded = n
		if err != nil {
			rep.Skipped++
			lr.Skipped = err.Error()
			rep.Loads = append(rep.Loads, lr)
			continue
		}
		rep.Injected++
		lr.Distance = opt.Distance
		lr.Site = "inner"
		rep.Loads = append(rep.Loads, lr)
	}
	rep.observe(opt.Obs)
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		return rep, fmt.Errorf("passes: ainsworth-jones produced invalid IR: %w", err)
	}
	return rep, nil
}
