package passes

import (
	"fmt"

	"aptget/internal/ir"
)

// StaticOptions configures the Ainsworth & Jones baseline pass.
type StaticOptions struct {
	// Distance is the compile-time prefetch distance, the paper's
	// -DFETCHDIST flag. Default 32.
	Distance int64
}

// Report summarizes what a pass did to a program.
type Report struct {
	Candidates  int // loads considered
	Injected    int // prefetch slices emitted
	Skipped     int // candidates whose slice could not be injected
	InstrsAdded int // instructions inserted
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("candidates=%d injected=%d skipped=%d instrs+=%d",
		r.Candidates, r.Injected, r.Skipped, r.InstrsAdded)
}

// AinsworthJones applies the static software-prefetching pass of
// Ainsworth & Jones [CGO'17]: find every irregular (indirect or
// recurrence-addressed) load in a loop by static analysis, extract its
// load slice, and inject a prefetch slice *in the inner loop* with one
// global compile-time prefetch distance. No profile information is used —
// which is precisely the limitation APT-GET addresses.
func AinsworthJones(p *ir.Program, opt StaticOptions) (*Report, error) {
	if opt.Distance == 0 {
		opt.Distance = 32
	}
	if opt.Distance < 1 {
		return nil, fmt.Errorf("passes: invalid static distance %d", opt.Distance)
	}
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	rep := &Report{}
	for _, load := range Candidates(f, forest) {
		rep.Candidates++
		s, ok := ExtractSlice(f, forest, load)
		if !ok {
			rep.Skipped++
			continue
		}
		n, err := InjectInner(f, forest, s, opt.Distance)
		rep.InstrsAdded += n
		if err != nil {
			rep.Skipped++
			continue
		}
		rep.Injected++
	}
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		return rep, fmt.Errorf("passes: ainsworth-jones produced invalid IR: %w", err)
	}
	return rep, nil
}
