package passes

import (
	"fmt"
	"math"

	"aptget/internal/analysis"
	"aptget/internal/ir"
	"aptget/internal/obs"
)

// AptGetOptions configures the profile-guided injection pass.
type AptGetOptions struct {
	// MaxOuterSweep caps how many inner iterations an outer-loop prefetch
	// slice covers (the §3.5 iv2 sweep up to the average trip count).
	// Default 8.
	MaxOuterSweep int64
	// Inject toggles pass features for ablations.
	Inject InjectOptions
	// Obs, when non-nil, receives the pass's counters — slice sizes,
	// prefetches injected, skip reasons (aptbench -report).
	Obs *obs.Span
	// KeepPCs skips the final whole-function PC renumbering. Online
	// plan hot-swap injects into a program that is mid-execution: the
	// original PCs must stay stable (live LBR/PEBS samples and plan
	// provenance reference them), and cpu.State.SwapPlan assigns fresh
	// PCs to the new instructions itself.
	KeepPCs bool
}

// AptGet applies the APT-GET profile-guided pass (Algorithm 2 with
// AutoFDOMapping=true): for every delinquent load identified by the
// profile, extract its load slice and inject a prefetch slice at the
// analysis-selected site with the analysis-computed distance. Loads whose
// slice cannot be transformed are skipped, mirroring the pass's
// conservative behaviour. When the outer site fails structurally (e.g. no
// outer induction dependence), the pass falls back to the inner site with
// the inner distance.
func AptGet(p *ir.Program, plans []analysis.Plan, opt AptGetOptions) (*Report, error) {
	if opt.MaxOuterSweep == 0 {
		opt.MaxOuterSweep = 8
	}
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	rep := &Report{}
	for i := range plans {
		plan := &plans[i]
		rep.Candidates++
		if f.Instr(plan.Load).Op != ir.OpLoad {
			return rep, fmt.Errorf("passes: plan %d: v%d is not a load", i, plan.Load)
		}
		lr := LoadReport{PC: plan.LoadPC, Name: plan.LoadName}
		s, ok := ExtractSlice(f, forest, plan.Load)
		if !ok {
			rep.Skipped++
			lr.Skipped = "slice extraction failed"
			rep.Loads = append(rep.Loads, lr)
			continue
		}
		lr.SliceInstrs = len(s.Instrs)
		if s.MainLoads == 0 && !s.RecurrenceRoot {
			// Affine stream (e.g. the col[e] walk of a CSR kernel): the
			// hardware stride prefetcher already covers it, and a
			// software slice would only add instruction overhead. The
			// static pass applies the same indirect-pattern filter.
			rep.Skipped++
			lr.Skipped = "affine stream (hardware prefetcher covers it)"
			rep.Loads = append(rep.Loads, lr)
			continue
		}
		n, err := inject(f, forest, s, plan, opt)
		rep.InstrsAdded += n
		lr.InstrsAdded = n
		if err != nil {
			rep.Skipped++
			lr.Skipped = err.Error()
			rep.Loads = append(rep.Loads, lr)
			continue
		}
		rep.Injected++
		lr.Distance = plan.Distance
		lr.Site = plan.Site.String()
		rep.Loads = append(rep.Loads, lr)
	}
	rep.observe(opt.Obs)
	if !opt.KeepPCs {
		f.AssignPCs()
	}
	if err := f.Validate(); err != nil {
		return rep, fmt.Errorf("passes: apt-get produced invalid IR: %w", err)
	}
	return rep, nil
}

func inject(f *ir.Func, forest *ir.LoopForest, s *Slice, plan *analysis.Plan, opt AptGetOptions) (int, error) {
	if plan.Site == analysis.SiteOuter {
		// Sweep the inner iterations of the target outer iteration. The
		// LBR trip count is an average; on skewed degree distributions
		// (power-law graphs) most *edges* belong to vertices above the
		// average, so sweep a couple of iterations beyond it.
		sweep := int64(math.Ceil(plan.AvgTrip)) + 2
		if sweep < 1 {
			sweep = 1
		}
		if sweep > opt.MaxOuterSweep {
			sweep = opt.MaxOuterSweep
		}
		n, err := InjectOuterOpt(f, forest, s, plan.Distance, sweep, opt.Inject)
		if err == nil {
			return n, nil
		}
		// Structural fallback: keep the load covered from the inner loop.
		dist := plan.InnerDistance
		if dist < 1 {
			dist = 1
		}
		n2, err2 := InjectInnerOpt(f, forest, s, dist, opt.Inject)
		return n + n2, err2
	}
	return InjectInnerOpt(f, forest, s, plan.Distance, opt.Inject)
}
