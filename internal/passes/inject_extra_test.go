package passes

import (
	"math/rand"
	"testing"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// buildConditionalIndirect places the delinquent load inside an If within
// the inner loop (the SSSP/BFS shape): the injection site and slice
// cloning must handle multi-block loop bodies.
func buildConditionalIndirect(outer, inner, table int64) (*ir.Program, ir.Array, ir.Array, ir.Array) {
	b := ir.NewBuilder("cond")
	bArr := b.Alloc("B", outer*inner, 8)
	tArr := b.Alloc("T", table, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(inner))
		b.Loop("j", zero, b.Const(inner), 1, func(j ir.Value) {
			idx := b.LoadElem(bArr, b.Add(base, j))
			// Only odd indices hit the table.
			odd := b.And(idx, b.Const(1))
			b.If(b.Cmp(ir.PredEQ, odd, b.Const(1)), func() {
				v := b.LoadElem(tArr, idx)
				acc := b.LoadElem(out, zero)
				b.StoreElem(out, zero, b.Add(acc, v))
			}, nil)
		})
	})
	return b.Finish(), bArr, tArr, out
}

func initCond(bArr, tArr ir.Array, seed int64) func(*mem.Arena) {
	return func(a *mem.Arena) {
		rng := rand.New(rand.NewSource(seed))
		for i := int64(0); i < bArr.Count; i++ {
			a.Write(bArr.Addr(i), rng.Int63n(tArr.Count), 8)
		}
		for i := int64(0); i < tArr.Count; i++ {
			a.Write(tArr.Addr(i), i%23, 8)
		}
	}
}

func TestInjectInnerInsideIfBlock(t *testing.T) {
	const outer, inner, table = 32, 256, 1 << 18
	base, bA, tA, outA := buildConditionalIndirect(outer, inner, table)
	resBase := run(t, base, initCond(bA, tA, 3))
	want := resBase.Hier.Arena.Read(outA.Addr(0), 8)

	p2, bB, tB, outB := buildConditionalIndirect(outer, inner, table)
	f := p2.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	// The load lives in the if.then block, not the loop header.
	if f.Instr(load).Block == forest.InnermostFor(f.Instr(load).Block).Header {
		t.Fatal("test precondition: load should live in a non-header block")
	}
	s, ok := ExtractSlice(f, forest, load)
	if !ok {
		t.Fatal("slice extraction failed for conditional load")
	}
	if _, err := InjectInner(f, forest, s, 16); err != nil {
		t.Fatal(err)
	}
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	res := run(t, p2, initCond(bB, tB, 3))
	if got := res.Hier.Arena.Read(outB.Addr(0), 8); got != want {
		t.Fatalf("conditional injection changed semantics: %d vs %d", got, want)
	}
	if res.Counters.SWPrefetches == 0 {
		t.Fatal("no prefetches executed")
	}
	if sp := float64(resBase.Counters.Cycles) / float64(res.Counters.Cycles); sp < 1.2 {
		t.Fatalf("conditional inner injection should help, got %.2fx", sp)
	}
}

func TestInjectOptionsDisableStaging(t *testing.T) {
	// BFS-shaped chain: staged injection adds more instructions than the
	// unstaged variant.
	build := func() (*ir.Program, ir.Array, ir.Array, ir.Array, ir.Array) {
		b := ir.NewBuilder("chain")
		idxArr := b.Alloc("idx", 4096, 8)
		midArr := b.Alloc("mid", 1<<16, 8)
		tArr := b.Alloc("T", 1<<17, 8)
		out := b.Alloc("out", 1, 8)
		zero := b.Const(0)
		b.Loop("i", zero, b.Const(4096), 1, func(i ir.Value) {
			a := b.LoadElem(idxArr, i)
			m := b.LoadElem(midArr, a)
			v := b.LoadElem(tArr, m)
			acc := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(acc, v))
		})
		return b.Finish(), idxArr, midArr, tArr, out
	}

	inject := func(o InjectOptions) int {
		p, _, _, _, _ := build()
		f := p.Func
		forest := ir.AnalyzeLoops(f)
		// Find the deepest indirect load (two loads in its chain).
		var target ir.Value = ir.NoValue
		for _, c := range Candidates(f, forest) {
			if s, ok := ExtractSlice(f, forest, c); ok && s.MainLoads >= 2 {
				target = c
			}
		}
		if target == ir.NoValue {
			t.Fatal("two-level indirect load not found")
		}
		s, _ := ExtractSlice(f, forest, target)
		n, err := InjectInnerOpt(f, forest, s, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		f.AssignPCs()
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		return n
	}

	staged := inject(InjectOptions{})
	unstaged := inject(InjectOptions{DisableStaging: true})
	if staged <= unstaged {
		t.Fatalf("staging should add instructions: staged %d vs unstaged %d", staged, unstaged)
	}
}

// buildCSRKernel is the BFS/SpMV shape: for u: for e in rowptr[u]..
// rowptr[u+1]: out ^= dist[col[e]]. The swept col[e] stage is affine in
// the inner induction variable, so the line-stride optimization applies.
func buildCSRKernel(n int64) *ir.Program {
	b := ir.NewBuilder("csr")
	rowptr := b.Alloc("rowptr", n+1, 8)
	col := b.Alloc("col", n*8, 8)
	dist := b.Alloc("dist", 1<<16, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	one := b.Const(1)
	b.Loop("u", zero, b.Const(n), 1, func(u ir.Value) {
		rs := b.LoadElem(rowptr, u)
		re := b.LoadElem(rowptr, b.Add(u, one))
		b.Loop("e", rs, re, 1, func(e ir.Value) {
			v := b.LoadElem(col, e)
			d := b.LoadElem(dist, v)
			acc := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Xor(acc, d))
		})
	})
	return b.Finish()
}

func TestInjectOptionsDisableLineStride(t *testing.T) {
	count := func(o InjectOptions) int {
		p := buildCSRKernel(512)
		f := p.Func
		forest := ir.AnalyzeLoops(f)
		s, _ := ExtractSlice(f, forest, findIndirectLoad(t, f))
		n, err := InjectOuterOpt(f, forest, s, 2, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		f.AssignPCs()
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	lineStride := count(InjectOptions{})
	perElement := count(InjectOptions{DisableLineStride: true})
	if perElement <= lineStride {
		t.Fatalf("per-element sweep should add instructions: %d vs %d", perElement, lineStride)
	}
}

func TestAffineStrideInPhi(t *testing.T) {
	b := ir.NewBuilder("stride")
	arr := b.Alloc("a", 128, 8)
	tArr := b.Alloc("t", 1024, 8)
	zero := b.Const(0)
	var affineAddr, indirectAddr, phi ir.Value
	b.Loop("i", zero, b.Const(128), 1, func(i ir.Value) {
		phi = i
		affineAddr = b.Index(arr, i) // base + i*8
		v := b.LoadElem(arr, i)
		indirectAddr = b.Index(tArr, v) // base + load*8: not affine in i
		_ = b.Load(indirectAddr, 8)
	})
	p := b.Finish()
	f := p.Func

	stride, ok := affineStrideInPhi(f, affineAddr, phi)
	if !ok || stride != 8 {
		t.Fatalf("affine stride = %d/%v, want 8/true", stride, ok)
	}
	if _, ok := affineStrideInPhi(f, indirectAddr, phi); ok {
		t.Fatal("load-dependent address must not be affine")
	}
}
