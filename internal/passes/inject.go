package passes

import (
	"fmt"

	"aptget/internal/ir"
)

// maxRecurrenceUnroll bounds how many times a non-affine induction update
// chain is replicated to advance the prefetch address (§3.5's arbitrary
// induction computation). Beyond this the instruction overhead outweighs
// the gain — visible in the paper's Figure 11 for RandomAccess.
const maxRecurrenceUnroll = 8

// injector holds the state of one prefetch-slice injection.
type injector struct {
	f      *ir.Func
	forest *ir.LoopForest
	idom   []ir.BlockID

	block *ir.Block
	pos   int // insertion index within block.Instrs

	stable   map[ir.Value]ir.Value // replacements/clones valid for the whole injection
	volatile map[ir.Value]ir.Value // per-sweep replacements/clones

	stableRoots   map[ir.Value]bool
	volatileRoots map[ir.Value]bool

	depAnyMemo map[ir.Value]int8
	depVolMemo map[ir.Value]int8

	consts map[int64]ir.Value

	injected int // instructions added
}

func newInjector(f *ir.Func, forest *ir.LoopForest, block *ir.Block, pos int) *injector {
	return &injector{
		f: f, forest: forest, idom: ir.Dominators(f),
		block: block, pos: pos,
		stable:        make(map[ir.Value]ir.Value),
		volatile:      make(map[ir.Value]ir.Value),
		stableRoots:   make(map[ir.Value]bool),
		volatileRoots: make(map[ir.Value]bool),
		depAnyMemo:    make(map[ir.Value]int8),
		depVolMemo:    make(map[ir.Value]int8),
		consts:        make(map[int64]ir.Value),
	}
}

// insert places an instruction at the cursor and advances it.
func (inj *injector) insert(ins ir.Instr) ir.Value {
	v := inj.f.InsertBefore(inj.block, inj.pos, ins)
	inj.pos++
	inj.injected++
	return v
}

// constVal returns an OpConst for c, hoisted into the entry block so it
// executes once (loop bodies stay tight, like LLVM constant materialization
// outside the loop).
func (inj *injector) constVal(c int64) ir.Value {
	if v, ok := inj.consts[c]; ok {
		return v
	}
	entry := inj.f.Blocks[inj.f.Entry]
	// Reuse an existing entry-block constant when present.
	for _, v := range entry.Instrs {
		ins := inj.f.Instr(v)
		if ins.Op == ir.OpConst && ins.Imm == c {
			inj.consts[c] = v
			return v
		}
	}
	pos := len(entry.Instrs)
	if t := entry.Terminator(inj.f); t != ir.NoValue {
		pos--
	}
	v := inj.f.InsertBefore(entry, pos, ir.Instr{Op: ir.OpConst, Imm: c, Name: "pfdist"})
	inj.injected++
	inj.consts[c] = v
	return v
}

// dep reports whether v transitively depends on any root in the set.
// Non-root phis are opaque (cycles must not be followed).
func (inj *injector) dep(v ir.Value, roots map[ir.Value]bool, memo map[ir.Value]int8) bool {
	if roots[v] {
		return true
	}
	if m := memo[v]; m != 0 {
		return m == 2
	}
	memo[v] = 1
	ins := inj.f.Instr(v)
	out := false
	if ins.Op != ir.OpPhi && ins.Op != ir.OpConst {
		for _, a := range ins.Args {
			if inj.dep(a, roots, memo) {
				out = true
				break
			}
		}
	}
	if out {
		memo[v] = 2
	} else {
		memo[v] = 3
	}
	return out
}

func (inj *injector) depAny(v ir.Value) bool {
	if inj.dep(v, inj.volatileRoots, inj.depVolMemo) {
		return true
	}
	return inj.dep(v, inj.stableRoots, inj.depAnyMemo)
}

func (inj *injector) depVolatile(v ir.Value) bool {
	return inj.dep(v, inj.volatileRoots, inj.depVolMemo)
}

// clone returns a value equivalent to v at the insertion point, with root
// phis substituted by their replacements. Values that do not depend on
// any root and already dominate the insertion point are referenced
// directly (the paper's pass likewise reuses outer-loop values as
// constants from the inner loop's perspective).
func (inj *injector) clone(v ir.Value) (ir.Value, error) {
	if r, ok := inj.volatile[v]; ok {
		return r, nil
	}
	if r, ok := inj.stable[v]; ok {
		return r, nil
	}
	ins := inj.f.Instr(v)
	switch ins.Op {
	case ir.OpConst:
		return v, nil
	case ir.OpPhi:
		if inj.stableRoots[v] || inj.volatileRoots[v] {
			return ir.NoValue, fmt.Errorf("passes: root phi v%d has no replacement", v)
		}
		// A phi of an enclosing loop: it dominates the insertion point.
		return v, nil
	}
	if !inj.depAny(v) {
		if dominatesValue(inj.f, inj.idom, v, inj.block.ID) {
			return v, nil
		}
	}
	newArgs := make([]ir.Value, len(ins.Args))
	for i, a := range ins.Args {
		c, err := inj.clone(a)
		if err != nil {
			return ir.NoValue, err
		}
		newArgs[i] = c
	}
	nv := inj.insert(ir.Instr{
		Op: ins.Op, Args: newArgs,
		Imm: ins.Imm, Pred: ins.Pred, Size: ins.Size,
		Name: suffixed(ins.Name),
	})
	if inj.depVolatile(v) {
		inj.volatile[v] = nv
	} else {
		inj.stable[v] = nv
	}
	return nv, nil
}

func suffixed(name string) string {
	if name == "" {
		return ""
	}
	return name + ".pf"
}

// dominatesValue reports whether the definition of v dominates block id.
// Same-block definitions count as dominating: slices only reference
// values defined before the insertion point (the load's address chain
// precedes the load; preheader values precede the terminator).
func dominatesValue(f *ir.Func, idom []ir.BlockID, v ir.Value, id ir.BlockID) bool {
	def := f.Instr(v).Block
	if def == id {
		return true
	}
	for cur := id; ; {
		if cur == def {
			return true
		}
		if idom[cur] == ir.NoBlock || idom[cur] == cur {
			return false
		}
		cur = idom[cur]
	}
}

// advancedPhi builds the replacement for an induction phi advanced by
// `distance` iterations: for affine IVs `phi + distance*step`, clamped to
// the loop bound when recognizable (the Listing 4 min() idiom); for
// non-affine recurrences the update chain unrolled min(distance, 8)
// times.
func (inj *injector) advancedPhi(phi ir.Value, distance int64) (ir.Value, error) {
	f, forest := inj.f, inj.forest
	if step, ok := affineStep(f, forest, phi); ok {
		ivd := inj.insert(ir.Instr{
			Op: ir.OpAdd, Args: []ir.Value{phi, inj.constVal(distance * step)},
			Name: suffixed(f.Instr(phi).Name),
		})
		bound, haveBound := loopBound(f, forest, phi)
		if !haveBound || step != 1 {
			return ivd, nil
		}
		// min(iv+d, bound-1): keep the prefetch address inside the
		// array, so a too-large distance degenerates into re-prefetching
		// the last element (the Table 1 Dist-1024 accuracy collapse).
		bm1 := inj.insert(ir.Instr{Op: ir.OpSub, Args: []ir.Value{bound, inj.constVal(1)}})
		cond := inj.insert(ir.Instr{Op: ir.OpCmp, Pred: ir.PredLT, Args: []ir.Value{ivd, bound}})
		return inj.insert(ir.Instr{Op: ir.OpSelect, Args: []ir.Value{cond, ivd, bm1}}), nil
	}

	// Non-affine recurrence: replicate the update chain.
	next, ok := phiBackEdge(f, forest, phi)
	if !ok {
		return ir.NoValue, fmt.Errorf("passes: phi v%d has no back-edge value", phi)
	}
	unroll := distance
	if unroll > maxRecurrenceUnroll {
		unroll = maxRecurrenceUnroll
	}
	cur := phi
	for u := int64(0); u < unroll; u++ {
		nv, err := inj.cloneUpdate(next, phi, cur)
		if err != nil {
			return ir.NoValue, err
		}
		cur = nv
	}
	return cur, nil
}

// cloneUpdate clones the pure-ALU chain computing `next` from `root`,
// substituting `cur` for the root. Loads in the update chain are
// rejected: replaying them would replay side-band state reads that may
// not be idempotent across iterations.
func (inj *injector) cloneUpdate(v, root, cur ir.Value) (ir.Value, error) {
	if v == root {
		return cur, nil
	}
	ins := inj.f.Instr(v)
	switch {
	case ins.Op == ir.OpConst:
		return v, nil
	case ins.Op == ir.OpPhi:
		return v, nil // enclosing-loop phi: dominates
	case ins.Op.IsBinary() || ins.Op == ir.OpCmp || ins.Op == ir.OpSelect:
	default:
		return ir.NoValue, fmt.Errorf("passes: unsupported op %s in induction update chain", ins.Op)
	}
	if !inj.dep(v, map[ir.Value]bool{root: true}, make(map[ir.Value]int8)) {
		if dominatesValue(inj.f, inj.idom, v, inj.block.ID) {
			return v, nil
		}
		return ir.NoValue, fmt.Errorf("passes: loop-local invariant v%d in update chain", v)
	}
	newArgs := make([]ir.Value, len(ins.Args))
	for i, a := range ins.Args {
		c, err := inj.cloneUpdate(a, root, cur)
		if err != nil {
			return ir.NoValue, err
		}
		newArgs[i] = c
	}
	return inj.insert(ir.Instr{
		Op: ins.Op, Args: newArgs,
		Imm: ins.Imm, Pred: ins.Pred, Size: ins.Size,
		Name: suffixed(ins.Name),
	}), nil
}

// InjectOptions toggles pass features for ablation studies (DESIGN.md
// §6): staged prefetching for deep indirection chains, and line-granular
// sweep stepping.
type InjectOptions struct {
	// DisableStaging emits only the final prefetch, leaving intermediate
	// slice loads unprefetched (the naive multi-level slice).
	DisableStaging bool
	// DisableLineStride sweeps the outer-site inner iterations
	// per element instead of per cache line.
	DisableLineStride bool
}

// maxStageLevel caps how deep the staged prefetching goes: loads more
// than this many indirections behind the target execute unprefetched
// (in practice they are sequential streams the hardware covers).
const maxStageLevel = 2

// stageInfo is one staged prefetch: the load whose address is prefetched
// and its indirection level behind the target (0 = the target itself).
// Following Ainsworth & Jones, a chain A[B[C[i]]] is covered by staged
// prefetches at look-ahead multiples of the distance: C's consumer at
// 3×D, B's at 2×D, A at D — so that when a shallower stage executes the
// deeper load as part of its address computation, the line was already
// prefetched D iterations earlier by the deeper stage.
type stageInfo struct {
	load  ir.Value
	level int
}

// stagesFor walks the target's address chain — continuing through the
// phis in `through`, which injection substitutes by their init chains —
// and returns the prefetch stages, deepest first. Stages whose own
// address chain contains no load are dropped: those addresses are affine
// streams the hardware stride prefetcher already covers.
func stagesFor(f *ir.Func, forest *ir.LoopForest, target ir.Value, through map[ir.Value]bool, o InjectOptions) []stageInfo {
	if o.DisableStaging {
		return []stageInfo{{load: target, level: 0}}
	}
	levels := make(map[ir.Value]int)
	var dfs func(v ir.Value, lvl int)
	dfs = func(v ir.Value, lvl int) {
		ins := f.Instr(v)
		switch {
		case ins.Op == ir.OpLoad:
			if old, ok := levels[v]; ok && old <= lvl {
				return
			}
			levels[v] = lvl
			dfs(ins.Args[0], lvl+1)
		case ins.Op == ir.OpPhi:
			if through[v] {
				if init, ok := phiInit(f, forest, v); ok {
					dfs(init, lvl)
				}
			}
		case ins.Op.IsBinary() || ins.Op == ir.OpCmp || ins.Op == ir.OpSelect:
			for _, a := range ins.Args {
				dfs(a, lvl)
			}
		}
	}
	dfs(f.Instr(target).Args[0], 1)

	stages := []stageInfo{{load: target, level: 0}}
	for v, lvl := range levels {
		if lvl > maxStageLevel {
			continue
		}
		if !addrChainHasLoad(f, forest, f.Instr(v).Args[0], through) {
			continue
		}
		stages = append(stages, stageInfo{load: v, level: lvl})
	}
	// Deepest first; ties by value for determinism.
	for i := 1; i < len(stages); i++ {
		for j := i; j > 0 && (stages[j].level > stages[j-1].level ||
			(stages[j].level == stages[j-1].level && stages[j].load < stages[j-1].load)); j-- {
			stages[j], stages[j-1] = stages[j-1], stages[j]
		}
	}
	return stages
}

// addrChainHasLoad reports whether the address chain contains a load
// (traversing through substituted phis).
func addrChainHasLoad(f *ir.Func, forest *ir.LoopForest, v ir.Value, through map[ir.Value]bool) bool {
	seen := make(map[ir.Value]bool)
	var dfs func(v ir.Value) bool
	dfs = func(v ir.Value) bool {
		if seen[v] {
			return false
		}
		seen[v] = true
		ins := f.Instr(v)
		switch {
		case ins.Op == ir.OpLoad:
			return true
		case ins.Op == ir.OpPhi:
			if through[v] {
				if init, ok := phiInit(f, forest, v); ok {
					return dfs(init)
				}
			}
			return false
		case ins.Op.IsBinary() || ins.Op == ir.OpCmp || ins.Op == ir.OpSelect:
			for _, a := range ins.Args {
				if dfs(a) {
					return true
				}
			}
		}
		return false
	}
	return dfs(v)
}

// reachesPhi reports whether the address chain reaches the phi directly
// (without init substitution) — used to decide whether an outer-site
// stage must be swept over the inner iterations.
func reachesPhi(f *ir.Func, v ir.Value, phi ir.Value) bool {
	seen := make(map[ir.Value]bool)
	var dfs func(v ir.Value) bool
	dfs = func(v ir.Value) bool {
		if v == phi {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		ins := f.Instr(v)
		if ins.Op == ir.OpPhi || ins.Op == ir.OpConst {
			return false
		}
		for _, a := range ins.Args {
			if dfs(a) {
				return true
			}
		}
		return false
	}
	return dfs(v)
}

// InjectInner inserts the prefetch slice immediately before the load,
// inside its innermost loop, with the induction variable advanced by
// `distance` iterations (the InjectPrefechesOnePhi path of Algorithm 2;
// Listing 4 shows the resulting IR for the microbenchmark). Indirection
// chains deeper than one level receive staged prefetches at distance
// multiples. Returns the number of instructions added.
func InjectInner(f *ir.Func, forest *ir.LoopForest, s *Slice, distance int64) (int, error) {
	return InjectInnerOpt(f, forest, s, distance, InjectOptions{})
}

// InjectInnerOpt is InjectInner with ablation options.
func InjectInnerOpt(f *ir.Func, forest *ir.LoopForest, s *Slice, distance int64, o InjectOptions) (int, error) {
	if distance < 1 {
		return 0, fmt.Errorf("passes: invalid distance %d", distance)
	}
	loadIns := f.Instr(s.Load)
	loop := forest.InnermostFor(loadIns.Block)
	if loop == nil {
		return 0, fmt.Errorf("passes: load v%d is not in a loop", s.Load)
	}
	phi, ok := s.phiOfLoop(f, loop)
	if !ok {
		return 0, fmt.Errorf("passes: load v%d does not depend on its loop's induction variable", s.Load)
	}
	block := f.Blocks[loadIns.Block]
	pos := indexOf(block.Instrs, s.Load)
	if pos < 0 {
		return 0, fmt.Errorf("passes: load v%d missing from its block", s.Load)
	}

	total := 0
	for _, st := range stagesFor(f, forest, s.Load, nil, o) {
		inj := newInjector(f, forest, block, pos)
		inj.stableRoots[phi] = true
		rep, err := inj.advancedPhi(phi, distance*int64(st.level+1))
		if err != nil {
			if st.level > 0 {
				continue
			}
			return total + inj.injected, err
		}
		inj.stable[phi] = rep
		addr, err := inj.clone(f.Instr(st.load).Args[0])
		if err != nil {
			if st.level > 0 {
				continue
			}
			return total + inj.injected, err
		}
		inj.insert(ir.Instr{Op: ir.OpPrefetch, Args: []ir.Value{addr}, Size: 8})
		pos = inj.pos
		total += inj.injected
	}
	return total, nil
}

// InjectOuter inserts the prefetch slice into the parent loop (in the
// inner loop's preheader block, which executes once per outer iteration),
// advancing the *outer* induction variable by `distance` and pinning the
// inner induction variable to its first `sweep` iterations (§3.3/§3.5:
// iv2 = 0 swept up to the LBR-measured average trip count). This is the
// InjectPrefechesMorePhis path of Algorithm 2.
func InjectOuter(f *ir.Func, forest *ir.LoopForest, s *Slice, distance int64, sweep int64) (int, error) {
	return InjectOuterOpt(f, forest, s, distance, sweep, InjectOptions{})
}

// InjectOuterOpt is InjectOuter with ablation options.
func InjectOuterOpt(f *ir.Func, forest *ir.LoopForest, s *Slice, distance int64, sweep int64, o InjectOptions) (int, error) {
	if distance < 1 {
		return 0, fmt.Errorf("passes: invalid distance %d", distance)
	}
	if sweep < 1 {
		sweep = 1
	}
	loadIns := f.Instr(s.Load)
	inner := forest.InnermostFor(loadIns.Block)
	if inner == nil || inner.Parent == nil {
		return 0, fmt.Errorf("passes: load v%d has no enclosing nested loop", s.Load)
	}
	outer := inner.Parent
	outerPhi, ok := s.phiOfLoop(f, outer)
	if !ok {
		return 0, fmt.Errorf("passes: load v%d does not depend on the outer induction variable", s.Load)
	}

	// The inner loop's preheader: the unique predecessor of the inner
	// header outside the inner loop. It runs once per outer iteration.
	var pre ir.BlockID = ir.NoBlock
	for _, p := range f.Preds(inner.Header) {
		if !inner.Blocks[p] {
			if pre != ir.NoBlock {
				return 0, fmt.Errorf("passes: inner loop has multiple preheaders")
			}
			pre = p
		}
	}
	if pre == ir.NoBlock {
		return 0, fmt.Errorf("passes: inner loop preheader not found")
	}
	block := f.Blocks[pre]
	pos := len(block.Instrs)
	if t := block.Terminator(f); t != ir.NoValue {
		pos--
	}

	innerPhi, hasInner := s.phiOfLoop(f, inner)
	through := map[ir.Value]bool{}
	if hasInner {
		through[innerPhi] = true
	}

	total := 0
	for _, st := range stagesFor(f, forest, s.Load, through, o) {
		n, err := injectOuterStage(f, forest, block, &pos, st, outerPhi, innerPhi, hasInner,
			distance, sweep, loadIns, o)
		total += n
		if err != nil {
			if st.level > 0 {
				continue
			}
			return total, err
		}
	}
	return total, nil
}

// injectOuterStage emits one staged prefetch at the outer site: the
// outer induction variable advanced by (level+1)×distance, and — when
// the stage's address depends on the inner induction variable — the
// inner phi substituted by its (cloned) init value swept over the first
// `sweep` inner iterations.
func injectOuterStage(f *ir.Func, forest *ir.LoopForest, block *ir.Block, pos *int,
	st stageInfo, outerPhi, innerPhi ir.Value, hasInner bool,
	distance, sweep int64, loadIns *ir.Instr, o InjectOptions) (int, error) {

	inj := newInjector(f, forest, block, *pos)
	inj.stableRoots[outerPhi] = true
	if hasInner {
		inj.volatileRoots[innerPhi] = true
	}

	outerRep, err := inj.advancedPhi(outerPhi, distance*int64(st.level+1))
	if err != nil {
		return inj.injected, err
	}
	inj.stable[outerPhi] = outerRep

	stAddr := f.Instr(st.load).Args[0]
	needSweep := hasInner && reachesPhi(f, stAddr, innerPhi)

	if !needSweep {
		if hasInner {
			// The chain may still traverse the inner phi via its init
			// substitution; map it to the cloned init (first iteration).
			init, ok := phiInit(f, forest, innerPhi)
			if ok {
				iv, err := inj.clone(init)
				if err != nil {
					return inj.injected, err
				}
				inj.volatile[innerPhi] = iv
			}
		}
		addr, err := inj.clone(stAddr)
		if err != nil {
			return inj.injected, err
		}
		inj.insert(ir.Instr{Op: ir.OpPrefetch, Args: []ir.Value{addr}, Size: 8})
		*pos = inj.pos
		return inj.injected, nil
	}

	// Swept stage: inner induction values are the inner phi's init value
	// (cloned under the advanced outer IV — e.g. rowptr[u+d] for CSR
	// kernels) advanced across the first `sweep` inner iterations. When
	// the stage address is affine in the inner phi, one prefetch covers
	// a whole cache line of elements, so the sweep steps by line-sized
	// strides (prefetching per line, as the real pass does).
	init, ok := phiInit(f, forest, innerPhi)
	if !ok {
		return inj.injected, fmt.Errorf("passes: inner phi v%d has no init value", innerPhi)
	}
	cur, err := inj.clone(init)
	if err != nil {
		return inj.injected, err
	}
	step, affine := affineStep(f, forest, innerPhi)
	jStep := int64(1)
	if stride, ok := affineStrideInPhi(f, stAddr, innerPhi); !o.DisableLineStride && ok && stride > 0 && stride < 64 {
		jStep = 64 / stride
		if jStep < 1 {
			jStep = 1
		}
	}
	// The swept range rarely starts line-aligned, so cover one extra
	// stride beyond the nominal sweep to catch the crossing line.
	limit := sweep
	if jStep > 1 {
		limit = sweep + jStep - 1
	}
	for j := int64(0); j < limit; j += jStep {
		if j > 0 {
			if affine {
				cur = inj.insert(ir.Instr{
					Op: ir.OpAdd, Args: []ir.Value{cur, inj.constVal(step * jStep)},
					Name: suffixed(f.Instr(innerPhi).Name),
				})
			} else {
				next, ok := phiBackEdge(f, forest, innerPhi)
				if !ok {
					break
				}
				for k := int64(0); k < jStep; k++ {
					cur, err = inj.cloneUpdate(next, innerPhi, cur)
					if err != nil {
						return inj.injected, err
					}
				}
			}
		}
		// Reset per-sweep clones; the inner phi now maps to this
		// iteration's induction value.
		inj.volatile = map[ir.Value]ir.Value{innerPhi: cur}
		addr, err := inj.clone(stAddr)
		if err != nil {
			return inj.injected, err
		}
		inj.insert(ir.Instr{Op: ir.OpPrefetch, Args: []ir.Value{addr}, Size: 8})
	}
	*pos = inj.pos
	return inj.injected, nil
}

// affineStrideInPhi computes the byte stride of addr per unit of phi when
// addr is affine in phi (phi reached only through +, −, <<const, ×const
// chains, no loads). Returns ok=false otherwise.
func affineStrideInPhi(f *ir.Func, addr, phi ir.Value) (int64, bool) {
	var walk func(v ir.Value) (int64, bool, bool) // (stride, containsPhi, affine)
	walk = func(v ir.Value) (int64, bool, bool) {
		if v == phi {
			return 1, true, true
		}
		ins := f.Instr(v)
		switch ins.Op {
		case ir.OpConst:
			return 0, false, true
		case ir.OpPhi, ir.OpLoad:
			// Opaque: fine as long as it doesn't hide the phi. Loads of
			// the phi's function are not affine.
			if ins.Op == ir.OpLoad && reachesPhi(f, ins.Args[0], phi) {
				return 0, false, false
			}
			return 0, false, true
		case ir.OpAdd, ir.OpSub:
			s0, c0, ok0 := walk(ins.Args[0])
			s1, c1, ok1 := walk(ins.Args[1])
			if !ok0 || !ok1 {
				return 0, false, false
			}
			if ins.Op == ir.OpSub {
				s1 = -s1
			}
			return s0 + s1, c0 || c1, true
		case ir.OpShl:
			s0, c0, ok0 := walk(ins.Args[0])
			sh := f.Instr(ins.Args[1])
			if !ok0 || sh.Op != ir.OpConst {
				return 0, false, !c0
			}
			return s0 << uint(sh.Imm&63), c0, true
		case ir.OpMul:
			s0, c0, ok0 := walk(ins.Args[0])
			s1, c1, ok1 := walk(ins.Args[1])
			switch {
			case !ok0 || !ok1 || (c0 && c1):
				return 0, false, false
			case c0 && f.Instr(ins.Args[1]).Op == ir.OpConst:
				return s0 * f.Instr(ins.Args[1]).Imm, true, true
			case c1 && f.Instr(ins.Args[0]).Op == ir.OpConst:
				return s1 * f.Instr(ins.Args[0]).Imm, true, true
			case !c0 && !c1:
				return 0, false, true
			default:
				return 0, false, false
			}
		default:
			// Any other op on the phi path breaks affinity.
			s0 := false
			for _, a := range ins.Args {
				if reachesPhi(f, a, phi) || a == phi {
					s0 = true
				}
			}
			return 0, false, !s0
		}
	}
	stride, containsPhi, ok := walk(addr)
	if !ok || !containsPhi {
		return 0, false
	}
	if stride < 0 {
		stride = -stride
	}
	return stride, stride != 0
}

func indexOf(list []ir.Value, v ir.Value) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}
