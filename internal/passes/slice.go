// Package passes implements the compiler side of the paper: load-slice
// extraction by backward data-dependence search (Ainsworth & Jones's
// SearchAlgorithm, extended across nested loops per §3.5), prefetch-slice
// injection into the inner or outer loop, the static Ainsworth & Jones
// baseline pass, and the profile-guided APT-GET pass that consumes
// analysis plans.
package passes

import (
	"fmt"

	"aptget/internal/ir"
)

// Slice is the backward data-dependence slice of a load: every
// instruction its address computation depends on, terminated at loop
// induction phi nodes and constants.
type Slice struct {
	Load   ir.Value   // the (delinquent) load
	Instrs []ir.Value // dependence set, unordered (cloning re-walks the graph)
	Phis   []ir.Value // loop-header phis the address depends on, innermost loop first

	// LoadsInChain counts loads in the address computation including the
	// nested-loop init-chain extension.
	LoadsInChain int
	// MainLoads counts loads in the *direct* address chain only (before
	// the §3.5 extension): ≥1 marks the classic indirect pattern A[B[i]]
	// that hardware prefetchers cannot cover.
	MainLoads int
	// RecurrenceRoot is true when at least one root phi is a non-affine
	// ALU recurrence (e.g. the xorshift state of RandomAccess or i*=2):
	// the §3.5 non-canonical induction case.
	RecurrenceRoot bool
}

// ExtractSlice walks the address chain of load backwards (depth-first,
// tracking every encountered instruction) until all roots are loop phis
// or constants. It fails (ok=false) when the chain escapes the supported
// shape — e.g. depends on a non-loop phi.
func ExtractSlice(f *ir.Func, forest *ir.LoopForest, load ir.Value) (*Slice, bool) {
	ins := f.Instr(load)
	if ins.Op != ir.OpLoad {
		return nil, false
	}
	s := &Slice{Load: load}
	seen := make(map[ir.Value]bool)
	ok := s.walk(f, forest, ins.Args[0], seen)
	if !ok || len(s.Phis) == 0 {
		return nil, false
	}
	s.MainLoads = s.LoadsInChain

	// §3.5 nested-loop extension: after the first induction variable is
	// found, keep searching backwards through each phi's *init* chain
	// (the value flowing in from the preheader). For kernels like BFS's
	// CSR edge loop — e ∈ [rowptr[cur[fi]], …) — this is where the outer
	// loop's induction variable lives, and outer-loop injection needs it
	// in the slice. The extension is best-effort: a failure only means
	// the outer site is unavailable, not that the slice is invalid.
	for i := 0; i < len(s.Phis); i++ {
		init, ok := phiInit(f, forest, s.Phis[i])
		if !ok {
			continue
		}
		tmp := &Slice{Load: load}
		tmpSeen := make(map[ir.Value]bool, len(seen))
		for k, v := range seen {
			tmpSeen[k] = v
		}
		if !tmp.walk(f, forest, init, tmpSeen) {
			continue
		}
		// Adopt the extension.
		seen = tmpSeen
		s.Instrs = append(s.Instrs, tmp.Instrs...)
		s.LoadsInChain += tmp.LoadsInChain
		s.Phis = append(s.Phis, tmp.Phis...)
	}

	sortPhisInnermostFirst(f, forest, s.Phis)
	for _, phi := range s.Phis {
		if !isAffine(f, forest, phi) {
			s.RecurrenceRoot = true
		}
	}
	return s, true
}

func (s *Slice) walk(f *ir.Func, forest *ir.LoopForest, v ir.Value, seen map[ir.Value]bool) bool {
	if seen[v] {
		return true
	}
	seen[v] = true
	ins := f.Instr(v)
	switch ins.Op {
	case ir.OpConst:
		return true
	case ir.OpPhi:
		loop := forest.ByHead[ins.Block]
		if loop == nil {
			return false // data-flow merge phi: unsupported shape
		}
		s.Phis = append(s.Phis, v)
		return true
	case ir.OpLoad:
		s.Instrs = append(s.Instrs, v)
		s.LoadsInChain++
		return s.walk(f, forest, ins.Args[0], seen)
	default:
		if !(ins.Op.IsBinary() || ins.Op == ir.OpCmp || ins.Op == ir.OpSelect) {
			return false
		}
		s.Instrs = append(s.Instrs, v)
		for _, a := range ins.Args {
			if !s.walk(f, forest, a, seen) {
				return false
			}
		}
		return true
	}
}

func sortPhisInnermostFirst(f *ir.Func, forest *ir.LoopForest, phis []ir.Value) {
	depth := func(v ir.Value) int {
		l := forest.ByHead[f.Instr(v).Block]
		if l == nil {
			return 0
		}
		return l.Depth
	}
	// Insertion sort by descending depth (innermost first).
	for i := 1; i < len(phis); i++ {
		for j := i; j > 0 && depth(phis[j]) > depth(phis[j-1]); j-- {
			phis[j], phis[j-1] = phis[j-1], phis[j]
		}
	}
}

// phiBackEdge returns the back-edge incoming value of a header phi.
func phiBackEdge(f *ir.Func, forest *ir.LoopForest, phi ir.Value) (ir.Value, bool) {
	ins := f.Instr(phi)
	loop := forest.ByHead[ins.Block]
	if loop == nil {
		return ir.NoValue, false
	}
	for i, pred := range ins.PhiPreds {
		if loop.Blocks[pred] {
			return ins.Args[i], true
		}
	}
	return ir.NoValue, false
}

// phiInit returns the entry-edge incoming value of a header phi.
func phiInit(f *ir.Func, forest *ir.LoopForest, phi ir.Value) (ir.Value, bool) {
	ins := f.Instr(phi)
	loop := forest.ByHead[ins.Block]
	if loop == nil {
		return ir.NoValue, false
	}
	for i, pred := range ins.PhiPreds {
		if !loop.Blocks[pred] {
			return ins.Args[i], true
		}
	}
	return ir.NoValue, false
}

// affineStep returns the constant per-iteration step of a canonical
// induction phi (back edge = phi + C), or ok=false for non-affine
// recurrences.
func affineStep(f *ir.Func, forest *ir.LoopForest, phi ir.Value) (int64, bool) {
	next, ok := phiBackEdge(f, forest, phi)
	if !ok {
		return 0, false
	}
	ins := f.Instr(next)
	if ins.Op != ir.OpAdd {
		return 0, false
	}
	a, b := ins.Args[0], ins.Args[1]
	if a == phi && f.Instr(b).Op == ir.OpConst {
		return f.Instr(b).Imm, true
	}
	if b == phi && f.Instr(a).Op == ir.OpConst {
		return f.Instr(a).Imm, true
	}
	return 0, false
}

func isAffine(f *ir.Func, forest *ir.LoopForest, phi ir.Value) bool {
	_, ok := affineStep(f, forest, phi)
	return ok
}

// loopBound recognizes the canonical bottom-test `br (next < bound)` /
// `br (iv < bound)` of the phi's loop and returns the bound value when it
// is defined outside the loop (so it dominates any insertion point in the
// loop). Used for the Listing 4 clamp.
func loopBound(f *ir.Func, forest *ir.LoopForest, phi ir.Value) (ir.Value, bool) {
	ins := f.Instr(phi)
	loop := forest.ByHead[ins.Block]
	if loop == nil {
		return ir.NoValue, false
	}
	next, _ := phiBackEdge(f, forest, phi)
	for _, latch := range loop.Latches {
		term := f.Blocks[latch].Terminator(f)
		if term == ir.NoValue {
			continue
		}
		t := f.Instr(term)
		if t.Op != ir.OpBr {
			continue
		}
		cond := f.Instr(t.Args[0])
		if cond.Op != ir.OpCmp || (cond.Pred != ir.PredLT && cond.Pred != ir.PredLE) {
			continue
		}
		lhs, rhs := cond.Args[0], cond.Args[1]
		if lhs != next && lhs != phi {
			continue
		}
		if loop.Blocks[f.Instr(rhs).Block] {
			continue // bound computed inside the loop: not loop-invariant
		}
		return rhs, true
	}
	return ir.NoValue, false
}

// innermostLoopOf returns the innermost loop containing the instruction.
func innermostLoopOf(f *ir.Func, forest *ir.LoopForest, v ir.Value) *ir.Loop {
	return forest.InnermostFor(f.Instr(v).Block)
}

// phiOfLoop returns the slice phi belonging to the given loop header.
func (s *Slice) phiOfLoop(f *ir.Func, loop *ir.Loop) (ir.Value, bool) {
	for _, phi := range s.Phis {
		if f.Instr(phi).Block == loop.Header {
			return phi, true
		}
	}
	return ir.NoValue, false
}

// Candidates returns every load inside a loop whose slice marks it as an
// irregular pattern the hardware prefetchers cannot cover: an indirect
// access (a load feeds the address) or a non-affine recurrence address.
// This is the Ainsworth & Jones static detection scheme.
func Candidates(f *ir.Func, forest *ir.LoopForest) []ir.Value {
	var out []ir.Value
	for _, b := range f.Blocks {
		if forest.InnermostFor(b.ID) == nil {
			continue
		}
		for _, v := range b.Instrs {
			if f.Instrs[v].Op != ir.OpLoad {
				continue
			}
			s, ok := ExtractSlice(f, forest, v)
			if !ok {
				continue
			}
			if s.LoadsInChain >= 1 || s.RecurrenceRoot {
				out = append(out, v)
			}
		}
	}
	return out
}

// String summarizes a slice (debugging, CLI -dump).
func (s *Slice) String() string {
	return fmt.Sprintf("slice(load=v%d, %d instrs, %d loads, %d phis, recurrence=%v)",
		s.Load, len(s.Instrs), s.LoadsInChain, len(s.Phis), s.RecurrenceRoot)
}
