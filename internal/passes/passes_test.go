package passes

import (
	"math/rand"
	"testing"

	"aptget/internal/analysis"
	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/profile"
)

// buildNestedIndirect builds the paper's microbenchmark skeleton:
//
//	for i in [0,outer): for j in [0,inner): out += T[B[i*inner+j]]
func buildNestedIndirect(outer, inner, table int64) (*ir.Program, ir.Array, ir.Array, ir.Array) {
	b := ir.NewBuilder("micro")
	bArr := b.Alloc("B", outer*inner, 8)
	tArr := b.Alloc("T", table, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(outer), 1, func(i ir.Value) {
		base := b.Mul(i, b.Const(inner))
		b.Loop("j", zero, b.Const(inner), 1, func(j ir.Value) {
			idx := b.LoadElem(bArr, b.Add(base, j))
			v := b.LoadElem(tArr, idx)
			acc := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(acc, v))
		})
	})
	return b.Finish(), bArr, tArr, out
}

func initNested(bArr, tArr ir.Array, seed int64) func(*mem.Arena) {
	return func(a *mem.Arena) {
		rng := rand.New(rand.NewSource(seed))
		for i := int64(0); i < bArr.Count; i++ {
			a.Write(bArr.Addr(i), rng.Int63n(tArr.Count), 8)
		}
		for i := int64(0); i < tArr.Count; i++ {
			a.Write(tArr.Addr(i), i*3%101, 8)
		}
	}
}

// findIndirectLoad returns the T load (the load whose slice contains
// another load).
func findIndirectLoad(t *testing.T, f *ir.Func) ir.Value {
	t.Helper()
	forest := ir.AnalyzeLoops(f)
	for vi := range f.Instrs {
		v := ir.Value(vi)
		if f.Instrs[v].Op != ir.OpLoad {
			continue
		}
		if s, ok := ExtractSlice(f, forest, v); ok && s.LoadsInChain >= 1 {
			return v
		}
	}
	t.Fatal("indirect load not found")
	return ir.NoValue
}

func run(t *testing.T, p *ir.Program, init func(*mem.Arena)) *cpu.Result {
	t.Helper()
	res, err := cpu.Run(p, mem.ConfigScaled(), cpu.Options{InitMem: init})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExtractSliceShape(t *testing.T) {
	p, _, _, _ := buildNestedIndirect(4, 8, 1024)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	s, ok := ExtractSlice(f, forest, load)
	if !ok {
		t.Fatal("slice extraction failed")
	}
	if s.LoadsInChain != 1 {
		t.Fatalf("loads in chain = %d, want 1", s.LoadsInChain)
	}
	if s.RecurrenceRoot {
		t.Fatal("affine IVs misclassified as recurrence")
	}
	if len(s.Phis) != 2 {
		t.Fatalf("phis = %d, want 2 (inner+outer)", len(s.Phis))
	}
	// Innermost first: the first phi must be named j.
	if f.Instr(s.Phis[0]).Name != "j" || f.Instr(s.Phis[1]).Name != "i" {
		t.Fatalf("phi order wrong: %q, %q",
			f.Instr(s.Phis[0]).Name, f.Instr(s.Phis[1]).Name)
	}
}

func TestCandidatesFindsOnlyIndirect(t *testing.T) {
	p, _, _, _ := buildNestedIndirect(4, 8, 1024)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	cands := Candidates(f, forest)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1 (only the T load)", len(cands))
	}
	s, _ := ExtractSlice(f, forest, cands[0])
	if s.LoadsInChain != 1 {
		t.Fatal("candidate should be the indirect load")
	}
}

func TestInjectInnerPreservesSemanticsAndSpeedsUp(t *testing.T) {
	const outer, inner, table = 16, 512, 1 << 18
	base, bA, tA, outA := buildNestedIndirect(outer, inner, table)
	resBase := run(t, base, initNested(bA, tA, 5))

	p2, bB, tB, outB := buildNestedIndirect(outer, inner, table)
	f := p2.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	s, _ := ExtractSlice(f, forest, load)
	n, err := InjectInner(f, forest, s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no instructions injected")
	}
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		t.Fatalf("transformed IR invalid: %v\n%s", err, f)
	}
	resPF := run(t, p2, initNested(bB, tB, 5))

	if a, b := resBase.Hier.Arena.Read(outA.Addr(0), 8), resPF.Hier.Arena.Read(outB.Addr(0), 8); a != b {
		t.Fatalf("semantics changed: %d vs %d", a, b)
	}
	if resPF.Counters.SWPrefetches == 0 {
		t.Fatal("no prefetches executed")
	}
	speedup := float64(resBase.Counters.Cycles) / float64(resPF.Counters.Cycles)
	if speedup < 1.5 {
		t.Fatalf("inner injection should speed up the kernel, got %.2fx", speedup)
	}
}

func TestInjectInnerClampStopsOutOfRange(t *testing.T) {
	// Distance far beyond the trip count: the Listing 4 clamp pins the
	// prefetch to the last element, so prefetch-flavoured offcore
	// requests collapse (Table 1's Dist-1024 row).
	const outer, inner, table = 16, 64, 1 << 18
	p, bA, tA, _ := buildNestedIndirect(outer, inner, table)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	s, _ := ExtractSlice(f, forest, load)
	if _, err := InjectInner(f, forest, s, 1024); err != nil {
		t.Fatal(err)
	}
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	res := run(t, p, initNested(bA, tA, 6))
	acc := res.Counters.PrefetchAccuracy()
	if acc > 0.3 {
		t.Fatalf("overshooting distance should collapse prefetch share of offcore, got %.2f", acc)
	}
}

func TestInjectOuterSmallTripBeatsInner(t *testing.T) {
	const outer, inner, table = 8192, 4, 1 << 18

	base, bA, tA, outA := buildNestedIndirect(outer, inner, table)
	resBase := run(t, base, initNested(bA, tA, 7))
	want := resBase.Hier.Arena.Read(outA.Addr(0), 8)

	// Inner injection at distance 4 (≈trip count: almost no coverage).
	pIn, bB, tB, outB := buildNestedIndirect(outer, inner, table)
	{
		f := pIn.Func
		forest := ir.AnalyzeLoops(f)
		s, _ := ExtractSlice(f, forest, findIndirectLoad(t, f))
		if _, err := InjectInner(f, forest, s, 4); err != nil {
			t.Fatal(err)
		}
		f.AssignPCs()
	}
	resIn := run(t, pIn, initNested(bB, tB, 7))
	if got := resIn.Hier.Arena.Read(outB.Addr(0), 8); got != want {
		t.Fatalf("inner injection changed semantics: %d vs %d", got, want)
	}

	// Outer injection, distance 4, sweep = trip count.
	pOut, bC, tC, outC := buildNestedIndirect(outer, inner, table)
	{
		f := pOut.Func
		forest := ir.AnalyzeLoops(f)
		s, _ := ExtractSlice(f, forest, findIndirectLoad(t, f))
		n, err := InjectOuter(f, forest, s, 4, inner)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("outer injection added nothing")
		}
		f.AssignPCs()
		if err := f.Validate(); err != nil {
			t.Fatalf("outer-injected IR invalid: %v\n%s", err, f)
		}
	}
	resOut := run(t, pOut, initNested(bC, tC, 7))
	if got := resOut.Hier.Arena.Read(outC.Addr(0), 8); got != want {
		t.Fatalf("outer injection changed semantics: %d vs %d", got, want)
	}

	spIn := float64(resBase.Counters.Cycles) / float64(resIn.Counters.Cycles)
	spOut := float64(resBase.Counters.Cycles) / float64(resOut.Counters.Cycles)
	if spOut <= spIn {
		t.Fatalf("outer injection should beat inner for trip count 4: inner %.2fx outer %.2fx", spIn, spOut)
	}
	if spOut < 1.2 {
		t.Fatalf("outer injection should provide real speedup, got %.2fx", spOut)
	}
}

// buildRecurrenceBounded builds a RandomAccess-style kernel where the
// load address is a xorshift recurrence of the loop-carried induction
// value (the §3.5 non-canonical induction case). The iteration count is
// carried in memory; the recurrence state IS the induction phi.
func buildRecurrenceBounded(iters int64, table int64) (*ir.Program, ir.Array, ir.Array, ir.Array) {
	b := ir.NewBuilder("randacc")
	tArr := b.Alloc("T", table, 8)
	cnt := b.Alloc("cnt", 1, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	mask := b.Const(table - 1)
	update := func(s ir.Value) ir.Value {
		x := b.Xor(s, b.Shl(s, b.Const(13)))
		x = b.Xor(x, b.Shr(x, b.Const(17)))
		x = b.Xor(x, b.Shl(x, b.Const(5)))
		return b.And(x, mask)
	}
	b.LoopCustom("s", b.Const(88172645463325252%table),
		update,
		func(next ir.Value) ir.Value {
			c := b.LoadElem(cnt, zero)
			c1 := b.Add(c, b.Const(1))
			b.StoreElem(cnt, zero, c1)
			return b.Cmp(ir.PredLT, c1, b.Const(iters))
		},
		nil,
		func(s ir.Value) {
			v := b.LoadElem(tArr, s)
			acc := b.LoadElem(out, zero)
			b.StoreElem(out, zero, b.Add(acc, v))
		})
	return b.Finish(), tArr, cnt, out
}

func initTable(tArr ir.Array) func(*mem.Arena) {
	return func(a *mem.Arena) {
		for i := int64(0); i < tArr.Count; i++ {
			a.Write(tArr.Addr(i), i%13, 8)
		}
	}
}

func TestRecurrenceSliceDetected(t *testing.T) {
	p, _, _, _ := buildRecurrenceBounded(64, 1<<16)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	cands := Candidates(f, forest)
	if len(cands) == 0 {
		t.Fatal("recurrence-addressed load not detected as candidate")
	}
	var found bool
	for _, c := range cands {
		if s, ok := ExtractSlice(f, forest, c); ok && s.RecurrenceRoot {
			found = true
		}
	}
	if !found {
		t.Fatal("no candidate flagged as recurrence-rooted")
	}
}

func TestInjectInnerRecurrenceUnroll(t *testing.T) {
	const iters, table = 20000, 1 << 18
	base, tA, _, outA := buildRecurrenceBounded(iters, table)
	resBase := run(t, base, initTable(tA))
	want := resBase.Hier.Arena.Read(outA.Addr(0), 8)

	p2, tB, _, outB := buildRecurrenceBounded(iters, table)
	f := p2.Func
	forest := ir.AnalyzeLoops(f)
	var load ir.Value = ir.NoValue
	for _, c := range Candidates(f, forest) {
		if s, ok := ExtractSlice(f, forest, c); ok && s.RecurrenceRoot {
			load = c
		}
	}
	if load == ir.NoValue {
		t.Fatal("no recurrence load")
	}
	s, _ := ExtractSlice(f, forest, load)
	if _, err := InjectInner(f, forest, s, 4); err != nil {
		t.Fatal(err)
	}
	f.AssignPCs()
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid IR after recurrence unroll: %v", err)
	}
	resPF := run(t, p2, initTable(tB))
	if got := resPF.Hier.Arena.Read(outB.Addr(0), 8); got != want {
		t.Fatalf("recurrence injection changed semantics: %d vs %d", got, want)
	}
	if resPF.Counters.SWPrefetches == 0 {
		t.Fatal("no prefetches")
	}
	speedup := float64(resBase.Counters.Cycles) / float64(resPF.Counters.Cycles)
	if speedup < 1.2 {
		t.Fatalf("unrolled recurrence prefetch should help, got %.2fx", speedup)
	}
}

func TestAinsworthJonesEndToEnd(t *testing.T) {
	const outer, inner, table = 16, 512, 1 << 18
	base, bA, tA, outA := buildNestedIndirect(outer, inner, table)
	resBase := run(t, base, initNested(bA, tA, 9))
	want := resBase.Hier.Arena.Read(outA.Addr(0), 8)

	p2, bB, tB, outB := buildNestedIndirect(outer, inner, table)
	rep, err := AinsworthJones(p2, StaticOptions{Distance: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 1 || rep.Candidates != 1 {
		t.Fatalf("report: %s", rep)
	}
	res := run(t, p2, initNested(bB, tB, 9))
	if got := res.Hier.Arena.Read(outB.Addr(0), 8); got != want {
		t.Fatalf("A&J changed semantics: %d vs %d", got, want)
	}
	if float64(resBase.Counters.Cycles)/float64(res.Counters.Cycles) < 1.3 {
		t.Fatal("A&J with a good static distance should speed up the kernel")
	}
}

func TestAptGetEndToEndPipeline(t *testing.T) {
	const outer, inner, table = 8192, 4, 1 << 18
	build := func() (*ir.Program, ir.Array, ir.Array, ir.Array) {
		return buildNestedIndirect(outer, inner, table)
	}

	// Profile the baseline build.
	pProf, bA, tA, _ := build()
	prof, err := profile.Collect(pProf, mem.ConfigScaled(), initNested(bA, tA, 11),
		profile.Options{SamplePeriod: 20_000, PEBSPeriod: 7})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := analysis.Analyze(pProf, prof, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans from profile")
	}
	if plans[0].Site != analysis.SiteOuter {
		t.Fatalf("trip-4 kernel should select outer site, got %v", plans[0].Site)
	}

	// Baseline run.
	pBase, bB, tB, outB := build()
	resBase := run(t, pBase, initNested(bB, tB, 11))
	want := resBase.Hier.Arena.Read(outB.Addr(0), 8)

	// Transformed run. Plans carry Values valid for an identically-built
	// program; rebuild and map by PC.
	pOpt, bC, tC, outC := build()
	rep, err := AptGet(pOpt, plans, AptGetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected == 0 {
		t.Fatalf("nothing injected: %s", rep)
	}
	resOpt := run(t, pOpt, initNested(bC, tC, 11))
	if got := resOpt.Hier.Arena.Read(outC.Addr(0), 8); got != want {
		t.Fatalf("APT-GET changed semantics: %d vs %d", got, want)
	}
	speedup := float64(resBase.Counters.Cycles) / float64(resOpt.Counters.Cycles)
	if speedup < 1.2 {
		t.Fatalf("APT-GET should speed up the trip-4 kernel, got %.2fx", speedup)
	}
}

func TestInjectInnerErrors(t *testing.T) {
	p, _, _, _ := buildNestedIndirect(4, 8, 1024)
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	s, _ := ExtractSlice(f, forest, load)
	if _, err := InjectInner(f, forest, s, 0); err == nil {
		t.Fatal("distance 0 must error")
	}
	if _, err := InjectOuter(f, forest, s, 0, 1); err == nil {
		t.Fatal("outer distance 0 must error")
	}
}

func TestInjectOuterRequiresNestedLoop(t *testing.T) {
	// Single loop: outer injection must fail cleanly.
	b := ir.NewBuilder("flat")
	bArr := b.Alloc("B", 64, 8)
	tArr := b.Alloc("T", 1024, 8)
	out := b.Alloc("out", 1, 8)
	zero := b.Const(0)
	b.Loop("i", zero, b.Const(64), 1, func(i ir.Value) {
		idx := b.LoadElem(bArr, i)
		b.StoreElem(out, zero, b.LoadElem(tArr, idx))
	})
	p := b.Finish()
	f := p.Func
	forest := ir.AnalyzeLoops(f)
	load := findIndirectLoad(t, f)
	s, _ := ExtractSlice(f, forest, load)
	if _, err := InjectOuter(f, forest, s, 4, 2); err == nil {
		t.Fatal("outer injection without a parent loop must error")
	}
}
