package passes_test

import (
	"testing"

	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/mem"
	"aptget/internal/passes"
	"aptget/internal/testkit"
)

// FuzzInject: for any generated program (all five loop shapes) and any
// distance, prefetch injection must keep the IR structurally valid and
// must not change program semantics — prefetches are hints, so the
// injected program's output checksum must equal the baseline's. A
// refused injection must also leave the IR valid.
func FuzzInject(f *testing.F) {
	f.Add(uint64(1), int64(7), false)
	f.Add(uint64(4), int64(300), true)
	f.Add(uint64(23), int64(-9), true)
	f.Add(uint64(57), int64(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, distance int64, outer bool) {
		distance = ((distance % 512) + 512) % 512
		if distance == 0 {
			distance = 1
		}
		g := testkit.Program(testkit.NewRNG(seed))
		base, err := cpu.Run(g.P, mem.ConfigTiny(), cpu.Options{InitMem: g.Init})
		if err != nil {
			t.Fatalf("seed %d (%s): baseline run: %v", seed, g.Shape, err)
		}
		baseSum := base.Hier.Arena.Read(g.Out.Addr(0), 8)

		forest := ir.AnalyzeLoops(g.P.Func)
		s, ok := passes.ExtractSlice(g.P.Func, forest, g.Load)
		if !ok {
			return // chain escapes the supported shape — nothing to inject
		}
		var injected int
		injectErr := testkit.NoPanic(func() {
			if outer {
				injected, err = passes.InjectOuter(g.P.Func, forest, s, distance, 4)
			} else {
				injected, err = passes.InjectInner(g.P.Func, forest, s, distance)
			}
		})
		if injectErr != nil {
			t.Fatalf("seed %d (%s): inject panicked: %v", seed, g.Shape, injectErr)
		}
		// Refused or not, the IR must still validate.
		if verr := testkit.CheckProgram(g.P); verr != nil {
			t.Fatalf("seed %d (%s): IR invalid after inject (err=%v): %v", seed, g.Shape, err, verr)
		}
		if err != nil || injected == 0 {
			return
		}
		inj, runErr := cpu.Run(g.P, mem.ConfigTiny(), cpu.Options{InitMem: g.Init})
		if runErr != nil {
			t.Fatalf("seed %d (%s): injected run (distance %d, outer=%v): %v",
				seed, g.Shape, distance, outer, runErr)
		}
		if injSum := inj.Hier.Arena.Read(g.Out.Addr(0), 8); injSum != baseSum {
			t.Fatalf("seed %d (%s): injection changed semantics: checksum %d -> %d (distance %d, outer=%v)",
				seed, g.Shape, baseSum, injSum, distance, outer)
		}
	})
}
