// Package wire is the serving subsystem's versioned, deterministic
// serialization of profiles and prefetch plans. A profile on the wire is
// what the paper's collection step produces — PEBS delinquent-load
// samples, LBR snapshots, and the loop structure of the profiled binary —
// and a plan set is what the analytical model derives from it (site,
// distance, Equation 1/2 provenance).
//
// Two properties carry the whole design:
//
//   - Determinism: EncodeProfile canonicalizes before writing (loads in
//     delinquency order, snapshots in cycle order), so the same logical
//     profile encodes to the same bytes regardless of how the caller
//     ordered its slices. decode(encode(x)) == canonical(x), and
//     encode(decode(b)) == b for any b produced by Encode*.
//   - Content addressing: Fingerprint is a stable hash over the canonical
//     bytes, used as the plan-cache key; ShapeHash hashes only the loop
//     structure (nesting + latch shape, never raw PCs), so profiles of
//     drifted builds of the same program still match (stale-profile
//     matching, after Ayupov et al.).
//
// The format is a fixed field order per kind — no maps, no reflection —
// so byte stability needs no canonical-JSON machinery.
package wire

import (
	"sort"

	"aptget/internal/analysis"
	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/obs"
	"aptget/internal/pebs"
	"aptget/internal/pmu"
	"aptget/internal/profile"
)

// Version is the current wire-format version. Decoders reject frames
// with an unknown version rather than guessing at field layouts; the
// legacy version below is still accepted for reads.
//
// Version 2 added the per-load exposed-stall dimension: Load carries
// StallCycles and Plan carries the 2-D selection provenance (Score,
// MeanStall). Version-1 frames decode with those fields zero — the
// profile predates latency sampling — and re-encode as version 2.
const Version = 2

// LegacyVersion is the oldest frame version decoders still accept.
const LegacyVersion = 1

// Frame kinds (the byte after the header's version).
const (
	KindProfile = 1
	KindPlanSet = 2
)

// Load mirrors pebs.Load on the wire: one delinquent-load candidate.
// StallCycles is the summed exposed stall of the PC's sampled misses
// (zero in legacy version-1 frames).
type Load struct {
	PC          uint64
	Samples     uint64
	StallCycles uint64
	Share       float64
}

// LoopShape is one loop of the profiled binary with every PC stripped:
// only the nesting position and the latch/block shape remain. This is
// the structure stale-profile matching keys on — it survives recompiles
// that move code but keep the loop nest.
type LoopShape struct {
	Depth        int32
	Parent       int32 // index of the enclosing loop in Profile.Loops, -1 for roots
	Latches      int32
	Blocks       int32
	HasInduction bool
}

// Profile is the ingestion payload: everything the analysis stage needs
// to derive plans, plus the loop metadata the cache needs for stale
// matching. App names the workload (the program identity — builds are
// deterministic, so the server can rebuild the binary the PCs refer to).
type Profile struct {
	App          string
	Cycles       uint64
	Instructions uint64
	Loads        []Load
	Samples      []lbr.Sample
	Loops        []LoopShape
}

// Plan is one delinquent load's decision with its Equation (1)/(2)
// provenance — the wire form of an analysis.Plan through its PlanRecord.
type Plan struct {
	LoadPC   uint64
	LoadName string
	Site     string // "inner" | "outer"
	Distance int64

	IC      float64
	MC      float64
	AvgTrip float64
	K       int64

	InnerDistance int64
	OuterDistance int64

	PeaksInner []float64
	PeaksOuter []float64

	LatencySamples      int64
	DroppedNonMonotonic int64
	Fallback            string

	// 2-D selection provenance (version 2; zero in legacy frames).
	Score     float64
	MeanStall float64
}

// PlanSet is the serving payload for one profile: the plans in analysis
// order. It deliberately carries no fingerprint — the cache addresses
// plan bytes by the profile they came from, so a stale match can serve
// the prior bytes verbatim.
type PlanSet struct {
	App   string
	Plans []Plan
}

// Canonicalize sorts the profile's slices into the canonical order
// Encode uses: loads most-delinquent first (samples desc, PC asc — the
// pebs.Delinquent order, which the analysis stage iterates), snapshots
// by (cycle, length, entries). It mutates the receiver.
func (p *Profile) Canonicalize() {
	sort.SliceStable(p.Loads, func(i, j int) bool {
		return lessLoad(&p.Loads[i], &p.Loads[j])
	})
	sort.SliceStable(p.Samples, func(i, j int) bool {
		return lessSample(&p.Samples[i], &p.Samples[j])
	})
}

// isCanonical reports whether Canonicalize would leave p byte-for-byte
// unchanged. Both predicates are strict weak orderings, so a slice with
// no adjacent inversion is globally sorted, and a stable sort of a
// sorted slice is the identity.
func (p *Profile) isCanonical() bool {
	for i := 1; i < len(p.Loads); i++ {
		if lessLoad(&p.Loads[i], &p.Loads[i-1]) {
			return false
		}
	}
	for i := 1; i < len(p.Samples); i++ {
		if lessSample(&p.Samples[i], &p.Samples[i-1]) {
			return false
		}
	}
	return true
}

func lessLoad(a, b *Load) bool {
	if a.Samples != b.Samples {
		return a.Samples > b.Samples
	}
	return a.PC < b.PC
}

func lessSample(a, b *lbr.Sample) bool {
	if a.Cycle != b.Cycle {
		return a.Cycle < b.Cycle
	}
	if len(a.Entries) != len(b.Entries) {
		return len(a.Entries) < len(b.Entries)
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Cycle != eb.Cycle {
			return ea.Cycle < eb.Cycle
		}
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		if ea.To != eb.To {
			return ea.To < eb.To
		}
	}
	return false
}

// ProfileOf packages a collected profile for the wire: the PEBS loads
// and LBR snapshots verbatim, and the program's loop forest reduced to
// PC-free shapes. prog must be the build that was profiled.
func ProfileOf(app string, prog *ir.Program, prof *profile.Profile) *Profile {
	p := &Profile{
		App:          app,
		Cycles:       prof.Counters.Cycles,
		Instructions: prof.Counters.Instructions,
	}
	for _, l := range prof.Loads {
		p.Loads = append(p.Loads, Load{
			PC: l.PC, Samples: l.Samples, StallCycles: l.StallCycles, Share: l.Share,
		})
	}
	p.Samples = append(p.Samples, prof.Samples...)
	p.Loops = LoopShapes(prog.Func)
	return p
}

// LoopShapes reduces a function's loop forest to its PC-free structure.
// The forest is ordered by header block ID (ir.AnalyzeLoops), which is a
// build-order invariant, so the slice is deterministic per program.
func LoopShapes(f *ir.Func) []LoopShape {
	forest := ir.AnalyzeLoops(f)
	index := make(map[*ir.Loop]int32, len(forest.Loops))
	for i, l := range forest.Loops {
		index[l] = int32(i)
	}
	shapes := make([]LoopShape, 0, len(forest.Loops))
	for _, l := range forest.Loops {
		parent := int32(-1)
		if l.Parent != nil {
			parent = index[l.Parent]
		}
		shapes = append(shapes, LoopShape{
			Depth:        int32(l.Depth),
			Parent:       parent,
			Latches:      int32(len(l.Latches)),
			Blocks:       int32(len(l.Blocks)),
			HasInduction: l.InductionPhi(f) != ir.NoValue,
		})
	}
	return shapes
}

// ToProfile reconstructs the in-process profile the analysis stage
// consumes. The loop metadata stays behind — the server re-derives loops
// from its own deterministic build.
func (p *Profile) ToProfile() *profile.Profile {
	out := &profile.Profile{
		Counters: pmu.Counters{Cycles: p.Cycles, Instructions: p.Instructions},
	}
	for _, l := range p.Loads {
		pl := pebs.Load{
			PC: l.PC, Samples: l.Samples, Share: l.Share,
			StallCycles: l.StallCycles,
		}
		if l.Samples > 0 {
			pl.MeanStall = float64(l.StallCycles) / float64(l.Samples)
		}
		out.Loads = append(out.Loads, pl)
	}
	out.Samples = append(out.Samples, p.Samples...)
	return out
}

// PlanFromRecord maps a provenance record onto the wire plan.
func PlanFromRecord(rec obs.PlanRecord) Plan {
	return Plan{
		LoadPC:              rec.LoadPC,
		LoadName:            rec.Load,
		Site:                rec.Site,
		Distance:            rec.Distance,
		IC:                  rec.IC,
		MC:                  rec.MC,
		AvgTrip:             rec.AvgTrip,
		K:                   rec.K,
		InnerDistance:       rec.InnerDistance,
		OuterDistance:       rec.OuterDistance,
		PeaksInner:          append([]float64(nil), rec.PeaksInner...),
		PeaksOuter:          append([]float64(nil), rec.PeaksOuter...),
		LatencySamples:      int64(rec.LatencySamples),
		DroppedNonMonotonic: int64(rec.DroppedNonMonotonic),
		Fallback:            rec.Fallback,
		Score:               rec.Score,
		MeanStall:           rec.MeanStall,
	}
}

// PlanSetFromAnalysis converts the analysis stage's output. opt must be
// the Options the plans were computed with (K reaches the record).
func PlanSetFromAnalysis(app string, plans []analysis.Plan, opt analysis.Options) *PlanSet {
	ps := &PlanSet{App: app}
	for i := range plans {
		ps.Plans = append(ps.Plans, PlanFromRecord(plans[i].Record(opt)))
	}
	return ps
}
