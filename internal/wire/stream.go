// Streaming frame decoding. DecodeProfile and DecodePlanSet used to
// prove canonicality by re-encoding the decoded value and comparing
// bytes — correct, but it doubles the work and forces the caller to
// buffer the whole frame first. This file replaces that with a single
// incremental pass that enforces the same acceptance set directly:
//
//   - every uvarint/zigzag varint is minimally encoded (n bytes are
//     minimal iff n == 1 or the value needs the n-th byte),
//   - bool bytes are strictly 0 or 1,
//   - int32-backed fields fit in int32 (the old decoder truncated and
//     then failed the re-encode comparison),
//   - loads and samples arrive in canonical order, checked pairwise with
//     the exact predicates Canonicalize sorts with (a slice is the
//     stable-sort fixed point iff no adjacent pair is inverted),
//   - the frame is exactly its fields: no trailing bytes.
//
// Together these imply encode(decode(b)) == b for every accepted b —
// the property the wire fuzz targets assert — without materializing a
// second copy. The same pass works over an io.Reader, so the service
// can hash and decode an upload as the body arrives instead of
// io.ReadAll-ing up to the body limit first (DecodeProfileFrom).
package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"

	"aptget/internal/lbr"
)

// streamChunk is the refill granularity for io.Reader sources and the
// allocation cap for length-prefixed data: a slice is never grown by
// more than this many bytes ahead of what the stream has delivered, so
// an adversarial length prefix cannot allocate beyond the actual input.
const streamChunk = 64 << 10

// stream is the incremental frame reader. With src == nil, buf holds
// the entire frame (the []byte decoders); otherwise buf is a sliding
// window refilled from src, and every byte that enters the window is
// fed to sum, giving the content address of the frame for free.
type stream struct {
	buf []byte // buffered bytes; unread portion is buf[pos:]
	pos int
	src io.Reader // nil when buf is the whole input
	sum hash.Hash // optional incremental SHA-256 over all buffered bytes
	off int64     // total bytes consumed, for error offsets
	ver uint64    // frame version consumed by header
	err error

	scratch [8]byte // f64 staging for the src path
}

func (s *stream) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
}

// remaining is how many unread bytes are buffered.
func (s *stream) remaining() int { return len(s.buf) - s.pos }

// refill buffers at least one more unread byte, returning false at end
// of input or on a read error. The []byte path never refills.
func (s *stream) refill() bool {
	if s.err != nil || s.src == nil {
		return false
	}
	if s.pos > 0 {
		s.buf = s.buf[:copy(s.buf, s.buf[s.pos:])]
		s.pos = 0
	}
	if cap(s.buf) < streamChunk {
		old := s.buf
		s.buf = make([]byte, len(old), streamChunk)
		copy(s.buf, old)
	}
	for {
		n, err := s.src.Read(s.buf[len(s.buf):cap(s.buf)])
		if n > 0 {
			s.sum.Write(s.buf[len(s.buf) : len(s.buf)+n])
			s.buf = s.buf[:len(s.buf)+n]
			return true
		}
		if err == io.EOF {
			return false
		}
		if err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("wire: reading frame: %w", err)
			}
			return false
		}
	}
}

func (s *stream) byte() byte {
	if s.err != nil {
		return 0
	}
	if s.pos >= len(s.buf) && !s.refill() {
		s.fail("wire: truncated frame at offset %d", s.off)
		return 0
	}
	b := s.buf[s.pos]
	s.pos++
	s.off++
	return b
}

// full fills dst from the stream, refilling as needed.
func (s *stream) full(dst []byte) {
	for len(dst) > 0 {
		if s.err != nil {
			return
		}
		if s.pos >= len(s.buf) && !s.refill() {
			s.fail("wire: truncated frame at offset %d", s.off)
			return
		}
		n := copy(dst, s.buf[s.pos:])
		s.pos += n
		s.off += int64(n)
		dst = dst[n:]
	}
}

// uint reads a minimally-encoded uvarint: a multi-byte encoding whose
// final byte is zero carries padding the canonical writer never emits.
func (s *stream) uint() uint64 {
	start := s.off
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b := s.byte()
		if s.err != nil {
			return 0
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				s.fail("wire: uvarint overflows 64 bits at offset %d", start)
				return 0
			}
			if i > 0 && b == 0 {
				s.fail("wire: frame is not canonical: padded varint at offset %d", start)
				return 0
			}
			return v | uint64(b)<<shift
		}
		if i == 9 {
			break
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	s.fail("wire: uvarint overflows 64 bits at offset %d", start)
	return 0
}

// int reads a zigzag varint (minimality checked on the raw uvarint).
func (s *stream) int() int64 {
	ux := s.uint()
	v := int64(ux >> 1)
	if ux&1 != 0 {
		v = ^v
	}
	return v
}

// int32v reads a zigzag varint that must fit in int32 — the old decoder
// truncated and then failed the re-encode comparison; same accept set.
func (s *stream) int32v() int32 {
	start := s.off
	v := s.int()
	if v < math.MinInt32 || v > math.MaxInt32 {
		s.fail("wire: frame is not canonical: value %d overflows int32 at offset %d", v, start)
		return 0
	}
	return int32(v)
}

func (s *stream) f64() float64 {
	if s.err != nil {
		return 0
	}
	// Fast path: 8 bytes already buffered.
	if s.remaining() >= 8 {
		b := s.buf[s.pos:]
		bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		s.pos += 8
		s.off += 8
		return math.Float64frombits(bits)
	}
	s.full(s.scratch[:])
	if s.err != nil {
		return 0
	}
	b := s.scratch
	bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return math.Float64frombits(bits)
}

func (s *stream) bool() bool {
	b := s.byte()
	if s.err != nil {
		return false
	}
	if b > 1 {
		s.fail("wire: bad bool byte %d at offset %d", b, s.off-1)
		return false
	}
	return b == 1
}

// count reads a length prefix. When the whole frame is in memory it is
// validated against the remaining bytes (each element needs at least
// elemMin bytes); for streams the cap is enforced by chunked allocation
// at the use sites instead.
func (s *stream) count(elemMin int) int {
	start := s.off
	v := s.uint()
	if s.err != nil {
		return 0
	}
	if s.src == nil && v > uint64(s.remaining())/uint64(elemMin) {
		s.fail("wire: length %d exceeds remaining %d bytes at offset %d",
			v, s.remaining(), start)
		return 0
	}
	if v > math.MaxInt64/2 {
		s.fail("wire: absurd length %d at offset %d", v, start)
		return 0
	}
	return int(v)
}

// sliceCap bounds an up-front allocation for n elements of elemSize
// bytes: exact when the frame is in memory (count already validated n),
// one chunk's worth otherwise — the slice then grows only as the stream
// actually delivers elements.
func (s *stream) sliceCap(n, elemSize int) int {
	if s.src == nil {
		return n
	}
	if max := streamChunk / elemSize; n > max {
		return max
	}
	return n
}

func (s *stream) str() string {
	n := s.count(1)
	if s.err != nil || n == 0 {
		return ""
	}
	// Fast path: the bytes are buffered (always true for src == nil).
	if s.remaining() >= n {
		v := string(s.buf[s.pos : s.pos+n])
		s.pos += n
		s.off += int64(n)
		return v
	}
	out := make([]byte, 0, s.sliceCap(n, 1))
	for len(out) < n {
		chunk := n - len(out)
		if chunk > streamChunk {
			chunk = streamChunk
		}
		start := len(out)
		out = append(out, make([]byte, chunk)...)
		s.full(out[start:])
		if s.err != nil {
			return ""
		}
	}
	return string(out)
}

func (s *stream) f64s() []float64 {
	n := s.count(8)
	if s.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, 0, s.sliceCap(n, 8))
	for i := 0; i < n; i++ {
		out = append(out, s.f64())
		if s.err != nil {
			return nil
		}
	}
	return out
}

// header consumes and validates magic, version, and kind.
func (s *stream) header(kind byte) {
	var m [4]byte
	s.full(m[:])
	if s.err != nil {
		return
	}
	if m != magic {
		s.fail("wire: bad magic")
		return
	}
	if v := s.uint(); s.err == nil {
		if v < LegacyVersion || v > Version {
			s.fail("wire: version %d, this decoder speaks %d–%d", v, LegacyVersion, Version)
			return
		}
		s.ver = v
	}
	if got := s.byte(); s.err == nil && got != kind {
		s.fail("wire: frame kind %d, want %d", got, kind)
	}
}

// finish rejects trailing bytes — a frame is exactly its fields.
func (s *stream) finish() error {
	if s.err != nil {
		return s.err
	}
	if s.remaining() > 0 || s.refill() {
		return fmt.Errorf("wire: trailing bytes after frame at offset %d", s.off)
	}
	return s.err
}

// decodeProfile is the shared incremental profile parser.
func (s *stream) decodeProfile() *Profile {
	s.header(KindProfile)
	p := &Profile{}
	p.App = s.str()
	p.Cycles = s.uint()
	p.Instructions = s.uint()
	if n := s.count(3); s.err == nil && n > 0 {
		p.Loads = make([]Load, 0, s.sliceCap(n, 24))
		for i := 0; i < n && s.err == nil; i++ {
			l := Load{PC: s.uint(), Samples: s.uint()}
			if s.ver >= 2 {
				l.StallCycles = s.uint()
			}
			l.Share = s.f64()
			if i > 0 && lessLoad(&l, &p.Loads[i-1]) {
				s.fail("wire: frame is not canonical: loads out of order at index %d", i)
				break
			}
			p.Loads = append(p.Loads, l)
		}
	}
	if n := s.count(2); s.err == nil && n > 0 {
		p.Samples = make([]lbr.Sample, 0, s.sliceCap(n, 40))
		for i := 0; i < n && s.err == nil; i++ {
			var sm lbr.Sample
			sm.Cycle = s.uint()
			if m := s.count(3); s.err == nil && m > 0 {
				sm.Entries = make([]lbr.Entry, 0, s.sliceCap(m, 24))
				for j := 0; j < m && s.err == nil; j++ {
					sm.Entries = append(sm.Entries, lbr.Entry{
						From: s.uint(), To: s.uint(), Cycle: s.uint(),
					})
				}
			}
			if s.err == nil && i > 0 && lessSample(&sm, &p.Samples[i-1]) {
				s.fail("wire: frame is not canonical: samples out of order at index %d", i)
				break
			}
			p.Samples = append(p.Samples, sm)
		}
	}
	if n := s.count(5); s.err == nil && n > 0 {
		p.Loops = make([]LoopShape, 0, s.sliceCap(n, 16))
		for i := 0; i < n && s.err == nil; i++ {
			p.Loops = append(p.Loops, LoopShape{
				Depth:        s.int32v(),
				Parent:       s.int32v(),
				Latches:      s.int32v(),
				Blocks:       s.int32v(),
				HasInduction: s.bool(),
			})
		}
	}
	return p
}

// decodePlanSet is the shared incremental plan-set parser. Plan order is
// the analysis order — the encoder preserves it, so no order check.
func (s *stream) decodePlanSet() *PlanSet {
	s.header(KindPlanSet)
	ps := &PlanSet{}
	ps.App = s.str()
	if n := s.count(10); s.err == nil && n > 0 {
		ps.Plans = make([]Plan, 0, s.sliceCap(n, 200))
		for i := 0; i < n && s.err == nil; i++ {
			var p Plan
			p.LoadPC = s.uint()
			p.LoadName = s.str()
			p.Site = s.str()
			p.Distance = s.int()
			p.IC = s.f64()
			p.MC = s.f64()
			p.AvgTrip = s.f64()
			p.K = s.int()
			p.InnerDistance = s.int()
			p.OuterDistance = s.int()
			p.PeaksInner = s.f64s()
			p.PeaksOuter = s.f64s()
			p.LatencySamples = s.int()
			p.DroppedNonMonotonic = s.int()
			p.Fallback = s.str()
			if s.ver >= 2 {
				p.Score = s.f64()
				p.MeanStall = s.f64()
			}
			ps.Plans = append(ps.Plans, p)
		}
	}
	return ps
}

// DecodeProfile parses a profile frame from memory. Only canonical
// frames — the exact bytes EncodeProfile emits — are accepted: a padded
// varint or unsorted load list would otherwise give one logical profile
// two fingerprints and split the plan cache. Truncation, trailing
// bytes, and absurd lengths are errors, never panics — this is the
// service's network-facing parser.
func DecodeProfile(data []byte) (*Profile, error) {
	s := stream{buf: data}
	p := s.decodeProfile()
	if err := s.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeProfileFrom parses exactly one canonical profile frame from r,
// hashing and validating incrementally as bytes arrive: the decoder
// never buffers more than one window, and the returned Fingerprint is
// the content address of the consumed bytes (identical to
// FingerprintBytes over the same frame). r must end at the frame
// boundary; trailing bytes are an error.
func DecodeProfileFrom(r io.Reader) (*Profile, Fingerprint, error) {
	s := stream{src: r, sum: sha256.New()}
	p := s.decodeProfile()
	if err := s.finish(); err != nil {
		return nil, "", err
	}
	return p, Fingerprint(hex.EncodeToString(s.sum.Sum(nil)[:fpBytes])), nil
}

// DecodePlanSet parses a plan-set frame from memory. Canonicality is
// enforced the same way as DecodeProfile.
func DecodePlanSet(data []byte) (*PlanSet, error) {
	s := stream{buf: data}
	ps := s.decodePlanSet()
	if err := s.finish(); err != nil {
		return nil, err
	}
	return ps, nil
}

// DecodePlanSetFrom parses exactly one canonical plan-set frame from r,
// mirroring DecodeProfileFrom.
func DecodePlanSetFrom(r io.Reader) (*PlanSet, Fingerprint, error) {
	s := stream{src: r, sum: sha256.New()}
	ps := s.decodePlanSet()
	if err := s.finish(); err != nil {
		return nil, "", err
	}
	return ps, Fingerprint(hex.EncodeToString(s.sum.Sum(nil)[:fpBytes])), nil
}
