package wire

import (
	"bytes"
	"reflect"
	"testing"

	"aptget/internal/lbr"
	"aptget/internal/runner"
	"aptget/internal/testkit"
)

// randomProfile draws a profile from the testkit generators: adversarial
// LBR streams (wrapped stamps, truncated snapshots) under random latch
// sets, random delinquent loads, and a random loop nest.
func randomProfile(r *testkit.RNG) *Profile {
	latch := []uint64{uint64(8 + r.Intn(512)), uint64(600 + r.Intn(512))}
	breakers := []uint64{uint64(2000 + r.Intn(512))}
	p := &Profile{
		App:          []string{"BFS", "IS", "HJ8", "SSSP"}[r.Intn(4)],
		Cycles:       r.Uint64() >> 16,
		Instructions: r.Uint64() >> 16,
	}
	if n := r.Intn(6); n > 0 {
		for i := 0; i < n; i++ {
			p.Loads = append(p.Loads, Load{
				PC:      uint64(r.Intn(4096)),
				Samples: uint64(1 + r.Intn(1000)),
				Share:   r.Float64(),
			})
		}
	}
	if n := r.Intn(20); n > 0 {
		p.Samples = testkit.Samples(r, latch, breakers, n)
	}
	if n := r.Intn(5); n > 0 {
		for i := 0; i < n; i++ {
			parent := int32(-1)
			if i > 0 && r.Bool() {
				parent = int32(r.Intn(i))
			}
			p.Loops = append(p.Loops, LoopShape{
				Depth:        int32(1 + r.Intn(4)),
				Parent:       parent,
				Latches:      int32(1 + r.Intn(3)),
				Blocks:       int32(1 + r.Intn(9)),
				HasInduction: r.Bool(),
			})
		}
	}
	return p
}

func randomPlanSet(r *testkit.RNG) *PlanSet {
	ps := &PlanSet{App: "prop"}
	for i, n := 0, r.Intn(8); i < n; i++ {
		pl := Plan{
			LoadPC:              uint64(r.Intn(4096)),
			LoadName:            []string{"", "edge", "bucket_scan", "T[B[i]]"}[r.Intn(4)],
			Site:                []string{"inner", "outer"}[r.Intn(2)],
			Distance:            1 + r.Int63n(256),
			IC:                  r.Float64() * 100,
			MC:                  r.Float64() * 500,
			AvgTrip:             r.Float64() * 200,
			K:                   1 + r.Int63n(10),
			InnerDistance:       1 + r.Int63n(256),
			OuterDistance:       r.Int63n(256),
			LatencySamples:      r.Int63n(10000),
			DroppedNonMonotonic: r.Int63n(50),
			Fallback:            []string{"", "trip count unmeasurable (LBR overflow); inner site kept"}[r.Intn(2)],
		}
		for j, m := 0, r.Intn(4); j < m; j++ {
			pl.PeaksInner = append(pl.PeaksInner, r.Float64()*400)
		}
		for j, m := 0, r.Intn(3); j < m; j++ {
			pl.PeaksOuter = append(pl.PeaksOuter, r.Float64()*1000)
		}
		ps.Plans = append(ps.Plans, pl)
	}
	return ps
}

// TestProfileRoundTripProperty: decode(encode(x)) == canonical(x) for
// generated profiles, structurally (reflect.DeepEqual) and byte-wise.
func TestProfileRoundTripProperty(t *testing.T) {
	r := testkit.NewRNG(0x77697265)
	for i := 0; i < 300; i++ {
		p := randomProfile(r)
		data := EncodeProfile(p)
		got, err := DecodeProfile(data)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		p.Canonicalize() // Encode canonicalized a copy; match it
		for i := range p.Samples {
			// Empty and nil entry slices encode identically; the decoder
			// yields nil.
			if len(p.Samples[i].Entries) == 0 {
				p.Samples[i].Entries = nil
			}
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("iter %d: decode(encode(x)) != canonical(x)\n in: %+v\nout: %+v", i, p, got)
		}
		if !bytes.Equal(EncodeProfile(got), data) {
			t.Fatalf("iter %d: encode(decode(b)) != b", i)
		}
	}
}

func TestPlanSetRoundTripProperty(t *testing.T) {
	r := testkit.NewRNG(0x706c616e)
	for i := 0; i < 300; i++ {
		ps := randomPlanSet(r)
		data := EncodePlanSet(ps)
		got, err := DecodePlanSet(data)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(ps, got) {
			t.Fatalf("iter %d: decode(encode(x)) != x\n in: %+v\nout: %+v", i, ps, got)
		}
	}
}

// TestFingerprintStableAcrossWorkersAndOrderings: the fingerprint of one
// logical profile must not depend on the slice ordering the caller used
// or on the runner pool width the encoding happens under.
func TestFingerprintStableAcrossWorkersAndOrderings(t *testing.T) {
	defer runner.SetMaxWorkers(0)
	r := testkit.NewRNG(0x66707374)
	for i := 0; i < 20; i++ {
		p := randomProfile(r)
		want := FingerprintOf(p)

		// Shuffled orderings of the client-controlled slices.
		for trial := 0; trial < 4; trial++ {
			q := *p
			q.Loads = append([]Load(nil), p.Loads...)
			q.Samples = append([]lbr.Sample(nil), p.Samples...)
			for k := len(q.Loads) - 1; k > 0; k-- {
				j := r.Intn(k + 1)
				q.Loads[k], q.Loads[j] = q.Loads[j], q.Loads[k]
			}
			for k := len(q.Samples) - 1; k > 0; k-- {
				j := r.Intn(k + 1)
				q.Samples[k], q.Samples[j] = q.Samples[j], q.Samples[k]
			}
			if got := FingerprintOf(&q); got != want {
				t.Fatalf("iter %d: fingerprint moved under reordering: %s != %s", i, got, want)
			}
		}

		// Concurrent encoding at several pool widths.
		for _, width := range []int{1, 2, 8} {
			runner.SetMaxWorkers(width)
			fps, err := runner.Map(16, func(int) (Fingerprint, error) {
				return FingerprintOf(p), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, fp := range fps {
				if fp != want {
					t.Fatalf("iter %d: fingerprint unstable at width %d", i, width)
				}
			}
		}
	}
}
