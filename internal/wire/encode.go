package wire

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync"

	"aptget/internal/lbr"
)

// magic opens every frame. Four bytes, then version uvarint, then kind.
var magic = [4]byte{'A', 'P', 'T', 'W'}

// writer builds a frame. All integers are uvarint/zigzag-varint encoded
// (binary.AppendUvarint), floats as IEEE-754 bits, strings and slices
// length-prefixed — one unambiguous byte sequence per value, written in
// struct field order, which is what makes the format deterministic.
type writer struct{ buf []byte }

func newWriter(kind byte) *writer {
	w := &writer{buf: make([]byte, 0, 1024)}
	w.buf = append(w.buf, magic[:]...)
	w.uint(Version)
	w.buf = append(w.buf, kind)
	return w
}

func (w *writer) uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) int(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) f64(v float64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v)) }
func (w *writer) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}
func (w *writer) str(s string) { w.uint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) f64s(v []float64) {
	w.uint(uint64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

// uvarintLen is the encoded size of v (1–10 bytes, minimal form).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// varintLen is the encoded size of v under zigzag.
func varintLen(v int64) int { return uvarintLen(uint64(v)<<1 ^ uint64(v>>63)) }

// profileSize is the exact encoded length of an already-canonical
// profile, so EncodeProfile can allocate its output in one shot.
func profileSize(p *Profile) int {
	n := len(magic) + uvarintLen(Version) + 1
	n += uvarintLen(uint64(len(p.App))) + len(p.App)
	n += uvarintLen(p.Cycles) + uvarintLen(p.Instructions)
	n += uvarintLen(uint64(len(p.Loads)))
	for _, l := range p.Loads {
		n += uvarintLen(l.PC) + uvarintLen(l.Samples) + uvarintLen(l.StallCycles) + 8
	}
	n += uvarintLen(uint64(len(p.Samples)))
	for _, s := range p.Samples {
		n += uvarintLen(s.Cycle) + uvarintLen(uint64(len(s.Entries)))
		for _, e := range s.Entries {
			n += uvarintLen(e.From) + uvarintLen(e.To) + uvarintLen(e.Cycle)
		}
	}
	n += uvarintLen(uint64(len(p.Loops)))
	for _, l := range p.Loops {
		n += varintLen(int64(l.Depth)) + varintLen(int64(l.Parent)) +
			varintLen(int64(l.Latches)) + varintLen(int64(l.Blocks)) + 1
	}
	return n
}

// sortScratch pools the shallow slice copies EncodeProfile sorts when
// handed a non-canonical profile, so repeated encodes reuse one pair of
// backing arrays instead of allocating them per call.
type sortScratch struct {
	loads   []Load
	samples []lbr.Sample
}

var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// EncodeProfile renders the canonical byte form of p. The input is not
// mutated; a non-canonical input is sorted on a pooled shallow copy,
// and an already-canonical one (the served steady state) is written
// directly with no copying at all.
func EncodeProfile(p *Profile) []byte {
	cp := *p
	var sc *sortScratch
	if !p.isCanonical() {
		sc = sortScratchPool.Get().(*sortScratch)
		sc.loads = append(sc.loads[:0], p.Loads...)
		sc.samples = append(sc.samples[:0], p.Samples...)
		cp.Loads, cp.Samples = sc.loads, sc.samples
		cp.Canonicalize()
	}

	w := &writer{buf: make([]byte, 0, profileSize(&cp))}
	w.buf = append(w.buf, magic[:]...)
	w.uint(Version)
	w.buf = append(w.buf, KindProfile)
	w.str(cp.App)
	w.uint(cp.Cycles)
	w.uint(cp.Instructions)
	w.uint(uint64(len(cp.Loads)))
	for _, l := range cp.Loads {
		w.uint(l.PC)
		w.uint(l.Samples)
		w.uint(l.StallCycles)
		w.f64(l.Share)
	}
	w.uint(uint64(len(cp.Samples)))
	for _, s := range cp.Samples {
		w.uint(s.Cycle)
		w.uint(uint64(len(s.Entries)))
		for _, e := range s.Entries {
			w.uint(e.From)
			w.uint(e.To)
			w.uint(e.Cycle)
		}
	}
	w.uint(uint64(len(cp.Loops)))
	for _, l := range cp.Loops {
		w.int(int64(l.Depth))
		w.int(int64(l.Parent))
		w.int(int64(l.Latches))
		w.int(int64(l.Blocks))
		w.bool(l.HasInduction)
	}
	if sc != nil {
		sortScratchPool.Put(sc)
	}
	return w.buf
}

// EncodePlanSet renders the canonical byte form of ps. Plan order is the
// analysis order (itself canonical: plans follow the delinquency order
// of the profile's loads), so no sorting is applied.
func EncodePlanSet(ps *PlanSet) []byte {
	w := newWriter(KindPlanSet)
	w.str(ps.App)
	w.uint(uint64(len(ps.Plans)))
	for _, p := range ps.Plans {
		w.uint(p.LoadPC)
		w.str(p.LoadName)
		w.str(p.Site)
		w.int(p.Distance)
		w.f64(p.IC)
		w.f64(p.MC)
		w.f64(p.AvgTrip)
		w.int(p.K)
		w.int(p.InnerDistance)
		w.int(p.OuterDistance)
		w.f64s(p.PeaksInner)
		w.f64s(p.PeaksOuter)
		w.int(p.LatencySamples)
		w.int(p.DroppedNonMonotonic)
		w.str(p.Fallback)
		w.f64(p.Score)
		w.f64(p.MeanStall)
	}
	return w.buf
}
