package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"aptget/internal/lbr"
)

// magic opens every frame. Four bytes, then version uvarint, then kind.
var magic = [4]byte{'A', 'P', 'T', 'W'}

// writer builds a frame. All integers are uvarint/zigzag-varint encoded
// (binary.AppendUvarint), floats as IEEE-754 bits, strings and slices
// length-prefixed — one unambiguous byte sequence per value, written in
// struct field order, which is what makes the format deterministic.
type writer struct{ buf []byte }

func newWriter(kind byte) *writer {
	w := &writer{buf: make([]byte, 0, 1024)}
	w.buf = append(w.buf, magic[:]...)
	w.uint(Version)
	w.buf = append(w.buf, kind)
	return w
}

func (w *writer) uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) int(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) f64(v float64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v)) }
func (w *writer) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}
func (w *writer) str(s string) { w.uint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) f64s(v []float64) {
	w.uint(uint64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

// reader decodes a frame, tracking position; every method fails softly
// by setting err so the decoder body stays linear.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("wire: truncated uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("wire: truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail("wire: truncated float at offset %d", r.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.fail("wire: truncated bool at offset %d", r.pos)
		return false
	}
	b := r.buf[r.pos]
	r.pos++
	if b > 1 {
		r.fail("wire: bad bool byte %d at offset %d", b, r.pos-1)
		return false
	}
	return b == 1
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// count reads a length prefix and validates it against the bytes left,
// assuming each element needs at least elemMin bytes — an adversarial
// frame cannot make the decoder allocate beyond its own size.
func (r *reader) count(elemMin int) int {
	v := r.uint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.buf)-r.pos)/uint64(elemMin) {
		r.fail("wire: length %d exceeds remaining %d bytes at offset %d",
			v, len(r.buf)-r.pos, r.pos)
		return 0
	}
	return int(v)
}

func (r *reader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// header checks magic, version, and kind; returns a reader positioned at
// the first field.
func header(data []byte, kind byte) (*reader, error) {
	r := &reader{buf: data}
	if len(data) < len(magic)+2 || string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("wire: bad magic")
	}
	r.pos = len(magic)
	if v := r.uint(); r.err == nil && v != Version {
		return nil, fmt.Errorf("wire: version %d, this decoder speaks %d", v, Version)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos >= len(r.buf) {
		return nil, fmt.Errorf("wire: truncated header")
	}
	if got := r.buf[r.pos]; got != kind {
		return nil, fmt.Errorf("wire: frame kind %d, want %d", got, kind)
	}
	r.pos++
	return r, nil
}

// finish rejects trailing bytes — a frame is exactly its fields.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(r.buf)-r.pos)
	}
	return nil
}

// EncodeProfile renders the canonical byte form of p. The input is not
// mutated; its slices are sorted on a shallow copy.
func EncodeProfile(p *Profile) []byte {
	cp := *p
	cp.Loads = append([]Load(nil), p.Loads...)
	cp.Samples = append([]lbr.Sample(nil), p.Samples...)
	cp.Canonicalize()

	w := newWriter(KindProfile)
	w.str(cp.App)
	w.uint(cp.Cycles)
	w.uint(cp.Instructions)
	w.uint(uint64(len(cp.Loads)))
	for _, l := range cp.Loads {
		w.uint(l.PC)
		w.uint(l.Samples)
		w.f64(l.Share)
	}
	w.uint(uint64(len(cp.Samples)))
	for _, s := range cp.Samples {
		w.uint(s.Cycle)
		w.uint(uint64(len(s.Entries)))
		for _, e := range s.Entries {
			w.uint(e.From)
			w.uint(e.To)
			w.uint(e.Cycle)
		}
	}
	w.uint(uint64(len(cp.Loops)))
	for _, l := range cp.Loops {
		w.int(int64(l.Depth))
		w.int(int64(l.Parent))
		w.int(int64(l.Latches))
		w.int(int64(l.Blocks))
		w.bool(l.HasInduction)
	}
	return w.buf
}

// DecodeProfile parses a profile frame. The result is canonical (Encode
// wrote it that way); trailing bytes, truncation, and absurd lengths are
// errors, never panics — this is the service's network-facing parser.
func DecodeProfile(data []byte) (*Profile, error) {
	r, err := header(data, KindProfile)
	if err != nil {
		return nil, err
	}
	p := &Profile{}
	p.App = r.str()
	p.Cycles = r.uint()
	p.Instructions = r.uint()
	if n := r.count(3); r.err == nil && n > 0 {
		p.Loads = make([]Load, n)
		for i := range p.Loads {
			p.Loads[i] = Load{PC: r.uint(), Samples: r.uint(), Share: r.f64()}
		}
	}
	if n := r.count(2); r.err == nil && n > 0 {
		p.Samples = make([]lbr.Sample, n)
		for i := range p.Samples {
			p.Samples[i].Cycle = r.uint()
			if m := r.count(3); r.err == nil && m > 0 {
				p.Samples[i].Entries = make([]lbr.Entry, m)
				for j := range p.Samples[i].Entries {
					p.Samples[i].Entries[j] = lbr.Entry{
						From: r.uint(), To: r.uint(), Cycle: r.uint(),
					}
				}
			}
		}
	}
	if n := r.count(5); r.err == nil && n > 0 {
		p.Loops = make([]LoopShape, n)
		for i := range p.Loops {
			p.Loops[i] = LoopShape{
				Depth:        int32(r.int()),
				Parent:       int32(r.int()),
				Latches:      int32(r.int()),
				Blocks:       int32(r.int()),
				HasInduction: r.bool(),
			}
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	// Strict canonicality: the only accepted frames are the ones Encode
	// emits. A padded varint or unsorted load list would otherwise give
	// one logical profile two fingerprints and split the plan cache.
	if !bytes.Equal(EncodeProfile(p), data) {
		return nil, fmt.Errorf("wire: frame is not canonical")
	}
	return p, nil
}

// EncodePlanSet renders the canonical byte form of ps. Plan order is the
// analysis order (itself canonical: plans follow the delinquency order
// of the profile's loads), so no sorting is applied.
func EncodePlanSet(ps *PlanSet) []byte {
	w := newWriter(KindPlanSet)
	w.str(ps.App)
	w.uint(uint64(len(ps.Plans)))
	for _, p := range ps.Plans {
		w.uint(p.LoadPC)
		w.str(p.LoadName)
		w.str(p.Site)
		w.int(p.Distance)
		w.f64(p.IC)
		w.f64(p.MC)
		w.f64(p.AvgTrip)
		w.int(p.K)
		w.int(p.InnerDistance)
		w.int(p.OuterDistance)
		w.f64s(p.PeaksInner)
		w.f64s(p.PeaksOuter)
		w.int(p.LatencySamples)
		w.int(p.DroppedNonMonotonic)
		w.str(p.Fallback)
	}
	return w.buf
}

// DecodePlanSet parses a plan-set frame.
func DecodePlanSet(data []byte) (*PlanSet, error) {
	r, err := header(data, KindPlanSet)
	if err != nil {
		return nil, err
	}
	ps := &PlanSet{}
	ps.App = r.str()
	if n := r.count(10); r.err == nil && n > 0 {
		ps.Plans = make([]Plan, n)
		for i := range ps.Plans {
			p := &ps.Plans[i]
			p.LoadPC = r.uint()
			p.LoadName = r.str()
			p.Site = r.str()
			p.Distance = r.int()
			p.IC = r.f64()
			p.MC = r.f64()
			p.AvgTrip = r.f64()
			p.K = r.int()
			p.InnerDistance = r.int()
			p.OuterDistance = r.int()
			p.PeaksInner = r.f64s()
			p.PeaksOuter = r.f64s()
			p.LatencySamples = r.int()
			p.DroppedNonMonotonic = r.int()
			p.Fallback = r.str()
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if !bytes.Equal(EncodePlanSet(ps), data) {
		return nil, fmt.Errorf("wire: frame is not canonical")
	}
	return ps, nil
}
