package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// TestDecodeProfileFromMatchesDecodeProfile: the streaming decoder must
// accept exactly what the in-memory decoder accepts, produce the same
// value, and fingerprint the consumed bytes identically — regardless of
// how the reader chunks the body.
func TestDecodeProfileFromMatchesDecodeProfile(t *testing.T) {
	for _, n := range []int{0, 1, 64, 700} {
		p := benchProfile(n)
		data := EncodeProfile(p)
		want, err := DecodeProfile(data)
		if err != nil {
			t.Fatalf("samples=%d: DecodeProfile: %v", n, err)
		}
		wantFP := FingerprintBytes(data)

		for _, tc := range []struct {
			name string
			r    func() *bytes.Reader
		}{
			{"whole", func() *bytes.Reader { return bytes.NewReader(data) }},
		} {
			got, fp, err := DecodeProfileFrom(tc.r())
			if err != nil {
				t.Fatalf("samples=%d %s: DecodeProfileFrom: %v", n, tc.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("samples=%d %s: stream decode differs from in-memory decode", n, tc.name)
			}
			if fp != wantFP {
				t.Fatalf("samples=%d %s: fingerprint %s, want %s", n, tc.name, fp, wantFP)
			}
		}

		// One byte at a time: every refill boundary is exercised.
		got, fp, err := DecodeProfileFrom(iotest.OneByteReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("samples=%d one-byte: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) || fp != wantFP {
			t.Fatalf("samples=%d one-byte: decode mismatch", n)
		}
	}
}

func TestDecodePlanSetFromMatchesDecodePlanSet(t *testing.T) {
	ps := samplePlanSet()
	data := EncodePlanSet(ps)
	want, err := DecodePlanSet(data)
	if err != nil {
		t.Fatalf("DecodePlanSet: %v", err)
	}
	got, fp, err := DecodePlanSetFrom(iotest.OneByteReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatalf("DecodePlanSetFrom: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stream decode differs from in-memory decode")
	}
	if fp != FingerprintBytes(data) {
		t.Fatalf("fingerprint %s, want %s", fp, FingerprintBytes(data))
	}
}

func TestDecodeProfileFromRejects(t *testing.T) {
	data := EncodeProfile(benchProfile(8))

	if _, _, err := DecodeProfileFrom(bytes.NewReader(append(append([]byte(nil), data...), 0x00))); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte accepted: %v", err)
	}
	if _, _, err := DecodeProfileFrom(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, _, err := DecodeProfileFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestDecodeProfileFromBoundsAllocation: a stream that declares an
// enormous element count but delivers almost no bytes must fail fast
// without allocating anywhere near the declared size — the chunked
// growth only ever runs ahead of the stream by one window.
func TestDecodeProfileFromBoundsAllocation(t *testing.T) {
	w := newWriter(KindProfile)
	w.str("BFS")
	w.uint(0)       // cycles
	w.uint(0)       // instructions
	w.uint(1 << 40) // loads: a terabyte's worth, none delivered
	if _, _, err := DecodeProfileFrom(bytes.NewReader(w.buf)); err == nil {
		t.Fatal("absurd load count accepted")
	}
}

// TestDecodeRejectsNonCanonicalStream: the incremental checks must catch
// what the old re-encode comparison caught — padded varints, unsorted
// loads, int32 overflow — on both decoder entry points.
func TestDecodeRejectsNonCanonicalStream(t *testing.T) {
	p := benchProfile(4)
	good := EncodeProfile(p)

	mutate := func(name string, f func([]byte) []byte) {
		bad := f(append([]byte(nil), good...))
		if _, err := DecodeProfile(bad); err == nil {
			t.Errorf("%s: DecodeProfile accepted", name)
		}
		if _, _, err := DecodeProfileFrom(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: DecodeProfileFrom accepted", name)
		}
	}

	// Pad the version varint: 0x01 -> 0x81 0x00 (same value, two bytes).
	mutate("padded varint", func(b []byte) []byte {
		out := append([]byte(nil), b[:4]...)
		out = append(out, 0x81, 0x00)
		return append(out, b[5:]...)
	})

	// Unsorted loads: encode a profile whose loads are swapped out of
	// delinquency order, bypassing Canonicalize by writing fields by hand.
	w := newWriter(KindProfile)
	w.str("BFS")
	w.uint(1)
	w.uint(1)
	w.uint(2)
	w.uint(10) // PC=10, Samples=5
	w.uint(5)
	w.f64(0.2)
	w.uint(20) // PC=20, Samples=9 — more delinquent, must come first
	w.uint(9)
	w.f64(0.8)
	w.uint(0) // samples
	w.uint(0) // loops
	if _, err := DecodeProfile(w.buf); err == nil {
		t.Error("unsorted loads accepted by DecodeProfile")
	}
	if _, _, err := DecodeProfileFrom(bytes.NewReader(w.buf)); err == nil {
		t.Error("unsorted loads accepted by DecodeProfileFrom")
	}

	// Loop field beyond int32: the old decoder truncated and failed the
	// re-encode comparison; the new one must reject outright.
	w2 := newWriter(KindProfile)
	w2.str("BFS")
	w2.uint(1)
	w2.uint(1)
	w2.uint(0)      // loads
	w2.uint(0)      // samples
	w2.uint(1)      // loops
	w2.int(1 << 40) // Depth overflows int32
	w2.int(-1)
	w2.int(1)
	w2.int(1)
	w2.bool(true)
	if _, err := DecodeProfile(w2.buf); err == nil {
		t.Error("int32 overflow accepted by DecodeProfile")
	}
	if _, _, err := DecodeProfileFrom(bytes.NewReader(w2.buf)); err == nil {
		t.Error("int32 overflow accepted by DecodeProfileFrom")
	}
}

// TestEncodeProfileFastPathMatchesSorted: the canonical fast path must
// emit byte-identical frames to the copy-and-sort path.
func TestEncodeProfileFastPathMatchesSorted(t *testing.T) {
	p := benchProfile(32) // canonicalized by construction
	fast := EncodeProfile(p)

	// Shuffle a copy to force the sort path, then compare bytes.
	shuffled := *p
	shuffled.Loads = []Load{p.Loads[2], p.Loads[0], p.Loads[1]}
	shuffled.Samples = append(shuffled.Samples[:0:0], p.Samples...)
	for i, j := 0, len(shuffled.Samples)-1; i < j; i, j = i+1, j-1 {
		shuffled.Samples[i], shuffled.Samples[j] = shuffled.Samples[j], shuffled.Samples[i]
	}
	slow := EncodeProfile(&shuffled)
	if !bytes.Equal(fast, slow) {
		t.Fatal("fast path and sort path disagree")
	}
}

// Allocation regression locks for the zero/low-alloc claims. Decode
// allocates the returned structures themselves (one Entries slice per
// sample is the structural floor); encode of a canonical profile is a
// single output-buffer allocation.
func TestWireAllocsPerRun(t *testing.T) {
	p := benchProfile(64)
	data := EncodeProfile(p)

	if got := testing.AllocsPerRun(200, func() { EncodeProfile(p) }); got > 2 {
		t.Errorf("EncodeProfile(canonical): %.1f allocs/op, want <= 2", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := DecodeProfile(data); err != nil {
			t.Fatal(err)
		}
	}); got > 74 { // 64 entries slices + top-level structures
		t.Errorf("DecodeProfile: %.1f allocs/op, want <= 74", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeProfileFrom(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}); got > 82 { // + reader, hasher, window
		t.Errorf("DecodeProfileFrom: %.1f allocs/op, want <= 82", got)
	}
}
