package wire

import (
	"bytes"
	"testing"
)

// encodeProfileV1 replicates the version-1 profile layout (no per-load
// StallCycles) so the decode-both test exercises real legacy bytes.
func encodeProfileV1(p *Profile) []byte {
	w := &writer{}
	w.buf = append(w.buf, magic[:]...)
	w.uint(LegacyVersion)
	w.buf = append(w.buf, KindProfile)
	w.str(p.App)
	w.uint(p.Cycles)
	w.uint(p.Instructions)
	w.uint(uint64(len(p.Loads)))
	for _, l := range p.Loads {
		w.uint(l.PC)
		w.uint(l.Samples)
		w.f64(l.Share)
	}
	w.uint(uint64(len(p.Samples)))
	for _, s := range p.Samples {
		w.uint(s.Cycle)
		w.uint(uint64(len(s.Entries)))
		for _, e := range s.Entries {
			w.uint(e.From)
			w.uint(e.To)
			w.uint(e.Cycle)
		}
	}
	w.uint(uint64(len(p.Loops)))
	for _, l := range p.Loops {
		w.int(int64(l.Depth))
		w.int(int64(l.Parent))
		w.int(int64(l.Latches))
		w.int(int64(l.Blocks))
		w.bool(l.HasInduction)
	}
	return w.buf
}

// encodePlanSetV1 replicates the version-1 plan-set layout (no Score /
// MeanStall trailer per plan).
func encodePlanSetV1(ps *PlanSet) []byte {
	w := &writer{}
	w.buf = append(w.buf, magic[:]...)
	w.uint(LegacyVersion)
	w.buf = append(w.buf, KindPlanSet)
	w.str(ps.App)
	w.uint(uint64(len(ps.Plans)))
	for _, p := range ps.Plans {
		w.uint(p.LoadPC)
		w.str(p.LoadName)
		w.str(p.Site)
		w.int(p.Distance)
		w.f64(p.IC)
		w.f64(p.MC)
		w.f64(p.AvgTrip)
		w.int(p.K)
		w.int(p.InnerDistance)
		w.int(p.OuterDistance)
		w.f64s(p.PeaksInner)
		w.f64s(p.PeaksOuter)
		w.int(p.LatencySamples)
		w.int(p.DroppedNonMonotonic)
		w.str(p.Fallback)
	}
	return w.buf
}

// TestDecodeBothVersions pins the compatibility contract of the version
// bump: the decoder accepts version-1 and version-2 bytes of the same
// logical profile, a legacy frame decodes with zero stall fields, and
// re-encoding a legacy decode upgrades it to a canonical version-2
// frame that carries everything else unchanged.
func TestDecodeBothVersions(t *testing.T) {
	p := sampleProfile()
	p.Canonicalize()
	for i := range p.Loads {
		p.Loads[i].StallCycles = uint64(1000 + 100*i)
	}

	v2 := EncodeProfile(p)
	got2, err := DecodeProfile(v2)
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	for i := range got2.Loads {
		if got2.Loads[i].StallCycles != p.Loads[i].StallCycles {
			t.Fatalf("v2 load %d stall = %d, want %d",
				i, got2.Loads[i].StallCycles, p.Loads[i].StallCycles)
		}
	}

	v1 := encodeProfileV1(p)
	got1, err := DecodeProfile(v1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if len(got1.Loads) != len(p.Loads) {
		t.Fatalf("v1 decode lost loads: %d vs %d", len(got1.Loads), len(p.Loads))
	}
	for i, l := range got1.Loads {
		if l.StallCycles != 0 {
			t.Fatalf("v1 load %d must decode with zero StallCycles, got %d", i, l.StallCycles)
		}
		if l.PC != p.Loads[i].PC || l.Samples != p.Loads[i].Samples || l.Share != p.Loads[i].Share {
			t.Fatalf("v1 load %d fields differ: %+v vs %+v", i, l, p.Loads[i])
		}
	}
	if got1.App != p.App || got1.Cycles != p.Cycles || got1.Instructions != p.Instructions ||
		len(got1.Samples) != len(p.Samples) || len(got1.Loops) != len(p.Loops) {
		t.Fatal("v1 decode dropped non-load fields")
	}

	// Upgrading: re-encode is a canonical v2 frame.
	up := EncodeProfile(got1)
	if up[4] != Version {
		t.Fatalf("re-encode version byte = %d, want %d", up[4], Version)
	}
	if _, err := DecodeProfile(up); err != nil {
		t.Fatalf("upgraded frame rejected: %v", err)
	}

	// The ToProfile mapping recovers MeanStall from the wire stall sum.
	tp := got2.ToProfile()
	for i, l := range tp.Loads {
		want := float64(p.Loads[i].StallCycles) / float64(p.Loads[i].Samples)
		if l.MeanStall != want {
			t.Fatalf("ToProfile load %d MeanStall = %v, want %v", i, l.MeanStall, want)
		}
	}
}

// TestDecodeBothVersionsPlanSet mirrors the profile test for plan frames.
func TestDecodeBothVersionsPlanSet(t *testing.T) {
	ps := samplePlanSet()
	for i := range ps.Plans {
		ps.Plans[i].Score = 50 + float64(i)
		ps.Plans[i].MeanStall = 200 + float64(i)
	}

	v2 := EncodePlanSet(ps)
	got2, err := DecodePlanSet(v2)
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if !bytes.Equal(EncodePlanSet(got2), v2) {
		t.Fatal("v2 round trip lost bytes")
	}
	for i := range got2.Plans {
		if got2.Plans[i].Score != ps.Plans[i].Score ||
			got2.Plans[i].MeanStall != ps.Plans[i].MeanStall {
			t.Fatalf("v2 plan %d provenance lost: %+v", i, got2.Plans[i])
		}
	}

	v1 := encodePlanSetV1(ps)
	got1, err := DecodePlanSet(v1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if len(got1.Plans) != len(ps.Plans) {
		t.Fatalf("v1 decode lost plans: %d vs %d", len(got1.Plans), len(ps.Plans))
	}
	for i, p := range got1.Plans {
		if p.Score != 0 || p.MeanStall != 0 {
			t.Fatalf("v1 plan %d must decode with zero provenance, got %+v", i, p)
		}
		if p.LoadPC != ps.Plans[i].LoadPC || p.Distance != ps.Plans[i].Distance ||
			p.Site != ps.Plans[i].Site || p.Fallback != ps.Plans[i].Fallback {
			t.Fatalf("v1 plan %d fields differ: %+v vs %+v", i, p, ps.Plans[i])
		}
	}
	if _, err := DecodePlanSet(EncodePlanSet(got1)); err != nil {
		t.Fatalf("upgraded frame rejected: %v", err)
	}
}
