package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint is the content address of a profile: a stable hash over
// its canonical bytes. Two profiles fingerprint equal iff they encode to
// the same bytes, so the plan cache can key on it directly.
type Fingerprint string

// ShapeHash is the stale-matching key: a stable hash over the profile's
// loop structure (and the app it belongs to), with every raw PC ignored.
// Profiles of two builds of the same program that kept the loop nest —
// the common case under binary drift — share a ShapeHash even though
// their Fingerprints differ.
type ShapeHash string

// fpBytes is how much of the SHA-256 digest the textual keys keep. 16
// bytes (128 bits) is far beyond collision reach for any cache size and
// keeps URLs readable.
const fpBytes = 16

func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:fpBytes])
}

// FingerprintOf content-addresses a profile via its canonical encoding.
func FingerprintOf(p *Profile) Fingerprint {
	return FingerprintBytes(EncodeProfile(p))
}

// FingerprintBytes content-addresses an already-encoded profile frame.
// The caller must pass bytes produced by EncodeProfile (canonical);
// hashing a hand-built non-canonical frame would address the same
// logical profile twice.
func FingerprintBytes(canonical []byte) Fingerprint {
	return Fingerprint(digest(canonical))
}

// ShapeHashOf hashes the app name and the PC-free loop shapes.
func ShapeHashOf(app string, loops []LoopShape) ShapeHash {
	w := newWriter(KindProfile) // reuse the frame writer for canonical bytes
	w.str(app)
	w.uint(uint64(len(loops)))
	for _, l := range loops {
		w.int(int64(l.Depth))
		w.int(int64(l.Parent))
		w.int(int64(l.Latches))
		w.int(int64(l.Blocks))
		w.bool(l.HasInduction)
	}
	return ShapeHash(digest(w.buf))
}

// ShapeHash returns the profile's stale-matching key.
func (p *Profile) ShapeHash() ShapeHash { return ShapeHashOf(p.App, p.Loops) }

// Validate applies the structural checks ingestion needs beyond what the
// decoder enforces: a workload name, and loop parent indices that stay
// inside the slice (the shape hash and stale matcher walk them).
func (p *Profile) Validate() error {
	if p.App == "" {
		return fmt.Errorf("wire: profile has no app name")
	}
	for i, l := range p.Loops {
		if l.Parent < -1 || int(l.Parent) >= len(p.Loops) || int(l.Parent) == i {
			return fmt.Errorf("wire: loop %d has bad parent index %d", i, l.Parent)
		}
		if l.Depth < 1 || l.Latches < 0 || l.Blocks < 1 {
			return fmt.Errorf("wire: loop %d has bad shape %+v", i, l)
		}
	}
	return nil
}
