package wire

import (
	"bytes"
	"strings"
	"testing"

	"aptget/internal/lbr"
)

func sampleProfile() *Profile {
	return &Profile{
		App:          "BFS",
		Cycles:       123456,
		Instructions: 98765,
		Loads: []Load{
			{PC: 40, Samples: 100, Share: 0.7},
			{PC: 12, Samples: 30, Share: 0.21},
		},
		Samples: []lbr.Sample{
			{Cycle: 10, Entries: []lbr.Entry{{From: 40, To: 8, Cycle: 9}}},
			{Cycle: 20, Entries: []lbr.Entry{{From: 40, To: 8, Cycle: 18}, {From: 12, To: 4, Cycle: 19}}},
		},
		Loops: []LoopShape{
			{Depth: 1, Parent: -1, Latches: 1, Blocks: 4, HasInduction: true},
			{Depth: 2, Parent: 0, Latches: 1, Blocks: 2, HasInduction: true},
		},
	}
}

func samplePlanSet() *PlanSet {
	return &PlanSet{
		App: "BFS",
		Plans: []Plan{
			{
				LoadPC: 40, LoadName: "edge_load", Site: "inner", Distance: 12,
				IC: 14, MC: 168, AvgTrip: 90.5, K: 5,
				InnerDistance: 12, OuterDistance: 0,
				PeaksInner:     []float64{14, 182},
				LatencySamples: 512,
			},
			{
				LoadPC: 12, LoadName: "visit_load", Site: "outer", Distance: 3,
				IC: 20, MC: 60, AvgTrip: 4, K: 5,
				InnerDistance: 3, OuterDistance: 3,
				PeaksInner: []float64{20, 80}, PeaksOuter: []float64{90, 240},
				LatencySamples: 64, DroppedNonMonotonic: 2,
				Fallback: "inner latency unimodal; distance from outer loop distribution",
			},
		},
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := sampleProfile()
	data := EncodeProfile(p)
	got, err := DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !profileEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
	// Re-encoding the decoded profile must reproduce the bytes exactly.
	if !bytes.Equal(EncodeProfile(got), data) {
		t.Fatal("encode(decode(b)) != b")
	}
}

func TestPlanSetRoundTrip(t *testing.T) {
	ps := samplePlanSet()
	data := EncodePlanSet(ps)
	got, err := DecodePlanSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if !planSetEqual(ps, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", ps, got)
	}
	if !bytes.Equal(EncodePlanSet(got), data) {
		t.Fatal("encode(decode(b)) != b")
	}
}

func TestFingerprintIgnoresFieldOrdering(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	// Shuffle the client-controlled slice orderings.
	b.Loads[0], b.Loads[1] = b.Loads[1], b.Loads[0]
	b.Samples[0], b.Samples[1] = b.Samples[1], b.Samples[0]
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Fatal("fingerprint must be invariant under load/sample reordering")
	}
	// But content changes must change it.
	b.Loads[0].Samples++
	if FingerprintOf(a) == FingerprintOf(b) {
		t.Fatal("fingerprint ignored a content change")
	}
}

func TestShapeHashIgnoresPCs(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	// Simulate binary drift: every PC moves, loop structure stays.
	for i := range b.Loads {
		b.Loads[i].PC += 4096
	}
	for i := range b.Samples {
		for j := range b.Samples[i].Entries {
			b.Samples[i].Entries[j].From += 4096
			b.Samples[i].Entries[j].To += 4096
		}
	}
	if a.ShapeHash() != b.ShapeHash() {
		t.Fatal("shape hash must ignore raw PCs")
	}
	if FingerprintOf(a) == FingerprintOf(b) {
		t.Fatal("fingerprint should see the PC drift")
	}
	// A structural change must move the shape hash.
	b.Loops[1].Depth = 3
	if a.ShapeHash() == b.ShapeHash() {
		t.Fatal("shape hash ignored a loop-structure change")
	}
	// And so must the app identity.
	c := sampleProfile()
	c.App = "DFS"
	if a.ShapeHash() == c.ShapeHash() {
		t.Fatal("shape hash must include the app identity")
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	good := EncodeProfile(sampleProfile())
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE1234"),
		"truncated":  good[:len(good)/2],
		"trailing":   append(append([]byte(nil), good...), 0xFF),
		"wrong kind": EncodePlanSet(samplePlanSet()),
	}
	for name, data := range cases {
		if _, err := DecodeProfile(data); err == nil {
			t.Errorf("%s: DecodeProfile accepted a malformed frame", name)
		}
	}
	// Version mismatch: patch the version varint (offset 4, value 1).
	bad := append([]byte(nil), good...)
	bad[4] = Version + 1
	if _, err := DecodeProfile(bad); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	// A length prefix larger than the frame must error, not allocate.
	huge := append([]byte(nil), good[:6]...)          // header only
	huge = append(huge, 0x00)                         // app: empty string
	huge = append(huge, 0x01, 0x01)                   // cycles, instructions
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // loads count ≈ 4G
	if _, err := DecodeProfile(huge); err == nil {
		t.Error("absurd length prefix accepted")
	}
}

func TestValidate(t *testing.T) {
	p := sampleProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	p.Loops[1].Parent = 7
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range loop parent accepted")
	}
	p = sampleProfile()
	p.App = ""
	if err := p.Validate(); err == nil {
		t.Fatal("empty app accepted")
	}
}

// profileEqual compares after canonicalization, treating nil and empty
// slices as distinct only when content differs.
func profileEqual(a, b *Profile) bool {
	ca, cb := *a, *b
	ca.Loads = append([]Load(nil), a.Loads...)
	ca.Samples = append([]lbr.Sample(nil), a.Samples...)
	cb.Loads = append([]Load(nil), b.Loads...)
	cb.Samples = append([]lbr.Sample(nil), b.Samples...)
	ca.Canonicalize()
	cb.Canonicalize()
	return bytes.Equal(EncodeProfile(&ca), EncodeProfile(&cb))
}

func planSetEqual(a, b *PlanSet) bool {
	return bytes.Equal(EncodePlanSet(a), EncodePlanSet(b))
}
