package wire

import (
	"fmt"
	"testing"

	"aptget/internal/lbr"
)

// benchProfile builds a canonical profile shaped like a real collection:
// nSamples LBR snapshots of 16 entries each, a handful of delinquent
// loads, and a small loop forest.
func benchProfile(nSamples int) *Profile {
	p := &Profile{
		App:          "BFS",
		Cycles:       48_000_000,
		Instructions: 36_000_000,
		Loads: []Load{
			{PC: 40, Samples: 900, Share: 0.62},
			{PC: 88, Samples: 310, Share: 0.21},
			{PC: 12, Samples: 120, Share: 0.08},
		},
		Loops: []LoopShape{
			{Depth: 1, Parent: -1, Latches: 1, Blocks: 6, HasInduction: true},
			{Depth: 2, Parent: 0, Latches: 1, Blocks: 3, HasInduction: true},
		},
	}
	cycle := uint64(1000)
	for i := 0; i < nSamples; i++ {
		s := lbr.Sample{Cycle: cycle}
		ec := cycle - 600
		for j := 0; j < 16; j++ {
			ec += uint64(13 + (i+j)%37)
			s.Entries = append(s.Entries, lbr.Entry{From: 40, To: 8, Cycle: ec})
		}
		cycle += 1000
		p.Samples = append(p.Samples, s)
	}
	p.Canonicalize()
	return p
}

// BenchmarkHotWireDecode is the ingest hot path: parsing (and
// canonicality-checking) one profile frame, at loadgen-corpus size and at
// a large fleet-aggregation size. Tracked by the CI bench gate.
func BenchmarkHotWireDecode(b *testing.B) {
	for _, n := range []int{64, 2048} {
		data := EncodeProfile(benchProfile(n))
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := DecodeProfile(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotWireEncode is the other half of the round trip: rendering
// the canonical frame (already-canonical input, the common serve case).
func BenchmarkHotWireEncode(b *testing.B) {
	for _, n := range []int{64, 2048} {
		p := benchProfile(n)
		data := EncodeProfile(p)
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if out := EncodeProfile(p); len(out) != len(data) {
					b.Fatal("bad encode")
				}
			}
		})
	}
}
