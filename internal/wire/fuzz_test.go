package wire

import (
	"bytes"
	"testing"

	"aptget/internal/testkit"
)

// FuzzDecodeProfile drives the service's network-facing parser with
// arbitrary bytes: it must never panic or over-allocate, and whatever it
// accepts must re-encode to exactly the bytes it accepted (the frames it
// accepts are canonical by construction).
func FuzzDecodeProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeProfile(sampleProfile()))
	r := testkit.NewRNG(0xF0220)
	for i := 0; i < 8; i++ {
		f.Add(EncodeProfile(randomProfile(r)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			return
		}
		if len(data) > 4 && data[4] != Version {
			// Legacy frame: re-encoding upgrades it to the current
			// version, so byte identity cannot hold — but the upgraded
			// bytes must still be accepted.
			if _, err := DecodeProfile(EncodeProfile(p)); err != nil {
				t.Fatalf("legacy frame re-encode rejected: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeProfile(p), data) {
			t.Fatalf("accepted frame is not canonical: %x", data)
		}
	})
}

// FuzzDecodePlanSet mirrors FuzzDecodeProfile for the plan frame.
func FuzzDecodePlanSet(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePlanSet(samplePlanSet()))
	r := testkit.NewRNG(0xF0221)
	for i := 0; i < 8; i++ {
		f.Add(EncodePlanSet(randomPlanSet(r)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePlanSet(data)
		if err != nil {
			return
		}
		if len(data) > 4 && data[4] != Version {
			if _, err := DecodePlanSet(EncodePlanSet(ps)); err != nil {
				t.Fatalf("legacy frame re-encode rejected: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodePlanSet(ps), data) {
			t.Fatalf("accepted frame is not canonical: %x", data)
		}
	})
}
