// Package lbr models Intel's Last Branch Record facility (§3.1 of the
// paper): a hardware ring buffer holding, for each of the last Width taken
// branches, the branch address, its target, and the cycle at which it
// executed. Profilers snapshot the ring on a sampling interrupt; the
// APT-GET analysis reconstructs basic-block execution times and loop trip
// counts from consecutive entries.
package lbr

// Width is the number of entries the hardware retains by default (32 on
// the paper's Skylake-generation machines; the paper's §3.6 limitations
// derive from this value). Other record widths model alternative
// facilities — AMD's branch sampling and ARM's BRBE (§3) expose
// different depths.
const Width = 32

// Entry is one recorded taken branch.
type Entry struct {
	From  uint64 // PC of the taken branch instruction
	To    uint64 // branch target PC
	Cycle uint64 // cycle at which the branch retired
}

// Record is the hardware ring buffer. The zero value is a ring of the
// default Width; use New for other depths.
type Record struct {
	buf  []Entry
	head int // next slot to overwrite
	n    int // valid entries (≤ width)
}

// New returns a ring with the given width (≤0 selects the default).
func New(width int) *Record {
	if width <= 0 {
		width = Width
	}
	return &Record{buf: make([]Entry, width)}
}

// Width returns the ring's capacity.
func (r *Record) Width() int {
	if r.buf == nil {
		return Width
	}
	return len(r.buf)
}

// Push records a taken branch, overwriting the oldest entry when full.
func (r *Record) Push(from, to, cycle uint64) {
	if r.buf == nil {
		r.buf = make([]Entry, Width)
	}
	r.buf[r.head] = Entry{From: from, To: to, Cycle: cycle}
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the number of valid entries.
func (r *Record) Len() int { return r.n }

// Snapshot returns the entries oldest-first. The returned slice is fresh.
func (r *Record) Snapshot() []Entry {
	if r.n == 0 {
		return nil
	}
	w := len(r.buf)
	out := make([]Entry, 0, r.n)
	start := (r.head - r.n + w) % w
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%w])
	}
	return out
}

// Reset clears the ring.
func (r *Record) Reset() { r.head, r.n = 0, 0 }

// Sample is one profiling snapshot: the ring content at a sample cycle.
type Sample struct {
	Cycle   uint64
	Entries []Entry
}
