package lbr

import (
	"testing"
	"testing/quick"
)

func TestPushAndSnapshotOrder(t *testing.T) {
	var r Record
	for i := uint64(0); i < 5; i++ {
		r.Push(i, i+100, i*10)
	}
	s := r.Snapshot()
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	for i, e := range s {
		if e.From != uint64(i) || e.To != uint64(i)+100 || e.Cycle != uint64(i)*10 {
			t.Fatalf("entry %d wrong: %+v", i, e)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	var r Record
	for i := uint64(0); i < Width+10; i++ {
		r.Push(i, i, i)
	}
	if r.Len() != Width {
		t.Fatalf("len = %d, want %d", r.Len(), Width)
	}
	s := r.Snapshot()
	if s[0].From != 10 {
		t.Fatalf("oldest retained entry should be 10, got %d", s[0].From)
	}
	if s[Width-1].From != Width+9 {
		t.Fatalf("newest should be %d, got %d", Width+9, s[Width-1].From)
	}
}

func TestReset(t *testing.T) {
	var r Record
	r.Push(1, 2, 3)
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset should empty the ring")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	var r Record
	r.Push(1, 2, 3)
	s := r.Snapshot()
	s[0].From = 999
	if r.Snapshot()[0].From != 1 {
		t.Fatal("snapshot must not alias the ring")
	}
}

func TestRingPropertyLenAndOrder(t *testing.T) {
	if err := quick.Check(func(n uint16) bool {
		var r Record
		count := int(n % 200)
		for i := 0; i < count; i++ {
			r.Push(uint64(i), 0, uint64(i))
		}
		s := r.Snapshot()
		wantLen := count
		if wantLen > Width {
			wantLen = Width
		}
		if len(s) != wantLen {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i].Cycle <= s[i-1].Cycle {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
