package lbr_test

import (
	"testing"

	"aptget/internal/lbr"
	"aptget/internal/testkit"
)

// TestSnapshotWrapAroundProperty: after any number of pushes — far past
// the ring capacity, at random widths — Snapshot must return exactly the
// last min(pushes, width) entries, oldest first. The analysis anchors
// cycle deltas on snapshot order, so a rotated or stale snapshot would
// silently corrupt every latency it extracts.
func TestSnapshotWrapAroundProperty(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		r := testkit.NewRNG(seed)
		width := 0 // default Width
		if r.Intn(2) == 0 {
			width = 1 + r.Intn(70)
		}
		rec := lbr.New(width)
		capacity := rec.Width()
		pushes := r.Intn(4 * capacity)
		var all []lbr.Entry
		for i := 0; i < pushes; i++ {
			e := lbr.Entry{From: uint64(i), To: uint64(i) + 1, Cycle: uint64(i) * 3}
			rec.Push(e.From, e.To, e.Cycle)
			all = append(all, e)
		}
		want := all
		if len(want) > capacity {
			want = all[len(all)-capacity:]
		}
		got := rec.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("seed %d (width %d, pushes %d): snapshot has %d entries, want %d",
				seed, capacity, pushes, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d (width %d, pushes %d): entry %d = %+v, want %+v (oldest-first)",
					seed, capacity, pushes, i, got[i], want[i])
			}
		}
	}
}
