// Package pmu aggregates performance-monitoring counters from the core
// and the memory system into the derived metrics the paper reports with
// perf stat: IPC, prefetch accuracy, late-prefetch ratio (Table 1), MPKI
// (Figure 7), memory-bound stall fractions (Figure 5) and instruction
// overhead (Figure 11).
package pmu

import (
	"fmt"
	"strings"

	"aptget/internal/mem"
)

// Counters is a full counter snapshot for one program run.
type Counters struct {
	Cycles       uint64
	Instructions uint64 // retired, excluding phi pseudo-ops

	Loads         uint64
	Stores        uint64
	SWPrefetches  uint64
	Branches      uint64
	TakenBranches uint64

	Mem mem.Stats
}

// IPC returns instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// DemandMisses returns the paper's miss count: demand reads that left the
// core (offcore) plus demand loads that hit an in-flight prefetch in the
// fill buffer, which the paper explicitly counts as misses (§4.4).
func (c *Counters) DemandMisses() uint64 {
	return c.Mem.OffcoreDemand + c.Mem.FBHitAny
}

// MPKI returns demand misses per kilo-instruction.
func (c *Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.DemandMisses()) / float64(c.Instructions) * 1000
}

// PrefetchAccuracy returns the §2.3 offcore-derived accuracy metric.
func (c *Counters) PrefetchAccuracy() float64 { return c.Mem.PrefetchAccuracy() }

// LatePrefetchRatio returns the fraction of issued software prefetches
// whose fill was still in flight when the demand load arrived
// (LOAD_HIT_PRE.SW_PF / prefetches issued).
func (c *Counters) LatePrefetchRatio() float64 {
	if c.Mem.SWPrefetchIssued == 0 {
		return 0
	}
	return float64(c.Mem.FBHitSWPrefetch) / float64(c.Mem.SWPrefetchIssued)
}

// StallFraction returns the fraction of all cycles spent stalled on
// accesses served by the given level.
func (c *Counters) StallFraction(l mem.Level) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Mem.StallCycles[l]) / float64(c.Cycles)
}

// MemBoundFraction returns the Figure 5 metric: the fraction of cycles
// stalled on LLC- or DRAM-served demand accesses (fill-buffer waits are
// DRAM time too).
func (c *Counters) MemBoundFraction() float64 {
	return c.StallFraction(mem.LevelLLC) + c.StallFraction(mem.LevelDRAM) +
		c.StallFraction(mem.LevelFB)
}

// Speedup returns baseline.Cycles / c.Cycles.
func (c *Counters) Speedup(baseline *Counters) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(c.Cycles)
}

// InstructionOverhead returns c.Instructions / baseline.Instructions
// (Figure 11).
func (c *Counters) InstructionOverhead(baseline *Counters) float64 {
	if baseline.Instructions == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(baseline.Instructions)
}

// Export returns every counter — core and memory system — as a flat
// map under stable snake_case keys: the machine-readable form the
// observability layer attaches to execute-stage spans (aptbench
// -report). Derived metrics (IPC, MPKI, …) are not included; they are
// recomputable from the counters and exported separately as metrics.
func (c *Counters) Export() map[string]int64 {
	m := map[string]int64{
		"cycles":         int64(c.Cycles),
		"instructions":   int64(c.Instructions),
		"loads":          int64(c.Loads),
		"stores":         int64(c.Stores),
		"sw_prefetches":  int64(c.SWPrefetches),
		"branches":       int64(c.Branches),
		"taken_branches": int64(c.TakenBranches),
	}
	c.Mem.Export(m)
	return m
}

// ExportMetrics returns the derived per-run metrics the paper reports
// (perf-stat style), keyed like Export.
func (c *Counters) ExportMetrics() map[string]float64 {
	return map[string]float64{
		"ipc":                 c.IPC(),
		"mpki":                c.MPKI(),
		"prefetch_accuracy":   c.PrefetchAccuracy(),
		"late_prefetch_ratio": c.LatePrefetchRatio(),
		"mem_bound_fraction":  c.MemBoundFraction(),
	}
}

// String renders a perf-stat-style report.
func (c *Counters) String() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }
	w("%14d cycles\n", c.Cycles)
	w("%14d instructions              # %6.2f IPC\n", c.Instructions, c.IPC())
	w("%14d loads\n", c.Loads)
	w("%14d stores\n", c.Stores)
	w("%14d sw-prefetches\n", c.SWPrefetches)
	w("%14d branches                  # %d taken\n", c.Branches, c.TakenBranches)
	w("%14d offcore_requests.all_data_rd\n", c.Mem.OffcoreAll())
	w("%14d offcore_requests.demand_data_rd\n", c.Mem.OffcoreDemand)
	w("%14d load_hit_pre.sw_pf        # %5.1f%% late prefetch ratio\n",
		c.Mem.FBHitSWPrefetch, 100*c.LatePrefetchRatio())
	w("%14.2f MPKI\n", c.MPKI())
	w("%14.1f%% prefetch accuracy\n", 100*c.PrefetchAccuracy())
	w("%14.1f%% cycles memory bound (LLC+DRAM)\n", 100*c.MemBoundFraction())
	return sb.String()
}
