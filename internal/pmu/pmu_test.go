package pmu

import (
	"strings"
	"testing"

	"aptget/internal/mem"
)

func sample() *Counters {
	c := &Counters{
		Cycles:       1000,
		Instructions: 500,
		Loads:        100,
		Stores:       20,
		SWPrefetches: 40,
	}
	c.Mem.OffcoreDemand = 10
	c.Mem.OffcoreSWPrefetch = 30
	c.Mem.FBHitAny = 5
	c.Mem.FBHitSWPrefetch = 4
	c.Mem.SWPrefetchIssued = 40
	c.Mem.StallCycles[mem.LevelDRAM] = 400
	c.Mem.StallCycles[mem.LevelLLC] = 100
	return c
}

func TestDerivedMetrics(t *testing.T) {
	c := sample()
	if got := c.IPC(); got != 0.5 {
		t.Fatalf("IPC = %v", got)
	}
	if got := c.DemandMisses(); got != 15 {
		t.Fatalf("DemandMisses = %d, want 15", got)
	}
	if got := c.MPKI(); got != 30 {
		t.Fatalf("MPKI = %v, want 30", got)
	}
	if got := c.LatePrefetchRatio(); got != 0.1 {
		t.Fatalf("late ratio = %v, want 0.1", got)
	}
	if got := c.PrefetchAccuracy(); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if got := c.MemBoundFraction(); got != 0.5 {
		t.Fatalf("membound = %v, want 0.5", got)
	}
}

func TestSpeedupAndOverhead(t *testing.T) {
	base := &Counters{Cycles: 2000, Instructions: 400}
	c := sample()
	if got := c.Speedup(base); got != 2 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	if got := c.InstructionOverhead(base); got != 1.25 {
		t.Fatalf("overhead = %v, want 1.25", got)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var c Counters
	if c.IPC() != 0 || c.MPKI() != 0 || c.LatePrefetchRatio() != 0 ||
		c.PrefetchAccuracy() != 0 || c.MemBoundFraction() != 0 ||
		c.Speedup(&Counters{}) != 0 || c.InstructionOverhead(&Counters{}) != 0 {
		t.Fatal("zero counters must not divide by zero")
	}
}

func TestStringReport(t *testing.T) {
	s := sample().String()
	for _, want := range []string{
		"cycles", "IPC", "offcore_requests.all_data_rd",
		"load_hit_pre.sw_pf", "MPKI", "prefetch accuracy", "memory bound",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
