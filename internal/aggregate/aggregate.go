// Package aggregate implements fleet-wide profile aggregation: merging
// the PEBS/LBR profiles that many clients of one binary report into a
// single weighted profile, so a burst of re-profiles triggers one
// analysis of the merged evidence instead of K analyses of K noisy
// samples — the continuous fleet-wide collection model of hardware
// counted profile-guided optimization applied to prefetch planning.
//
// The merge is sample-count weighted by construction: delinquent-load
// sample counts add, and the LBR snapshot sets concatenate, so the
// per-load latency histograms the analysis stage builds from the merged
// profile are exactly the weighted merge of the per-client histograms —
// a client that observed twice as many loop iterations contributes
// twice the histogram mass.
//
// Merge is deterministic and order-independent: identical profiles
// (same fingerprint — the same observation re-reported, not new
// evidence) are deduplicated, integer counters add commutatively, and
// the merged slices are canonicalized, so merge(A,B,C) encodes to the
// same bytes under any permutation of arrival.
package aggregate

import (
	"fmt"
	"sort"

	"aptget/internal/lbr"
	"aptget/internal/wire"
)

// Merge combines same-shape profiles into one weighted profile. All
// inputs must share an app and a shape hash (clients of one binary);
// inputs are not mutated. A single (distinct) input merges to a
// canonical copy of itself, so plans computed from the merge of one
// profile are byte-identical to an unaggregated analysis.
func Merge(profiles []*wire.Profile) (*wire.Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("aggregate: no profiles to merge")
	}
	first := profiles[0]
	shape := first.ShapeHash()

	// Deduplicate by fingerprint: a fleet member re-sending the same
	// bytes is the same observation, and counting it twice would skew
	// the weighting toward chatty clients.
	distinct := make([]*wire.Profile, 0, len(profiles))
	seen := make(map[wire.Fingerprint]bool, len(profiles))
	for _, p := range profiles {
		if p.App != first.App {
			return nil, fmt.Errorf("aggregate: mixed apps %q and %q", first.App, p.App)
		}
		if p.ShapeHash() != shape {
			return nil, fmt.Errorf("aggregate: mixed loop shapes for %s", p.App)
		}
		fp := wire.FingerprintOf(p)
		if !seen[fp] {
			seen[fp] = true
			distinct = append(distinct, p)
		}
	}
	// One distinct observation: keep it verbatim (canonicalized) rather
	// than re-deriving shares, so a burst of identical re-profiles yields
	// plans byte-identical to an unaggregated analysis.
	if len(distinct) == 1 {
		p := distinct[0]
		copied := &wire.Profile{
			App:          p.App,
			Cycles:       p.Cycles,
			Instructions: p.Instructions,
			Loads:        append([]wire.Load(nil), p.Loads...),
			Samples:      append([]lbr.Sample(nil), p.Samples...),
			Loops:        append([]wire.LoopShape(nil), p.Loops...),
		}
		copied.Canonicalize()
		return copied, nil
	}
	// Fingerprint order makes the iteration below independent of
	// arrival order even before canonicalization.
	sort.Slice(distinct, func(i, j int) bool {
		return wire.FingerprintOf(distinct[i]) < wire.FingerprintOf(distinct[j])
	})

	merged := &wire.Profile{
		App:   first.App,
		Loops: append([]wire.LoopShape(nil), first.Loops...),
	}
	loadsByPC := make(map[uint64]*wire.Load)
	var pcs []uint64
	var totalSamples uint64
	for _, p := range distinct {
		merged.Cycles += p.Cycles
		merged.Instructions += p.Instructions
		for _, l := range p.Loads {
			m, ok := loadsByPC[l.PC]
			if !ok {
				m = &wire.Load{PC: l.PC}
				loadsByPC[l.PC] = m
				pcs = append(pcs, l.PC)
			}
			m.Samples += l.Samples
			m.StallCycles += l.StallCycles
			totalSamples += l.Samples
		}
		merged.Samples = append(merged.Samples, p.Samples...)
	}
	// Shares are recomputed over the merged population (the fraction of
	// all merged delinquent-load samples, an integer ratio — exact and
	// commutative). Per-client shares were fractions of per-client
	// sample totals and cannot be averaged meaningfully.
	for _, pc := range pcs {
		m := loadsByPC[pc]
		if totalSamples > 0 {
			m.Share = float64(m.Samples) / float64(totalSamples)
		}
		merged.Loads = append(merged.Loads, *m)
	}
	merged.Canonicalize()
	return merged, nil
}
