package aggregate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aptget/internal/lbr"
	"aptget/internal/wire"
)

// testProfile builds a small canonical profile whose content varies
// with seed but whose loop shape (and app) stays fixed, mimicking a
// fleet of clients of one binary reporting slightly different evidence.
func testProfile(seed uint64) *wire.Profile {
	p := &wire.Profile{
		App:          "IS",
		Cycles:       1000 + seed*37,
		Instructions: 4000 + seed*11,
		Loads: []wire.Load{
			{PC: 0x40, Samples: 60 + seed, Share: 0.6},
			{PC: 0x80, Samples: 40, Share: 0.4},
		},
		Samples: []lbr.Sample{
			{Cycle: 100 + seed, Entries: []lbr.Entry{{From: 0x10, To: 0x20, Cycle: 90 + seed}}},
			{Cycle: 200 + seed, Entries: []lbr.Entry{{From: 0x10, To: 0x20, Cycle: 190 + seed}}},
		},
		Loops: []wire.LoopShape{
			{Depth: 1, Parent: -1, Latches: 1, Blocks: 4, HasInduction: true},
			{Depth: 2, Parent: 0, Latches: 1, Blocks: 2, HasInduction: true},
		},
	}
	p.Canonicalize()
	return p
}

func TestMergeSumsAndReweights(t *testing.T) {
	a, b := testProfile(1), testProfile(2)
	m, err := Merge([]*wire.Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != a.Cycles+b.Cycles || m.Instructions != a.Instructions+b.Instructions {
		t.Fatalf("counters not summed: %d/%d", m.Cycles, m.Instructions)
	}
	if len(m.Loads) != 2 {
		t.Fatalf("loads not merged by PC: %+v", m.Loads)
	}
	var byPC = map[uint64]wire.Load{}
	var total uint64
	for _, l := range m.Loads {
		byPC[l.PC] = l
		total += l.Samples
	}
	if byPC[0x40].Samples != 61+62 || byPC[0x80].Samples != 80 {
		t.Fatalf("sample counts not summed: %+v", m.Loads)
	}
	for _, l := range m.Loads {
		want := float64(l.Samples) / float64(total)
		if l.Share != want {
			t.Fatalf("share of %#x = %v, want recomputed %v", l.PC, l.Share, want)
		}
	}
	if len(m.Samples) != len(a.Samples)+len(b.Samples) {
		t.Fatalf("LBR snapshots not concatenated: %d", len(m.Samples))
	}
	if len(m.Loops) != len(a.Loops) {
		t.Fatalf("loop shapes corrupted: %+v", m.Loops)
	}
	if m.ShapeHash() != a.ShapeHash() {
		t.Fatal("merged profile changed shape hash")
	}
}

// TestMergeDedupsIdenticalProfiles: the same observation re-reported
// must not double its weight — and the merge of K identical profiles is
// the profile itself, so aggregated plans for an identical-burst are
// byte-identical to unaggregated serving.
func TestMergeDedupsIdenticalProfiles(t *testing.T) {
	p := testProfile(7)
	m, err := Merge([]*wire.Profile{p, testProfile(7), testProfile(7)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.EncodeProfile(m), wire.EncodeProfile(p)) {
		t.Fatal("merge of identical profiles must encode identically to the profile")
	}
}

// TestMergeOrderIndependent is the satellite property test: the merged
// profile's canonical bytes are identical under any permutation of
// arrival order, including duplicated members.
func TestMergeOrderIndependent(t *testing.T) {
	base := []*wire.Profile{testProfile(1), testProfile(2), testProfile(3), testProfile(1)}
	ref, err := Merge(base)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := wire.EncodeProfile(ref)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		perm := append([]*wire.Profile(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		m, err := Merge(perm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire.EncodeProfile(m), refBytes) {
			t.Fatalf("trial %d: merge is arrival-order dependent", trial)
		}
	}
	if wire.FingerprintOf(ref) == wire.FingerprintOf(base[0]) {
		t.Fatal("merged profile of distinct inputs should have a new fingerprint")
	}
}

func TestMergeRejectsMixedShapes(t *testing.T) {
	a := testProfile(1)
	b := testProfile(2)
	b.Loops = b.Loops[:1] // different loop nest
	if _, err := Merge([]*wire.Profile{a, b}); err == nil {
		t.Fatal("mixed shapes must error")
	}
	c := testProfile(3)
	c.App = "BFS"
	if _, err := Merge([]*wire.Profile{a, c}); err == nil {
		t.Fatal("mixed apps must error")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge must error")
	}
}

// TestBatcherWindowCollapsesAnalyses: K concurrent same-shape submits
// fire one analysis of the merged profile, and every waiter gets the
// same bytes and batch size.
func TestBatcherWindowCollapsesAnalyses(t *testing.T) {
	const k = 8
	b := NewBatcher(k, time.Minute) // wait far beyond the test: only the window fires
	var analyses atomic.Int64
	shape := testProfile(0).ShapeHash()

	var wg sync.WaitGroup
	plansOut := make([][]byte, k)
	sizes := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans, _, size, err := b.Do(context.Background(), shape, testProfile(uint64(i)),
				func(m *wire.Profile) ([]byte, error) {
					analyses.Add(1)
					return wire.EncodeProfile(m), nil // analysis stand-in: echo the merged profile
				})
			if err != nil {
				t.Error(err)
				return
			}
			plansOut[i], sizes[i] = plans, size
		}(i)
	}
	wg.Wait()

	if got := analyses.Load(); got != 1 {
		t.Fatalf("analyze ran %d times for a full window, want 1", got)
	}
	for i := 1; i < k; i++ {
		if !bytes.Equal(plansOut[i], plansOut[0]) || sizes[i] != k {
			t.Fatalf("waiter %d got different result (size %d)", i, sizes[i])
		}
	}
	c := b.Counters()
	if c["aggregate_profiles"] != k || c["aggregate_batches"] != 1 || c["aggregate_saved_analyses"] != k-1 {
		t.Fatalf("counters = %v", c)
	}
}

// TestBatcherWaitFiresPartialWindow: a lone profile is not held beyond
// the wait bound.
func TestBatcherWaitFiresPartialWindow(t *testing.T) {
	b := NewBatcher(100, 10*time.Millisecond)
	start := time.Now()
	plans, src, size, err := b.Do(context.Background(), "sA", testProfile(5),
		func(m *wire.Profile) ([]byte, error) { return []byte("ok"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if size != 1 || string(plans) != "ok" {
		t.Fatalf("partial fire = size %d plans %q", size, plans)
	}
	if src != wire.FingerprintOf(testProfile(5)) {
		t.Fatal("single-profile batch must keep the profile's own fingerprint")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone profile waited %v", elapsed)
	}
	if got := b.Counters()["aggregate_wait_fires"]; got != 1 {
		t.Fatalf("wait fires = %d, want 1", got)
	}
}

// TestBatcherSeparateShapesSeparateWindows: different shapes never
// share a batch.
func TestBatcherSeparateShapesSeparateWindows(t *testing.T) {
	b := NewBatcher(2, time.Minute)
	var analyses atomic.Int64
	analyze := func(m *wire.Profile) ([]byte, error) {
		analyses.Add(1)
		return []byte(m.App), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := testProfile(uint64(i))
			if _, _, size, err := b.Do(context.Background(), "shape-A", p, analyze); err != nil || size != 2 {
				t.Errorf("shape-A: size %d err %v", size, err)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := testProfile(uint64(10 + i))
			p.App = "BFS"
			if _, _, size, err := b.Do(context.Background(), "shape-B", p, analyze); err != nil || size != 2 {
				t.Errorf("shape-B: size %d err %v", size, err)
			}
		}(i)
	}
	wg.Wait()
	if got := analyses.Load(); got != 2 {
		t.Fatalf("analyses = %d, want 2 (one per shape)", got)
	}
}

func TestBatcherAnalysisErrorReachesAllWaiters(t *testing.T) {
	b := NewBatcher(2, time.Minute)
	boom := errors.New("analysis exploded")
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, err := b.Do(context.Background(), "sA", testProfile(uint64(i)),
				func(*wire.Profile) ([]byte, error) { return nil, boom })
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d err = %v, want %v", i, err, boom)
		}
	}
}

func TestBatcherContextCancellation(t *testing.T) {
	b := NewBatcher(2, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := b.Do(ctx, "sA", testProfile(1),
			func(*wire.Profile) ([]byte, error) { return []byte("ok"), nil })
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The abandoned batch still completes for a later joiner via the
	// window path.
	if _, _, size, err := b.Do(context.Background(), "sA", testProfile(2),
		func(m *wire.Profile) ([]byte, error) { return []byte("ok"), nil }); err != nil || size != 2 {
		t.Fatalf("window completion after cancellation: size %d err %v", size, err)
	}
}

func TestMergeManyClientsWeighting(t *testing.T) {
	// 10 clients, one of which saw 10x the samples on a second load:
	// the merged share must reflect the pooled evidence.
	var profs []*wire.Profile
	for i := 0; i < 10; i++ {
		p := testProfile(uint64(i))
		if i == 0 {
			p.Loads = append(p.Loads, wire.Load{PC: 0xc0, Samples: 1000, Share: 0.9})
			p.Canonicalize()
		}
		profs = append(profs, p)
	}
	m, err := Merge(profs)
	if err != nil {
		t.Fatal(err)
	}
	var total, heavy uint64
	for _, l := range m.Loads {
		total += l.Samples
		if l.PC == 0xc0 {
			heavy = l.Samples
		}
	}
	if heavy != 1000 {
		t.Fatalf("heavy load lost samples: %d", heavy)
	}
	for _, l := range m.Loads {
		if l.PC == 0xc0 && l.Share != float64(heavy)/float64(total) {
			t.Fatalf("heavy share = %v", l.Share)
		}
	}
	if fmt.Sprintf("%x", wire.FingerprintOf(m)) == "" {
		t.Fatal("unreachable")
	}
}
