package aggregate

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"aptget/internal/wire"
)

// DefaultWait bounds how long the first profile of a window waits for
// the rest of the fleet's burst before the batch analyzes what it has.
const DefaultWait = 50 * time.Millisecond

// Batcher is the ingest-side aggregation window: profiles that share a
// loop-shape hash and arrive within a window are merged and analyzed
// once. A batch fires when it reaches Window profiles or when Wait has
// passed since its first profile, whichever comes first, so a lone
// client is delayed by at most Wait and a fleet burst of K re-profiles
// costs one analysis instead of K.
type Batcher struct {
	window int
	wait   time.Duration

	mu      sync.Mutex
	pending map[wire.ShapeHash]*batch

	profiles, batches, saved, waitFires atomic.Int64
}

// batch accumulates one shape's window.
type batch struct {
	shape   wire.ShapeHash
	profs   []*wire.Profile
	analyze func(*wire.Profile) ([]byte, error)
	timer   *time.Timer
	fired   bool

	done  chan struct{}
	plans []byte
	src   wire.Fingerprint // fingerprint of the merged profile
	size  int              // participants in the fired batch
	err   error
}

// NewBatcher returns a batcher with the given window size (<2 still
// works: every profile fires its own batch immediately) and wait bound
// (≤0 selects DefaultWait).
func NewBatcher(window int, wait time.Duration) *Batcher {
	if wait <= 0 {
		wait = DefaultWait
	}
	return &Batcher{
		window:  window,
		wait:    wait,
		pending: make(map[wire.ShapeHash]*batch),
	}
}

// Counters exports the batcher's counters under the names /v1/metrics
// serves. aggregate_saved_analyses is the headline: ingests that were
// answered from another profile's batch instead of their own analysis.
func (b *Batcher) Counters() map[string]int64 {
	return map[string]int64{
		"aggregate_profiles":       b.profiles.Load(),
		"aggregate_batches":        b.batches.Load(),
		"aggregate_saved_analyses": b.saved.Load(),
		"aggregate_wait_fires":     b.waitFires.Load(),
	}
}

// Do submits p to its shape's window and blocks until the batch it
// joined has been merged and analyzed (or ctx is cancelled — the batch
// still completes for the other waiters). Returns the batch's plan
// bytes, the merged profile's fingerprint, and the participant count.
// analyze runs once per batch, on the merged profile, in the goroutine
// that fired the batch.
func (b *Batcher) Do(ctx context.Context, shape wire.ShapeHash, p *wire.Profile,
	analyze func(*wire.Profile) ([]byte, error)) ([]byte, wire.Fingerprint, int, error) {

	b.profiles.Add(1)
	b.mu.Lock()
	bt, ok := b.pending[shape]
	if !ok {
		bt = &batch{
			shape:   shape,
			analyze: analyze,
			done:    make(chan struct{}),
		}
		b.pending[shape] = bt
		bt.timer = time.AfterFunc(b.wait, func() { b.fireByTimer(bt) })
	}
	bt.profs = append(bt.profs, p)
	fireNow := len(bt.profs) >= b.window
	if fireNow {
		b.takeLocked(bt)
	}
	b.mu.Unlock()

	if fireNow {
		bt.timer.Stop()
		b.fire(bt)
	}

	select {
	case <-bt.done:
	case <-ctx.Done():
		return nil, "", 0, ctx.Err()
	}
	if bt.err != nil {
		return nil, "", 0, bt.err
	}
	return bt.plans, bt.src, bt.size, nil
}

// takeLocked marks bt fired and unhooks it from pending so the next
// same-shape profile opens a fresh window. Caller holds b.mu.
func (b *Batcher) takeLocked(bt *batch) {
	bt.fired = true
	if b.pending[bt.shape] == bt {
		delete(b.pending, bt.shape)
	}
}

// fireByTimer closes the window on the wait bound with however many
// profiles arrived.
func (b *Batcher) fireByTimer(bt *batch) {
	b.mu.Lock()
	if bt.fired {
		b.mu.Unlock()
		return
	}
	b.takeLocked(bt)
	b.mu.Unlock()
	b.waitFires.Add(1)
	b.fire(bt)
}

// fire merges the batch and runs the one analysis, then releases every
// waiter. bt is owned by the caller (already unhooked from pending).
func (b *Batcher) fire(bt *batch) {
	b.batches.Add(1)
	bt.size = len(bt.profs)
	b.saved.Add(int64(bt.size - 1))
	merged, err := Merge(bt.profs)
	if err == nil {
		bt.src = wire.FingerprintOf(merged)
		bt.plans, err = bt.analyze(merged)
	}
	bt.err = err
	close(bt.done)
}
