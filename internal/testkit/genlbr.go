package testkit

import (
	"math"

	"aptget/internal/lbr"
)

// Samples generates count adversarial LBR snapshots over the given latch
// and breaker branch PCs. The stream deliberately contains everything
// §3.6 warns about and worse:
//
//   - wrapped cycle stamps (a later entry's cycle below an earlier one);
//   - duplicate stamps (two branches retiring in the same cycle);
//   - truncated snapshots (fewer entries than the ring width, including
//     empty ones);
//   - interleaved latches: breaker PCs and unrelated noise branches mixed
//     between latch occurrences;
//   - occasional giant cycle jumps (quiet phases between samples).
//
// The output is valid lbr.Sample data — the adversity is in the values,
// not in malformed structure.
func Samples(r *RNG, latch, breakers []uint64, count int) []lbr.Sample {
	noise := []uint64{7, 1009, 4242, 90001}
	out := make([]lbr.Sample, 0, count)
	for s := 0; s < count; s++ {
		nEntries := r.Intn(lbr.Width + 1) // 0..32: truncated and full rings
		cycle := uint64(r.Intn(1 << 20))
		entries := make([]lbr.Entry, 0, nEntries)
		for e := 0; e < nEntries; e++ {
			switch r.Intn(10) {
			case 0: // wrap / out-of-order: stamp falls backwards
				back := uint64(1 + r.Intn(1<<16))
				if back > cycle {
					cycle = 0
				} else {
					cycle -= back
				}
			case 1: // duplicate stamp: no advance
			case 2: // quiet phase: giant jump
				cycle += uint64(1 << (20 + r.Intn(8)))
			default:
				cycle += uint64(1 + r.Intn(500))
			}
			var from uint64
			switch pick := r.Intn(10); {
			case pick < 5 && len(latch) > 0:
				from = latch[r.Intn(len(latch))]
			case pick < 7 && len(breakers) > 0:
				from = breakers[r.Intn(len(breakers))]
			default:
				from = noise[r.Intn(len(noise))]
			}
			entries = append(entries, lbr.Entry{From: from, To: from + 1, Cycle: cycle})
		}
		out = append(out, lbr.Sample{Cycle: cycle, Entries: entries})
	}
	return out
}

// Latencies produces an adversarial latency sample set of length count:
// a mixture of up to three normal modes, with a slice of the samples
// replaced by degenerate values — constants, zero, huge outliers (up to
// 1e18 cycles), and, when allowNonFinite is set, NaN and ±Inf. This is
// the input family that must never make peaks.NewHistogram allocate
// gigabytes or panic.
func Latencies(r *RNG, count int, allowNonFinite bool) []float64 {
	nModes := 1 + r.Intn(3)
	centers := make([]float64, nModes)
	widths := make([]float64, nModes)
	for i := range centers {
		centers[i] = 20 + r.Float64()*600
		widths[i] = 1 + r.Float64()*20
	}
	out := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		mode := r.Intn(nModes)
		v := centers[mode] + r.Norm()*widths[mode]
		if v < 0 {
			v = 0
		}
		switch r.Intn(40) {
		case 0:
			v = 0
		case 1:
			v = 1e12 + r.Float64()*1e18 // the stray-outlier satellite case
		case 2:
			v = centers[0] // exact constant run
		case 3:
			if allowNonFinite {
				switch r.Intn(3) {
				case 0:
					v = math.NaN()
				case 1:
					v = math.Inf(1)
				default:
					v = math.Inf(-1)
				}
			}
		}
		out = append(out, v)
	}
	return out
}
