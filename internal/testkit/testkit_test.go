package testkit_test

import (
	"math"
	"reflect"
	"testing"

	"aptget/internal/cpu"
	"aptget/internal/ir"
	"aptget/internal/lbr"
	"aptget/internal/mem"
	"aptget/internal/testkit"
)

// TestRNGDeterminism pins the splitmix64 stream: corpus reproducibility
// depends on it never changing.
func TestRNGDeterminism(t *testing.T) {
	a, b := testkit.NewRNG(42), testkit.NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	// First value of seed 0 per the splitmix64 reference constants.
	if got := testkit.NewRNG(0).Uint64(); got != 0xe220a8397b1dcdaf {
		t.Fatalf("splitmix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

// TestProgramsValidAndExecutable sweeps seeds: every generated program
// must validate, execute to completion, produce a deterministic
// checksum, and carry a load inside a loop (the injection contract).
func TestProgramsValidAndExecutable(t *testing.T) {
	shapes := map[string]bool{}
	for seed := uint64(0); seed < 60; seed++ {
		g := testkit.Program(testkit.NewRNG(seed))
		shapes[g.Shape] = true
		if err := testkit.CheckProgram(g.P); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, g.Shape, err)
		}
		if g.Load == ir.NoValue || g.P.Func.Instr(g.Load).Op != ir.OpLoad {
			t.Fatalf("seed %d (%s): designated load is not a load", seed, g.Shape)
		}
		forest := ir.AnalyzeLoops(g.P.Func)
		if forest.InnermostFor(g.P.Func.Instr(g.Load).Block) == nil {
			t.Fatalf("seed %d (%s): designated load is not in a loop", seed, g.Shape)
		}
		sum1 := runChecksum(t, g)
		sum2 := runChecksum(t, g)
		if sum1 != sum2 {
			t.Fatalf("seed %d (%s): non-deterministic checksum %d vs %d", seed, g.Shape, sum1, sum2)
		}
	}
	for _, want := range []string{"direct", "indirect", "nested", "nonaffine", "double"} {
		if !shapes[want] {
			t.Errorf("60 seeds never produced shape %q", want)
		}
	}
}

func runChecksum(t *testing.T, g *testkit.Prog) int64 {
	t.Helper()
	res, err := cpu.Run(g.P, mem.ConfigTiny(), cpu.Options{InitMem: g.Init})
	if err != nil {
		t.Fatalf("%s: run: %v", g.Shape, err)
	}
	return res.Hier.Arena.Read(g.Out.Addr(0), 8)
}

// TestSamplesDeterministicAndAdversarial checks the LBR generator is
// reproducible and actually emits the §3.6 degeneracies it advertises.
func TestSamplesDeterministicAndAdversarial(t *testing.T) {
	latch := []uint64{100, 200}
	breakers := []uint64{300}
	a := testkit.Samples(testkit.NewRNG(7), latch, breakers, 200)
	b := testkit.Samples(testkit.NewRNG(7), latch, breakers, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sample streams diverged for identical seeds")
	}
	var wraps, truncated, breakerHits, latchHits int
	for _, s := range a {
		if len(s.Entries) < lbr.Width {
			truncated++
		}
		for i, e := range s.Entries {
			if i > 0 && e.Cycle < s.Entries[i-1].Cycle {
				wraps++
			}
			switch e.From {
			case 300:
				breakerHits++
			case 100, 200:
				latchHits++
			}
		}
	}
	if wraps == 0 || truncated == 0 || breakerHits == 0 || latchHits == 0 {
		t.Fatalf("generator not adversarial enough: wraps=%d truncated=%d breakers=%d latches=%d",
			wraps, truncated, breakerHits, latchHits)
	}
}

// TestLatenciesAdversarial checks the latency generator emits outliers
// and (when allowed) non-finite values, and respects the finite mode.
func TestLatenciesAdversarial(t *testing.T) {
	var outliers, nonFinite int
	for seed := uint64(0); seed < 20; seed++ {
		for _, v := range testkit.Latencies(testkit.NewRNG(seed), 500, true) {
			if v > 1e11 && !math.IsInf(v, 0) {
				outliers++
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite++
			}
		}
	}
	if outliers == 0 || nonFinite == 0 {
		t.Fatalf("latency generator too tame: outliers=%d nonFinite=%d", outliers, nonFinite)
	}
	for seed := uint64(0); seed < 20; seed++ {
		if err := checkNoNonFinite(testkit.Latencies(testkit.NewRNG(seed), 500, false)); err != nil {
			t.Fatalf("seed %d: finite mode emitted non-finite values: %v", seed, err)
		}
	}
}

func checkNoNonFinite(vs []float64) error {
	return testkit.CheckFinite(vs)
}

func TestInvariantCheckers(t *testing.T) {
	if err := testkit.NoPanic(func() {}); err != nil {
		t.Fatalf("NoPanic on clean fn: %v", err)
	}
	if err := testkit.NoPanic(func() { panic("boom") }); err == nil {
		t.Fatal("NoPanic missed a panic")
	}
	if err := testkit.CheckDistance(0, 256); err == nil {
		t.Fatal("CheckDistance accepted 0")
	}
	if err := testkit.CheckDistance(257, 256); err == nil {
		t.Fatal("CheckDistance accepted 257")
	}
	if err := testkit.CheckDistance(1, 256); err != nil {
		t.Fatalf("CheckDistance rejected 1: %v", err)
	}
	if err := testkit.CheckSortedUnique([]int{3, 3}, 10); err == nil {
		t.Fatal("CheckSortedUnique accepted duplicates")
	}
	if err := testkit.CheckSortedUnique([]int{3, 10}, 10); err == nil {
		t.Fatal("CheckSortedUnique accepted out-of-range index")
	}
	if err := testkit.CheckFinite([]float64{1, math.NaN()}); err == nil {
		t.Fatal("CheckFinite accepted NaN")
	}
}
