package testkit

import (
	"fmt"

	"aptget/internal/ir"
)

// NoPanic runs fn and converts any panic into an error carrying the
// panic value. The pipeline's robustness contract is "malformed profiles
// degrade, they never crash" — this is the checker fuzz targets wrap
// every stage call in.
func NoPanic(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	fn()
	return nil
}

// CheckProgram asserts structural IR validity — the invariant every
// injection must preserve (a transformed program that no longer
// validates would be a silent miscompile).
func CheckProgram(p *ir.Program) error {
	if p == nil || p.Func == nil {
		return fmt.Errorf("testkit: nil program")
	}
	return p.Func.Validate()
}

// CheckDistance asserts a computed prefetch distance lies in
// [1, max] — the Equation (1) clamp the analysis promises.
func CheckDistance(d, max int64) error {
	if d < 1 || d > max {
		return fmt.Errorf("testkit: distance %d outside [1, %d]", d, max)
	}
	return nil
}

// CheckFinite asserts every value is a finite, non-negative latency —
// what the analysis hands the histogram after cleaning a profile.
func CheckFinite(values []float64) error {
	for i, v := range values {
		if v != v { // NaN
			return fmt.Errorf("testkit: value %d is NaN", i)
		}
		if v < 0 {
			return fmt.Errorf("testkit: value %d is negative (%g)", i, v)
		}
		const maxFinite = 1.7976931348623157e308
		if v > maxFinite {
			return fmt.Errorf("testkit: value %d is +Inf", i)
		}
	}
	return nil
}

// CheckSortedUnique asserts peak indices are strictly ascending and in
// [0, n) — the FindPeaksCWT output contract.
func CheckSortedUnique(idx []int, n int) error {
	for i, p := range idx {
		if p < 0 || p >= n {
			return fmt.Errorf("testkit: peak %d at %d outside [0, %d)", i, p, n)
		}
		if i > 0 && p <= idx[i-1] {
			return fmt.Errorf("testkit: peaks not strictly ascending at %d (%d after %d)", i, p, idx[i-1])
		}
	}
	return nil
}
