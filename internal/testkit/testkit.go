// Package testkit is the property-based testing and fuzzing subsystem
// behind the pipeline's robustness guarantees. APT-GET's value rests on
// surviving degenerate hardware profiles (§3.6 of the paper catalogues
// the fallbacks: LBR overflow, too-few samples, unimodal distributions),
// so this package provides deterministic random generators for the three
// adversarial input families the pipeline consumes —
//
//   - IR programs: nested loops, indirection chains, non-affine
//     induction variables (Programs);
//   - LBR samples: wrapped and out-of-order cycle stamps, truncated
//     snapshots, interleaved latch/breaker branches (Samples);
//   - latency sample sets: outliers, constants, bimodal mixtures,
//     non-finite values (Latencies);
//
// plus pipeline-wide invariant checkers (NoPanic, CheckProgram,
// CheckDistance) used by the native fuzz targets in internal/peaks,
// internal/analysis, internal/passes and internal/mem.
//
// Everything is seed-deterministic: the same seed always yields the same
// program, sample set or latency vector, so a fuzz crash reproduces from
// its corpus entry alone and property tests need no golden files.
//
// The package deliberately imports only the leaf layers (ir, lbr, mem),
// so the analysis/passes packages' own test files can import it without
// cycles.
package testkit

// RNG is a deterministic splitmix64 generator. It is intentionally not
// math/rand: the stream is pinned by this file, so fuzz corpus entries
// and property-test seeds stay reproducible across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value of the splitmix64 stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("testkit: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("testkit: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Norm returns an approximately standard-normal value (sum of 4 uniforms,
// Irwin–Hall; cheap, deterministic, and tail-light — exactly what latency
// mixtures need, no math import required).
func (r *RNG) Norm() float64 {
	s := r.Float64() + r.Float64() + r.Float64() + r.Float64()
	return (s - 2) * 1.7320508075688772 // scale var 4/12 up to 1
}
