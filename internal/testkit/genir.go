package testkit

import (
	"fmt"

	"aptget/internal/ir"
	"aptget/internal/mem"
)

// Prog is one generated workload: a valid IR program with a designated
// irregular load inside a loop, a one-element result array holding the
// program's checksum, and a deterministic memory initializer. Running
// the program (with Init applied) and reading Out yields a value that
// any semantics-preserving transformation — prefetch injection above
// all — must leave unchanged.
type Prog struct {
	Shape string      // generator shape name (debugging fuzz crashes)
	P     *ir.Program // valid program (ir.Func.Validate passes)
	Load  ir.Value    // the designated in-loop load (injection target)
	Out   ir.Array    // single-element checksum array
	Init  func(*mem.Arena)
}

// Program generates one random workload. The same RNG state always
// yields the same program, byte for byte. Shapes cover the paper's
// catalogue: direct streams, single and double indirection chains
// (A[B[i]], A[B2[B[i]]]), nested loops whose address mixes both
// induction variables, and non-affine induction recurrences (§3.5).
//
// Every generated loop either has a recognizable constant bound (so the
// injection pass's Listing-4 clamp keeps advanced induction values in
// range) or masks the induction value into range inside the address
// chain; a trailing slack array additionally absorbs the few
// elements an outer-site sweep can read past an array's end, the way
// allocation slack does for the real pass.
func Program(r *RNG) *Prog {
	shape := r.Intn(5)
	n := int64(16 + r.Intn(112)) // outer trip count
	k := int64(2 + r.Intn(14))   // inner trip count
	m := int64(32 + r.Intn(224)) // data elements
	seed := r.Uint64()           // private stream for Init

	g := &Prog{}
	b := ir.NewBuilder(fmt.Sprintf("testkit.shape%d", shape))
	out := b.Alloc("out", 1, 8)
	g.Out = out

	// out[0] += v, the per-iteration checksum accumulation.
	accumulate := func(v ir.Value) {
		addr := b.Index(out, b.Const(0))
		b.StoreElem(out, b.Const(0), b.Add(b.Load(addr, 8), v))
	}

	switch shape {
	case 0: // direct stream: out += data[i]
		g.Shape = "direct"
		data := b.Alloc("data", n, 8)
		b.Loop("i", b.Const(0), b.Const(n), 1, func(iv ir.Value) {
			v := b.Named(b.LoadElem(data, iv), "direct")
			g.Load = v
			accumulate(v)
		})
		g.Init = func(a *mem.Arena) {
			ir2 := NewRNG(seed)
			fillRandom(a, data, ir2, 1<<32)
		}

	case 1: // single indirection: out += data[idx[i]]
		g.Shape = "indirect"
		idx := b.Alloc("idx", n, 8)
		data := b.Alloc("data", m, 8)
		b.Loop("i", b.Const(0), b.Const(n), 1, func(iv ir.Value) {
			j := b.LoadElem(idx, iv)
			v := b.Named(b.LoadElem(data, j), "indirect")
			g.Load = v
			accumulate(v)
		})
		g.Init = func(a *mem.Arena) {
			ir2 := NewRNG(seed)
			fillIndex(a, idx, ir2, m)
			fillRandom(a, data, ir2, 1<<32)
		}

	case 2: // nested: out += data[idx[i*k+j]] — both IVs in the slice
		g.Shape = "nested"
		idx := b.Alloc("idx", n*k, 8)
		data := b.Alloc("data", m, 8)
		kc := b.Const(k)
		b.Loop("i", b.Const(0), b.Const(n), 1, func(oi ir.Value) {
			b.Loop("j", b.Const(0), kc, 1, func(ji ir.Value) {
				t := b.Add(b.Mul(oi, kc), ji)
				u := b.LoadElem(idx, t)
				v := b.Named(b.LoadElem(data, u), "nested")
				g.Load = v
				accumulate(v)
			})
		})
		g.Init = func(a *mem.Arena) {
			ir2 := NewRNG(seed)
			fillIndex(a, idx, ir2, m)
			fillRandom(a, data, ir2, 1<<32)
		}

	case 3: // non-affine IV (iv' = 2·iv + 1), masked into range
		g.Shape = "nonaffine"
		np := powTwoAtLeast(n) // mask requires a power-of-two table
		idx := b.Alloc("idx", np, 8)
		data := b.Alloc("data", m, 8)
		mask := b.Const(np - 1)
		bound := b.Const(n * 4)
		b.LoopCustom("i", b.Const(1),
			func(iv ir.Value) ir.Value { return b.Add(b.Mul(iv, b.Const(2)), b.Const(1)) },
			func(next ir.Value) ir.Value { return b.Cmp(ir.PredLT, next, bound) },
			func(iv ir.Value) ir.Value { return b.Cmp(ir.PredLT, iv, bound) },
			func(iv ir.Value) {
				j := b.LoadElem(idx, b.And(iv, mask))
				v := b.Named(b.LoadElem(data, j), "nonaffine")
				g.Load = v
				accumulate(v)
			})
		g.Init = func(a *mem.Arena) {
			ir2 := NewRNG(seed)
			fillIndex(a, idx, ir2, m)
			fillRandom(a, data, ir2, 1<<32)
		}

	case 4: // double indirection: out += data[idx2[idx[i]]]
		g.Shape = "double"
		idx := b.Alloc("idx", n, 8)
		idx2 := b.Alloc("idx2", m, 8)
		data := b.Alloc("data", m, 8)
		b.Loop("i", b.Const(0), b.Const(n), 1, func(iv ir.Value) {
			j := b.LoadElem(idx, iv)
			u := b.LoadElem(idx2, j)
			v := b.Named(b.LoadElem(data, u), "double")
			g.Load = v
			accumulate(v)
		})
		g.Init = func(a *mem.Arena) {
			ir2 := NewRNG(seed)
			fillIndex(a, idx, ir2, m)
			fillIndex(a, idx2, ir2, m)
			fillRandom(a, data, ir2, 1<<32)
		}
	}

	// Slack absorbs the few past-the-end elements an outer-site sweep's
	// cloned address loads can touch (their values only feed prefetch
	// addresses, which the CPU bounds-checks and drops).
	b.Alloc("slack", 1024, 8)
	return finishProg(g, b)
}

func finishProg(g *Prog, b *ir.Builder) *Prog {
	g.P = b.Finish()
	if err := g.P.Func.Validate(); err != nil {
		// A generator bug, not an input property: fail loudly.
		panic("testkit: generated invalid program: " + err.Error())
	}
	return g
}

func powTwoAtLeast(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// fillIndex fills arr with values in [0, bound).
func fillIndex(a *mem.Arena, arr ir.Array, r *RNG, bound int64) {
	for i := int64(0); i < arr.Count; i++ {
		a.Write(arr.Addr(i), r.Int63n(bound), 8)
	}
}

// fillRandom fills arr with values in [0, bound) — kept small so a
// thousand-element checksum cannot overflow int64.
func fillRandom(a *mem.Arena, arr ir.Array, r *RNG, bound int64) {
	for i := int64(0); i < arr.Count; i++ {
		a.Write(arr.Addr(i), r.Int63n(bound), 8)
	}
}
