package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("want 100 results, got %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d out of order: got %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("job 3")
	e7 := errors.New("job 7")
	for _, workers := range []int{1, 4} {
		prev := SetMaxWorkers(workers)
		_, err := Map(10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, e3
			case 7:
				return 0, e7
			}
			return i, nil
		})
		SetMaxWorkers(prev)
		if err != e3 {
			t.Fatalf("workers=%d: want the lowest-index error, got %v", workers, err)
		}
	}
}

func TestSerialParallelIdentical(t *testing.T) {
	run := func(workers int) []string {
		prev := SetMaxWorkers(workers)
		defer SetMaxWorkers(prev)
		out, err := Map(64, func(i int) (string, error) {
			return fmt.Sprintf("job-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d differs: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestRunExecutesEveryJob(t *testing.T) {
	var n atomic.Int64
	if err := Run(250, func(i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 250 {
		t.Fatalf("want 250 jobs, ran %d", n.Load())
	}
}

func TestWorkersBounds(t *testing.T) {
	prev := SetMaxWorkers(0)
	defer SetMaxWorkers(prev)
	if w := Workers(1000); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default width should be GOMAXPROCS, got %d", w)
	}
	if w := Workers(2); w > 2 {
		t.Fatalf("width must not exceed job count, got %d", w)
	}
	SetMaxWorkers(3)
	if w := Workers(1000); w != 3 {
		t.Fatalf("override not honored, got %d", w)
	}
}

// TestMapNested exercises pools inside pools (the experiment sweeps nest
// app-level and distance-level fan-out) under the race detector.
func TestMapNested(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	got, err := Map(8, func(i int) (int64, error) {
		inner, err := Map(8, func(j int) (int64, error) {
			return int64(i * j), nil
		})
		if err != nil {
			return 0, err
		}
		var s int64
		for _, v := range inner {
			s += v
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := int64(i * 28); v != want {
			t.Fatalf("nested sum %d: want %d, got %d", i, want, v)
		}
	}
}
