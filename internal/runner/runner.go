// Package runner is the deterministic parallel execution engine behind
// the experiment sweeps. Every table/figure run is a set of independent
// deterministic simulations; runner fans them out over a worker pool and
// reassembles the results in job-index order, so the reduced output of a
// parallel run is byte-identical to a serial one. The pool width defaults
// to GOMAXPROCS and can be pinned (runner.SetMaxWorkers) — width 1
// degenerates to serial execution, which the determinism tests exploit.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the pool width; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// SetMaxWorkers pins the pool width for subsequent Map/Run calls and
// returns the previous setting. n <= 0 restores the GOMAXPROCS default.
// Width 1 forces serial execution (in job order) — results must be
// identical either way, so this is a testing/debugging knob, not a
// semantic switch.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the pool width used for n jobs: min(n, the SetMaxWorkers
// override or GOMAXPROCS).
func Workers(n int) int {
	w := int(maxWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs f(0), …, f(n-1) on the worker pool and returns the results in
// index order. Jobs must be independent; f is called from multiple
// goroutines. All jobs run even when one fails, and the returned error is
// the lowest-index failure — the same error a serial loop would report —
// so error behaviour is deterministic too.
func Map[T any](n int, f func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	if w := Workers(n); w == 1 {
		// Serial fast path: run in order, stop at the first error,
		// exactly like the pre-pool loops.
		for i := 0; i < n; i++ {
			r, err := f(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = f(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Run is Map for jobs that produce no value: it runs f(0), …, f(n-1) on
// the pool and returns the lowest-index error, if any.
func Run(n int, f func(int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, f(i)
	})
	return err
}
