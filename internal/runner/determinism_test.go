package runner_test

import (
	"fmt"
	"testing"

	"aptget/internal/runner"
	"aptget/internal/testkit"
)

// TestMapErrorDeterminismProperty: for random job counts and random
// failing subsets, Map must report the lowest-index failure at every
// worker width — the same error a serial loop would have returned, so a
// sweep's failure behaviour cannot depend on scheduling.
func TestMapErrorDeterminismProperty(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		r := testkit.NewRNG(seed)
		n := 1 + r.Intn(50)
		failing := make(map[int]bool)
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				failing[i] = true
			}
		}
		wantIdx := -1
		for i := 0; i < n; i++ {
			if failing[i] {
				wantIdx = i
				break
			}
		}
		var wantResults []int
		if wantIdx == -1 {
			for i := 0; i < n; i++ {
				wantResults = append(wantResults, i*i)
			}
		}
		for _, workers := range []int{1, 2, 4, 8, 16} {
			prev := runner.SetMaxWorkers(workers)
			out, err := runner.Map(n, func(i int) (int, error) {
				if failing[i] {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i * i, nil
			})
			runner.SetMaxWorkers(prev)
			if wantIdx == -1 {
				if err != nil {
					t.Fatalf("seed %d workers %d: unexpected error %v", seed, workers, err)
				}
				for i := range wantResults {
					if out[i] != wantResults[i] {
						t.Fatalf("seed %d workers %d: result %d = %d, want %d",
							seed, workers, i, out[i], wantResults[i])
					}
				}
				continue
			}
			want := fmt.Sprintf("job %d failed", wantIdx)
			if err == nil || err.Error() != want {
				t.Fatalf("seed %d workers %d: error %v, want %q (lowest failing index)",
					seed, workers, err, want)
			}
		}
	}
}
