package mem

import "testing"

// TestStrideDegreeOneCoversNextAccess: a degree-1 prefetcher must fetch
// the *next* element of the stream (addr+stride). Pre-fix it fired at
// stride*(k+1), so degree 1 fetched addr+2*stride and the very next
// access missed forever — overstating the benefit of software
// prefetching against the hardware baseline.
func TestStrideDegreeOneCoversNextAccess(t *testing.T) {
	p := newStridePrefetcher(1)
	const pc, stride = 0x40, int64(64)
	var addr int64
	var fired []int64
	for i := 0; i < 8; i++ {
		fired = p.observe(pc, addr)
		addr += stride
	}
	if len(fired) != 1 {
		t.Fatalf("degree-1 prefetcher fired %d targets, want 1", len(fired))
	}
	// After observing addr, the next demand access is addr+stride.
	last := addr - stride
	if fired[0] != last+stride {
		t.Fatalf("degree-1 target = %d, want next access %d (addr %d + stride %d)",
			fired[0], last+stride, last, stride)
	}
}

// TestStrideDegreeNCoversWindow: degree d covers exactly the next d
// accesses, addr+stride .. addr+stride*d.
func TestStrideDegreeNCoversWindow(t *testing.T) {
	p := newStridePrefetcher(4)
	const pc, stride = 0x80, int64(8)
	var addr int64
	var fired []int64
	for i := 0; i < 8; i++ {
		fired = p.observe(pc, addr)
		addr += stride
	}
	last := addr - stride
	if len(fired) != 4 {
		t.Fatalf("degree-4 prefetcher fired %d targets, want 4", len(fired))
	}
	for k, target := range fired {
		want := last + stride*int64(k+1)
		if target != want {
			t.Fatalf("target %d = %d, want %d", k, target, want)
		}
	}
}
