package mem

import "strings"

// Kind classifies a memory request.
type Kind uint8

// Request kinds.
const (
	KindLoad Kind = iota
	KindStore
	KindSWPrefetch
	KindHWPrefetch
)

func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindSWPrefetch:
		return "sw-prefetch"
	case KindHWPrefetch:
		return "hw-prefetch"
	}
	return "?"
}

// Result describes the outcome of a demand access.
type Result struct {
	Latency uint64 // cycles the core stalls for this access
	Served  Level  // who provided the data
	FBHit   bool   // demand found the line in a fill buffer (in flight)
	FBHitSW bool   // ...and the fill was initiated by a software prefetch (late prefetch)
	// LLCMiss marks a demand load the PEBS LLC-miss event attributes: a
	// blocking miss served by DRAM, or a fill-buffer hit on an in-flight
	// DRAM fill that a *demand or software prefetch* started (a late
	// prefetch — the load still exposes the residual wait, an order of
	// magnitude less than the full latency, which is exactly the signal
	// 2-D delinquent-load selection needs). Fill-buffer hits on
	// *hardware-prefetch* fills are excluded: on real hardware those
	// retire as MEM_LOAD_RETIRED.FB_HIT, not L3_MISS, which is why
	// streams the hardware prefetcher already covers never surface in an
	// L3-miss profile (the paper's hw-covered inputs are not selected).
	LLCMiss bool
}

// mshrEntry is one in-flight fill (line fill buffer / miss status holding
// register).
type mshrEntry struct {
	line  int64
	ready uint64 // cycle at which the fill completes
	sw    bool   // fill initiated by software prefetch
	hw    bool   // fill initiated by hardware prefetch
	toL1  bool   // install into L1 on completion (SW prefetch / demand); HW prefetch fills stop at L2
	used  bool
	dram  bool // fill sourced from DRAM (vs an L2→L1 promotion): a demand hit on it is an LLC miss
}

// Stats aggregates the PMU-visible memory counters. Counter names follow
// the events the paper reads with perf stat (§2.3, §4.4).
type Stats struct {
	DemandAccesses uint64 // loads + stores reaching the hierarchy
	Hits           [levelCount]uint64

	// Offcore read requests (everything that misses L2), by flavor —
	// offcore_requests.all_data_rd is the sum, demand_data_rd the first.
	OffcoreDemand     uint64
	OffcoreSWPrefetch uint64
	OffcoreHWPrefetch uint64

	// LOAD_HIT_PRE.SW_PF: demand hit an in-flight software prefetch.
	FBHitSWPrefetch uint64
	// Demand hit an in-flight fill of any kind.
	FBHitAny uint64

	SWPrefetchIssued      uint64
	SWPrefetchCacheHit    uint64 // useless: line already present
	SWPrefetchMerged      uint64 // line already in flight
	SWPrefetchDroppedFull uint64 // no free fill buffer
	HWPrefetchIssued      uint64

	// Lines installed by a SW prefetch and evicted from L1 untouched:
	// the paper's "too early" prefetches.
	SWPrefetchUnusedEvicted uint64

	// Demand stall cycles attributed to the level that served the access
	// (Figure 5's L3/DRAM-bound breakdown).
	StallCycles [levelCount]uint64
}

// OffcoreAll returns offcore_requests.all_data_rd: requests issued by
// the *core* that left L2 — demand reads plus software prefetches. L2
// hardware-prefetcher requests are issued by the cache, not the core,
// and are excluded, matching the Intel event the paper reads.
func (s *Stats) OffcoreAll() uint64 {
	return s.OffcoreDemand + s.OffcoreSWPrefetch
}

// PrefetchAccuracy computes the paper's §2.3 metric:
// (all_data_rd − demand_data_rd) / all_data_rd.
func (s *Stats) PrefetchAccuracy() float64 {
	all := s.OffcoreAll()
	if all == 0 {
		return 0
	}
	return float64(all-s.OffcoreDemand) / float64(all)
}

// Export adds every memory-system counter to m under stable snake_case
// keys — the mem half of the observability layer's PMU export.
func (s *Stats) Export(m map[string]int64) {
	m["mem_demand_accesses"] = int64(s.DemandAccesses)
	for l := LevelL1; l < levelCount; l++ {
		name := strings.ToLower(l.String())
		m["mem_hits_"+name] = int64(s.Hits[l])
		m["mem_stall_cycles_"+name] = int64(s.StallCycles[l])
	}
	m["offcore_demand"] = int64(s.OffcoreDemand)
	m["offcore_sw_prefetch"] = int64(s.OffcoreSWPrefetch)
	m["offcore_hw_prefetch"] = int64(s.OffcoreHWPrefetch)
	m["fb_hit_sw_prefetch"] = int64(s.FBHitSWPrefetch)
	m["fb_hit_any"] = int64(s.FBHitAny)
	m["swpf_issued"] = int64(s.SWPrefetchIssued)
	m["swpf_cache_hit"] = int64(s.SWPrefetchCacheHit)
	m["swpf_merged"] = int64(s.SWPrefetchMerged)
	m["swpf_dropped_full"] = int64(s.SWPrefetchDroppedFull)
	m["swpf_unused_evicted"] = int64(s.SWPrefetchUnusedEvicted)
	m["hwpf_issued"] = int64(s.HWPrefetchIssued)
}

// Hierarchy is the complete simulated memory system.
type Hierarchy struct {
	Cfg   Config
	Arena *Arena
	Stats Stats

	l1, l2, llc *cache
	mshr        []mshrEntry

	dramNextFree uint64

	stride *stridePrefetcher
}

// New builds a hierarchy over an arena of the given size. It panics on a
// malformed machine model (see Config.Validate): a misconfigured
// hierarchy must fail loudly, not simulate a silently smaller cache.
func New(cfg Config, arenaSize int64) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	h := &Hierarchy{
		Cfg:   cfg,
		Arena: NewArena(arenaSize),
		l1:    newCache(cfg.L1),
		l2:    newCache(cfg.L2),
		llc:   newCache(cfg.LLC),
		mshr:  make([]mshrEntry, 0, cfg.FillBuffers),
	}
	if cfg.StridePrefetcher {
		h.stride = newStridePrefetcher(cfg.StrideDegree)
	}
	return h
}

// Release recycles the hierarchy's arena for a later run of the same
// memory size. Call it only when nothing reads the arena anymore — the
// Arena pointer is nilled so a late access fails loudly instead of
// observing another run's memory.
func (h *Hierarchy) Release() {
	if h == nil || h.Arena == nil {
		return
	}
	h.Arena.Recycle()
	h.Arena = nil
}

func lineOf(addr int64) int64 { return addr >> lineShift }

// drain completes every fill whose ready time has passed, installing lines
// into the caches. Callers on the hot path skip the call entirely when no
// fills are in flight (the common case for demand-dominated phases).
func (h *Hierarchy) drain(now uint64) {
	if len(h.mshr) == 0 {
		return
	}
	kept := h.mshr[:0]
	for _, e := range h.mshr {
		if e.ready <= now {
			h.installFill(e)
		} else {
			kept = append(kept, e)
		}
	}
	h.mshr = kept
}

func (h *Hierarchy) installFill(e mshrEntry) {
	byPref := e.sw || e.hw
	if e.toL1 {
		ev := h.l1.install(e.line, byPref, e.sw)
		if ev.swPrefUnused {
			h.Stats.SWPrefetchUnusedEvicted++
		}
		h.l2.install(e.line, byPref, e.sw)
	} else {
		h.l2.install(e.line, byPref, e.sw)
	}
	h.llc.install(e.line, byPref, e.sw)
}

func (h *Hierarchy) findMSHR(line int64) *mshrEntry {
	for i := range h.mshr {
		if h.mshr[i].line == line {
			return &h.mshr[i]
		}
	}
	return nil
}

// dramRequest schedules a DRAM access respecting the bandwidth gap and
// returns the completion cycle.
func (h *Hierarchy) dramRequest(now uint64) uint64 {
	start := now
	if h.dramNextFree > start {
		start = h.dramNextFree
	}
	h.dramNextFree = start + h.Cfg.DRAMGap
	return start + h.Cfg.DRAMLatency
}

// probeBeyondL1 determines which level beyond L1 holds the line, charging
// offcore counters, and returns (level, completion cycle of the fill).
// The line is *not* installed; the caller decides where it lands.
func (h *Hierarchy) probeBeyondL1(now uint64, line int64, kind Kind) (Level, uint64) {
	if h.l2.lookup(line, kind == KindLoad || kind == KindStore) != nil {
		return LevelL2, now + h.Cfg.L2.Latency
	}
	// L2 miss: offcore request.
	switch kind {
	case KindLoad, KindStore:
		h.Stats.OffcoreDemand++
	case KindSWPrefetch:
		h.Stats.OffcoreSWPrefetch++
	case KindHWPrefetch:
		h.Stats.OffcoreHWPrefetch++
	}
	if h.llc.lookup(line, kind == KindLoad || kind == KindStore) != nil {
		return LevelLLC, now + h.Cfg.LLC.Latency
	}
	return LevelDRAM, h.dramRequest(now)
}

// Access performs a memory request at the given cycle. pc is the address
// of the requesting instruction (used by the IP-stride prefetcher and by
// profiling). For prefetch kinds the returned latency is the fixed issue
// cost; the fill completes asynchronously.
func (h *Hierarchy) Access(now uint64, pc uint64, addr int64, kind Kind) Result {
	if len(h.mshr) != 0 {
		h.drain(now)
	}
	line := lineOf(addr)

	switch kind {
	case KindSWPrefetch, KindHWPrefetch:
		return h.prefetch(now, line, kind)
	}

	// Demand load or store.
	h.Stats.DemandAccesses++
	if kind == KindLoad && h.stride != nil {
		h.trainStride(now, pc, addr)
	}

	if h.l1.lookup(line, true) != nil {
		h.Stats.Hits[LevelL1]++
		h.Stats.StallCycles[LevelL1] += h.Cfg.L1.Latency
		return Result{Latency: h.Cfg.L1.Latency, Served: LevelL1}
	}

	if e := h.findMSHR(line); e != nil {
		// In flight: wait for the residual fill time.
		wait := e.ready - now
		res := Result{
			Latency: wait + h.Cfg.L1.Latency,
			Served:  LevelFB,
			FBHit:   true,
			FBHitSW: e.sw,
			LLCMiss: e.dram && !e.hw,
		}
		h.Stats.Hits[LevelFB]++
		h.Stats.FBHitAny++
		if e.sw {
			h.Stats.FBHitSWPrefetch++
		}
		h.Stats.StallCycles[LevelFB] += res.Latency
		e.used = true
		e.toL1 = true
		// The demand consumed the fill: complete it now.
		h.installFill(*e)
		h.removeMSHR(line)
		return res
	}

	served, done := h.probeBeyondL1(now, line, kind)
	lat := done - now
	h.Stats.Hits[served]++
	h.Stats.StallCycles[served] += lat
	// The core blocks on demand misses, so the fill is complete by the
	// time execution resumes: install immediately.
	h.installFill(mshrEntry{line: line, toL1: true})

	if served == LevelDRAM && h.Cfg.NextLinePrefetcher {
		h.nextLine(now, line)
	}
	return Result{Latency: lat, Served: served, LLCMiss: served == LevelDRAM}
}

func (h *Hierarchy) removeMSHR(line int64) {
	for i := range h.mshr {
		if h.mshr[i].line == line {
			h.mshr = append(h.mshr[:i], h.mshr[i+1:]...)
			return
		}
	}
}

// prefetch handles SW and HW prefetch requests.
func (h *Hierarchy) prefetch(now uint64, line int64, kind Kind) Result {
	sw := kind == KindSWPrefetch
	if sw {
		h.Stats.SWPrefetchIssued++
	} else {
		h.Stats.HWPrefetchIssued++
	}

	if sw && h.l1.lookup(line, false) != nil {
		h.Stats.SWPrefetchCacheHit++
		return Result{Latency: 1, Served: LevelL1}
	}
	if !sw && h.l2.lookup(line, false) != nil {
		return Result{Latency: 0, Served: LevelL2}
	}
	if h.findMSHR(line) != nil {
		if sw {
			h.Stats.SWPrefetchMerged++
		}
		return Result{Latency: 1, Served: LevelFB}
	}
	if len(h.mshr) >= h.Cfg.FillBuffers {
		if sw {
			h.Stats.SWPrefetchDroppedFull++
		}
		return Result{Latency: 1, Served: LevelFB}
	}

	served, done := h.probeBeyondL1(now, line, kind)
	if served == LevelL2 && sw {
		// Promote to L1 asynchronously.
		h.mshr = append(h.mshr, mshrEntry{line: line, ready: done, sw: true, toL1: true})
		return Result{Latency: 1, Served: served}
	}
	if served == LevelL2 {
		return Result{Latency: 0, Served: served}
	}
	h.mshr = append(h.mshr, mshrEntry{
		line: line, ready: done,
		sw: sw, hw: !sw,
		toL1: sw, // SW prefetch targets L1 (prefetcht0); HW fills stop at L2
		dram: served == LevelDRAM,
	})
	return Result{Latency: 1, Served: served}
}

// trainStride updates the IP-stride predictor and issues HW prefetches.
func (h *Hierarchy) trainStride(now uint64, pc uint64, addr int64) {
	for _, target := range h.stride.observe(pc, addr) {
		h.prefetch(now, lineOf(target), KindHWPrefetch)
	}
}

// nextLine issues the L2 next-line prefetch.
func (h *Hierarchy) nextLine(now uint64, line int64) {
	h.prefetch(now, line+1, KindHWPrefetch)
}

// Flush drops all cached lines and in-flight fills (between experiment
// phases). Statistics are preserved.
func (h *Hierarchy) Flush() {
	h.l1 = newCache(h.Cfg.L1)
	h.l2 = newCache(h.Cfg.L2)
	h.llc = newCache(h.Cfg.LLC)
	h.mshr = h.mshr[:0]
	h.dramNextFree = 0
}

// ResetStats zeroes the counters (after warmup).
func (h *Hierarchy) ResetStats() { h.Stats = Stats{} }

// InFlight returns the number of occupied fill buffers (tests).
func (h *Hierarchy) InFlight() int { return len(h.mshr) }

// L1Contains reports whether the line holding addr is in L1 (tests).
func (h *Hierarchy) L1Contains(addr int64) bool { return h.l1.contains(lineOf(addr)) }

// L2Contains reports whether the line holding addr is in L2 (tests).
func (h *Hierarchy) L2Contains(addr int64) bool { return h.l2.contains(lineOf(addr)) }
