package mem

// stridePrefetcher is an IP-indexed stride predictor in the style of the
// L1/L2 streamers on commodity Intel cores. It detects constant-stride
// access streams per load PC and, once confident, prefetches a small
// number of lines ahead. Indirect accesses (A[B[i]]) produce effectively
// random strides and never train it — which is exactly why the paper's
// workloads need software prefetching.
type stridePrefetcher struct {
	degree  int
	entries map[uint64]*strideEntry
}

type strideEntry struct {
	lastAddr   int64
	stride     int64
	confidence int
}

const (
	strideConfidenceMax   = 4
	strideConfidenceFire  = 2
	strideTableMaxEntries = 256
)

func newStridePrefetcher(degree int) *stridePrefetcher {
	if degree < 1 {
		degree = 1
	}
	return &stridePrefetcher{degree: degree, entries: make(map[uint64]*strideEntry)}
}

// observe records a demand load and returns the addresses to prefetch.
func (p *stridePrefetcher) observe(pc uint64, addr int64) []int64 {
	e := p.entries[pc]
	if e == nil {
		if len(p.entries) >= strideTableMaxEntries {
			// Cheap, deterministic eviction: clear the table. Real
			// hardware uses set-indexed tables; for our workloads (few
			// hot loads) this path is almost never taken.
			p.entries = make(map[uint64]*strideEntry)
		}
		p.entries[pc] = &strideEntry{lastAddr: addr}
		return nil
	}
	stride := addr - e.lastAddr
	e.lastAddr = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < strideConfidenceMax {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
		return nil
	}
	if e.confidence < strideConfidenceFire {
		return nil
	}
	// Degree d covers the next d accesses of the stream: addr+stride
	// through addr+stride*d. Firing at stride*(k+1) would leave the very
	// next access (addr+stride) permanently uncovered.
	targets := make([]int64, 0, p.degree)
	for k := 1; k <= p.degree; k++ {
		t := addr + stride*int64(k)
		if t >= 0 {
			targets = append(targets, t)
		}
	}
	return targets
}
