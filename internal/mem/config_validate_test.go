package mem

import (
	"strings"
	"testing"
)

func TestLevelConfigValidate(t *testing.T) {
	good := LevelConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("64-set level should validate: %v", err)
	}
	// 24 KiB / 64 B / 8 ways = 48 sets: not a power of two.
	bad := LevelConfig{SizeBytes: 24 << 10, Ways: 8, Latency: 4}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("48-set level should fail loudly, got %v", err)
	}
	if err := (LevelConfig{}).Validate(); err == nil {
		t.Fatal("zero level should not validate")
	}
	if err := (LevelConfig{SizeBytes: LineSize, Ways: 2}).Validate(); err == nil {
		t.Fatal("level smaller than ways*line should not validate")
	}
}

func TestConfigValidateBuiltins(t *testing.T) {
	for _, c := range []Config{ConfigScaled(), ConfigXeon5218(), ConfigTiny()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("built-in config %s should validate: %v", c.Name, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	c := ConfigScaled()
	c.LLC.Ways = 3 // 512 KiB / 64 B / 3 ways: not a power of two
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "LLC") {
		t.Fatalf("want an LLC validation error, got %v", err)
	}
	c = ConfigScaled()
	c.FillBuffers = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero fill buffers should not validate")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mem.New must panic on a non-power-of-two set count")
		}
	}()
	c := ConfigTiny()
	c.L2.SizeBytes = 24 * LineSize // 6 sets with 4 ways
	New(c, 1<<12)
}
