package mem_test

import (
	"testing"

	"aptget/internal/mem"
	"aptget/internal/testkit"
)

// FuzzCacheHier drives the hierarchy with an arbitrary access mix —
// negative addresses, stores, software prefetches, bursty clocks — and
// checks the structural invariants: no panic, fill-buffer occupancy
// never exceeds the configured count, every demand access is accounted
// to exactly one level, and demand latencies are sane.
func FuzzCacheHier(f *testing.F) {
	f.Add(uint64(1), uint(200))
	f.Add(uint64(0), uint(0))
	f.Add(uint64(1234567), uint(4000))
	f.Fuzz(func(t *testing.T, seed uint64, n uint) {
		r := testkit.NewRNG(seed)
		cfg := mem.ConfigTiny()
		h := mem.New(cfg, 1<<20)
		var now, demands uint64
		err := testkit.NoPanic(func() {
			for i := 0; i < int(n%4096); i++ {
				now += uint64(r.Intn(50))
				addr := int64(r.Uint64() % (1 << 22))
				if r.Intn(8) == 0 {
					addr = -addr
				}
				pc := uint64(r.Intn(16) * 4)
				kind := mem.Kind(r.Intn(2))
				if r.Intn(5) == 0 {
					kind = mem.KindSWPrefetch
				}
				res := h.Access(now, pc, addr, kind)
				if kind == mem.KindLoad || kind == mem.KindStore {
					demands++
					if res.Latency < 1 || res.Latency > 1_000_000 {
						panic("demand latency out of range")
					}
				}
				if h.InFlight() > cfg.FillBuffers {
					panic("fill-buffer occupancy exceeds FillBuffers")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if h.Stats.DemandAccesses != demands {
			t.Fatalf("DemandAccesses = %d, want %d", h.Stats.DemandAccesses, demands)
		}
		var hits uint64
		for _, c := range h.Stats.Hits {
			hits += c
		}
		if hits != demands {
			t.Fatalf("sum(Hits) = %d, want %d (every demand must be served by exactly one level)",
				hits, demands)
		}
	})
}
