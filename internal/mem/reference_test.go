package mem

import (
	"math/rand"
	"testing"
)

// refCache is a trivial fully-correct model of one set-associative LRU
// cache: a map from set to an ordered slice (MRU first).
type refCache struct {
	sets map[int64][]int64
	mask int64
	ways int
}

func newRefCache(lc LevelConfig) *refCache {
	n := lc.Sets()
	for n&(n-1) != 0 {
		n--
	}
	return &refCache{sets: make(map[int64][]int64), mask: int64(n - 1), ways: lc.Ways}
}

func (r *refCache) lookup(line int64) bool {
	s := r.sets[line&r.mask]
	for i, l := range s {
		if l == line {
			// Move to front.
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	return false
}

func (r *refCache) install(line int64) {
	key := line & r.mask
	if r.lookup(line) {
		return
	}
	s := r.sets[key]
	s = append([]int64{line}, s...)
	if len(s) > r.ways {
		s = s[:r.ways]
	}
	r.sets[key] = s
}

// TestCacheMatchesReferenceModel drives the production cache and the
// reference model with the same random operation stream and requires
// identical hit/miss behaviour throughout.
func TestCacheMatchesReferenceModel(t *testing.T) {
	lc := LevelConfig{SizeBytes: 16 * LineSize, Ways: 4, Latency: 1}
	for seed := int64(0); seed < 10; seed++ {
		c := newCache(lc)
		ref := newRefCache(lc)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 5000; op++ {
			line := rng.Int63n(64)
			switch rng.Intn(2) {
			case 0:
				got := c.lookup(line, true) != nil
				want := ref.lookup(line)
				if got != want {
					t.Fatalf("seed %d op %d: lookup(%d) = %v, ref %v", seed, op, line, got, want)
				}
			case 1:
				c.install(line, false, false)
				ref.install(line)
			}
		}
	}
}

// TestHierarchyInclusionAfterDemand verifies that a demand-loaded line is
// visible at L1 and L2 immediately after the access.
func TestHierarchyInclusionAfterDemand(t *testing.T) {
	h := New(ConfigScaled(), 1<<20)
	for i := int64(0); i < 32; i++ {
		addr := i * 4096
		h.Access(uint64(i)*300, 1, addr, KindLoad)
		if !h.L1Contains(addr) || !h.L2Contains(addr) {
			t.Fatalf("line %d not installed through the hierarchy", i)
		}
	}
}

// TestDeterministicAccessStream replays an access stream twice and
// requires identical statistics.
func TestDeterministicAccessStream(t *testing.T) {
	run := func() Stats {
		h := New(ConfigScaled(), 1<<22)
		rng := rand.New(rand.NewSource(77))
		now := uint64(0)
		for i := 0; i < 20000; i++ {
			addr := rng.Int63n(1 << 21)
			kind := KindLoad
			switch rng.Intn(10) {
			case 0:
				kind = KindStore
			case 1:
				kind = KindSWPrefetch
			}
			r := h.Access(now, uint64(rng.Intn(50)), addr, kind)
			now += r.Latency + 1
		}
		return h.Stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("memory system not deterministic:\n%+v\n%+v", a, b)
	}
}
