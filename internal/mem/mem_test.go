package mem

import (
	"testing"
	"testing/quick"
)

func TestArenaReadWriteRoundTrip(t *testing.T) {
	a := NewArena(1 << 12)
	cases := []struct {
		addr int64
		val  int64
		size uint8
	}{
		{0, 0x7f, 1}, {1, -1, 1}, {8, -12345, 2}, {16, 0x7fffffff, 4},
		{24, -2147483648, 4}, {32, 1<<62 - 3, 8}, {40, -(1 << 60), 8},
	}
	for _, c := range cases {
		a.Write(c.addr, c.val, c.size)
		if got := a.Read(c.addr, c.size); got != c.val {
			t.Fatalf("size %d: wrote %d read %d", c.size, c.val, got)
		}
	}
}

func TestArenaSignExtension(t *testing.T) {
	a := NewArena(64)
	a.Write(0, 0xff, 1)
	if got := a.Read(0, 1); got != -1 {
		t.Fatalf("int8 0xff should read -1, got %d", got)
	}
	a.Write(8, 0xffff, 2)
	if got := a.Read(8, 2); got != -1 {
		t.Fatalf("int16 0xffff should read -1, got %d", got)
	}
	a.Write(16, 0xffffffff, 4)
	if got := a.Read(16, 4); got != -1 {
		t.Fatalf("int32 should read -1, got %d", got)
	}
}

func TestArenaRoundTripQuick(t *testing.T) {
	a := NewArena(1 << 10)
	if err := quick.Check(func(off uint16, v int64) bool {
		addr := int64(off % 1000)
		a.Write(addr, v, 8)
		return a.Read(addr, 8) == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArenaOutOfRangePanics(t *testing.T) {
	a := NewArena(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	a.Read(63, 8)
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(LevelConfig{SizeBytes: 2 * LineSize, Ways: 2, Latency: 1})
	// One set, two ways. Lines 0,2,4 map to set 0 (mask 0).
	c.install(0, false, false)
	c.install(2, false, false)
	c.lookup(0, true) // 0 becomes MRU
	ev := c.install(4, false, false)
	if !ev.valid || ev.line != 2 {
		t.Fatalf("expected eviction of line 2, got %+v", ev)
	}
	if !c.contains(0) || !c.contains(4) || c.contains(2) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestCachePrefetchUnusedEvictionFlag(t *testing.T) {
	c := newCache(LevelConfig{SizeBytes: 2 * LineSize, Ways: 2, Latency: 1})
	c.install(0, true, true) // SW prefetch, never touched
	c.install(2, false, false)
	c.lookup(2, true)
	ev := c.install(4, false, false) // evicts line 0
	if !ev.swPrefUnused || !ev.prefetchUnused {
		t.Fatalf("untouched prefetched line should flag unused eviction: %+v", ev)
	}
	// Now a touched prefetched line must not flag.
	c2 := newCache(LevelConfig{SizeBytes: 2 * LineSize, Ways: 2, Latency: 1})
	c2.install(0, true, true)
	c2.lookup(0, true)
	c2.install(2, false, false)
	c2.lookup(2, true)
	ev = c2.install(4, false, false)
	if ev.swPrefUnused {
		t.Fatalf("touched prefetched line must not count as unused: %+v", ev)
	}
}

func TestCacheInstallIdempotent(t *testing.T) {
	c := newCache(LevelConfig{SizeBytes: 4 * LineSize, Ways: 4, Latency: 1})
	c.install(7, false, false)
	c.install(7, false, false)
	if got := c.countValid(); got != 1 {
		t.Fatalf("duplicate install should not duplicate line: %d valid", got)
	}
}

func TestHierarchyHitLatencies(t *testing.T) {
	cfg := ConfigTiny()
	h := New(cfg, 1<<16)
	// First access: DRAM.
	r := h.Access(0, 1, 0x1000, KindLoad)
	if r.Served != LevelDRAM || r.Latency < cfg.DRAMLatency {
		t.Fatalf("cold access should be DRAM: %+v", r)
	}
	// Second: L1.
	r = h.Access(1000, 1, 0x1008, KindLoad) // same line
	if r.Served != LevelL1 || r.Latency != cfg.L1.Latency {
		t.Fatalf("second access should hit L1: %+v", r)
	}
}

func TestHierarchyLevelsServeAfterL1Eviction(t *testing.T) {
	cfg := ConfigTiny() // L1: 4 lines (2 sets x 2 ways)
	h := New(cfg, 1<<20)
	now := uint64(0)
	// Touch lines 0..7 of set 0 (stride = 2 lines * 64B... compute set:
	// tiny L1 has 2 sets, so even lines map to set 0).
	for i := 0; i < 8; i++ {
		r := h.Access(now, 1, int64(i)*4*LineSize, KindLoad)
		now += r.Latency + 1
	}
	// Line 0 has been evicted from L1 but lives in L2 or LLC.
	r := h.Access(now, 1, 0, KindLoad)
	if r.Served != LevelL2 && r.Served != LevelLLC {
		t.Fatalf("expected L2/LLC hit after L1 eviction, got %v", r.Served)
	}
}

func TestSWPrefetchTimelyAvoidsMiss(t *testing.T) {
	cfg := ConfigTiny()
	h := New(cfg, 1<<16)
	addr := int64(0x2000)
	r := h.Access(0, 9, addr, KindSWPrefetch)
	if r.Latency != 1 {
		t.Fatalf("prefetch issue cost should be 1 cycle, got %d", r.Latency)
	}
	if h.InFlight() != 1 {
		t.Fatal("prefetch should allocate a fill buffer")
	}
	// Demand long after the fill completes: an L1 hit.
	r = h.Access(cfg.DRAMLatency+100, 1, addr, KindLoad)
	if r.Served != LevelL1 {
		t.Fatalf("timely prefetch should yield L1 hit, got %v (lat %d)", r.Served, r.Latency)
	}
	if h.Stats.FBHitSWPrefetch != 0 {
		t.Fatal("timely prefetch must not count as late")
	}
}

func TestSWPrefetchLateCountsLoadHitPre(t *testing.T) {
	cfg := ConfigTiny()
	h := New(cfg, 1<<16)
	addr := int64(0x3000)
	h.Access(0, 9, addr, KindSWPrefetch)
	// Demand arrives halfway through the fill.
	half := cfg.DRAMLatency / 2
	r := h.Access(half, 1, addr, KindLoad)
	if !r.FBHit || !r.FBHitSW {
		t.Fatalf("late prefetch should be a fill-buffer hit: %+v", r)
	}
	if r.Latency >= cfg.DRAMLatency {
		t.Fatalf("late prefetch should still hide part of the latency: %d", r.Latency)
	}
	if h.Stats.FBHitSWPrefetch != 1 {
		t.Fatalf("LOAD_HIT_PRE.SW_PF = %d, want 1", h.Stats.FBHitSWPrefetch)
	}
}

func TestSWPrefetchTooEarlyEvictedUnused(t *testing.T) {
	cfg := ConfigTiny() // L1 holds 4 lines
	h := New(cfg, 1<<20)
	target := int64(0)
	h.Access(0, 9, target, KindSWPrefetch)
	now := cfg.DRAMLatency + 10
	// Flood L1 set 0 with demand lines so the prefetched line is evicted
	// before use.
	for i := 1; i <= 4; i++ {
		r := h.Access(now, 1, int64(i)*2*LineSize*2, KindLoad)
		now += r.Latency + 1
	}
	if h.Stats.SWPrefetchUnusedEvicted == 0 {
		t.Fatal("too-early prefetch should be evicted unused")
	}
}

func TestPrefetchDroppedWhenFillBuffersFull(t *testing.T) {
	cfg := ConfigTiny() // 4 fill buffers
	h := New(cfg, 1<<20)
	for i := 0; i < 6; i++ {
		h.Access(0, 9, int64(i)*LineSize*8, KindSWPrefetch)
	}
	if h.InFlight() != cfg.FillBuffers {
		t.Fatalf("in-flight %d, want cap %d", h.InFlight(), cfg.FillBuffers)
	}
	if h.Stats.SWPrefetchDroppedFull != 2 {
		t.Fatalf("dropped %d, want 2", h.Stats.SWPrefetchDroppedFull)
	}
}

func TestPrefetchMergedWhenAlreadyInFlight(t *testing.T) {
	h := New(ConfigTiny(), 1<<16)
	h.Access(0, 9, 0x4000, KindSWPrefetch)
	h.Access(1, 9, 0x4000, KindSWPrefetch)
	if h.Stats.SWPrefetchMerged != 1 {
		t.Fatalf("merged = %d, want 1", h.Stats.SWPrefetchMerged)
	}
	if h.InFlight() != 1 {
		t.Fatal("merge must not allocate a second buffer")
	}
}

func TestPrefetchOfCachedLineIsUseless(t *testing.T) {
	h := New(ConfigTiny(), 1<<16)
	h.Access(0, 1, 0x5000, KindLoad)
	h.Access(500, 9, 0x5000, KindSWPrefetch)
	if h.Stats.SWPrefetchCacheHit != 1 {
		t.Fatalf("cache-hit prefetch count = %d, want 1", h.Stats.SWPrefetchCacheHit)
	}
}

func TestOffcoreCountersAndAccuracy(t *testing.T) {
	h := New(ConfigTiny(), 1<<20)
	// 2 demand misses to DRAM + 2 SW prefetches to DRAM.
	h.Access(0, 1, 0*4096, KindLoad)
	h.Access(300, 1, 1*4096, KindLoad)
	h.Access(600, 9, 2*4096, KindSWPrefetch)
	h.Access(601, 9, 3*4096, KindSWPrefetch)
	if h.Stats.OffcoreDemand != 2 || h.Stats.OffcoreSWPrefetch != 2 {
		t.Fatalf("offcore demand=%d sw=%d, want 2/2",
			h.Stats.OffcoreDemand, h.Stats.OffcoreSWPrefetch)
	}
	if acc := h.Stats.PrefetchAccuracy(); acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", acc)
	}
}

func TestDRAMBandwidthGapSerializes(t *testing.T) {
	cfg := ConfigTiny()
	h := New(cfg, 1<<20)
	// Two prefetches issued the same cycle: the second completes at least
	// DRAMGap later.
	h.Access(0, 9, 0x8000, KindSWPrefetch)
	h.Access(0, 9, 0x9000, KindSWPrefetch)
	if h.InFlight() != 2 {
		t.Fatal("both prefetches should be in flight")
	}
	// Demand on the second line just after the first fill completes:
	// it must still be waiting (gap delayed its start).
	r := h.Access(cfg.DRAMLatency+1, 1, 0x9000, KindLoad)
	if !r.FBHit {
		t.Fatalf("second fill should still be in flight: %+v", r)
	}
}

func TestStridePrefetcherDetectsStream(t *testing.T) {
	p := newStridePrefetcher(2)
	var fired []int64
	for i := int64(0); i < 6; i++ {
		fired = p.observe(42, i*64)
	}
	if len(fired) != 2 {
		t.Fatalf("locked stride should fire %d targets, want 2", len(fired))
	}
	if fired[0] <= 5*64 {
		t.Fatalf("prefetch target should be ahead of the stream: %v", fired)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := newStridePrefetcher(2)
	addrs := []int64{0, 640, 64, 8192, 128, 4096}
	for _, a := range addrs {
		if got := p.observe(7, a); got != nil {
			t.Fatalf("random stream should never fire, got %v", got)
		}
	}
}

func TestStridePrefetcherEndToEnd(t *testing.T) {
	cfg := ConfigScaled()
	h := New(cfg, 1<<22)
	now := uint64(0)
	// Sequential walk: after training, most accesses should be covered.
	misses := 0
	for i := int64(0); i < 512; i++ {
		r := h.Access(now, 11, i*8, KindLoad)
		if r.Served == LevelDRAM {
			misses++
		}
		now += r.Latency + 2
	}
	// 512 loads cover 64 lines; without prefetching all 64 would miss.
	if misses >= 32 {
		t.Fatalf("stride prefetcher should cover a sequential walk: %d DRAM misses", misses)
	}
	if h.Stats.HWPrefetchIssued == 0 {
		t.Fatal("hardware prefetches should have been issued")
	}
}

func TestIndirectAccessesNotCoveredByHWPrefetch(t *testing.T) {
	cfg := ConfigScaled()
	h := New(cfg, 1<<24)
	now := uint64(0)
	// Pseudo-random line accesses from one PC: HW prefetcher should not
	// help; nearly all should go to DRAM.
	misses := 0
	x := uint64(12345)
	for i := 0; i < 256; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := int64(x % (1 << 23))
		r := h.Access(now, 13, addr, KindLoad)
		if r.Served == LevelDRAM {
			misses++
		}
		now += r.Latency + 2
	}
	if misses < 200 {
		t.Fatalf("random accesses should mostly miss, got %d/256", misses)
	}
}

func TestFlushDropsCachedState(t *testing.T) {
	h := New(ConfigTiny(), 1<<16)
	h.Access(0, 1, 0x100, KindLoad)
	if !h.L1Contains(0x100) {
		t.Fatal("line should be cached")
	}
	h.Flush()
	if h.L1Contains(0x100) || h.InFlight() != 0 {
		t.Fatal("flush should drop lines and fills")
	}
}

func TestStallCycleAttribution(t *testing.T) {
	cfg := ConfigTiny()
	h := New(cfg, 1<<20)
	h.Access(0, 1, 0x100, KindLoad) // DRAM
	h.Access(500, 1, 0x108, KindLoad)
	if h.Stats.StallCycles[LevelDRAM] < cfg.DRAMLatency {
		t.Fatal("DRAM stall cycles not attributed")
	}
	if h.Stats.StallCycles[LevelL1] != cfg.L1.Latency {
		t.Fatalf("L1 stall = %d, want %d", h.Stats.StallCycles[LevelL1], cfg.L1.Latency)
	}
}

func TestLevelConfigSets(t *testing.T) {
	lc := LevelConfig{SizeBytes: 32 << 10, Ways: 8}
	if lc.Sets() != 64 {
		t.Fatalf("32KiB/8way/64B = 64 sets, got %d", lc.Sets())
	}
}

func TestConfigPresetsSane(t *testing.T) {
	for _, cfg := range []Config{ConfigXeon5218(), ConfigScaled(), ConfigTiny()} {
		if cfg.L1.Latency >= cfg.L2.Latency || cfg.L2.Latency >= cfg.LLC.Latency ||
			cfg.LLC.Latency >= cfg.DRAMLatency {
			t.Fatalf("%s: latencies must increase down the hierarchy", cfg.Name)
		}
		if cfg.L1.SizeBytes >= cfg.L2.SizeBytes || cfg.L2.SizeBytes >= cfg.LLC.SizeBytes {
			t.Fatalf("%s: sizes must increase down the hierarchy", cfg.Name)
		}
		if cfg.FillBuffers <= 0 {
			t.Fatalf("%s: need fill buffers", cfg.Name)
		}
	}
}
