// Package mem simulates the processor's data-side memory system: a
// byte-addressable arena, a three-level set-associative cache hierarchy
// with fill buffers (MSHRs), a bandwidth-limited DRAM model, and the
// simple hardware prefetchers (IP-stride and next-line) that commodity
// Intel parts implement. The paper's whole argument rests on the
// interaction between software prefetches and this machinery: a prefetch
// issued too late is found in a fill buffer by the demand load
// (LOAD_HIT_PRE.SW_PF), one issued too early is evicted before use.
package mem

import "fmt"

// LineSize is the cache line size in bytes.
const LineSize = 64

// lineShift converts addresses to line numbers.
const lineShift = 6

// LevelConfig describes one cache level. The cache indexes sets by
// masking line-address bits, so the set count (SizeBytes / LineSize /
// Ways) must be a power of two; Validate rejects anything else rather
// than letting a misconfigured machine model silently shrink.
type LevelConfig struct {
	SizeBytes int64
	Ways      int
	Latency   uint64 // access latency in cycles when this level serves the request
}

// Sets returns the number of sets.
func (lc LevelConfig) Sets() int {
	s := int(lc.SizeBytes / LineSize / int64(lc.Ways))
	if s < 1 {
		s = 1
	}
	return s
}

// Validate checks that the level is well-formed: at least one way of at
// least one line, and a power-of-two set count.
func (lc LevelConfig) Validate() error {
	if lc.Ways < 1 || lc.SizeBytes < LineSize*int64(max(lc.Ways, 1)) {
		return fmt.Errorf("cache level needs >=1 way of >=%d bytes: size=%d ways=%d",
			LineSize, lc.SizeBytes, lc.Ways)
	}
	if s := lc.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("set count %d (size=%d / line=%d / ways=%d) is not a power of two",
			s, lc.SizeBytes, LineSize, lc.Ways)
	}
	return nil
}

// Config describes the full memory system.
type Config struct {
	Name string

	L1, L2, LLC LevelConfig

	DRAMLatency uint64 // cycles from request issue to data return
	DRAMGap     uint64 // minimum cycles between consecutive DRAM requests (bandwidth)

	FillBuffers int // number of L1 MSHRs / line-fill buffers

	// Hardware prefetchers.
	StridePrefetcher   bool
	StrideDegree       int // lines prefetched ahead once a stride locks
	NextLinePrefetcher bool
}

// Validate checks the whole machine model; New refuses (loudly) to build
// a hierarchy from an invalid one.
func (c Config) Validate() error {
	for _, l := range []struct {
		name string
		lc   LevelConfig
	}{{"L1", c.L1}, {"L2", c.L2}, {"LLC", c.LLC}} {
		if err := l.lc.Validate(); err != nil {
			return fmt.Errorf("mem: config %q %s: %w", c.Name, l.name, err)
		}
	}
	if c.FillBuffers < 1 {
		return fmt.Errorf("mem: config %q needs at least one fill buffer", c.Name)
	}
	return nil
}

// ConfigXeon5218 mirrors the paper's Table 2 machine (Intel Xeon Gold
// 5218): per-core L1/L2 plus a 22 MiB shared LLC. Latencies follow the
// paper's §3.1 discussion (L1 = 4 cycles, DRAM = hundreds of cycles).
func ConfigXeon5218() Config {
	return Config{
		Name:        "xeon-gold-5218",
		L1:          LevelConfig{SizeBytes: 64 << 10, Ways: 8, Latency: 4},
		L2:          LevelConfig{SizeBytes: 1 << 20, Ways: 16, Latency: 14},
		LLC:         LevelConfig{SizeBytes: 22 << 20, Ways: 11, Latency: 44},
		DRAMLatency: 260, DRAMGap: 16,
		FillBuffers:      10,
		StridePrefetcher: true, StrideDegree: 2, NextLinePrefetcher: true,
	}
}

// ConfigScaled is the default experiment configuration: the same shape as
// Table 2 but scaled down together with the datasets (DESIGN.md §6) so a
// full benchmark sweep simulates in seconds while preserving the
// working-set ≫ LLC ratio that makes the paper's loads delinquent.
func ConfigScaled() Config {
	return Config{
		Name:        "scaled",
		L1:          LevelConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:          LevelConfig{SizeBytes: 128 << 10, Ways: 8, Latency: 14},
		LLC:         LevelConfig{SizeBytes: 512 << 10, Ways: 16, Latency: 42},
		DRAMLatency: 220, DRAMGap: 16,
		FillBuffers:      10,
		StridePrefetcher: true, StrideDegree: 2, NextLinePrefetcher: true,
	}
}

// ConfigTiny is a miniature hierarchy for unit tests: small enough that
// eviction behaviour can be exercised with a handful of lines.
func ConfigTiny() Config {
	return Config{
		Name:        "tiny",
		L1:          LevelConfig{SizeBytes: 4 * LineSize, Ways: 2, Latency: 4},
		L2:          LevelConfig{SizeBytes: 16 * LineSize, Ways: 4, Latency: 14},
		LLC:         LevelConfig{SizeBytes: 64 * LineSize, Ways: 8, Latency: 42},
		DRAMLatency: 200, DRAMGap: 10,
		FillBuffers:      4,
		StridePrefetcher: false, StrideDegree: 2, NextLinePrefetcher: false,
	}
}

// Level identifies which part of the hierarchy served an access.
type Level uint8

// Serving levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
	LevelFB // demand found the line in a fill buffer (in flight)
	levelCount
)

var levelNames = [...]string{"L1", "L2", "LLC", "DRAM", "FB"}

// String names the level.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "?"
}
