package mem

import (
	"fmt"
	"sync"
)

// Arena is the simulated program memory: a flat little-endian
// byte-addressable store. It carries the *values*; timing is the
// Hierarchy's job. Accessors sign-extend sub-8-byte reads so that int32
// graph weights and int8 flags behave like their C counterparts.
type Arena struct {
	data []byte
}

// arenaPool keeps a small free list of recycled arenas per size. The
// pipeline allocates one multi-megabyte arena per simulated run and the
// runner fans runs out over a worker pool, so without reuse every run
// pays the page faults of touching a fresh allocation. Recycled arenas
// are zeroed before they are handed out again — workloads' InitMem
// assumes zeroed memory.
var arenaPool struct {
	sync.Mutex
	bySize map[int64][]*Arena
}

// arenaPoolPerSize bounds how many arenas of one size the pool retains;
// beyond it, recycled arenas are dropped for the GC.
const arenaPoolPerSize = 4

// NewArena returns an arena of the given size in bytes, zeroed, reusing
// a recycled arena of the same size when one is available.
func NewArena(size int64) *Arena {
	arenaPool.Lock()
	if list := arenaPool.bySize[size]; len(list) > 0 {
		a := list[len(list)-1]
		arenaPool.bySize[size] = list[:len(list)-1]
		arenaPool.Unlock()
		clear(a.data)
		return a
	}
	arenaPool.Unlock()
	return &Arena{data: make([]byte, size)}
}

// Recycle returns the arena to the pool for reuse by a later NewArena of
// the same size. The caller must not touch the arena afterwards.
func (a *Arena) Recycle() {
	if a == nil || len(a.data) == 0 {
		return
	}
	arenaPool.Lock()
	if arenaPool.bySize == nil {
		arenaPool.bySize = make(map[int64][]*Arena)
	}
	size := int64(len(a.data))
	if len(arenaPool.bySize[size]) < arenaPoolPerSize {
		arenaPool.bySize[size] = append(arenaPool.bySize[size], a)
	}
	arenaPool.Unlock()
}

// PoolLen reports how many recycled arenas of the given size the pool
// currently holds. It exists so tests can assert that every run path —
// including failed ones — returns its arena to the pool.
func PoolLen(size int64) int {
	arenaPool.Lock()
	defer arenaPool.Unlock()
	return len(arenaPool.bySize[size])
}

// Size returns the arena size in bytes.
func (a *Arena) Size() int64 { return int64(len(a.data)) }

func (a *Arena) check(addr int64, size int64) {
	if addr < 0 || addr+size > int64(len(a.data)) {
		panic(fmt.Sprintf("mem: access [%d,%d) outside arena of %d bytes", addr, addr+size, len(a.data)))
	}
}

// Read returns the sign-extended value of size bytes at addr.
func (a *Arena) Read(addr int64, size uint8) int64 {
	a.check(addr, int64(size))
	switch size {
	case 1:
		return int64(int8(a.data[addr]))
	case 2:
		v := uint16(a.data[addr]) | uint16(a.data[addr+1])<<8
		return int64(int16(v))
	case 4:
		v := uint32(a.data[addr]) | uint32(a.data[addr+1])<<8 |
			uint32(a.data[addr+2])<<16 | uint32(a.data[addr+3])<<24
		return int64(int32(v))
	case 8:
		var v uint64
		for i := uint8(0); i < 8; i++ {
			v |= uint64(a.data[addr+int64(i)]) << (8 * i)
		}
		return int64(v)
	default:
		panic(fmt.Sprintf("mem: unsupported read size %d", size))
	}
}

// Write stores the low size bytes of val at addr.
func (a *Arena) Write(addr int64, val int64, size uint8) {
	a.check(addr, int64(size))
	switch size {
	case 1, 2, 4, 8:
		for i := uint8(0); i < size; i++ {
			a.data[addr+int64(i)] = byte(uint64(val) >> (8 * i))
		}
	default:
		panic(fmt.Sprintf("mem: unsupported write size %d", size))
	}
}
