package mem

import "fmt"

// way is one cache way within a set.
type way struct {
	line     int64
	valid    bool
	lru      uint64 // larger = more recently used
	prefetch bool   // installed by a prefetch (SW or HW)
	swPref   bool   // installed by a software prefetch specifically
	touched  bool   // referenced by a demand access since install
}

// cache is a single set-associative LRU cache level.
type cache struct {
	sets    [][]way
	setMask int64
	lruTick uint64
}

func newCache(lc LevelConfig) *cache {
	n := lc.Sets()
	// The set index is line&(n-1); a non-power-of-two count would alias
	// sets and silently shrink the cache. Config.Validate catches this at
	// Hierarchy construction; fail loudly for direct constructions too.
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("mem: %v", lc.Validate()))
	}
	sets := make([][]way, n)
	backing := make([]way, n*lc.Ways)
	for i := range sets {
		sets[i] = backing[i*lc.Ways : (i+1)*lc.Ways]
	}
	return &cache{sets: sets, setMask: int64(n - 1)}
}

func (c *cache) set(line int64) []way { return c.sets[line&c.setMask] }

// lookup probes for a line; on hit it updates recency and the touched bit
// (when demand is true) and returns the way.
func (c *cache) lookup(line int64, demand bool) *way {
	s := c.sets[line&c.setMask]
	if len(s) == 1 {
		// Direct-mapped fast path: one candidate, no associative scan.
		w := &s[0]
		if !w.valid || w.line != line {
			return nil
		}
		c.lruTick++
		w.lru = c.lruTick
		if demand {
			w.touched = true
		}
		return w
	}
	for i := range s {
		w := &s[i]
		if w.valid && w.line == line {
			c.lruTick++
			w.lru = c.lruTick
			if demand {
				w.touched = true
			}
			return w
		}
	}
	return nil
}

// evicted describes a victim pushed out by install.
type evicted struct {
	line           int64
	valid          bool
	prefetchUnused bool // installed by prefetch, never demanded: "too early"
	swPrefUnused   bool
}

// install places a line, evicting the LRU way of its set if needed.
func (c *cache) install(line int64, byPrefetch, bySWPrefetch bool) evicted {
	s := c.set(line)
	victim := -1
	for i := range s {
		w := &s[i]
		if w.valid && w.line == line {
			// Already present: refresh only.
			c.lruTick++
			w.lru = c.lruTick
			return evicted{}
		}
		if !w.valid {
			victim = i
		}
	}
	if victim == -1 {
		best := uint64(1<<64 - 1)
		for i := range s {
			if s[i].lru < best {
				best = s[i].lru
				victim = i
			}
		}
	}
	w := &s[victim]
	ev := evicted{}
	if w.valid {
		ev = evicted{
			line:           w.line,
			valid:          true,
			prefetchUnused: w.prefetch && !w.touched,
			swPrefUnused:   w.swPref && !w.touched,
		}
	}
	c.lruTick++
	*w = way{line: line, valid: true, lru: c.lruTick, prefetch: byPrefetch, swPref: bySWPrefetch}
	return ev
}

// contains probes without updating recency (tests, invariant checks).
func (c *cache) contains(line int64) bool {
	s := c.set(line)
	for i := range s {
		w := &s[i]
		if w.valid && w.line == line {
			return true
		}
	}
	return false
}

// countValid returns the number of valid lines (tests).
func (c *cache) countValid() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid {
				n++
			}
		}
	}
	return n
}
