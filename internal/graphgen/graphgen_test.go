package graphgen

import (
	"testing"
	"testing/quick"
)

func TestUniformShape(t *testing.T) {
	g := Uniform("u", 1000, 3, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	if d := g.AvgDegree(); d < 3 || d > 4.2 {
		t.Fatalf("avg degree = %v, want ≈3.5", d)
	}
}

func TestPowerLawShape(t *testing.T) {
	g := PowerLaw("p", 5000, 6, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.AvgDegree(); d < 5.5 || d > 6.5 {
		t.Fatalf("avg degree = %v, want ≈6", d)
	}
	// Heavy tail: the max degree should far exceed the average.
	var max int64
	for u := int64(0); u < g.N; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	if float64(max) < 4*g.AvgDegree() {
		t.Fatalf("max degree %d too small for a power law (avg %.1f)", max, g.AvgDegree())
	}
}

func TestGridShape(t *testing.T) {
	g := Grid("g", 10, 12, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 120 {
		t.Fatalf("N = %d", g.N)
	}
	// Interior vertices have degree 4; total edges = 2*(2*rows*cols - rows - cols).
	wantM := int64(2 * (2*10*12 - 10 - 12))
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Grid is symmetric: every edge has its reverse.
	edges := map[[2]int64]bool{}
	for u := int64(0); u < g.N; u++ {
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			edges[[2]int64{u, g.Col[e]}] = true
		}
	}
	for e := range edges {
		if !edges[[2]int64{e[1], e[0]}] {
			t.Fatalf("missing reverse edge of %v", e)
		}
	}
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker("k", 10, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 || g.M() != 1024*8 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	// R-MAT skew: low-ID vertices should hold a disproportionate share
	// of edges.
	firstQuarter := int64(0)
	for u := int64(0); u < g.N/4; u++ {
		firstQuarter += g.Degree(u)
	}
	if float64(firstQuarter) < 0.3*float64(g.M()) {
		t.Fatalf("kronecker lacks skew: first quarter holds %d of %d", firstQuarter, g.M())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw("a", 2000, 4, 99)
	b := PowerLaw("a", 2000, 4, 99)
	if a.M() != b.M() {
		t.Fatal("same seed must give same graph")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Weight[i] != b.Weight[i] {
			t.Fatal("same seed must give identical adjacency and weights")
		}
	}
	c := PowerLaw("a", 2000, 4, 100)
	same := a.M() == c.M()
	if same {
		same = true
		for i := range a.Col {
			if a.Col[i] != c.Col[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestWeightsPositiveBounded(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		g := Uniform("w", 200, 2, seed)
		for _, w := range g.Weight {
			if w < 1 || w > 15 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 9 {
		t.Fatalf("want 9 datasets, got %d", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
	}
	for _, key := range []string{"WG", "P2P", "CA", "PA", "LBE", "WB", "WN", "WS", "KRON"} {
		if _, ok := ByName(key); !ok {
			t.Fatalf("dataset %s missing", key)
		}
	}
	if _, ok := ByName("NOPE"); ok {
		t.Fatal("unknown dataset should miss")
	}
}

func TestDatasetGraphsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow in -short mode")
	}
	for _, d := range Datasets() {
		g := d.Make()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N < 50_000 && d.Class != "grid" && d.Class != "kronecker" {
			t.Fatalf("%s too small: %d vertices", d.Name, g.N)
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := Uniform("s", 500, 4, 5)
	for u := int64(0); u < g.N; u++ {
		for e := g.RowPtr[u] + 1; e < g.RowPtr[u+1]; e++ {
			if g.Col[e] < g.Col[e-1] {
				t.Fatalf("adjacency of %d not sorted", u)
			}
		}
	}
}
