// Package graphgen produces the deterministic synthetic graphs that stand
// in for the paper's datasets: the SNAP graphs of Table 4 (web crawls,
// p2p networks, road networks, a social network) and the Graph500
// Kronecker graph. Real SNAP downloads are unavailable offline, so each
// dataset is replaced by a generator matching its structural class and a
// size scaled together with the simulated caches (DESIGN.md §2): what
// matters for the paper's results is that the per-vertex state array
// exceeds the LLC and that the degree distribution (hence inner-loop
// trip count) matches the original's character.
package graphgen

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in compressed sparse row form — the layout
// every CRONO-style kernel traverses.
type Graph struct {
	Name   string
	N      int64   // vertices
	RowPtr []int64 // length N+1
	Col    []int64 // length M
	Weight []int64 // length M; small positive edge weights (SSSP)
}

// M returns the edge count.
func (g *Graph) M() int64 { return int64(len(g.Col)) }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.N)
}

// Degree returns the out-degree of vertex u.
func (g *Graph) Degree(u int64) int64 { return g.RowPtr[u+1] - g.RowPtr[u] }

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if int64(len(g.RowPtr)) != g.N+1 {
		return fmt.Errorf("graphgen: %s: rowptr length %d != N+1=%d", g.Name, len(g.RowPtr), g.N+1)
	}
	if g.RowPtr[0] != 0 || g.RowPtr[g.N] != g.M() {
		return fmt.Errorf("graphgen: %s: rowptr endpoints wrong", g.Name)
	}
	for i := int64(0); i < g.N; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return fmt.Errorf("graphgen: %s: rowptr not monotone at %d", g.Name, i)
		}
	}
	for i, v := range g.Col {
		if v < 0 || v >= g.N {
			return fmt.Errorf("graphgen: %s: col[%d]=%d out of range", g.Name, i, v)
		}
	}
	if g.Weight != nil && len(g.Weight) != len(g.Col) {
		return fmt.Errorf("graphgen: %s: weight length mismatch", g.Name)
	}
	return nil
}

// fromEdges builds a CSR graph from an edge list, sorting adjacency for
// determinism and assigning weights in [1, 15].
func fromEdges(name string, n int64, src, dst []int64, seed int64) *Graph {
	deg := make([]int64, n)
	for _, u := range src {
		deg[u]++
	}
	row := make([]int64, n+1)
	for i := int64(0); i < n; i++ {
		row[i+1] = row[i] + deg[i]
	}
	col := make([]int64, len(src))
	next := append([]int64(nil), row[:n]...)
	for i, u := range src {
		col[next[u]] = dst[i]
		next[u]++
	}
	for i := int64(0); i < n; i++ {
		seg := col[row[i]:row[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	w := make([]int64, len(col))
	for i := range w {
		w[i] = 1 + rng.Int63n(15)
	}
	return &Graph{Name: name, N: n, RowPtr: row, Col: col, Weight: w}
}

// Uniform generates a graph where every vertex has close to `degree`
// out-edges with uniformly random endpoints — the p2p-network class
// (p2p-Gnutella31).
func Uniform(name string, n, degree, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var src, dst []int64
	for u := int64(0); u < n; u++ {
		d := degree
		if rng.Intn(2) == 0 { // mild irregularity
			d++
		}
		for k := int64(0); k < d; k++ {
			src = append(src, u)
			dst = append(dst, rng.Int63n(n))
		}
	}
	return fromEdges(name, n, src, dst, seed)
}

// PowerLaw generates a web/social-like graph: out-degrees follow a heavy
// tail (Zipf) and endpoints are biased towards low vertex IDs (hubs) —
// the web-Google/web-BerkStan/loc-Brightkite class.
func PowerLaw(name string, n int64, avgDegree float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.5, 1.0, uint64(avgDegree*12))
	var src, dst []int64
	target := int64(avgDegree * float64(n))
	for int64(len(src)) < target {
		u := rng.Int63n(n)
		d := int64(z.Uint64()) + 1
		for k := int64(0); k < d; k++ {
			// Hub bias: square the fraction to favour small IDs.
			f := rng.Float64()
			v := int64(f * f * float64(n))
			if v >= n {
				v = n - 1
			}
			src = append(src, u)
			dst = append(dst, v)
		}
	}
	return fromEdges(name, n, src[:target], dst[:target], seed)
}

// Grid generates a rows×cols 4-neighbour lattice — the road-network
// class (roadNet-CA/roadNet-PA): degree ≈ 4, huge diameter.
func Grid(name string, rows, cols int64, seed int64) *Graph {
	n := rows * cols
	var src, dst []int64
	at := func(r, c int64) int64 { return r*cols + c }
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			u := at(r, c)
			if r+1 < rows {
				src = append(src, u, at(r+1, c))
				dst = append(dst, at(r+1, c), u)
			}
			if c+1 < cols {
				src = append(src, u, at(r, c+1))
				dst = append(dst, at(r, c+1), u)
			}
		}
	}
	return fromEdges(name, n, src, dst, seed)
}

// Kronecker generates a Graph500-style R-MAT graph with the reference
// initiator probabilities (A=0.57, B=0.19, C=0.19) and the given scale
// (N = 2^scale) and edge factor.
func Kronecker(name string, scale, edgeFactor, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int64(1) << uint(scale)
	m := n * edgeFactor
	src := make([]int64, 0, m)
	dst := make([]int64, 0, m)
	const a, b, c = 0.57, 0.19, 0.19
	for i := int64(0); i < m; i++ {
		var u, v int64
		for bit := int64(0); bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// quadrant (0,0)
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		src = append(src, u)
		dst = append(dst, v)
	}
	return fromEdges(name, n, src, dst, seed)
}

// Dataset names the synthetic stand-ins for Table 4 plus the Graph500
// input. The sizes are scaled with the 512 KiB simulated LLC so the
// per-vertex state arrays (~0.5–1 MiB) and adjacency (~2–6 MiB) exceed
// it, as the originals exceed the paper's 22 MiB LLC.
type Dataset struct {
	Name     string // short key used on figure x-axes (WG, P2P, CA, ...)
	Original string // the Table 4 dataset this models
	Class    string // generator family
	Make     func() *Graph
}

// Datasets is the registry of Table 4 stand-ins.
func Datasets() []Dataset {
	return []Dataset{
		{"WG", "web-Google", "power-law", func() *Graph { return PowerLaw("WG", 96_000, 5.8, 1001) }},
		{"P2P", "p2p-Gnutella31", "uniform", func() *Graph { return Uniform("P2P", 80_000, 2, 1002) }},
		{"CA", "roadNet-CA", "grid", func() *Graph { return Grid("CA", 310, 310, 1003) }},
		{"PA", "roadNet-PA", "grid", func() *Graph { return Grid("PA", 256, 256, 1004) }},
		{"LBE", "loc-Brightkite", "power-law", func() *Graph { return PowerLaw("LBE", 72_000, 3.7, 1005) }},
		{"WB", "web-BerkStan", "power-law", func() *Graph { return PowerLaw("WB", 88_000, 11, 1006) }},
		{"WN", "web-NotreDame", "power-law", func() *Graph { return PowerLaw("WN", 80_000, 4.6, 1007) }},
		{"WS", "web-Stanford", "power-law", func() *Graph { return PowerLaw("WS", 72_000, 8.2, 1008) }},
		{"KRON", "graph500 scale-22", "kronecker", func() *Graph { return Kronecker("KRON", 16, 10, 1009) }},
	}
}

// ByName returns the dataset with the given key.
func ByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
