package pgo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"aptget/internal/obs"
)

// Default capture geometry.
const (
	// DefaultDuration is the window length when Config.Duration is zero.
	DefaultDuration = 5 * time.Second
	// MaxOnDemandDuration caps a single on-demand capture; the service's
	// /v1/pprof/cpu clamps client-requested lengths to it.
	MaxOnDemandDuration = 120 * time.Second
)

// ErrNoStore is returned when persistence is requested from a capturer
// configured without an artifact directory.
var ErrNoStore = errors.New("pgo: no artifact store configured")

// Config tunes a Capturer. The zero value is a valid store-less,
// loop-less capturer that only serves on-demand captures.
type Config struct {
	// Dir roots the profile artifact store; "" disables persistence
	// (on-demand captures still work, windowed capture does not).
	Dir string
	// Period is the windowed-capture cadence; 0 disables the background
	// loop. Requires Dir — a window that cannot be stored is wasted work.
	Period time.Duration
	// Duration is the length of one capture window (0 → DefaultDuration,
	// clamped below Period). Must be shorter than Period.
	Duration time.Duration
	// Keep bounds the artifact store (≤0 → DefaultKeep).
	Keep int
}

// profSem serializes CPU profiling process-wide: runtime/pprof allows a
// single active CPU profile per process, so every capturer in the
// process (daemon windowed loop, on-demand handler, tests) queues here
// rather than racing into StartCPUProfile errors.
var profSem = make(chan struct{}, 1)

// Capturer records CPU profiles of its own process: a background
// windowed loop feeding the artifact store, plus one-shot on-demand
// captures for the /v1/pprof/cpu endpoint. All methods are safe for
// concurrent use; overlapping capture requests serialize on the
// process-wide profiling semaphore.
type Capturer struct {
	cfg   Config
	store *Store // nil when Config.Dir is empty

	// activity reports a monotone request count; a window is skipped
	// when the count did not move since the last tick (idle daemon).
	// nil means "always active". Set before Run starts.
	activity func() int64

	captures     atomic.Int64
	captureBytes atomic.Int64
	lastUnix     atomic.Int64
	skippedIdle  atomic.Int64
	flushes      atomic.Int64

	// sp is the long-lived self-profiling span counters mirror into when
	// the obs registry is enabled at construction.
	sp *obs.Span
}

// New builds a capturer. Only a Config with a Dir can fail (store
// creation), so New(Config{}) is infallible — the ephemeral capturer the
// service falls back to for on-demand-only profiling.
func New(cfg Config) (*Capturer, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = DefaultDuration
		if cfg.Period > 0 && cfg.Duration >= cfg.Period {
			cfg.Duration = cfg.Period / 2
		}
	}
	if cfg.Period > 0 && cfg.Duration >= cfg.Period {
		return nil, fmt.Errorf("pgo: capture duration %s must be shorter than period %s",
			cfg.Duration, cfg.Period)
	}
	if cfg.Period > 0 && cfg.Dir == "" {
		return nil, errors.New("pgo: windowed capture requires an artifact directory")
	}
	c := &Capturer{cfg: cfg}
	if cfg.Dir != "" {
		st, err := NewStore(cfg.Dir, cfg.Keep, "")
		if err != nil {
			return nil, err
		}
		c.store = st
	}
	c.sp = obs.Begin("aptgetd/pgo", obs.StagePGO)
	return c, nil
}

// SetActivity installs the idle detector: f must return a monotone count
// of served requests. Call before Run.
func (c *Capturer) SetActivity(f func() int64) { c.activity = f }

// Windowed reports whether the background capture loop is configured.
func (c *Capturer) Windowed() bool { return c.cfg.Period > 0 }

// Store returns the artifact store, nil when persistence is disabled.
func (c *Capturer) Store() *Store { return c.store }

// Duration returns the configured window length.
func (c *Capturer) Duration() time.Duration { return c.cfg.Duration }

// Close ends the capturer's obs span. Idempotent.
func (c *Capturer) Close() { c.sp.End() }

// CaptureOnce records one CPU profile of the running process for up to d
// and returns the pprof bytes. It waits (bounded by ctx) for any capture
// already in flight — runtime/pprof supports one at a time. A ctx
// cancellation mid-window stops the capture early and returns the
// partial profile with no error: a shutting-down daemon flushes what it
// has rather than discarding the window.
func (c *Capturer) CaptureOnce(ctx context.Context, d time.Duration) ([]byte, error) {
	if d <= 0 {
		d = c.cfg.Duration
	}
	select {
	case profSem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("pgo: waiting for in-flight capture: %w", ctx.Err())
	}
	defer func() { <-profSem }()

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("pgo: starting capture: %w", err)
	}
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
		c.flushes.Add(1)
		c.sp.Add("pgo_capture_flushes", 1)
	}
	pprof.StopCPUProfile()

	data := buf.Bytes()
	c.captures.Add(1)
	c.captureBytes.Add(int64(len(data)))
	c.lastUnix.Store(time.Now().Unix())
	c.sp.Add("pgo_captures_taken", 1)
	c.sp.Add("pgo_capture_bytes", int64(len(data)))
	c.sp.Set("pgo_last_capture_unix", c.lastUnix.Load())
	return data, nil
}

// StoreArtifact persists one captured profile (the /v1/pprof/cpu
// store=1 path and the windowed loop both land here).
func (c *Capturer) StoreArtifact(data []byte) (Artifact, error) {
	if c.store == nil {
		return Artifact{}, ErrNoStore
	}
	return c.store.Put(data)
}

// Run is the windowed capture loop: every Period, if the daemon served
// any traffic since the previous tick, record a Duration-long window and
// store it. Returns when ctx is cancelled; a window in flight at
// cancellation is stopped early and still flushed to the store, so a
// graceful shutdown never discards capture work.
func (c *Capturer) Run(ctx context.Context) {
	if !c.Windowed() {
		return
	}
	last := int64(0)
	if c.activity != nil {
		last = c.activity()
	}
	tick := time.NewTicker(c.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if c.activity != nil {
			now := c.activity()
			if now == last {
				c.skippedIdle.Add(1)
				c.sp.Add("pgo_captures_skipped_idle", 1)
				continue
			}
			last = now
		}
		data, err := c.CaptureOnce(ctx, c.cfg.Duration)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			continue
		}
		c.StoreArtifact(data)
		if ctx.Err() != nil {
			return // the flushed final window is stored; exit
		}
	}
}

// Counters exports the capturer's (and its store's) counters under the
// names /v1/metrics serves.
func (c *Capturer) Counters() map[string]int64 {
	m := map[string]int64{
		"pgo_captures_taken":        c.captures.Load(),
		"pgo_capture_bytes":         c.captureBytes.Load(),
		"pgo_last_capture_unix":     c.lastUnix.Load(),
		"pgo_captures_skipped_idle": c.skippedIdle.Load(),
		"pgo_capture_flushes":       c.flushes.Load(),
	}
	if c.store != nil {
		for k, v := range c.store.Counters() {
			m[k] = v
		}
	}
	return m
}
