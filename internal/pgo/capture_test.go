package pgo

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// spin burns CPU briefly so a capture window has something to sample.
// The profile is structurally valid even with zero samples, so tests do
// not depend on the sampler actually firing — this just keeps captures
// realistic.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := uint64(1)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
	}
	_ = x
}

func TestCaptureOnceProducesValidProfile(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go spin(100 * time.Millisecond)
	data, err := c.CaptureOnce(context.Background(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(data); err != nil {
		t.Fatalf("captured bytes do not validate: %v", err)
	}
	m := c.Counters()
	if m["pgo_captures_taken"] != 1 {
		t.Fatalf("pgo_captures_taken = %d, want 1", m["pgo_captures_taken"])
	}
	if m["pgo_capture_bytes"] != int64(len(data)) {
		t.Fatalf("pgo_capture_bytes = %d, want %d", m["pgo_capture_bytes"], len(data))
	}
	if m["pgo_last_capture_unix"] == 0 {
		t.Fatal("pgo_last_capture_unix not stamped")
	}
}

func TestCaptureOnceStoreless(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StoreArtifact([]byte("x")); err != ErrNoStore {
		t.Fatalf("StoreArtifact without a store = %v, want ErrNoStore", err)
	}
}

// TestGracefulShutdownFlushesInflightWindow: cancelling the windowed
// loop mid-capture must stop the window early and still persist it —
// shutdown never discards capture work.
func TestGracefulShutdownFlushesInflightWindow(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		Dir:      dir,
		Period:   50 * time.Millisecond,
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Re-arm the window far longer than the test so cancellation is
	// guaranteed to land mid-capture once the first window starts.
	c.cfg.Duration = time.Hour

	var reqs atomic.Int64
	c.SetActivity(reqs.Load)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		c.Run(ctx)
		close(done)
	}()

	// Keep traffic arriving and wait for the window to actually start
	// (the capture counter only moves when a window *finishes*, so watch
	// the profiling semaphore instead).
	deadline := time.Now().Add(10 * time.Second)
	for len(profSem) == 0 {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("capture window never started")
		}
		reqs.Add(1)
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	m := c.Counters()
	if m["pgo_capture_flushes"] != 1 {
		t.Fatalf("pgo_capture_flushes = %d, want 1", m["pgo_capture_flushes"])
	}
	arts, err := c.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("store has %d artifacts after flush, want 1", len(arts))
	}
	if arts[0].Build != BuildID() {
		t.Fatalf("flushed artifact stored under build %q, want %q", arts[0].Build, BuildID())
	}
}

// TestIdleWindowsAreSkipped: with a flat activity counter the loop must
// record zero captures and count the skipped windows.
func TestIdleWindowsAreSkipped(t *testing.T) {
	c, err := New(Config{
		Dir:      t.TempDir(),
		Period:   10 * time.Millisecond,
		Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetActivity(func() int64 { return 7 }) // never moves

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c.Run(ctx)

	m := c.Counters()
	if m["pgo_captures_taken"] != 0 {
		t.Fatalf("idle daemon took %d captures, want 0", m["pgo_captures_taken"])
	}
	if m["pgo_captures_skipped_idle"] == 0 {
		t.Fatal("no windows counted as skipped-idle")
	}
}

// TestWindowedLoopCapturesUnderTraffic: a moving activity counter must
// produce stored artifacts.
func TestWindowedLoopCapturesUnderTraffic(t *testing.T) {
	c, err := New(Config{
		Dir:      t.TempDir(),
		Period:   30 * time.Millisecond,
		Duration: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reqs atomic.Int64
	c.SetActivity(reqs.Load)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()

	deadline := time.Now().Add(10 * time.Second)
	for c.captures.Load() < 2 {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("windowed loop never captured under traffic")
		}
		reqs.Add(1)
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	arts, err := c.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) < 2 {
		t.Fatalf("store has %d artifacts, want >= 2", len(arts))
	}
	if _, data, err := c.Store().Best(); err != nil || ValidateProfile(data) != nil {
		t.Fatalf("Best() after windowed captures: err=%v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Period: time.Second, Duration: 2 * time.Second, Dir: t.TempDir()}); err == nil {
		t.Fatal("duration >= period accepted")
	}
	if _, err := New(Config{Period: time.Second}); err == nil {
		t.Fatal("windowed capture without a store directory accepted")
	}
	// Default duration must clamp below a short period rather than fail.
	c, err := New(Config{Period: time.Second, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if d := c.Duration(); d >= time.Second || d <= 0 {
		t.Fatalf("defaulted duration = %s, want in (0, period)", d)
	}
}

func TestBinaryInfo(t *testing.T) {
	b := Binary()
	if b.ID == "" {
		t.Fatal("empty build ID")
	}
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	// Test binaries are never PGO-built.
	if b.PGOBuilt || b.PGOProfile != "" {
		t.Fatalf("test binary claims PGO-built (profile %q)", b.PGOProfile)
	}
}
