package pgo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultKeep bounds the store when Config.Keep is non-positive.
const DefaultKeep = 16

// Artifact is one stored CPU profile.
type Artifact struct {
	// Build is the build ID of the binary the profile was captured from.
	Build string `json:"build"`
	// Name is the artifact's file name (unique, chronologically sortable).
	Name string `json:"name"`
	// Path is the absolute on-disk location.
	Path string `json:"path"`
	// Size is the gzip-compressed profile size in bytes.
	Size int64 `json:"size"`
	// Unix is the capture completion time (seconds).
	Unix int64 `json:"unix"`
}

// Store is the disk-backed profile artifact shelf:
//
//	<dir>/<buildID>/cpu-<unixnano>-<seq>.pprof
//
// Artifacts are segregated per build ID so a binary never offers another
// build's profile as its own `default.pgo` candidate, and rotation is
// bounded: past Keep total artifacts the oldest are evicted first —
// except the current build's newest profile, which is never evicted (the
// one artifact a rebuild harness must always be able to fetch).
//
// The store keeps no in-memory index: every operation works off the
// directory, so concurrent daemons (or a daemon and the harness) see a
// consistent view and a restart loses nothing.
type Store struct {
	dir   string
	keep  int
	build string

	mu  sync.Mutex // serializes Put's write→rotate sequence
	seq atomic.Int64

	puts, putBytes, evictions atomic.Int64
}

// NewStore opens (creating if needed) an artifact store rooted at dir,
// keeping at most keep artifacts (≤0 → DefaultKeep), capturing for the
// binary identified by build ("" → the running binary's BuildID).
func NewStore(dir string, keep int, build string) (*Store, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if build == "" {
		build = BuildID()
	}
	if err := os.MkdirAll(filepath.Join(dir, build), 0o755); err != nil {
		return nil, fmt.Errorf("pgo: creating artifact store: %w", err)
	}
	return &Store{dir: dir, keep: keep, build: build}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Build returns the build ID new artifacts are stored under.
func (s *Store) Build() string { return s.build }

// artifactName builds the chronologically-sortable file name: the
// zero-padded capture nanosecond plus a per-process sequence number, so
// two captures landing in the same nanosecond still order and never
// collide.
func (s *Store) artifactName(now time.Time) string {
	return fmt.Sprintf("cpu-%020d-%06d.pprof", now.UnixNano(), s.seq.Add(1))
}

// parseArtifact recovers an Artifact from its path; ok is false for
// files that are not store artifacts (editor droppings, partial writes).
func parseArtifact(dir, build, name string, size int64) (Artifact, bool) {
	if !strings.HasPrefix(name, "cpu-") || !strings.HasSuffix(name, ".pprof") {
		return Artifact{}, false
	}
	fields := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "cpu-"), ".pprof"), "-")
	if len(fields) != 2 {
		return Artifact{}, false
	}
	nanos, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Artifact{}, false
	}
	return Artifact{
		Build: build,
		Name:  name,
		Path:  filepath.Join(dir, build, name),
		Size:  size,
		Unix:  nanos / 1e9,
	}, true
}

// Put validates and stores one captured profile under the current build,
// then rotates. The write is atomic (temp file + rename) so a reader
// never sees a half-written artifact.
func (s *Store) Put(data []byte) (Artifact, error) {
	if err := ValidateProfile(data); err != nil {
		return Artifact{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	name := s.artifactName(time.Now())
	path := filepath.Join(s.dir, s.build, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return Artifact{}, fmt.Errorf("pgo: writing artifact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Artifact{}, fmt.Errorf("pgo: publishing artifact: %w", err)
	}
	s.puts.Add(1)
	s.putBytes.Add(int64(len(data)))
	s.rotateLocked()
	a, _ := parseArtifact(s.dir, s.build, name, int64(len(data)))
	return a, nil
}

// List returns every stored artifact across all builds, oldest first
// (capture time, then name).
func (s *Store) List() ([]Artifact, error) {
	builds, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("pgo: listing artifact store: %w", err)
	}
	var out []Artifact
	for _, b := range builds {
		if !b.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, b.Name()))
		if err != nil {
			continue // a build shelf vanished under us (concurrent rotation)
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil {
				continue
			}
			if a, ok := parseArtifact(s.dir, b.Name(), f.Name(), info.Size()); ok {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Build < out[j].Build
	})
	return out, nil
}

// Best returns the current build's strongest artifact — the default.pgo
// candidate /v1/pprof/merged serves. "Strongest" is the largest artifact
// (compressed size tracks sample count for same-shape captures),
// newest-first on ties, so a long loaded window beats a short idle one.
func (s *Store) Best() (Artifact, []byte, error) {
	all, err := s.List()
	if err != nil {
		return Artifact{}, nil, err
	}
	var best Artifact
	for _, a := range all { // oldest→newest: later ties win
		if a.Build != s.build {
			continue
		}
		if best.Name == "" || a.Size >= best.Size {
			best = a
		}
	}
	if best.Name == "" {
		return Artifact{}, nil, fmt.Errorf("pgo: no stored profile for build %s", s.build)
	}
	data, err := os.ReadFile(best.Path)
	if err != nil {
		return Artifact{}, nil, fmt.Errorf("pgo: reading artifact: %w", err)
	}
	return best, data, nil
}

// rotateLocked enforces the Keep bound: evict oldest-first across every
// build, but never the current build's newest artifact. Called with s.mu
// held, after a Put.
func (s *Store) rotateLocked() {
	all, err := s.List()
	if err != nil {
		return
	}
	protected := ""
	for _, a := range all { // oldest→newest: the last match is the newest
		if a.Build == s.build {
			protected = a.Path
		}
	}
	excess := len(all) - s.keep
	for _, a := range all {
		if excess <= 0 {
			break
		}
		if a.Path == protected {
			continue
		}
		if os.Remove(a.Path) == nil {
			s.evictions.Add(1)
			excess--
		}
	}
}

// Counters exports the store counters under the names /v1/metrics serves.
func (s *Store) Counters() map[string]int64 {
	return map[string]int64{
		"pgo_store_puts":      s.puts.Load(),
		"pgo_store_bytes":     s.putBytes.Load(),
		"pgo_store_evictions": s.evictions.Load(),
	}
}
