package pgo

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// maxProfileBytes caps how large a decompressed profile the validator
// (and therefore the store) accepts. Real CPU captures of the daemon are
// tens to hundreds of kilobytes; 64 MiB is far past any honest profile
// and keeps a hostile upload from ballooning memory.
const maxProfileBytes = 64 << 20

// pprof proto top-level field numbers the validator anchors on
// (profile.proto): sample_type is mandatory in every profile runtime/
// pprof emits, including a zero-sample capture of an idle process.
const (
	fieldSampleType = 1
	fieldTimeNanos  = 9
)

// ValidateProfile checks that data is a pprof profile: gzip-compressed
// protobuf whose top-level wire structure parses end to end and carries
// at least one sample_type entry. It does not interpret the samples —
// the point is to guarantee that whatever the store hands to
// `go build -pgo` is structurally a profile, not to judge its quality.
func ValidateProfile(data []byte) error {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("pgo: profile is not gzip-compressed: %w", err)
	}
	raw, err := io.ReadAll(io.LimitReader(zr, maxProfileBytes+1))
	if err != nil {
		return fmt.Errorf("pgo: decompressing profile: %w", err)
	}
	if len(raw) > maxProfileBytes {
		return fmt.Errorf("pgo: decompressed profile exceeds %d bytes", maxProfileBytes)
	}
	if len(raw) == 0 {
		return errors.New("pgo: profile is empty")
	}

	sawSampleType := false
	for off := 0; off < len(raw); {
		tag, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return fmt.Errorf("pgo: malformed field tag at offset %d", off)
		}
		off += n
		field, wire := tag>>3, tag&7
		if field == 0 {
			return fmt.Errorf("pgo: field number 0 at offset %d", off)
		}
		switch wire {
		case 0: // varint
			v, n := binary.Uvarint(raw[off:])
			if n <= 0 {
				return fmt.Errorf("pgo: truncated varint in field %d", field)
			}
			if field == fieldTimeNanos && v == 0 {
				return errors.New("pgo: profile carries a zero time_nanos")
			}
			off += n
		case 1: // fixed64
			if off+8 > len(raw) {
				return fmt.Errorf("pgo: truncated fixed64 in field %d", field)
			}
			off += 8
		case 2: // length-delimited
			l, n := binary.Uvarint(raw[off:])
			if n <= 0 || l > uint64(len(raw)-off-n) {
				return fmt.Errorf("pgo: truncated length-delimited field %d", field)
			}
			off += n + int(l)
			if field == fieldSampleType {
				sawSampleType = true
			}
		case 5: // fixed32
			if off+4 > len(raw) {
				return fmt.Errorf("pgo: truncated fixed32 in field %d", field)
			}
			off += 4
		default:
			return fmt.Errorf("pgo: field %d has unsupported wire type %d", field, wire)
		}
	}
	if !sawSampleType {
		return errors.New("pgo: profile has no sample_type — not a pprof proto")
	}
	return nil
}
