package pgo

import (
	"bytes"
	"compress/gzip"
	"context"
	"testing"
	"time"
)

func TestValidateRealCapture(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go spin(60 * time.Millisecond)
	data, err := c.CaptureOnce(context.Background(), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(data); err != nil {
		t.Fatalf("real runtime/pprof capture rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	gz := func(raw []byte) []byte {
		var out bytes.Buffer
		zw := gzip.NewWriter(&out)
		zw.Write(raw)
		zw.Close()
		return out.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not gzip", []byte("plain text, definitely not a profile")},
		{"gzip of nothing", gz(nil)},
		{"gzip of garbage", gz([]byte{0xff, 0xff, 0xff})},
		// A tag announcing a length-delimited field longer than the buffer.
		{"truncated length-delimited", gz([]byte{1<<3 | 2, 0x7f, 0x01})},
		// Valid wire structure but no sample_type anywhere.
		{"no sample_type", gz([]byte{9 << 3, 0x01})},
		// Field number 0 is illegal in protobuf.
		{"field zero", gz([]byte{0x02, 0x00})},
	}
	for _, tc := range cases {
		if err := ValidateProfile(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateAcceptsMinimalProfile(t *testing.T) {
	if err := ValidateProfile(fakeProfile(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(fakeProfile(t, 1024)); err != nil {
		t.Fatal(err)
	}
}
