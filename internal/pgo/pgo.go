// Package pgo closes the paper's loop on the daemon itself: the plan
// service profiles *programs* to optimize how their code prefetches, and
// this package profiles *the service* to optimize how its own binary is
// built. It is the capture-and-store half of a self-PGO pipeline:
//
//   - A windowed Capturer periodically records runtime/pprof CPU
//     profiles of the live daemon (pausing while the daemon is idle, so
//     an unloaded instance does not accumulate empty windows) and also
//     serves one-shot on-demand captures.
//   - A disk-backed Store keeps the captured artifacts, segregated by
//     the binary's build ID so profiles from a stale binary are never
//     offered as the current binary's `default.pgo` candidate (the
//     stale-profile concern of Ayupov et al. applied to ourselves), with
//     oldest-first rotation that never evicts the current build's newest
//     profile.
//   - ValidateProfile checks that stored bytes really are a pprof
//     protobuf, so a corrupted artifact can never reach `go build -pgo`.
//
// The rebuild half is native: `go build -pgo=<artifact>` (Go ≥ 1.21).
// `aptbench -pgo-cycle` drives the whole loop end to end — warm the
// daemon under load, fetch the merged profile, rebuild, re-measure.
package pgo

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"runtime/debug"
	"sync"
)

// BinaryInfo describes the running binary as far as self-PGO cares:
// which build it is, and whether that build was itself profile-guided.
type BinaryInfo struct {
	// ID is a short stable hash of the full build metadata
	// (debug.ReadBuildInfo): module version, VCS stamp, and build
	// settings — including the -pgo setting, so a PGO rebuild of the
	// same source gets a distinct ID and its captures a distinct
	// artifact shelf.
	ID string `json:"id"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// PGOProfile is the value of the -pgo build setting: the path of the
	// profile the binary was built against, or "" for a blind build.
	PGOProfile string `json:"pgo_profile,omitempty"`
	// PGOBuilt reports whether the binary was built with -pgo.
	PGOBuilt bool `json:"pgo_built"`
}

var (
	binaryOnce sync.Once
	binaryInfo BinaryInfo
)

// Binary returns the running binary's build identity. Computed once; the
// result is what healthz, the startup log, and the artifact store key on.
func Binary() BinaryInfo {
	binaryOnce.Do(func() {
		binaryInfo = BinaryInfo{ID: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		sum := sha256.Sum256([]byte(bi.String()))
		binaryInfo.ID = hex.EncodeToString(sum[:6])
		for _, s := range bi.Settings {
			if s.Key == "-pgo" && s.Value != "" {
				binaryInfo.PGOProfile = s.Value
				binaryInfo.PGOBuilt = true
			}
		}
	})
	return binaryInfo
}

// BuildID is shorthand for Binary().ID.
func BuildID() string { return Binary().ID }
