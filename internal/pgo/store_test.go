package pgo

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeProfile builds a minimal structurally-valid pprof profile of the
// given approximate compressed size, so store tests control artifact
// sizes without running the real profiler.
func fakeProfile(t *testing.T, pad int) []byte {
	t.Helper()
	var raw bytes.Buffer
	// field 1 (sample_type), length-delimited: a ValueType{type:1, unit:2}.
	vt := []byte{0x08, 0x01, 0x10, 0x02}
	raw.WriteByte(1<<3 | 2)
	var lenBuf [10]byte
	raw.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(vt)))])
	raw.Write(vt)
	// field 4 (string_table entry), length-delimited: incompressible pad
	// so gzip cannot collapse it and Size ordering is controllable.
	if pad > 0 {
		data := make([]byte, pad)
		x := uint64(12345)
		for i := range data {
			x = x*6364136223846793005 + 1442695040888963407
			data[i] = byte(x >> 33)
		}
		raw.WriteByte(6<<3 | 2)
		raw.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(data)))])
		raw.Write(data)
	}
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	zw.Write(raw.Bytes())
	zw.Close()
	if err := ValidateProfile(out.Bytes()); err != nil {
		t.Fatalf("fakeProfile does not validate: %v", err)
	}
	return out.Bytes()
}

func TestStorePutBestRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4, "build-a")
	if err != nil {
		t.Fatal(err)
	}
	small := fakeProfile(t, 64)
	big := fakeProfile(t, 4096)
	if _, err := s.Put(big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(small); err != nil {
		t.Fatal(err)
	}
	art, data, err := s.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, big) {
		t.Fatalf("Best returned the %d-byte artifact, want the largest (%d bytes)",
			len(data), len(big))
	}
	if art.Build != "build-a" {
		t.Fatalf("Best artifact build = %q", art.Build)
	}
}

func TestStoreRejectsGarbage(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4, "build-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("not a profile")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
	if n, _ := s.List(); len(n) != 0 {
		t.Fatalf("store kept %d artifacts after rejected put", len(n))
	}
}

// TestRotationEvictsOldestFirst: past the Keep bound the oldest
// artifacts go first, across builds.
func TestRotationEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 3, "build-a")
	if err != nil {
		t.Fatal(err)
	}
	prof := fakeProfile(t, 128)
	var names []string
	for i := 0; i < 5; i++ {
		a, err := s.Put(prof)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, a.Name)
	}
	arts, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 3 {
		t.Fatalf("store has %d artifacts, want keep=3", len(arts))
	}
	for i, a := range arts {
		if want := names[2+i]; a.Name != want {
			t.Fatalf("survivor %d = %s, want the newest three (%s)", i, a.Name, want)
		}
	}
	if s.Counters()["pgo_store_evictions"] != 2 {
		t.Fatalf("evictions = %d, want 2", s.Counters()["pgo_store_evictions"])
	}
}

// TestRotationSegregatesBuildsAndProtectsCurrentNewest: profiles from a
// stale binary live on their own shelf, rotation prefers evicting them
// (they are oldest), and the current build's newest artifact survives
// even at keep=1 with older-named foreign artifacts arriving afterwards.
func TestRotationSegregatesBuildsAndProtectsCurrentNewest(t *testing.T) {
	dir := t.TempDir()

	// A previous binary's captures, first chronologically.
	old, err := NewStore(dir, 100, "build-old")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := old.Put(fakeProfile(t, 256)); err != nil {
			t.Fatal(err)
		}
	}

	// The current binary captures once; its rotation must clear the old
	// build's shelf entirely before ever touching its own newest.
	cur, err := NewStore(dir, 1, "build-new")
	if err != nil {
		t.Fatal(err)
	}
	mine, err := cur.Put(fakeProfile(t, 64))
	if err != nil {
		t.Fatal(err)
	}

	arts, err := cur.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Name != mine.Name || arts[0].Build != "build-new" {
		t.Fatalf("survivors = %+v, want only the current build's newest (%s)", arts, mine.Name)
	}

	// Best must never serve another build's profile: a store for a third
	// build sharing the directory sees no candidate at all.
	other, err := NewStore(dir, 100, "build-other")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.Best(); err == nil {
		t.Fatal("Best served a foreign build's profile")
	}
}

// TestRotationSkipsProtectedAndKeepsEvicting: when the current build's
// newest profile is also the *oldest* file on disk, rotation must skip
// it and evict the next-oldest instead — the protected artifact survives
// even though oldest-first order would have claimed it first.
func TestRotationSkipsProtectedAndKeepsEvicting(t *testing.T) {
	dir := t.TempDir()
	cur, err := NewStore(dir, 1, "build-new")
	if err != nil {
		t.Fatal(err)
	}
	mine, err := cur.Put(fakeProfile(t, 64)) // oldest file, but protected
	if err != nil {
		t.Fatal(err)
	}
	// A stale binary's newer capture shares the directory (keep high
	// enough that *its* Put does not rotate).
	old, err := NewStore(dir, 100, "build-old")
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := old.Put(fakeProfile(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Force the current store's rotation with both files on disk.
	cur.mu.Lock()
	cur.rotateLocked()
	cur.mu.Unlock()

	arts, err := cur.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Name != mine.Name {
		t.Fatalf("survivors = %+v, want only the protected %s (foreign %s evicted)",
			arts, mine.Name, foreign.Name)
	}
	if cur.Counters()["pgo_store_evictions"] != 1 {
		t.Fatalf("evictions = %d, want 1", cur.Counters()["pgo_store_evictions"])
	}
}

func TestArtifactNamesSortChronologically(t *testing.T) {
	s, err := NewStore(t.TempDir(), 100, "b")
	if err != nil {
		t.Fatal(err)
	}
	prev := ""
	for i := 0; i < 10; i++ {
		a, err := s.Put(fakeProfile(t, 16))
		if err != nil {
			t.Fatal(err)
		}
		if a.Name <= prev {
			t.Fatalf("artifact %d name %s does not sort after %s", i, a.Name, prev)
		}
		prev = a.Name
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(fakeProfile(t, 16)); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "b", "README.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "b", fmt.Sprintf("cpu-%020d-000001.pprof.tmp", time.Now().UnixNano())), []byte("partial"), 0o644)
	arts, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("List = %d artifacts, want 1 (foreign files ignored)", len(arts))
	}
}

// TestStoreSurvivesRestart: a fresh Store handle over an existing
// directory serves the prior process's artifacts.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir, 4, "b")
	if err != nil {
		t.Fatal(err)
	}
	prof := fakeProfile(t, 256)
	if _, err := s1.Put(prof); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir, 4, "b")
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := s2.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, prof) {
		t.Fatal("restarted store served different bytes")
	}
}

// TestRealCaptureStores: the capturer's own output round-trips through
// the store (integration of the two halves).
func TestRealCaptureStores(t *testing.T) {
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go spin(60 * time.Millisecond)
	data, err := c.CaptureOnce(context.Background(), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.StoreArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.Build != BuildID() {
		t.Fatalf("artifact build = %q, want running binary's %q", art.Build, BuildID())
	}
	_, best, err := c.Store().Best()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(best, data) {
		t.Fatal("Best did not round-trip the captured bytes")
	}
}
