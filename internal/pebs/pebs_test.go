package pebs

import "testing"

func TestDelinquentRanking(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 70; i++ {
		s.ObserveMiss(100)
	}
	for i := 0; i < 25; i++ {
		s.ObserveMiss(200)
	}
	for i := 0; i < 5; i++ {
		s.ObserveMiss(300)
	}
	del := s.Delinquent(0.1)
	if len(del) != 2 {
		t.Fatalf("want 2 loads above 10%%, got %d", len(del))
	}
	if del[0].PC != 100 || del[1].PC != 200 {
		t.Fatalf("wrong ranking: %+v", del)
	}
	if del[0].Share < 0.69 || del[0].Share > 0.71 {
		t.Fatalf("share wrong: %v", del[0].Share)
	}
}

func TestPeriodSubsamples(t *testing.T) {
	s := NewSampler(10)
	for i := 0; i < 100; i++ {
		s.ObserveMiss(42)
	}
	if s.Samples() != 10 {
		t.Fatalf("period 10 over 100 misses should record 10, got %d", s.Samples())
	}
}

func TestEmptySampler(t *testing.T) {
	s := NewSampler(1)
	if got := s.Delinquent(0.0); got != nil {
		t.Fatalf("empty sampler should return nil, got %v", got)
	}
}

func TestResetClears(t *testing.T) {
	s := NewSampler(1)
	s.ObserveMiss(7)
	s.Reset()
	if s.Samples() != 0 || len(s.Delinquent(0)) != 0 {
		t.Fatal("reset should clear samples")
	}
}

func TestZeroPeriodDefaultsToOne(t *testing.T) {
	s := NewSampler(0)
	s.ObserveMiss(1)
	if s.Samples() != 1 {
		t.Fatal("period 0 should behave as 1")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	s := NewSampler(1)
	s.ObserveMiss(9)
	s.ObserveMiss(3)
	del := s.Delinquent(0)
	if del[0].PC != 3 || del[1].PC != 9 {
		t.Fatalf("ties must break by PC: %+v", del)
	}
}
