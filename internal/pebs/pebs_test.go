package pebs

import "testing"

func TestDelinquentRanking(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 70; i++ {
		s.ObserveMiss(100, 220)
	}
	for i := 0; i < 25; i++ {
		s.ObserveMiss(200, 220)
	}
	for i := 0; i < 5; i++ {
		s.ObserveMiss(300, 220)
	}
	del := s.Delinquent(0.1)
	if len(del) != 2 {
		t.Fatalf("want 2 loads above 10%%, got %d", len(del))
	}
	if del[0].PC != 100 || del[1].PC != 200 {
		t.Fatalf("wrong ranking: %+v", del)
	}
	if del[0].Share < 0.69 || del[0].Share > 0.71 {
		t.Fatalf("share wrong: %v", del[0].Share)
	}
}

func TestStallAccumulation(t *testing.T) {
	s := NewSampler(1)
	s.ObserveMiss(100, 220) // fully exposed miss
	s.ObserveMiss(100, 20)  // fill-buffer hit: residual wait only
	s.ObserveMiss(200, 240)
	del := s.Delinquent(0)
	if del[0].PC != 100 || del[0].StallCycles != 240 || del[0].MeanStall != 120 {
		t.Fatalf("PC 100 stall accounting wrong: %+v", del[0])
	}
	if del[1].PC != 200 || del[1].StallCycles != 240 || del[1].MeanStall != 240 {
		t.Fatalf("PC 200 stall accounting wrong: %+v", del[1])
	}
	st := s.Stalls()
	if st[100] != 240 || st[200] != 240 {
		t.Fatalf("Stalls snapshot wrong: %v", st)
	}
	// The snapshot is a copy: mutating it must not touch the sampler.
	st[100] = 0
	if s.Stalls()[100] != 240 {
		t.Fatal("Stalls must return a copy")
	}
}

func TestPeriodSubsamples(t *testing.T) {
	s := NewSampler(10)
	for i := 0; i < 100; i++ {
		s.ObserveMiss(42, 220)
	}
	if s.Samples() != 10 {
		t.Fatalf("period 10 over 100 misses should record 10, got %d", s.Samples())
	}
}

func TestEmptySampler(t *testing.T) {
	s := NewSampler(1)
	if got := s.Delinquent(0.0); got != nil {
		t.Fatalf("empty sampler should return nil, got %v", got)
	}
}

func TestResetClears(t *testing.T) {
	s := NewSampler(1)
	s.ObserveMiss(7, 220)
	s.Reset()
	if s.Samples() != 0 || len(s.Delinquent(0)) != 0 || len(s.Stalls()) != 0 {
		t.Fatal("reset should clear samples and stalls")
	}
}

func TestZeroPeriodDefaultsToOne(t *testing.T) {
	s := NewSampler(0)
	s.ObserveMiss(1, 220)
	if s.Samples() != 1 {
		t.Fatal("period 0 should behave as 1")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	s := NewSampler(1)
	s.ObserveMiss(9, 220)
	s.ObserveMiss(3, 220)
	del := s.Delinquent(0)
	if del[0].PC != 3 || del[1].PC != 9 {
		t.Fatalf("ties must break by PC: %+v", del)
	}
}

func TestSortByScoreTieBreak(t *testing.T) {
	// Equal scores: Samples desc then PC asc; equal everything: PC asc.
	loads := []Load{
		{PC: 50, Samples: 3, Score: 10},
		{PC: 10, Samples: 3, Score: 10},
		{PC: 40, Samples: 7, Score: 10},
		{PC: 20, Samples: 1, Score: 99},
	}
	SortByScore(loads)
	want := []uint64{20, 40, 10, 50}
	for i, pc := range want {
		if loads[i].PC != pc {
			t.Fatalf("rank %d: want PC %d, got %+v", i, pc, loads)
		}
	}
}
