// Package pebs models precise event-based sampling of last-level-cache
// misses: the mechanism APT-GET uses (via perf record, §3.4) to identify
// delinquent loads — the load PCs responsible for most LLC misses.
package pebs

import "sort"

// Sampler counts every period-th LLC-miss load, attributing it to the
// load's PC. Period 1 records every miss (exact attribution); the paper's
// setup samples sparsely, which the default period models.
type Sampler struct {
	Period uint64

	seen  uint64
	byPC  map[uint64]uint64
	total uint64
}

// NewSampler returns a sampler with the given period (≥1).
func NewSampler(period uint64) *Sampler {
	if period == 0 {
		period = 1
	}
	return &Sampler{Period: period, byPC: make(map[uint64]uint64)}
}

// ObserveMiss is called by the core for every retired demand load served
// by DRAM (an LLC miss).
func (s *Sampler) ObserveMiss(pc uint64) {
	s.seen++
	if s.seen%s.Period != 0 {
		return
	}
	s.byPC[pc]++
	s.total++
}

// Samples returns the number of recorded samples.
func (s *Sampler) Samples() uint64 { return s.total }

// Counts returns a copy of the per-PC sample counts. Callers that watch
// a live run (online re-planning) snapshot Counts at window boundaries
// and subtract to get per-window miss attribution.
func (s *Sampler) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(s.byPC))
	for pc, n := range s.byPC {
		out[pc] = n
	}
	return out
}

// Load is a delinquent-load candidate.
type Load struct {
	PC      uint64
	Samples uint64
	Share   float64 // fraction of all samples
}

// Delinquent returns the load PCs whose sample share is at least
// minShare, ordered most-delinquent first. This is the input to the
// APT-GET analysis (§3.2 step 1).
func (s *Sampler) Delinquent(minShare float64) []Load {
	if s.total == 0 {
		return nil
	}
	var out []Load
	for pc, n := range s.byPC {
		share := float64(n) / float64(s.total)
		if share >= minShare {
			out = append(out, Load{PC: pc, Samples: n, Share: share})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Reset clears all recorded samples.
func (s *Sampler) Reset() {
	s.seen, s.total = 0, 0
	s.byPC = make(map[uint64]uint64)
}
