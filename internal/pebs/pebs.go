// Package pebs models precise event-based sampling of last-level-cache
// misses: the mechanism APT-GET uses (via perf record, §3.4) to identify
// delinquent loads — the load PCs responsible for most LLC misses. Each
// sample also carries the load's *exposed* stall cycles (the PEBS
// latency field on real hardware): a miss whose fill was already in
// flight when the load retired exposes only the residual wait, so the
// same miss count can mean very different stall costs — the second
// dimension the 2-D selection gate ranks on.
package pebs

import "sort"

// Sampler counts every period-th LLC-miss load, attributing it to the
// load's PC. Period 1 records every miss (exact attribution); the paper's
// setup samples sparsely, which the default period models.
type Sampler struct {
	Period uint64

	seen      uint64
	byPC      map[uint64]uint64
	stallByPC map[uint64]uint64 // summed exposed stall cycles of sampled misses
	total     uint64
}

// NewSampler returns a sampler with the given period (≥1).
func NewSampler(period uint64) *Sampler {
	if period == 0 {
		period = 1
	}
	return &Sampler{
		Period:    period,
		byPC:      make(map[uint64]uint64),
		stallByPC: make(map[uint64]uint64),
	}
}

// ObserveMiss is called by the core for every retired demand load whose
// data came from DRAM — fully exposed misses and fill-buffer hits on
// in-flight DRAM fills alike. stall is the exposed stall in cycles: the
// whole memory latency for a blocking miss, only the residual wait when
// the fill was already in flight.
func (s *Sampler) ObserveMiss(pc, stall uint64) {
	s.seen++
	if s.seen%s.Period != 0 {
		return
	}
	s.byPC[pc]++
	s.stallByPC[pc] += stall
	s.total++
}

// Samples returns the number of recorded samples.
func (s *Sampler) Samples() uint64 { return s.total }

// Counts returns a copy of the per-PC sample counts. Callers that watch
// a live run (online re-planning) snapshot Counts at window boundaries
// and subtract to get per-window miss attribution.
func (s *Sampler) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(s.byPC))
	for pc, n := range s.byPC {
		out[pc] = n
	}
	return out
}

// Stalls returns a copy of the per-PC summed exposed stall cycles, the
// latency counterpart of Counts (same snapshot-and-subtract use).
func (s *Sampler) Stalls() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(s.stallByPC))
	for pc, n := range s.stallByPC {
		out[pc] = n
	}
	return out
}

// Load is a delinquent-load candidate.
type Load struct {
	PC          uint64
	Samples     uint64
	Share       float64 // fraction of all samples
	StallCycles uint64  // summed exposed stall cycles across this PC's samples
	MeanStall   float64 // StallCycles / Samples: mean exposed latency per sampled miss
	// Score is the 2-D selection score — estimated stall cycles per
	// kilo-instruction (miss rate × mean exposed latency). It needs the
	// run's instruction count, so the profiling stage fills it; the
	// sampler leaves it zero.
	Score float64
}

// Delinquent returns the load PCs whose sample share is at least
// minShare, ordered most-delinquent first. This is the input to the
// APT-GET analysis (§3.2 step 1).
func (s *Sampler) Delinquent(minShare float64) []Load {
	if s.total == 0 {
		return nil
	}
	var out []Load
	for pc, n := range s.byPC {
		share := float64(n) / float64(s.total)
		if share >= minShare {
			stall := s.stallByPC[pc]
			out = append(out, Load{
				PC: pc, Samples: n, Share: share,
				StallCycles: stall,
				MeanStall:   float64(stall) / float64(n),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// SortByScore orders loads highest selection score first. Equal scores
// (common when two PCs have identical sample counts and stall sums, and
// inevitable when scores are all zero) tie-break on Samples descending
// and then PC ascending, so the ranking — and every plan derived from
// it — is deterministic regardless of map iteration order.
func SortByScore(loads []Load) {
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Score != loads[j].Score {
			return loads[i].Score > loads[j].Score
		}
		if loads[i].Samples != loads[j].Samples {
			return loads[i].Samples > loads[j].Samples
		}
		return loads[i].PC < loads[j].PC
	})
}

// Reset clears all recorded samples.
func (s *Sampler) Reset() {
	s.seen, s.total = 0, 0
	s.byPC = make(map[uint64]uint64)
	s.stallByPC = make(map[uint64]uint64)
}
