package aptget_test

import (
	"fmt"

	"aptget"
	"aptget/internal/workloads"
)

// Example runs the paper's trip-count-4 microbenchmark through the full
// pipeline: profile → Equations 1/2 → injection → verified execution.
func Example() {
	w := workloads.NewMicro(4, workloads.ComplexityLow)
	cmp, err := aptget.Compare(w, aptget.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan := cmp.AptGet.Plans[0]
	fmt.Printf("site: %s\n", plan.Site)
	fmt.Printf("APT-GET beats the static pass: %v\n",
		cmp.AptGetSpeedup() > cmp.StaticSpeedup())
	// Output:
	// site: outer
	// APT-GET beats the static pass: true
}
