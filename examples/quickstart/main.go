// Quickstart: run the paper's §2.1 microbenchmark through the whole
// APT-GET pipeline and print what each stage decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aptget"
	"aptget/internal/workloads"
)

func main() {
	cfg := aptget.DefaultConfig()

	// The Listing 1 microbenchmark: indirect accesses T[B[i]] inside a
	// nested loop with 4 inner iterations — the case where static
	// inner-loop prefetching fails and APT-GET switches to the outer
	// loop.
	w := workloads.NewMicro(4, workloads.ComplexityLow)

	fmt.Println("1. profiling the baseline build (LBR + PEBS sampling)...")
	prof, plans, err := aptget.ProfileAndPlan(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d LBR samples, %d delinquent loads\n\n", len(prof.Samples), len(prof.Loads))

	fmt.Println("2. analytical model (Equations 1 and 2):")
	for _, p := range plans {
		fmt.Printf("   load pc=%d: IC=%.0f cycles, MC=%.0f cycles, trip=%.1f\n",
			p.LoadPC, p.Inner.IC, p.Inner.MC, p.AvgTrip)
		fmt.Printf("   -> prefetch distance %d, injection site: %s loop\n\n",
			p.Distance, p.Site)
	}

	fmt.Println("3. running all three variants...")
	cmp, err := aptget.Compare(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   baseline:          %12d cycles\n", cmp.Base.Counters.Cycles)
	fmt.Printf("   Ainsworth & Jones: %12d cycles   %.2fx\n",
		cmp.Static.Counters.Cycles, cmp.StaticSpeedup())
	fmt.Printf("   APT-GET:           %12d cycles   %.2fx\n",
		cmp.AptGet.Counters.Cycles, cmp.AptGetSpeedup())
	fmt.Println("\n   (results verified against the native Go reference)")
}
