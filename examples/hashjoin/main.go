// Hash join: the paper's database scenario. The NPO probe loop scans a
// tiny bucket (2 or 8 slots) for each streamed key — too few inner
// iterations for classic inner-loop prefetching, so APT-GET hoists the
// prefetch slice into the probe loop (the paper's best case, 1.98× for
// HJ8 in Figure 6).
//
//	go run ./examples/hashjoin
package main

import (
	"fmt"
	"log"

	"aptget"
	"aptget/internal/workloads"
)

func main() {
	cfg := aptget.DefaultConfig()

	for _, spec := range []struct {
		label      string
		buckets    int64
		bucketSize int64
	}{
		{"HJ2 (2 elems/bucket)", 1 << 17, 2},
		{"HJ8 (8 elems/bucket)", 1 << 15, 8},
	} {
		w := workloads.NewHashJoin(spec.label, spec.buckets, spec.bucketSize,
			100_000, 120_000)
		cmp, err := aptget.Compare(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", spec.label)
		fmt.Printf("  hash table: %d buckets x %d slots (%.1f MiB of keys)\n",
			spec.buckets, spec.bucketSize,
			float64(spec.buckets*spec.bucketSize*8)/(1<<20))
		fmt.Printf("  static A&J (inner loop, D=32): %.2fx\n", cmp.StaticSpeedup())
		fmt.Printf("  APT-GET:                       %.2fx\n", cmp.AptGetSpeedup())
		for _, p := range cmp.AptGet.Plans {
			fmt.Printf("  plan: pc=%-4d site=%-5s distance=%-3d trip=%.1f\n",
				p.LoadPC, p.Site, p.Distance, p.AvgTrip)
		}
		fmt.Println()
	}
}
