// Graph analytics: optimize BFS and PageRank over a synthetic web graph
// (the paper's CRONO scenario) and report speedups, cache behaviour, and
// the per-load prefetch plans.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"aptget"
	"aptget/internal/graphgen"
	"aptget/internal/workloads"
)

func main() {
	cfg := aptget.DefaultConfig()

	// A scaled web-crawl-like graph (power-law degrees, hub bias).
	g := graphgen.PowerLaw("web", 64_000, 6, 42)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n\n",
		g.N, g.M(), g.AvgDegree())

	src := workloads.TopDegreeVertices(g, 1)[0]
	for _, w := range []aptget.Workload{
		workloads.NewBFS("bfs/web", g, src),
		workloads.NewPageRank("pr/web", g, 2),
	} {
		cmp, err := aptget.Compare(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", w.Name())
		fmt.Printf("  baseline   : MPKI %.1f, %.0f%% cycles memory bound\n",
			cmp.Base.Counters.MPKI(), 100*cmp.Base.Counters.MemBoundFraction())
		fmt.Printf("  static A&J : %.2fx speedup (MPKI %.1f)\n",
			cmp.StaticSpeedup(), cmp.Static.Counters.MPKI())
		fmt.Printf("  APT-GET    : %.2fx speedup (MPKI %.1f)\n",
			cmp.AptGetSpeedup(), cmp.AptGet.Counters.MPKI())
		for _, p := range cmp.AptGet.Plans {
			note := p.Fallback
			if note == "" {
				note = fmt.Sprintf("IC=%.0f MC=%.0f", p.Inner.IC, p.Inner.MC)
			}
			fmt.Printf("  plan: pc=%-4d site=%-5s distance=%-3d trip=%-5.1f %s\n",
				p.LoadPC, p.Site, p.Distance, p.AvgTrip, note)
		}
		fmt.Println()
	}
}
