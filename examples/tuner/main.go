// Tuner: use the profiling API directly — inspect the LBR-derived loop
// latency distribution of a delinquent load, the Equation 1 arithmetic,
// and validate the chosen distance against a manual sweep.
//
//	go run ./examples/tuner
package main

import (
	"fmt"
	"log"

	"aptget"
	"aptget/internal/peaks"
	"aptget/internal/workloads"
)

func main() {
	cfg := aptget.DefaultConfig()
	w := workloads.NewMicro(256, workloads.ComplexityMedium)

	_, plans, err := aptget.ProfileAndPlan(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(plans) == 0 {
		log.Fatal("no delinquent loads found")
	}
	p := plans[0]

	fmt.Printf("delinquent load pc=%d\n\n", p.LoadPC)
	fmt.Println("loop-iteration latency distribution (from LBR samples):")
	h := peaks.NewHistogram(p.Inner.Latencies, 2)
	fmt.Print(h)
	fmt.Printf("\nCWT peaks: %v\n", p.Inner.Peaks)
	fmt.Printf("Equation 1: IC=%.0f cycles, MC=%.0f cycles -> distance=%d\n\n",
		p.Inner.IC, p.Inner.MC, p.Distance)

	// Manual sweep for comparison (what APT-GET replaces with one
	// profiling run).
	base, err := aptget.RunBaseline(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("manual distance sweep (static pass):")
	bestSp, bestD := 0.0, int64(0)
	for _, d := range []int64{1, 2, 4, 8, 16, 32, 64} {
		c := cfg
		c.Static.Distance = d
		r, err := aptget.RunStatic(workloads.NewMicro(256, workloads.ComplexityMedium), c)
		if err != nil {
			log.Fatal(err)
		}
		sp := r.Speedup(base)
		fmt.Printf("  D=%-3d %.2fx\n", d, sp)
		if sp > bestSp {
			bestSp, bestD = sp, d
		}
	}
	fmt.Printf("\nsweep optimum D=%d (%.2fx); LBR picked D=%d without any sweep\n",
		bestD, bestSp, p.Distance)
}
