package aptget

import "testing"

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run is slow in -short mode")
	}
	e, ok := WorkloadByKey("HJ8")
	if !ok {
		t.Fatal("HJ8 missing from registry")
	}
	cmp, err := Compare(e.New(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AptGetSpeedup() <= 1.0 {
		t.Fatalf("APT-GET should speed up HJ8: %.2fx", cmp.AptGetSpeedup())
	}
	if cmp.AptGetSpeedup() <= cmp.StaticSpeedup() {
		t.Fatalf("APT-GET (%.2fx) should beat static (%.2fx) on HJ8",
			cmp.AptGetSpeedup(), cmp.StaticSpeedup())
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(Workloads()) != 11 {
		t.Fatalf("want 11 applications, got %d", len(Workloads()))
	}
	if len(Experiments()) != 18 {
		t.Fatalf("want 18 experiments, got %d", len(Experiments()))
	}
	if _, ok := WorkloadByKey("nope"); ok {
		t.Fatal("unknown key should miss")
	}
}

func TestMachineConfigs(t *testing.T) {
	if MachineScaled().Name != "scaled" || MachineXeon5218().Name != "xeon-gold-5218" {
		t.Fatal("machine presets wrong")
	}
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("GeoMean = %v", g)
	}
}

func TestPlanTransferAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run is slow in -short mode")
	}
	e, _ := WorkloadByKey("IS")
	w := e.New()
	prof, plans, err := ProfileAndPlan(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || len(prof.Samples) == 0 {
		t.Fatal("profile empty")
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	base, err := RunBaseline(e.New(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunWithPlans(e.New(), plans, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Speedup(base) <= 1.0 {
		t.Fatalf("plans should speed IS up: %.2fx", opt.Speedup(base))
	}
}
